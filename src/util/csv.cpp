#include "util/csv.hpp"

#include "util/expect.hpp"

namespace erapid::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  if (out_) row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  ERAPID_EXPECT(cells.size() == width_, "CSV row width must match header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace erapid::util
