// Console table printer.
//
// Bench binaries reproduce the paper's figures as textual series; this
// printer renders them as aligned columns so the "rows the paper reports"
// are directly readable in bench_output.txt.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace erapid::util {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Convenience for mixed string/number rows.
  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(to_cell(vals)), ...);
    row(std::move(cells));
  }

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimals.
  static std::string fixed(double v, int digits = 4);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return fixed(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace erapid::util
