// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
// std::mt19937 would work, but xoshiro is ~3x faster, has a tiny state that
// copies cheaply into per-node generator objects, and — crucially for
// reproducibility — its exact output sequence is pinned by this file rather
// than by the standard library implementation.
//
// Every stochastic component (traffic generators, allocator tie-breaks used
// in randomized tests) takes an explicit Rng or a seed; the simulator never
// touches global RNG state.
#pragma once

#include <cstdint>
#include <limits>

namespace erapid::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — all-purpose 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    // Degenerate bound: callers asking for [0,0) get 0 back; asserting here
    // would force every call site to special-case empty ranges.
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Forks an independent stream (used to give each node its own generator).
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace erapid::util
