// Arena and pool allocation for the simulator hot path.
//
// The DES core used to pay one heap allocation per scheduled event (the
// shared cancellation flag) and one per large event closure; at millions of
// events per run that is a measurable slice of the `engine dispatch cost`
// histogram. Two building blocks remove it:
//
//  * Arena — a chunked bump allocator. allocate() is a pointer increment;
//    nothing is freed individually. reset() rewinds every chunk for reuse
//    (capacity is retained), which suits strictly run-scoped lifetimes:
//    one Simulation owns one Arena, and everything allocated from it dies
//    with the run. Requests larger than the chunk size fall back to a
//    dedicated exact-size chunk (still arena-owned, still freed with it).
//
//  * Pool<T> — a typed free-list on top of an Arena. create() reuses a
//    recycled slot when one exists and bump-allocates otherwise; destroy()
//    runs the destructor and recycles the slot. Slot memory is never
//    returned to the OS before the Arena dies.
//
// Lifetime rules (see DESIGN.md §11): objects handed out by a Pool must not
// outlive the Arena backing it, and Arena::reset() invalidates every live
// pool object at once — callers reset only between runs, never mid-run.
// Neither type is thread-safe; in a sharded campaign each worker owns its
// whole simulation, arena included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/expect.hpp"

namespace erapid::util {

/// Chunked bump allocator with run-scoped lifetime.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) : chunk_bytes_(chunk_bytes) {
    ERAPID_EXPECT(chunk_bytes > 0, "arena chunk size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two no
  /// stronger than std::max_align_t). Never returns nullptr; grows by one
  /// chunk when the current chunk is exhausted, and gives oversized
  /// requests a dedicated exact-size chunk (the out-of-arena fallback).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    ERAPID_EXPECT(align > 0 && (align & (align - 1)) == 0 && align <= alignof(std::max_align_t),
                  "arena alignment must be a power of two <= max_align_t");
    if (bytes == 0) bytes = 1;
    if (bytes > chunk_bytes_) {
      // Oversized: dedicated chunk, inserted *behind* the active chunk so
      // the bump pointer keeps filling the normal-size one.
      Chunk big(bytes);
      big.used = bytes;
      bytes_served_ += bytes;
      chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(active_), std::move(big));
      ++active_;
      return chunks_[active_ - 1].data.get();
    }
    if (active_ == chunks_.size()) chunks_.emplace_back(chunk_bytes_);
    Chunk* c = &chunks_[active_];
    std::size_t at = align_up(c->used, align);
    if (at + bytes > c->size) {
      ++active_;
      if (active_ == chunks_.size()) chunks_.emplace_back(chunk_bytes_);
      c = &chunks_[active_];
      at = align_up(c->used, align);
    }
    c->used = at + bytes;
    bytes_served_ += bytes;
    return c->data.get() + at;
  }

  /// Typed convenience: uninitialized storage for `n` objects of T.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
  }

  /// Rewinds every chunk for reuse. All objects previously allocated from
  /// this arena are invalidated at once; capacity is retained.
  void reset() {
    for (auto& c : chunks_) c.used = 0;
    active_ = 0;
    bytes_served_ = 0;
  }

  /// Total bytes handed out since construction/reset (excludes padding).
  [[nodiscard]] std::size_t bytes_served() const { return bytes_served_; }

  /// Number of chunks currently owned (normal + oversized).
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

  /// Total bytes of backing storage owned.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    explicit Chunk(std::size_t n) : data(new std::byte[n]), size(n) {}
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk the bump pointer lives in
  std::size_t chunk_bytes_;
  std::size_t bytes_served_ = 0;
};

/// Typed free-list pool over an Arena: O(1) create/destroy with slot reuse.
template <typename T>
class Pool {
 public:
  explicit Pool(Arena& arena) : arena_(arena) {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  template <typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    Slot* s = free_;
    if (s != nullptr) {
      free_ = s->next;
      --free_count_;
    } else {
      s = static_cast<Slot*>(arena_.allocate(sizeof(Slot), alignof(Slot)));
      ++slots_created_;
    }
    ++live_;
    return ::new (static_cast<void*>(s->storage)) T(std::forward<Args>(args)...);
  }

  /// Destroys `p` (which must have come from this pool) and recycles its
  /// slot. Null is ignored.
  void destroy(T* p) {
    if (p == nullptr) return;
    p->~T();
    auto* s = std::launder(reinterpret_cast<Slot*>(p));
    s->next = free_;
    free_ = s;
    ++free_count_;
    --live_;
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t free_count() const { return free_count_; }
  [[nodiscard]] std::size_t slots_created() const { return slots_created_; }

 private:
  union Slot {
    Slot* next;
    alignas(T) std::byte storage[sizeof(T)];
  };

  Arena& arena_;
  Slot* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t free_count_ = 0;
  std::size_t slots_created_ = 0;
};

}  // namespace erapid::util
