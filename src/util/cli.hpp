// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--key=value`, `--key value` and boolean `--flag` forms; anything
// it does not recognize is left in `positional()` (google-benchmark flags
// pass through untouched because benches call parse() on a filtered copy).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace erapid::util {

/// Parsed command line: key/value flags plus positional arguments.
class Cli {
 public:
  Cli() = default;

  /// Parses argv; unknown tokens that do not start with "--" are positional.
  static Cli parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return flags_.count(key) > 0; }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace erapid::util
