// Move-only callable with inline storage, used as the DES event closure.
//
// std::function gives ~16 bytes of small-buffer storage on mainstream
// implementations; the router's flit-delivery closure captures a sink
// pointer, a Flit, a VC index and a cycle (~72 bytes), so every scheduled
// delivery heap-allocates and every heap pop copies it back out. InplaceFn
// widens the inline buffer past the largest hot-path capture and is
// move-only, so events move through the calendar without allocation or
// copying. Closures larger than the buffer (or with throwing moves) still
// work via a heap fallback — correctness never depends on fitting.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace erapid::util {

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
template <std::size_t Capacity>
class InplaceFn {
 public:
  InplaceFn() = default;
  InplaceFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      manage_ = [](Op op, void* p, void* q) {
        auto* self = std::launder(reinterpret_cast<Fn*>(p));
        if (op == Op::Move) {
          ::new (q) Fn(std::move(*self));
          self->~Fn();
        } else {
          self->~Fn();
        }
      };
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      inline_ = false;
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      manage_ = [](Op op, void* p, void* q) {
        auto* slot = std::launder(reinterpret_cast<Fn**>(p));
        if (op == Op::Move) {
          ::new (q) Fn*(*slot);
        } else {
          delete *slot;
        }
      };
    }
  }

  InplaceFn(InplaceFn&& other) noexcept { move_from(other); }

  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { destroy(); }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the stored callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const { return inline_; }

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  enum class Op { Move, Destroy };

  void destroy() {
    if (manage_ != nullptr) manage_(Op::Destroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(InplaceFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    inline_ = other.inline_;
    if (manage_ != nullptr) manage_(Op::Move, other.buf_, buf_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
  bool inline_ = true;
};

}  // namespace erapid::util
