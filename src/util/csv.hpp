// Minimal CSV writer used by benches and the experiment driver to dump the
// series behind each reproduced figure (one row per (config, load) point).
#pragma once

#include <cstddef>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace erapid::util {

/// Streams rows to a CSV file. Values containing separators are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True when the output file opened successfully.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Writes one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(format(vals)), ...);
    row(cells);
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string format(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os.precision(10);
      os << v;
      return os.str();
    }
  }

  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace erapid::util
