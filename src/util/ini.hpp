// Minimal INI parser/writer for experiment configuration files.
//
// Syntax:
//   ; comment        # comment
//   [section]
//   key = value
//
// Keys are addressed "section.key"; values are strings with typed getters.
// This backs the `--config file.ini` option of the examples, so whole
// experiment setups are reproducible from a checked-in file.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>

namespace erapid::util {

/// Parsed INI document.
class Ini {
 public:
  Ini() = default;

  static Ini parse(std::istream& in);
  static Ini parse_string(const std::string& text);
  static Ini load_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  /// Serializes grouped by section, keys sorted (stable round-trip).
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// All entries, keyed "section.key" (used for strict key validation).
  [[nodiscard]] const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;  ///< "section.key" -> value
};

}  // namespace erapid::util
