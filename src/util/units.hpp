// Strong unit types for every physical quantity the simulator models.
//
// The E-RAPID evaluation juggles four scalar domains that must never be
// confused: router clock cycles (the des clock — all simulated time),
// wall time (ns/ps, only at the configuration boundary where bit rates
// and clock periods meet), electrical power (mW), and line rate (Gb/s).
// PRs 1-6 kept these as raw doubles with suffix conventions (`_mw`,
// `_gbps`, ...); this header gives each domain a distinct type so mixing
// them is a compile error, while staying bit-for-bit identical to the
// raw-double arithmetic (every operation is the same IEEE op on the same
// representation in the same order — the paper-pattern goldens are pinned
// byte-identical across the migration).
//
// Design rules:
//   * construction is explicit (`Milliwatts{43.03}`), reading back is
//     explicit (`p.value()`): every domain entry/exit is visible;
//   * +, -, comparisons and scaling by a raw double stay inside the
//     dimension; the ratio q/q is a plain double;
//   * cross-dimension products get named functions (energy_over,
//     to_ps/to_ns) instead of operator soup — there are exactly three
//     legitimate conversions in this codebase, so they are spelled out.
//
// The des clock's integer types (Cycle, CycleDelta) also live here: they
// ARE the canonical simulation time unit, re-exported by util/types.hpp
// which every module already includes. Static enforcement of the suffix
// conventions on raw scalars that remain (`_cycles` vs `_ns` vs `_mw`)
// is the job of erapid_analyze's unit-mix/unit-param passes.
#pragma once

#include <cstdint>
#include <limits>

namespace erapid {

/// Simulation time in router clock cycles (the des clock domain).
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "never".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Duration in cycles (signed arithmetic is never needed; keep unsigned).
using CycleDelta = std::uint64_t;

namespace units {

/// CRTP-free strong scalar: a double that remembers its dimension.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.v_ + b.v_}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.v_ - b.v_}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.v_}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v_ / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.v_ / b.v_; }

  constexpr Quantity& operator+=(Quantity o) { v_ += o.v_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v_ -= o.v_; return *this; }

  friend constexpr bool operator==(Quantity a, Quantity b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Quantity a, Quantity b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Quantity a, Quantity b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Quantity a, Quantity b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Quantity a, Quantity b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Quantity a, Quantity b) { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

/// Electrical power (milliwatts) — link power levels, the energy meter.
using Milliwatts = Quantity<struct MilliwattsTag>;

/// Energy as power integrated over simulated time (mW * cycles). The
/// paper's energy panels divide this by a cycle count to get back to mW.
using MilliwattCycles = Quantity<struct MilliwattCyclesTag>;

/// Supply voltage (volts) — the DVS operating points.
using Volts = Quantity<struct VoltsTag>;

/// Line rate (gigabits per second) — optical/electrical serialization.
using GbitsPerSec = Quantity<struct GbitsPerSecTag>;

/// Wall-clock duration, nanoseconds (config boundary only; simulated time
/// is always Cycle).
using Nanoseconds = Quantity<struct NanosecondsTag>;

/// Wall-clock duration, picoseconds.
using Picoseconds = Quantity<struct PicosecondsTag>;

// ---- the legitimate cross-dimension conversions ------------------------

/// ns -> ps (exact: scaling by 1000).
[[nodiscard]] constexpr Picoseconds to_ps(Nanoseconds ns) {
  return Picoseconds{ns.value() * 1000.0};
}

/// ps -> ns.
[[nodiscard]] constexpr Nanoseconds to_ns(Picoseconds ps) {
  return Nanoseconds{ps.value() / 1000.0};
}

/// Power held for a number of des-clock cycles is energy.
[[nodiscard]] constexpr MilliwattCycles energy_over(Milliwatts p, double cycles) {
  return MilliwattCycles{p.value() * cycles};
}

/// Average power of an energy spread over a cycle window.
[[nodiscard]] constexpr Milliwatts average_power(MilliwattCycles e, double cycles) {
  return Milliwatts{e.value() / cycles};
}

}  // namespace units
}  // namespace erapid
