// Core scalar types and strong identifiers shared by every E-RAPID module.
//
// The simulator is cycle-accurate: one Cycle equals one router clock period
// (400 MHz => 2.5 ns, see topology/config.hpp). All identifiers are small
// integers; we wrap them in distinct enum-class-like structs only where
// confusing them has historically caused bugs (board vs node vs wavelength).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "util/units.hpp"  // Cycle, CycleDelta, kNeverCycle + quantity types

namespace erapid {

namespace detail {

/// CRTP strong integer id. Comparable, hashable, printable via value().
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  Rep v{kInvalid};

  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : v(value) {}

  [[nodiscard]] constexpr Rep value() const { return v; }
  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.v == b.v; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.v != b.v; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.v < b.v; }
};

}  // namespace detail

/// Global node index in [0, C*B*D).
struct NodeId : detail::StrongId<NodeId> {
  using StrongId::StrongId;
};

/// Board index in [0, B) (within the single cluster; the paper evaluates C=1).
struct BoardId : detail::StrongId<BoardId> {
  using StrongId::StrongId;
};

/// Wavelength index in [0, W) where W == B (one wavelength per board slot).
struct WavelengthId : detail::StrongId<WavelengthId> {
  using StrongId::StrongId;
};

/// Packet sequence number, unique per simulation.
using PacketSeq = std::uint64_t;

}  // namespace erapid

namespace std {
template <>
struct hash<erapid::NodeId> {
  size_t operator()(erapid::NodeId id) const noexcept { return std::hash<uint32_t>{}(id.v); }
};
template <>
struct hash<erapid::BoardId> {
  size_t operator()(erapid::BoardId id) const noexcept { return std::hash<uint32_t>{}(id.v); }
};
template <>
struct hash<erapid::WavelengthId> {
  size_t operator()(erapid::WavelengthId id) const noexcept { return std::hash<uint32_t>{}(id.v); }
};
}  // namespace std
