#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expect.hpp"

namespace erapid::util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::row(std::vector<std::string> cells) {
  ERAPID_EXPECT(cells.size() == header_.size(), "table row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace erapid::util
