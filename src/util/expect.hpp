// Contract and invariant layer.
//
// Three macro families, all throwing erapid::ModelInvariantError with a
// rich diagnostic (kind, stringified condition, file:line, function, and a
// streamed message) so tests can assert on violations and long batch runs
// fail loudly instead of silently corrupting statistics:
//
//   ERAPID_REQUIRE(cond, msg)    precondition on a public API — the caller
//                                handed us an argument or drove a state
//                                machine outside its domain.
//   ERAPID_INVARIANT(cond, msg)  internal model invariant — if this fires
//                                the *model* is wrong (conservation,
//                                monotonicity, bijection properties).
//   ERAPID_UNREACHABLE(msg)      control flow that must be dead: the
//                                fallthrough of an exhaustive enum switch,
//                                the else of a total classification. Always
//                                active (an unmodeled message value must
//                                never be processed silently).
//
// The message argument supports stream syntax:
//
//   ERAPID_REQUIRE(when >= now_, "when=" << when << " now=" << now_);
//
// Contract checks default ON in every build type. Defining
// ERAPID_NO_CONTRACTS (cmake -DERAPID_NO_CONTRACTS=ON) compiles
// ERAPID_REQUIRE / ERAPID_INVARIANT out for maximum-speed Release batch
// sweeps; their conditions are then *not evaluated*, so conditions must be
// side-effect free. ERAPID_UNREACHABLE and the legacy ERAPID_EXPECT stay
// active in all configurations (ERAPID_EXPECT also guards input validation
// — config parsing, file I/O — which is error handling, not a contract).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace erapid {

/// Thrown when a simulator model invariant or API contract is violated.
class ModelInvariantError : public std::logic_error {
 public:
  explicit ModelInvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_contract(const char* kind, const char* expr, const char* file,
                                        int line, const char* func, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": (" << expr << ") in " << func << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelInvariantError(os.str());
}

}  // namespace detail

}  // namespace erapid

/// Builds a std::string from a stream-style message fragment.
#define ERAPID_DETAIL_MSG(msg)      \
  ([&]() -> std::string {           \
    std::ostringstream erapid_os_;  \
    erapid_os_ << msg;              \
    return erapid_os_.str();        \
  }())

#define ERAPID_DETAIL_CHECK(kind, cond, msg)                                        \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::erapid::detail::throw_contract(kind, #cond, __FILE__, __LINE__,             \
                                       static_cast<const char*>(__func__),          \
                                       ERAPID_DETAIL_MSG(msg));                     \
    }                                                                               \
  } while (false)

/// Swallows a contract without evaluating it (keeps variables "used").
#define ERAPID_DETAIL_NOP(cond, msg)                    \
  do {                                                  \
    (void)sizeof((cond) ? 1 : 0);                       \
    (void)sizeof(ERAPID_DETAIL_MSG(msg));               \
  } while (false)

/// Legacy check macro: input validation and model invariants that must hold
/// regardless of build type. Active in every configuration.
#define ERAPID_EXPECT(cond, msg) ERAPID_DETAIL_CHECK("model invariant violated", cond, msg)

/// Unreachable control flow; always active.
#define ERAPID_UNREACHABLE(msg)                                                       \
  ::erapid::detail::throw_contract("unreachable code reached", "false", __FILE__,     \
                                   __LINE__, static_cast<const char*>(__func__),      \
                                   ERAPID_DETAIL_MSG(msg))

#if defined(ERAPID_NO_CONTRACTS)
#define ERAPID_REQUIRE(cond, msg) ERAPID_DETAIL_NOP(cond, msg)
#define ERAPID_INVARIANT(cond, msg) ERAPID_DETAIL_NOP(cond, msg)
#else
/// Precondition on a public API entry point.
#define ERAPID_REQUIRE(cond, msg) ERAPID_DETAIL_CHECK("precondition violated", cond, msg)
/// Internal model invariant (conservation, monotonicity, bijection).
#define ERAPID_INVARIANT(cond, msg) ERAPID_DETAIL_CHECK("invariant violated", cond, msg)
#endif
