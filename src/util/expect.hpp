// Runtime invariant checking.
//
// ERAPID_EXPECT is used for model invariants that must hold regardless of
// build type (wavelength-collision freedom, credit conservation, ...). A
// violated invariant throws erapid::ModelInvariantError so tests can assert
// on it and long batch runs fail loudly instead of silently corrupting
// statistics.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace erapid {

/// Thrown when a simulator model invariant is violated.
class ModelInvariantError : public std::logic_error {
 public:
  explicit ModelInvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << "model invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelInvariantError(os.str());
}
}  // namespace detail

}  // namespace erapid

/// Check a model invariant; throws ModelInvariantError on failure.
#define ERAPID_EXPECT(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::erapid::detail::throw_invariant(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                         \
  } while (false)
