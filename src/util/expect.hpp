// Contract and invariant layer.
//
// Three macro families, all throwing erapid::ModelInvariantError with a
// rich diagnostic (kind, stringified condition, file:line, function, and a
// streamed message) so tests can assert on violations and long batch runs
// fail loudly instead of silently corrupting statistics:
//
//   ERAPID_REQUIRE(cond, msg)    precondition on a public API — the caller
//                                handed us an argument or drove a state
//                                machine outside its domain.
//   ERAPID_INVARIANT(cond, msg)  internal model invariant — if this fires
//                                the *model* is wrong (conservation,
//                                monotonicity, bijection properties).
//   ERAPID_UNREACHABLE(msg)      control flow that must be dead: the
//                                fallthrough of an exhaustive enum switch,
//                                the else of a total classification. Always
//                                active (an unmodeled message value must
//                                never be processed silently).
//
// The message argument supports stream syntax:
//
//   ERAPID_REQUIRE(when >= now_, "when=" << when << " now=" << now_);
//
// Contract checks default ON in every build type. Defining
// ERAPID_NO_CONTRACTS (cmake -DERAPID_NO_CONTRACTS=ON) compiles
// ERAPID_REQUIRE / ERAPID_INVARIANT out for maximum-speed Release batch
// sweeps; their conditions are then *not evaluated*, so conditions must be
// side-effect free. ERAPID_UNREACHABLE and the legacy ERAPID_EXPECT stay
// active in all configurations (ERAPID_EXPECT also guards input validation
// — config parsing, file I/O — which is error handling, not a contract).
#pragma once

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace erapid {

/// Thrown when a simulator model invariant or API contract is violated.
class ModelInvariantError : public std::logic_error {
 public:
  explicit ModelInvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Called with (kind, full diagnostic) immediately before a contract failure
/// throws — the flight recorder's last-gasp hook.
using ContractObserver = std::function<void(const char* kind, const std::string& what)>;

namespace detail {

inline ContractObserver& contract_observer_slot() {
  static thread_local ContractObserver slot;
  return slot;
}

inline bool& contract_observer_busy() {
  static thread_local bool busy = false;
  return busy;
}

[[noreturn]] inline void throw_contract(const char* kind, const char* expr, const char* file,
                                        int line, const char* func, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": (" << expr << ") in " << func << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  // Give the observer its one look before the throw unwinds the run. The
  // busy guard makes a contract failure *inside* the observer non-recursive,
  // and observer exceptions are swallowed: the original diagnostic wins.
  auto& obs = contract_observer_slot();
  if (obs && !contract_observer_busy()) {
    contract_observer_busy() = true;
    try {
      obs(kind, os.str());
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    contract_observer_busy() = false;
  }
  throw ModelInvariantError(os.str());
}

}  // namespace detail

/// Installs (or clears, with {}) the thread-local contract-failure observer.
inline void set_contract_observer(ContractObserver obs) {
  detail::contract_observer_slot() = std::move(obs);
}

}  // namespace erapid

/// Builds a std::string from a stream-style message fragment.
#define ERAPID_DETAIL_MSG(msg)      \
  ([&]() -> std::string {           \
    std::ostringstream erapid_os_;  \
    erapid_os_ << msg;              \
    return erapid_os_.str();        \
  }())

#define ERAPID_DETAIL_CHECK(kind, cond, msg)                                        \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::erapid::detail::throw_contract(kind, #cond, __FILE__, __LINE__,             \
                                       static_cast<const char*>(__func__),          \
                                       ERAPID_DETAIL_MSG(msg));                     \
    }                                                                               \
  } while (false)

/// Swallows a contract without evaluating it (keeps variables "used").
#define ERAPID_DETAIL_NOP(cond, msg)                    \
  do {                                                  \
    (void)sizeof((cond) ? 1 : 0);                       \
    (void)sizeof(ERAPID_DETAIL_MSG(msg));               \
  } while (false)

/// Legacy check macro: input validation and model invariants that must hold
/// regardless of build type. Active in every configuration.
#define ERAPID_EXPECT(cond, msg) ERAPID_DETAIL_CHECK("model invariant violated", cond, msg)

/// Unreachable control flow; always active.
#define ERAPID_UNREACHABLE(msg)                                                       \
  ::erapid::detail::throw_contract("unreachable code reached", "false", __FILE__,     \
                                   __LINE__, static_cast<const char*>(__func__),      \
                                   ERAPID_DETAIL_MSG(msg))

#if defined(ERAPID_NO_CONTRACTS)
#define ERAPID_REQUIRE(cond, msg) ERAPID_DETAIL_NOP(cond, msg)
#define ERAPID_INVARIANT(cond, msg) ERAPID_DETAIL_NOP(cond, msg)
#else
/// Precondition on a public API entry point.
#define ERAPID_REQUIRE(cond, msg) ERAPID_DETAIL_CHECK("precondition violated", cond, msg)
/// Internal model invariant (conservation, monotonicity, bijection).
#define ERAPID_INVARIANT(cond, msg) ERAPID_DETAIL_CHECK("invariant violated", cond, msg)
#endif
