#include "util/cli.hpp"

#include <cstdlib>

namespace erapid::util {

Cli Cli::parse(int argc, const char* const* argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      cli.positional_.push_back(tok);
      continue;
    }
    tok = tok.substr(2);
    auto eq = tok.find('=');
    if (eq != std::string::npos) {
      cli.flags_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cli.flags_[tok] = argv[++i];
    } else {
      cli.flags_[tok] = "true";
    }
  }
  return cli;
}

std::optional<std::string> Cli::get(const std::string& key) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

long Cli::get_int(const std::string& key, long def) const {
  auto v = get(key);
  return v ? std::strtol(v->c_str(), nullptr, 10) : def;
}

double Cli::get_double(const std::string& key, double def) const {
  auto v = get(key);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto v = get(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

}  // namespace erapid::util
