#include "util/ini.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace erapid::util {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

Ini Ini::parse(std::istream& in) {
  Ini ini;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == ';' || t[0] == '#') continue;
    if (t.front() == '[') {
      ERAPID_EXPECT(t.back() == ']', "unterminated section at line " + std::to_string(lineno));
      section = trim(t.substr(1, t.size() - 2));
      ERAPID_EXPECT(!section.empty(), "empty section name at line " + std::to_string(lineno));
      continue;
    }
    const auto eq = t.find('=');
    ERAPID_EXPECT(eq != std::string::npos,
                  "expected key=value at line " + std::to_string(lineno) + ": '" + t + "'");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    ERAPID_EXPECT(!key.empty(), "empty key at line " + std::to_string(lineno));
    ini.values_[section.empty() ? key : section + "." + key] = value;
  }
  return ini;
}

Ini Ini::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Ini Ini::load_file(const std::string& path) {
  std::ifstream in(path);
  ERAPID_EXPECT(static_cast<bool>(in), "cannot open config file: " + path);
  return parse(in);
}

std::optional<std::string> Ini::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Ini::get_or(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

long Ini::get_int(const std::string& key, long def) const {
  const auto v = get(key);
  return v ? std::strtol(v->c_str(), nullptr, 10) : def;
}

double Ini::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Ini::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

void Ini::save(std::ostream& out) const {
  // Sectionless keys must precede every [section] header, or a reparse
  // would attribute them to whatever section happened to be open.
  bool wrote_any = false;
  for (const auto& [key, value] : values_) {
    if (key.find('.') == std::string::npos) {
      out << key << " = " << value << '\n';
      wrote_any = true;
    }
  }
  std::string current_section;
  bool in_section = false;
  for (const auto& [key, value] : values_) {
    const auto dot = key.find('.');
    if (dot == std::string::npos) continue;
    const std::string section = key.substr(0, dot);
    if (!in_section || section != current_section) {
      if (wrote_any) out << '\n';
      out << '[' << section << "]\n";
      current_section = section;
      in_section = true;
      wrote_any = true;
    }
    out << key.substr(dot + 1) << " = " << value << '\n';
  }
}

void Ini::save_file(const std::string& path) const {
  std::ofstream out(path);
  ERAPID_EXPECT(static_cast<bool>(out), "cannot open config file for writing: " + path);
  save(out);
}

}  // namespace erapid::util
