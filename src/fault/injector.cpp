#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "obs/probe.hpp"
#include "util/expect.hpp"

namespace erapid::fault {

namespace {

std::size_t stage_index(reconfig::CtrlStage s) {
  return s == reconfig::CtrlStage::PowerChain ? 0 : 1;
}

std::size_t target_index(CtrlTarget t) { return t == CtrlTarget::Chain ? 0 : 1; }

}  // namespace

FaultInjector::FaultInjector(des::Engine& engine, const topology::SystemConfig& cfg,
                             topology::LaneMap& lane_map,
                             reconfig::ReconfigManager& manager,
                             std::vector<optical::OpticalTerminal*> terminals,
                             FaultPlan plan, obs::Hub* hub,
                             std::vector<optical::Receiver*> receivers)
    : engine_(engine),
      cfg_(cfg),
      lane_map_(lane_map),
      manager_(manager),
      terminals_(std::move(terminals)),
      plan_(std::move(plan)),
      rng_(plan_.seed),
      receivers_(std::move(receivers)),
      hub_(hub) {
  ERAPID_EXPECT(terminals_.size() == cfg_.num_boards_total(),
                "one optical terminal per board required");
  plan_.validate(cfg_);
  const bool any_ber =
      std::any_of(plan_.events.begin(), plan_.events.end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::BitError; });
  ERAPID_EXPECT(!any_ber || receivers_.size() ==
                                static_cast<std::size_t>(cfg_.num_boards_total()) *
                                    cfg_.num_wavelengths(),
                "bit_error events need the receiver array (one per board × wavelength)");
  drop_budget_[0].assign(terminals_.size(), 0);
  drop_budget_[1].assign(terminals_.size(), 0);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_faults_ = hub_->metrics().counter("fault.injected");
    m_reroute_wait_ = hub_->metrics().series("fault.reroute_wait");
    // Recovery histograms exist only when a repair can actually happen —
    // keeps the metric namespace of repair-free plans (and all committed
    // fixtures) unchanged.
    const bool any_repair =
        std::any_of(plan_.events.begin(), plan_.events.end(), [](const FaultEvent& e) {
          return e.kind == FaultKind::LaneFail && e.repair_at != 0;
        });
    if (any_repair) {
      m_downtime_ = hub_->metrics().histogram("fault.lane_downtime");
      m_readmit_wait_ = hub_->metrics().histogram("fault.readmission_wait");
    }
  }
#endif
}

void FaultInjector::arm() {
  if (plan_.empty()) return;
  ERAPID_EXPECT(!armed_, "fault plan armed twice");
  armed_ = true;

  const bool any_ctrl =
      plan_.ctrl_drop_prob > 0.0 ||
      std::any_of(plan_.events.begin(), plan_.events.end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::CtrlDrop; });
  const bool any_lane_fail =
      std::any_of(plan_.events.begin(), plan_.events.end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::LaneFail; });

  if (any_ctrl) {
    manager_.set_ctrl_fault_hook([this](reconfig::CtrlStage s, BoardId b, std::uint32_t) {
      return ctrl_fault(s, b);
    });
  }
  if (any_lane_fail) {
    manager_.set_grant_observer([this](BoardId src, BoardId dest, WavelengthId w, Cycle at) {
      on_grant(src, dest, w, at);
    });
    manager_.set_window_observer([this](std::uint64_t, Cycle) {
      if (!pending_.empty()) ++stats_.degraded_windows;
    });
  }

  for (const auto& e : plan_.events) {
    ERAPID_EXPECT(e.at >= engine_.now(), "fault event scheduled in the past: " + e.format());
    engine_.schedule_at(e.at, [this, e] { inject(e); }, "fault.inject");
  }
}

void FaultInjector::inject(const FaultEvent& e) {
  const Cycle now = engine_.now();
  switch (e.kind) {
    case FaultKind::LaneFail:
      inject_lane_fail(e.dest, e.wavelength, now, e.repair_at);
      break;
    case FaultKind::LaserDegrade:
      inject_laser_degrade(e, now);
      break;
    case FaultKind::BitError:
      inject_bit_error(e, now);
      break;
    case FaultKind::CtrlDrop:
      drop_budget_[target_index(e.target)][e.board.value()] += e.count;
      break;
    case FaultKind::RcCrash:
      inject_rc_crash(e, now);
      break;
    default:
      ERAPID_UNREACHABLE("unmodeled fault kind " << static_cast<int>(e.kind));
  }
}

void FaultInjector::inject_lane_fail(BoardId dest, WavelengthId w, Cycle now,
                                     Cycle repair_at) {
  if (lane_map_.is_failed(dest, w)) return;  // double failure is idempotent
  const BoardId owner = lane_map_.owner(dest, w);
  lane_map_.mark_failed(dest, w);
  ++stats_.lanes_failed;
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{dest.value()})
        .add("wavelength", std::uint64_t{w.value()})
        .add("owner", owner.valid() ? std::uint64_t{owner.value()} : std::uint64_t{0});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.lane_fail", now, args.str());
    if (auto* fr = hub_->flight()) fr->record(now, "fault.lane_fail", args.str());
  }
#endif
  if (owner.valid()) {
    stats_.packets_rehomed += terminals_[owner.value()]->fail_lane(dest, w, now);
    pending_.push_back({owner, dest, now});
  }
  // Transient failure: schedule the repair. Only the event that actually
  // failed the lane repairs it — a later transient fault on an
  // already-dead lane (skipped above) must not resurrect a permanent one.
  if (repair_at != 0) {
    failed_.push_back({dest, w, owner, now});
    engine_.schedule_at(repair_at, [this, dest, w] {
      repair_lane(dest, w, engine_.now());
    }, "fault.repair");
  }
}

void FaultInjector::repair_lane(BoardId dest, WavelengthId w, Cycle now) {
  const auto it = std::find_if(failed_.begin(), failed_.end(), [&](const FailedLane& f) {
    return f.dest == dest && f.wavelength == w;
  });
  ERAPID_INVARIANT(it != failed_.end(), "repair fired for a lane with no failure record");
  lane_map_.repair(dest, w);
  // Only the owner-at-failure's Lane object was failed; other boards'
  // lanes for this ref were never touched.
  if (it->owner.valid()) terminals_[it->owner.value()]->repair_lane(dest, w, now);
  ++stats_.lanes_repaired;
  const CycleDelta downtime = now - it->failed_at;
  stats_.worst_downtime = std::max(stats_.worst_downtime, downtime);
  stats_.last_recovery = std::max(stats_.last_recovery, now);
  ERAPID_OBSERVE(hub_, m_downtime_, static_cast<double>(downtime));
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{dest.value()})
        .add("wavelength", std::uint64_t{w.value()})
        .add("downtime", std::uint64_t{downtime});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.lane_repair", now, args.str());
  }
#endif
  readmit_.push_back({dest, w, it->failed_at, now});
  failed_.erase(it);
}

void FaultInjector::inject_laser_degrade(const FaultEvent& e, Cycle now) {
  // The fault is the owning transmitter's VCSEL losing drive margin; a dark
  // lane has no driving laser, so degrading it is a no-op.
  const BoardId owner = lane_map_.owner(e.dest, e.wavelength);
  if (!owner.valid()) return;
  auto* term = terminals_[owner.value()];
  term->cap_lane_level(e.dest, e.wavelength, e.cap, now);
  ++stats_.lanes_degraded;
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{e.dest.value()})
        .add("wavelength", std::uint64_t{e.wavelength.value()})
        .add("owner", std::uint64_t{owner.value()})
        .add("cap", std::uint64_t{static_cast<std::uint8_t>(e.cap)});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.laser_degrade", now, args.str());
    if (auto* fr = hub_->flight()) fr->record(now, "fault.laser_degrade", args.str());
  }
#endif
  if (e.duration > 0) {
    const BoardId dest = e.dest;
    const WavelengthId w = e.wavelength;
    engine_.schedule(e.duration, [this, ob = owner.value(), dest, w] {
      terminals_[ob]->clear_lane_level_cap(dest, w);
#if !defined(ERAPID_NO_OBS)
      if (hub_ != nullptr) {
        obs::Args args;
        args.add("dest", std::uint64_t{dest.value()})
            .add("wavelength", std::uint64_t{w.value()});
        ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.cap_clear", engine_.now(),
                             args.str());
      }
#endif
    }, "fault.cap_clear");
  }
}

void FaultInjector::inject_bit_error(const FaultEvent& e, Cycle now) {
  // Per-packet corruption probability from the per-bit BER: a packet is
  // dropped iff any of its bits flips (CRC catches everything, corrects
  // nothing).
  const double p_pkt =
      e.ber >= 1.0 ? 1.0
                   : 1.0 - std::pow(1.0 - e.ber, static_cast<double>(cfg_.packet_bits()));
  const Cycle until = e.duration > 0 ? now + e.duration : kNeverCycle;
  // Per-lane seed: deterministic, independent of every other lane's stream
  // and of event order.
  const std::uint64_t lane_key =
      static_cast<std::uint64_t>(e.dest.value()) * cfg_.num_wavelengths() +
      e.wavelength.value() + 1;
  const std::uint64_t seed = plan_.seed ^ (0x9E3779B97F4A7C15ULL * lane_key);
  receivers_[static_cast<std::size_t>(e.dest.value()) * cfg_.num_wavelengths() +
             e.wavelength.value()]
      ->set_bit_error(p_pkt, until, seed);
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{e.dest.value()})
        .add("wavelength", std::uint64_t{e.wavelength.value()})
        .add("duration", std::uint64_t{e.duration});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.bit_error", now, args.str());
  }
#endif
}

void FaultInjector::inject_rc_crash(const FaultEvent& e, Cycle now) {
  if (manager_.rc_dead(e.board)) return;  // double crash is idempotent
  manager_.crash_rc(e.board, now);
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("board", std::uint64_t{e.board.value()});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.rc_crash", now, args.str());
  }
#endif
  if (e.repair_at != 0) {
    const BoardId b = e.board;
    engine_.schedule_at(e.repair_at, [this, b] {
      const Cycle t = engine_.now();
      manager_.repair_rc(b, t);
      stats_.last_recovery = std::max(stats_.last_recovery, t);
#if !defined(ERAPID_NO_OBS)
      if (hub_ != nullptr) {
        obs::Args args;
        args.add("board", std::uint64_t{b.value()});
        ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.rc_repair", t, args.str());
      }
#endif
    }, "fault.rc_repair");
  }
}

void FaultInjector::on_grant(BoardId src, BoardId dest, WavelengthId w, Cycle at) {
  // Any lane src gains toward dest re-homes the broken flow: the scheduler
  // spreads the queue over all owned lanes, so one replacement suffices.
  const auto it = std::find_if(pending_.begin(), pending_.end(), [&](const PendingReroute& p) {
    return p.src == src && p.dest == dest;
  });
  if (it != pending_.end()) {
    ++stats_.reroutes_completed;
    stats_.last_recovery = std::max(stats_.last_recovery, at);
    stats_.worst_time_to_reroute = std::max(stats_.worst_time_to_reroute, at - it->failed_at);
    ERAPID_OBSERVE(hub_, m_reroute_wait_, static_cast<double>(at - it->failed_at));
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr) {
      obs::Args args;
      args.add("src", std::uint64_t{src.value()})
          .add("dest", std::uint64_t{dest.value()})
          .add("wait", std::uint64_t{at - it->failed_at});
      ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.reroute_done", at, args.str());
    }
#endif
    pending_.erase(it);
  }

  // Re-admission: a repaired lane (dest, w) gaining an owner again means
  // DBR folded it back into the pool. The full outage (fail → re-grant)
  // feeds the recovery-time monitor.
  const auto rit = std::find_if(readmit_.begin(), readmit_.end(), [&](const Readmit& r) {
    return r.dest == dest && r.wavelength == w;
  });
  if (rit == readmit_.end()) return;
  ++stats_.readmissions_completed;
  stats_.last_recovery = std::max(stats_.last_recovery, at);
  const CycleDelta wait = at - rit->repaired_at;
  stats_.worst_readmission_wait = std::max(stats_.worst_readmission_wait, wait);
  ERAPID_OBSERVE(hub_, m_readmit_wait_, static_cast<double>(wait));
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    if (auto* mon = hub_->monitors()) mon->recovery(at, at - rit->failed_at);
    obs::Args args;
    args.add("dest", std::uint64_t{dest.value()})
        .add("wavelength", std::uint64_t{w.value()})
        .add("owner", std::uint64_t{src.value()})
        .add("wait", std::uint64_t{wait});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.readmitted", at, args.str());
  }
#endif
  readmit_.erase(rit);
}

bool FaultInjector::ctrl_fault(reconfig::CtrlStage stage, BoardId b) {
  auto& budget = drop_budget_[stage_index(stage)][b.value()];
  if (budget > 0) {
    --budget;
    return true;
  }
  return rng_.next_bernoulli(plan_.ctrl_drop_prob);
}

RecoveryStats FaultInjector::stats() const {
  RecoveryStats s = stats_;
  s.reroutes_pending = pending_.size();
  s.readmissions_pending = readmit_.size();
  for (const auto* t : terminals_) {
    s.crc_dropped += t->crc_naks();
    s.arq_retransmits += t->arq_retransmits();
    s.arq_dead_letters += t->arq_dead_letters();
  }
  const auto& c = manager_.counters();
  s.ctrl_drops = c.ctrl_drops;
  s.ctrl_retries = c.ctrl_retries;
  s.ctrl_timeouts = c.ctrl_timeouts;
  s.ctrl_exhausted = c.ctrl_exhausted_drops;
  s.stale_directives = c.stale_directives;
  s.rc_crashes = c.rc_crashes;
  s.rc_repairs = c.rc_repairs;
  s.watchdog_fires = c.watchdog_fires;
  s.tokens_regenerated = c.tokens_regenerated;
  s.frozen_windows = c.frozen_windows;
  return s;
}

}  // namespace erapid::fault
