#include "fault/injector.hpp"

#include <algorithm>

#include "obs/probe.hpp"
#include "util/expect.hpp"

namespace erapid::fault {

namespace {

std::size_t stage_index(reconfig::CtrlStage s) {
  return s == reconfig::CtrlStage::PowerChain ? 0 : 1;
}

std::size_t target_index(CtrlTarget t) { return t == CtrlTarget::Chain ? 0 : 1; }

}  // namespace

FaultInjector::FaultInjector(des::Engine& engine, const topology::SystemConfig& cfg,
                             topology::LaneMap& lane_map,
                             reconfig::ReconfigManager& manager,
                             std::vector<optical::OpticalTerminal*> terminals,
                             FaultPlan plan, obs::Hub* hub)
    : engine_(engine),
      cfg_(cfg),
      lane_map_(lane_map),
      manager_(manager),
      terminals_(std::move(terminals)),
      plan_(std::move(plan)),
      rng_(plan_.seed),
      hub_(hub) {
  ERAPID_EXPECT(terminals_.size() == cfg_.num_boards_total(),
                "one optical terminal per board required");
  plan_.validate(cfg_);
  drop_budget_[0].assign(terminals_.size(), 0);
  drop_budget_[1].assign(terminals_.size(), 0);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_faults_ = hub_->metrics().counter("fault.injected");
    m_reroute_wait_ = hub_->metrics().series("fault.reroute_wait");
  }
#endif
}

void FaultInjector::arm() {
  if (plan_.empty()) return;
  ERAPID_EXPECT(!armed_, "fault plan armed twice");
  armed_ = true;

  const bool any_ctrl =
      plan_.ctrl_drop_prob > 0.0 ||
      std::any_of(plan_.events.begin(), plan_.events.end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::CtrlDrop; });
  const bool any_lane_fail =
      std::any_of(plan_.events.begin(), plan_.events.end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::LaneFail; });

  if (any_ctrl) {
    manager_.set_ctrl_fault_hook([this](reconfig::CtrlStage s, BoardId b, std::uint32_t) {
      return ctrl_fault(s, b);
    });
  }
  if (any_lane_fail) {
    manager_.set_grant_observer([this](BoardId src, BoardId dest, Cycle at) {
      on_grant(src, dest, at);
    });
    manager_.set_window_observer([this](std::uint64_t, Cycle) {
      if (!pending_.empty()) ++stats_.degraded_windows;
    });
  }

  for (const auto& e : plan_.events) {
    ERAPID_EXPECT(e.at >= engine_.now(), "fault event scheduled in the past: " + e.format());
    engine_.schedule_at(e.at, [this, e] { inject(e); }, "fault.inject");
  }
}

void FaultInjector::inject(const FaultEvent& e) {
  const Cycle now = engine_.now();
  switch (e.kind) {
    case FaultKind::LaneFail:
      inject_lane_fail(e.dest, e.wavelength, now);
      break;
    case FaultKind::LaserDegrade:
      inject_laser_degrade(e, now);
      break;
    case FaultKind::CtrlDrop:
      drop_budget_[target_index(e.target)][e.board.value()] += e.count;
      break;
    default:
      ERAPID_UNREACHABLE("unmodeled fault kind " << static_cast<int>(e.kind));
  }
}

void FaultInjector::inject_lane_fail(BoardId dest, WavelengthId w, Cycle now) {
  if (lane_map_.is_failed(dest, w)) return;  // double failure is idempotent
  const BoardId owner = lane_map_.owner(dest, w);
  lane_map_.mark_failed(dest, w);
  ++stats_.lanes_failed;
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{dest.value()})
        .add("wavelength", std::uint64_t{w.value()})
        .add("owner", owner.valid() ? std::uint64_t{owner.value()} : std::uint64_t{0});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.lane_fail", now, args.str());
  }
#endif
  if (owner.valid()) {
    stats_.packets_rehomed += terminals_[owner.value()]->fail_lane(dest, w, now);
    pending_.push_back({owner, dest, now});
  }
}

void FaultInjector::inject_laser_degrade(const FaultEvent& e, Cycle now) {
  // The fault is the owning transmitter's VCSEL losing drive margin; a dark
  // lane has no driving laser, so degrading it is a no-op.
  const BoardId owner = lane_map_.owner(e.dest, e.wavelength);
  if (!owner.valid()) return;
  auto* term = terminals_[owner.value()];
  term->cap_lane_level(e.dest, e.wavelength, e.cap, now);
  ++stats_.lanes_degraded;
  stats_.first_failure = std::min(stats_.first_failure, now);
  ERAPID_COUNTER(hub_, m_faults_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("dest", std::uint64_t{e.dest.value()})
        .add("wavelength", std::uint64_t{e.wavelength.value()})
        .add("owner", std::uint64_t{owner.value()})
        .add("cap", std::uint64_t{static_cast<std::uint8_t>(e.cap)});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.laser_degrade", now, args.str());
  }
#endif
  if (e.duration > 0) {
    const BoardId dest = e.dest;
    const WavelengthId w = e.wavelength;
    engine_.schedule(e.duration, [this, ob = owner.value(), dest, w] {
      terminals_[ob]->clear_lane_level_cap(dest, w);
#if !defined(ERAPID_NO_OBS)
      if (hub_ != nullptr) {
        obs::Args args;
        args.add("dest", std::uint64_t{dest.value()})
            .add("wavelength", std::uint64_t{w.value()});
        ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.cap_clear", engine_.now(),
                             args.str());
      }
#endif
    }, "fault.cap_clear");
  }
}

void FaultInjector::on_grant(BoardId src, BoardId dest, Cycle at) {
  // Any lane src gains toward dest re-homes the broken flow: the scheduler
  // spreads the queue over all owned lanes, so one replacement suffices.
  const auto it = std::find_if(pending_.begin(), pending_.end(), [&](const PendingReroute& p) {
    return p.src == src && p.dest == dest;
  });
  if (it == pending_.end()) return;
  ++stats_.reroutes_completed;
  stats_.last_recovery = std::max(stats_.last_recovery, at);
  stats_.worst_time_to_reroute = std::max(stats_.worst_time_to_reroute, at - it->failed_at);
  ERAPID_OBSERVE(hub_, m_reroute_wait_, static_cast<double>(at - it->failed_at));
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("src", std::uint64_t{src.value()})
        .add("dest", std::uint64_t{dest.value()})
        .add("wait", std::uint64_t{at - it->failed_at});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.reroute_done", at, args.str());
  }
#endif
  pending_.erase(it);
}

bool FaultInjector::ctrl_fault(reconfig::CtrlStage stage, BoardId b) {
  auto& budget = drop_budget_[stage_index(stage)][b.value()];
  if (budget > 0) {
    --budget;
    return true;
  }
  return rng_.next_bernoulli(plan_.ctrl_drop_prob);
}

RecoveryStats FaultInjector::stats() const {
  RecoveryStats s = stats_;
  s.reroutes_pending = pending_.size();
  const auto& c = manager_.counters();
  s.ctrl_drops = c.ctrl_drops;
  s.ctrl_retries = c.ctrl_retries;
  s.ctrl_timeouts = c.ctrl_timeouts;
  s.stale_directives = c.stale_directives;
  return s;
}

}  // namespace erapid::fault
