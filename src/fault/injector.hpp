// FaultInjector — replays a FaultPlan against a live network and measures
// how the Lock-Step plane recovers.
//
// The injector owns no model state: it schedules its events on the shared
// DES engine and mutates the same LaneMap / OpticalTerminal / Reconfig-
// Manager objects the protocol uses, so a failure is indistinguishable
// from real hardware dying mid-window. With an empty plan arm() schedules
// nothing and installs no hooks — the event stream (and therefore every
// statistic) is byte-identical to a run without the fault subsystem.
//
// Recovery measurement. When a lane owned by board s dies, the flow s→d
// it carried is "pending reroute" until s next gains *any* lane toward d
// (observed through the manager's grant hook) — at which point the DBR
// plane has re-homed the flow and time-to-reroute is the grant cycle
// minus the failure cycle. A reconfiguration window that opens while any
// reroute is pending counts as degraded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "fault/plan.hpp"
#include "optical/terminal.hpp"
#include "reconfig/manager.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"
#include "util/rng.hpp"

namespace erapid::fault {

/// What the faults did and how the protocol absorbed them. ctrl_* and
/// stale_directives mirror the manager's ControlCounters (copied at
/// stats() time so the struct is self-contained for reports).
struct RecoveryStats {
  std::uint64_t lanes_failed = 0;    ///< lane deaths injected
  std::uint64_t lanes_degraded = 0;  ///< laser caps applied (skips dark lanes)
  std::uint64_t packets_rehomed = 0; ///< in-flight packets re-queued on failure
  std::uint64_t reroutes_completed = 0;
  std::uint64_t reroutes_pending = 0;   ///< failed flows never re-homed
  std::uint64_t degraded_windows = 0;   ///< windows opened with a reroute pending
  Cycle first_failure = kNeverCycle;
  Cycle last_recovery = 0;
  CycleDelta worst_time_to_reroute = 0;

  // ---- self-healing: lane repair and re-admission ----
  std::uint64_t lanes_repaired = 0;          ///< transient failures repaired
  std::uint64_t readmissions_completed = 0;  ///< repaired lanes re-granted by DBR
  std::uint64_t readmissions_pending = 0;    ///< repaired but not yet re-granted
  CycleDelta worst_downtime = 0;             ///< longest fail→repair outage
  CycleDelta worst_readmission_wait = 0;     ///< longest repair→re-grant wait

  // ---- data-plane integrity (CRC + link-level ARQ) ----
  std::uint64_t crc_dropped = 0;       ///< packets failing the RX CRC check
  std::uint64_t arq_retransmits = 0;   ///< bounded retransmissions issued
  std::uint64_t arq_dead_letters = 0;  ///< packets abandoned after the retry limit

  // ---- control plane (mirrors the manager's ControlCounters) ----
  std::uint64_t ctrl_drops = 0;
  std::uint64_t ctrl_retries = 0;
  std::uint64_t ctrl_timeouts = 0;
  std::uint64_t ctrl_exhausted = 0;  ///< drops that exhausted the retry budget
  std::uint64_t stale_directives = 0;
  std::uint64_t rc_crashes = 0;
  std::uint64_t rc_repairs = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t tokens_regenerated = 0;
  std::uint64_t frozen_windows = 0;

  /// True when any fault actually touched the run (gates report output).
  [[nodiscard]] bool any() const {
    return lanes_failed || lanes_degraded || lanes_repaired || crc_dropped ||
           ctrl_drops || ctrl_timeouts || rc_crashes || stale_directives;
  }
};

/// Schedules a FaultPlan's events and tracks recovery.
class FaultInjector {
 public:
  /// `terminals` is indexed by board id (same vector the manager holds).
  /// `receivers` is the flat [board * W + wavelength] array (required only
  /// when the plan contains BitError events; may be empty otherwise).
  /// Validates the plan against `cfg` (throws on out-of-range events).
  /// `hub` (optional) receives fault/recovery instant marks.
  FaultInjector(des::Engine& engine, const topology::SystemConfig& cfg,
                topology::LaneMap& lane_map, reconfig::ReconfigManager& manager,
                std::vector<optical::OpticalTerminal*> terminals, FaultPlan plan,
                obs::Hub* hub = nullptr,
                std::vector<optical::Receiver*> receivers = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules all plan events and installs the manager hooks. No-op for
  /// an empty plan. Call once, before the first event's cycle.
  void arm();

  /// Live recovery metrics (control counters copied from the manager).
  [[nodiscard]] RecoveryStats stats() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Failed flows still awaiting a replacement grant.
  [[nodiscard]] std::size_t pending_reroutes() const { return pending_.size(); }

 private:
  struct PendingReroute {
    BoardId src;
    BoardId dest;
    Cycle failed_at = 0;
  };
  /// A lane currently down, awaiting its scheduled repair.
  struct FailedLane {
    BoardId dest;
    WavelengthId wavelength;
    BoardId owner;  ///< owner at failure time (invalid = was dark)
    Cycle failed_at = 0;
  };
  /// A repaired lane awaiting its DBR re-grant (re-admission).
  struct Readmit {
    BoardId dest;
    WavelengthId wavelength;
    Cycle failed_at = 0;
    Cycle repaired_at = 0;
  };

  void inject(const FaultEvent& e);
  void inject_lane_fail(BoardId dest, WavelengthId w, Cycle now, Cycle repair_at);
  void inject_laser_degrade(const FaultEvent& e, Cycle now);
  void inject_bit_error(const FaultEvent& e, Cycle now);
  void inject_rc_crash(const FaultEvent& e, Cycle now);
  void repair_lane(BoardId dest, WavelengthId w, Cycle now);
  void on_grant(BoardId src, BoardId dest, WavelengthId w, Cycle at);
  [[nodiscard]] bool ctrl_fault(reconfig::CtrlStage stage, BoardId b);

  des::Engine& engine_;
  const topology::SystemConfig& cfg_;
  topology::LaneMap& lane_map_;
  reconfig::ReconfigManager& manager_;
  std::vector<optical::OpticalTerminal*> terminals_;
  FaultPlan plan_;
  util::Rng rng_;  ///< dedicated stream for random ctrl loss (plan.seed)
  std::vector<optical::Receiver*> receivers_;  ///< [b*W + w]; empty unless BitError

  bool armed_ = false;
  RecoveryStats stats_;
  std::vector<PendingReroute> pending_;
  std::vector<FailedLane> failed_;
  std::vector<Readmit> readmit_;
  obs::Hub* hub_;
  obs::MetricId m_faults_ = 0;
  obs::MetricId m_reroute_wait_ = 0;
  // Recovery histograms: registered only when the plan holds a transient
  // LaneFail, so plans without one (and every committed fixture) see an
  // unchanged metric namespace.
  obs::MetricId m_downtime_ = 0;
  obs::MetricId m_readmit_wait_ = 0;
  /// Outstanding deterministic ctrl_drop budget, [stage][board] — the hook
  /// consumes these before drawing from the random process.
  std::vector<std::uint32_t> drop_budget_[2];
};

}  // namespace erapid::fault
