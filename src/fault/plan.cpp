#include "fault/plan.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/expect.hpp"

namespace erapid::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::uint64_t parse_u64(const std::string& tok, const std::string& spec) {
  ERAPID_EXPECT(!tok.empty(), "empty number in fault spec: '" + spec + "'");
  std::uint64_t v = 0;
  for (const char c : tok) {
    ERAPID_EXPECT(c >= '0' && c <= '9', "bad number '" + tok + "' in fault spec: '" + spec + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Parses a "<letter><number>" token like "d2" / "w1" / "b0" / "n3".
std::uint32_t parse_tagged(const std::string& tok, char tag, const std::string& spec) {
  ERAPID_EXPECT(tok.size() >= 2 && tok[0] == tag,
                std::string("expected '") + tag + "<n>' in fault spec: '" + spec + "'");
  return static_cast<std::uint32_t>(parse_u64(tok.substr(1), spec));
}

power::PowerLevel parse_cap(const std::string& tok, const std::string& spec) {
  if (tok == "low") return power::PowerLevel::Low;
  if (tok == "mid") return power::PowerLevel::Mid;
  if (tok == "high") return power::PowerLevel::High;
  ERAPID_EXPECT(false, "bad degradation cap '" + tok + "' (low|mid|high) in fault spec: '" +
                           spec + "'");
  return power::PowerLevel::Low;
}

/// Parses a "p<double>" token like "p0.001"; the value must round-trip
/// exactly through format() (17 significant digits).
double parse_ber(const std::string& tok, const std::string& spec) {
  ERAPID_EXPECT(tok.size() >= 2 && tok[0] == 'p',
                "expected 'p<ber>' in fault spec: '" + spec + "'");
  const std::string num = tok.substr(1);
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  ERAPID_EXPECT(end == num.c_str() + num.size() && !num.empty(),
                "bad BER '" + num + "' in fault spec: '" + spec + "'");
  ERAPID_EXPECT(v > 0.0 && v <= 1.0,
                "BER must be in (0, 1] in fault spec: '" + spec + "'");
  return v;
}

std::string format_ber(double ber) {
  std::ostringstream os;
  os << std::setprecision(17) << ber;
  return os.str();
}

std::string cap_name(power::PowerLevel cap) {
  switch (cap) {
    case power::PowerLevel::Low: return "low";
    case power::PowerLevel::Mid: return "mid";
    case power::PowerLevel::High: return "high";
    case power::PowerLevel::Off: break;
  }
  ERAPID_UNREACHABLE("degradation cap cannot be OFF");
}

/// True when two events of the same kind fire at the same cycle against
/// the same target — a plan author error the parser rejects outright.
bool collides(const FaultEvent& a, const FaultEvent& b) {
  if (a.kind != b.kind || a.at != b.at) return false;
  switch (a.kind) {
    case FaultKind::LaneFail:
    case FaultKind::LaserDegrade:
    case FaultKind::BitError:
      return a.dest == b.dest && a.wavelength == b.wavelength;
    case FaultKind::CtrlDrop:
      return a.board == b.board && a.target == b.target;
    case FaultKind::RcCrash:
      return a.board == b.board;
  }
  ERAPID_UNREACHABLE("unmodeled fault kind " << static_cast<int>(a.kind));
}

void reject_duplicates(const std::vector<FaultEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      ERAPID_EXPECT(!collides(events[i], events[j]),
                    "duplicate same-cycle fault on one target: '" + events[i].format() +
                        "' vs '" + events[j].format() + "'");
    }
  }
}

}  // namespace

FaultEvent FaultEvent::parse(const std::string& spec) {
  const auto at_pos = spec.find('@');
  ERAPID_EXPECT(at_pos != std::string::npos, "fault spec missing '@cycle': '" + spec + "'");
  const std::string kind = spec.substr(0, at_pos);
  const auto toks = split(spec.substr(at_pos + 1), ':');
  ERAPID_EXPECT(!toks.empty(), "fault spec missing cycle: '" + spec + "'");

  FaultEvent e;
  e.at = parse_u64(toks[0], spec);

  if (kind == "lane_fail") {
    ERAPID_EXPECT(toks.size() == 3 || toks.size() == 4,
                  "lane_fail@<cycle>:d<dest>:w<wavelength>[:r<repair>]: '" + spec + "'");
    e.kind = FaultKind::LaneFail;
    e.dest = BoardId{parse_tagged(toks[1], 'd', spec)};
    e.wavelength = WavelengthId{parse_tagged(toks[2], 'w', spec)};
    if (toks.size() == 4) {
      ERAPID_EXPECT(toks[3].size() >= 2 && toks[3][0] == 'r',
                    "expected 'r<cycle>' in fault spec: '" + spec + "'");
      e.repair_at = parse_u64(toks[3].substr(1), spec);
      ERAPID_EXPECT(e.repair_at > e.at,
                    "repair cycle must come strictly after injection: '" + spec + "'");
    }
  } else if (kind == "bit_error") {
    ERAPID_EXPECT(toks.size() == 5,
                  "bit_error@<cycle>:d<dest>:w<wavelength>:p<ber>:<duration>: '" + spec + "'");
    e.kind = FaultKind::BitError;
    e.dest = BoardId{parse_tagged(toks[1], 'd', spec)};
    e.wavelength = WavelengthId{parse_tagged(toks[2], 'w', spec)};
    e.ber = parse_ber(toks[3], spec);
    e.duration = parse_u64(toks[4], spec);
  } else if (kind == "rc_crash") {
    ERAPID_EXPECT(toks.size() == 2 || toks.size() == 3,
                  "rc_crash@<cycle>:b<board>[:r<repair>]: '" + spec + "'");
    e.kind = FaultKind::RcCrash;
    e.board = BoardId{parse_tagged(toks[1], 'b', spec)};
    if (toks.size() == 3) {
      ERAPID_EXPECT(toks[2].size() >= 2 && toks[2][0] == 'r',
                    "expected 'r<cycle>' in fault spec: '" + spec + "'");
      e.repair_at = parse_u64(toks[2].substr(1), spec);
      ERAPID_EXPECT(e.repair_at > e.at,
                    "repair cycle must come strictly after injection: '" + spec + "'");
    }
  } else if (kind == "laser_degrade") {
    ERAPID_EXPECT(toks.size() == 5,
                  "laser_degrade@<cycle>:d<dest>:w<wavelength>:<low|mid|high>:<duration>: '" +
                      spec + "'");
    e.kind = FaultKind::LaserDegrade;
    e.dest = BoardId{parse_tagged(toks[1], 'd', spec)};
    e.wavelength = WavelengthId{parse_tagged(toks[2], 'w', spec)};
    e.cap = parse_cap(toks[3], spec);
    e.duration = parse_u64(toks[4], spec);
  } else if (kind == "ctrl_drop") {
    ERAPID_EXPECT(toks.size() == 3 || toks.size() == 4,
                  "ctrl_drop@<cycle>:<ring|chain>:b<board>[:n<count>]: '" + spec + "'");
    e.kind = FaultKind::CtrlDrop;
    if (toks[1] == "ring") {
      e.target = CtrlTarget::Ring;
    } else if (toks[1] == "chain") {
      e.target = CtrlTarget::Chain;
    } else {
      ERAPID_EXPECT(false, "ctrl_drop target must be ring|chain: '" + spec + "'");
    }
    e.board = BoardId{parse_tagged(toks[2], 'b', spec)};
    e.count = toks.size() == 4 ? parse_tagged(toks[3], 'n', spec) : 1;
    ERAPID_EXPECT(e.count >= 1, "ctrl_drop count must be >= 1: '" + spec + "'");
  } else {
    ERAPID_EXPECT(false, "unknown fault kind '" + kind + "' in spec: '" + spec + "'");
  }
  return e;
}

std::string FaultEvent::format() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::LaneFail:
      os << "lane_fail@" << at << ":d" << dest.value() << ":w" << wavelength.value();
      if (repair_at != 0) os << ":r" << repair_at;
      break;
    case FaultKind::BitError:
      os << "bit_error@" << at << ":d" << dest.value() << ":w" << wavelength.value()
         << ":p" << format_ber(ber) << ":" << duration;
      break;
    case FaultKind::RcCrash:
      os << "rc_crash@" << at << ":b" << board.value();
      if (repair_at != 0) os << ":r" << repair_at;
      break;
    case FaultKind::LaserDegrade:
      os << "laser_degrade@" << at << ":d" << dest.value() << ":w" << wavelength.value()
         << ":" << cap_name(cap) << ":" << duration;
      break;
    case FaultKind::CtrlDrop:
      os << "ctrl_drop@" << at << ":" << (target == CtrlTarget::Ring ? "ring" : "chain")
         << ":b" << board.value();
      if (count != 1) os << ":n" << count;
      break;
    default:
      ERAPID_UNREACHABLE("unmodeled fault kind " << static_cast<int>(kind));
  }
  return os.str();
}

FaultPlan FaultPlan::parse_events(const std::string& specs) {
  FaultPlan plan;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      plan.events.push_back(FaultEvent::parse(cur));
      cur.clear();
    }
  };
  for (const char c : specs) {
    if (c == ' ' || c == '\t' || c == ',' || c == ';') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  reject_duplicates(plan.events);
  return plan;
}

std::string FaultPlan::format_events() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ' ';
    out += e.format();
  }
  return out;
}

void FaultPlan::validate(const topology::SystemConfig& cfg) const {
  const std::uint32_t B = cfg.num_boards_total();
  const std::uint32_t W = cfg.num_wavelengths();
  for (const auto& e : events) {
    switch (e.kind) {
      case FaultKind::LaneFail:
      case FaultKind::LaserDegrade:
      case FaultKind::BitError:
        ERAPID_EXPECT(e.dest.value() < B, "fault dest board out of range: " + e.format());
        ERAPID_EXPECT(e.wavelength.value() < W,
                      "fault wavelength out of range: " + e.format());
        break;
      case FaultKind::CtrlDrop:
      case FaultKind::RcCrash:
        ERAPID_EXPECT(e.board.value() < B, "fault board out of range: " + e.format());
        break;
      default:
        ERAPID_UNREACHABLE("unmodeled fault kind " << static_cast<int>(e.kind));
    }
    if (e.repair_at != 0) {
      ERAPID_EXPECT(e.repair_at > e.at,
                    "repair cycle must come strictly after injection: " + e.format());
    }
    if (e.kind == FaultKind::BitError) {
      ERAPID_EXPECT(e.ber > 0.0 && e.ber <= 1.0, "BER must be in (0, 1]: " + e.format());
    }
  }
  reject_duplicates(events);
  ERAPID_EXPECT(ctrl_drop_prob >= 0.0 && ctrl_drop_prob <= 1.0,
                "fault.ctrl_drop_prob must be in [0, 1]");
}

}  // namespace erapid::fault
