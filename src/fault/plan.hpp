// Fault plan — the deterministic schedule of perturbations one simulation
// injects against the Lock-Step reconfiguration plane.
//
// The paper's evaluation exercises only the happy path: no lane dies, no
// control packet is lost. Reconfigurable optics exist to absorb exactly
// these perturbations (cf. Han et al., arXiv:2112.02083; D3NOC,
// arXiv:1708.06721), so the plan models five fault classes:
//
//   * lane failure — the (dest, wavelength) channel goes dark; the owner's
//     in-flight packet is re-homed and DBR re-solves the allocation around
//     the dead lane. Permanent by default; with a repair cycle (`:rN`) the
//     lane is fixed at that cycle and re-enters the DBR pool at the next
//     bandwidth window (self-healing);
//   * transient laser degradation — the owning transmitter's VCSEL can no
//     longer sustain its rated drive: its power level is capped for a
//     duration (bandwidth drops, the flow backs up, DBR compensates);
//   * bit-error burst — a seeded deterministic BER process corrupts packets
//     on one lane for a duration; the RX CRC check drops them and the
//     link-level ARQ path retransmits (bounded, exponential backoff);
//   * control-packet loss — a board's Lock-Step packet on the RC ring or
//     the on-board LC chain is dropped `count` consecutive times; the RC
//     retries (bounded) and eventually sits the window out;
//   * RC crash — a board's reconfiguration controller dies: the ring token
//     it may hold is lost (the watchdog regenerates it), the ring bypasses
//     the dead RC, and its lanes freeze at their last allocation until an
//     optional repair (`:rN`) brings it back.
//
// Everything is deterministic: explicit events fire at fixed cycles, and
// the optional random control-loss process draws from a dedicated
// seed-pinned RNG stream, so two runs of the same plan are byte-identical.
//
// A plan round-trips through a single INI value (sim/options_io key
// "fault.events") as a whitespace-separated list of event specs:
//
//   lane_fail@5000:d2:w1
//   lane_fail@5000:d2:w1:r9000
//   laser_degrade@8000:d3:w2:low:4000
//   bit_error@4000:d2:w2:p0.001:6000
//   ctrl_drop@6000:ring:b1:n2
//   ctrl_drop@7000:chain:b0
//   rc_crash@8000:b2:r15000
//
// Cross-field validation happens at parse time: a repair cycle must lie
// strictly after the injection cycle, a BER must be in (0, 1], and two
// events of the same kind may not hit the same lane (or board) at the
// same cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/link_power.hpp"
#include "topology/config.hpp"
#include "util/types.hpp"

namespace erapid::fault {

/// The five modelled fault classes.
enum class FaultKind : std::uint8_t { LaneFail, LaserDegrade, CtrlDrop, BitError, RcCrash };

/// Which control-plane medium a CtrlDrop targets.
enum class CtrlTarget : std::uint8_t { Ring, Chain };

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::LaneFail;
  Cycle at = 0;  ///< injection time (absolute simulation cycle)

  // LaneFail / LaserDegrade / BitError: the victim lane (dest, wavelength).
  BoardId dest;
  WavelengthId wavelength;

  // LaneFail / RcCrash: absolute repair cycle; 0 = never (permanent).
  Cycle repair_at = 0;

  // LaserDegrade only.
  power::PowerLevel cap = power::PowerLevel::Low;  ///< forced maximum level
  CycleDelta duration = 0;  ///< LaserDegrade/BitError: 0 = until end of run

  // BitError only: per-bit error probability, in (0, 1].
  double ber = 0.0;

  // CtrlDrop only.
  CtrlTarget target = CtrlTarget::Ring;
  BoardId board;            ///< CtrlDrop/RcCrash: whose controller is hit
  std::uint32_t count = 1;  ///< consecutive attempts dropped

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;

  /// Parses one event spec (grammar in the file comment). Throws
  /// ModelInvariantError on malformed specs.
  [[nodiscard]] static FaultEvent parse(const std::string& spec);

  /// Inverse of parse (exact round-trip).
  [[nodiscard]] std::string format() const;
};

/// The full fault schedule for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Random control-plane loss: each (stage, board, attempt) transmission
  /// is independently lost with this probability, drawn from a dedicated
  /// RNG stream seeded with `seed` (never from the workload RNG).
  double ctrl_drop_prob = 0.0;
  std::uint64_t seed = 1;

  /// True when the plan perturbs nothing — the simulation must then be
  /// byte-identical to a build without the fault subsystem.
  [[nodiscard]] bool empty() const { return events.empty() && ctrl_drop_prob == 0.0; }

  /// Parses a whitespace/comma/semicolon-separated list of event specs.
  [[nodiscard]] static FaultPlan parse_events(const std::string& specs);

  /// Serializes events back to the spec list ("" when none).
  [[nodiscard]] std::string format_events() const;

  /// Rejects events that reference boards/wavelengths outside `cfg` or
  /// lanes a board would drive to itself.
  void validate(const topology::SystemConfig& cfg) const;
};

}  // namespace erapid::fault
