#include "router/injector.hpp"

#include <algorithm>

namespace erapid::router {

FlitInjector::FlitInjector(des::Engine& engine, Router& router, std::uint32_t in_port,
                           std::uint32_t vcs, std::uint32_t credits_per_vc,
                           std::uint32_t cycles_per_flit)
    : engine_(engine),
      router_(router),
      in_port_(in_port),
      cycles_per_flit_(cycles_per_flit),
      credits_(vcs, credits_per_vc),
      vc_pick_(vcs) {
  ERAPID_EXPECT(cycles_per_flit >= 1, "channel must take >= 1 cycle per flit");
  router_.set_credit_return(in_port_,
                            [this](std::uint32_t vc, Cycle now) { on_credit(vc, now); });
}

bool FlitInjector::try_start(const Packet& p, Cycle now) {
  if (in_flight_) return false;
  // Pick a VC with at least one credit, round-robin for fairness. When
  // every VC is out of credits we still commit to one and stall: the
  // credit-return callback resumes the stream, so the caller never needs
  // its own retry timer.
  std::vector<bool> req(credits_.size());
  bool any = false;
  for (std::size_t v = 0; v < credits_.size(); ++v) {
    req[v] = credits_[v] > 0;
    any = any || req[v];
  }
  if (!any) std::fill(req.begin(), req.end(), true);
  vc_ = vc_pick_.arbitrate(req);

  in_flight_ = true;
  current_ = p;
  current_.injected = now;
  next_flit_ = 0;
  stalled_ = false;
  if (!send_scheduled_) {
    send_scheduled_ = true;
    // First flit needs one channel traversal.
    engine_.schedule(cycles_per_flit_, [this] { send_next(); });
  }
  return true;
}

void FlitInjector::send_next() {
  send_scheduled_ = false;
  if (!in_flight_) return;
  if (credits_[vc_] == 0) {
    stalled_ = true;  // resume from on_credit
    return;
  }
  const Cycle now = engine_.now();
  Flit f = make_flit(current_, next_flit_);
  f.injected = current_.injected;
  --credits_[vc_];
  router_.accept_flit(in_port_, vc_, f, now);
  ++next_flit_;

  if (next_flit_ == current_.flits) {
    in_flight_ = false;
    ++packets_sent_;
    if (on_idle_) on_idle_(now);
    return;
  }
  send_scheduled_ = true;
  engine_.schedule(cycles_per_flit_, [this] { send_next(); });
}

void FlitInjector::on_credit(std::uint32_t vc, Cycle /*now*/) {
  ++credits_[vc];
  if (stalled_ && vc == vc_ && in_flight_ && !send_scheduled_) {
    stalled_ = false;
    send_scheduled_ = true;
    // Resume next cycle (credit processing takes a cycle).
    engine_.schedule(1, [this] { send_next(); });
  }
}

EjectionUnit::EjectionUnit(Router& router, std::uint32_t vcs,
                           std::function<void(const Packet&, Cycle)> on_packet)
    : router_(router), expected_index_(vcs, 0), on_packet_(std::move(on_packet)) {}

void EjectionUnit::receive_flit(const Flit& f, std::uint32_t vc, Cycle now) {
  ERAPID_EXPECT(vc < expected_index_.size(), "ejection VC out of range");
  ERAPID_EXPECT(f.index == expected_index_[vc],
                "flit arrived out of order within a VC (wormhole violated)");
  expected_index_[vc] = f.tail ? 0 : f.index + 1;
  // The node drains unconditionally: credit goes straight back.
  router_.return_credit(out_port_, vc);
  if (f.tail) {
    ++packets_;
    if (on_packet_) on_packet_(packet_from_flit(f), now);
  }
}

}  // namespace erapid::router
