// Cycle-accurate virtual-channel wormhole router — the Intra-Board
// Interconnect (IBI) of paper §2.1 / Figure 2(a).
//
// Microarchitecture (Table 1, SGI-Spider-derived):
//   * per-input-port virtual channels with private flit buffers;
//   * credit-based flow control on both sides (1-cycle credit delay);
//   * per-packet stages: route computation (RC), VC allocation (VA);
//   * per-flit stages: switch allocation (SA), switch traversal (ST);
//     each stage costs one router cycle;
//   * separable allocators built from round-robin arbiters: VA arbitrates
//     input VCs per free output VC; SA is input-first (one candidate VC per
//     input port) then output-first (one input per output port);
//   * output channels serialize flits at a configurable rate (16-bit phits
//     at 400 MHz => 4 cycles per 64-bit flit).
//
// Timing discipline: every stage transition is gated on `now >
// state_since`, so a flit observes at least one cycle per stage and the
// result is independent of same-cycle event ordering (deterministic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "router/arbiter.hpp"
#include "router/flit.hpp"
#include "util/expect.hpp"

namespace erapid::router {

/// Downstream endpoint of a router output port.
class FlitReceiver {
 public:
  virtual ~FlitReceiver() = default;

  /// Called when a flit has fully traversed the output channel. `out_vc`
  /// is the downstream virtual channel VA assigned. The receiver owns a
  /// buffer of the credits it granted and must return credits via the
  /// CreditReturn handle it was constructed with.
  virtual void receive_flit(const Flit& f, std::uint32_t out_vc, Cycle now) = 0;
};

/// Configuration of one router output port.
struct OutputPortConfig {
  FlitReceiver* sink = nullptr;
  std::uint32_t vcs = 1;              ///< downstream virtual channels
  std::uint32_t credits_per_vc = 8;   ///< downstream buffer depth (flits)
  std::uint32_t cycles_per_flit = 4;  ///< channel serialization time
  std::uint32_t wire_delay = 0;       ///< extra propagation cycles
};

/// Routing function: maps a head flit to an output port index.
using RouteFn = std::function<std::uint32_t(const Flit&)>;

/// Upstream credit callback: (vc, now) for one freed input-buffer slot.
using CreditFn = std::function<void(std::uint32_t, Cycle)>;

/// Aggregate router activity counters (for tests and microbenchmarks).
struct RouterCounters {
  std::uint64_t flits_in = 0;
  std::uint64_t flits_out = 0;
  std::uint64_t packets_routed = 0;
  std::uint64_t va_grants = 0;
  std::uint64_t sa_grants = 0;
  std::uint64_t sa_conflicts = 0;  ///< SA requests denied per cycle
};

/// The VC wormhole router.
class Router : public des::Clocked {
 public:
  Router(des::Engine& engine, des::ClockDomain& domain, std::string name,
         std::uint32_t num_inputs, std::uint32_t vcs_per_input,
         std::uint32_t vc_depth_flits, std::uint32_t credit_delay, RouteFn route);

  /// Adds an output port; returns its index. All outputs must be added
  /// before the first flit arrives.
  std::uint32_t add_output(const OutputPortConfig& cfg);

  /// Registers the upstream credit sink for an input port.
  void set_credit_return(std::uint32_t in_port, CreditFn fn);

  // --- upstream-facing flit interface (upstream tracks its own credits) ---
  [[nodiscard]] bool can_accept(std::uint32_t in_port, std::uint32_t vc) const;
  void accept_flit(std::uint32_t in_port, std::uint32_t vc, const Flit& f, Cycle now);

  /// Downstream calls this when it frees one flit slot on (out_port, vc).
  void return_credit(std::uint32_t out_port, std::uint32_t vc);

  // --- des::Clocked ---
  void tick(Cycle now) override;
  [[nodiscard]] bool quiescent() const override;

  [[nodiscard]] const RouterCounters& counters() const { return counters_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t num_inputs() const { return static_cast<std::uint32_t>(inputs_.size()); }
  [[nodiscard]] std::uint32_t num_outputs() const { return static_cast<std::uint32_t>(outputs_.size()); }

  /// Buffered flits on one input VC (tests/inspection).
  [[nodiscard]] std::size_t vc_occupancy(std::uint32_t in_port, std::uint32_t vc) const {
    return inputs_[in_port].vcs[vc].buf.size();
  }

 private:
  enum class VcState : std::uint8_t { Idle, Routing, VcAlloc, Active };

  struct VirtualChannel {
    std::deque<Flit> buf;
    VcState state = VcState::Idle;
    Cycle state_since = 0;
    std::uint32_t out_port = 0;
    std::uint32_t out_vc = 0;
  };

  struct InputPort {
    std::vector<VirtualChannel> vcs;
    CreditFn credit_return;
  };

  struct OutputPort {
    OutputPortConfig cfg;
    std::vector<std::uint32_t> credits;  ///< per downstream VC
    std::vector<bool> vc_taken;          ///< downstream VC held by an input VC
    Cycle busy_until = 0;                ///< channel serializing until
    RoundRobinArbiter vc_arb;            ///< VA arbiter over input VCs
    RoundRobinArbiter sa_arb;            ///< SA arbiter over input ports
    explicit OutputPort(const OutputPortConfig& c, std::uint32_t flat_vcs,
                        std::uint32_t num_inputs)
        : cfg(c), credits(c.vcs, c.credits_per_vc), vc_taken(c.vcs, false),
          vc_arb(flat_vcs), sa_arb(num_inputs) {}
  };

  void stage_route(Cycle now);
  void stage_vc_alloc(Cycle now);
  void stage_switch(Cycle now);

  [[nodiscard]] std::uint32_t flat(std::uint32_t in_port, std::uint32_t vc) const {
    return in_port * vcs_per_input_ + vc;
  }

  des::Engine& engine_;
  des::ClockDomain& domain_;
  std::string name_;
  std::uint32_t vcs_per_input_;
  std::uint32_t vc_depth_;
  std::uint32_t credit_delay_;
  RouteFn route_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  std::vector<RoundRobinArbiter> input_sa_arb_;  ///< per input: pick one VC
  RouterCounters counters_;
  std::uint32_t active_vcs_ = 0;  ///< non-Idle or non-empty VC count (for quiescence)
};

}  // namespace erapid::router
