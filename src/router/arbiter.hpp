// Round-robin arbiter.
//
// The separable VC and switch allocators (router.cpp) are built from these:
// each output (or input) keeps one arbiter; the grant pointer advances past
// the winner so every requester is served within N grants (strong
// fairness). Deterministic: no randomness, state advances only on grants.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace erapid::router {

/// Rotating-priority single-winner arbiter over `n` requesters.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::uint32_t n) : n_(n) {
    ERAPID_EXPECT(n > 0, "arbiter needs at least one requester");
  }

  /// Picks the first set request at/after the pointer; returns the winner
  /// index or kNoGrant. Advances the pointer past the winner.
  static constexpr std::uint32_t kNoGrant = UINT32_MAX;

  std::uint32_t arbitrate(const std::vector<bool>& requests) {
    ERAPID_EXPECT(requests.size() == n_, "request vector width mismatch");
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::uint32_t cand = (ptr_ + i) % n_;
      if (requests[cand]) {
        ptr_ = (cand + 1) % n_;
        return cand;
      }
    }
    return kNoGrant;
  }

  [[nodiscard]] std::uint32_t size() const { return n_; }
  [[nodiscard]] std::uint32_t pointer() const { return ptr_; }
  void reset() { ptr_ = 0; }

 private:
  std::uint32_t n_;
  std::uint32_t ptr_ = 0;
};

}  // namespace erapid::router
