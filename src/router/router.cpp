#include "router/router.hpp"

#include <algorithm>

namespace erapid::router {

Router::Router(des::Engine& engine, des::ClockDomain& domain, std::string name,
               std::uint32_t num_inputs, std::uint32_t vcs_per_input,
               std::uint32_t vc_depth_flits, std::uint32_t credit_delay, RouteFn route)
    : engine_(engine),
      domain_(domain),
      name_(std::move(name)),
      vcs_per_input_(vcs_per_input),
      vc_depth_(vc_depth_flits),
      credit_delay_(credit_delay),
      route_(std::move(route)) {
  ERAPID_EXPECT(num_inputs > 0 && vcs_per_input > 0 && vc_depth_flits > 0,
                "router needs inputs, VCs and buffers");
  inputs_.resize(num_inputs);
  for (auto& in : inputs_) in.vcs.resize(vcs_per_input_);
  input_sa_arb_.reserve(num_inputs);
  for (std::uint32_t i = 0; i < num_inputs; ++i) input_sa_arb_.emplace_back(vcs_per_input_);
  domain_.add(*this);
}

std::uint32_t Router::add_output(const OutputPortConfig& cfg) {
  ERAPID_EXPECT(cfg.sink != nullptr, "output port needs a sink");
  ERAPID_EXPECT(cfg.vcs > 0 && cfg.credits_per_vc > 0, "output port needs downstream buffers");
  ERAPID_EXPECT(cfg.cycles_per_flit > 0, "channel serialization must take >= 1 cycle");
  outputs_.emplace_back(cfg, static_cast<std::uint32_t>(inputs_.size()) * vcs_per_input_,
                        static_cast<std::uint32_t>(inputs_.size()));
  return static_cast<std::uint32_t>(outputs_.size() - 1);
}

void Router::set_credit_return(std::uint32_t in_port, CreditFn fn) {
  inputs_[in_port].credit_return = std::move(fn);
}

bool Router::can_accept(std::uint32_t in_port, std::uint32_t vc) const {
  return inputs_[in_port].vcs[vc].buf.size() < vc_depth_;
}

void Router::accept_flit(std::uint32_t in_port, std::uint32_t vc, const Flit& f, Cycle now) {
  auto& ch = inputs_[in_port].vcs[vc];
  ERAPID_EXPECT(ch.buf.size() < vc_depth_,
                "upstream overran input buffer credits on " + name_);
  const bool was_empty_idle = ch.buf.empty() && ch.state == VcState::Idle;
  ch.buf.push_back(f);
  ++counters_.flits_in;
  if (was_empty_idle) {
    ERAPID_EXPECT(f.head, "a body flit reached an idle VC (wormhole order broken)");
    ch.state = VcState::Routing;
    ch.state_since = now;
  }
  domain_.wake();
}

void Router::return_credit(std::uint32_t out_port, std::uint32_t vc) {
  auto& out = outputs_[out_port];
  ++out.credits[vc];
  ERAPID_EXPECT(out.credits[vc] <= out.cfg.credits_per_vc,
                "downstream returned more credits than granted on " + name_);
  domain_.wake();
}

void Router::tick(Cycle now) {
  // Stage order within a tick is ST-first conceptually irrelevant because
  // every stage transition is gated on now > state_since: a flit entering a
  // stage this cycle cannot also leave it this cycle.
  stage_route(now);
  stage_vc_alloc(now);
  stage_switch(now);
}

void Router::stage_route(Cycle now) {
  for (auto& in : inputs_) {
    for (auto& ch : in.vcs) {
      if (ch.state != VcState::Routing || now <= ch.state_since) continue;
      if (ch.buf.empty()) continue;
      const Flit& head = ch.buf.front();
      ERAPID_EXPECT(head.head, "RC saw a non-head flit at the front of a routing VC");
      ch.out_port = route_(head);
      ERAPID_EXPECT(ch.out_port < outputs_.size(), "route function returned bad port");
      ch.state = VcState::VcAlloc;
      ch.state_since = now;
      ++counters_.packets_routed;
    }
  }
}

void Router::stage_vc_alloc(Cycle now) {
  const std::uint32_t nflat = static_cast<std::uint32_t>(inputs_.size()) * vcs_per_input_;
  for (std::uint32_t o = 0; o < outputs_.size(); ++o) {
    auto& out = outputs_[o];
    // Collect input VCs requesting this output.
    std::vector<bool> requests(nflat, false);
    bool any = false;
    for (std::uint32_t i = 0; i < inputs_.size(); ++i) {
      for (std::uint32_t v = 0; v < vcs_per_input_; ++v) {
        const auto& ch = inputs_[i].vcs[v];
        if (ch.state == VcState::VcAlloc && ch.out_port == o && now > ch.state_since) {
          requests[flat(i, v)] = true;
          any = true;
        }
      }
    }
    if (!any) continue;
    for (std::uint32_t dv = 0; dv < out.cfg.vcs; ++dv) {
      if (out.vc_taken[dv]) continue;
      const std::uint32_t winner = out.vc_arb.arbitrate(requests);
      if (winner == RoundRobinArbiter::kNoGrant) break;
      requests[winner] = false;
      auto& ch = inputs_[winner / vcs_per_input_].vcs[winner % vcs_per_input_];
      ch.state = VcState::Active;
      ch.state_since = now;
      ch.out_vc = dv;
      out.vc_taken[dv] = true;
      ++counters_.va_grants;
    }
  }
}

void Router::stage_switch(Cycle now) {
  // Input-first phase: each input port nominates at most one VC.
  const std::uint32_t ninputs = static_cast<std::uint32_t>(inputs_.size());
  std::vector<std::uint32_t> candidate(ninputs, RoundRobinArbiter::kNoGrant);
  for (std::uint32_t i = 0; i < ninputs; ++i) {
    std::vector<bool> requests(vcs_per_input_, false);
    bool any = false;
    for (std::uint32_t v = 0; v < vcs_per_input_; ++v) {
      const auto& ch = inputs_[i].vcs[v];
      if (ch.state != VcState::Active || now <= ch.state_since) continue;
      if (ch.buf.empty()) continue;
      const auto& out = outputs_[ch.out_port];
      if (out.credits[ch.out_vc] == 0) continue;   // downstream buffer full
      if (out.busy_until > now) continue;          // channel serializing
      requests[v] = true;
      any = true;
    }
    if (any) candidate[i] = input_sa_arb_[i].arbitrate(requests);
  }

  // Output-first phase: each output port grants one nominating input.
  for (std::uint32_t o = 0; o < outputs_.size(); ++o) {
    auto& out = outputs_[o];
    std::vector<bool> requests(ninputs, false);
    std::uint32_t nreq = 0;
    for (std::uint32_t i = 0; i < ninputs; ++i) {
      if (candidate[i] == RoundRobinArbiter::kNoGrant) continue;
      if (inputs_[i].vcs[candidate[i]].out_port == o) {
        requests[i] = true;
        ++nreq;
      }
    }
    if (nreq == 0) continue;
    const std::uint32_t wi = out.sa_arb.arbitrate(requests);
    counters_.sa_conflicts += nreq - 1;
    ++counters_.sa_grants;

    // Switch traversal for the winner.
    auto& ch = inputs_[wi].vcs[candidate[wi]];
    Flit f = ch.buf.front();
    ch.buf.pop_front();
    ++counters_.flits_out;

    --out.credits[ch.out_vc];
    out.busy_until = now + out.cfg.cycles_per_flit;

    // Deliver after channel serialization + wire delay.
    const Cycle arrive = now + out.cfg.cycles_per_flit + out.cfg.wire_delay;
    FlitReceiver* sink = out.cfg.sink;
    const std::uint32_t dvc = ch.out_vc;
    engine_.schedule_at(arrive, [sink, f, dvc, arrive] { sink->receive_flit(f, dvc, arrive); });

    // Return one input-buffer credit upstream.
    if (inputs_[wi].credit_return) {
      const std::uint32_t vc = candidate[wi];
      engine_.schedule(credit_delay_, [this, wi, vc] {
        inputs_[wi].credit_return(vc, engine_.now());
      });
    }

    if (f.tail) {
      out.vc_taken[ch.out_vc] = false;
      if (ch.buf.empty()) {
        ch.state = VcState::Idle;
      } else {
        ERAPID_EXPECT(ch.buf.front().head, "flit after tail must be a head (wormhole order)");
        ch.state = VcState::Routing;
      }
      ch.state_since = now;
    }
  }
}

bool Router::quiescent() const {
  for (const auto& in : inputs_) {
    for (const auto& ch : in.vcs) {
      if (!ch.buf.empty() || ch.state != VcState::Idle) return false;
    }
  }
  return true;
}

}  // namespace erapid::router
