// Packet and flit types.
//
// Paper §2.1: "Each packet, consisting of several fixed-size units called
// flits ... Flits from different nodes are interleaved in the electrical
// domain using virtual channels whereas packets from different boards are
// interleaved in the optical domain." So the electrical IBI moves flits
// (wormhole, VCs, credits) while optical lanes move whole packets.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace erapid::router {

/// Network packet. Copied whole across the optical domain; flitized in the
/// electrical domain.
struct Packet {
  PacketSeq seq = 0;
  NodeId src;
  NodeId dst;
  std::uint32_t flits = 0;   ///< payload length in flits (64 b each)
  Cycle created = 0;         ///< generation time (enters source queue)
  Cycle injected = kNeverCycle;  ///< first flit entered the router
  bool labelled = false;     ///< sampled during the measurement interval
  /// Originating tenant for multi-tenant workloads (0 for single-tenant
  /// traffic) — delivery accounting attributes bytes per tenant by it.
  std::uint32_t tenant = 0;
  /// Link-level ARQ retransmission count. Lives only on the optical hop
  /// (TX queue → RX CRC check) — deliberately NOT carried by flits, since a
  /// packet that clears the CRC is done retrying by the time it is flitized.
  std::uint32_t arq_retries = 0;
};

/// One flow-control unit. Head flits carry routing info; every flit carries
/// enough packet metadata to reassemble without a side table.
struct Flit {
  PacketSeq seq = 0;
  std::uint32_t index = 0;  ///< position within the packet
  bool head = false;
  bool tail = false;
  NodeId src;
  NodeId dst;
  std::uint32_t packet_flits = 0;
  Cycle created = 0;
  Cycle injected = kNeverCycle;
  bool labelled = false;
  std::uint32_t tenant = 0;
};

/// Splits packet `p` into its i-th flit.
[[nodiscard]] inline Flit make_flit(const Packet& p, std::uint32_t i) {
  Flit f;
  f.seq = p.seq;
  f.index = i;
  f.head = (i == 0);
  f.tail = (i + 1 == p.flits);
  f.src = p.src;
  f.dst = p.dst;
  f.packet_flits = p.flits;
  f.created = p.created;
  f.injected = p.injected;
  f.labelled = p.labelled;
  f.tenant = p.tenant;
  return f;
}

/// Rebuilds packet metadata from any of its flits (used at reassembly).
[[nodiscard]] inline Packet packet_from_flit(const Flit& f) {
  Packet p;
  p.seq = f.seq;
  p.src = f.src;
  p.dst = f.dst;
  p.flits = f.packet_flits;
  p.created = f.created;
  p.injected = f.injected;
  p.labelled = f.labelled;
  p.tenant = f.tenant;
  return p;
}

}  // namespace erapid::router
