// Paced flit injector — the send side of a network interface.
//
// Converts whole packets into a flit stream across a serial electrical
// channel (cycles_per_flit pacing) into one router input port, obeying the
// router's per-VC input-buffer credits. Used both by node NIs (traffic
// generator -> IBI) and by optical receive units (RX queue -> IBI).
//
// Event-driven: no per-cycle cost when idle. One packet in flight at a
// time (the channel is serial; interleaving packets across VCs from one
// port would not add bandwidth).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "router/flit.hpp"
#include "router/router.hpp"

namespace erapid::router {

/// Streams packets flit-by-flit into a router input port.
class FlitInjector {
 public:
  /// Registers itself as the credit sink of `in_port`. `credits_per_vc`
  /// must equal the router's input VC buffer depth.
  FlitInjector(des::Engine& engine, Router& router, std::uint32_t in_port,
               std::uint32_t vcs, std::uint32_t credits_per_vc,
               std::uint32_t cycles_per_flit);

  FlitInjector(const FlitInjector&) = delete;
  FlitInjector& operator=(const FlitInjector&) = delete;

  /// True while a packet is being streamed.
  [[nodiscard]] bool busy() const { return in_flight_; }

  /// Starts streaming `p` if idle; returns false only when busy. With no
  /// credits available the packet is committed to a VC and the stream
  /// stalls until the router returns a credit.
  bool try_start(const Packet& p, Cycle now);

  /// Invoked when the current packet's tail flit has been handed to the
  /// router (the injector is ready for the next packet).
  void set_idle_callback(std::function<void(Cycle)> fn) { on_idle_ = std::move(fn); }

  [[nodiscard]] std::uint32_t credits(std::uint32_t vc) const { return credits_[vc]; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void send_next();
  void on_credit(std::uint32_t vc, Cycle now);

  des::Engine& engine_;
  Router& router_;
  std::uint32_t in_port_;
  std::uint32_t cycles_per_flit_;
  std::vector<std::uint32_t> credits_;
  RoundRobinArbiter vc_pick_;

  bool in_flight_ = false;
  bool stalled_ = false;       ///< mid-packet, waiting for a credit
  bool send_scheduled_ = false;
  Packet current_{};
  std::uint32_t next_flit_ = 0;
  std::uint32_t vc_ = 0;
  std::function<void(Cycle)> on_idle_;
  std::uint64_t packets_sent_ = 0;
};

/// Reassembles flits arriving at a router output into packets and hands
/// them to a callback — the receive side of a node NI (ejection port).
/// Credits are returned as flits arrive (the node always drains).
class EjectionUnit : public FlitReceiver {
 public:
  /// `on_packet(packet, now)` fires when a tail flit completes a packet.
  EjectionUnit(Router& router, std::uint32_t vcs,
               std::function<void(const Packet&, Cycle)> on_packet);

  /// Must be called with the output-port index this unit was attached to
  /// (known only after Router::add_output).
  void bind(std::uint32_t out_port) { out_port_ = out_port; }

  void receive_flit(const Flit& f, std::uint32_t vc, Cycle now) override;

  [[nodiscard]] std::uint64_t packets_ejected() const { return packets_; }

 private:
  Router& router_;
  std::uint32_t out_port_ = 0;
  std::vector<std::uint32_t> expected_index_;
  std::function<void(const Packet&, Cycle)> on_packet_;
  std::uint64_t packets_ = 0;
};

}  // namespace erapid::router
