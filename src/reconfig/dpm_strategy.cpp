#include "reconfig/dpm_strategy.hpp"

#include "util/expect.hpp"

namespace erapid::reconfig {

using power::PowerLevel;

std::string_view to_string(DpmStrategyKind k) {
  switch (k) {
    case DpmStrategyKind::Threshold: return "threshold";
    case DpmStrategyKind::Hysteresis: return "hysteresis";
    case DpmStrategyKind::Ewma: return "ewma";
  }
  ERAPID_UNREACHABLE("unmodeled DPM strategy kind " << static_cast<int>(k));
}

std::optional<PowerLevel> ThresholdDpm::decide(const LaneObservation& obs) {
  return dpm_decision(obs.level, obs.link_util, obs.buffer_util, obs.queue_empty, policy_);
}

std::optional<PowerLevel> HysteresisDpm::decide(const LaneObservation& obs) {
  // link_util may transiently exceed 1.0 (a launch at the window edge books
  // its full serialization time), so only the sign is contract-checked.
  ERAPID_EXPECT(obs.link_util >= 0.0, "negative link utilization: " << obs.link_util);
  const auto raw =
      dpm_decision(obs.level, obs.link_util, obs.buffer_util, obs.queue_empty, policy_);
  auto& st = state_[lane_key(obs.lane)];
  if (!raw) {
    st.pending.reset();
    st.streak = 0;
    return std::nullopt;
  }
  if (st.pending != raw) {
    st.pending = raw;
    st.streak = 1;
  } else {
    ++st.streak;
  }
  if (st.streak >= required_) {
    st.pending.reset();
    st.streak = 0;
    return raw;
  }
  return std::nullopt;
}

std::optional<PowerLevel> EwmaDpm::decide(const LaneObservation& obs) {
  ERAPID_EXPECT(obs.link_util >= 0.0, "negative link utilization: " << obs.link_util);
  auto& st = state_[lane_key(obs.lane)];
  if (!st.primed) {
    st.util = obs.link_util;
    st.buffer = obs.buffer_util;
    st.primed = true;
  } else {
    st.util = alpha_ * obs.link_util + (1.0 - alpha_) * st.util;
    st.buffer = alpha_ * obs.buffer_util + (1.0 - alpha_) * st.buffer;
  }
  // DLS still keys off the *instantaneous* idle window (an EWMA would keep
  // a long-dead lane lit for many windows); DVS uses the smoothed signals.
  if (policy_.shutdown_idle && obs.link_util == 0.0 && st.util < 0.05 && obs.queue_empty &&
      obs.level != PowerLevel::Off) {
    st.util = 0.0;
    return PowerLevel::Off;
  }
  DpmPolicy no_dls = policy_;
  no_dls.shutdown_idle = false;
  return dpm_decision(obs.level, st.util, st.buffer, obs.queue_empty, no_dls);
}

std::unique_ptr<DpmStrategy> make_dpm_strategy(DpmStrategyKind kind, const DpmPolicy& policy,
                                               const DpmStrategyParams& params) {
  switch (kind) {
    case DpmStrategyKind::Threshold:
      return std::make_unique<ThresholdDpm>(policy);
    case DpmStrategyKind::Hysteresis:
      return std::make_unique<HysteresisDpm>(policy, params.hysteresis_windows);
    case DpmStrategyKind::Ewma:
      return std::make_unique<EwmaDpm>(policy, params.ewma_alpha);
  }
  ERAPID_UNREACHABLE("unmodeled DPM strategy kind " << static_cast<int>(kind));
}

}  // namespace erapid::reconfig
