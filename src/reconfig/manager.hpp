// The Lock-Step (LS) reconfiguration protocol engine (paper §3).
//
// One ReconfigManager drives the RCs of all boards. Every reconfiguration
// window R_w it triggers either a power-awareness cycle (locally-controlled
// DPM, §3.1) or a bandwidth re-allocation cycle (globally-coordinated DBR,
// §3.2). With both enabled the paper's odd–even alternation applies:
// windows 1, 3, 5, ... run DPM; windows 2, 4, 6, ... run DBR.
//
// Timing model. LS is *lock-step*: within a stage every RC transmits and
// receives in unison ("as a new control packet is transmitted by RC_{i+1},
// it receives a control packet from the previous RC_i"), so all boards
// cross each stage boundary at the same cycle. We therefore advance the
// protocol in synchronized stages with the full per-stage latency
//
//   Link Request    (W + 1) LC-chain hops        RC → LC_0 → ... → RC
//   Board Request    B ring hops                 every RC's packet circles
//   Reconfigure      1 cycle                     local computation
//   Board Response   B ring hops
//   Link Response   (W + 1) LC-chain hops, then lane enables/disables
//
// and move the packet *contents* at stage boundaries. This is cycle-
// equivalent to delivering each forwarded packet individually (the data a
// board contributes is only examined after the stage completes) and keeps
// the protocol state machine readable. Hop counts are still tallied in
// ControlCounters for the control-overhead ablation.
//
// Wavelength-collision safety: a directive that moves an owned lane first
// disables the old owner's laser; the re-grant is chained on the lane's
// on_dark callback, so at no instant do two boards drive one (coupler,
// wavelength) pair. LaneMap enforces this invariant fatally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "optical/terminal.hpp"
#include "power/link_power.hpp"
#include "reconfig/allocation.hpp"
#include "reconfig/dpm_strategy.hpp"
#include "reconfig/messages.hpp"
#include "reconfig/policy.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"

namespace erapid::reconfig {

/// Protocol timing and policy configuration.
struct ReconfigConfig {
  CycleDelta window = 2000;        ///< R_w (paper: optimum 2000 cycles)
  CycleDelta ring_hop_cycles = 16; ///< RC → RC electrical ring hop
  CycleDelta lc_hop_cycles = 4;    ///< RC → LC / LC → LC on-board hop
  NetworkMode mode = NetworkMode::np_nb();
  power::PowerLevel grant_level = power::PowerLevel::High;
  /// Power scaling technique (future-work evaluation surface); Threshold
  /// is the paper's §3.1 rule.
  DpmStrategyKind dpm_strategy = DpmStrategyKind::Threshold;
  DpmStrategyParams dpm_params;
  /// Bounded retry for lost control packets (fault injection): how many
  /// retransmissions an RC attempts after an LC-chain or ring timeout
  /// before the board sits the window out. Each retry re-pays the stage's
  /// full hop latency.
  std::uint32_t ctrl_retry_limit = 3;
  /// Ring-token watchdog: when an RC crash swallows the circulating token,
  /// the next bandwidth cycle detects the loss after this timeout and
  /// deterministically regenerates the token (paying the timeout plus one
  /// extra ring rotation before the protocol proceeds).
  CycleDelta rc_watchdog_cycles = 128;
};

/// Drives DPM + DBR over all boards' terminals.
class ReconfigManager {
 public:
  /// `hub` (optional) receives Lock-Step window spans, DBR re-solve marks
  /// and per-LC level-transition counter tracks.
  ReconfigManager(des::Engine& engine, const topology::SystemConfig& cfg,
                  const ReconfigConfig& rc_cfg, topology::LaneMap& lane_map,
                  std::vector<optical::OpticalTerminal*> terminals,
                  obs::Hub* hub = nullptr);

  /// Lights the static RWA lanes (call once at t=0 before traffic starts).
  void initialize_static_lanes();

  /// Begins the periodic reconfiguration windows.
  void start();

  /// Stops scheduling further windows.
  void stop();

  [[nodiscard]] const ControlCounters& counters() const { return counters_; }
  [[nodiscard]] const topology::LaneMap& lane_map() const { return lane_map_; }
  [[nodiscard]] const ReconfigConfig& config() const { return cfg_rc_; }

  // ---- fault-injection plumbing ----------------------------------------
  // All hooks default to unset; the no-fault event stream is untouched.

  /// Asked once per (stage, board, attempt) when a control packet is about
  /// to traverse its medium; returning true means that attempt's packet is
  /// lost and the RC retries (up to ctrl_retry_limit) before giving up.
  using CtrlFaultHook = std::function<bool(CtrlStage, BoardId, std::uint32_t attempt)>;
  void set_ctrl_fault_hook(CtrlFaultHook hook) { ctrl_fault_ = std::move(hook); }

  /// Observes every lane grant as it lands (src gains lane (dest, w)) —
  /// the fault injector measures time-to-reroute and re-admission waits
  /// with this.
  void set_grant_observer(
      std::function<void(BoardId src, BoardId dest, WavelengthId w, Cycle)> fn) {
    grant_observer_ = std::move(fn);
  }

  // ---- RC crash / ring failover (fault injection) -----------------------
  /// Crashes board `b`'s reconfiguration controller: the ring token it may
  /// hold is lost (the next bandwidth cycle's watchdog regenerates it), the
  /// ring bypasses the dead RC, and the board's lanes freeze at their last
  /// allocation (neither harvested, re-solved, nor granted) until repair.
  void crash_rc(BoardId b, Cycle now);

  /// Brings board `b`'s RC back: it rejoins the ring and its lanes re-enter
  /// the allocation at the next bandwidth window.
  void repair_rc(BoardId b, Cycle now);

  [[nodiscard]] bool rc_dead(BoardId b) const { return rc_dead_[b.value()] != 0; }

  /// Observes every reconfiguration window boundary (before the cycle runs).
  void set_window_observer(std::function<void(std::uint64_t index, Cycle)> fn) {
    window_observer_ = std::move(fn);
  }

 private:
  void on_window();
  void run_power_cycle(Cycle t);
  void run_bandwidth_cycle(Cycle t);
  /// `settled` (optional) is invoked exactly once with the cycle at which
  /// this directive reached a terminal state — its grant landed, or it was
  /// dropped as stale. The DBR convergence monitor rides this.
  void apply_directive(BoardId dest, const Directive& dir, Cycle now,
                       const std::function<void(Cycle)>& settled = {});

  /// Plays one board's control transmission against the fault hook.
  /// Returns the number of retransmissions that were needed (0 = clean
  /// first attempt), or nullopt when the retry budget was exhausted (the
  /// board times out of this window's cycle).
  [[nodiscard]] std::optional<std::uint32_t> ctrl_attempts(CtrlStage stage, BoardId b);

  /// Harvests every board's LC counters for the window ending at `now`.
  void harvest_all(Cycle now);

  des::Engine& engine_;
  const topology::SystemConfig& cfg_;
  ReconfigConfig cfg_rc_;
  topology::LaneMap& lane_map_;
  std::vector<optical::OpticalTerminal*> terminals_;

  // Last-window statistics per board (index = board id).
  std::vector<std::vector<optical::LaneSnapshot>> lane_stats_;
  std::vector<std::vector<optical::FlowSnapshot>> flow_stats_;

  // One strategy instance per board (strategies hold per-lane history,
  // mirroring the per-board LC hardware).
  std::vector<std::unique_ptr<DpmStrategy>> dpm_;

  /// Per-board window-start of the counters currently accumulating: a dead
  /// RC stops harvesting, so when it rejoins its first harvest spans the
  /// whole outage instead of one window.
  std::vector<Cycle> last_harvest_;
  std::uint64_t window_index_ = 0;
  bool running_ = false;
  des::EventHandle next_window_;
  ControlCounters counters_;

  // RC liveness (fault injection): dead RCs are bypassed by the ring and
  // their lanes frozen at the last allocation.
  std::vector<char> rc_dead_;
  std::uint32_t rc_dead_count_ = 0;
  /// Set when a crash may have swallowed the circulating ring token; the
  /// next bandwidth cycle pays the watchdog timeout and regenerates it.
  bool token_lost_ = false;

  CtrlFaultHook ctrl_fault_;
  std::function<void(BoardId, BoardId, WavelengthId, Cycle)> grant_observer_;
  std::function<void(std::uint64_t, Cycle)> window_observer_;

  // ---- observability ----------------------------------------------------
  obs::Hub* hub_;
  /// Per-board DVS level-change tally (feeds the per-LC counter tracks).
  std::vector<std::uint64_t> board_level_changes_;
  obs::MetricId m_windows_ = 0;
  obs::MetricId m_lanes_moved_ = 0;
  obs::MetricId m_grants_ = 0;
  obs::MetricId m_level_changes_ = 0;
  // Histograms (log2 buckets; see obs/metrics.hpp): LS window occupancy
  // split by R_w parity, re-solve→last-grant convergence, and per-stage
  // control retransmission counts.
  obs::MetricId m_window_dpm_ = 0;
  obs::MetricId m_window_dbr_ = 0;
  obs::MetricId m_dbr_convergence_ = 0;
  obs::MetricId m_ctrl_retries_ = 0;
};

}  // namespace erapid::reconfig
