#include "reconfig/policy.hpp"

namespace erapid::reconfig {

using power::PowerLevel;

NetworkMode NetworkMode::np_nb() {
  NetworkMode m;
  m.name = "NP-NB";
  return m;
}

NetworkMode NetworkMode::p_nb() {
  NetworkMode m;
  m.name = "P-NB";
  m.power_aware = true;
  // §4.2: "In P-NB, the B_max is kept at 0.0 and L_max is 0.7 ... we
  // conservatively increase the bit rate when it is about to saturate."
  m.dpm.l_min = 0.4;  // (not stated in the paper; ablation bench sweeps it)
  m.dpm.l_max = 0.7;
  m.dpm.b_max = 0.0;
  m.dpm.require_buffer_for_upscale = false;
  return m;
}

NetworkMode NetworkMode::np_b() {
  NetworkMode m;
  m.name = "NP-B";
  m.bandwidth_reconfig = true;
  return m;
}

NetworkMode NetworkMode::p_b() {
  NetworkMode m;
  m.name = "P-B";
  m.power_aware = true;
  m.bandwidth_reconfig = true;
  // §3.1/§4.2: L_min 0.7, L_max 0.9, B_max 0.3.
  m.dpm.l_min = 0.7;
  m.dpm.l_max = 0.9;
  m.dpm.b_max = 0.3;
  m.dpm.require_buffer_for_upscale = true;
  m.dbr.b_min = 0.0;
  m.dbr.b_max = 0.3;
  return m;
}

std::optional<PowerLevel> dpm_decision(PowerLevel current, double link_util,
                                       double buffer_util, bool queue_empty,
                                       const DpmPolicy& policy) {
  // Utilizations are window-averaged ratios; anything outside [0, 1] means
  // an LC counter overflowed or a harvest window inverted.
  ERAPID_REQUIRE(link_util >= 0.0 && link_util <= 1.0,
                 "Link_util must be a ratio in [0, 1], got " << link_util);
  ERAPID_REQUIRE(buffer_util >= 0.0 && buffer_util <= 1.0,
                 "Buffer_util must be a ratio in [0, 1], got " << buffer_util);

  // DVS bounds: a DPM decision is a no-op, a single DVS step, or a DLS
  // shutdown — never a jump outside [Off, High] and never "change to the
  // level we already hold". Every exit path funnels through this check.
  const auto checked = [&](std::optional<PowerLevel> decision) {
    ERAPID_INVARIANT(!decision || (*decision != current &&
                                   *decision <= PowerLevel::High &&
                                   (*decision != PowerLevel::Off || policy.shutdown_idle)),
                     "DPM decision outside DVS bounds");
    return decision;
  };

  if (current == PowerLevel::Off) return checked(std::nullopt);  // woken on demand, not by DPM
  if (policy.shutdown_idle && link_util == 0.0 && queue_empty) {
    // DLS: a lane idle for the whole window with nothing queued goes dark.
    return checked(PowerLevel::Off);
  }
  if (link_util < policy.l_min) {
    const PowerLevel down = power::step_down(current);
    return checked(down == current ? std::nullopt : std::optional{down});
  }
  if (link_util > policy.l_max &&
      (!policy.require_buffer_for_upscale || buffer_util > policy.b_max)) {
    const PowerLevel up = power::step_up(current);
    return checked(up == current ? std::nullopt : std::optional{up});
  }
  return checked(std::nullopt);
}

}  // namespace erapid::reconfig
