#include "reconfig/policy.hpp"

namespace erapid::reconfig {

using power::PowerLevel;

NetworkMode NetworkMode::np_nb() {
  NetworkMode m;
  m.name = "NP-NB";
  return m;
}

NetworkMode NetworkMode::p_nb() {
  NetworkMode m;
  m.name = "P-NB";
  m.power_aware = true;
  // §4.2: "In P-NB, the B_max is kept at 0.0 and L_max is 0.7 ... we
  // conservatively increase the bit rate when it is about to saturate."
  m.dpm.l_min = 0.4;  // (not stated in the paper; ablation bench sweeps it)
  m.dpm.l_max = 0.7;
  m.dpm.b_max = 0.0;
  m.dpm.require_buffer_for_upscale = false;
  return m;
}

NetworkMode NetworkMode::np_b() {
  NetworkMode m;
  m.name = "NP-B";
  m.bandwidth_reconfig = true;
  return m;
}

NetworkMode NetworkMode::p_b() {
  NetworkMode m;
  m.name = "P-B";
  m.power_aware = true;
  m.bandwidth_reconfig = true;
  // §3.1/§4.2: L_min 0.7, L_max 0.9, B_max 0.3.
  m.dpm.l_min = 0.7;
  m.dpm.l_max = 0.9;
  m.dpm.b_max = 0.3;
  m.dpm.require_buffer_for_upscale = true;
  m.dbr.b_min = 0.0;
  m.dbr.b_max = 0.3;
  return m;
}

std::optional<PowerLevel> dpm_decision(PowerLevel current, double link_util,
                                       double buffer_util, bool queue_empty,
                                       const DpmPolicy& policy) {
  if (current == PowerLevel::Off) return std::nullopt;  // woken on demand, not by DPM

  // DLS: a lane idle for the whole window with nothing queued goes dark.
  if (policy.shutdown_idle && link_util == 0.0 && queue_empty) return PowerLevel::Off;

  if (link_util < policy.l_min) {
    const PowerLevel down = power::step_down(current);
    return down == current ? std::nullopt : std::optional{down};
  }
  if (link_util > policy.l_max &&
      (!policy.require_buffer_for_upscale || buffer_util > policy.b_max)) {
    const PowerLevel up = power::step_up(current);
    return up == current ? std::nullopt : std::optional{up};
  }
  return std::nullopt;
}

}  // namespace erapid::reconfig
