// Pluggable DPM ("power scaling technique") strategies.
//
// The paper's conclusion names the follow-up: "In the future, we will
// evaluate multiple power scaling techniques ... for improving the system
// performance [and] reducing the power consumption". This module provides
// that evaluation surface. A strategy observes one lane per
// reconfiguration window (its Link_util, the owning flow's Buffer_util
// and queue state) and decides the lane's next power level; strategies
// may keep per-lane history.
//
// Implemented techniques:
//   * Threshold — the paper's §3.1 rule (stateless; the default).
//   * Hysteresis — threshold decisions must persist for K consecutive
//     windows before they are applied, suppressing transition churn (each
//     transition stalls the lane 65 cycles).
//   * EWMA — predictive: an exponentially weighted moving average of
//     utilization drives the decision, reacting to the trend rather than
//     the last window (the paper's "power scaling can follow the traffic
//     pattern more accurately").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>

#include "power/link_power.hpp"
#include "reconfig/policy.hpp"
#include "topology/rwa.hpp"
#include "util/types.hpp"

namespace erapid::reconfig {

/// What one LC observed about one lane over the last window.
struct LaneObservation {
  topology::LaneRef lane;
  power::PowerLevel level = power::PowerLevel::Off;
  double link_util = 0.0;
  double buffer_util = 0.0;
  bool queue_empty = true;
};

/// Per-lane power scaling policy. One instance serves all lanes of one
/// board (keyed internal state); decide() is called once per lane per
/// power window.
class DpmStrategy {
 public:
  virtual ~DpmStrategy() = default;

  /// Next power level for the lane, or nullopt to stay.
  virtual std::optional<power::PowerLevel> decide(const LaneObservation& obs) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Which strategy a ReconfigConfig selects.
enum class DpmStrategyKind : std::uint8_t { Threshold, Hysteresis, Ewma };

[[nodiscard]] std::string_view to_string(DpmStrategyKind k);

/// Tuning knobs for the non-default strategies.
struct DpmStrategyParams {
  std::uint32_t hysteresis_windows = 2;  ///< consecutive agreeing windows
  double ewma_alpha = 0.5;               ///< weight of the newest window
};

/// The paper's threshold rule (§3.1); stateless.
class ThresholdDpm final : public DpmStrategy {
 public:
  explicit ThresholdDpm(const DpmPolicy& policy) : policy_(policy) {}
  std::optional<power::PowerLevel> decide(const LaneObservation& obs) override;
  [[nodiscard]] std::string_view name() const override { return "threshold"; }

 private:
  DpmPolicy policy_;
};

/// Threshold rule filtered through K-window hysteresis.
class HysteresisDpm final : public DpmStrategy {
 public:
  HysteresisDpm(const DpmPolicy& policy, std::uint32_t windows)
      : policy_(policy), required_(windows ? windows : 1) {}
  std::optional<power::PowerLevel> decide(const LaneObservation& obs) override;
  [[nodiscard]] std::string_view name() const override { return "hysteresis"; }

 private:
  struct State {
    std::optional<power::PowerLevel> pending;
    std::uint32_t streak = 0;
  };
  DpmPolicy policy_;
  std::uint32_t required_;
  // Ordered map: per-lane state lookup must be insertion-order independent
  // (determinism contract, DESIGN.md §7).
  std::map<std::uint64_t, State> state_;
};

/// EWMA-predicted utilization driving the threshold rule.
class EwmaDpm final : public DpmStrategy {
 public:
  EwmaDpm(const DpmPolicy& policy, double alpha) : policy_(policy), alpha_(alpha) {
    ERAPID_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA weight must be in (0, 1], got " << alpha);
  }
  std::optional<power::PowerLevel> decide(const LaneObservation& obs) override;
  [[nodiscard]] std::string_view name() const override { return "ewma"; }

 private:
  struct State {
    double util = 0.0;
    double buffer = 0.0;
    bool primed = false;
  };
  DpmPolicy policy_;
  double alpha_;
  // Ordered map: see HysteresisDpm::state_.
  std::map<std::uint64_t, State> state_;
};

/// Factory used by the reconfiguration manager.
[[nodiscard]] std::unique_ptr<DpmStrategy> make_dpm_strategy(DpmStrategyKind kind,
                                                             const DpmPolicy& policy,
                                                             const DpmStrategyParams& params);

/// Stable per-lane key for strategy state maps.
[[nodiscard]] inline std::uint64_t lane_key(topology::LaneRef ref) {
  return (static_cast<std::uint64_t>(ref.dest.value()) << 32) | ref.wavelength.value();
}

}  // namespace erapid::reconfig
