// Reconfiguration policies and the pure decision functions of the LS
// technique (paper §3). Pulled out of the protocol machinery so they are
// directly unit- and property-testable.
//
// Four network configurations are evaluated (Figure 3):
//   NP-NB  non-power-aware, non-bandwidth-reconfigured (static baseline)
//   P-NB   DPM only: conservative thresholds (L_max = 0.7, B_max = 0 —
//          "the links are not allowed to completely saturate as there are
//          no additional links to provide in case they are saturated")
//   NP-B   DBR only: lanes always at P_high
//   P-B    both, aggressive thresholds (L_min = 0.7, L_max = 0.9,
//          B_max = 0.3 — "we aggressively push the link utilization to the
//          limit")
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "power/link_power.hpp"

namespace erapid::reconfig {

/// Dynamic Power Management thresholds (§3.1).
struct DpmPolicy {
  double l_min = 0.7;  ///< Link_util below this → step bit rate down
  double l_max = 0.9;  ///< Link_util above this → candidate for step up
  double b_max = 0.3;  ///< additionally require Buffer_util above this
  /// When false the upscale ignores b_max (the conservative P-NB variant).
  bool require_buffer_for_upscale = true;
  /// DLS: shut idle lanes down entirely (woken on demand).
  bool shutdown_idle = true;
};

/// Dynamic Bandwidth Re-allocation thresholds (§3.2).
struct DbrPolicy {
  double b_min = 0.0;  ///< Buffer_util at/below this → lane re-allocatable
  double b_max = 0.3;  ///< Buffer_util above this → flow needs more lanes
  /// Limited-flexibility variant (the paper's future-work "cost-effective
  /// design alternatives that provide limited flexibility"): cap on the
  /// total lanes one flow may hold. 0 = full flexibility (the paper's
  /// evaluated design).
  std::uint32_t max_lanes_per_flow = 0;
};

/// One of the paper's four evaluated network configurations.
struct NetworkMode {
  std::string_view name;
  bool power_aware = false;
  bool bandwidth_reconfig = false;
  DpmPolicy dpm;
  DbrPolicy dbr;

  static NetworkMode np_nb();
  static NetworkMode p_nb();
  static NetworkMode np_b();
  static NetworkMode p_b();
};

/// DPM per-lane decision (§3.1). Returns the new power level, or nullopt
/// to stay. `queue_empty` refers to the flow's transmit queue right now;
/// DLS shutdown additionally requires a fully idle window.
[[nodiscard]] std::optional<power::PowerLevel> dpm_decision(
    power::PowerLevel current, double link_util, double buffer_util, bool queue_empty,
    const DpmPolicy& policy);

}  // namespace erapid::reconfig
