#include "reconfig/manager.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/probe.hpp"

namespace erapid::reconfig {

using power::PowerLevel;

ReconfigManager::ReconfigManager(des::Engine& engine, const topology::SystemConfig& cfg,
                                 const ReconfigConfig& rc_cfg, topology::LaneMap& lane_map,
                                 std::vector<optical::OpticalTerminal*> terminals,
                                 obs::Hub* hub)
    : engine_(engine),
      cfg_(cfg),
      cfg_rc_(rc_cfg),
      lane_map_(lane_map),
      terminals_(std::move(terminals)),
      hub_(hub) {
  ERAPID_REQUIRE(terminals_.size() == cfg_.num_boards_total(),
                 "one optical terminal per board required: got " << terminals_.size()
                     << " terminals for " << cfg_.num_boards_total() << " boards");
  ERAPID_REQUIRE(cfg_rc_.window > 0, "reconfiguration window must be positive");
  ERAPID_REQUIRE(cfg_rc_.ring_hop_cycles > 0 && cfg_rc_.lc_hop_cycles > 0,
                 "control-plane hops take >= 1 cycle: ring=" << cfg_rc_.ring_hop_cycles
                     << " lc=" << cfg_rc_.lc_hop_cycles);
  ERAPID_REQUIRE(cfg_rc_.rc_watchdog_cycles > 0,
                 "ring-token watchdog timeout must be >= 1 cycle");
  lane_stats_.resize(terminals_.size());
  flow_stats_.resize(terminals_.size());
  board_level_changes_.resize(terminals_.size(), 0);
  last_harvest_.resize(terminals_.size(), 0);
  rc_dead_.resize(terminals_.size(), 0);
  dpm_.reserve(terminals_.size());
  for (std::size_t b = 0; b < terminals_.size(); ++b) {
    dpm_.push_back(
        make_dpm_strategy(cfg_rc_.dpm_strategy, cfg_rc_.mode.dpm, cfg_rc_.dpm_params));
  }
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_windows_ = hub_->metrics().counter("reconfig.windows");
    m_lanes_moved_ = hub_->metrics().series("reconfig.dbr_lanes_moved");
    m_grants_ = hub_->metrics().counter("reconfig.lane_grants");
    m_level_changes_ = hub_->metrics().counter("reconfig.level_changes");
    m_window_dpm_ = hub_->metrics().histogram("reconfig.window_duration.dpm");
    m_window_dbr_ = hub_->metrics().histogram("reconfig.window_duration.dbr");
    m_dbr_convergence_ = hub_->metrics().histogram("reconfig.dbr_convergence");
    m_ctrl_retries_ = hub_->metrics().histogram("reconfig.ctrl_retries");
  }
#endif
}

void ReconfigManager::initialize_static_lanes() {
  ERAPID_REQUIRE(!running_, "static lanes must be lit before the window timer starts");
  const Cycle now = engine_.now();
  const std::uint32_t B = cfg_.num_boards_total();
  const std::uint32_t W = cfg_.num_wavelengths();
  for (std::uint32_t d = 0; d < B; ++d) {
    for (std::uint32_t w = 0; w < W; ++w) {
      const BoardId owner = lane_map_.owner(BoardId{d}, WavelengthId{w});
      if (!owner.valid()) continue;
      terminals_[owner.value()]->apply_grant(BoardId{d}, WavelengthId{w},
                                             PowerLevel::High, now);
    }
  }
}

void ReconfigManager::start() {
  if (running_) return;
  running_ = true;
  std::fill(last_harvest_.begin(), last_harvest_.end(), engine_.now());
  next_window_ = engine_.schedule(
      cfg_rc_.window, [this] { on_window(); }, "reconfig.window");
  ERAPID_INVARIANT(next_window_.pending(), "window timer failed to arm");
}

void ReconfigManager::crash_rc(BoardId b, Cycle now) {
  ERAPID_EXPECT(b.value() < rc_dead_.size(), "rc_crash board out of range");
  ERAPID_EXPECT(rc_dead_[b.value()] == 0, "crashing an RC that is already dead");
  rc_dead_[b.value()] = 1;
  ++rc_dead_count_;
  // The crash may have swallowed the circulating ring token (we model the
  // worst case: it always does). The next bandwidth cycle's watchdog times
  // out and regenerates it.
  token_lost_ = true;
  ++counters_.rc_crashes;
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("board", std::uint64_t{b.value()});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_reconfig(), "rc.crash", now, args.str());
  }
#else
  (void)now;
#endif
}

void ReconfigManager::repair_rc(BoardId b, Cycle now) {
  ERAPID_EXPECT(b.value() < rc_dead_.size(), "rc_crash board out of range");
  ERAPID_EXPECT(rc_dead_[b.value()] != 0, "repairing an RC that is alive");
  rc_dead_[b.value()] = 0;
  --rc_dead_count_;
  ++counters_.rc_repairs;
  // Flush the counters that accumulated across the outage (the data plane
  // kept transmitting on the frozen lanes) so the board rejoins the next
  // window with stats spanning exactly one interval, not the whole outage.
  terminals_[b.value()]->harvest(last_harvest_[b.value()], now, lane_stats_[b.value()],
                                 flow_stats_[b.value()]);
  last_harvest_[b.value()] = now;
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("board", std::uint64_t{b.value()});
    ERAPID_TRACE_INSTANT(hub_, hub_->track_reconfig(), "rc.repair", now, args.str());
  }
#endif
}

void ReconfigManager::stop() {
  running_ = false;
  next_window_.cancel();
  ERAPID_INVARIANT(!next_window_.pending(), "window timer still armed after stop");
}

void ReconfigManager::on_window() {
  if (!running_) return;
  ++window_index_;
  const Cycle t = engine_.now();

  if (window_observer_) window_observer_(window_index_, t);

  const bool both = cfg_rc_.mode.power_aware && cfg_rc_.mode.bandwidth_reconfig;
  bool do_power = cfg_rc_.mode.power_aware;
  bool do_bandwidth = cfg_rc_.mode.bandwidth_reconfig;
  if (both) {
    // Paper §3.2: odd windows run the power-awareness cycle, even windows
    // the bandwidth re-allocation cycle.
    do_power = (window_index_ % 2 == 1);
    do_bandwidth = !do_power;
  }

  // The Lock-Step window as a trace span: the R_w parity (DPM on odd, DBR
  // on even) is directly visible on the reconfig track.
  ERAPID_COUNTER(hub_, m_windows_, 1);
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    const char* kind = do_power ? "window.dpm" : (do_bandwidth ? "window.dbr" : "window.idle");
    obs::Args args;
    args.add("index", window_index_).add("parity", std::uint64_t{window_index_ % 2});
    ERAPID_TRACE_SPAN(hub_, hub_->track_reconfig(), kind, t,
                      static_cast<CycleDelta>(cfg_rc_.window), args.str());
    // Black-box feed: windows are the reconfiguration heartbeat a
    // post-mortem wants to see leading up to a trigger.
    if (auto* fr = hub_->flight()) fr->record(t, kind, args.str());
  }
#endif

  // A window run with >= 1 dead RC is degraded: that board's lanes are
  // frozen at their last allocation for the duration.
  if (rc_dead_count_ > 0) ++counters_.frozen_windows;

  if (do_power || do_bandwidth) harvest_all(t);
  if (do_power) run_power_cycle(t);
  if (do_bandwidth) run_bandwidth_cycle(t);

  next_window_ = engine_.schedule(
      cfg_rc_.window, [this] { on_window(); }, "reconfig.window");
}

void ReconfigManager::harvest_all(Cycle now) {
  for (std::size_t b = 0; b < terminals_.size(); ++b) {
    if (rc_dead_[b]) continue;  // a dead RC scans nothing; counters keep accumulating
    terminals_[b]->harvest(last_harvest_[b], now, lane_stats_[b], flow_stats_[b]);
    last_harvest_[b] = now;
    ++counters_.chain_scans;
    counters_.ring_hops += cfg_.num_wavelengths() + 1;  // RC→LC_0→...→RC scan
  }
}

std::optional<std::uint32_t> ReconfigManager::ctrl_attempts(CtrlStage stage, BoardId b) {
  std::uint32_t attempt = 0;
  if (ctrl_fault_) {
    while (ctrl_fault_(stage, b, attempt)) {
      if (attempt >= cfg_rc_.ctrl_retry_limit) {
        // The loss that exhausts the budget abandons the board's directive
        // outright — accounted separately from the recovered drops.
        ++counters_.ctrl_exhausted_drops;
        ++counters_.ctrl_timeouts;
        // A timed-out board still transmitted the full retry budget.
        ERAPID_OBSERVE(hub_, m_ctrl_retries_, static_cast<double>(attempt + 1));
        return std::nullopt;  // board sits this window's cycle out
      }
      ++counters_.ctrl_drops;
      ++attempt;
      ++counters_.ctrl_retries;
    }
  }
  ERAPID_OBSERVE(hub_, m_ctrl_retries_, static_cast<double>(attempt));
  return attempt;
}

void ReconfigManager::run_power_cycle(Cycle t) {
  // Lock-Step window parity (§3.2): with both planes enabled, DPM owns the
  // odd windows; a power cycle on an even window means the alternation
  // logic regressed.
  ERAPID_INVARIANT(!(cfg_rc_.mode.power_aware && cfg_rc_.mode.bandwidth_reconfig) ||
                       window_index_ % 2 == 1,
                   "LS parity: power cycle on even window " << window_index_);
  ++counters_.power_cycles;
  // Power_Request circulates the on-board LC chain; every LC then decides
  // locally. All boards run concurrently (lock-step), so decisions land
  // after one full chain traversal. A board whose chain packet is lost
  // times out and retransmits (each retry re-walks the chain); after
  // ctrl_retry_limit losses it keeps last window's levels.
  const CycleDelta chain =
      static_cast<CycleDelta>(cfg_.num_wavelengths() + 1) * cfg_rc_.lc_hop_cycles;
  // Window occupancy: lock-step means the cycle ends when the slowest
  // board's decisions land — one clean chain traversal at minimum, more
  // when a board had to retransmit.
  CycleDelta occupancy = chain;

  for (std::size_t b = 0; b < terminals_.size(); ++b) {
    if (rc_dead_[b]) continue;  // dead RC: no Power_Request, levels frozen
    const auto attempts = ctrl_attempts(CtrlStage::PowerChain, BoardId{static_cast<std::uint32_t>(b)});
    if (!attempts) continue;
    const Cycle apply_at = t + static_cast<CycleDelta>(1 + *attempts) * chain;
    occupancy = std::max(occupancy, static_cast<CycleDelta>(1 + *attempts) * chain);
    // Index flow stats by destination board for the buffer-utilization input.
    const auto& flows = flow_stats_[b];
    std::uint64_t changes_before = board_level_changes_[b];
    for (const auto& lane : lane_stats_[b]) {
      if (!lane.enabled) continue;
      const auto fit = std::find_if(flows.begin(), flows.end(), [&](const auto& f) {
        return f.dest == lane.ref.dest;
      });
      ERAPID_EXPECT(fit != flows.end(), "flow stats missing for a lit lane");
      LaneObservation obs;
      obs.lane = lane.ref;
      obs.level = lane.level;
      obs.link_util = lane.link_util;
      obs.buffer_util = fit->buffer_util;
      obs.queue_empty = fit->queued == 0;
      const auto decision = dpm_[b]->decide(obs);
      if (!decision) continue;
      // Shutdown is safe for any strategy: the observation shows an idle
      // window and an empty queue, and DLS wake-on-demand recovers if
      // traffic returns.
      ++counters_.level_changes;
      ++board_level_changes_[b];
      ERAPID_COUNTER(hub_, m_level_changes_, 1);
      auto* term = terminals_[b];
      const auto ref = lane.ref;
      const PowerLevel target = *decision;
      engine_.schedule_at(apply_at, [term, ref, target, this] {
        term->request_lane_level(ref.dest, ref.wavelength, target, engine_.now());
      }, "reconfig.dpm_apply");
    }
    // One counter track per LC chain (board): cumulative DVS transitions,
    // sampled only on windows where this board's levels actually moved.
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr && board_level_changes_[b] != changes_before) {
      const std::string track = "dpm.level_changes.b" + std::to_string(b);
      ERAPID_TRACE_COUNTER(hub_, hub_->track_counters(), track.c_str(), t,
                           static_cast<double>(board_level_changes_[b]));
    }
#else
    (void)changes_before;
#endif
  }
  ERAPID_OBSERVE(hub_, m_window_dpm_, static_cast<double>(occupancy));
#if defined(ERAPID_NO_OBS)
  (void)occupancy;
#endif
}

void ReconfigManager::run_bandwidth_cycle(Cycle t) {
  // Lock-Step window parity (§3.2): DBR owns the even windows (see
  // run_power_cycle).
  ERAPID_INVARIANT(!(cfg_rc_.mode.power_aware && cfg_rc_.mode.bandwidth_reconfig) ||
                       window_index_ % 2 == 0,
                   "LS parity: bandwidth cycle on odd window " << window_index_);
  ++counters_.bandwidth_cycles;
  const std::uint32_t B = cfg_.num_boards_total();
  const std::uint32_t W = cfg_.num_wavelengths();
  const CycleDelta chain = static_cast<CycleDelta>(W + 1) * cfg_rc_.lc_hop_cycles;
  const CycleDelta ring = static_cast<CycleDelta>(B) * cfg_rc_.ring_hop_cycles;

  // Fault model: each RC's ring circulation (its Board Request out and the
  // matching Board Response back) can be lost. Lock-step means a
  // retransmission stalls the *stage* for everyone by one extra ring
  // rotation; a board that exhausts its retries is simply absent from this
  // window — its stats are missing (no lane granted to it, none harvested
  // from it) and its own coupler keeps last window's allocation.
  // Dead RCs are bypassed: the ring skips them (no Board Request from
  // them, no directives for their couplers) and their lanes stay frozen at
  // the last allocation.
  std::vector<char> lost(B, 0);
  std::uint32_t alive = 0;
  for (std::uint32_t b = 0; b < B; ++b) {
    if (rc_dead_[b]) {
      lost[b] = 1;
    } else {
      ++alive;
    }
  }
  CycleDelta extra_rounds = 0;
  std::uint64_t ring_retries = 0;
  if (ctrl_fault_) {
    for (std::uint32_t b = 0; b < B; ++b) {
      if (lost[b]) continue;  // a dead RC transmits nothing
      const auto attempts = ctrl_attempts(CtrlStage::BandwidthRing, BoardId{b});
      if (!attempts) {
        lost[b] = 1;
      } else {
        extra_rounds = std::max<CycleDelta>(extra_rounds, *attempts);
        ring_retries += *attempts;
      }
    }
  }

  // Ring-token watchdog: an RC crash since the last bandwidth cycle may
  // have swallowed the circulating token. The protocol cannot deadlock on
  // it — the watchdog times out, the lowest-id surviving RC regenerates
  // the token deterministically, and the cycle proceeds after the timeout
  // plus one (re-)circulation to re-establish ring state.
  CycleDelta watchdog_delay = 0;
  if (token_lost_) {
    token_lost_ = false;
    watchdog_delay = cfg_rc_.rc_watchdog_cycles + ring;
    ++counters_.watchdog_fires;
    ++counters_.tokens_regenerated;
    counters_.ring_hops += alive;  // the regenerated token's recovery lap
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr) {
      obs::Args args;
      args.add("timeout", static_cast<std::uint64_t>(cfg_rc_.rc_watchdog_cycles));
      ERAPID_TRACE_INSTANT(hub_, hub_->track_reconfig(), "reconfig.watchdog", t, args.str());
    }
#endif
  }

  // Stage boundaries (lock-step; see file comment):
  //   Link Request completes at t + chain (outgoing stats at every RC),
  //   Board Request at + ring (incoming stats), Reconfigure takes 1 cycle,
  //   Board Response + ring, Link Response + chain => lasers switch.
  const Cycle t_reconf = t + watchdog_delay + chain + ring * (1 + extra_rounds) + 1;
  const Cycle t_apply = t_reconf + ring + chain;
  // DBR window occupancy: the full five-stage pipeline, retry-stretched
  // rings included (grants chained on lane darkness may settle later —
  // that tail is the convergence histogram's, not the window's).
  ERAPID_OBSERVE(hub_, m_window_dbr_, static_cast<double>(t_apply - t));

  // alive == B without crashes, so the no-fault tally is unchanged.
  counters_.ring_hops += 2ULL * alive * B;  // alive packets × B hops, two ring stages
  counters_.ring_hops += ring_retries * B;  // each retransmission re-circles

  engine_.schedule_at(t_reconf, [this, t_apply, lost = std::move(lost)] {
    const std::uint32_t nb = cfg_.num_boards_total();
    const std::uint32_t nw = cfg_.num_wavelengths();
    std::uint64_t lanes_moved = 0;
    std::uint64_t boards_lost = 0;
    for (std::uint32_t b = 0; b < nb; ++b) boards_lost += lost[b] ? 1 : 0;

    // Collect every destination's directives before scheduling any, so the
    // convergence tracker knows the re-solve's full fan-out up front. The
    // (dest, directive) order is the same as scheduling inline, so the
    // event stream is unchanged.
    std::vector<std::pair<BoardId, Directive>> decided;

    for (std::uint32_t d = 0; d < nb; ++d) {
      if (lost[d]) continue;  // RC_d never completed its circulation
      const BoardId dest{d};

      // Assemble RC_d's incoming-link table (what the Board Request stage
      // collected): one FlowStatsEntry per source board.
      std::vector<FlowStatsEntry> incoming;
      for (std::uint32_t s = 0; s < nb; ++s) {
        if (s == d) continue;
        if (lost[s]) continue;  // s's entry was in the lost circulation
        const auto& flows = flow_stats_[s];
        const auto fit = std::find_if(flows.begin(), flows.end(), [&](const auto& f) {
          return f.dest == dest;
        });
        ERAPID_EXPECT(fit != flows.end(), "flow stats missing in Board Request");
        FlowStatsEntry e;
        e.src = BoardId{s};
        e.buffer_util = fit->buffer_util;
        e.queued = fit->queued;
        e.lanes = fit->lanes_enabled;
        incoming.push_back(e);
      }

      // Current ownership of dest's coupler wavelengths. Failed lanes are
      // excluded: the allocation is re-solved around them, so a dead lane
      // can neither be harvested nor granted. Shed lanes (degradation
      // controller brownout) are excluded the same way until unshed.
      std::vector<LaneOwnership> lanes;
      for (std::uint32_t w = 0; w < nw; ++w) {
        if (lane_map_.is_failed(dest, WavelengthId{w})) continue;
        if (lane_map_.is_shed(dest, WavelengthId{w})) continue;
        const BoardId own = lane_map_.owner(dest, WavelengthId{w});
        // A dead RC's lanes are frozen at the last allocation: the
        // re-solve neither releases nor re-grants them.
        if (own.valid() && rc_dead_[own.value()]) continue;
        lanes.push_back({WavelengthId{w}, own});
      }

      const auto directives =
          allocate_lanes(dest, incoming, lanes, cfg_rc_.mode.dbr, cfg_rc_.grant_level);

      lanes_moved += directives.size();
      for (const auto& dir : directives) decided.emplace_back(dest, dir);
    }

    // Convergence tracking (obs only): a re-solve quiesces when its last
    // directive settles — a grant landing (possibly chained on lane
    // darkness past t_apply) or a stale drop. The engine's event stream is
    // identical with or without the tracker.
    std::function<void(Cycle)> settled;
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr && hub_->enabled() && !decided.empty()) {
      struct ResolveTracker {
        Cycle resolve_at = 0;
        std::size_t outstanding = 0;
        Cycle last = 0;
      };
      auto tracker = std::make_shared<ResolveTracker>();
      tracker->resolve_at = engine_.now();
      tracker->outstanding = decided.size();
      if (auto* mon = hub_->monitors()) mon->dbr_resolve(tracker->resolve_at);
      settled = [this, tracker](Cycle at) {
        tracker->last = std::max(tracker->last, at);
        if (--tracker->outstanding == 0) {
          ERAPID_OBSERVE(hub_, m_dbr_convergence_,
                         static_cast<double>(tracker->last - tracker->resolve_at));
          if (auto* mon = hub_->monitors()) {
            mon->dbr_quiesced(tracker->resolve_at, tracker->last);
          }
        }
      };
    }
#endif

    for (const auto& [dest, dir] : decided) {
      engine_.schedule_at(t_apply, [this, dest = dest, dir = dir, settled] {
        apply_directive(dest, dir, engine_.now(), settled);
      }, "reconfig.dbr_apply");
    }

    // The Reconfigure stage's outcome as one instant mark: how many lanes
    // the global re-solve decided to move, and how many RCs sat it out.
    ERAPID_OBSERVE(hub_, m_lanes_moved_, static_cast<double>(lanes_moved));
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr) {
      obs::Args args;
      args.add("lanes_moved", lanes_moved).add("boards_lost", boards_lost);
      ERAPID_TRACE_INSTANT(hub_, hub_->track_reconfig(), "dbr.resolve",
                           engine_.now(), args.str());
    }
#else
    (void)lanes_moved;
    (void)boards_lost;
#endif
  }, "reconfig.dbr_resolve");
}

void ReconfigManager::apply_directive(BoardId dest, const Directive& dir, Cycle now,
                                      const std::function<void(Cycle)>& settled) {
  const WavelengthId w = dir.wavelength;
  // The lane may have died (fault injection) or been shed (degradation
  // controller) between the Reconfigure stage and the Link Response
  // landing: the directive is stale — drop it and let the next window
  // re-solve around the withdrawn lane.
  if (lane_map_.is_failed(dest, w) || lane_map_.is_shed(dest, w)) {
    ++counters_.stale_directives;
    if (settled) settled(now);
    return;
  }
  // Ownership may have changed since the decision (a later window's
  // directives are scheduled only after this one applies, so in practice
  // it cannot — but the check keeps the invariant local and fatal).
  ERAPID_EXPECT(lane_map_.owner(dest, w) == dir.old_owner,
                "directive raced with another ownership change");

  auto grant = [this, dest, w, dir, settled](Cycle at) {
    // The lane can fail or be shed while the old owner's in-flight packet
    // drains (apply_release chains the re-grant on lane darkness); a grant
    // must never land on a failed or withdrawn lane.
    if (lane_map_.is_failed(dest, w) || lane_map_.is_shed(dest, w)) {
      ++counters_.stale_directives;
      if (settled) settled(at);
      return;
    }
    lane_map_.grant(dest, w, dir.new_owner);
    terminals_[dir.new_owner.value()]->apply_grant(dest, w, dir.grant_level, at);
    ++counters_.lane_grants;
    ERAPID_COUNTER(hub_, m_grants_, 1);
    if (hub_ != nullptr) {
      obs::Args args;
      args.add("owner", std::uint64_t{dir.new_owner.value()})
          .add("dest", std::uint64_t{dest.value()})
          .add("wavelength", std::uint64_t{w.value()});
      ERAPID_TRACE_INSTANT(hub_, hub_->track_lanes(), "lane.grant", at, args.str());
#if !defined(ERAPID_NO_OBS)
      if (auto* fr = hub_->flight()) fr->record(at, "lane.grant", args.str());
#endif
    }
    if (grant_observer_) grant_observer_(dir.new_owner, dest, w, at);
    if (settled) settled(at);
  };

  if (dir.old_owner.valid()) {
    ++counters_.lane_releases;
    if (hub_ != nullptr) {
      obs::Args args;
      args.add("owner", std::uint64_t{dir.old_owner.value()})
          .add("dest", std::uint64_t{dest.value()})
          .add("wavelength", std::uint64_t{w.value()});
      ERAPID_TRACE_INSTANT(hub_, hub_->track_lanes(), "lane.release", now, args.str());
    }
    terminals_[dir.old_owner.value()]->apply_release(
        dest, w, now, [this, dest, w, grant](Cycle at) {
          lane_map_.release(dest, w);
          grant(at);
        });
  } else {
    grant(now);
  }
}

}  // namespace erapid::reconfig
