#include "reconfig/allocation.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::reconfig {

std::vector<Directive> allocate_lanes(BoardId dest, const std::vector<FlowStatsEntry>& flows,
                                      const std::vector<LaneOwnership>& lanes,
                                      const DbrPolicy& policy,
                                      power::PowerLevel grant_level) {
  // Each wavelength has exactly one ownership slot at this coupler; a
  // duplicate entry means the caller's lane map is corrupt and every
  // decision below would double-spend a lane.
  ERAPID_REQUIRE(([&] {
                   for (std::size_t i = 0; i < lanes.size(); ++i)
                     for (std::size_t j = i + 1; j < lanes.size(); ++j)
                       if (lanes[i].wavelength == lanes[j].wavelength) return false;
                   return true;
                 }()),
                 "duplicate wavelength in lane ownership for dest=" << dest.value());

  // Classify flows.
  std::vector<const FlowStatsEntry*> over;
  std::vector<BoardId> under;  // flows whose lanes may be harvested
  for (const auto& f : flows) {
    ERAPID_REQUIRE(f.src.valid() && f.src != dest,
                   "flow stats entry must name a remote source board, got src="
                       << f.src.value() << " dest=" << dest.value());
    if (f.buffer_util > policy.b_max) {
      over.push_back(&f);
    } else if (f.buffer_util <= policy.b_min && f.queued == 0) {
      under.push_back(f.src);
    }
  }
  if (over.empty()) return {};

  // Most congested first so the neediest flow gets the first (and odd)
  // extra lane; ties broken by board id for determinism.
  std::sort(over.begin(), over.end(), [](const FlowStatsEntry* a, const FlowStatsEntry* b) {
    if (a->buffer_util != b->buffer_util) return a->buffer_util > b->buffer_util;
    return a->src < b->src;
  });

  auto is_under = [&](BoardId b) {
    return std::find(under.begin(), under.end(), b) != under.end();
  };
  auto is_over = [&](BoardId b) {
    return std::any_of(over.begin(), over.end(),
                       [&](const FlowStatsEntry* f) { return f->src == b; });
  };

  // Build the free pool: dark lanes first (no release needed), then lanes
  // held by under-utilized flows.
  std::vector<const LaneOwnership*> pool;
  for (const auto& l : lanes) {
    if (!l.owner.valid()) pool.push_back(&l);
  }
  for (const auto& l : lanes) {
    if (l.owner.valid() && is_under(l.owner) && !is_over(l.owner)) pool.push_back(&l);
  }
  if (pool.empty()) return {};

  // Round-robin: one lane per over-utilized flow per round, until either
  // the pool or the demand is exhausted. A flow never receives a lane it
  // already owns (that would be a pointless release+grant).
  std::vector<Directive> out;
  std::vector<bool> taken(pool.size(), false);
  std::size_t remaining = pool.size();
  // Limited-flexibility cap: lanes a flow already holds plus grants so far.
  std::vector<std::uint32_t> held(over.size());
  for (std::size_t i = 0; i < over.size(); ++i) held[i] = over[i]->lanes;
  bool granted_any = true;
  while (remaining > 0 && granted_any) {
    granted_any = false;
    for (std::size_t oi = 0; oi < over.size(); ++oi) {
      const auto* f = over[oi];
      if (remaining == 0) break;
      if (policy.max_lanes_per_flow > 0 && held[oi] >= policy.max_lanes_per_flow) continue;
      std::size_t pick = pool.size();
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (!taken[i] && pool[i]->owner != f->src) {
          pick = i;
          break;
        }
      }
      if (pick == pool.size()) continue;
      taken[pick] = true;
      --remaining;
      ++held[oi];
      Directive d;
      d.wavelength = pool[pick]->wavelength;
      d.old_owner = pool[pick]->owner;
      d.new_owner = f->src;
      d.grant_level = grant_level;
      out.push_back(d);
      granted_any = true;
    }
  }
  // Allocation conservation: a re-solve only *moves* lanes. Every directive
  // names a distinct wavelength drawn from the input ownership, so Σ lanes
  // per channel is constant across the re-solve (a lane leaves old_owner
  // and arrives at new_owner; dark lanes come from the dark pool).
  ERAPID_INVARIANT(([&] {
                     for (std::size_t i = 0; i < out.size(); ++i) {
                       for (std::size_t j = i + 1; j < out.size(); ++j)
                         if (out[i].wavelength == out[j].wavelength) return false;
                       const auto it = std::find_if(
                           lanes.begin(), lanes.end(), [&](const LaneOwnership& l) {
                             return l.wavelength == out[i].wavelength;
                           });
                       if (it == lanes.end() || it->owner != out[i].old_owner) return false;
                       if (!out[i].new_owner.valid() || out[i].new_owner == out[i].old_owner)
                         return false;
                     }
                     return true;
                   }()),
                   "lane conservation violated in re-solve for dest=" << dest.value());
  return out;
}

}  // namespace erapid::reconfig
