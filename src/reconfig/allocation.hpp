// The Reconfigure-stage allocator (paper §3.2): given complete incoming-
// link statistics for destination board d, classify each flow and move
// lanes from under-utilized to over-utilized flows.
//
// Classification by Buffer_util against (B_min, B_max):
//   under-utilized   Buffer_util <= B_min  → its lanes are re-allocatable
//   normal           B_min < Buffer_util <= B_max → untouched
//   over-utilized    Buffer_util >  B_max  → wants additional lanes
//
// The free pool is: dark lanes (λ0 and previously released wavelengths)
// first, then lanes held by under-utilized flows (we additionally require
// the flow's queue to be empty *now*, so no packet is ever stranded on a
// flow whose last lane is taken). Over-utilized flows are served
// round-robin, most-congested first, one lane per round, until the pool or
// the demand is exhausted. Pure function — exhaustively property-tested.
#pragma once

#include <vector>

#include "reconfig/messages.hpp"
#include "reconfig/policy.hpp"
#include "util/types.hpp"

namespace erapid::reconfig {

/// Current holder of each wavelength at the destination coupler;
/// !owner.valid() means the lane is dark.
struct LaneOwnership {
  WavelengthId wavelength;
  BoardId owner;
};

/// Computes the lane moves for destination `dest`. `flows` must contain
/// one entry per source board (any order); `lanes` one entry per
/// wavelength. `grant_level` is stamped on every directive.
[[nodiscard]] std::vector<Directive> allocate_lanes(
    BoardId dest, const std::vector<FlowStatsEntry>& flows,
    const std::vector<LaneOwnership>& lanes, const DbrPolicy& policy,
    power::PowerLevel grant_level);

}  // namespace erapid::reconfig
