// Control-plane message types for the Lock-Step protocol (paper §3.2,
// Figure 4). RC–RC messages travel a unidirectional electrical ring
// separate from the optical SRS; RC–LC messages traverse the on-board LC
// chain. Both are modelled with explicit per-hop latencies.
#pragma once

#include <cstdint>
#include <vector>

#include "power/link_power.hpp"
#include "util/types.hpp"

namespace erapid::reconfig {

/// Per-flow statistics one RC reports about its *outgoing* link toward the
/// requesting board (carried in Board Request/Response packets).
struct FlowStatsEntry {
  BoardId src;               ///< reporting (transmitting) board
  double buffer_util = 0.0;  ///< transmit-queue Buffer_util over last R_w
  std::uint32_t queued = 0;  ///< packets currently waiting
  std::uint32_t lanes = 0;   ///< lanes src currently owns toward the dest
};

/// Board Request: RC_d collects incoming-link statistics. The packet
/// circles the ring; every RC_s appends its entry for flow s→d.
struct BoardRequestPkt {
  BoardId origin;  ///< the destination board whose incoming links these are
  std::vector<FlowStatsEntry> incoming;
};

/// One lane re-allocation decided by RC_d in the Reconfigure stage.
struct Directive {
  WavelengthId wavelength;
  BoardId old_owner;  ///< invalid ⇒ lane was dark (λ0 / previously released)
  BoardId new_owner;  ///< invalid ⇒ pure release (unused by the allocator)
  power::PowerLevel grant_level = power::PowerLevel::High;
};

/// Board Response: RC_d broadcasts its directives; each RC applies the
/// ones naming it (release or grant) in its Link Response stage.
struct BoardResponsePkt {
  BoardId origin;  ///< destination board whose incoming lanes moved
  std::vector<Directive> directives;
};

/// Which control-plane medium a Lock-Step message traverses. Used by the
/// fault hook to decide whether a given board's packet is lost this stage.
enum class CtrlStage : std::uint8_t {
  PowerChain,     ///< Power_Request/Response on the on-board LC chain
  BandwidthRing,  ///< Board Request/Response circulation on the RC ring
};

/// Control-plane cost counters (the paper argues LS has "minimal control
/// overhead" — the ablation bench quantifies it with these). The ctrl_*
/// fields count fault-injected control-packet losses and the Lock-Step
/// recovery they triggered; all three stay zero without a fault plan.
struct ControlCounters {
  std::uint64_t power_cycles = 0;
  std::uint64_t bandwidth_cycles = 0;
  std::uint64_t ring_hops = 0;
  std::uint64_t chain_scans = 0;
  std::uint64_t level_changes = 0;
  std::uint64_t lane_grants = 0;
  std::uint64_t lane_releases = 0;
  std::uint64_t ctrl_drops = 0;     ///< control packets lost/corrupted (retried)
  std::uint64_t ctrl_retries = 0;   ///< retransmissions after an LC/RC timeout
  std::uint64_t ctrl_timeouts = 0;  ///< boards that sat a window out (retries exhausted)
  /// Drops whose directive was abandoned outright: the loss that exhausted
  /// the retry budget. Kept separate from ctrl_drops (losses that were
  /// recovered by a retransmission) so resilience reports can distinguish
  /// "retried and survived" from "gave up".
  std::uint64_t ctrl_exhausted_drops = 0;
  std::uint64_t stale_directives = 0;  ///< directives dropped (lane failed mid-protocol)

  // ---- RC crash / ring failover (fault injection; zero without faults) ----
  std::uint64_t rc_crashes = 0;          ///< RC nodes crashed
  std::uint64_t rc_repairs = 0;          ///< RC nodes brought back
  std::uint64_t watchdog_fires = 0;      ///< ring-token losses detected
  std::uint64_t tokens_regenerated = 0;  ///< tokens re-issued after a watchdog fire
  std::uint64_t frozen_windows = 0;      ///< LS windows run with >= 1 dead RC
};

}  // namespace erapid::reconfig
