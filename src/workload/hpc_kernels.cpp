#include "workload/hpc_kernels.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <string>

#include "traffic/patterns.hpp"
#include "util/expect.hpp"

namespace erapid::workload {

namespace {

std::string phase_label(const char* label, std::uint32_t episode, std::uint32_t step) {
  return std::string(label) + ".e" + std::to_string(episode) + ".s" + std::to_string(step);
}

}  // namespace

Schedule make_ptrans(std::uint32_t num_nodes, std::uint32_t volume_packets,
                     double rate_pkt_node_cycle, std::uint32_t episodes,
                     CycleDelta gap_cycles) {
  ERAPID_EXPECT(num_nodes >= 2 && std::has_single_bit(num_nodes),
                "ptrans needs a power-of-two node count >= 2");
  ERAPID_EXPECT(volume_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0,
                "ptrans needs positive volume, episodes and rate");
  Schedule s;
  s.phases_per_episode = 1;
  s.phases.reserve(episodes);
  auto pattern = std::make_shared<traffic::TrafficPattern>(
      traffic::PatternKind::Transpose, num_nodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    PhaseDef p;
    p.name = phase_label("ptrans", e, 0);
    p.volume_packets = volume_packets;
    p.rate_pkt_node_cycle = rate_pkt_node_cycle;
    p.gap_after = gap_cycles;  // the compute period between bursts
    p.destination = [pattern](NodeId src, util::Rng& rng) {
      return pattern->destination(src, rng);
    };
    s.phases.push_back(std::move(p));
  }
  return s;
}

Schedule make_fft(std::uint32_t num_nodes, std::uint32_t volume_packets,
                  double rate_pkt_node_cycle, std::uint32_t episodes) {
  ERAPID_EXPECT(num_nodes >= 2 && std::has_single_bit(num_nodes),
                "fft needs a power-of-two node count >= 2");
  ERAPID_EXPECT(volume_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0,
                "fft needs positive volume, episodes and rate");
  Schedule s;
  const auto stages = static_cast<std::uint32_t>(std::bit_width(num_nodes) - 1);
  s.phases_per_episode = stages;
  s.phases.reserve(static_cast<std::size_t>(stages) * episodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    for (std::uint32_t stage = 0; stage < stages; ++stage) {
      PhaseDef p;
      p.name = phase_label("fft", e, stage);
      p.volume_packets = volume_packets;
      p.rate_pkt_node_cycle = rate_pkt_node_cycle;
      p.destination = [stage](NodeId src, util::Rng&) {
        return NodeId{src.value() ^ (1u << stage)};
      };
      s.phases.push_back(std::move(p));
    }
  }
  return s;
}

Schedule make_randomaccess(std::uint32_t num_nodes, std::uint32_t volume_packets,
                           double rate_pkt_node_cycle, std::uint32_t episodes) {
  ERAPID_EXPECT(num_nodes >= 2, "randomaccess needs >= 2 nodes");
  ERAPID_EXPECT(volume_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0,
                "randomaccess needs positive volume, episodes and rate");
  Schedule s;
  s.phases_per_episode = 1;
  s.phases.reserve(episodes);
  auto pattern = std::make_shared<traffic::TrafficPattern>(
      traffic::PatternKind::Uniform, num_nodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    PhaseDef p;
    p.name = phase_label("randomaccess", e, 0);
    p.volume_packets = volume_packets;
    p.rate_pkt_node_cycle = rate_pkt_node_cycle;
    p.packet_flits = 1;  // fine-grained single-flit updates
    p.destination = [pattern](NodeId src, util::Rng& rng) {
      return pattern->destination(src, rng);
    };
    s.phases.push_back(std::move(p));
  }
  return s;
}

Schedule make_beff(std::uint32_t num_nodes, std::uint32_t volume_packets,
                   double rate_pkt_node_cycle, std::uint32_t episodes,
                   std::uint32_t base_packet_flits) {
  ERAPID_EXPECT(num_nodes >= 2, "beff needs >= 2 nodes");
  ERAPID_EXPECT(volume_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0 &&
                    base_packet_flits >= 1,
                "beff needs positive volume, episodes, rate and base length");
  Schedule s;
  auto pattern = std::make_shared<traffic::TrafficPattern>(
      traffic::PatternKind::Uniform, num_nodes);
  const std::uint64_t flit_budget =
      static_cast<std::uint64_t>(volume_packets) * base_packet_flits;
  // The sweep tops out at the system packet length: the TX reassembly
  // credit window admits exactly one full-size packet, so longer messages
  // cannot traverse the network.
  std::uint32_t sizes = 0;
  for (std::uint32_t flits = 1; flits <= base_packet_flits; flits *= 2) ++sizes;
  s.phases_per_episode = sizes;
  s.phases.reserve(static_cast<std::size_t>(sizes) * episodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    std::uint32_t step = 0;
    for (std::uint32_t flits = 1; flits <= base_packet_flits; flits *= 2) {
      PhaseDef p;
      p.name = phase_label("beff", e, step++);
      p.volume_packets =
          static_cast<std::uint32_t>(std::max<std::uint64_t>(1, flit_budget / flits));
      // Constant offered byte rate: packet pace scales inversely with size.
      p.rate_pkt_node_cycle =
          rate_pkt_node_cycle * static_cast<double>(base_packet_flits) / flits;
      p.packet_flits = flits;
      p.destination = [pattern](NodeId src, util::Rng& rng) {
        return pattern->destination(src, rng);
      };
      s.phases.push_back(std::move(p));
    }
  }
  return s;
}

}  // namespace erapid::workload
