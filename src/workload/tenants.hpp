// Multi-tenant open-loop session generator.
//
// Emulates N concurrent users of the interconnect (the tenant-mixed
// datacenter traffic the Hierarchical WDM DCN work assumes): each tenant
// runs an independent seeded arrival process — geometric gaps with mean
// `session_gap_mean` between session starts — and every session injects
// open-loop traffic of one pattern (drawn uniformly from the tenant's mix)
// for `session_cycles`, at `tenant_load` x capacity aggregate rate.
// Sessions of one tenant may overlap; tenants are fully independent.
//
// Determinism contract: tenant t's RNG is the t-th fork of the fleet
// master (forked in tenant order at construction), each session forks its
// own stream from its tenant's RNG at arrival, and all randomness is
// consumed inside DES events — so the injection stream is a pure function
// of (seed, config) and two same-seed runs are byte-identical. Delivered
// bytes are attributed per tenant via Packet::tenant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "router/flit.hpp"
#include "traffic/patterns.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/stats.hpp"

namespace erapid::workload {

struct TenantFleetConfig {
  std::uint32_t num_nodes = 0;
  std::uint32_t tenants = 1;
  std::uint32_t packet_flits = 8;
  std::uint32_t flit_bytes = 8;
  /// Aggregate injection rate of one active session, packets/cycle.
  double session_rate_pkt_cycle = 0.0;
  CycleDelta session_cycles = 4000;
  CycleDelta session_gap_mean = 2000;
  double hotspot_fraction = 0.2;  ///< shape of hotspot mix entries
  std::uint32_t hotspot_node = 0;
};

/// The tenant fleet (see file comment). Runs under the driver's open-loop
/// warmup/measure/drain methodology, like the Bernoulli sources it
/// replaces.
class TenantFleet {
 public:
  using InjectFn = std::function<void(const router::Packet&, Cycle)>;

  TenantFleet(des::Engine& engine, TenantFleetConfig cfg,
              std::vector<traffic::PatternKind> mix, util::Rng master, InjectFn inject,
              obs::Hub* hub = nullptr);

  /// Schedules every tenant's first session arrival. Call exactly once.
  void start();

  /// Cancels all pending arrivals, session ends and injections.
  void stop();

  /// From now on, generated packets are tagged labelled = `on`.
  void set_labelling(bool on) { labelling_ = on; }

  /// Feed of every delivered packet (per-tenant byte attribution).
  void on_delivered(const router::Packet& p, Cycle now);

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

  /// Tenant/session/byte accounting for the report's workload block.
  [[nodiscard]] WorkloadStats stats() const;

 private:
  struct Tenant {
    util::Rng rng;
    des::EventHandle next_arrival;
    std::uint64_t sessions_started = 0;
  };
  struct Session {
    std::uint32_t tenant = 0;
    util::Rng rng;
    std::size_t pattern = 0;  ///< index into patterns_
    bool active = false;
    des::EventHandle next_inject;
    des::EventHandle end_event;
  };

  void schedule_arrival(std::uint32_t tenant);
  void begin_session(std::uint32_t tenant);
  void end_session(std::size_t session);
  void schedule_inject(std::size_t session);
  void inject(std::size_t session);
  [[nodiscard]] CycleDelta geometric_gap(util::Rng& rng, double rate) const;

  des::Engine& engine_;
  TenantFleetConfig cfg_;
  std::vector<std::unique_ptr<traffic::TrafficPattern>> patterns_;
  InjectFn inject_;
  obs::Hub* hub_;

  std::vector<Tenant> tenants_;
  std::vector<std::unique_ptr<Session>> sessions_;
  bool started_ = false;
  bool labelling_ = false;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::vector<std::uint64_t> tenant_bytes_;
  std::vector<obs::MetricId> m_tenant_bytes_;
  PacketSeq next_seq_ = 1;
};

}  // namespace erapid::workload
