#include "workload/spec.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace erapid::workload {

std::string_view kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Bernoulli: return "bernoulli";
    case WorkloadKind::AllReduce: return "allreduce";
    case WorkloadKind::AllToAll: return "alltoall";
    case WorkloadKind::Phases: return "phases";
    case WorkloadKind::Ptrans: return "ptrans";
    case WorkloadKind::Fft: return "fft";
    case WorkloadKind::RandomAccess: return "randomaccess";
    case WorkloadKind::Beff: return "beff";
    case WorkloadKind::Tenants: return "tenants";
    case WorkloadKind::Trace: return "trace";
  }
  ERAPID_UNREACHABLE("unmodeled workload kind " << static_cast<int>(k));
}

std::optional<WorkloadKind> parse_kind(std::string_view name) {
  for (auto k : {WorkloadKind::Bernoulli, WorkloadKind::AllReduce, WorkloadKind::AllToAll,
                 WorkloadKind::Phases, WorkloadKind::Ptrans, WorkloadKind::Fft,
                 WorkloadKind::RandomAccess, WorkloadKind::Beff, WorkloadKind::Tenants,
                 WorkloadKind::Trace}) {
    if (kind_name(k) == name) return k;
  }
  return std::nullopt;
}

void WorkloadSpec::validate() const {
  ERAPID_EXPECT(episodes >= 1, "workload.episodes must be >= 1, got " << episodes);
  ERAPID_EXPECT(volume_packets >= 1,
                "workload.volume_packets must be >= 1, got " << volume_packets);
  ERAPID_EXPECT(phase_rate > 0.0 && phase_rate <= 16.0,
                "workload.phase_rate must be in (0, 16], got " << phase_rate);
  ERAPID_EXPECT(tenants >= 1 && tenants <= 64,
                "workload.tenants must be in [1, 64], got " << tenants);
  ERAPID_EXPECT(tenant_load > 0.0 && tenant_load <= 1.0,
                "workload.tenant_load must be in (0, 1], got " << tenant_load);
  ERAPID_EXPECT(!tenant_mix.empty(), "workload.tenant_mix must name at least one pattern");
  ERAPID_EXPECT(session_cycles >= 1,
                "workload.session_cycles must be >= 1, got " << session_cycles);
  ERAPID_EXPECT(session_gap_mean >= 1,
                "workload.session_gap_mean must be >= 1, got " << session_gap_mean);
  ERAPID_EXPECT(horizon_cycles >= 1,
                "workload.horizon_cycles must be >= 1, got " << horizon_cycles);
  if (kind == WorkloadKind::Phases) {
    ERAPID_EXPECT(!phases.empty(), "workload.kind=phases needs a workload.phases schedule");
  } else {
    ERAPID_EXPECT(phases.empty(),
                  "workload.phases is only meaningful with workload.kind=phases");
  }
  for (const PhaseSpec& p : phases) {
    ERAPID_EXPECT(p.volume_packets >= 1, "workload.phases: phase volume must be >= 1");
    ERAPID_EXPECT(p.rate >= 0.0 && p.rate <= 16.0,
                  "workload.phases: phase rate must be in [0, 16], got " << p.rate);
  }
  if (kind == WorkloadKind::Trace) {
    ERAPID_EXPECT(!trace_file.empty(), "workload.kind=trace needs workload.trace_file");
  } else {
    ERAPID_EXPECT(trace_file.empty(),
                  "workload.trace_file is only meaningful with workload.kind=trace");
  }
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(text);
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

}  // namespace

std::vector<PhaseSpec> parse_phase_specs(const std::string& text) {
  std::vector<PhaseSpec> out;
  for (const std::string& entry : split(text, ',')) {
    const auto fields = split(entry, ':');
    ERAPID_EXPECT(fields.size() >= 2 && fields.size() <= 4,
                  "workload.phases entry '" + entry +
                      "' is not pattern:volume[:rate[:gap]]");
    PhaseSpec p;
    const auto pat = traffic::parse_pattern(fields[0]);
    ERAPID_EXPECT(pat.has_value(), "workload.phases: unknown pattern '" + fields[0] + "'");
    p.pattern = *pat;
    std::size_t pos = 0;
    const long volume = std::stol(fields[1], &pos);
    ERAPID_EXPECT(pos == fields[1].size() && volume > 0,
                  "workload.phases: bad volume '" + fields[1] + "'");
    p.volume_packets = static_cast<std::uint32_t>(volume);
    if (fields.size() >= 3) {
      p.rate = std::stod(fields[2], &pos);
      ERAPID_EXPECT(pos == fields[2].size() && p.rate >= 0.0,
                    "workload.phases: bad rate '" + fields[2] + "'");
    }
    if (fields.size() >= 4) {
      const long gap = std::stol(fields[3], &pos);
      ERAPID_EXPECT(pos == fields[3].size() && gap >= 0,
                    "workload.phases: bad gap '" + fields[3] + "'");
      p.gap_after = static_cast<CycleDelta>(gap);
    }
    out.push_back(p);
  }
  ERAPID_EXPECT(!out.empty(), "workload.phases must list at least one phase");
  return out;
}

std::string format_phase_specs(const std::vector<PhaseSpec>& specs) {
  std::ostringstream os;
  bool first = true;
  for (const PhaseSpec& p : specs) {
    if (!first) os << ',';
    first = false;
    os << traffic::pattern_name(p.pattern) << ':' << p.volume_packets;
    // Trailing default fields are omitted; a gap forces the rate field so
    // the positional grammar stays unambiguous.
    if (p.rate > 0.0 || p.gap_after > 0) os << ':' << p.rate;
    if (p.gap_after > 0) os << ':' << p.gap_after;
  }
  return os.str();
}

std::vector<traffic::PatternKind> parse_pattern_mix(const std::string& text) {
  std::vector<traffic::PatternKind> out;
  for (const std::string& entry : split(text, ',')) {
    const auto pat = traffic::parse_pattern(entry);
    ERAPID_EXPECT(pat.has_value(), "workload.tenant_mix: unknown pattern '" + entry + "'");
    out.push_back(*pat);
  }
  ERAPID_EXPECT(!out.empty(), "workload.tenant_mix must name at least one pattern");
  return out;
}

std::string format_pattern_mix(const std::vector<traffic::PatternKind>& mix) {
  std::ostringstream os;
  bool first = true;
  for (const traffic::PatternKind k : mix) {
    if (!first) os << ',';
    first = false;
    os << traffic::pattern_name(k);
  }
  return os.str();
}

}  // namespace erapid::workload
