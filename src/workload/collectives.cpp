#include "workload/collectives.hpp"

#include <memory>
#include <string>

#include "traffic/patterns.hpp"
#include "util/expect.hpp"

namespace erapid::workload {

namespace {

/// Phase name "<label>.e<episode>.s<step>" — stable across runs, useful in
/// contract diagnostics.
std::string phase_label(const char* label, std::uint32_t episode, std::uint32_t step) {
  return std::string(label) + ".e" + std::to_string(episode) + ".s" + std::to_string(step);
}

}  // namespace

Schedule make_allreduce(std::uint32_t num_nodes, std::uint32_t chunk_packets,
                        double rate_pkt_node_cycle, std::uint32_t episodes) {
  ERAPID_EXPECT(num_nodes >= 2, "allreduce needs >= 2 nodes");
  ERAPID_EXPECT(chunk_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0,
                "allreduce needs positive volume, episodes and rate");
  Schedule s;
  const std::uint32_t steps = 2 * (num_nodes - 1);
  s.phases_per_episode = steps;
  s.phases.reserve(static_cast<std::size_t>(steps) * episodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    for (std::uint32_t step = 0; step < steps; ++step) {
      PhaseDef p;
      p.name = phase_label(step < num_nodes - 1 ? "allreduce.rs" : "allreduce.ag", e, step);
      p.volume_packets = chunk_packets;
      p.rate_pkt_node_cycle = rate_pkt_node_cycle;
      // Every ring step sends this node's current chunk to the next rank.
      p.destination = [num_nodes](NodeId src, util::Rng&) {
        return NodeId{(src.value() + 1) % num_nodes};
      };
      s.phases.push_back(std::move(p));
    }
  }
  return s;
}

Schedule make_alltoall(std::uint32_t num_nodes, std::uint32_t volume_packets,
                       double rate_pkt_node_cycle, std::uint32_t episodes) {
  ERAPID_EXPECT(num_nodes >= 2, "alltoall needs >= 2 nodes");
  ERAPID_EXPECT(volume_packets >= 1 && episodes >= 1 && rate_pkt_node_cycle > 0.0,
                "alltoall needs positive volume, episodes and rate");
  Schedule s;
  const std::uint32_t steps = num_nodes - 1;
  s.phases_per_episode = steps;
  s.phases.reserve(static_cast<std::size_t>(steps) * episodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    for (std::uint32_t step = 1; step <= steps; ++step) {
      PhaseDef p;
      p.name = phase_label("alltoall", e, step - 1);
      p.volume_packets = volume_packets;
      p.rate_pkt_node_cycle = rate_pkt_node_cycle;
      p.destination = [num_nodes, step](NodeId src, util::Rng&) {
        return NodeId{(src.value() + step) % num_nodes};
      };
      s.phases.push_back(std::move(p));
    }
  }
  return s;
}

Schedule make_phase_schedule(const std::vector<PhaseSpec>& specs, std::uint32_t num_nodes,
                             double capacity_pkt_node_cycle, double default_rate_fraction,
                             std::uint32_t episodes, double hotspot_fraction,
                             std::uint32_t hotspot_node) {
  ERAPID_EXPECT(!specs.empty(), "phase schedule needs at least one phase");
  ERAPID_EXPECT(episodes >= 1 && capacity_pkt_node_cycle > 0.0 && default_rate_fraction > 0.0,
                "phase schedule needs positive episodes, capacity and default rate");
  Schedule s;
  s.phases_per_episode = static_cast<std::uint32_t>(specs.size());
  s.phases.reserve(specs.size() * episodes);
  for (std::uint32_t e = 0; e < episodes; ++e) {
    std::uint32_t step = 0;
    for (const PhaseSpec& spec : specs) {
      PhaseDef p;
      p.name = phase_label(traffic::pattern_name(spec.pattern).data(), e, step++);
      p.volume_packets = spec.volume_packets;
      p.rate_pkt_node_cycle =
          (spec.rate > 0.0 ? spec.rate : default_rate_fraction) * capacity_pkt_node_cycle;
      p.gap_after = spec.gap_after;
      auto pattern = std::make_shared<traffic::TrafficPattern>(
          spec.pattern, num_nodes, hotspot_fraction, NodeId{hotspot_node});
      p.destination = [pattern](NodeId src, util::Rng& rng) {
        return pattern->destination(src, rng);
      };
      s.phases.push_back(std::move(p));
    }
  }
  return s;
}

}  // namespace erapid::workload
