// ML collective schedules (the episode model of MLNetwork-style traffic).
//
// Each builder unrolls `episodes` iterations of one collective into a flat
// phase Schedule for the PhaseEngine:
//
//   ring all-reduce   2(N-1) steps/episode, each a neighbor shift
//                     (reduce-scatter then all-gather) carrying one chunk
//                     per node — the bandwidth-optimal ring algorithm.
//   all-to-all        N-1 steps/episode; step k is the shifted permutation
//                     dst = (src + k) mod N, so every pair exchanges
//                     exactly once per episode without endpoint conflicts.
//   generic phases    one phase per `workload.phases` entry (pattern,
//                     volume, optional rate/gap), repeated per episode.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/phase.hpp"
#include "workload/spec.hpp"

namespace erapid::workload {

/// Ring all-reduce: `chunk_packets` packets per node per step.
[[nodiscard]] Schedule make_allreduce(std::uint32_t num_nodes, std::uint32_t chunk_packets,
                                      double rate_pkt_node_cycle, std::uint32_t episodes);

/// All-to-all: `volume_packets` packets per node per step.
[[nodiscard]] Schedule make_alltoall(std::uint32_t num_nodes, std::uint32_t volume_packets,
                                     double rate_pkt_node_cycle, std::uint32_t episodes);

/// Generic schedule from parsed `workload.phases` entries. Per-phase rates
/// are fractions of `capacity_pkt_node_cycle` (N_c); entries with rate 0
/// inherit `default_rate_fraction`. Hotspot phases use the given shape.
[[nodiscard]] Schedule make_phase_schedule(const std::vector<PhaseSpec>& specs,
                                           std::uint32_t num_nodes,
                                           double capacity_pkt_node_cycle,
                                           double default_rate_fraction,
                                           std::uint32_t episodes, double hotspot_fraction,
                                           std::uint32_t hotspot_node);

}  // namespace erapid::workload
