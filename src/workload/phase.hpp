// Phase-structured workload engine.
//
// A Schedule is a flat list of phases (episodes pre-unrolled); each phase
// injects `volume_packets` per node under a deterministic pacing plan and
// completes when every one of its packets has been delivered (or abandoned
// by the ARQ) — delivered-byte accounting, not a timer. Phases therefore
// serialize exactly like a blocking collective: phase k+1 starts gap_after
// cycles after phase k's last byte lands, which is precisely the dependency
// structure that makes reconfiguration latency visible end-to-end.
//
// Determinism contract: injections are paced by arithmetic on the phase
// start cycle (packet k of an R packets/cycle phase departs at
// start + floor(k / R), round-robin over source nodes), destination draws
// consume a single engine-owned RNG in injection order, and phase
// transitions ride the DES calendar — two same-seed runs inject and
// complete byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "router/flit.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/stats.hpp"

namespace erapid::workload {

/// One phase of a structured workload.
struct PhaseDef {
  std::string name;
  std::uint32_t volume_packets = 0;  ///< packets injected per node
  double rate_pkt_node_cycle = 0.0;  ///< injection pace, packets/node/cycle
  std::uint32_t packet_flits = 0;    ///< 0 = the system default length
  CycleDelta gap_after = 0;          ///< idle cycles before the next phase
  /// Destination map; `rng` consulted only by stochastic phases.
  std::function<NodeId(NodeId, util::Rng&)> destination;
};

/// A full workload: phases in execution order, grouped into episodes.
struct Schedule {
  std::vector<PhaseDef> phases;
  /// Phases per episode (must divide phases.size(); 0 = one episode).
  std::uint32_t phases_per_episode = 0;
};

struct PhaseEngineConfig {
  std::uint32_t num_nodes = 0;
  std::uint32_t default_packet_flits = 8;
  std::uint32_t flit_bytes = 8;
  std::uint64_t seed = 1;
};

/// Drives a Schedule through the network (see file comment).
class PhaseEngine {
 public:
  using InjectFn = std::function<void(const router::Packet&, Cycle)>;

  /// `inject(packet, now)` hands each generated packet to the network;
  /// `hub` (optional) receives phase/episode duration histograms.
  PhaseEngine(des::Engine& engine, Schedule schedule, PhaseEngineConfig cfg,
              InjectFn inject, obs::Hub* hub = nullptr);

  /// Begins the first phase at engine.now(). Call exactly once.
  void start();

  /// Feed of every delivered packet (the driver's delivery callback).
  void on_delivered(const router::Packet& p, Cycle now);

  /// Feed of ARQ dead letters: an abandoned packet can never arrive, so it
  /// counts as resolved — otherwise completion would wait on it forever.
  void on_dead_letter(const router::Packet& p, Cycle now);

  /// True once every phase has completed.
  [[nodiscard]] bool done() const { return stats_.completed; }
  [[nodiscard]] const WorkloadStats& stats() const { return stats_; }

  /// Name of the phase currently injecting/draining, or "" before start and
  /// after completion — the label the telemetry records carry.
  [[nodiscard]] const std::string& active_phase() const {
    static const std::string kNone;
    if (!started_ || done() || phase_index_ >= schedule_.phases.size()) return kNone;
    return schedule_.phases[phase_index_].name;
  }

 private:
  void begin_phase();
  void pump();
  void complete_phase(Cycle now);
  void resolve_one(Cycle now);
  /// Absolute injection cycle of the current phase's k-th packet.
  [[nodiscard]] Cycle due(std::uint64_t k) const;
  [[nodiscard]] const PhaseDef& current() const { return schedule_.phases[phase_index_]; }
  [[nodiscard]] std::uint32_t phases_per_episode() const;

  des::Engine& engine_;
  Schedule schedule_;
  PhaseEngineConfig cfg_;
  InjectFn inject_;
  obs::Hub* hub_;
  util::Rng rng_;

  std::size_t phase_index_ = 0;
  Cycle phase_start_ = 0;
  Cycle episode_start_ = 0;
  std::uint64_t to_inject_ = 0;  ///< packets the current phase owes
  std::uint64_t injected_in_phase_ = 0;
  std::uint64_t resolved_in_phase_ = 0;
  bool started_ = false;
  des::EventHandle pending_;
  PacketSeq next_seq_ = 1;
  WorkloadStats stats_;

  obs::MetricId m_phase_hist_ = 0;
  obs::MetricId m_episode_hist_ = 0;
};

}  // namespace erapid::workload
