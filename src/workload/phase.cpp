#include "workload/phase.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/probe.hpp"
#include "util/expect.hpp"

namespace erapid::workload {

PhaseEngine::PhaseEngine(des::Engine& engine, Schedule schedule, PhaseEngineConfig cfg,
                         InjectFn inject, obs::Hub* hub)
    : engine_(engine),
      schedule_(std::move(schedule)),
      cfg_(cfg),
      inject_(std::move(inject)),
      hub_(hub),
      rng_(cfg.seed) {
  ERAPID_REQUIRE(cfg_.num_nodes >= 2, "phase engine needs >= 2 nodes");
  ERAPID_REQUIRE(cfg_.default_packet_flits >= 1 && cfg_.flit_bytes >= 1,
                 "packet geometry must be non-degenerate");
  ERAPID_REQUIRE(!schedule_.phases.empty(), "schedule has no phases");
  ERAPID_REQUIRE(schedule_.phases_per_episode == 0 ||
                     schedule_.phases.size() % schedule_.phases_per_episode == 0,
                 "phases_per_episode must divide the phase count");
  ERAPID_REQUIRE(static_cast<bool>(inject_), "phase engine needs an inject callback");
  for (const PhaseDef& p : schedule_.phases) {
    ERAPID_REQUIRE(p.volume_packets >= 1, "phase '" << p.name << "' has zero volume");
    ERAPID_REQUIRE(p.rate_pkt_node_cycle > 0.0,
                   "phase '" << p.name << "' has a non-positive rate");
    ERAPID_REQUIRE(static_cast<bool>(p.destination),
                   "phase '" << p.name << "' has no destination map");
  }
  stats_.phases_total = static_cast<std::uint32_t>(schedule_.phases.size());
  stats_.episodes_total =
      static_cast<std::uint32_t>(schedule_.phases.size()) / phases_per_episode();
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_phase_hist_ = hub_->metrics().histogram("workload.phase_cycles");
    m_episode_hist_ = hub_->metrics().histogram("workload.collective_cycles");
  }
#endif
}

std::uint32_t PhaseEngine::phases_per_episode() const {
  return schedule_.phases_per_episode != 0
             ? schedule_.phases_per_episode
             : static_cast<std::uint32_t>(schedule_.phases.size());
}

void PhaseEngine::start() {
  ERAPID_REQUIRE(!started_, "PhaseEngine started twice");
  started_ = true;
  begin_phase();
}

Cycle PhaseEngine::due(std::uint64_t k) const {
  const double aggregate =
      current().rate_pkt_node_cycle * static_cast<double>(cfg_.num_nodes);
  return phase_start_ +
         static_cast<Cycle>(std::floor(static_cast<double>(k) / aggregate));
}

void PhaseEngine::begin_phase() {
  phase_start_ = engine_.now();
  if (phase_index_ % phases_per_episode() == 0) episode_start_ = phase_start_;
  to_inject_ =
      static_cast<std::uint64_t>(current().volume_packets) * cfg_.num_nodes;
  injected_in_phase_ = 0;
  resolved_in_phase_ = 0;
  pump();
}

void PhaseEngine::pump() {
  const Cycle now = engine_.now();
  while (injected_in_phase_ < to_inject_ && due(injected_in_phase_) <= now) {
    const std::uint64_t k = injected_in_phase_++;
    const PhaseDef& phase = current();
    router::Packet p;
    p.seq = next_seq_++;
    p.src = NodeId{static_cast<std::uint32_t>(k % cfg_.num_nodes)};
    p.dst = phase.destination(p.src, rng_);
    p.flits = phase.packet_flits != 0 ? phase.packet_flits : cfg_.default_packet_flits;
    p.created = now;
    p.labelled = true;
    ++stats_.packets_injected;
    inject_(p, now);
  }
  if (injected_in_phase_ < to_inject_) {
    pending_ = engine_.schedule(due(injected_in_phase_) - now, [this] { pump(); },
                                "workload.inject");
  }
}

void PhaseEngine::on_delivered(const router::Packet& p, Cycle now) {
  ERAPID_REQUIRE(started_ && !stats_.completed,
                 "delivery fed to an idle PhaseEngine at cycle " << now);
  ++stats_.packets_delivered;
  stats_.bytes_delivered +=
      static_cast<std::uint64_t>(p.flits) * cfg_.flit_bytes;
  resolve_one(now);
}

void PhaseEngine::on_dead_letter(const router::Packet&, Cycle now) {
  ERAPID_REQUIRE(started_ && !stats_.completed,
                 "dead letter fed to an idle PhaseEngine at cycle " << now);
  ++stats_.packets_dead;
  resolve_one(now);
}

void PhaseEngine::resolve_one(Cycle now) {
  ++resolved_in_phase_;
  ERAPID_INVARIANT(resolved_in_phase_ <= injected_in_phase_,
                   "phase resolved more packets than it injected");
  if (injected_in_phase_ == to_inject_ && resolved_in_phase_ == to_inject_) {
    complete_phase(now);
  }
}

void PhaseEngine::complete_phase(Cycle now) {
  const Cycle phase_cycles = now - phase_start_;
  stats_.worst_phase_cycles = std::max(stats_.worst_phase_cycles, phase_cycles);
  ++stats_.phases_completed;
  ERAPID_OBSERVE(hub_, m_phase_hist_, static_cast<double>(phase_cycles));
  if ((phase_index_ + 1) % phases_per_episode() == 0) {
    const Cycle episode_cycles = now - episode_start_;
    stats_.worst_episode_cycles = std::max(stats_.worst_episode_cycles, episode_cycles);
    ++stats_.episodes_completed;
    ERAPID_OBSERVE(hub_, m_episode_hist_, static_cast<double>(episode_cycles));
  }
  const CycleDelta gap = current().gap_after;
  ++phase_index_;
  if (phase_index_ == schedule_.phases.size()) {
    stats_.completed = true;
    stats_.completion_cycle = now;
    return;
  }
  // Next phase starts through the calendar (never inline): completion fires
  // from inside a delivery event and phase start must not reenter it.
  pending_ = engine_.schedule(gap, [this] { begin_phase(); }, "workload.phase");
}

}  // namespace erapid::workload
