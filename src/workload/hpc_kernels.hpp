// HPC kernel communication schedules, modeled on the HPC Challenge
// benchmark suite (as ported to FPGAs by pc2/HPCC_FPGA):
//
//   PTRANS        bursty matrix transpose: one transpose-permutation phase
//                 per timestep, separated by compute gaps — the classic
//                 "reconfigure during the quiet period" opportunity.
//   FFT           butterfly exchange: log2(N) stages per episode, stage s
//                 pairing dst = src XOR 2^s — each stage lights a
//                 different set of board-to-board wavelengths.
//   RandomAccess  fine-grained uniform updates (single-flit packets):
//                 maximally unstructured, the DBR's worst case.
//   b_eff         message-size sweep at (approximately) constant byte
//                 volume: phases of 1, 2, 4, ... flit packets measure how
//                 per-packet overheads eat effective bandwidth.
#pragma once

#include <cstdint>

#include "workload/phase.hpp"

namespace erapid::workload {

/// PTRANS: `episodes` transpose bursts, `gap_cycles` of compute between
/// them. Needs power-of-two N (bit-permutation).
[[nodiscard]] Schedule make_ptrans(std::uint32_t num_nodes, std::uint32_t volume_packets,
                                   double rate_pkt_node_cycle, std::uint32_t episodes,
                                   CycleDelta gap_cycles);

/// FFT butterfly: log2(N) XOR-exchange stages per episode. Needs
/// power-of-two N >= 2.
[[nodiscard]] Schedule make_fft(std::uint32_t num_nodes, std::uint32_t volume_packets,
                                double rate_pkt_node_cycle, std::uint32_t episodes);

/// RandomAccess: one uniform phase of single-flit packets per episode.
[[nodiscard]] Schedule make_randomaccess(std::uint32_t num_nodes,
                                         std::uint32_t volume_packets,
                                         double rate_pkt_node_cycle,
                                         std::uint32_t episodes);

/// b_eff sweep: per episode, one uniform phase per message size in
/// {1, 2, 4, ..., base_packet_flits}, volumes scaled to keep the byte
/// total within one packet of `volume_packets * base_packet_flits` flits
/// per node.
[[nodiscard]] Schedule make_beff(std::uint32_t num_nodes, std::uint32_t volume_packets,
                                 double rate_pkt_node_cycle, std::uint32_t episodes,
                                 std::uint32_t base_packet_flits);

}  // namespace erapid::workload
