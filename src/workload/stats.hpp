// Per-workload result accounting — what a structured run reports beyond
// the open-loop throughput/latency metrics. Carried by sim::SimResult and
// serialized as the report's `workload` block only when a workload ran,
// so Bernoulli reports stay byte-identical to pre-workload builds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace erapid::workload {

struct WorkloadStats {
  /// Workload kind name; empty when the legacy Bernoulli path ran (the
  /// report then carries no workload block at all).
  std::string kind;

  // Phase-structured kinds.
  std::uint32_t phases_total = 0;
  std::uint32_t phases_completed = 0;
  std::uint32_t episodes_total = 0;
  std::uint32_t episodes_completed = 0;
  Cycle worst_phase_cycles = 0;
  Cycle worst_episode_cycles = 0;

  // Delivered-byte completion accounting (all kinds).
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dead = 0;  ///< ARQ dead letters count as resolved
  std::uint64_t bytes_delivered = 0;
  bool completed = false;     ///< every injected packet resolved in time
  Cycle completion_cycle = 0; ///< when the last packet resolved (0 if not)

  // Multi-tenant kind.
  std::uint32_t tenants = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::vector<std::uint64_t> tenant_delivered_bytes;

  [[nodiscard]] bool active() const { return !kind.empty(); }
};

}  // namespace erapid::workload
