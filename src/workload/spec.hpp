// Workload specifications — the strictly-validated `workload.*` surface.
//
// The paper evaluates E-RAPID only under Bernoulli-injected synthetic
// permutations; "To Reconfigure or Not to Reconfigure" (arXiv 2602.10468)
// argues that phase-structured collectives are where reconfigurable optics
// win or lose. This module describes those workloads declaratively:
//
//   kind = bernoulli     the paper's open-loop Bernoulli sources (default)
//   kind = allreduce     ring all-reduce: 2(N-1) neighbor phases/episode
//   kind = alltoall      all-to-all: N-1 shifted-permutation phases/episode
//   kind = phases        generic schedule from the workload.phases grammar
//   kind = ptrans        HPCC PTRANS: bursty transpose episodes with gaps
//   kind = fft           FFT butterfly: log2(N) XOR-exchange stages/episode
//   kind = randomaccess  HPCC RandomAccess: fine-grained (1-flit) uniform
//   kind = beff          b_eff-style message-size sweep at fixed byte volume
//   kind = tenants       N tenants x seeded session arrivals x pattern mix
//   kind = trace         replay of a committed trace file to completion
//
// All kinds except bernoulli/tenants are completion-bounded: the run ends
// when every injected packet is delivered (delivered-byte accounting), not
// after a fixed measurement window. Every field is validated on parse so a
// bad sweep config fails before any simulation runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "traffic/patterns.hpp"
#include "util/types.hpp"

namespace erapid::workload {

enum class WorkloadKind : std::uint8_t {
  Bernoulli,
  AllReduce,
  AllToAll,
  Phases,
  Ptrans,
  Fft,
  RandomAccess,
  Beff,
  Tenants,
  Trace,
};

[[nodiscard]] std::string_view kind_name(WorkloadKind k);
[[nodiscard]] std::optional<WorkloadKind> parse_kind(std::string_view name);

/// One entry of the `workload.phases` grammar:
///   pattern:volume[:rate[:gap]]
/// e.g. "transpose:32:0.8:512" — 32 packets/node of transpose traffic at
/// 0.8 x capacity, then a 512-cycle gap before the next phase.
struct PhaseSpec {
  traffic::PatternKind pattern = traffic::PatternKind::Uniform;
  std::uint32_t volume_packets = 0;  ///< packets injected per node
  double rate = 0.0;                 ///< fraction of N_c; 0 = workload.phase_rate
  CycleDelta gap_after = 0;          ///< idle cycles before the next phase

  friend bool operator==(const PhaseSpec&, const PhaseSpec&) = default;
};

/// The `workload.*` INI section beyond the legacy Bernoulli knobs.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::Bernoulli;
  /// Episodes (collective iterations / kernel timesteps) per run.
  std::uint32_t episodes = 2;
  /// Packets per node per phase for the built-in kinds.
  std::uint32_t volume_packets = 16;
  /// Injection rate of each phase as a fraction of capacity N_c.
  double phase_rate = 0.9;
  /// Compute gap between episodes for the bursty kinds (ptrans).
  CycleDelta gap_cycles = 256;
  /// Generic schedule (kind = phases only; see PhaseSpec).
  std::vector<PhaseSpec> phases;
  /// Tenant count for kind = tenants.
  std::uint32_t tenants = 4;
  /// Per-tenant offered load while a session is active (fraction of N_c).
  double tenant_load = 0.25;
  /// Patterns a tenant session draws from, uniformly per session.
  std::vector<traffic::PatternKind> tenant_mix{traffic::PatternKind::Uniform};
  /// Length of one tenant session in cycles.
  CycleDelta session_cycles = 4000;
  /// Mean geometric gap between one tenant's session arrivals.
  CycleDelta session_gap_mean = 2000;
  /// Hard cap on completion-bounded runs — a workload that has not
  /// completed by this cycle is reported incomplete instead of hanging.
  Cycle horizon_cycles = 200000;
  /// Trace to replay for kind = trace (erapid-trace v1 format).
  std::string trace_file;

  /// True when this spec replaces the legacy Bernoulli traffic path.
  [[nodiscard]] bool active() const { return kind != WorkloadKind::Bernoulli; }

  /// True for kinds that run to delivered-byte completion rather than over
  /// a fixed warmup/measure window.
  [[nodiscard]] bool completion_bounded() const {
    return active() && kind != WorkloadKind::Tenants;
  }

  /// Cross-field validation; throws ModelInvariantError on the first
  /// violated constraint. Called by options_from_ini and the Simulation.
  void validate() const;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Parses the `workload.phases` grammar (comma-separated PhaseSpec list).
[[nodiscard]] std::vector<PhaseSpec> parse_phase_specs(const std::string& text);
/// Inverse of parse_phase_specs: format(parse(format(x))) == format(x).
[[nodiscard]] std::string format_phase_specs(const std::vector<PhaseSpec>& specs);

/// Parses the `workload.tenant_mix` grammar (comma-separated pattern names).
[[nodiscard]] std::vector<traffic::PatternKind> parse_pattern_mix(const std::string& text);
[[nodiscard]] std::string format_pattern_mix(const std::vector<traffic::PatternKind>& mix);

}  // namespace erapid::workload
