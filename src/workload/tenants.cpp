#include "workload/tenants.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "obs/probe.hpp"
#include "util/expect.hpp"

namespace erapid::workload {

namespace {

/// Zero-padded tenant tag ("07") so metric names sort numerically.
std::string tenant_tag(std::uint32_t t) {
  return (t < 10 ? "0" : "") + std::to_string(t);
}

}  // namespace

TenantFleet::TenantFleet(des::Engine& engine, TenantFleetConfig cfg,
                         std::vector<traffic::PatternKind> mix, util::Rng master,
                         InjectFn inject, obs::Hub* hub)
    : engine_(engine), cfg_(cfg), inject_(std::move(inject)), hub_(hub) {
  ERAPID_REQUIRE(cfg_.num_nodes >= 2, "tenant fleet needs >= 2 nodes");
  ERAPID_REQUIRE(cfg_.tenants >= 1, "tenant fleet needs >= 1 tenant");
  ERAPID_REQUIRE(cfg_.packet_flits >= 1 && cfg_.flit_bytes >= 1,
                 "packet geometry must be non-degenerate");
  ERAPID_REQUIRE(cfg_.session_rate_pkt_cycle > 0.0, "session rate must be positive");
  ERAPID_REQUIRE(cfg_.session_cycles >= 1 && cfg_.session_gap_mean >= 1,
                 "session shape must be non-degenerate");
  ERAPID_REQUIRE(!mix.empty(), "tenant fleet needs a non-empty pattern mix");
  ERAPID_REQUIRE(static_cast<bool>(inject_), "tenant fleet needs an inject callback");
  patterns_.reserve(mix.size());
  for (const traffic::PatternKind k : mix) {
    patterns_.push_back(std::make_unique<traffic::TrafficPattern>(
        k, cfg_.num_nodes, cfg_.hotspot_fraction, NodeId{cfg_.hotspot_node}));
  }
  tenants_.reserve(cfg_.tenants);
  tenant_bytes_.assign(cfg_.tenants, 0);
  for (std::uint32_t t = 0; t < cfg_.tenants; ++t) {
    // Forked in tenant order: tenant t's stream depends only on (seed, t).
    tenants_.push_back(Tenant{master.fork(), {}, 0});
  }
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_tenant_bytes_.reserve(cfg_.tenants);
    for (std::uint32_t t = 0; t < cfg_.tenants; ++t) {
      m_tenant_bytes_.push_back(
          hub_->metrics().counter("workload.tenant" + tenant_tag(t) + ".bytes"));
    }
  }
#endif
}

CycleDelta TenantFleet::geometric_gap(util::Rng& rng, double rate) const {
  if (rate >= 1.0) return 1;
  const double u = rng.next_double();
  const double g = std::floor(std::log1p(-u) / std::log1p(-rate));
  return static_cast<CycleDelta>(g) + 1;
}

void TenantFleet::start() {
  ERAPID_REQUIRE(!started_, "TenantFleet started twice");
  started_ = true;
  for (std::uint32_t t = 0; t < cfg_.tenants; ++t) schedule_arrival(t);
}

void TenantFleet::stop() {
  ERAPID_REQUIRE(started_, "TenantFleet stopped before start");
  for (Tenant& t : tenants_) t.next_arrival.cancel();
  for (auto& s : sessions_) {
    // Truncated sessions do not count as completed.
    s->active = false;
    s->next_inject.cancel();
    s->end_event.cancel();
  }
}

void TenantFleet::schedule_arrival(std::uint32_t tenant) {
  const CycleDelta gap =
      geometric_gap(tenants_[tenant].rng,
                    1.0 / static_cast<double>(cfg_.session_gap_mean));
  tenants_[tenant].next_arrival = engine_.schedule(
      gap,
      [this, tenant] {
        begin_session(tenant);
        schedule_arrival(tenant);
      },
      "workload.arrival");
}

void TenantFleet::begin_session(std::uint32_t tenant) {
  auto session = std::make_unique<Session>();
  session->tenant = tenant;
  session->rng = tenants_[tenant].rng.fork();
  session->pattern =
      static_cast<std::size_t>(tenants_[tenant].rng.next_below(patterns_.size()));
  session->active = true;
  ++tenants_[tenant].sessions_started;
  const std::size_t idx = sessions_.size();
  sessions_.push_back(std::move(session));
  sessions_[idx]->end_event = engine_.schedule(
      cfg_.session_cycles, [this, idx] { end_session(idx); }, "workload.session_end");
  schedule_inject(idx);
}

void TenantFleet::end_session(std::size_t session) {
  Session& s = *sessions_[session];
  s.active = false;
  s.next_inject.cancel();
  ++sessions_completed_;
}

void TenantFleet::schedule_inject(std::size_t session) {
  Session& s = *sessions_[session];
  const CycleDelta gap = geometric_gap(s.rng, cfg_.session_rate_pkt_cycle);
  s.next_inject =
      engine_.schedule(gap, [this, session] { inject(session); }, "workload.tenant_inject");
}

void TenantFleet::inject(std::size_t session) {
  Session& s = *sessions_[session];
  if (!s.active) return;
  const Cycle now = engine_.now();
  router::Packet p;
  p.seq = next_seq_++;
  p.src = NodeId{static_cast<std::uint32_t>(s.rng.next_below(cfg_.num_nodes))};
  p.dst = patterns_[s.pattern]->destination(p.src, s.rng);
  p.flits = cfg_.packet_flits;
  p.created = now;
  p.labelled = labelling_;
  p.tenant = s.tenant;
  ++generated_;
  inject_(p, now);
  schedule_inject(session);
}

void TenantFleet::on_delivered(const router::Packet& p, Cycle now) {
  ERAPID_REQUIRE(p.tenant < tenant_bytes_.size(),
                 "delivered packet names unknown tenant " << p.tenant << " at cycle " << now);
  const auto bytes = static_cast<std::uint64_t>(p.flits) * cfg_.flit_bytes;
  tenant_bytes_[p.tenant] += bytes;
  ++delivered_;
#if !defined(ERAPID_NO_OBS)
  if (!m_tenant_bytes_.empty()) ERAPID_COUNTER(hub_, m_tenant_bytes_[p.tenant], bytes);
#endif
}

WorkloadStats TenantFleet::stats() const {
  WorkloadStats st;
  st.kind = "tenants";
  st.tenants = cfg_.tenants;
  for (const Tenant& t : tenants_) st.sessions_started += t.sessions_started;
  st.sessions_completed = sessions_completed_;
  st.packets_injected = generated_;
  st.packets_delivered = delivered_;
  st.tenant_delivered_bytes = tenant_bytes_;
  for (const std::uint64_t b : tenant_bytes_) st.bytes_delivered += b;
  return st;
}

}  // namespace erapid::workload
