// Optical receiver — one per (board, wavelength).
//
// The demultiplexed signal at a board's coupler feeds one receiver per
// wavelength (paper §2.1: "every optical receiver detects a wavelength").
// A receiver accepts whole packets from the fiber, queues them, and streams
// them flit-by-flit into the board router's wavelength input port through a
// FlitInjector (electrical pacing + router credits).
//
// End-to-end lane flow control: the transmitting lane must reserve_slot()
// before serializing a packet, so the RX queue can never overflow — even
// across a DBR ownership change with packets still in the fiber (the
// reservation count is a property of the receiver, not of the owner).
//
// Data-plane integrity: each arriving packet passes a CRC check. Fault
// injection can arm a bit-error process on this receiver (a seeded,
// per-lane-deterministic Bernoulli draw per packet); a corrupted packet is
// dropped here — its slot freed — and reported through the CRC-drop
// callback, which the network wires back to the transmitting terminal's ARQ
// path. Receiving at the RX (rather than corrupting at the TX) keeps the
// process attached to the lane even when DBR moves ownership mid-burst.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "router/flit.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace erapid::optical {

/// Wavelength receiver + RX queue + router feed.
class Receiver {
 public:
  /// `hub` (optional) tallies delivered optical packets system-wide.
  Receiver(des::Engine& engine, router::Router& router, std::uint32_t in_port,
           std::uint32_t vcs, std::uint32_t credits_per_vc, std::uint32_t cycles_per_flit,
           std::uint32_t queue_capacity, obs::Hub* hub = nullptr);

  /// Reserves one RX-queue slot for an upcoming transmission. Returns
  /// false when the queue (plus in-flight reservations) is full.
  bool reserve_slot();

  /// Optical arrival of a fully serialized packet. A slot must have been
  /// reserved by the transmitting lane.
  void deliver(const router::Packet& p, Cycle now);

  /// Returns a reservation whose packet will never arrive (the transmitting
  /// lane failed mid-flight). The freed slot is NOT announced through the
  /// slot-freed callback: the caller re-homes the aborted packet itself.
  void abort_reservation();

  /// Fires every time a slot is freed (packet fully streamed into the
  /// router) — the simulation routes this to the owning board's scheduler
  /// so it can launch a blocked transmission.
  void set_slot_freed_callback(std::function<void(Cycle)> fn) { on_slot_freed_ = std::move(fn); }

  // ---- fault injection: bit-error process ----
  /// Arms the CRC/BER process: until cycle `until` (exclusive), each
  /// arriving packet is corrupted with probability `pkt_corrupt_prob`,
  /// drawn from a dedicated stream seeded with `seed` (never the workload
  /// RNG). `until` = kNeverCycle runs to the end of the simulation.
  void set_bit_error(double pkt_corrupt_prob, Cycle until, std::uint64_t seed);

  /// Fires for every CRC-dropped packet — the network wires this back to
  /// the transmitting terminal's ARQ retransmission path.
  void set_crc_drop_callback(std::function<void(const router::Packet&, Cycle)> fn) {
    on_crc_drop_ = std::move(fn);
  }

  [[nodiscard]] std::uint32_t free_slots() const { return capacity_ - reserved_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t crc_dropped() const { return crc_dropped_; }

 private:
  void pump(Cycle now);

  std::uint32_t capacity_;
  std::uint32_t reserved_ = 0;
  std::deque<router::Packet> queue_;
  router::FlitInjector injector_;
  std::function<void(Cycle)> on_slot_freed_;
  std::function<void(const router::Packet&, Cycle)> on_crc_drop_;
  std::uint64_t received_ = 0;
  std::uint64_t crc_dropped_ = 0;
  double pkt_corrupt_prob_ = 0.0;
  Cycle ber_until_ = 0;
  util::Rng ber_rng_{1};
  obs::Hub* hub_;
  obs::MetricId m_rx_ = 0;
};

}  // namespace erapid::optical
