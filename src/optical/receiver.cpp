#include "optical/receiver.hpp"

#include "obs/probe.hpp"

namespace erapid::optical {

Receiver::Receiver(des::Engine& engine, router::Router& router, std::uint32_t in_port,
                   std::uint32_t vcs, std::uint32_t credits_per_vc,
                   std::uint32_t cycles_per_flit, std::uint32_t queue_capacity,
                   obs::Hub* hub)
    : capacity_(queue_capacity),
      injector_(engine, router, in_port, vcs, credits_per_vc, cycles_per_flit),
      hub_(hub) {
  ERAPID_REQUIRE(queue_capacity >= 1, "receiver queue needs >= 1 slot");
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_rx_ = hub_->metrics().counter("optical.rx_packets");
  }
#endif
  injector_.set_idle_callback([this](Cycle now) {
    // The packet previously streaming has fully entered the router: its
    // slot is free and the next queued packet can start.
    ERAPID_INVARIANT(reserved_ > 0, "receiver freed a slot it never reserved");
    --reserved_;
    pump(now);
    if (on_slot_freed_) on_slot_freed_(now);
  });
}

bool Receiver::reserve_slot() {
  if (reserved_ >= capacity_) return false;
  ++reserved_;
  ERAPID_INVARIANT(reserved_ <= capacity_, "receiver over-reserved: " << reserved_ << "/"
                                                                      << capacity_);
  return true;
}

void Receiver::abort_reservation() {
  ERAPID_REQUIRE(reserved_ > 0, "aborting a reservation that was never made");
  --reserved_;
}

void Receiver::set_bit_error(double pkt_corrupt_prob, Cycle until, std::uint64_t seed) {
  ERAPID_REQUIRE(pkt_corrupt_prob > 0.0 && pkt_corrupt_prob <= 1.0,
                 "packet corruption probability must be in (0, 1]");
  pkt_corrupt_prob_ = pkt_corrupt_prob;
  ber_until_ = until;
  ber_rng_ = util::Rng(seed);
}

void Receiver::deliver(const router::Packet& p, Cycle now) {
  ERAPID_REQUIRE(reserved_ > 0, "optical packet arrived without a reserved RX slot");
  if (pkt_corrupt_prob_ > 0.0 && now < ber_until_ &&
      ber_rng_.next_bernoulli(pkt_corrupt_prob_)) {
    // CRC failure: the payload is garbage. Drop it, free the slot, and let
    // the link-level ARQ path (via the CRC-drop callback) retransmit. The
    // slot-freed announcement still fires so a transmission blocked on this
    // receiver can proceed.
    ++crc_dropped_;
    --reserved_;
    if (on_crc_drop_) on_crc_drop_(p, now);
    if (on_slot_freed_) on_slot_freed_(now);
    return;
  }
  ERAPID_INVARIANT(queue_.size() < capacity_, "RX queue overflow despite reservation");
  ++received_;
  ERAPID_COUNTER(hub_, m_rx_, 1);
  queue_.push_back(p);
  pump(now);
}

void Receiver::pump(Cycle now) {
  if (queue_.empty() || injector_.busy()) return;
  const bool started = injector_.try_start(queue_.front(), now);
  ERAPID_EXPECT(started, "idle injector refused a packet");
  queue_.pop_front();
}

}  // namespace erapid::optical
