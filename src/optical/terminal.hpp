// Per-board optical terminal: the board-to-SRS interface of Figure 2(a).
//
// Owns, for each remote board d:
//   * the per-destination transmit queue (the "transmitter queue" whose
//     Buffer_util the LC hardware counters measure);
//   * a TxSink attached to the board router's remote output port that
//     reassembles flits into packets (packets, not flits, cross the
//     optical domain — §2.1) with credit-based backpressure into the IBI;
//   * W lanes (one per wavelength), enabled according to the global lane
//     ownership map; a scheduler that spreads queued packets across all
//     currently-owned lanes (the bandwidth-multiplying mechanism of §2.2).
//
// The terminal is entirely event-driven: the scheduler runs on packet
// arrival, lane-ready, and RX-slot-freed events only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "optical/lane.hpp"
#include "optical/receiver.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"
#include "stats/window.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"

namespace erapid::optical {

/// LC-visible per-lane measurement for one reconfiguration window.
struct LaneSnapshot {
  topology::LaneRef ref;
  bool enabled = false;
  power::PowerLevel level = power::PowerLevel::Off;
  double link_util = 0.0;
};

/// LC-visible per-flow (this board → dest) measurement.
struct FlowSnapshot {
  BoardId dest;
  double buffer_util = 0.0;
  std::uint32_t queued = 0;
  std::uint32_t lanes_enabled = 0;
};

/// Board-side optical transmit/receive complex.
class OpticalTerminal {
 public:
  /// `router` must already have its D ejection outputs added (ports
  /// 0..D-1); the terminal adds one remote output port per other board, in
  /// increasing board order. `receivers` is the global flat array
  /// [board * W + wavelength]. `hub` (optional) receives lane grant→release
  /// async spans and harvest-time utilization series.
  OpticalTerminal(des::Engine& engine, const topology::SystemConfig& cfg,
                  const power::LinkPowerModel& pw, power::EnergyMeter& meter,
                  BoardId self, router::Router& router,
                  const std::vector<Receiver*>& receivers, obs::Hub* hub = nullptr);

  OpticalTerminal(const OpticalTerminal&) = delete;
  OpticalTerminal& operator=(const OpticalTerminal&) = delete;

  // ---- reconfiguration interface (driven by the RC) ----
  void apply_grant(BoardId d, WavelengthId w, power::PowerLevel level, Cycle now);
  void apply_release(BoardId d, WavelengthId w, Cycle now,
                     std::function<void(Cycle)> on_dark = {});
  void request_lane_level(BoardId d, WavelengthId w, power::PowerLevel level, Cycle now);

  // ---- fault interface (driven by the FaultInjector) ----
  /// Permanently fails this board's laser on lane (d, w). An in-flight
  /// packet is re-homed to the front of the flow's transmit queue (it will
  /// relaunch on a surviving lane or wait for a re-grant). Returns the
  /// number of packets re-homed (0 or 1).
  std::uint32_t fail_lane(BoardId d, WavelengthId w, Cycle now);

  /// Repairs this board's laser on lane (d, w). The lane becomes grantable
  /// again; DBR re-admits it at the next bandwidth window.
  void repair_lane(BoardId d, WavelengthId w, Cycle now);

  /// Degrades this board's laser on lane (d, w): clamps its power level to
  /// `cap` until clear_lane_level_cap.
  void cap_lane_level(BoardId d, WavelengthId w, power::PowerLevel cap, Cycle now);
  void clear_lane_level_cap(BoardId d, WavelengthId w);

  // ---- link-level ARQ (driven by the remote receiver's CRC check) ----
  /// NAK for a packet this board transmitted toward `d` that failed the
  /// CRC at the receiver. Bounded retransmission with exponential backoff:
  /// after arq_nak_cycles + (arq_backoff_cycles << (k-1)) the packet is
  /// re-queued at the head of the flow. Past arq_retry_limit the packet is
  /// dead-lettered (accounted, surfaced via the dead-letter callback, and
  /// never delivered).
  void arq_nak(BoardId d, const router::Packet& p, Cycle now);

  /// Fires for every packet the ARQ path gives up on.
  void set_dead_letter_callback(std::function<void(const router::Packet&, Cycle)> fn) {
    on_dead_letter_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t crc_naks() const { return crc_naks_; }
  [[nodiscard]] std::uint64_t arq_retransmits() const { return arq_retransmits_; }
  [[nodiscard]] std::uint64_t arq_dead_letters() const { return arq_dead_letters_; }

  /// Harvests and resets the LC hardware counters for the window that
  /// started at `window_start` and ends `now`.
  void harvest(Cycle window_start, Cycle now, std::vector<LaneSnapshot>& lanes,
               std::vector<FlowSnapshot>& flows);

  // ---- scheduler entry points ----
  /// Tries to launch queued packets for destination d.
  void pump_flow(BoardId d, Cycle now);

  // ---- introspection ----
  [[nodiscard]] BoardId self() const { return self_; }
  [[nodiscard]] std::size_t flow_queue_size(BoardId d) const { return flows_[d.value()].q.size(); }
  [[nodiscard]] Lane& lane(BoardId d, WavelengthId w) { return *lanes_[lane_index(d, w)]; }
  [[nodiscard]] const Lane& lane(BoardId d, WavelengthId w) const {
    return *lanes_[lane_index(d, w)];
  }
  [[nodiscard]] std::uint32_t remote_out_port(BoardId d) const;
  [[nodiscard]] std::uint64_t packets_queued_total() const { return enqueued_; }

  /// Sum of active energy (mW·cycles) over all of this board's lanes.
  [[nodiscard]] units::MilliwattCycles active_energy_mw_cycles() const;

  /// DLS wake policy: level a dark lane is woken to when the flow has
  /// queued demand but no lit lane (default P_low; DPM then scales it).
  void set_wake_level(power::PowerLevel l) { wake_level_ = l; }

 private:
  /// Reassembles router flits back into packets for one destination. The
  /// per-VC buffer may hold several complete packets (short packets commit
  /// one at a time, blocking on a full transmit queue) plus at most one
  /// partial tail packet; each flit's `packet_flits` field delimits them.
  class TxSink : public router::FlitReceiver {
   public:
    TxSink(OpticalTerminal& t, BoardId dest, std::uint32_t vcs)
        : t_(t), dest_(dest), assembly_(vcs), blocked_(vcs, false), expect_(vcs, 0) {}
    void bind(std::uint32_t out_port) { out_port_ = out_port; }
    void receive_flit(const router::Flit& f, std::uint32_t vc, Cycle now) override;
    /// Retries commits that were blocked on a full transmit queue.
    void retry_blocked(Cycle now);

   private:
    void try_commit(std::uint32_t vc, Cycle now);

    OpticalTerminal& t_;
    BoardId dest_;
    std::uint32_t out_port_ = 0;
    std::vector<std::vector<router::Flit>> assembly_;
    std::vector<bool> blocked_;
    /// Next in-packet flit index owed on each VC (0 = expecting a head).
    std::vector<std::uint32_t> expect_;
  };

  struct Flow {
    std::deque<router::Packet> q;
    stats::OccupancyTracker occ;
    router::RoundRobinArbiter lane_rr;
    std::unique_ptr<TxSink> sink;
    std::uint64_t enqueued = 0;
    std::uint64_t launched = 0;
    explicit Flow(std::uint32_t cap, std::uint32_t wavelengths)
        : occ(cap), lane_rr(wavelengths) {}
  };

  [[nodiscard]] std::size_t lane_index(BoardId d, WavelengthId w) const;
  void enqueue_packet(BoardId d, const router::Packet& p, Cycle now);

  /// Trace id for the grant→release async span of lane (self, d, w):
  /// globally unique across terminals so overlapping lifecycles render
  /// as separate arrows in the viewer.
  [[nodiscard]] std::uint64_t lane_span_id(BoardId d, WavelengthId w) const;

  des::Engine& engine_;
  const topology::SystemConfig& cfg_;
  const power::LinkPowerModel& pw_;
  BoardId self_;
  router::Router& router_;
  std::vector<Flow> flows_;                   ///< indexed by dest board (self unused)
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< dest-major, W per dest, self row null
  power::PowerLevel wake_level_ = power::PowerLevel::Low;
  /// Scratch for pump_flow's per-iteration lane-availability scan, hoisted
  /// out of the hot loop. Refilled at the top of every iteration, so the
  /// reentrant pump path (launch → retry_blocked → try_commit →
  /// enqueue_packet → pump_flow) sees exactly the decisions the local
  /// vector produced; only the allocation is shared.
  std::vector<bool> lane_scan_;
  std::uint64_t enqueued_ = 0;
  std::function<void(const router::Packet&, Cycle)> on_dead_letter_;
  std::uint64_t crc_naks_ = 0;
  std::uint64_t arq_retransmits_ = 0;
  std::uint64_t arq_dead_letters_ = 0;
  obs::Hub* hub_;
  obs::MetricId m_lane_util_ = 0;
  obs::MetricId m_buffer_util_ = 0;
  obs::MetricId m_tx_packets_ = 0;
};

}  // namespace erapid::optical
