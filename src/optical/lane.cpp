#include "optical/lane.hpp"

#include <algorithm>

namespace erapid::optical {

using power::PowerLevel;

Lane::Lane(des::Engine& engine, const topology::SystemConfig& cfg,
           const power::LinkPowerModel& pw, power::EnergyMeter& meter,
           topology::LaneRef ref, Receiver* rx)
    : engine_(engine), cfg_(cfg), pw_(pw), meter_(meter), ref_(ref), rx_(rx) {
  ERAPID_EXPECT(rx_ != nullptr, "lane needs its wavelength receiver");
  meter_id_ = meter_.add_source(0.0);
}

void Lane::update_power(Cycle now) {
  meter_.set_power(meter_id_, now, enabled_ ? pw_.power_mw(level_) : 0.0);
}

void Lane::enable(Cycle now, PowerLevel level) {
  ERAPID_EXPECT(!enabled_, "enabling a lane this board already holds");
  ERAPID_EXPECT(level != PowerLevel::Off, "enable requires an active power level");
  enabled_ = true;
  pending_disable_ = false;
  apply_level(level, now);
}

void Lane::disable(Cycle now, std::function<void(Cycle)> on_dark) {
  ERAPID_EXPECT(enabled_, "disabling a lane this board does not hold");
  if (transmitting(now)) {
    pending_disable_ = true;  // finished in on_packet_done
    pending_level_.reset();
    on_dark_ = std::move(on_dark);
    return;
  }
  enabled_ = false;
  pending_disable_ = false;
  pending_level_.reset();
  level_ = PowerLevel::Off;
  update_power(now);
  if (on_dark) on_dark(now);
}

void Lane::request_level(PowerLevel target, Cycle now) {
  ERAPID_EXPECT(enabled_, "DVS on a lane this board does not hold");
  if (pending_disable_) return;  // release already decided; don't fight it
  if (target == level_ && !pending_level_) return;
  if (transmitting(now)) {
    pending_level_ = target;  // applied when the packet completes
    return;
  }
  apply_level(target, now);
}

void Lane::apply_level(PowerLevel target, Cycle now) {
  pending_level_.reset();
  if (target == level_) return;
  const CycleDelta pause = pw_.transition_cycles(level_, target);
  ++transitions_;
  level_ = target;
  update_power(now);
  if (target == PowerLevel::Off) return;  // darkening needs no relock
  if (pause > 0) {
    pause_until_ = std::max(pause_until_, now + pause);
    engine_.schedule_at(pause_until_, [this] {
      // Only announce readiness if no later transition extended the pause.
      const Cycle now2 = engine_.now();
      if (now2 >= pause_until_ && on_ready_) on_ready_(now2);
    });
  } else if (on_ready_) {
    on_ready_(now);
  }
}

bool Lane::try_transmit(const router::Packet& p, Cycle now) {
  if (!available(now)) return false;
  if (!rx_->reserve_slot()) return false;

  const CycleDelta ser = cfg_.serialization_cycles(pw_.bitrate_gbps(level_));
  busy_until_ = now + ser;
  busy_.add_busy(ser);
  active_energy_ += pw_.power_mw(level_) * static_cast<double>(ser);
  ++packets_sent_;

  const Cycle arrive = busy_until_ + cfg_.fiber_delay_cycles;
  const router::Packet copy = p;
  engine_.schedule_at(busy_until_, [this] { on_packet_done(engine_.now()); });
  engine_.schedule_at(arrive, [this, copy] { rx_->deliver(copy, engine_.now()); });
  return true;
}

void Lane::on_packet_done(Cycle now) {
  if (pending_disable_) {
    pending_disable_ = false;
    enabled_ = false;
    pending_level_.reset();
    level_ = PowerLevel::Off;
    update_power(now);
    if (on_dark_) {
      auto cb = std::move(on_dark_);
      on_dark_ = nullptr;
      cb(now);
    }
    return;
  }
  if (pending_level_) {
    apply_level(*pending_level_, now);
    return;  // apply_level schedules the ready callback after the pause
  }
  if (on_ready_) on_ready_(now);
}

}  // namespace erapid::optical
