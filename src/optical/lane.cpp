#include "optical/lane.hpp"

#include <algorithm>

namespace erapid::optical {

using power::PowerLevel;

namespace {
PowerLevel min_level(PowerLevel a, PowerLevel b) {
  return static_cast<std::uint8_t>(a) < static_cast<std::uint8_t>(b) ? a : b;
}
}  // namespace

Lane::Lane(des::Engine& engine, const topology::SystemConfig& cfg,
           const power::LinkPowerModel& pw, power::EnergyMeter& meter,
           topology::LaneRef ref, Receiver* rx)
    : engine_(engine), cfg_(cfg), pw_(pw), meter_(meter), ref_(ref), rx_(rx) {
  ERAPID_REQUIRE(rx_ != nullptr, "lane needs its wavelength receiver");
  meter_id_ = meter_.add_source();
}

void Lane::update_power(Cycle now) {
  meter_.set_power(meter_id_, now,
                   enabled_ ? pw_.power_mw(level_) : units::Milliwatts{0.0});
}

PowerLevel Lane::effective_cap() const { return min_level(level_cap_, brownout_cap_); }

void Lane::enable(Cycle now, PowerLevel level) {
  ERAPID_REQUIRE(!failed_, "enabling a failed lane");
  ERAPID_REQUIRE(!enabled_, "enabling a lane this board already holds");
  ERAPID_REQUIRE(level != PowerLevel::Off, "enable requires an active power level");
  enabled_ = true;
  pending_disable_ = false;
  apply_level(min_level(level, effective_cap()), now);
}

void Lane::disable(Cycle now, std::function<void(Cycle)> on_dark) {
  ERAPID_REQUIRE(enabled_, "disabling a lane this board does not hold");
  if (transmitting(now)) {
    pending_disable_ = true;  // finished in on_packet_done
    pending_level_.reset();
    on_dark_ = std::move(on_dark);
    return;
  }
  enabled_ = false;
  pending_disable_ = false;
  pending_level_.reset();
  level_ = PowerLevel::Off;
  update_power(now);
  if (on_dark) on_dark(now);
}

void Lane::request_level(PowerLevel target, Cycle now) {
  ERAPID_REQUIRE(enabled_, "DVS on a lane this board does not hold");
  if (pending_disable_) return;  // release already decided; don't fight it
  target = min_level(target, effective_cap());
  if (target == level_ && !pending_level_) return;
  if (transmitting(now)) {
    pending_level_ = target;  // applied when the packet completes
    return;
  }
  apply_level(target, now);
}

void Lane::apply_level(PowerLevel target, Cycle now) {
  pending_level_.reset();
  if (target == level_) return;
  const CycleDelta pause = pw_.transition_cycles(level_, target);
  ++transitions_;
  level_ = target;
  update_power(now);
  if (target == PowerLevel::Off) return;  // darkening needs no relock
  if (pause > 0) {
    pause_until_ = std::max(pause_until_, now + pause);
    engine_.schedule_at(pause_until_, [this] {
      // Only announce readiness if no later transition extended the pause.
      const Cycle now2 = engine_.now();
      if (now2 >= pause_until_ && on_ready_) on_ready_(now2);
    }, "lane.relock");
  } else if (on_ready_) {
    on_ready_(now);
  }
}

bool Lane::try_transmit(const router::Packet& p, Cycle now) {
  if (!available(now)) return false;
  if (!rx_->reserve_slot()) return false;

  const CycleDelta ser = cfg_.serialization_cycles(pw_.bitrate_gbps(level_));
  ERAPID_INVARIANT(ser >= 1, "serialization must take at least one cycle, got " << ser);
  busy_until_ = now + ser;
  busy_.add_busy(ser);
  active_energy_ += units::energy_over(pw_.power_mw(level_), static_cast<double>(ser));
  ++packets_sent_;

  const Cycle arrive = busy_until_ + cfg_.fiber_delay_cycles;
  const router::Packet copy = p;
  in_flight_ = copy;
  busy_event_ = engine_.schedule_at(
      busy_until_, [this] { on_packet_done(engine_.now()); }, "lane.tx_done");
  deliver_event_ = engine_.schedule_at(
      arrive, [this, copy] { rx_->deliver(copy, engine_.now()); }, "lane.deliver");
  return true;
}

std::optional<router::Packet> Lane::fail(Cycle now) {
  ERAPID_REQUIRE(!failed_, "failing a lane twice");
  failed_ = true;
  std::optional<router::Packet> aborted;
  if (transmitting(now) && in_flight_) {
    // Still serializing: the remaining bits never leave the VCSEL. Cancel
    // both the completion and the fiber delivery, hand the RX slot back,
    // and surface the packet for re-homing. (A packet already fully in the
    // fiber is photons in flight — it arrives regardless.)
    busy_event_.cancel();
    deliver_event_.cancel();
    rx_->abort_reservation();
    aborted = std::move(in_flight_);
    // Un-charge the serialization cycles that never happened.
    const CycleDelta unspent = busy_until_ - now;
    active_energy_ -= units::energy_over(pw_.power_mw(level_), static_cast<double>(unspent));
    --packets_sent_;
    busy_until_ = now;
  }
  in_flight_.reset();
  enabled_ = false;
  pending_disable_ = false;
  pending_level_.reset();
  on_dark_ = nullptr;
  level_ = PowerLevel::Off;
  update_power(now);
  return aborted;
}

void Lane::repair(Cycle now) {
  ERAPID_REQUIRE(failed_, "repairing a lane that is not failed");
  failed_ = false;
  // Dark, unowned, no residual in-flight state: fail() already cleared all
  // of that. The lane simply becomes grantable again.
  ERAPID_INVARIANT(!enabled_ && !in_flight_ && level_ == PowerLevel::Off,
                   "failed lane carried live state into repair");
  update_power(now);
}

void Lane::set_level_cap(PowerLevel cap, Cycle now) {
  ERAPID_REQUIRE(cap != PowerLevel::Off, "degradation cap must be an active level; use fail()");
  level_cap_ = cap;
  enforce_caps(now);
}

void Lane::clear_level_cap() { level_cap_ = PowerLevel::High; }

void Lane::set_brownout_cap(PowerLevel cap, Cycle now) {
  ERAPID_REQUIRE(cap != PowerLevel::Off,
                 "brownout cap must be an active level; sleep idle lanes instead");
  brownout_cap_ = cap;
  enforce_caps(now);
}

void Lane::clear_brownout_cap() { brownout_cap_ = PowerLevel::High; }

void Lane::enforce_caps(Cycle now) {
  if (failed_ || !enabled_) return;
  const PowerLevel cap = effective_cap();
  if (pending_level_) pending_level_ = min_level(*pending_level_, cap);
  if (static_cast<std::uint8_t>(level_) > static_cast<std::uint8_t>(cap)) {
    request_level(cap, now);
  }
}

void Lane::on_packet_done(Cycle now) {
  in_flight_.reset();  // the packet is fully in the fiber from here on
  if (pending_disable_) {
    pending_disable_ = false;
    enabled_ = false;
    pending_level_.reset();
    level_ = PowerLevel::Off;
    update_power(now);
    if (on_dark_) {
      auto cb = std::move(on_dark_);
      on_dark_ = nullptr;
      cb(now);
    }
    return;
  }
  if (pending_level_) {
    apply_level(*pending_level_, now);
    return;  // apply_level schedules the ready callback after the pause
  }
  if (on_ready_) on_ready_(now);
}

}  // namespace erapid::optical
