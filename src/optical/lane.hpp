// Optical lane — one (destination coupler, wavelength) channel.
//
// Physically this is one laser in a transmitter's VCSEL array at the source
// board, the shared fiber, and the matching wavelength receiver at the
// destination board (paper §2.2, Figure 2(b)). A lane is the unit of both
// reconfigurable bandwidth (DBR moves lane ownership between boards) and
// power management (DVS scales its bit rate/voltage; DLS darkens it).
//
// State machine:
//   enabled  — this board currently owns the lane (laser may be lit);
//   level    — Off / P_low / P_mid / P_high. Off while enabled = DLS.
//   busy     — serializing a packet until busy_until;
//   paused   — bit-rate/voltage transition until pause_until (the paper's
//              "transmitter ... stops transmission for the duration",
//              65 cycles for voltage moves, 12 for CDR-only relock).
//   failed   — fault injection killed the laser: permanently dark, refuses
//              enable/transmit; a packet mid-serialization is aborted and
//              handed back through fail() for re-homing.
//
// Level changes and disables requested mid-packet are deferred to packet
// completion (packets are atomic in the optical domain). A degraded laser
// (fault injection) carries a level *cap*: requests above the cap are
// clamped, modelling a VCSEL that can no longer sustain its rated drive.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "des/engine.hpp"
#include "optical/receiver.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "router/flit.hpp"
#include "stats/window.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"

namespace erapid::optical {

/// One reconfigurable wavelength channel from this board to `ref.dest`.
class Lane {
 public:
  Lane(des::Engine& engine, const topology::SystemConfig& cfg,
       const power::LinkPowerModel& pw, power::EnergyMeter& meter,
       topology::LaneRef ref, Receiver* rx);

  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  // ---- state queries ----
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] power::PowerLevel level() const { return level_; }
  [[nodiscard]] topology::LaneRef ref() const { return ref_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] power::PowerLevel level_cap() const { return level_cap_; }
  /// This lane's slot in the EnergyMeter — the id the energy attribution
  /// ledger tags with the owning board.
  [[nodiscard]] std::uint32_t meter_source() const { return meter_id_; }

  /// Ready to start a packet right now.
  [[nodiscard]] bool available(Cycle now) const {
    return enabled_ && level_ != power::PowerLevel::Off && !pending_disable_ &&
           now >= busy_until_ && now >= pause_until_;
  }

  /// Dark but owned: a DLS wake would make it usable.
  [[nodiscard]] bool can_wake() const {
    return enabled_ && level_ == power::PowerLevel::Off && !pending_disable_;
  }

  // ---- fault injection ----
  /// Permanent laser failure. The lane goes dark immediately (no graceful
  /// drain: the light just dies). If a packet was mid-serialization its
  /// fiber delivery is cancelled, the remote RX reservation is returned,
  /// and the packet is handed back for re-homing on a surviving lane. A
  /// pending release's on_dark chain is dropped (the re-grant it carried is
  /// re-decided by the next reconfiguration window).
  [[nodiscard]] std::optional<router::Packet> fail(Cycle now);

  /// Repairs a failed lane: the laser is replaced/fixed and may be enabled
  /// again. The lane comes back dark and unowned — re-admission into the
  /// allocation happens at the next DBR bandwidth window, not here.
  void repair(Cycle now);

  /// Transient laser degradation: clamps every level request (current and
  /// future) to at most `cap` until clear_level_cap. Capping below the
  /// current level forces an immediate (packet-atomic) down-transition.
  void set_level_cap(power::PowerLevel cap, Cycle now);

  /// Ends the degradation. The lane does not spontaneously re-raise its
  /// level; the next DPM/DBR decision may.
  void clear_level_cap();

  // ---- brownout (degradation controller) ----
  /// Brownout ladder cap: like set_level_cap but owned by the degradation
  /// controller, so the fault plane's clear_level_cap (laser repaired)
  /// cannot lift an active brownout and vice versa. The effective ceiling
  /// is min(level_cap, brownout_cap).
  void set_brownout_cap(power::PowerLevel cap, Cycle now);

  /// Hysteresis recovery lifted the ladder. The lane does not spontaneously
  /// re-raise its level; the next DPM/DBR decision may.
  void clear_brownout_cap();

  [[nodiscard]] power::PowerLevel brownout_cap() const { return brownout_cap_; }

  /// True while a release (disable) is deferred behind an in-flight packet.
  /// The controller must not shed such a lane: its on_dark chain carries a
  /// reconfiguration re-grant that a second disable would clobber.
  [[nodiscard]] bool release_pending() const { return pending_disable_; }

  [[nodiscard]] bool transmitting(Cycle now) const { return now < busy_until_; }
  [[nodiscard]] bool paused(Cycle now) const { return now < pause_until_; }

  // ---- reconfiguration ----
  /// Lights the lane for this board at `level` (pays the wake transition).
  void enable(Cycle now, power::PowerLevel level);

  /// Releases the lane: goes dark once the in-flight packet (if any)
  /// finishes, then invokes `on_dark` — the reconfiguration manager chains
  /// the re-grant there so two boards never light the same wavelength into
  /// one coupler. Queued flow packets are unaffected (they use other lanes
  /// or wait for a future grant).
  void disable(Cycle now, std::function<void(Cycle)> on_dark = {});

  /// DVS/DLS: move to `target` (deferred past the in-flight packet; pays
  /// the transition pause).
  void request_level(power::PowerLevel target, Cycle now);

  // ---- data path ----
  /// Starts transmitting `p` if available and the remote receiver has a
  /// free RX slot. Returns false without side effects otherwise.
  bool try_transmit(const router::Packet& p, Cycle now);

  /// Called whenever the lane may have become usable (packet done, pause
  /// over, wake complete) — the terminal hooks its scheduler here.
  void set_ready_callback(std::function<void(Cycle)> fn) { on_ready_ = std::move(fn); }

  // ---- LC hardware counters (paper §3) ----
  [[nodiscard]] stats::BusyCounter& busy_counter() { return busy_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  /// Active energy (mW·cycles): link power integrated only over the cycles
  /// the lane was actually serializing packets. This is the
  /// utilization-weighted power metric the paper's evaluation panels track
  /// (a lit-but-idle laser contributes to total power, not active power).
  [[nodiscard]] units::MilliwattCycles active_energy_mw_cycles() const { return active_energy_; }

 private:
  void apply_level(power::PowerLevel target, Cycle now);
  void on_packet_done(Cycle now);
  void update_power(Cycle now);
  [[nodiscard]] power::PowerLevel effective_cap() const;
  void enforce_caps(Cycle now);

  des::Engine& engine_;
  const topology::SystemConfig& cfg_;
  const power::LinkPowerModel& pw_;
  power::EnergyMeter& meter_;
  std::uint32_t meter_id_;
  topology::LaneRef ref_;
  Receiver* rx_;

  bool enabled_ = false;
  bool failed_ = false;
  power::PowerLevel level_ = power::PowerLevel::Off;
  power::PowerLevel level_cap_ = power::PowerLevel::High;
  power::PowerLevel brownout_cap_ = power::PowerLevel::High;
  Cycle busy_until_ = 0;
  Cycle pause_until_ = 0;
  bool pending_disable_ = false;
  std::optional<power::PowerLevel> pending_level_;
  std::optional<router::Packet> in_flight_;
  des::EventHandle busy_event_;
  des::EventHandle deliver_event_;

  stats::BusyCounter busy_;
  std::function<void(Cycle)> on_ready_;
  std::function<void(Cycle)> on_dark_;
  units::MilliwattCycles active_energy_{0.0};
  std::uint64_t packets_sent_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace erapid::optical
