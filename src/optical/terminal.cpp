#include "optical/terminal.hpp"

#include "obs/probe.hpp"

namespace erapid::optical {

using power::PowerLevel;

OpticalTerminal::OpticalTerminal(des::Engine& engine, const topology::SystemConfig& cfg,
                                 const power::LinkPowerModel& pw, power::EnergyMeter& meter,
                                 BoardId self, router::Router& router,
                                 const std::vector<Receiver*>& receivers, obs::Hub* hub)
    : engine_(engine), cfg_(cfg), pw_(pw), self_(self), router_(router), hub_(hub) {
  const std::uint32_t B = cfg.num_boards_total();
  const std::uint32_t W = cfg.num_wavelengths();
  ERAPID_EXPECT(receivers.size() == static_cast<std::size_t>(B) * W,
                "receiver array must cover every (board, wavelength)");

  flows_.reserve(B);
  for (std::uint32_t d = 0; d < B; ++d) flows_.emplace_back(cfg.tx_queue_packets, W);
  lane_scan_.resize(W, false);

  lanes_.resize(static_cast<std::size_t>(B) * W);
  for (std::uint32_t d = 0; d < B; ++d) {
    if (d == self_.value()) continue;
    const BoardId dest{d};

    // One remote output port per destination board, sinking into TxSink.
    auto sink = std::make_unique<TxSink>(*this, dest, cfg.num_vcs);
    router::OutputPortConfig opc;
    opc.sink = sink.get();
    opc.vcs = cfg.num_vcs;
    opc.credits_per_vc = cfg.packet_flits;  // one packet in flight per VC
    opc.cycles_per_flit = cfg.tx_feed_cycles_per_flit;
    opc.wire_delay = 0;
    const std::uint32_t port = router_.add_output(opc);
    ERAPID_EXPECT(port == remote_out_port(dest),
                  "remote output ports must be added in increasing board order");
    sink->bind(port);
    flows_[d].sink = std::move(sink);

    // One lane per wavelength toward this destination.
    for (std::uint32_t w = 0; w < W; ++w) {
      Receiver* rx = receivers[static_cast<std::size_t>(d) * W + w];
      auto lane = std::make_unique<Lane>(engine_, cfg_, pw_, meter,
                                         topology::LaneRef{dest, WavelengthId{w}}, rx);
      lane->set_ready_callback([this, dest](Cycle now) { pump_flow(dest, now); });
      lanes_[lane_index(dest, WavelengthId{w})] = std::move(lane);
    }
  }
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) {
    m_lane_util_ = hub_->metrics().series("optical.lane_util");
    m_buffer_util_ = hub_->metrics().series("optical.buffer_util");
    m_tx_packets_ = hub_->metrics().counter("optical.tx_packets");
  }
#endif
}

std::uint64_t OpticalTerminal::lane_span_id(BoardId d, WavelengthId w) const {
  const std::uint64_t B = cfg_.num_boards_total();
  const std::uint64_t W = cfg_.num_wavelengths();
  return (self_.value() * B + d.value()) * W + w.value();
}

std::uint32_t OpticalTerminal::remote_out_port(BoardId d) const {
  ERAPID_EXPECT(d != self_, "no remote port to self");
  const std::uint32_t rel = d.value() < self_.value() ? d.value() : d.value() - 1;
  return cfg_.nodes_per_board + rel;
}

std::size_t OpticalTerminal::lane_index(BoardId d, WavelengthId w) const {
  ERAPID_REQUIRE(d.value() < cfg_.num_boards_total() && w.value() < cfg_.num_wavelengths(),
                 "lane reference out of range: d=" << d.value() << " w=" << w.value());
  ERAPID_REQUIRE(d != self_, "a board has no lanes to itself: d=" << d.value());
  return static_cast<std::size_t>(d.value()) * cfg_.num_wavelengths() + w.value();
}

// Thin wrapper: the real contracts live in lane_index() and Lane::enable.
// erapid-analyze: allow(contract-coverage)
void OpticalTerminal::apply_grant(BoardId d, WavelengthId w, PowerLevel level, Cycle now) {
  lanes_[lane_index(d, w)]->enable(now, level);
#if !defined(ERAPID_NO_OBS)
  // Grant→release lifecycle as an async span: ownerships of one coupler
  // wavelength overlap in time across boards, so the id keys each holder.
  if (hub_ != nullptr) {
    obs::Args args;
    args.add("owner", std::uint64_t{self_.value()})
        .add("dest", std::uint64_t{d.value()})
        .add("wavelength", std::uint64_t{w.value()});
    ERAPID_TRACE_ASYNC_BEGIN(hub_, hub_->track_lanes(), "lane.owned", lane_span_id(d, w),
                             now, args.str());
  }
#endif
}

// Thin wrapper: the real contracts live in lane_index() and Lane::disable.
// erapid-analyze: allow(contract-coverage)
void OpticalTerminal::apply_release(BoardId d, WavelengthId w, Cycle now,
                                    std::function<void(Cycle)> on_dark) {
  ERAPID_TRACE_ASYNC_END(hub_, hub_->track_lanes(), "lane.owned", lane_span_id(d, w), now);
  lanes_[lane_index(d, w)]->disable(now, std::move(on_dark));
}

void OpticalTerminal::request_lane_level(BoardId d, WavelengthId w, PowerLevel level,
                                         Cycle now) {
  lanes_[lane_index(d, w)]->request_level(level, now);
}

std::uint32_t OpticalTerminal::fail_lane(BoardId d, WavelengthId w, Cycle now) {
  Lane& ln = *lanes_[lane_index(d, w)];
  const auto aborted = ln.fail(now);
  if (!aborted) return 0;
  // Re-home the aborted packet at the head of its flow queue: it was
  // already committed to the optical domain, so it goes out first on the
  // next surviving lane. The deque may transiently exceed tx_queue_packets
  // by this one packet (Buffer_util can momentarily read above 1).
  auto& flow = flows_[d.value()];
  flow.q.push_front(*aborted);
  ERAPID_INVARIANT(flow.q.size() <= cfg_.tx_queue_packets + 1,
                   "re-homing overran the flow queue: " << flow.q.size() << " packets");
  flow.occ.set_occupancy(now, static_cast<std::uint32_t>(flow.q.size()));
  pump_flow(d, now);
  return 1;
}

void OpticalTerminal::repair_lane(BoardId d, WavelengthId w, Cycle now) {
  lanes_[lane_index(d, w)]->repair(now);
}

void OpticalTerminal::arq_nak(BoardId d, const router::Packet& p, Cycle now) {
  ERAPID_REQUIRE(d != self_, "ARQ NAK for a flow to self: d=" << d.value());
  ++crc_naks_;
  if (p.arq_retries >= cfg_.arq_retry_limit) {
    ++arq_dead_letters_;
    ERAPID_TRACE_INSTANT(hub_, hub_->track_fault(), "fault.arq_dead_letter", now, "");
    if (on_dead_letter_) on_dead_letter_(p, now);
    return;
  }
  router::Packet retry = p;
  ++retry.arq_retries;
  ++arq_retransmits_;
  // Exponential backoff: 1st retry waits one backoff unit, then doubling;
  // the shift is clamped so a pathological retry limit cannot overflow.
  const std::uint32_t shift = retry.arq_retries >= 17 ? 16 : retry.arq_retries - 1;
  const CycleDelta delay = static_cast<CycleDelta>(cfg_.arq_nak_cycles) +
                           (static_cast<CycleDelta>(cfg_.arq_backoff_cycles) << shift);
  engine_.schedule_at(now + delay, [this, d, retry] {
    // Head of the flow queue: like a re-homed packet, the retransmission
    // was already committed to the optical domain and goes out first. The
    // deque may transiently exceed tx_queue_packets by this one packet.
    const Cycle t = engine_.now();
    auto& flow = flows_[d.value()];
    flow.q.push_front(retry);
    flow.occ.set_occupancy(t, static_cast<std::uint32_t>(flow.q.size()));
    pump_flow(d, t);
  }, "optical.arq_retx");
}

void OpticalTerminal::cap_lane_level(BoardId d, WavelengthId w, power::PowerLevel cap,
                                     Cycle now) {
  lanes_[lane_index(d, w)]->set_level_cap(cap, now);
}

void OpticalTerminal::clear_lane_level_cap(BoardId d, WavelengthId w) {
  lanes_[lane_index(d, w)]->clear_level_cap();
}

void OpticalTerminal::enqueue_packet(BoardId d, const router::Packet& p, Cycle now) {
  auto& flow = flows_[d.value()];
  ERAPID_EXPECT(flow.q.size() < cfg_.tx_queue_packets, "transmit queue overflow");
  flow.q.push_back(p);
  ++flow.enqueued;
  ++enqueued_;
  flow.occ.set_occupancy(now, static_cast<std::uint32_t>(flow.q.size()));
  pump_flow(d, now);
}

void OpticalTerminal::pump_flow(BoardId d, Cycle now) {
  ERAPID_REQUIRE(d.value() < flows_.size() && d != self_,
                 "pump_flow on an invalid destination: d=" << d.value());
  auto& flow = flows_[d.value()];
  const std::uint32_t W = cfg_.num_wavelengths();
  const std::size_t base = lane_index(d, WavelengthId{0});
  auto lane_at = [&](std::uint32_t w) -> Lane* { return lanes_[base + w].get(); };

  while (!flow.q.empty()) {
    // Batched availability scan into the terminal-level scratch (see
    // lane_scan_ in the header for why sharing it is sound).
    std::vector<bool>& usable = lane_scan_;
    bool any = false;
    for (std::uint32_t w = 0; w < W; ++w) {
      usable[w] = lane_at(w) ? lane_at(w)->available(now) : false;
      any = any || usable[w];
    }
    if (!any) {
      // DLS wake-on-demand: queued packets but every owned lane is dark.
      // (If some lane is merely busy/paused, its ready callback re-pumps.)
      for (std::uint32_t w = 0; w < W; ++w) {
        if (lane_at(w) && lane_at(w)->can_wake()) {
          lane_at(w)->request_level(wake_level_, now);
          break;
        }
      }
      return;
    }
    // Round-robin across owned lanes; a lane may still refuse if its
    // wavelength receiver has no free RX slot — try the others.
    bool launched = false;
    while (any) {
      const std::uint32_t w = flow.lane_rr.arbitrate(usable);
      if (w == router::RoundRobinArbiter::kNoGrant) break;
      if (lane_at(w)->try_transmit(flow.q.front(), now)) {
        launched = true;
        break;
      }
      usable[w] = false;
      any = false;
      for (std::uint32_t x = 0; x < W; ++x) any = any || usable[x];
    }
    if (!launched) return;  // all RX queues full; retried on slot-freed

    flow.q.pop_front();
    ++flow.launched;
    ERAPID_COUNTER(hub_, m_tx_packets_, 1);
    flow.occ.set_occupancy(now, static_cast<std::uint32_t>(flow.q.size()));
    if (flow.sink) flow.sink->retry_blocked(now);
  }
}

void OpticalTerminal::harvest(Cycle window_start, Cycle now, std::vector<LaneSnapshot>& lanes,
                              std::vector<FlowSnapshot>& flows) {
  ERAPID_REQUIRE(now >= window_start,
                 "harvest window ends before it starts: [" << window_start << ", " << now << ")");
  lanes.clear();
  flows.clear();
  const std::uint32_t B = cfg_.num_boards_total();
  const std::uint32_t W = cfg_.num_wavelengths();
  const CycleDelta window = now - window_start;
  for (std::uint32_t d = 0; d < B; ++d) {
    if (d == self_.value()) continue;
    const BoardId dest{d};
    std::uint32_t lit = 0;
    for (std::uint32_t w = 0; w < W; ++w) {
      Lane& ln = *lanes_[lane_index(dest, WavelengthId{w})];
      LaneSnapshot snap;
      snap.ref = ln.ref();
      snap.enabled = ln.enabled();
      snap.level = ln.level();
      snap.link_util = ln.busy_counter().utilization(window);
      ln.busy_counter().reset();
      if (snap.enabled) ERAPID_OBSERVE(hub_, m_lane_util_, snap.link_util);
      lanes.push_back(snap);
      if (ln.enabled()) ++lit;
    }
    FlowSnapshot fs;
    fs.dest = dest;
    fs.buffer_util = flows_[d].occ.utilization(window_start, now);
    ERAPID_OBSERVE(hub_, m_buffer_util_, fs.buffer_util);
    fs.queued = static_cast<std::uint32_t>(flows_[d].q.size());
    fs.lanes_enabled = lit;
    flows_[d].occ.harvest(now);
    flows.push_back(fs);
  }
}

units::MilliwattCycles OpticalTerminal::active_energy_mw_cycles() const {
  units::MilliwattCycles total{0.0};
  for (const auto& lane : lanes_) {
    if (lane) total += lane->active_energy_mw_cycles();
  }
  return total;
}

// ---- TxSink ----------------------------------------------------------

void OpticalTerminal::TxSink::receive_flit(const router::Flit& f, std::uint32_t vc,
                                           Cycle now) {
  ERAPID_EXPECT(f.index == expect_[vc], "flit order broken in TX reassembly");
  expect_[vc] = f.tail ? 0 : f.index + 1;
  assembly_[vc].push_back(f);
  if (f.tail) try_commit(vc, now);
}

void OpticalTerminal::TxSink::try_commit(std::uint32_t vc, Cycle now) {
  auto& buf = assembly_[vc];
  // Commit every complete packet parked at the front of the buffer; short
  // packets (under the credit window) can queue up behind a blocked one.
  while (!buf.empty()) {
    const std::uint32_t len = buf.front().packet_flits;
    if (buf.size() < len || !buf[len - 1].tail) return;  // partial tail packet
    auto& flow = t_.flows_[dest_.value()];
    if (flow.q.size() >= t_.cfg_.tx_queue_packets) {
      blocked_[vc] = true;  // retried when the queue drains
      return;
    }
    blocked_[vc] = false;
    const router::Packet p = router::packet_from_flit(buf[len - 1]);
    buf.erase(buf.begin(), buf.begin() + len);
    // Return the VC's credits now that the packet left the reassembly stage.
    for (std::uint32_t i = 0; i < len; ++i) t_.router_.return_credit(out_port_, vc);
    t_.enqueue_packet(dest_, p, now);
  }
}

void OpticalTerminal::TxSink::retry_blocked(Cycle now) {
  ERAPID_INVARIANT(blocked_.size() == assembly_.size(),
                   "per-VC blocked/assembly bookkeeping diverged");
  for (std::uint32_t vc = 0; vc < blocked_.size(); ++vc) {
    if (blocked_[vc]) try_commit(vc, now);
  }
}

}  // namespace erapid::optical
