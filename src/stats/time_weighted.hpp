// Time-weighted integrators.
//
// Power and buffer occupancy are *levels* that persist between change
// points, so their averages must weight each value by how long it was held:
//   avg = ( Σ value_i × Δt_i ) / total_time.
// TimeWeighted records level changes; callers push the new level at the
// cycle it takes effect.
#pragma once

#include <cstdint>

#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::stats {

/// Integrates a piecewise-constant signal over simulated time.
class TimeWeighted {
 public:
  explicit TimeWeighted(Cycle start = 0, double initial = 0.0)
      : last_change_(start), level_(initial) {}

  /// Records that the signal takes value `level` from cycle `now` onwards.
  void set(Cycle now, double level) {
    accumulate_to(now);
    level_ = level;
  }

  /// Adds `delta` to the current level at cycle `now`.
  void add(Cycle now, double delta) { set(now, level_ + delta); }

  /// Current instantaneous level.
  [[nodiscard]] double level() const { return level_; }

  /// Integral of the signal from construction/last reset up to `now`.
  [[nodiscard]] double integral(Cycle now) const {
    ERAPID_EXPECT(now >= last_change_, "integral() queried before last change point");
    return integral_ + level_ * static_cast<double>(now - last_change_);
  }

  /// Time average over [window_start, now].
  [[nodiscard]] double average(Cycle window_start, Cycle now) const {
    if (now <= window_start) return level_;
    return (integral(now) - checkpoint_) / static_cast<double>(now - window_start);
  }

  /// Marks `now` as the start of a new averaging window without losing the
  /// running integral (used at the warmup/measurement boundary).
  void checkpoint(Cycle now) {
    accumulate_to(now);
    checkpoint_ = integral_;
  }

  /// Full reset: forget history, keep the current level.
  void reset(Cycle now) {
    last_change_ = now;
    integral_ = 0.0;
    checkpoint_ = 0.0;
  }

 private:
  void accumulate_to(Cycle now) {
    ERAPID_EXPECT(now >= last_change_, "time-weighted updates must be monotonic");
    integral_ += level_ * static_cast<double>(now - last_change_);
    last_change_ = now;
  }

  Cycle last_change_;
  double level_;
  double integral_ = 0.0;
  double checkpoint_ = 0.0;
};

}  // namespace erapid::stats
