// Windowed utilization counters — the "hardware counters located at each LC"
// (paper §3): Link_util and Buffer_util are measured per reconfiguration
// window R_w and reset when the window is harvested.
#pragma once

#include <cmath>
#include <cstdint>

#include "stats/time_weighted.hpp"
#include "util/types.hpp"

namespace erapid::stats {

/// Counts busy cycles within the current window. Link_util = busy / window.
class BusyCounter {
 public:
  /// Records `cycles` of busy time (a lane serializing a packet calls this
  /// once per transmitted packet with its serialization length).
  void add_busy(CycleDelta cycles) { busy_ += cycles; }

  /// Utilization over a window of `window_len` cycles, clamped to [0,1]
  /// (a packet straddling the window boundary can overshoot slightly).
  [[nodiscard]] double utilization(CycleDelta window_len) const {
    if (window_len == 0) return 0.0;
    const double u = static_cast<double>(busy_) / static_cast<double>(window_len);
    return u > 1.0 ? 1.0 : u;
  }

  [[nodiscard]] CycleDelta busy_cycles() const { return busy_; }

  void reset() { busy_ = 0; }

 private:
  CycleDelta busy_ = 0;
};

/// Tracks queue occupancy as a fraction of capacity, time-averaged per
/// window. Buffer_util = avg(occupancy) / capacity.
class OccupancyTracker {
 public:
  explicit OccupancyTracker(std::uint32_t capacity) : capacity_(capacity) {}

  void set_occupancy(Cycle now, std::uint32_t occupancy) {
    signal_.set(now, static_cast<double>(occupancy));
  }

  /// Average occupancy fraction since the last harvest.
  [[nodiscard]] double utilization(Cycle window_start, Cycle now) const {
    if (capacity_ == 0) return 0.0;
    return signal_.average(window_start, now) / static_cast<double>(capacity_);
  }

  /// Starts a new window at `now`.
  void harvest(Cycle now) { signal_.checkpoint(now); }

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

 private:
  std::uint32_t capacity_;
  TimeWeighted signal_;
};

/// Batch-means confidence interval for steady-state estimates: samples are
/// grouped into `batch` consecutive means whose variance estimates the
/// sampling error of the grand mean despite autocorrelation.
class BatchMeans {
 public:
  explicit BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size ? batch_size : 1) {}

  void add(double x) {
    batch_sum_ += x;
    if (++in_batch_ == batch_size_) {
      const double m = batch_sum_ / static_cast<double>(batch_size_);
      ++k_;
      const double d = m - mean_;
      mean_ += d / static_cast<double>(k_);
      m2_ += d * (m - mean_);
      batch_sum_ = 0;
      in_batch_ = 0;
    }
  }

  [[nodiscard]] std::uint64_t batches() const { return k_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Half-width of the ~95% confidence interval (normal approximation;
  /// adequate for the dozens of batches a measurement interval yields).
  [[nodiscard]] double ci_halfwidth() const {
    if (k_ < 2) return 0.0;
    const double var = m2_ / static_cast<double>(k_ - 1);
    return 1.96 * std::sqrt(var / static_cast<double>(k_));
  }

 private:
  std::uint64_t batch_size_;
  std::uint64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::uint64_t k_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace erapid::stats
