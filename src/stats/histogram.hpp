// Fixed-width histogram with percentile queries.
//
// Latency distributions in interconnect studies are heavy-tailed near
// saturation; mean alone hides the knee, so benches also report p50/p95/p99
// from this histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace erapid::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }

  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  /// Value below which fraction `q` in [0,1] of samples fall (linear
  /// interpolation within the containing bin; overflow maps to hi).
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace erapid::stats
