#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace erapid::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  ERAPID_EXPECT(hi > lo && bins > 0, "histogram needs a non-empty range and >=1 bin");
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  i = std::min(i, counts_.size() - 1);  // guard FP edge at x == hi_ - eps
  ++counts_[i];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = underflow_ = overflow_ = 0;
}

}  // namespace erapid::stats
