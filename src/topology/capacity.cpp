#include "topology/capacity.hpp"

#include <algorithm>
#include <limits>

namespace erapid::topology {

double CapacityModel::uniform_capacity(units::GbitsPerSec br) const {
  const auto B = static_cast<double>(cfg_.num_boards_total());
  const auto D = static_cast<double>(cfg_.nodes_per_board);
  const double N = B * D;

  // Under uniform traffic a node sends to each of the N-1 others equally,
  // so flow s→d (boards, s != d) carries D * D / (N - 1) packets/cycle per
  // unit injection. Each flow has one static lane.
  const double lane_load_per_unit = D * D / (N - 1.0);
  const double lane_limit = lane_service_rate(br) / lane_load_per_unit;

  return std::min(lane_limit, injection_limit());
}

std::vector<double> CapacityModel::board_demand(
    const std::function<NodeId(NodeId)>& dest) const {
  const std::uint32_t B = cfg_.num_boards_total();
  std::vector<double> demand(static_cast<std::size_t>(B) * B, 0.0);
  for (std::uint32_t n = 0; n < cfg_.num_nodes(); ++n) {
    const NodeId src{n};
    const NodeId dst = dest(src);
    const BoardId sb = cfg_.board_of(src);
    const BoardId db = cfg_.board_of(dst);
    if (sb == db) continue;  // local traffic never touches the optical SRS
    demand[static_cast<std::size_t>(sb.value()) * B + db.value()] += 1.0;
  }
  return demand;
}

std::vector<double> CapacityModel::uniform_board_demand() const {
  const std::uint32_t B = cfg_.num_boards_total();
  const auto D = static_cast<double>(cfg_.nodes_per_board);
  const double N = static_cast<double>(cfg_.num_nodes());
  std::vector<double> demand(static_cast<std::size_t>(B) * B, 0.0);
  for (std::uint32_t s = 0; s < B; ++s) {
    for (std::uint32_t d = 0; d < B; ++d) {
      if (s == d) continue;
      demand[static_cast<std::size_t>(s) * B + d] = D * D / (N - 1.0);
    }
  }
  return demand;
}

double CapacityModel::saturation_injection(
    const std::vector<double>& demand,
    const std::function<std::uint32_t(BoardId, BoardId)>& lanes_per_flow,
    units::GbitsPerSec br) const {
  const std::uint32_t B = cfg_.num_boards_total();
  const double mu = lane_service_rate(br);
  double sat = injection_limit();
  for (std::uint32_t s = 0; s < B; ++s) {
    for (std::uint32_t d = 0; d < B; ++d) {
      const double load = demand[static_cast<std::size_t>(s) * B + d];
      if (load <= 0.0) continue;
      const std::uint32_t lanes = lanes_per_flow(BoardId{s}, BoardId{d});
      if (lanes == 0) return 0.0;  // a demanded flow with no lane never drains
      sat = std::min(sat, mu * static_cast<double>(lanes) / load);
    }
  }
  return sat;
}

double CapacityModel::static_saturation(const std::vector<double>& demand,
                                        units::GbitsPerSec br) const {
  return saturation_injection(
      demand, [](BoardId, BoardId) { return 1u; }, br);
}

}  // namespace erapid::topology
