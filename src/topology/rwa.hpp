// Static routing and wavelength assignment (RWA) — paper §2.1.
//
// For source board s and destination board d the statically assigned
// wavelength is λ_{B-(d-s)} when d > s and λ_{(d-s)} when s > d, i.e.
//
//     w_static(s, d) = (s - d) mod B
//
// which also yields the inverse map: the static owner of wavelength w at
// destination d's coupler is board (d + w) mod B. Wavelength 0 would be the
// board talking to itself; the static RWA never uses it, so every coupler
// has one spare λ_0 "lane" that DBR may grant (it starts switched off).
//
// A *lane* is the unit of reconfigurable bandwidth: the (destination
// coupler, wavelength) pair. Exactly one board may drive a lane at a time
// (two transmitters lighting the same λ into one coupler would collide);
// LaneMap tracks that ownership and is the mutable state DBR rewrites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/config.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::topology {

/// Identifies a lane: wavelength `w` arriving at board `dest`'s coupler.
struct LaneRef {
  BoardId dest;
  WavelengthId wavelength;

  friend bool operator==(const LaneRef&, const LaneRef&) = default;
};

/// Pure static-RWA arithmetic (paper §2.1).
class Rwa {
 public:
  explicit Rwa(std::uint32_t boards) : boards_(boards) {
    ERAPID_REQUIRE(boards >= 2, "RWA needs >= 2 boards, got " << boards);
  }

  /// λ index board `s` uses to reach board `d` under the static assignment.
  [[nodiscard]] WavelengthId wavelength_for(BoardId s, BoardId d) const {
    ERAPID_REQUIRE(s != d, "no wavelength is assigned for self-communication");
    const std::uint32_t w = (s.value() + boards_ - d.value()) % boards_;
    return WavelengthId{w};
  }

  /// Board that statically owns wavelength `w` at destination `d`'s coupler.
  /// For w == 0 this returns `d` itself (the unused self slot).
  [[nodiscard]] BoardId static_owner(BoardId d, WavelengthId w) const {
    return BoardId{(d.value() + w.value()) % boards_};
  }

  /// Destination reached when board `s` lights wavelength `w` (inverse of
  /// wavelength_for for w != 0).
  [[nodiscard]] BoardId static_destination(BoardId s, WavelengthId w) const {
    return BoardId{(s.value() + boards_ - w.value()) % boards_};
  }

  [[nodiscard]] std::uint32_t boards() const { return boards_; }

 private:
  std::uint32_t boards_;
};

/// Mutable lane-ownership matrix own[dest][wavelength] ∈ {BoardId, kFree}.
///
/// Invariants enforced on every mutation:
///  * a lane has at most one owner (coupler wavelength-collision freedom);
///  * the owner is never the destination itself (a board does not transmit
///    optically to its own coupler);
///  * a failed lane (fault injection) is permanently dark: it can never be
///    granted again, so the allocator re-solves around it.
class LaneMap {
 public:
  LaneMap(const SystemConfig& cfg, const Rwa& rwa);

  /// Owner of lane (d, w); !valid() means the lane is dark (laser off).
  [[nodiscard]] BoardId owner(BoardId d, WavelengthId w) const {
    return own_[index(d, w)];
  }

  [[nodiscard]] bool is_free(BoardId d, WavelengthId w) const { return !owner(d, w).valid(); }

  /// Grants lane (d, w) to `s`. The lane must currently be free.
  void grant(BoardId d, WavelengthId w, BoardId s);

  /// Releases lane (d, w); it must currently be owned.
  void release(BoardId d, WavelengthId w);

  /// Permanently fails lane (d, w): evicts the current owner (if any) and
  /// bars all future grants. Idempotent.
  void mark_failed(BoardId d, WavelengthId w);

  /// Repairs a failed lane: grants are allowed again. The lane comes back
  /// free (dark); DBR re-admits it at the next bandwidth window.
  void repair(BoardId d, WavelengthId w);

  /// True if the lane has been marked failed by fault injection.
  [[nodiscard]] bool is_failed(BoardId d, WavelengthId w) const {
    return failed_[index(d, w)] != 0;
  }

  /// Number of lanes marked failed network-wide.
  [[nodiscard]] std::uint32_t failed_count() const;

  /// Sheds lane (d, w): the degradation controller withdrew it from the
  /// DBR pool to cut power. A shed lane is healthy — distinct from failed
  /// (fault injection may still fail/repair it independently) — but the
  /// allocator must not grant it until unshed. Not idempotent: shedding a
  /// shed lane is a controller bug.
  void shed(BoardId d, WavelengthId w);

  /// Re-admits a shed lane into the DBR pool (the hysteresis recovery
  /// path). The lane stays dark until the next bandwidth window grants it.
  void unshed(BoardId d, WavelengthId w);

  /// True if the lane is currently withdrawn by the degradation controller.
  [[nodiscard]] bool is_shed(BoardId d, WavelengthId w) const {
    return shed_[index(d, w)] != 0;
  }

  /// Number of lanes currently shed network-wide.
  [[nodiscard]] std::uint32_t shed_count() const;

  /// All wavelengths board `s` currently drives toward destination `d`.
  [[nodiscard]] std::vector<WavelengthId> lanes_of(BoardId s, BoardId d) const;

  /// Count of lanes board `s` drives toward `d`.
  [[nodiscard]] std::uint32_t lane_count(BoardId s, BoardId d) const;

  /// Resets to the static RWA: lane (d, w_static(s,d)) owned by s for every
  /// ordered pair, λ_0 lanes free.
  void reset_static();

  [[nodiscard]] std::uint32_t boards() const { return boards_; }
  [[nodiscard]] std::uint32_t wavelengths() const { return wavelengths_; }

  /// Total lit lanes (for power sanity checks).
  [[nodiscard]] std::uint32_t lit_count() const;

 private:
  [[nodiscard]] std::size_t index(BoardId d, WavelengthId w) const {
    ERAPID_REQUIRE(d.value() < boards_ && w.value() < wavelengths_,
                   "lane out of range: d=" << d.value() << " w=" << w.value());
    return static_cast<std::size_t>(d.value()) * wavelengths_ + w.value();
  }

  std::uint32_t boards_;
  std::uint32_t wavelengths_;
  const Rwa* rwa_;
  std::vector<BoardId> own_;
  std::vector<char> failed_;  ///< 1 = lane permanently failed (never granted)
  std::vector<char> shed_;    ///< 1 = lane withdrawn by the degradation controller
};

}  // namespace erapid::topology
