#include "topology/rwa.hpp"

namespace erapid::topology {

LaneMap::LaneMap(const SystemConfig& cfg, const Rwa& rwa)
    : boards_(cfg.num_boards_total()), wavelengths_(cfg.num_wavelengths()), rwa_(&rwa) {
  own_.resize(static_cast<std::size_t>(boards_) * wavelengths_);
  failed_.assign(own_.size(), 0);
  shed_.assign(own_.size(), 0);
  reset_static();
}

void LaneMap::reset_static() {
  for (auto& o : own_) o = BoardId{};
  for (std::uint32_t d = 0; d < boards_; ++d) {
    for (std::uint32_t s = 0; s < boards_; ++s) {
      if (s == d) continue;
      const WavelengthId w = rwa_->wavelength_for(BoardId{s}, BoardId{d});
      if (is_failed(BoardId{d}, w)) continue;  // failed lanes stay dark
      own_[index(BoardId{d}, w)] = BoardId{s};
    }
  }
}

void LaneMap::grant(BoardId d, WavelengthId w, BoardId s) {
  ERAPID_REQUIRE(s.valid() && s != d,
                 "lane owner must be a remote board: s=" << s.value() << " d=" << d.value());
  ERAPID_REQUIRE(!is_failed(d, w), "granting a failed lane: d=" << d.value() << " w=" << w.value());
  ERAPID_REQUIRE(!is_shed(d, w), "granting a shed lane: d=" << d.value() << " w=" << w.value());
  auto& slot = own_[index(d, w)];
  // Lane <-> wavelength bijection: at most one transmitter per (coupler,
  // wavelength) pair, ever.
  ERAPID_INVARIANT(!slot.valid(), "wavelength collision: lane d=" << d.value() << " w="
                                      << w.value() << " already owned by board "
                                      << slot.value());
  slot = s;
}

void LaneMap::release(BoardId d, WavelengthId w) {
  auto& slot = own_[index(d, w)];
  ERAPID_REQUIRE(slot.valid(),
                 "releasing a lane that is already dark: d=" << d.value() << " w=" << w.value());
  slot = BoardId{};
}

void LaneMap::mark_failed(BoardId d, WavelengthId w) {
  const std::size_t i = index(d, w);
  failed_[i] = 1;
  own_[i] = BoardId{};
}

void LaneMap::repair(BoardId d, WavelengthId w) {
  const std::size_t i = index(d, w);
  ERAPID_REQUIRE(failed_[i] != 0,
                 "repairing a lane that is not failed: d=" << d.value() << " w=" << w.value());
  failed_[i] = 0;
  ERAPID_INVARIANT(!own_[i].valid(), "failed lane had an owner");
}

std::uint32_t LaneMap::failed_count() const {
  std::uint32_t n = 0;
  for (const auto f : failed_) {
    if (f) ++n;
  }
  return n;
}

void LaneMap::shed(BoardId d, WavelengthId w) {
  const std::size_t i = index(d, w);
  ERAPID_REQUIRE(shed_[i] == 0,
                 "shedding a lane that is already shed: d=" << d.value() << " w=" << w.value());
  shed_[i] = 1;
}

void LaneMap::unshed(BoardId d, WavelengthId w) {
  const std::size_t i = index(d, w);
  ERAPID_REQUIRE(shed_[i] != 0,
                 "unshedding a lane that is not shed: d=" << d.value() << " w=" << w.value());
  shed_[i] = 0;
}

std::uint32_t LaneMap::shed_count() const {
  std::uint32_t n = 0;
  for (const auto s : shed_) {
    if (s) ++n;
  }
  return n;
}

std::vector<WavelengthId> LaneMap::lanes_of(BoardId s, BoardId d) const {
  std::vector<WavelengthId> out;
  for (std::uint32_t w = 0; w < wavelengths_; ++w) {
    if (owner(d, WavelengthId{w}) == s) out.push_back(WavelengthId{w});
  }
  return out;
}

std::uint32_t LaneMap::lane_count(BoardId s, BoardId d) const {
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < wavelengths_; ++w) {
    if (owner(d, WavelengthId{w}) == s) ++n;
  }
  return n;
}

std::uint32_t LaneMap::lit_count() const {
  std::uint32_t n = 0;
  for (const auto& o : own_) {
    if (o.valid()) ++n;
  }
  return n;
}

}  // namespace erapid::topology
