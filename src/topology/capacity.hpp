// Analytic capacity model (paper §4: "The network capacity was determined
// from the expression N_c (packets/node/cycle), defined as the maximum
// sustainable throughput when a network is loaded with uniform random
// traffic").
//
// The benches sweep offered load as a fraction (0.1 .. 0.9) of N_c, exactly
// like the paper. The model also computes per-pattern static saturation
// points used by EXPERIMENTS.md and by property tests (e.g. complement
// traffic must saturate a static network at ≈ N_c / D).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "topology/config.hpp"
#include "util/types.hpp"

namespace erapid::topology {

/// Closed-form bottleneck analysis for R(1, B, D) systems.
class CapacityModel {
 public:
  explicit CapacityModel(const SystemConfig& cfg) : cfg_(cfg) {}

  /// Packets/cycle one optical lane sustains at bit rate `br`.
  [[nodiscard]] double lane_service_rate(units::GbitsPerSec br) const {
    return 1.0 / static_cast<double>(cfg_.serialization_cycles(br));
  }

  /// Packets/node/cycle the electrical injection (or ejection) channel
  /// sustains: one flit every cycles_per_flit cycles.
  [[nodiscard]] double injection_limit() const {
    return 1.0 / static_cast<double>(cfg_.cycles_per_flit_electrical() * cfg_.packet_flits);
  }

  /// N_c: uniform-random capacity in packets/node/cycle at the highest
  /// optical bit rate. Bottleneck is min(injection channel, optical lane).
  [[nodiscard]] double uniform_capacity(
      units::GbitsPerSec br = units::GbitsPerSec{5.0}) const;

  /// Board-to-board demand matrix for a permutation/pattern: entry
  /// [s * B + d] is packets/cycle offered on flow s→d per unit injection
  /// rate (1 packet/node/cycle). `dest` maps each node to its destination.
  [[nodiscard]] std::vector<double> board_demand(
      const std::function<NodeId(NodeId)>& dest) const;

  /// Uniform-random demand matrix (each node targets all others equally).
  [[nodiscard]] std::vector<double> uniform_board_demand() const;

  /// Injection rate (packets/node/cycle) at which the hottest flow
  /// saturates, given `lanes_per_flow(s,d)` lanes each serving bit rate
  /// `br`. Flows with zero demand are ignored.
  [[nodiscard]] double saturation_injection(
      const std::vector<double>& demand,
      const std::function<std::uint32_t(BoardId, BoardId)>& lanes_per_flow,
      units::GbitsPerSec br = units::GbitsPerSec{5.0}) const;

  /// Convenience: static RWA gives every remote flow exactly one lane.
  [[nodiscard]] double static_saturation(
      const std::vector<double>& demand,
      units::GbitsPerSec br = units::GbitsPerSec{5.0}) const;

 private:
  SystemConfig cfg_;
};

}  // namespace erapid::topology
