// E-RAPID system configuration.
//
// A system is the 3-tuple R(C, B, D) of the paper: C clusters, B boards per
// cluster, D nodes per board. The evaluation (and this reproduction's
// default) uses R(1, 8, 8) = 64 nodes. All timing parameters below are the
// Table 1 / §4.1 values:
//
//   router clock          400 MHz (1 cycle = 2.5 ns)
//   electrical channel    16 bit  => 6.4 Gb/s unidirectional, 4 cycles/flit
//   flit                  64 bit; packet 64 B = 8 flits
//   optical bit rates     2.5 / 3.3 / 5 Gb/s  (P_low / P_mid / P_high)
//   RC, VA, SA            one router cycle each
//   credit delay          1 cycle
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/expect.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace erapid::topology {

/// Static description of an E-RAPID system plus microarchitecture timing.
struct SystemConfig {
  // ---- R(C, B, D) ----
  std::uint32_t clusters = 1;         ///< C: the paper evaluates C = 1.
  std::uint32_t boards = 8;           ///< B: boards per cluster.
  std::uint32_t nodes_per_board = 8;  ///< D: nodes per board.

  // ---- electrical router (Table 1, SGI-Spider-derived) ----
  double router_clock_ghz = 0.4;        ///< 400 MHz router clock.
  std::uint32_t channel_width_bits = 16;  ///< electrical phit width.
  std::uint32_t flit_bits = 64;           ///< flit size (8 B).
  std::uint32_t packet_flits = 8;         ///< 64 B packet = 8 flits.
  std::uint32_t num_vcs = 4;              ///< virtual channels per input port.
  std::uint32_t vc_buffer_flits = 8;      ///< per-VC input buffer depth.
  std::uint32_t credit_delay = 1;         ///< credit return latency (cycles).

  // ---- optical layer ----
  std::uint32_t tx_queue_packets = 16;  ///< per-destination transmit queue.
  std::uint32_t rx_queue_packets = 8;   ///< per-wavelength receive queue.
  std::uint32_t fiber_delay_cycles = 8; ///< propagation (≈ 20 ns ≈ 4 m fiber).
  /// Router→transmitter feed pacing (cycles per flit). Figure 2(a) gives
  /// every optical transmitter its own electrical feed from the IBI switch
  /// ("spreading the traffic on the transmitter board", §2.2); since the
  /// terminal aggregates a board's W transmitter feeds behind one
  /// per-destination router port, that port's channel must represent their
  /// combined width — 1 cycle/flit (a conservative fraction of W × 16 bit).
  std::uint32_t tx_feed_cycles_per_flit = 1;

  // ---- link-level ARQ (CRC-detected corruption recovery) ----
  /// Retransmissions allowed per packet before it is dead-lettered.
  std::uint32_t arq_retry_limit = 4;
  /// Base backoff unit; retry k waits arq_nak_cycles + (backoff << (k-1)).
  std::uint32_t arq_backoff_cycles = 32;
  /// Fixed NAK round-trip latency before a retransmission is re-queued.
  std::uint32_t arq_nak_cycles = 8;

  // ---- node interface ----
  std::uint32_t injection_queue_packets = 64;  ///< NI source queue depth.

  // ------------------------------------------------------------------
  [[nodiscard]] std::uint32_t num_boards_total() const { return clusters * boards; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_boards_total() * nodes_per_board; }

  /// Wavelength count: one per board slot (λ_0 .. λ_{B-1}); λ_0 is the
  /// "self" wavelength, unused by the static RWA and grantable by DBR.
  [[nodiscard]] std::uint32_t num_wavelengths() const { return boards; }

  /// Cycle duration in wall-clock nanoseconds.
  [[nodiscard]] units::Nanoseconds cycle_ns() const {
    return units::Nanoseconds{1.0 / router_clock_ghz};
  }

  /// Electrical serialization: cycles to push one flit through a channel.
  [[nodiscard]] std::uint32_t cycles_per_flit_electrical() const {
    return (flit_bits + channel_width_bits - 1) / channel_width_bits;
  }

  /// Packet payload in bits.
  [[nodiscard]] std::uint32_t packet_bits() const { return packet_flits * flit_bits; }

  /// Optical serialization: cycles to transmit a whole packet at bit rate
  /// `br` (packets, not flits, traverse the optical domain).
  [[nodiscard]] CycleDelta serialization_cycles(units::GbitsPerSec br) const {
    ERAPID_EXPECT(br.value() > 0.0, "bit rate must be positive");
    // bits / (Gb/s) lands on ns exactly because 1 bit / (1e9 bit/s) = 1 ns.
    const units::Nanoseconds ns{static_cast<double>(packet_bits()) / br.value()};
    return static_cast<CycleDelta>(std::ceil(ns / cycle_ns()));
  }

  // ---- node <-> board maps ----
  [[nodiscard]] BoardId board_of(NodeId n) const { return BoardId{n.value() / nodes_per_board}; }
  [[nodiscard]] std::uint32_t local_index(NodeId n) const { return n.value() % nodes_per_board; }
  [[nodiscard]] NodeId node_at(BoardId b, std::uint32_t local) const {
    return NodeId{b.value() * nodes_per_board + local};
  }

  /// Validates structural requirements; throws ModelInvariantError.
  void validate() const {
    ERAPID_EXPECT(clusters >= 1, "need at least one cluster");
    ERAPID_EXPECT(boards >= 2, "E-RAPID needs >= 2 boards for inter-board traffic");
    ERAPID_EXPECT(nodes_per_board >= 1, "need at least one node per board");
    ERAPID_EXPECT(flit_bits % channel_width_bits == 0,
                  "flit must be a whole number of electrical phits");
    ERAPID_EXPECT(num_vcs >= 1 && vc_buffer_flits >= 1, "router needs buffers");
    ERAPID_EXPECT(packet_flits >= 1, "packet needs at least one flit");
    ERAPID_EXPECT(arq_retry_limit >= 1, "ARQ needs at least one retry before dead-letter");
  }

  [[nodiscard]] std::string describe() const {
    return "R(" + std::to_string(clusters) + "," + std::to_string(boards) + "," +
           std::to_string(nodes_per_board) + "), " + std::to_string(num_nodes()) + " nodes";
  }
};

}  // namespace erapid::topology
