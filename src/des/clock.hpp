// Clock domain for cycle-driven components.
//
// Routers, serializers and controllers are synchronous pipelines clocked at
// the 400 MHz router clock. Instead of scheduling one heap event per
// component per cycle, a ClockDomain keeps a single recurring event and
// fans out to registered Clocked components in two phases:
//
//   phase 1: tick()      — every component computes using *last* cycle's
//                          externally visible state and stages its outputs;
//   phase 2: post_tick() — every component commits staged state.
//
// The two-phase protocol removes intra-cycle ordering sensitivity between
// components (a component never observes a peer's same-cycle update), which
// keeps the simulation deterministic regardless of registration order for
// all cross-component signals. (Signals that genuinely take a cycle —
// credits, channel flits — additionally travel through Engine events with
// explicit >= 1 cycle delay.)
//
// The domain goes idle automatically: when every component reports
// quiescence (nothing buffered, nothing in flight) the recurring event is
// not rescheduled, and any component can wake the domain again. This keeps
// the event count proportional to useful work at low loads.
#pragma once

#include <cstdint>
#include <vector>

#include "des/engine.hpp"

namespace erapid::des {

/// Interface for components advanced by a ClockDomain.
class Clocked {
 public:
  virtual ~Clocked() = default;

  /// Phase 1: compute with last-cycle state; stage outputs.
  virtual void tick(Cycle now) = 0;

  /// Phase 2: commit staged outputs. Default: nothing staged.
  virtual void post_tick(Cycle /*now*/) {}

  /// True when the component has no pending work; the domain may sleep
  /// only when *all* components are quiescent.
  [[nodiscard]] virtual bool quiescent() const { return false; }
};

/// Drives a set of Clocked components, one tick per cycle, sleeping when
/// the whole domain is quiescent.
class ClockDomain {
 public:
  explicit ClockDomain(Engine& engine) : engine_(engine) {}

  /// Registers a component. Registration order is the (deterministic)
  /// intra-phase iteration order.
  void add(Clocked& c) { components_.push_back(&c); }

  /// Ensures the domain is ticking from the next cycle boundary onwards.
  /// Safe to call at any time, including from within a tick.
  void wake();

  /// True if the recurring tick event is scheduled.
  [[nodiscard]] bool running() const { return running_; }

  /// Cycles actually ticked (excludes slept cycles); for diagnostics.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick_once();

  Engine& engine_;
  std::vector<Clocked*> components_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace erapid::des
