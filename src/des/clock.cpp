#include "des/clock.hpp"

namespace erapid::des {

void ClockDomain::wake() {
  if (running_) return;
  ERAPID_EXPECT(!components_.empty(), "waking a clock domain with no clocked components");
  running_ = true;
  // Tick at the next cycle boundary: if wake() is called mid-cycle (from an
  // event at time t), the first tick runs at t+1 so the waking signal is
  // visible with the usual one-cycle latency.
  engine_.schedule(1, [this] { tick_once(); }, "clock.tick");
}

void ClockDomain::tick_once() {
  const Cycle now = engine_.now();
  ++ticks_;
  for (Clocked* c : components_) c->tick(now);
  for (Clocked* c : components_) c->post_tick(now);

  bool all_quiet = true;
  for (Clocked* c : components_) {
    if (!c->quiescent()) {
      all_quiet = false;
      break;
    }
  }
  if (all_quiet) {
    running_ = false;  // sleep; wake() rearms
    return;
  }
  engine_.schedule(1, [this] { tick_once(); }, "clock.tick");
}

}  // namespace erapid::des
