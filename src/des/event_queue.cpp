#include "des/event_queue.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::des {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::Heap:
      return "heap";
    case QueueKind::Calendar:
      return "calendar";
  }
  ERAPID_UNREACHABLE("unmodeled QueueKind");
}

QueueKind parse_queue_kind(const std::string& text) {
  if (text == "heap") return QueueKind::Heap;
  if (text == "calendar") return QueueKind::Calendar;
  ERAPID_EXPECT(false, "unknown des.queue value: '" << text << "' (expected heap|calendar)");
  return QueueKind::Heap;  // unreachable
}

// ---- HeapEventQueue ---------------------------------------------------------

// Accepts callback-less events by design: the queue only orders (when, seq)
// pairs, and the differential tests exercise it with bare timestamps. The
// callback contract lives in Engine::schedule.
// erapid-analyze: allow(contract-coverage)
void HeapEventQueue::push(Event&& e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

const Event* HeapEventQueue::peek() { return heap_.empty() ? nullptr : &heap_.front(); }

Event HeapEventQueue::pop() {
  ERAPID_INVARIANT(!heap_.empty(), "pop on an empty heap calendar");
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

// ---- CalendarEventQueue -----------------------------------------------------

CalendarEventQueue::CalendarEventQueue() : wheel_(kBuckets) {}

void CalendarEventQueue::push(Event&& e) {
  // The engine guards when >= now and wheel_time_ never passes the pending
  // minimum, so the offset cannot be negative.
  ERAPID_INVARIANT(e.when >= wheel_time_, "calendar push below the wheel window: when="
                                              << e.when << " base=" << wheel_time_);
  if (e.when - wheel_time_ < kBuckets) {
    const auto idx = static_cast<std::size_t>(e.when % kBuckets);
    Bucket& b = wheel_[idx];
    if (!b.live() && !b.items.empty()) {
      // All prior entries already popped — reclaim the storage before this
      // bucket starts a new cycle value.
      b.items.clear();
      b.head = 0;
    }
    if (wheel_count_ == 0) {
      min_valid_ = true;
      min_when_ = e.when;
      min_bucket_ = idx;
    } else if (min_valid_ && e.when < min_when_) {
      min_when_ = e.when;
      min_bucket_ = idx;
    }
    b.items.push_back(std::move(e));
    ++wheel_count_;
  } else {
    ladder_.push_back(std::move(e));
    std::push_heap(ladder_.begin(), ladder_.end(), EventLater{});
  }
  ++size_;
}

void CalendarEventQueue::find_wheel_min() {
  const auto start = static_cast<std::size_t>(wheel_time_ % kBuckets);
  for (std::size_t off = 0; off < kBuckets; ++off) {
    const std::size_t idx = (start + off) % kBuckets;
    if (wheel_[idx].live()) {
      min_bucket_ = idx;
      min_when_ = wheel_[idx].items[wheel_[idx].head].when;
      min_valid_ = true;
      return;
    }
  }
  ERAPID_UNREACHABLE("wheel count positive but no live bucket");
}

const Event* CalendarEventQueue::peek() {
  const Event* wheel_min = nullptr;
  if (wheel_count_ > 0) {
    if (!min_valid_) find_wheel_min();
    Bucket& b = wheel_[min_bucket_];
    ERAPID_INVARIANT(b.live(), "calendar min cache points at an empty bucket");
    wheel_min = &b.items[b.head];
  }
  const Event* ladder_min = ladder_.empty() ? nullptr : &ladder_.front();
  if (wheel_min == nullptr) return ladder_min;
  if (ladder_min == nullptr) return wheel_min;
  return EventLater{}(*wheel_min, *ladder_min) ? ladder_min : wheel_min;
}

Event CalendarEventQueue::pop() {
  ERAPID_INVARIANT(size_ > 0, "pop on an empty calendar");
  bool use_wheel = wheel_count_ > 0;
  if (use_wheel) {
    if (!min_valid_) find_wheel_min();
    if (!ladder_.empty()) {
      const Bucket& b = wheel_[min_bucket_];
      if (EventLater{}(b.items[b.head], ladder_.front())) use_wheel = false;
    }
  }
  Event out;
  if (use_wheel) {
    Bucket& b = wheel_[min_bucket_];
    out = std::move(b.items[b.head]);
    ++b.head;
    --wheel_count_;
    if (!b.live()) {
      b.items.clear();
      b.head = 0;
      min_valid_ = false;
    }
    // A still-live minimum bucket keeps the cache: every remaining entry
    // shares the popped entry's cycle value.
  } else {
    std::pop_heap(ladder_.begin(), ladder_.end(), EventLater{});
    out = std::move(ladder_.back());
    ladder_.pop_back();
  }
  --size_;
  // The popped entry is the global minimum, so no pending event sits below
  // it: advancing the window base here is what keeps pushes in-window.
  wheel_time_ = out.when;
  return out;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::Heap:
      return std::make_unique<HeapEventQueue>();
    case QueueKind::Calendar:
      return std::make_unique<CalendarEventQueue>();
  }
  ERAPID_UNREACHABLE("unmodeled QueueKind");
}

}  // namespace erapid::des
