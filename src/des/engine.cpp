#include "des/engine.hpp"

namespace erapid::des {

EventHandle Engine::schedule_at(Cycle when, EventFn fn, const char* tag) {
  ERAPID_REQUIRE(when >= now_,
                 "cannot schedule an event in the past: when=" << when << " now=" << now_);
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{when, seq_++, std::move(fn), alive, tag});
  return EventHandle(alive);
}

void Engine::skim() {
  while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
}

Cycle Engine::next_event_time() const {
  // const view: cancelled entries at the top still carry valid times of
  // *some* pending work at-or-after them only if a live entry exists; scan
  // a copy-free way by checking liveness lazily.
  auto* self = const_cast<Engine*>(this);
  self->skim();
  return queue_.empty() ? kNeverCycle : queue_.top().when;
}

bool Engine::step(Cycle limit) {
  skim();
  if (queue_.empty() || queue_.top().when > limit) {
    if (limit != kNeverCycle && limit > now_) now_ = limit;
    return false;
  }
  Entry e = queue_.top();
  queue_.pop();
  // Monotone event time: the calendar never hands back an event before the
  // current cycle (schedule_at guards the insert side; this pins the pop
  // side against heap-ordering regressions).
  ERAPID_INVARIANT(e.when >= now_,
                   "event calendar time ran backwards: when=" << e.when << " now=" << now_);
  now_ = e.when;
  *e.alive = false;
  ++executed_;
  if (hook_ == nullptr) {
    e.fn();
  } else {
    hook_->on_dispatch_begin(e.tag, now_);
    e.fn();
    hook_->on_dispatch_end(e.tag, now_, queue_.size(), executed_);
  }
  return true;
}

std::uint64_t Engine::run_until(Cycle limit) {
  std::uint64_t n = 0;
  while (step(limit)) ++n;
  return n;
}

}  // namespace erapid::des
