#include "des/engine.hpp"

namespace erapid::des {

AliveSlot* Engine::acquire_slot() {
  AliveSlot* s = free_slots_;
  if (s != nullptr) {
    free_slots_ = s->next_free;
  } else {
    s = ::new (arena_.allocate(sizeof(AliveSlot), alignof(AliveSlot))) AliveSlot{};
  }
  s->alive = true;
  return s;
}

void Engine::release_slot(AliveSlot* slot) {
  // Bumping the generation is what retires outstanding handles: they keep
  // the old generation and read as not-pending from here on, even after
  // the slot is reissued to a new event.
  slot->alive = false;
  ++slot->gen;
  slot->next_free = free_slots_;
  free_slots_ = slot;
}

EventHandle Engine::schedule_at(Cycle when, EventFn fn, const char* tag) {
  ERAPID_REQUIRE(when >= now_,
                 "cannot schedule an event in the past: when=" << when << " now=" << now_);
  AliveSlot* slot = acquire_slot();
  const std::uint64_t gen = slot->gen;
  queue_->push(Event{when, seq_++, std::move(fn), slot, tag});
  return EventHandle(slot, gen);
}

void Engine::skim() {
  const Event* top = nullptr;
  while ((top = queue_->peek()) != nullptr && !top->slot->alive) {
    release_slot(queue_->pop().slot);
  }
}

Cycle Engine::next_event_time() const {
  // const view: cancelled entries at the head still carry valid times of
  // *some* pending work at-or-after them only if a live entry exists; scan
  // a copy-free way by checking liveness lazily.
  auto* self = const_cast<Engine*>(this);
  self->skim();
  const Event* top = self->queue_->peek();
  return top == nullptr ? kNeverCycle : top->when;
}

bool Engine::step(Cycle limit) {
  skim();
  const Event* top = queue_->peek();
  if (top == nullptr || top->when > limit) {
    if (limit != kNeverCycle && limit > now_) now_ = limit;
    return false;
  }
  Event e = queue_->pop();
  // Monotone event time: the calendar never hands back an event before the
  // current cycle (schedule_at guards the insert side; this pins the pop
  // side against calendar-ordering regressions).
  ERAPID_INVARIANT(e.when >= now_,
                   "event calendar time ran backwards: when=" << e.when << " now=" << now_);
  now_ = e.when;
  release_slot(e.slot);
  ++executed_;
  if (hook_ == nullptr) {
    e.fn();
  } else {
    hook_->on_dispatch_begin(e.tag, now_);
    e.fn();
    hook_->on_dispatch_end(e.tag, now_, queue_->size(), executed_);
  }
  return true;
}

std::uint64_t Engine::run_until(Cycle limit) {
  ERAPID_EXPECT(limit >= now_,
                "run_until(" << limit << ") would rewind the clock past now=" << now_);
  std::uint64_t n = 0;
  while (step(limit)) ++n;
  return n;
}

}  // namespace erapid::des
