// Discrete-event simulation kernel.
//
// This is the substrate the paper gets from YACSIM/NETSIM (Rice University,
// unreleased): a deterministic calendar of timestamped events. Design goals:
//
//  * Determinism. Events at equal timestamps fire in scheduling (FIFO)
//    order: the calendar orders by (time, sequence). Two runs with the same
//    seed produce byte-identical statistics — on either calendar
//    implementation (see event_queue.hpp; selected via `des.queue`).
//  * Cancellation. schedule() returns an EventHandle that can cancel the
//    event in O(1) (lazy deletion: the calendar entry stays but is
//    skipped). Cancellation slots are pool-allocated from an engine-owned
//    arena and recycled under generation tags, so scheduling performs no
//    per-event heap allocation. Handles must not outlive their Engine.
//  * Cycle-driven components. Routers are clocked pipelines; ClockDomain
//    (clock.hpp) multiplexes all per-cycle work onto a single recurring
//    event so the calendar holds O(#messages) entries, not O(#routers) per
//    cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "des/event_queue.hpp"
#include "util/arena.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::des {

/// Cancellation token for a scheduled event. Points at a generation-tagged
/// slot owned by the engine: once the event fires (or its cancelled entry
/// is skimmed) the slot's generation moves on and the handle goes inert.
/// Handles must not outlive the Engine that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent by design —
  /// cancelling an inert or never-armed handle is a deliberate no-op.
  // erapid-analyze: allow(contract-coverage)
  void cancel() {
    if (slot_ != nullptr && slot_->gen == gen_) slot_->alive = false;
  }

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const {
    return slot_ != nullptr && slot_->gen == gen_ && slot_->alive;
  }

 private:
  friend class Engine;
  EventHandle(AliveSlot* slot, std::uint64_t gen) : slot_(slot), gen_(gen) {}
  AliveSlot* slot_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// The event calendar and simulation clock.
class Engine {
 public:
  /// Observer of every dispatched event — the observability layer installs
  /// one for self-profiling (spans per event tag, queue-depth tracks).
  /// Kept as a local interface so des/ stays free of higher-layer
  /// dependencies; unset (the default) costs one branch per event.
  struct DispatchHook {
    virtual ~DispatchHook() = default;
    /// Fires immediately before an event's callback runs. `tag` is the
    /// static label given at schedule time, or nullptr for untagged events.
    virtual void on_dispatch_begin(const char* tag, Cycle now) = 0;
    /// Fires after the callback returns, with post-dispatch calendar state.
    virtual void on_dispatch_end(const char* tag, Cycle now, std::size_t queue_size,
                                 std::uint64_t executed) = 0;
  };

  explicit Engine(QueueKind kind = QueueKind::Heap)
      : queue_(make_event_queue(kind)), kind_(kind) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time in cycles.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Which calendar implementation this engine runs on.
  [[nodiscard]] QueueKind queue_kind() const { return kind_; }

  /// Schedules `fn` to run `delay` cycles from now. delay == 0 runs later
  /// in the current cycle (after all earlier-scheduled same-time events).
  /// `tag` must point at storage outliving the event (string literals).
  EventHandle schedule(CycleDelta delay, EventFn fn, const char* tag = nullptr) {
    ERAPID_REQUIRE(delay <= kNeverCycle - now_,
                   "event delay overflows the cycle counter: delay=" << delay);
    return schedule_at(now_ + delay, std::move(fn), tag);
  }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Cycle when, EventFn fn, const char* tag = nullptr);

  /// Installs (or clears, with nullptr) the dispatch observer.
  void set_dispatch_hook(DispatchHook* hook) { hook_ = hook; }

  /// Runs events until the queue is empty or `limit` time is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(Cycle limit);

  /// Runs all events to exhaustion (use run_until for open models).
  std::uint64_t run_all() { return run_until(kNeverCycle); }

  /// Executes exactly one event if any is pending before `limit`.
  /// Returns false when no such event exists (time is advanced to limit).
  bool step(Cycle limit = kNeverCycle);

  /// Number of events currently in the calendar (including cancelled
  /// entries awaiting lazy removal).
  [[nodiscard]] std::size_t queue_size() const { return queue_->size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Time of the earliest pending event, or kNeverCycle when idle.
  [[nodiscard]] Cycle next_event_time() const;

 private:
  /// Pops cancelled entries off the head of the calendar.
  void skim();

  AliveSlot* acquire_slot();
  void release_slot(AliveSlot* slot);

  std::unique_ptr<EventQueue> queue_;
  QueueKind kind_;
  util::Arena arena_{16 * 1024};  ///< backs the cancellation-slot pool
  AliveSlot* free_slots_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  DispatchHook* hook_ = nullptr;
};

}  // namespace erapid::des
