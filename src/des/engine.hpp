// Discrete-event simulation kernel.
//
// This is the substrate the paper gets from YACSIM/NETSIM (Rice University,
// unreleased): a deterministic calendar of timestamped events. Design goals:
//
//  * Determinism. Events at equal timestamps fire in scheduling (FIFO)
//    order: the queue orders by (time, sequence). Two runs with the same
//    seed produce byte-identical statistics.
//  * Cancellation. schedule() returns an EventHandle that can cancel the
//    event in O(1) (lazy deletion: the heap entry stays but is skipped).
//  * Cycle-driven components. Routers are clocked pipelines; ClockDomain
//    (clock.hpp) multiplexes all per-cycle work onto a single recurring
//    event so the heap holds O(#messages) entries, not O(#routers) per
//    cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::des {

/// Callback type executed when an event fires.
using EventFn = std::function<void()>;

/// Shared cancellation token for a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event calendar and simulation clock.
class Engine {
 public:
  /// Observer of every dispatched event — the observability layer installs
  /// one for self-profiling (spans per event tag, queue-depth tracks).
  /// Kept as a local interface so des/ stays free of higher-layer
  /// dependencies; unset (the default) costs one branch per event.
  struct DispatchHook {
    virtual ~DispatchHook() = default;
    /// Fires immediately before an event's callback runs. `tag` is the
    /// static label given at schedule time, or nullptr for untagged events.
    virtual void on_dispatch_begin(const char* tag, Cycle now) = 0;
    /// Fires after the callback returns, with post-dispatch calendar state.
    virtual void on_dispatch_end(const char* tag, Cycle now, std::size_t queue_size,
                                 std::uint64_t executed) = 0;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time in cycles.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedules `fn` to run `delay` cycles from now. delay == 0 runs later
  /// in the current cycle (after all earlier-scheduled same-time events).
  /// `tag` must point at storage outliving the event (string literals).
  EventHandle schedule(CycleDelta delay, EventFn fn, const char* tag = nullptr) {
    ERAPID_REQUIRE(delay <= kNeverCycle - now_,
                   "event delay overflows the cycle counter: delay=" << delay);
    return schedule_at(now_ + delay, std::move(fn), tag);
  }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Cycle when, EventFn fn, const char* tag = nullptr);

  /// Installs (or clears, with nullptr) the dispatch observer.
  void set_dispatch_hook(DispatchHook* hook) { hook_ = hook; }

  /// Runs events until the queue is empty or `limit` time is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(Cycle limit);

  /// Runs all events to exhaustion (use run_until for open models).
  std::uint64_t run_all() { return run_until(kNeverCycle); }

  /// Executes exactly one event if any is pending before `limit`.
  /// Returns false when no such event exists (time is advanced to limit).
  bool step(Cycle limit = kNeverCycle);

  /// Number of events currently in the calendar (including cancelled
  /// entries awaiting lazy removal).
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Time of the earliest pending event, or kNeverCycle when idle.
  [[nodiscard]] Cycle next_event_time() const;

 private:
  struct Entry {
    Cycle when = 0;
    std::uint64_t seq = 0;
    EventFn fn;
    std::shared_ptr<bool> alive;
    const char* tag = nullptr;  ///< static schedule-site label (observability)
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  /// Pops cancelled entries off the top of the heap.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  DispatchHook* hook_ = nullptr;
};

}  // namespace erapid::des
