// Pluggable event calendars for the DES engine.
//
// The engine promises one ordering contract, whatever the container: events
// pop in (time, insertion sequence) order — FIFO among equal timestamps.
// Two implementations honour it:
//
//  * HeapEventQueue — the classic binary heap. O(log n) push/pop,
//    allocation-free beyond vector growth. The reference implementation
//    and the default (`des.queue=heap`).
//
//  * CalendarEventQueue — a timing wheel of 1-cycle buckets with a
//    min-heap "ladder" for events beyond the window
//    (`des.queue=calendar`). Near-future events (the vast majority in a
//    cycle-driven model: clock ticks at +1, pipeline hops a few cycles
//    out) cost O(1) amortized push/pop; far-future events (drain
//    timeouts, laser repairs) spill to the ladder and are merged at the
//    head by the same (time, seq) comparison.
//
// The calendar's correctness hinges on two invariants, both guaranteed by
// the engine: pushes never carry `when` below the current time, and the
// wheel's window base only advances to a popped event's time (the global
// minimum), so no pending wheel event is ever left behind the window.
// Within a live bucket every entry shares one cycle value (the window is
// exactly one lap wide), so append order is seq order and FIFO falls out
// of a head index. tests/test_event_queue.cpp holds the two
// implementations against each other on randomized streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/inplace_fn.hpp"
#include "util/types.hpp"

namespace erapid::des {

/// Callback type executed when an event fires. Inline storage is sized for
/// the largest hot-path capture (flit delivery: sink + flit + vc + cycle)
/// so scheduling never heap-allocates for it.
using EventFn = util::InplaceFn<96>;

/// Which event calendar the engine runs on (`des.queue` in configs).
enum class QueueKind { Heap, Calendar };

/// Config-facing name of a queue kind ("heap" / "calendar").
[[nodiscard]] const char* queue_kind_name(QueueKind kind);

/// Parses a `des.queue` value; throws on anything else.
[[nodiscard]] QueueKind parse_queue_kind(const std::string& text);

/// Cancellation slot for a scheduled event, pool-allocated by the engine
/// and recycled under a generation tag: a slot is released (generation
/// bumped, pushed on the free list) when its event leaves the calendar, so
/// a stale EventHandle sees the generation mismatch instead of a dangling
/// flag. Replaces the per-event shared_ptr<bool> allocation.
struct AliveSlot {
  std::uint64_t gen = 0;
  bool alive = false;
  AliveSlot* next_free = nullptr;
};

/// One calendar entry.
struct Event {
  Cycle when = 0;
  std::uint64_t seq = 0;
  EventFn fn;
  AliveSlot* slot = nullptr;
  const char* tag = nullptr;  ///< static schedule-site label (observability)
};

/// Orders a after b by (when, seq) — the heap comparator and the
/// wheel-vs-ladder merge rule. Same-time events keep FIFO order.
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

/// The calendar contract. size() counts every entry still in the
/// container, including cancelled ones awaiting lazy removal — the
/// dispatch hook reports it, so both implementations must agree.
class EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual void push(Event&& e) = 0;
  /// Earliest entry by (when, seq), or nullptr when empty. The pointer is
  /// invalidated by the next push/pop.
  virtual const Event* peek() = 0;
  /// Removes and returns the earliest entry. Precondition: not empty.
  virtual Event pop() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }
};

/// Binary min-heap calendar (the default and reference ordering).
class HeapEventQueue final : public EventQueue {
 public:
  void push(Event&& e) override;
  const Event* peek() override;
  Event pop() override;
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }

 private:
  std::vector<Event> heap_;
};

/// Timing-wheel calendar with a min-heap ladder for far-future events.
class CalendarEventQueue final : public EventQueue {
 public:
  /// Window width in cycles (= bucket count; each bucket is 1 cycle wide).
  static constexpr std::size_t kBuckets = 4096;

  CalendarEventQueue();
  void push(Event&& e) override;
  const Event* peek() override;
  Event pop() override;
  [[nodiscard]] std::size_t size() const override { return size_; }

 private:
  struct Bucket {
    std::vector<Event> items;
    std::size_t head = 0;  ///< first live entry; earlier ones already popped
    [[nodiscard]] bool live() const { return head < items.size(); }
  };

  /// Repopulates the cached wheel minimum by scanning buckets outward from
  /// the window base. The first live bucket in that order holds the
  /// smallest time (one lap, one cycle value per bucket). Precondition:
  /// the wheel is non-empty.
  void find_wheel_min();

  std::vector<Bucket> wheel_;
  std::vector<Event> ladder_;  ///< min-heap (EventLater) of beyond-window events
  Cycle wheel_time_ = 0;       ///< window base; advances only to popped times
  std::size_t size_ = 0;
  std::size_t wheel_count_ = 0;
  bool min_valid_ = false;    ///< cached wheel minimum is current
  Cycle min_when_ = 0;        ///< time of the cached minimum
  std::size_t min_bucket_ = 0;
};

/// Builds the calendar selected by `kind`.
[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace erapid::des
