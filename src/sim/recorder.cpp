#include "sim/recorder.hpp"

#include "obs/probe.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"

namespace erapid::sim {

Recorder::Recorder(des::Engine& engine, Network& network, CycleDelta interval, obs::Hub* hub)
    : engine_(engine), network_(network), interval_(interval), hub_(hub) {
  ERAPID_EXPECT(interval_ > 0, "sampling interval must be positive");
  auto& reg = registry();
  m_power_ = reg.timeline("recorder.power_mw");
  m_lanes_lit_ = reg.timeline("recorder.lanes_lit");
  m_delivered_ = reg.timeline("recorder.delivered");
  m_backlog_ = reg.timeline("recorder.backlog");
  m_grants_ = reg.timeline("recorder.lane_grants");
  m_level_changes_ = reg.timeline("recorder.level_changes");
  m_lanes_failed_ = reg.timeline("recorder.lanes_failed");
}

obs::MetricsRegistry& Recorder::registry() {
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && hub_->enabled()) return hub_->metrics();
#endif
  return own_;
}

const obs::MetricsRegistry& Recorder::registry() const {
  return const_cast<Recorder*>(this)->registry();
}

void Recorder::start() {
  if (running_) return;
  running_ = true;
  next_ = engine_.schedule(interval_, [this] { take_sample(); }, "recorder.sample");
}

void Recorder::stop() {
  running_ = false;
  next_.cancel();
}

void Recorder::take_sample() {
  if (!running_) return;
  const Cycle now = engine_.now();
  const double power = network_.meter().instantaneous_mw().value();
  const auto lanes_lit = network_.lane_map().lit_count();
  const auto delivered = network_.packets_delivered();
  const auto backlog = network_.total_source_backlog();
  const auto& counters = network_.reconfig_manager().counters();
  const auto lanes_failed = network_.lane_map().failed_count();

  auto& reg = registry();
  reg.record(m_power_, now, power);
  reg.record(m_lanes_lit_, now, static_cast<double>(lanes_lit));
  reg.record(m_delivered_, now, static_cast<double>(delivered));
  reg.record(m_backlog_, now, static_cast<double>(backlog));
  reg.record(m_grants_, now, static_cast<double>(counters.lane_grants));
  reg.record(m_level_changes_, now, static_cast<double>(counters.level_changes));
  reg.record(m_lanes_failed_, now, static_cast<double>(lanes_failed));

#if !defined(ERAPID_NO_OBS)
  // The power-cap monitor watches the envelope at this same cadence: each
  // sample is one deterministic check against monitor.power_cap_mw. The
  // degradation controller sees the same sample right after — a breach may
  // step the brownout ladder down (via the monitor's actuation hook), and
  // sustained headroom steps it back up.
  if (hub_ != nullptr) {
    if (auto* mon = hub_->monitors()) mon->sample_power(now, power);
    if (auto* ctrl = network_.degrade_controller()) ctrl->on_power_sample(now, power);
  }
#endif

  // Mirror the sampled state onto trace counter tracks: this is the
  // at-a-glance dashboard row of the Perfetto view.
  ERAPID_TRACE_COUNTER(hub_, hub_->track_counters(), "lanes_lit", now,
                       static_cast<double>(lanes_lit));
  ERAPID_TRACE_COUNTER(hub_, hub_->track_counters(), "source_backlog", now,
                       static_cast<double>(backlog));
  ERAPID_TRACE_COUNTER(hub_, hub_->track_counters(), "delivered", now,
                       static_cast<double>(delivered));

  next_ = engine_.schedule(interval_, [this] { take_sample(); }, "recorder.sample");
}

std::size_t Recorder::sample_count() const {
  return registry().timeline_points(m_power_).size();
}

std::vector<Sample> Recorder::samples() const {
  const auto& reg = registry();
  const auto& power = reg.timeline_points(m_power_);
  const auto& lit = reg.timeline_points(m_lanes_lit_);
  const auto& delivered = reg.timeline_points(m_delivered_);
  const auto& backlog = reg.timeline_points(m_backlog_);
  const auto& grants = reg.timeline_points(m_grants_);
  const auto& levels = reg.timeline_points(m_level_changes_);
  const auto& failed = reg.timeline_points(m_lanes_failed_);

  std::vector<Sample> out;
  out.reserve(power.size());
  for (std::size_t i = 0; i < power.size(); ++i) {
    Sample s;
    s.cycle = power[i].cycle;
    s.power_mw = power[i].value;
    s.lanes_lit = static_cast<std::uint32_t>(lit[i].value);
    s.delivered = static_cast<std::uint64_t>(delivered[i].value);
    s.source_backlog = static_cast<std::size_t>(backlog[i].value);
    s.lane_grants = static_cast<std::uint64_t>(grants[i].value);
    s.level_changes = static_cast<std::uint64_t>(levels[i].value);
    s.lanes_failed = static_cast<std::uint32_t>(failed[i].value);
    out.push_back(s);
  }
  return out;
}

void Recorder::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"cycle", "power_mw", "lanes_lit", "delivered",
                             "backlog", "grants", "dvs_changes"});
  ERAPID_EXPECT(csv.ok(), "cannot open recorder CSV: " + path);
  for (const auto& s : samples()) {
    csv.row_values(s.cycle, s.power_mw, s.lanes_lit, s.delivered, s.source_backlog,
                   s.lane_grants, s.level_changes);
  }
}

double Recorder::sampled_avg_power() const {
  const auto& stats = registry().timeline_stats(m_power_);
  return stats.count() == 0 ? 0.0 : stats.mean();
}

double Recorder::peak_power() const {
  const auto& stats = registry().timeline_stats(m_power_);
  return stats.count() == 0 ? 0.0 : stats.max();
}

}  // namespace erapid::sim
