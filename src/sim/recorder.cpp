#include "sim/recorder.hpp"

#include "util/csv.hpp"
#include "util/expect.hpp"

namespace erapid::sim {

Recorder::Recorder(des::Engine& engine, Network& network, CycleDelta interval)
    : engine_(engine), network_(network), interval_(interval) {
  ERAPID_EXPECT(interval_ > 0, "sampling interval must be positive");
}

void Recorder::start() {
  if (running_) return;
  running_ = true;
  next_ = engine_.schedule(interval_, [this] { take_sample(); });
}

void Recorder::stop() {
  running_ = false;
  next_.cancel();
}

void Recorder::take_sample() {
  if (!running_) return;
  Sample s;
  s.cycle = engine_.now();
  s.power_mw = network_.meter().instantaneous_mw();
  s.lanes_lit = network_.lane_map().lit_count();
  s.delivered = network_.packets_delivered();
  s.source_backlog = network_.total_source_backlog();
  s.lane_grants = network_.reconfig_manager().counters().lane_grants;
  s.level_changes = network_.reconfig_manager().counters().level_changes;
  s.lanes_failed = network_.lane_map().failed_count();
  samples_.push_back(s);
  next_ = engine_.schedule(interval_, [this] { take_sample(); });
}

void Recorder::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"cycle", "power_mw", "lanes_lit", "delivered",
                             "backlog", "grants", "dvs_changes"});
  ERAPID_EXPECT(csv.ok(), "cannot open recorder CSV: " + path);
  for (const auto& s : samples_) {
    csv.row_values(s.cycle, s.power_mw, s.lanes_lit, s.delivered, s.source_backlog,
                   s.lane_grants, s.level_changes);
  }
}

double Recorder::sampled_avg_power() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.power_mw;
  return sum / static_cast<double>(samples_.size());
}

double Recorder::peak_power() const {
  double peak = 0.0;
  for (const auto& s : samples_) peak = std::max(peak, s.power_mw);
  return peak;
}

}  // namespace erapid::sim
