#include "sim/options_io.hpp"

#include <set>
#include <sstream>

#include "util/expect.hpp"
#include "workload/spec.hpp"

namespace erapid::sim {

namespace {

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "system.clusters",
      "system.boards",
      "system.nodes_per_board",
      "system.channel_width_bits",
      "system.flit_bits",
      "system.packet_flits",
      "system.num_vcs",
      "system.vc_buffer_flits",
      "system.credit_delay",
      "system.tx_queue_packets",
      "system.rx_queue_packets",
      "system.fiber_delay_cycles",
      "system.tx_feed_cycles_per_flit",
      "system.injection_queue_packets",
      "reconfig.mode",
      "reconfig.window",
      "reconfig.ring_hop_cycles",
      "reconfig.lc_hop_cycles",
      "reconfig.dpm_strategy",
      "reconfig.hysteresis_windows",
      "reconfig.ewma_alpha",
      "reconfig.l_min",
      "reconfig.l_max",
      "reconfig.b_max",
      "reconfig.dbr_b_min",
      "reconfig.dbr_b_max",
      "reconfig.max_lanes_per_flow",
      "reconfig.shutdown_idle",
      "reconfig.ctrl_retry_limit",
      "reconfig.rc_watchdog_cycles",
      "link.arq_retry_limit",
      "link.arq_backoff_cycles",
      "link.arq_nak_cycles",
      "fault.events",
      "fault.ctrl_drop_prob",
      "fault.seed",
      "des.queue",
      "workload.pattern",
      "workload.hotspot_fraction",
      "workload.hotspot_node",
      "workload.load",
      "workload.seed",
      "workload.warmup_cycles",
      "workload.measure_cycles",
      "workload.drain_limit",
      "workload.kind",
      "workload.episodes",
      "workload.volume_packets",
      "workload.phase_rate",
      "workload.gap_cycles",
      "workload.phases",
      "workload.tenants",
      "workload.tenant_load",
      "workload.tenant_mix",
      "workload.session_cycles",
      "workload.session_gap_mean",
      "workload.horizon_cycles",
      "workload.trace_file",
      "obs.enabled",
      "obs.trace",
      "obs.trace_format",
      "obs.counter_interval",
      "obs.trace_events",
      "obs.monitor_fail_fast",
      "obs.telemetry",
      "obs.telemetry_window",
      "obs.telemetry_top_k",
      "obs.telemetry_ewma_alpha",
      "obs.telemetry_phase_alpha",
      "obs.telemetry_phase_slack",
      "obs.telemetry_phase_threshold",
      "obs.flight_recorder_depth",
      "obs.flight_recorder",
      "monitor.power_cap_mw",
      "monitor.throughput_floor",
      "monitor.p99_latency_ceiling",
      "monitor.quiescence_deadline",
      "monitor.max_recovery_cycles",
      "monitor.workload_deadline",
      "degrade.power_cap",
      "degrade.throughput_floor",
      "degrade.p99_ceiling",
      "degrade.recovery_deadline",
      "degrade.cooldown_cycles",
      "degrade.recover_margin",
      "degrade.recover_cycles",
      "degrade.shed_step",
      "degrade.max_shed_fraction",
  };
  return keys;
}

reconfig::NetworkMode parse_mode(const std::string& name) {
  if (name == "NP-NB") return reconfig::NetworkMode::np_nb();
  if (name == "P-NB") return reconfig::NetworkMode::p_nb();
  if (name == "NP-B") return reconfig::NetworkMode::np_b();
  if (name == "P-B") return reconfig::NetworkMode::p_b();
  ERAPID_EXPECT(false, "unknown reconfig.mode: '" + name + "'");
  return reconfig::NetworkMode::np_nb();
}

reconfig::DpmStrategyKind parse_strategy(const std::string& name) {
  if (name == "threshold") return reconfig::DpmStrategyKind::Threshold;
  if (name == "hysteresis") return reconfig::DpmStrategyKind::Hysteresis;
  if (name == "ewma") return reconfig::DpmStrategyKind::Ewma;
  ERAPID_EXPECT(false, "unknown reconfig.dpm_strategy: '" + name + "'");
  return reconfig::DpmStrategyKind::Threshold;
}

}  // namespace

SimOptions options_from_ini(const util::Ini& ini) {
  // Reject typos loudly: every present key must be known.
  for (const auto& [key, value] : ini.entries()) {
    ERAPID_EXPECT(known_keys().count(key) > 0, "unknown config key: '" + key + "'");
  }

  SimOptions o;
  auto u32 = [&](const char* key, std::uint32_t def) {
    return static_cast<std::uint32_t>(ini.get_int(key, def));
  };
  o.system.clusters = u32("system.clusters", o.system.clusters);
  o.system.boards = u32("system.boards", o.system.boards);
  o.system.nodes_per_board = u32("system.nodes_per_board", o.system.nodes_per_board);
  o.system.channel_width_bits = u32("system.channel_width_bits", o.system.channel_width_bits);
  o.system.flit_bits = u32("system.flit_bits", o.system.flit_bits);
  o.system.packet_flits = u32("system.packet_flits", o.system.packet_flits);
  o.system.num_vcs = u32("system.num_vcs", o.system.num_vcs);
  o.system.vc_buffer_flits = u32("system.vc_buffer_flits", o.system.vc_buffer_flits);
  o.system.credit_delay = u32("system.credit_delay", o.system.credit_delay);
  o.system.tx_queue_packets = u32("system.tx_queue_packets", o.system.tx_queue_packets);
  o.system.rx_queue_packets = u32("system.rx_queue_packets", o.system.rx_queue_packets);
  o.system.fiber_delay_cycles = u32("system.fiber_delay_cycles", o.system.fiber_delay_cycles);
  o.system.tx_feed_cycles_per_flit =
      u32("system.tx_feed_cycles_per_flit", o.system.tx_feed_cycles_per_flit);
  o.system.injection_queue_packets =
      u32("system.injection_queue_packets", o.system.injection_queue_packets);

  if (const auto mode = ini.get("reconfig.mode")) o.reconfig.mode = parse_mode(*mode);
  o.reconfig.window = static_cast<CycleDelta>(
      ini.get_int("reconfig.window", static_cast<long>(o.reconfig.window)));
  o.reconfig.ring_hop_cycles = static_cast<CycleDelta>(
      ini.get_int("reconfig.ring_hop_cycles", static_cast<long>(o.reconfig.ring_hop_cycles)));
  o.reconfig.lc_hop_cycles = static_cast<CycleDelta>(
      ini.get_int("reconfig.lc_hop_cycles", static_cast<long>(o.reconfig.lc_hop_cycles)));
  if (const auto strat = ini.get("reconfig.dpm_strategy")) {
    o.reconfig.dpm_strategy = parse_strategy(*strat);
  }
  o.reconfig.dpm_params.hysteresis_windows =
      u32("reconfig.hysteresis_windows", o.reconfig.dpm_params.hysteresis_windows);
  o.reconfig.dpm_params.ewma_alpha =
      ini.get_double("reconfig.ewma_alpha", o.reconfig.dpm_params.ewma_alpha);
  o.reconfig.mode.dpm.l_min = ini.get_double("reconfig.l_min", o.reconfig.mode.dpm.l_min);
  o.reconfig.mode.dpm.l_max = ini.get_double("reconfig.l_max", o.reconfig.mode.dpm.l_max);
  o.reconfig.mode.dpm.b_max = ini.get_double("reconfig.b_max", o.reconfig.mode.dpm.b_max);
  o.reconfig.mode.dbr.b_min =
      ini.get_double("reconfig.dbr_b_min", o.reconfig.mode.dbr.b_min);
  o.reconfig.mode.dbr.b_max =
      ini.get_double("reconfig.dbr_b_max", o.reconfig.mode.dbr.b_max);
  o.reconfig.mode.dbr.max_lanes_per_flow =
      u32("reconfig.max_lanes_per_flow", o.reconfig.mode.dbr.max_lanes_per_flow);
  o.reconfig.mode.dpm.shutdown_idle =
      ini.get_bool("reconfig.shutdown_idle", o.reconfig.mode.dpm.shutdown_idle);
  o.reconfig.ctrl_retry_limit =
      u32("reconfig.ctrl_retry_limit", o.reconfig.ctrl_retry_limit);
  o.reconfig.rc_watchdog_cycles = static_cast<CycleDelta>(ini.get_int(
      "reconfig.rc_watchdog_cycles", static_cast<long>(o.reconfig.rc_watchdog_cycles)));

  o.system.arq_retry_limit = u32("link.arq_retry_limit", o.system.arq_retry_limit);
  o.system.arq_backoff_cycles = u32("link.arq_backoff_cycles", o.system.arq_backoff_cycles);
  o.system.arq_nak_cycles = u32("link.arq_nak_cycles", o.system.arq_nak_cycles);

  if (const auto events = ini.get("fault.events")) {
    o.fault = fault::FaultPlan::parse_events(*events);
  }
  o.fault.ctrl_drop_prob = ini.get_double("fault.ctrl_drop_prob", o.fault.ctrl_drop_prob);
  o.fault.seed =
      static_cast<std::uint64_t>(ini.get_int("fault.seed", static_cast<long>(o.fault.seed)));

  if (const auto queue = ini.get("des.queue")) o.des_queue = des::parse_queue_kind(*queue);

  if (const auto pat = ini.get("workload.pattern")) {
    const auto parsed = traffic::parse_pattern(*pat);
    ERAPID_EXPECT(parsed.has_value(), "unknown workload.pattern: '" + *pat + "'");
    o.pattern = *parsed;
  }
  o.hotspot_fraction = ini.get_double("workload.hotspot_fraction", o.hotspot_fraction);
  o.hotspot_node = u32("workload.hotspot_node", o.hotspot_node);
  o.load_fraction = ini.get_double("workload.load", o.load_fraction);
  o.seed = static_cast<std::uint64_t>(ini.get_int("workload.seed", static_cast<long>(o.seed)));
  o.warmup_cycles =
      static_cast<Cycle>(ini.get_int("workload.warmup_cycles", static_cast<long>(o.warmup_cycles)));
  o.measure_cycles = static_cast<Cycle>(
      ini.get_int("workload.measure_cycles", static_cast<long>(o.measure_cycles)));
  o.drain_limit =
      static_cast<Cycle>(ini.get_int("workload.drain_limit", static_cast<long>(o.drain_limit)));

  auto& wl = o.workload;
  if (const auto kind = ini.get("workload.kind")) {
    const auto parsed = workload::parse_kind(*kind);
    ERAPID_EXPECT(parsed.has_value(), "unknown workload.kind: '" + *kind + "'");
    wl.kind = *parsed;
  }
  wl.episodes = u32("workload.episodes", wl.episodes);
  wl.volume_packets = u32("workload.volume_packets", wl.volume_packets);
  wl.phase_rate = ini.get_double("workload.phase_rate", wl.phase_rate);
  wl.gap_cycles = static_cast<CycleDelta>(
      ini.get_int("workload.gap_cycles", static_cast<long>(wl.gap_cycles)));
  if (const auto phases = ini.get("workload.phases")) {
    wl.phases = workload::parse_phase_specs(*phases);
  }
  wl.tenants = u32("workload.tenants", wl.tenants);
  wl.tenant_load = ini.get_double("workload.tenant_load", wl.tenant_load);
  if (const auto mix = ini.get("workload.tenant_mix")) {
    wl.tenant_mix = workload::parse_pattern_mix(*mix);
  }
  wl.session_cycles = static_cast<CycleDelta>(
      ini.get_int("workload.session_cycles", static_cast<long>(wl.session_cycles)));
  wl.session_gap_mean = static_cast<CycleDelta>(
      ini.get_int("workload.session_gap_mean", static_cast<long>(wl.session_gap_mean)));
  wl.horizon_cycles = static_cast<Cycle>(
      ini.get_int("workload.horizon_cycles", static_cast<long>(wl.horizon_cycles)));
  if (const auto trace = ini.get("workload.trace_file")) wl.trace_file = *trace;
  // Cross-field validation (kind vs phases/trace_file, ranges) — rejects a
  // bad sweep config at parse time, before any simulation runs.
  wl.validate();

  o.obs.enabled = ini.get_bool("obs.enabled", o.obs.enabled);
  if (const auto trace = ini.get("obs.trace")) o.obs.trace_path = *trace;
  if (const auto fmt = ini.get("obs.trace_format")) {
    ERAPID_EXPECT(*fmt == "chrome" || *fmt == "csv",
                  "unknown obs.trace_format: '" + *fmt + "' (chrome|csv)");
    o.obs.trace_format = *fmt;
  }
  const long interval =
      ini.get_int("obs.counter_interval", static_cast<long>(o.obs.counter_interval));
  // Reject at parse time (not first use) so a bad sweep config fails before
  // any simulation runs.
  ERAPID_EXPECT(interval > 0, "obs.counter_interval must be positive, got " << interval);
  o.obs.counter_interval = static_cast<CycleDelta>(interval);
  o.obs.trace_events = ini.get_bool("obs.trace_events", o.obs.trace_events);
  o.obs.monitor_fail_fast =
      ini.get_bool("obs.monitor_fail_fast", o.obs.monitor_fail_fast);
  if (const auto tele = ini.get("obs.telemetry")) o.obs.telemetry_path = *tele;
  const long tele_window =
      ini.get_int("obs.telemetry_window", static_cast<long>(o.obs.telemetry_window));
  ERAPID_EXPECT(tele_window > 0, "obs.telemetry_window must be positive, got "
                                     << tele_window);
  o.obs.telemetry_window = static_cast<CycleDelta>(tele_window);
  const long tele_top_k =
      ini.get_int("obs.telemetry_top_k", static_cast<long>(o.obs.telemetry_top_k));
  ERAPID_EXPECT(tele_top_k > 0, "obs.telemetry_top_k must be positive, got " << tele_top_k);
  o.obs.telemetry_top_k = static_cast<std::uint32_t>(tele_top_k);
  auto unit_weight = [&](const char* key, double def) {
    const double v = ini.get_double(key, def);
    ERAPID_EXPECT(v > 0.0 && v <= 1.0, key << " must be in (0, 1], got " << v);
    return v;
  };
  o.obs.telemetry_ewma_alpha =
      unit_weight("obs.telemetry_ewma_alpha", o.obs.telemetry_ewma_alpha);
  o.obs.telemetry_phase_alpha =
      unit_weight("obs.telemetry_phase_alpha", o.obs.telemetry_phase_alpha);
  o.obs.telemetry_phase_slack =
      ini.get_double("obs.telemetry_phase_slack", o.obs.telemetry_phase_slack);
  ERAPID_EXPECT(o.obs.telemetry_phase_slack >= 0.0,
                "obs.telemetry_phase_slack cannot be negative, got "
                    << o.obs.telemetry_phase_slack);
  o.obs.telemetry_phase_threshold =
      ini.get_double("obs.telemetry_phase_threshold", o.obs.telemetry_phase_threshold);
  ERAPID_EXPECT(o.obs.telemetry_phase_threshold > 0.0,
                "obs.telemetry_phase_threshold must be positive, got "
                    << o.obs.telemetry_phase_threshold);
  const long flight_depth = ini.get_int("obs.flight_recorder_depth",
                                        static_cast<long>(o.obs.flight_recorder_depth));
  ERAPID_EXPECT(flight_depth >= 0,
                "obs.flight_recorder_depth must be non-negative, got " << flight_depth);
  o.obs.flight_recorder_depth = static_cast<std::size_t>(flight_depth);
  if (const auto fr = ini.get("obs.flight_recorder")) {
    ERAPID_EXPECT(!fr->empty(), "obs.flight_recorder path cannot be empty");
    o.obs.flight_recorder_path = *fr;
  }

  auto& mon = o.obs.monitors;
  mon.power_cap_mw = ini.get_double("monitor.power_cap_mw", mon.power_cap_mw);
  mon.throughput_floor = ini.get_double("monitor.throughput_floor", mon.throughput_floor);
  mon.p99_latency_ceiling =
      ini.get_double("monitor.p99_latency_ceiling", mon.p99_latency_ceiling);
  const long deadline = ini.get_int("monitor.quiescence_deadline",
                                    static_cast<long>(mon.quiescence_deadline));
  ERAPID_EXPECT(deadline >= 0,
                "monitor.quiescence_deadline must be non-negative, got " << deadline);
  mon.quiescence_deadline = static_cast<CycleDelta>(deadline);
  const long recovery_cap = ini.get_int("monitor.max_recovery_cycles",
                                        static_cast<long>(mon.max_recovery_cycles));
  ERAPID_EXPECT(recovery_cap >= 0,
                "monitor.max_recovery_cycles must be non-negative, got " << recovery_cap);
  mon.max_recovery_cycles = static_cast<CycleDelta>(recovery_cap);
  const long wl_deadline = ini.get_int("monitor.workload_deadline",
                                       static_cast<long>(mon.workload_deadline));
  ERAPID_EXPECT(wl_deadline >= 0,
                "monitor.workload_deadline must be non-negative, got " << wl_deadline);
  mon.workload_deadline = static_cast<CycleDelta>(wl_deadline);
  ERAPID_EXPECT(mon.power_cap_mw >= 0.0 && mon.throughput_floor >= 0.0 &&
                    mon.p99_latency_ceiling >= 0.0,
                "monitor.* thresholds must be non-negative");

  auto& dg = o.degrade;
  // Cycle-count knobs go through a signed read first: a negative value
  // must be rejected here, not wrapped into a huge unsigned count by the
  // cast (validate() only sees the post-cast value).
  auto cycles = [&](const char* key, CycleDelta def) {
    const long v = ini.get_int(key, static_cast<long>(def));
    ERAPID_EXPECT(v >= 0, std::string(key) + " must be non-negative");
    return static_cast<CycleDelta>(v);
  };
  if (const auto p = ini.get("degrade.power_cap")) dg.power_cap = resilience::parse_policy(*p);
  if (const auto p = ini.get("degrade.throughput_floor")) {
    dg.throughput_floor = resilience::parse_policy(*p);
  }
  if (const auto p = ini.get("degrade.p99_ceiling")) dg.p99_ceiling = resilience::parse_policy(*p);
  if (const auto p = ini.get("degrade.recovery_deadline")) {
    dg.recovery_deadline = resilience::parse_policy(*p);
  }
  dg.cooldown_cycles = cycles("degrade.cooldown_cycles", dg.cooldown_cycles);
  dg.recover_margin = ini.get_double("degrade.recover_margin", dg.recover_margin);
  dg.recover_cycles = cycles("degrade.recover_cycles", dg.recover_cycles);
  dg.shed_step = u32("degrade.shed_step", dg.shed_step);
  dg.max_shed_fraction = ini.get_double("degrade.max_shed_fraction", dg.max_shed_fraction);
  // Cross-field validation (policies vs armed monitor checks, knob ranges,
  // shed vs DBR availability) — rejects a bad config at parse time.
  dg.validate(o.obs, o.reconfig.mode.bandwidth_reconfig);
  return o;
}

SimOptions load_options(const std::string& path) {
  return options_from_ini(util::Ini::load_file(path));
}

util::Ini options_to_ini(const SimOptions& o) {
  util::Ini ini;
  auto set = [&](const std::string& key, auto value) {
    std::ostringstream os;
    os << value;
    ini.set(key, os.str());
  };
  set("system.clusters", o.system.clusters);
  set("system.boards", o.system.boards);
  set("system.nodes_per_board", o.system.nodes_per_board);
  set("system.channel_width_bits", o.system.channel_width_bits);
  set("system.flit_bits", o.system.flit_bits);
  set("system.packet_flits", o.system.packet_flits);
  set("system.num_vcs", o.system.num_vcs);
  set("system.vc_buffer_flits", o.system.vc_buffer_flits);
  set("system.credit_delay", o.system.credit_delay);
  set("system.tx_queue_packets", o.system.tx_queue_packets);
  set("system.rx_queue_packets", o.system.rx_queue_packets);
  set("system.fiber_delay_cycles", o.system.fiber_delay_cycles);
  set("system.tx_feed_cycles_per_flit", o.system.tx_feed_cycles_per_flit);
  set("system.injection_queue_packets", o.system.injection_queue_packets);
  set("reconfig.mode", o.reconfig.mode.name);
  set("reconfig.window", o.reconfig.window);
  set("reconfig.ring_hop_cycles", o.reconfig.ring_hop_cycles);
  set("reconfig.lc_hop_cycles", o.reconfig.lc_hop_cycles);
  set("reconfig.dpm_strategy", reconfig::to_string(o.reconfig.dpm_strategy));
  set("reconfig.hysteresis_windows", o.reconfig.dpm_params.hysteresis_windows);
  set("reconfig.ewma_alpha", o.reconfig.dpm_params.ewma_alpha);
  set("reconfig.l_min", o.reconfig.mode.dpm.l_min);
  set("reconfig.l_max", o.reconfig.mode.dpm.l_max);
  set("reconfig.b_max", o.reconfig.mode.dpm.b_max);
  set("reconfig.dbr_b_min", o.reconfig.mode.dbr.b_min);
  set("reconfig.dbr_b_max", o.reconfig.mode.dbr.b_max);
  set("reconfig.max_lanes_per_flow", o.reconfig.mode.dbr.max_lanes_per_flow);
  set("reconfig.shutdown_idle", o.reconfig.mode.dpm.shutdown_idle ? "true" : "false");
  set("reconfig.ctrl_retry_limit", o.reconfig.ctrl_retry_limit);
  set("reconfig.rc_watchdog_cycles", o.reconfig.rc_watchdog_cycles);
  set("link.arq_retry_limit", o.system.arq_retry_limit);
  set("link.arq_backoff_cycles", o.system.arq_backoff_cycles);
  set("link.arq_nak_cycles", o.system.arq_nak_cycles);
  if (!o.fault.events.empty()) set("fault.events", o.fault.format_events());
  set("fault.ctrl_drop_prob", o.fault.ctrl_drop_prob);
  set("fault.seed", o.fault.seed);
  set("des.queue", des::queue_kind_name(o.des_queue));
  set("workload.pattern", traffic::pattern_name(o.pattern));
  set("workload.hotspot_fraction", o.hotspot_fraction);
  set("workload.hotspot_node", o.hotspot_node);
  set("workload.load", o.load_fraction);
  set("workload.seed", o.seed);
  set("workload.warmup_cycles", o.warmup_cycles);
  set("workload.measure_cycles", o.measure_cycles);
  set("workload.drain_limit", o.drain_limit);
  set("workload.kind", workload::kind_name(o.workload.kind));
  set("workload.episodes", o.workload.episodes);
  set("workload.volume_packets", o.workload.volume_packets);
  set("workload.phase_rate", o.workload.phase_rate);
  set("workload.gap_cycles", o.workload.gap_cycles);
  // Conditional keys mirror their parse-side validity constraints (phases
  // iff kind = phases, trace_file iff kind = trace) so every serialized
  // config re-validates cleanly.
  if (!o.workload.phases.empty()) {
    set("workload.phases", workload::format_phase_specs(o.workload.phases));
  }
  set("workload.tenants", o.workload.tenants);
  set("workload.tenant_load", o.workload.tenant_load);
  set("workload.tenant_mix", workload::format_pattern_mix(o.workload.tenant_mix));
  set("workload.session_cycles", o.workload.session_cycles);
  set("workload.session_gap_mean", o.workload.session_gap_mean);
  set("workload.horizon_cycles", o.workload.horizon_cycles);
  if (!o.workload.trace_file.empty()) set("workload.trace_file", o.workload.trace_file);
  set("obs.enabled", o.obs.enabled ? "true" : "false");
  if (!o.obs.trace_path.empty()) set("obs.trace", o.obs.trace_path);
  set("obs.trace_format", o.obs.trace_format);
  set("obs.counter_interval", o.obs.counter_interval);
  set("obs.trace_events", o.obs.trace_events ? "true" : "false");
  set("obs.monitor_fail_fast", o.obs.monitor_fail_fast ? "true" : "false");
  if (!o.obs.telemetry_path.empty()) set("obs.telemetry", o.obs.telemetry_path);
  set("obs.telemetry_window", o.obs.telemetry_window);
  set("obs.telemetry_top_k", o.obs.telemetry_top_k);
  set("obs.telemetry_ewma_alpha", o.obs.telemetry_ewma_alpha);
  set("obs.telemetry_phase_alpha", o.obs.telemetry_phase_alpha);
  set("obs.telemetry_phase_slack", o.obs.telemetry_phase_slack);
  set("obs.telemetry_phase_threshold", o.obs.telemetry_phase_threshold);
  set("obs.flight_recorder_depth", o.obs.flight_recorder_depth);
  set("obs.flight_recorder", o.obs.flight_recorder_path);
  // Disabled checks (threshold 0) serialize too: a saved config re-loads
  // into the identical MonitorConfig either way, and the full key set is
  // visible in every dumped config.
  set("monitor.power_cap_mw", o.obs.monitors.power_cap_mw);
  set("monitor.throughput_floor", o.obs.monitors.throughput_floor);
  set("monitor.p99_latency_ceiling", o.obs.monitors.p99_latency_ceiling);
  set("monitor.quiescence_deadline", o.obs.monitors.quiescence_deadline);
  set("monitor.max_recovery_cycles", o.obs.monitors.max_recovery_cycles);
  set("monitor.workload_deadline", o.obs.monitors.workload_deadline);
  // The whole degrade.* section is gated on any policy being set: a
  // policy-free config must serialize with no degrade key at all (knob
  // defaults alone carry no meaning, and the absence of the section is the
  // byte-identity contract for pre-resilience configs).
  if (o.degrade.any()) {
    if (o.degrade.power_cap) {
      set("degrade.power_cap", resilience::policy_name(*o.degrade.power_cap));
    }
    if (o.degrade.throughput_floor) {
      set("degrade.throughput_floor", resilience::policy_name(*o.degrade.throughput_floor));
    }
    if (o.degrade.p99_ceiling) {
      set("degrade.p99_ceiling", resilience::policy_name(*o.degrade.p99_ceiling));
    }
    if (o.degrade.recovery_deadline) {
      set("degrade.recovery_deadline", resilience::policy_name(*o.degrade.recovery_deadline));
    }
    set("degrade.cooldown_cycles", o.degrade.cooldown_cycles);
    set("degrade.recover_margin", o.degrade.recover_margin);
    set("degrade.recover_cycles", o.degrade.recover_cycles);
    set("degrade.shed_step", o.degrade.shed_step);
    set("degrade.max_shed_fraction", o.degrade.max_shed_fraction);
  }
  return ini;
}

void save_options(const std::string& path, const SimOptions& opts) {
  options_to_ini(opts).save_file(path);
}

}  // namespace erapid::sim
