#include "sim/report.hpp"

#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace erapid::sim {

namespace {

class JsonObject {
 public:
  explicit JsonObject(int indent) : indent_(indent) { os_.precision(15); }

  template <typename T>
  void field(const char* name, const T& value) {
    sep();
    os_ << '"' << name << "\": ";
    if constexpr (std::is_same_v<T, bool>) {
      os_ << (value ? "true" : "false");
    } else if constexpr (std::is_convertible_v<T, std::string>) {
      os_ << '"' << value << '"';
    } else {
      os_ << value;
    }
  }

  void raw_field(const char* name, const std::string& json) {
    sep();
    os_ << '"' << name << "\": " << json;
  }

  [[nodiscard]] std::string str() const {
    return "{" + os_.str() + "\n" + pad(indent_) + "}";
  }

 private:
  static std::string pad(int n) { return std::string(static_cast<std::size_t>(n), ' '); }
  void sep() {
    os_ << (first_ ? "\n" : ",\n") << pad(indent_ + 2);
    first_ = false;
  }
  std::ostringstream os_;
  int indent_;
  bool first_ = true;
};

}  // namespace

std::string to_json(const SimResult& r, int indent) {
  JsonObject o(indent);
  o.field("offered_fraction", r.offered_fraction);
  o.field("accepted_fraction", r.accepted_fraction);
  o.field("offered_pkt_node_cycle", r.offered_pkt_node_cycle);
  o.field("accepted_pkt_node_cycle", r.accepted_pkt_node_cycle);
  o.field("capacity_pkt_node_cycle", r.capacity_pkt_node_cycle);
  o.field("latency_avg", r.latency_avg);
  o.field("latency_p50", r.latency_p50);
  o.field("latency_p95", r.latency_p95);
  o.field("latency_p99", r.latency_p99);
  o.field("latency_max", r.latency_max);
  o.field("power_avg_mw", r.power_avg_mw);
  o.field("active_power_avg_mw", r.active_power_avg_mw);
  o.field("packets_generated", r.packets_generated);
  o.field("packets_delivered_measured", r.packets_delivered_measured);
  o.field("labelled_generated", r.labelled_generated);
  o.field("labelled_delivered", r.labelled_delivered);
  o.field("drained", r.drained);
  o.field("end_cycle", r.end_cycle);
  o.field("lane_grants", r.control.lane_grants);
  o.field("lane_releases", r.control.lane_releases);
  o.field("dvs_level_changes", r.control.level_changes);
  o.field("power_cycles", r.control.power_cycles);
  o.field("bandwidth_cycles", r.control.bandwidth_cycles);
  o.field("ring_hops", r.control.ring_hops);
  // Fault-free runs must serialize byte-identically to builds predating
  // the fault subsystem, so the fault block only appears when faults hit.
  if (r.fault.any()) {
    JsonObject f(indent + 2);
    f.field("lanes_failed", r.fault.lanes_failed);
    f.field("lanes_degraded", r.fault.lanes_degraded);
    f.field("packets_rehomed", r.fault.packets_rehomed);
    f.field("reroutes_completed", r.fault.reroutes_completed);
    f.field("reroutes_pending", r.fault.reroutes_pending);
    f.field("degraded_windows", r.fault.degraded_windows);
    f.field("first_failure",
            r.fault.first_failure == kNeverCycle ? Cycle{0} : r.fault.first_failure);
    f.field("last_recovery", r.fault.last_recovery);
    f.field("worst_time_to_reroute", r.fault.worst_time_to_reroute);
    f.field("ctrl_drops", r.fault.ctrl_drops);
    f.field("ctrl_retries", r.fault.ctrl_retries);
    f.field("ctrl_timeouts", r.fault.ctrl_timeouts);
    f.field("ctrl_exhausted", r.fault.ctrl_exhausted);
    f.field("stale_directives", r.fault.stale_directives);
    f.field("lanes_repaired", r.fault.lanes_repaired);
    f.field("readmissions_completed", r.fault.readmissions_completed);
    f.field("readmissions_pending", r.fault.readmissions_pending);
    f.field("worst_downtime", r.fault.worst_downtime);
    f.field("worst_readmission_wait", r.fault.worst_readmission_wait);
    f.field("crc_dropped", r.fault.crc_dropped);
    f.field("arq_retransmits", r.fault.arq_retransmits);
    f.field("arq_dead_letters", r.fault.arq_dead_letters);
    f.field("rc_crashes", r.fault.rc_crashes);
    f.field("rc_repairs", r.fault.rc_repairs);
    f.field("watchdog_fires", r.fault.watchdog_fires);
    f.field("tokens_regenerated", r.fault.tokens_regenerated);
    f.field("frozen_windows", r.fault.frozen_windows);
    o.raw_field("fault", f.str());
  }
  // Same byte-compatibility rule for workloads: legacy Bernoulli runs carry
  // no workload block and serialize identically to pre-workload builds.
  if (r.workload.active()) {
    JsonObject w(indent + 2);
    w.field("kind", r.workload.kind);
    w.field("completed", r.workload.completed);
    w.field("completion_cycle", r.workload.completion_cycle);
    w.field("phases_total", r.workload.phases_total);
    w.field("phases_completed", r.workload.phases_completed);
    w.field("episodes_total", r.workload.episodes_total);
    w.field("episodes_completed", r.workload.episodes_completed);
    w.field("worst_phase_cycles", r.workload.worst_phase_cycles);
    w.field("worst_episode_cycles", r.workload.worst_episode_cycles);
    w.field("packets_injected", r.workload.packets_injected);
    w.field("packets_delivered", r.workload.packets_delivered);
    w.field("packets_dead", r.workload.packets_dead);
    w.field("bytes_delivered", r.workload.bytes_delivered);
    w.field("tenants", r.workload.tenants);
    w.field("sessions_started", r.workload.sessions_started);
    w.field("sessions_completed", r.workload.sessions_completed);
    if (!r.workload.tenant_delivered_bytes.empty()) {
      std::string arr = "[";
      bool first = true;
      for (const std::uint64_t b : r.workload.tenant_delivered_bytes) {
        arr += (first ? "" : ", ") + std::to_string(b);
        first = false;
      }
      arr += "]";
      w.raw_field("tenant_delivered_bytes", arr);
    }
    o.raw_field("workload", w.str());
  }
  // Same byte-compatibility rule for observability: the snapshot block only
  // appears when a run carried a live metrics registry.
  if (!r.metrics.empty()) {
    JsonObject m(indent + 2);
    for (const auto& [name, value] : r.metrics) m.raw_field(name.c_str(), value);
    o.raw_field("obs_metrics", m.str());
  }
  // Monitor verdicts: present only when at least one `monitor.*` check was
  // configured, so monitor-free reports match older builds byte-exactly.
  if (!r.monitors.empty()) {
    JsonObject m(indent + 2);
    m.field("ok", r.monitors_ok());
    m.field("violations", r.monitor_violations);
    JsonObject c(indent + 4);
    for (const auto& [name, verdict] : r.monitors) c.raw_field(name.c_str(), verdict);
    m.raw_field("checks", c.str());
    o.raw_field("obs_monitors", m.str());
  }
  // Telemetry/flight-recorder roll-up: present only when one of the two was
  // configured, so telemetry-free reports match older builds byte-exactly.
  if (r.telemetry.active) {
    JsonObject t(indent + 2);
    t.field("windows", r.telemetry.windows);
    t.field("phase_changes", r.telemetry.phase_changes);
    t.field("final_phase", r.telemetry.final_phase);
    t.field("tm_bytes", r.telemetry.tm_bytes);
    t.field("tm_packets", r.telemetry.tm_packets);
    t.field("tm_flows", r.telemetry.tm_flows);
    t.field("tm_skew", r.telemetry.tm_skew);
    t.field("energy_total_mw_cycles", r.telemetry.energy_total_mw_cycles);
    t.field("energy_laser_mw_cycles", r.telemetry.energy_laser_mw_cycles);
    t.field("energy_serdes_mw_cycles", r.telemetry.energy_serdes_mw_cycles);
    t.field("flight_events", r.telemetry.flight_events);
    t.field("flight_dumps", r.telemetry.flight_dumps);
    o.raw_field("obs_telemetry", t.str());
  }
  // Degradation-controller roll-up: present only when a `degrade.*` policy
  // built a controller, so policy-free reports match older builds
  // byte-exactly (absence of the block reads as "degradation-free run").
  if (r.resilience.active) {
    JsonObject d(indent + 2);
    d.field("engaged", r.resilience.engaged);
    d.field("peak_stage", r.resilience.peak_stage);
    d.field("steps_down", r.resilience.steps_down);
    d.field("steps_up", r.resilience.steps_up);
    d.field("lanes_shed", r.resilience.lanes_shed);
    d.field("lanes_restored", r.resilience.lanes_restored);
    d.field("lanes_slept", r.resilience.lanes_slept);
    d.field("episodes", r.resilience.episodes);
    d.field("time_degraded", r.resilience.time_degraded);
    d.field("suppressed_violations", r.resilience.suppressed_violations);
    o.raw_field("resilience", d.str());
  }
  return o.str();
}

std::string results_to_json(
    const std::vector<std::pair<std::string, SimResult>>& named) {
  std::ostringstream os;
  os << "{\n  \"results\": [";
  bool first = true;
  for (const auto& [name, r] : named) {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    JsonObject o(4);
    o.field("name", name);
    o.raw_field("metrics", to_json(r, 4));
    os << o.str();
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void write_results_json(const std::string& path,
                        const std::vector<std::pair<std::string, SimResult>>& named) {
  std::ofstream out(path);
  ERAPID_EXPECT(static_cast<bool>(out), "cannot open JSON report: " + path);
  out << results_to_json(named);
}

}  // namespace erapid::sim
