// Time-series instrumentation.
//
// The figures in the paper are steady-state summaries; understanding *why*
// a configuration behaves as it does needs the time dimension: when lanes
// moved, how power tracked load, where queues built up. The Recorder
// samples the network at a fixed cadence and exports the series as CSV
// (one row per sample) — this is what produced the Figure 3 timelines and
// is the intended debugging tool for new policies.
//
// Storage lives in an obs::MetricsRegistry (one timeline metric per
// column) rather than an ad-hoc sample vector: attached to a Hub the
// series land in the run's metrics snapshot and are mirrored onto trace
// counter tracks; standalone the Recorder owns a private registry and
// behaves exactly as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace erapid::sim {

/// One sample of network-wide state.
struct Sample {
  Cycle cycle = 0;
  double power_mw = 0.0;          ///< instantaneous optical power
  std::uint32_t lanes_lit = 0;    ///< owned lanes network-wide
  std::uint64_t delivered = 0;    ///< cumulative deliveries
  std::size_t source_backlog = 0; ///< total NI queue depth
  std::uint64_t lane_grants = 0;  ///< cumulative DBR grants
  std::uint64_t level_changes = 0;///< cumulative DVS transitions
  std::uint32_t lanes_failed = 0; ///< permanently failed lanes (fault injection)
};

/// Periodic sampler over a Network.
class Recorder {
 public:
  /// Samples every `interval` cycles once started. With a live `hub` the
  /// timelines are registered in the hub's MetricsRegistry (prefix
  /// "recorder.") and every sample is also emitted on the trace's counter
  /// tracks; without one a private registry keeps the data local.
  Recorder(des::Engine& engine, Network& network, CycleDelta interval,
           obs::Hub* hub = nullptr);

  /// Begins sampling (first sample at now + interval).
  void start();

  /// Stops sampling (kept samples remain).
  void stop();

  /// Rebuilds the row view from the per-column timelines.
  [[nodiscard]] std::vector<Sample> samples() const;

  [[nodiscard]] std::size_t sample_count() const;

  /// Writes "cycle,power_mw,lanes_lit,delivered,backlog,grants,dvs" rows.
  void write_csv(const std::string& path) const;

  /// Average power over the sampled period (trapezoidal on samples).
  [[nodiscard]] double sampled_avg_power() const;

  /// Peak instantaneous power seen at a sample point.
  [[nodiscard]] double peak_power() const;

 private:
  void take_sample();
  [[nodiscard]] obs::MetricsRegistry& registry();
  [[nodiscard]] const obs::MetricsRegistry& registry() const;

  des::Engine& engine_;
  Network& network_;
  CycleDelta interval_;
  obs::Hub* hub_;
  /// Backing store when no hub is attached (or obs is off).
  obs::MetricsRegistry own_;
  bool running_ = false;
  des::EventHandle next_;

  obs::MetricId m_power_ = 0;
  obs::MetricId m_lanes_lit_ = 0;
  obs::MetricId m_delivered_ = 0;
  obs::MetricId m_backlog_ = 0;
  obs::MetricId m_grants_ = 0;
  obs::MetricId m_level_changes_ = 0;
  obs::MetricId m_lanes_failed_ = 0;
};

}  // namespace erapid::sim
