// Time-series instrumentation.
//
// The figures in the paper are steady-state summaries; understanding *why*
// a configuration behaves as it does needs the time dimension: when lanes
// moved, how power tracked load, where queues built up. The Recorder
// samples the network at a fixed cadence and exports the series as CSV
// (one row per sample) — this is what produced the Figure 3 timelines and
// is the intended debugging tool for new policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "sim/network.hpp"

namespace erapid::sim {

/// One sample of network-wide state.
struct Sample {
  Cycle cycle = 0;
  double power_mw = 0.0;          ///< instantaneous optical power
  std::uint32_t lanes_lit = 0;    ///< owned lanes network-wide
  std::uint64_t delivered = 0;    ///< cumulative deliveries
  std::size_t source_backlog = 0; ///< total NI queue depth
  std::uint64_t lane_grants = 0;  ///< cumulative DBR grants
  std::uint64_t level_changes = 0;///< cumulative DVS transitions
  std::uint32_t lanes_failed = 0; ///< permanently failed lanes (fault injection)
};

/// Periodic sampler over a Network.
class Recorder {
 public:
  /// Samples every `interval` cycles once started.
  Recorder(des::Engine& engine, Network& network, CycleDelta interval);

  /// Begins sampling (first sample at now + interval).
  void start();

  /// Stops sampling (kept samples remain).
  void stop();

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// Writes "cycle,power_mw,lanes_lit,delivered,backlog,grants,dvs" rows.
  void write_csv(const std::string& path) const;

  /// Average power over the sampled period (trapezoidal on samples).
  [[nodiscard]] double sampled_avg_power() const;

  /// Peak instantaneous power seen at a sample point.
  [[nodiscard]] double peak_power() const;

 private:
  void take_sample();

  des::Engine& engine_;
  Network& network_;
  CycleDelta interval_;
  bool running_ = false;
  des::EventHandle next_;
  std::vector<Sample> samples_;
};

}  // namespace erapid::sim
