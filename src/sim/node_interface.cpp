#include "sim/node_interface.hpp"

namespace erapid::sim {

NodeInterface::NodeInterface(des::Engine& engine, router::Router& router,
                             std::uint32_t in_port, std::uint32_t vcs,
                             std::uint32_t credits_per_vc, std::uint32_t cycles_per_flit)
    : injector_(engine, router, in_port, vcs, credits_per_vc, cycles_per_flit) {
  injector_.set_idle_callback([this](Cycle now) { pump(now); });
}

void NodeInterface::submit(const router::Packet& p, Cycle now) {
  ++submitted_;
  queue_.push_back(p);
  pump(now);
}

void NodeInterface::pump(Cycle now) {
  if (queue_.empty() || injector_.busy()) return;
  const bool ok = injector_.try_start(queue_.front(), now);
  ERAPID_EXPECT(ok, "idle NI injector refused a packet");
  queue_.pop_front();
}

}  // namespace erapid::sim
