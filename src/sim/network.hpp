// Full E-RAPID system assembly.
//
// Instantiates and wires, for an R(C, B, D) configuration:
//   * one IBI router per board: D node input ports + W receiver input
//     ports; D ejection output ports + (B-1) remote output ports;
//   * W wavelength receivers per board feeding the router;
//   * one optical terminal per board (TX queues, lanes, scheduler);
//   * per-node NIs and ejection units;
//   * the global lane-ownership map and the LS reconfiguration manager.
//
// Delivered packets are reported through a single callback the simulation
// driver installs (latency/throughput accounting lives there, keeping the
// network model measurement-free).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "optical/receiver.hpp"
#include "optical/terminal.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "reconfig/manager.hpp"
#include "resilience/controller.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"
#include "sim/node_interface.hpp"
#include "topology/capacity.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"

namespace erapid::sim {

/// A complete E-RAPID network instance.
class Network {
 public:
  /// `power_model` lets experiments substitute the per-level link
  /// electricals (e.g. an electrical-SerDes baseline or ablated transition
  /// latencies); the default is the paper's Table 1 optical model. `hub`
  /// (optional) is threaded to every instrumented component (manager,
  /// terminals, receivers, energy meter).
  /// `degrade_ctrl` (optional) is the degradation controller; the network
  /// attaches it to the lane map and terminals it builds.
  Network(des::Engine& engine, const topology::SystemConfig& cfg,
          const reconfig::ReconfigConfig& rc_cfg,
          const power::LinkPowerModel& power_model = power::LinkPowerModel{},
          obs::Hub* hub = nullptr,
          resilience::DegradeController* degrade_ctrl = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// `on_delivered(packet, now)` fires at every packet ejection.
  void set_delivery_callback(std::function<void(const router::Packet&, Cycle)> fn) {
    on_delivered_ = std::move(fn);
  }

  /// `on_dead_letter(packet, now)` fires when the link-level ARQ exhausts
  /// its retries on a packet — it will never be delivered. The simulation
  /// driver counts these so the drain loop can terminate.
  void set_dead_letter_callback(std::function<void(const router::Packet&, Cycle)> fn) {
    on_dead_letter_ = std::move(fn);
  }

  /// Lights static lanes and starts the reconfiguration windows.
  void start(Cycle now = 0);

  /// Injects a packet at its source node's NI.
  void inject(const router::Packet& p, Cycle now);

  // ---- accessors ----
  [[nodiscard]] const topology::SystemConfig& config() const { return cfg_; }
  [[nodiscard]] const power::LinkPowerModel& power_model() const { return power_model_; }
  [[nodiscard]] power::EnergyMeter& meter() { return meter_; }
  [[nodiscard]] const topology::Rwa& rwa() const { return rwa_; }
  [[nodiscard]] topology::LaneMap& lane_map() { return lane_map_; }
  [[nodiscard]] reconfig::ReconfigManager& reconfig_manager() { return *manager_; }
  [[nodiscard]] router::Router& board_router(BoardId b) { return *routers_[b.value()]; }
  [[nodiscard]] optical::OpticalTerminal& terminal(BoardId b) { return *terminals_[b.value()]; }
  [[nodiscard]] optical::Receiver& receiver(BoardId b, WavelengthId w) {
    return *receivers_[static_cast<std::size_t>(b.value()) * cfg_.num_wavelengths() + w.value()];
  }
  [[nodiscard]] NodeInterface& node_interface(NodeId n) { return *nis_[n.value()]; }
  /// Null unless the Simulation built a degradation controller.
  [[nodiscard]] resilience::DegradeController* degrade_controller() {
    return degrade_ctrl_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }

  /// Total NI source-queue backlog (diagnostic; grows past saturation).
  [[nodiscard]] std::size_t total_source_backlog() const;

  /// Network-wide active energy (mW·cycles): lane power integrated only
  /// while serializing (the paper's utilization-weighted power metric).
  [[nodiscard]] units::MilliwattCycles active_energy_mw_cycles() const;

 private:
  void build_board(BoardId b);

  des::Engine& engine_;
  obs::Hub* hub_;
  resilience::DegradeController* degrade_ctrl_;
  topology::SystemConfig cfg_;
  des::ClockDomain domain_;
  power::LinkPowerModel power_model_;
  power::EnergyMeter meter_;
  topology::Rwa rwa_;
  topology::LaneMap lane_map_;

  std::vector<std::unique_ptr<router::Router>> routers_;
  std::vector<std::unique_ptr<optical::Receiver>> receivers_;  ///< [b*W + w]
  std::vector<std::unique_ptr<router::EjectionUnit>> ejections_;  ///< [node]
  std::vector<std::unique_ptr<optical::OpticalTerminal>> terminals_;
  std::vector<std::unique_ptr<NodeInterface>> nis_;
  std::unique_ptr<reconfig::ReconfigManager> manager_;

  std::function<void(const router::Packet&, Cycle)> on_delivered_;
  std::function<void(const router::Packet&, Cycle)> on_dead_letter_;
  std::uint64_t delivered_ = 0;
};

}  // namespace erapid::sim
