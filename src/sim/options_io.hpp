// SimOptions ⇄ INI config files.
//
// A full experiment point (system shape, Table-1 timing overrides,
// reconfiguration policy, workload) round-trips through a plain INI file,
// so experiments are reproducible from checked-in configs:
//
//   [system]
//   boards = 8
//   nodes_per_board = 8
//   [reconfig]
//   mode = P-B            ; NP-NB | P-NB | NP-B | P-B
//   window = 2000
//   dpm_strategy = threshold  ; threshold | hysteresis | ewma
//   [workload]
//   pattern = complement
//   load = 0.6
//   seed = 1
//
// Unknown keys throw (typos must not silently fall back to defaults).
#pragma once

#include <string>

#include "sim/simulation.hpp"
#include "util/ini.hpp"

namespace erapid::sim {

/// Builds options from a parsed INI; keys not present keep defaults.
[[nodiscard]] SimOptions options_from_ini(const util::Ini& ini);

/// Convenience: load_file + options_from_ini.
[[nodiscard]] SimOptions load_options(const std::string& path);

/// Serializes the full option set (every knob, current values).
[[nodiscard]] util::Ini options_to_ini(const SimOptions& opts);

/// Writes options_to_ini to a file.
void save_options(const std::string& path, const SimOptions& opts);

}  // namespace erapid::sim
