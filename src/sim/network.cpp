#include "sim/network.hpp"

namespace erapid::sim {

Network::Network(des::Engine& engine, const topology::SystemConfig& cfg,
                 const reconfig::ReconfigConfig& rc_cfg,
                 const power::LinkPowerModel& power_model, obs::Hub* hub,
                 resilience::DegradeController* degrade_ctrl)
    : engine_(engine),
      hub_(hub),
      degrade_ctrl_(degrade_ctrl),
      cfg_(cfg),
      domain_(engine),
      power_model_(power_model),
      rwa_(cfg.num_boards_total()),
      lane_map_(cfg, rwa_) {
  cfg_.validate();
  const std::uint32_t B = cfg_.num_boards_total();
  const std::uint32_t W = cfg_.num_wavelengths();

  routers_.resize(B);
  receivers_.resize(static_cast<std::size_t>(B) * W);
  ejections_.resize(cfg_.num_nodes());
  terminals_.resize(B);
  nis_.resize(cfg_.num_nodes());

  // Phase 1: routers, ejection outputs, receivers (per board, in order).
  for (std::uint32_t b = 0; b < B; ++b) build_board(BoardId{b});

  // Phase 2: terminals (need every board's receivers) and NIs.
  std::vector<optical::Receiver*> rx_view;
  rx_view.reserve(receivers_.size());
  for (const auto& r : receivers_) rx_view.push_back(r.get());
  meter_.attach_hub(hub_);
  for (std::uint32_t b = 0; b < B; ++b) {
    terminals_[b] = std::make_unique<optical::OpticalTerminal>(
        engine_, cfg_, power_model_, meter_, BoardId{b}, *routers_[b], rx_view, hub_);
  }

  // Receiver slot-freed events go to whichever board currently owns the
  // lane, so a transmission blocked on RX backpressure resumes promptly.
  // CRC drops route back to the *source board of the packet* (not the lane
  // owner — DBR may have moved the lane since launch): its terminal runs
  // the link-level ARQ retransmission.
  for (std::uint32_t d = 0; d < B; ++d) {
    for (std::uint32_t w = 0; w < W; ++w) {
      auto& rx = receiver(BoardId{d}, WavelengthId{w});
      rx.set_slot_freed_callback([this, d, w](Cycle now) {
        const BoardId owner = lane_map_.owner(BoardId{d}, WavelengthId{w});
        if (owner.valid()) terminals_[owner.value()]->pump_flow(BoardId{d}, now);
      });
      rx.set_crc_drop_callback([this, d](const router::Packet& p, Cycle now) {
        terminals_[cfg_.board_of(p.src).value()]->arq_nak(BoardId{d}, p, now);
      });
    }
  }
  for (std::uint32_t b = 0; b < B; ++b) {
    terminals_[b]->set_dead_letter_callback([this](const router::Packet& p, Cycle now) {
      if (on_dead_letter_) on_dead_letter_(p, now);
    });
  }

  for (std::uint32_t n = 0; n < cfg_.num_nodes(); ++n) {
    const NodeId node{n};
    const BoardId b = cfg_.board_of(node);
    nis_[n] = std::make_unique<NodeInterface>(
        engine_, *routers_[b.value()], cfg_.local_index(node), cfg_.num_vcs,
        cfg_.vc_buffer_flits, cfg_.cycles_per_flit_electrical());
  }

  manager_ = std::make_unique<reconfig::ReconfigManager>(
      engine_, cfg_, rc_cfg, lane_map_,
      [this] {
        std::vector<optical::OpticalTerminal*> v;
        for (const auto& t : terminals_) v.push_back(t.get());
        return v;
      }(),
      hub_);

  if (degrade_ctrl_ != nullptr) {
    std::vector<optical::OpticalTerminal*> v;
    for (const auto& t : terminals_) v.push_back(t.get());
    degrade_ctrl_->attach(lane_map_, std::move(v));
  }
}

void Network::build_board(BoardId b) {
  const std::uint32_t D = cfg_.nodes_per_board;
  const std::uint32_t W = cfg_.num_wavelengths();

  // Routing: local destinations eject at their node port; remote boards
  // use the terminal's per-destination output (D + relative index).
  auto route = [this, b, D](const router::Flit& head) -> std::uint32_t {
    const BoardId dest_board = cfg_.board_of(head.dst);
    if (dest_board == b) return cfg_.local_index(head.dst);
    const std::uint32_t rel =
        dest_board.value() < b.value() ? dest_board.value() : dest_board.value() - 1;
    return D + rel;
  };

  routers_[b.value()] = std::make_unique<router::Router>(
      engine_, domain_, "board" + std::to_string(b.value()), D + W, cfg_.num_vcs,
      cfg_.vc_buffer_flits, cfg_.credit_delay, route);
  auto& rt = *routers_[b.value()];

  // Ejection output ports 0..D-1 (must precede the terminal's remote ports).
  for (std::uint32_t i = 0; i < D; ++i) {
    const NodeId node = cfg_.node_at(b, i);
    auto ej = std::make_unique<router::EjectionUnit>(
        rt, cfg_.num_vcs, [this](const router::Packet& p, Cycle now) {
          ++delivered_;
          if (on_delivered_) on_delivered_(p, now);
        });
    router::OutputPortConfig opc;
    opc.sink = ej.get();
    opc.vcs = cfg_.num_vcs;
    opc.credits_per_vc = cfg_.vc_buffer_flits;
    opc.cycles_per_flit = cfg_.cycles_per_flit_electrical();
    opc.wire_delay = 0;
    const std::uint32_t port = rt.add_output(opc);
    ERAPID_EXPECT(port == i, "ejection ports must be 0..D-1");
    ej->bind(port);
    ejections_[node.value()] = std::move(ej);
  }

  // Wavelength receivers feeding router input ports D..D+W-1.
  for (std::uint32_t w = 0; w < W; ++w) {
    receivers_[static_cast<std::size_t>(b.value()) * W + w] =
        std::make_unique<optical::Receiver>(engine_, rt, D + w, cfg_.num_vcs,
                                            cfg_.vc_buffer_flits,
                                            cfg_.cycles_per_flit_electrical(),
                                            cfg_.rx_queue_packets, hub_);
  }
}

void Network::start(Cycle /*now*/) {
  manager_->initialize_static_lanes();
  manager_->start();
}

void Network::inject(const router::Packet& p, Cycle now) {
  // The TX reassembly credit window holds exactly cfg.packet_flits flits
  // per VC, so a longer packet could never finish crossing the router.
  ERAPID_EXPECT(p.flits >= 1 && p.flits <= cfg_.packet_flits,
                "packet of " << p.flits << " flits exceeds the system packet length ("
                             << cfg_.packet_flits << ")");
  nis_[p.src.value()]->submit(p, now);
}

std::size_t Network::total_source_backlog() const {
  std::size_t total = 0;
  for (const auto& ni : nis_) total += ni->queue_size();
  return total;
}

units::MilliwattCycles Network::active_energy_mw_cycles() const {
  units::MilliwattCycles total{0.0};
  for (const auto& t : terminals_) total += t->active_energy_mw_cycles();
  return total;
}

}  // namespace erapid::sim
