// Machine-readable result export.
//
// SimResult → JSON, for downstream plotting or regression tracking without
// scraping the console tables. Hand-rolled emitter (flat structs only; a
// JSON library dependency is not warranted).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace erapid::sim {

/// JSON object for one result.
[[nodiscard]] std::string to_json(const SimResult& r, int indent = 0);

/// JSON document: {"results": [{"name": ..., ...result fields...}, ...]}.
[[nodiscard]] std::string results_to_json(
    const std::vector<std::pair<std::string, SimResult>>& named);

/// Writes results_to_json to a file (throws ModelInvariantError on I/O).
void write_results_json(const std::string& path,
                        const std::vector<std::pair<std::string, SimResult>>& named);

}  // namespace erapid::sim
