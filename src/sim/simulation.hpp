// Experiment driver implementing the paper's measurement methodology
// (§4): warm the network up under load until steady state, label the
// packets injected during a measurement interval, then run until every
// labelled packet is delivered (bounded by a drain cap for post-saturation
// loads). Reports accepted throughput, labelled-packet latency statistics
// and time-averaged optical power.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/hub.hpp"
#include "reconfig/manager.hpp"
#include "resilience/controller.hpp"
#include "sim/network.hpp"
#include "sim/recorder.hpp"
#include "stats/histogram.hpp"
#include "stats/streaming.hpp"
#include "topology/capacity.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_source.hpp"
#include "workload/phase.hpp"
#include "workload/spec.hpp"
#include "workload/stats.hpp"
#include "workload/tenants.hpp"

namespace erapid::sim {

/// All knobs of one simulation run.
struct SimOptions {
  topology::SystemConfig system;
  reconfig::ReconfigConfig reconfig;
  /// Per-level link electricals (Table 1 by default; substitute for
  /// electrical-baseline or transition-latency studies).
  power::LinkPowerModel power_model;
  traffic::PatternKind pattern = traffic::PatternKind::Uniform;
  double hotspot_fraction = 0.2;  ///< only for PatternKind::Hotspot
  std::uint32_t hotspot_node = 0; ///< only for PatternKind::Hotspot
  double load_fraction = 0.5;  ///< offered load as a fraction of N_c
  std::uint64_t seed = 1;
  /// Event-calendar implementation (`des.queue`). Both kinds are held to
  /// the same (time, seq) ordering contract, so results are byte-identical
  /// either way; calendar trades heap log-factors for O(1) wheel buckets.
  des::QueueKind des_queue = des::QueueKind::Heap;
  Cycle warmup_cycles = 20000;
  Cycle measure_cycles = 30000;
  Cycle drain_limit = 150000;  ///< cap on the post-measurement drain
  /// Faults injected during the run (default: none — the fault subsystem
  /// then schedules no events and the run is identical to a fault-free
  /// build).
  fault::FaultPlan fault;
  /// Observability (tracing + metrics; the `obs.*` INI section). Disabled
  /// by default: the run is byte-identical to a build without the obs
  /// subsystem.
  obs::ObsConfig obs;
  /// Structured workload (the extended `workload.*` section). The default
  /// kind (bernoulli) keeps the legacy open-loop traffic path and a
  /// byte-identical report.
  workload::WorkloadSpec workload;
  /// Survivability policies (the `degrade.*` section). With no policy
  /// configured (any() == false) no controller is built and the run is
  /// byte-identical to a build without the resilience subsystem.
  resilience::DegradeConfig degrade;
};

/// Results of one run.
struct SimResult {
  // Offered / accepted load, packets per node per cycle.
  double offered_pkt_node_cycle = 0.0;
  double accepted_pkt_node_cycle = 0.0;
  double capacity_pkt_node_cycle = 0.0;  ///< analytic N_c
  double offered_fraction = 0.0;         ///< = offered / N_c
  double accepted_fraction = 0.0;        ///< = accepted / N_c

  // Labelled-packet latency (cycles).
  double latency_avg = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;

  // Time-averaged optical power over the measurement interval (mW):
  // every lit laser/receiver pair counts for the full duration it is on.
  double power_avg_mw = 0.0;

  // Utilization-weighted ("active") power over the measurement interval
  // (mW): lane power integrated only while serializing packets. This is
  // the metric the paper's power panels track (a lit-but-idle link does
  // not register; see DESIGN.md).
  double active_power_avg_mw = 0.0;

  // Bookkeeping.
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_delivered_measured = 0;
  std::uint64_t labelled_generated = 0;
  std::uint64_t labelled_delivered = 0;
  bool drained = false;  ///< all labelled packets arrived before the cap
  Cycle end_cycle = 0;
  reconfig::ControlCounters control;
  fault::RecoveryStats fault;  ///< all-zero (any() == false) without a plan
  /// Name-sorted metrics snapshot (name, rendered JSON value); empty when
  /// obs is off — the JSON report then matches pre-obs builds byte-exactly.
  std::vector<std::pair<std::string, std::string>> metrics;
  /// Name-sorted monitor verdicts (check, rendered JSON); empty unless at
  /// least one `monitor.*` check was configured on an obs-enabled run —
  /// the report then matches monitor-free builds byte-exactly.
  std::vector<std::pair<std::string, std::string>> monitors;
  /// Total monitor violations across all checks (0 with none configured).
  std::uint64_t monitor_violations = 0;
  /// Structured-workload accounting; inactive (kind empty, no report
  /// block) on legacy Bernoulli runs.
  workload::WorkloadStats workload;
  /// Whole-run roll-up of the telemetry plane and flight recorder;
  /// inactive (no report block) unless one of them was configured.
  struct TelemetrySummary {
    bool active = false;
    std::uint64_t windows = 0;
    std::uint64_t phase_changes = 0;
    std::uint64_t final_phase = 0;
    std::uint64_t tm_bytes = 0;
    std::uint64_t tm_packets = 0;
    std::uint64_t tm_flows = 0;
    double tm_skew = 0.0;
    double energy_total_mw_cycles = 0.0;
    double energy_laser_mw_cycles = 0.0;
    double energy_serdes_mw_cycles = 0.0;
    std::uint64_t flight_events = 0;
    std::uint64_t flight_dumps = 0;
  };
  TelemetrySummary telemetry;
  /// Degradation-controller roll-up; inactive (no report block) unless a
  /// `degrade.*` policy was configured.
  struct ResilienceSummary {
    bool active = false;
    bool engaged = false;
    std::string peak_stage = "normal";
    std::uint64_t steps_down = 0;
    std::uint64_t steps_up = 0;
    std::uint64_t lanes_shed = 0;
    std::uint64_t lanes_restored = 0;
    std::uint64_t lanes_slept = 0;
    std::uint64_t episodes = 0;
    std::uint64_t time_degraded = 0;
    std::uint64_t suppressed_violations = 0;
  };
  ResilienceSummary resilience;
  /// True when monitors ran and every configured check held.
  [[nodiscard]] bool monitors_ok() const {
    return monitor_violations == 0;
  }
};

/// One self-contained simulation (engine + network + sources + metrics).
class Simulation {
 public:
  explicit Simulation(const SimOptions& opts);

  /// Runs the configured workload and returns the metrics. Open-loop
  /// kinds (bernoulli, tenants) follow the paper's warmup → measurement →
  /// drain methodology; completion-bounded kinds run until delivered-byte
  /// completion (or workload.horizon_cycles).
  SimResult run();

  // Exposed for tests and custom experiment loops.
  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] des::Engine& engine() { return engine_; }
  [[nodiscard]] const SimOptions& options() const { return opts_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] fault::FaultInjector& fault_injector() { return *injector_; }
  /// Null unless obs.enabled (or under ERAPID_NO_OBS builds).
  [[nodiscard]] obs::Hub* hub() { return hub_.get(); }
  /// Null unless a `degrade.*` policy is configured.
  [[nodiscard]] resilience::DegradeController* degrade_controller() {
    return degrade_ctrl_.get();
  }

 private:
  /// Open-loop body shared by the bernoulli and tenants kinds.
  SimResult run_open_loop();
  /// Completion-bounded body (collectives, kernels, phases, trace).
  SimResult run_completion_bounded();
  /// Builds the phase schedule for the configured completion-bounded kind.
  [[nodiscard]] workload::Schedule build_schedule() const;
  /// One telemetry window's sample of the run (the Telemetry plane's
  /// sampler callback).
  [[nodiscard]] obs::WindowObservables sample_telemetry(Cycle now);
  /// Copies the telemetry/flight-recorder roll-up into the result.
  void fill_telemetry_summary(SimResult& r);

  /// Closes the controller's open episode and copies its stats into the
  /// result (no-op without a controller).
  void fill_resilience_summary(SimResult& r, Cycle now);

  SimOptions opts_;
  des::Engine engine_;
  std::unique_ptr<obs::Hub> hub_;
  std::unique_ptr<resilience::DegradeController> degrade_ctrl_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<fault::FaultInjector> injector_;
  traffic::TrafficPattern pattern_;
  std::vector<std::unique_ptr<traffic::NodeSource>> sources_;
  std::unique_ptr<workload::PhaseEngine> phase_driver_;
  std::unique_ptr<workload::TenantFleet> fleet_;
  std::unique_ptr<traffic::Trace> trace_;
  std::unique_ptr<traffic::TraceReplayer> replayer_;
  double capacity_;

  // Measurement state.
  stats::Streaming latency_;
  std::unique_ptr<stats::Histogram> latency_hist_;
  std::uint64_t delivered_measured_ = 0;
  std::uint64_t labelled_generated_ = 0;
  std::uint64_t labelled_delivered_ = 0;
  /// Labelled packets the ARQ abandoned — the drain loop stops waiting for
  /// them (they can never arrive).
  std::uint64_t labelled_dead_ = 0;
  bool in_measurement_ = false;
  /// Trace-replay completion bookkeeping (kind = trace only).
  bool trace_done_ = false;
  Cycle trace_completion_ = 0;
  obs::MetricId m_latency_ = 0;
  obs::MetricId m_latency_hist_ = 0;
  obs::MetricId m_delivered_ = 0;
  /// Cached hub_->telemetry(); null (one branch per delivery) unless the
  /// plane is configured.
  obs::Telemetry* telemetry_ = nullptr;
  /// Delivered count at the last telemetry window boundary.
  std::uint64_t tele_last_delivered_ = 0;
};

/// Runs the same (pattern, load) point under all four network modes —
/// the building block of every figure bench.
struct ModeComparison {
  SimResult np_nb, p_nb, np_b, p_b;
};
[[nodiscard]] ModeComparison compare_modes(SimOptions base);

}  // namespace erapid::sim
