#include "sim/simulation.hpp"

#include <algorithm>

#include "obs/probe.hpp"

namespace erapid::sim {

Simulation::Simulation(const SimOptions& opts)
    : opts_(opts),
      engine_(opts.des_queue),
      pattern_(opts.pattern, opts.system.num_nodes(), opts.hotspot_fraction,
               NodeId{opts.hotspot_node}),
      capacity_(topology::CapacityModel(opts.system).uniform_capacity()) {
#if !defined(ERAPID_NO_OBS)
  // With obs off the hub stays null and every probe site reduces to one
  // branch: the event stream (and golden fixture) is untouched.
  if (opts_.obs.enabled) {
    hub_ = std::make_unique<obs::Hub>(opts_.obs);
    engine_.set_dispatch_hook(hub_.get());
    m_latency_ = hub_->metrics().series("sim.packet_latency");
    m_latency_hist_ = hub_->metrics().histogram("sim.packet_latency_hist");
    m_delivered_ = hub_->metrics().counter("sim.packets_delivered");
  }
#endif
  network_ = std::make_unique<Network>(engine_, opts_.system, opts_.reconfig,
                                       opts_.power_model, hub_.get());
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    recorder_ = std::make_unique<Recorder>(engine_, *network_, opts_.obs.counter_interval,
                                           hub_.get());
  }
#endif

  std::vector<optical::OpticalTerminal*> terminals;
  terminals.reserve(opts_.system.num_boards_total());
  for (std::uint32_t b = 0; b < opts_.system.num_boards_total(); ++b) {
    terminals.push_back(&network_->terminal(BoardId{b}));
  }
  std::vector<optical::Receiver*> receivers;
  receivers.reserve(static_cast<std::size_t>(opts_.system.num_boards_total()) *
                    opts_.system.num_wavelengths());
  for (std::uint32_t b = 0; b < opts_.system.num_boards_total(); ++b) {
    for (std::uint32_t w = 0; w < opts_.system.num_wavelengths(); ++w) {
      receivers.push_back(&network_->receiver(BoardId{b}, WavelengthId{w}));
    }
  }
  injector_ = std::make_unique<fault::FaultInjector>(
      engine_, network_->config(), network_->lane_map(), network_->reconfig_manager(),
      std::move(terminals), opts_.fault, hub_.get(), std::move(receivers));
  injector_->arm();

  network_->set_dead_letter_callback([this](const router::Packet& p, Cycle) {
    if (p.labelled) ++labelled_dead_;
  });

  // Upper edge must exceed post-saturation latencies (complement on a
  // static network queues labelled packets for ~100k cycles) or the
  // reported quantiles silently saturate at the histogram edge.
  latency_hist_ = std::make_unique<stats::Histogram>(0.0, 1048576.0, 8192);

  network_->set_delivery_callback([this](const router::Packet& p, Cycle now) {
    if (in_measurement_) ++delivered_measured_;
    ERAPID_COUNTER(hub_.get(), m_delivered_, 1);
    if (p.labelled) {
      ++labelled_delivered_;
      const auto lat = static_cast<double>(now - p.created);
      latency_.add(lat);
      latency_hist_->add(lat);
      ERAPID_OBSERVE(hub_.get(), m_latency_, lat);
      ERAPID_OBSERVE(hub_.get(), m_latency_hist_, lat);
    }
  });

  util::Rng master(opts_.seed);
  sources_.reserve(opts_.system.num_nodes());
  for (std::uint32_t n = 0; n < opts_.system.num_nodes(); ++n) {
    const NodeId node{n};
    sources_.push_back(std::make_unique<traffic::NodeSource>(
        engine_, pattern_, node, opts_.system.packet_flits, master.fork(),
        [this](const router::Packet& p, Cycle now) {
          if (p.labelled) ++labelled_generated_;
          network_->inject(p, now);
        }));
  }
}

SimResult Simulation::run() {
  SimResult r;
  r.capacity_pkt_node_cycle = capacity_;
  r.offered_fraction = opts_.load_fraction;
  r.offered_pkt_node_cycle = opts_.load_fraction * capacity_;

  network_->start();
  const double rate = r.offered_pkt_node_cycle;
  for (auto& s : sources_) s->start(rate);
#if !defined(ERAPID_NO_OBS)
  if (recorder_ != nullptr) recorder_->start();
#endif

  // ---- warmup ----
  ERAPID_TRACE_SPAN(hub_.get(), hub_->track_engine(), "phase.warmup", engine_.now(),
                    opts_.warmup_cycles, "");
  engine_.run_until(opts_.warmup_cycles);

  // ---- measurement ----
  ERAPID_TRACE_SPAN(hub_.get(), hub_->track_engine(), "phase.measure", engine_.now(),
                    opts_.measure_cycles, "");
  network_->meter().checkpoint(engine_.now());
  const units::MilliwattCycles active_energy_start = network_->active_energy_mw_cycles();
  in_measurement_ = true;
  for (auto& s : sources_) s->set_labelling(true);

  const Cycle measure_end = opts_.warmup_cycles + opts_.measure_cycles;
  engine_.run_until(measure_end);

  in_measurement_ = false;
  for (auto& s : sources_) s->set_labelling(false);
  r.power_avg_mw = network_->meter().average_mw(engine_.now()).value();
  r.active_power_avg_mw =
      units::average_power(network_->active_energy_mw_cycles() - active_energy_start,
                           static_cast<double>(opts_.measure_cycles))
          .value();

  // ---- drain: run until every labelled packet arrives (or the cap) ----
  ERAPID_TRACE_INSTANT(hub_.get(), hub_->track_engine(), "phase.drain", engine_.now(), "");
  const Cycle drain_end = measure_end + opts_.drain_limit;
  // Dead-lettered labelled packets can never arrive; waiting for them would
  // turn every ARQ exhaustion into a full drain-limit stall.
  while (labelled_delivered_ + labelled_dead_ < labelled_generated_ &&
         engine_.now() < drain_end) {
    engine_.run_until(std::min<Cycle>(engine_.now() + 1000, drain_end));
  }
  r.drained = labelled_delivered_ + labelled_dead_ >= labelled_generated_;

  for (auto& s : sources_) s->stop();

  // ---- metrics ----
  const auto nodes = static_cast<double>(opts_.system.num_nodes());
  const auto window = static_cast<double>(opts_.measure_cycles);
  r.accepted_pkt_node_cycle = static_cast<double>(delivered_measured_) / (nodes * window);
  r.accepted_fraction = r.accepted_pkt_node_cycle / capacity_;

  r.latency_avg = latency_.mean();
  r.latency_p50 = latency_hist_->quantile(0.50);
  r.latency_p95 = latency_hist_->quantile(0.95);
  r.latency_p99 = latency_hist_->quantile(0.99);
  r.latency_max = latency_.max();

  std::uint64_t generated = 0;
  for (const auto& s : sources_) generated += s->generated();
  r.packets_generated = generated;
  r.packets_delivered_measured = delivered_measured_;
  r.labelled_generated = labelled_generated_;
  r.labelled_delivered = labelled_delivered_;
  r.end_cycle = engine_.now();
  r.control = network_->reconfig_manager().counters();
  r.fault = injector_->stats();
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    if (recorder_ != nullptr) recorder_->stop();
    // Finalize the monitors before the snapshot so the monitor.violations
    // counter covers the end-of-run checks too.
    if (auto* mon = hub_->monitors()) {
      obs::FinalSample fin;
      fin.now = engine_.now();
      fin.accepted_fraction = r.accepted_fraction;
      fin.latency_p99 = r.latency_p99;
      mon->finalize(fin);
      r.monitors = mon->report();
      r.monitor_violations = mon->violations();
    }
    r.metrics = hub_->metrics().snapshot(engine_.now());
    hub_->close(engine_.now());
  }
#endif
  return r;
}

ModeComparison compare_modes(SimOptions base) {
  ModeComparison out;
  auto run_mode = [&](const reconfig::NetworkMode& mode) {
    SimOptions o = base;
    o.reconfig.mode = mode;
    Simulation sim(o);
    return sim.run();
  };
  out.np_nb = run_mode(reconfig::NetworkMode::np_nb());
  out.p_nb = run_mode(reconfig::NetworkMode::p_nb());
  out.np_b = run_mode(reconfig::NetworkMode::np_b());
  out.p_b = run_mode(reconfig::NetworkMode::p_b());
  return out;
}

}  // namespace erapid::sim
