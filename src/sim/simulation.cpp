#include "sim/simulation.hpp"

#include <algorithm>

#include "obs/probe.hpp"
#include "power/components.hpp"
#include "workload/collectives.hpp"
#include "workload/hpc_kernels.hpp"

namespace erapid::sim {

Simulation::Simulation(const SimOptions& opts)
    : opts_(opts),
      engine_(opts.des_queue),
      pattern_(opts.pattern, opts.system.num_nodes(), opts.hotspot_fraction,
               NodeId{opts.hotspot_node}),
      capacity_(topology::CapacityModel(opts.system).uniform_capacity()) {
  // Programmatically built SimOptions get the same cross-field validation
  // as INI-loaded ones.
  opts_.workload.validate();
  opts_.degrade.validate(opts_.obs, opts_.reconfig.mode.bandwidth_reconfig);
#if !defined(ERAPID_NO_OBS)
  // With obs off the hub stays null and every probe site reduces to one
  // branch: the event stream (and golden fixture) is untouched.
  if (opts_.obs.enabled) {
    hub_ = std::make_unique<obs::Hub>(opts_.obs);
    engine_.set_dispatch_hook(hub_.get());
    m_latency_ = hub_->metrics().series("sim.packet_latency");
    m_latency_hist_ = hub_->metrics().histogram("sim.packet_latency_hist");
    m_delivered_ = hub_->metrics().counter("sim.packets_delivered");
  }
  // The degradation controller exists only with a policy configured (and
  // validate() above guarantees obs is on then), so policy-free runs stay
  // byte-identical to builds without the resilience subsystem.
  if (opts_.degrade.any()) {
    degrade_ctrl_ = std::make_unique<resilience::DegradeController>(
        opts_.degrade, opts_.obs.monitors.power_cap_mw, hub_.get());
    if (auto* mon = hub_->monitors()) {
      mon->set_actuation_hook(
          [this](const char* name, Cycle now, double value, double threshold) {
            return degrade_ctrl_->on_violation(name, now, value, threshold);
          });
    }
  }
#endif
  network_ = std::make_unique<Network>(engine_, opts_.system, opts_.reconfig,
                                       opts_.power_model, hub_.get(),
                                       degrade_ctrl_.get());
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    recorder_ = std::make_unique<Recorder>(engine_, *network_, opts_.obs.counter_interval,
                                           hub_.get());
  }
#endif

  std::vector<optical::OpticalTerminal*> terminals;
  terminals.reserve(opts_.system.num_boards_total());
  for (std::uint32_t b = 0; b < opts_.system.num_boards_total(); ++b) {
    terminals.push_back(&network_->terminal(BoardId{b}));
  }
  std::vector<optical::Receiver*> receivers;
  receivers.reserve(static_cast<std::size_t>(opts_.system.num_boards_total()) *
                    opts_.system.num_wavelengths());
  for (std::uint32_t b = 0; b < opts_.system.num_boards_total(); ++b) {
    for (std::uint32_t w = 0; w < opts_.system.num_wavelengths(); ++w) {
      receivers.push_back(&network_->receiver(BoardId{b}, WavelengthId{w}));
    }
  }
  injector_ = std::make_unique<fault::FaultInjector>(
      engine_, network_->config(), network_->lane_map(), network_->reconfig_manager(),
      std::move(terminals), opts_.fault, hub_.get(), std::move(receivers));
  injector_->arm();

#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr && opts_.obs.telemetry_on()) {
    const std::uint32_t boards = opts_.system.num_boards_total();
    hub_->init_telemetry(engine_, boards,
                         [this](Cycle now) { return sample_telemetry(now); });
    telemetry_ = hub_->telemetry();
    obs::EnergyLedger* ledger = hub_->ledger();
    // Component split per DVS level: the quoted level total divides by the
    // analytic model's transmitter/receiver ratio at that operating point.
    const power::ComponentModel comp;
    const auto& pm = network_->power_model();
    for (const power::PowerLevel l : power::LinkPowerModel::kActiveLevels) {
      const double level_mw = pm.power_mw(l).value();
      const double tx = comp.transmitter_mw(pm.supply_v(l), pm.bitrate_gbps(l)).value();
      const double rx = comp.receiver_mw(pm.supply_v(l), pm.bitrate_gbps(l)).value();
      const double laser = tx + rx > 0.0 ? level_mw * (tx / (tx + rx)) : 0.0;
      ledger->set_laser_share(level_mw, laser);
    }
    // Tag every lane's meter slot with its owning board. Terminals hold no
    // self-row (a board never transmits to itself), so d == b is skipped.
    const std::uint32_t W = opts_.system.num_wavelengths();
    for (std::uint32_t b = 0; b < boards; ++b) {
      auto& term = network_->terminal(BoardId{b});
      for (std::uint32_t d = 0; d < boards; ++d) {
        if (d == b) continue;
        for (std::uint32_t w = 0; w < W; ++w) {
          ledger->tag_source(term.lane(BoardId{d}, WavelengthId{w}).meter_source(), b);
        }
      }
    }
    // Attach before any lane lights up (Network::start): from the first
    // power update on, the ledger mirrors the meter bitwise.
    network_->meter().attach_ledger(ledger);
  }
#endif

  network_->set_dead_letter_callback([this](const router::Packet& p, Cycle now) {
    if (p.labelled) ++labelled_dead_;
    // Abandoned packets count as resolved for workload completion —
    // otherwise one ARQ exhaustion would deadlock the phase machine.
    if (phase_driver_ != nullptr) phase_driver_->on_dead_letter(p, now);
    if (replayer_ != nullptr && !trace_done_ && replayer_->done() &&
        labelled_delivered_ + labelled_dead_ >= labelled_generated_) {
      trace_done_ = true;
      trace_completion_ = now;
    }
  });

  // Upper edge must exceed post-saturation latencies (complement on a
  // static network queues labelled packets for ~100k cycles) or the
  // reported quantiles silently saturate at the histogram edge.
  latency_hist_ = std::make_unique<stats::Histogram>(0.0, 1048576.0, 8192);

  network_->set_delivery_callback([this](const router::Packet& p, Cycle now) {
    if (in_measurement_) ++delivered_measured_;
    ERAPID_COUNTER(hub_.get(), m_delivered_, 1);
#if !defined(ERAPID_NO_OBS)
    // Traffic-matrix feed: payload bytes per (src board, dst board).
    if (telemetry_ != nullptr) {
      telemetry_->on_packet(opts_.system.board_of(p.src).value(),
                            opts_.system.board_of(p.dst).value(),
                            static_cast<std::uint64_t>(p.flits) *
                                (opts_.system.flit_bits / 8));
    }
#endif
    if (p.labelled) {
      ++labelled_delivered_;
      const auto lat = static_cast<double>(now - p.created);
      latency_.add(lat);
      latency_hist_->add(lat);
      ERAPID_OBSERVE(hub_.get(), m_latency_, lat);
      ERAPID_OBSERVE(hub_.get(), m_latency_hist_, lat);
    }
    if (phase_driver_ != nullptr) phase_driver_->on_delivered(p, now);
    if (fleet_ != nullptr) fleet_->on_delivered(p, now);
    if (replayer_ != nullptr && !trace_done_ && replayer_->done() &&
        labelled_delivered_ + labelled_dead_ >= labelled_generated_) {
      trace_done_ = true;
      trace_completion_ = now;
    }
  });

  util::Rng master(opts_.seed);
  const std::uint32_t num_nodes = opts_.system.num_nodes();
  auto inject = [this](const router::Packet& p, Cycle now) {
    if (p.labelled) ++labelled_generated_;
    network_->inject(p, now);
  };
  const auto& wl = opts_.workload;
  switch (wl.kind) {
    case workload::WorkloadKind::Bernoulli: {
      sources_.reserve(num_nodes);
      for (std::uint32_t n = 0; n < num_nodes; ++n) {
        sources_.push_back(std::make_unique<traffic::NodeSource>(
            engine_, pattern_, NodeId{n}, opts_.system.packet_flits, master.fork(),
            inject));
      }
      break;
    }
    case workload::WorkloadKind::Tenants: {
      workload::TenantFleetConfig tc;
      tc.num_nodes = num_nodes;
      tc.tenants = wl.tenants;
      tc.packet_flits = opts_.system.packet_flits;
      tc.flit_bytes = opts_.system.flit_bits / 8;
      tc.session_rate_pkt_cycle = wl.tenant_load * capacity_ * num_nodes;
      tc.session_cycles = wl.session_cycles;
      tc.session_gap_mean = wl.session_gap_mean;
      tc.hotspot_fraction = opts_.hotspot_fraction;
      tc.hotspot_node = opts_.hotspot_node;
      fleet_ = std::make_unique<workload::TenantFleet>(engine_, tc, wl.tenant_mix, master,
                                                       inject, hub_.get());
      break;
    }
    case workload::WorkloadKind::Trace: {
      trace_ = std::make_unique<traffic::Trace>(
          traffic::Trace::load_file(wl.trace_file, num_nodes));
      replayer_ = std::make_unique<traffic::TraceReplayer>(
          engine_, *trace_, opts_.system.packet_flits, inject);
      // Every replayed packet is labelled: completion is detected through
      // the labelled-delivery accounting.
      replayer_->set_label_window(0, kNeverCycle);
      break;
    }
    default: {
      workload::PhaseEngineConfig pc;
      pc.num_nodes = num_nodes;
      pc.default_packet_flits = opts_.system.packet_flits;
      pc.flit_bytes = opts_.system.flit_bits / 8;
      pc.seed = opts_.seed;
      phase_driver_ = std::make_unique<workload::PhaseEngine>(
          engine_, build_schedule(), pc, inject, hub_.get());
      break;
    }
  }
}

workload::Schedule Simulation::build_schedule() const {
  const auto& wl = opts_.workload;
  const std::uint32_t n = opts_.system.num_nodes();
  const double rate = wl.phase_rate * capacity_;
  switch (wl.kind) {
    case workload::WorkloadKind::AllReduce:
      return workload::make_allreduce(n, wl.volume_packets, rate, wl.episodes);
    case workload::WorkloadKind::AllToAll:
      return workload::make_alltoall(n, wl.volume_packets, rate, wl.episodes);
    case workload::WorkloadKind::Phases:
      return workload::make_phase_schedule(wl.phases, n, capacity_, wl.phase_rate,
                                           wl.episodes, opts_.hotspot_fraction,
                                           opts_.hotspot_node);
    case workload::WorkloadKind::Ptrans:
      return workload::make_ptrans(n, wl.volume_packets, rate, wl.episodes, wl.gap_cycles);
    case workload::WorkloadKind::Fft:
      return workload::make_fft(n, wl.volume_packets, rate, wl.episodes);
    case workload::WorkloadKind::RandomAccess:
      return workload::make_randomaccess(n, wl.volume_packets, rate, wl.episodes);
    case workload::WorkloadKind::Beff:
      return workload::make_beff(n, wl.volume_packets, rate, wl.episodes,
                                 opts_.system.packet_flits);
    case workload::WorkloadKind::Bernoulli:
    case workload::WorkloadKind::Tenants:
    case workload::WorkloadKind::Trace:
      break;
  }
  ERAPID_UNREACHABLE("no phase schedule for workload kind '"
                     << workload::kind_name(opts_.workload.kind) << "'");
}

SimResult Simulation::run() {
  if (opts_.workload.completion_bounded()) return run_completion_bounded();
  return run_open_loop();
}

SimResult Simulation::run_open_loop() {
  SimResult r;
  r.capacity_pkt_node_cycle = capacity_;
  r.offered_fraction = opts_.load_fraction;
  r.offered_pkt_node_cycle = opts_.load_fraction * capacity_;

  network_->start();
  const double rate = r.offered_pkt_node_cycle;
  for (auto& s : sources_) s->start(rate);
  if (fleet_ != nullptr) fleet_->start();
#if !defined(ERAPID_NO_OBS)
  if (recorder_ != nullptr) recorder_->start();
  if (telemetry_ != nullptr) telemetry_->start();
#endif

  // ---- warmup ----
  ERAPID_TRACE_SPAN(hub_.get(), hub_->track_engine(), "phase.warmup", engine_.now(),
                    opts_.warmup_cycles, "");
  engine_.run_until(opts_.warmup_cycles);

  // ---- measurement ----
  ERAPID_TRACE_SPAN(hub_.get(), hub_->track_engine(), "phase.measure", engine_.now(),
                    opts_.measure_cycles, "");
  network_->meter().checkpoint(engine_.now());
  const units::MilliwattCycles active_energy_start = network_->active_energy_mw_cycles();
  in_measurement_ = true;
  for (auto& s : sources_) s->set_labelling(true);
  if (fleet_ != nullptr) fleet_->set_labelling(true);

  const Cycle measure_end = opts_.warmup_cycles + opts_.measure_cycles;
  engine_.run_until(measure_end);

  in_measurement_ = false;
  for (auto& s : sources_) s->set_labelling(false);
  if (fleet_ != nullptr) fleet_->set_labelling(false);
  r.power_avg_mw = network_->meter().average_mw(engine_.now()).value();
  r.active_power_avg_mw =
      units::average_power(network_->active_energy_mw_cycles() - active_energy_start,
                           static_cast<double>(opts_.measure_cycles))
          .value();

  // ---- drain: run until every labelled packet arrives (or the cap) ----
  ERAPID_TRACE_INSTANT(hub_.get(), hub_->track_engine(), "phase.drain", engine_.now(), "");
  const Cycle drain_end = measure_end + opts_.drain_limit;
  // Dead-lettered labelled packets can never arrive; waiting for them would
  // turn every ARQ exhaustion into a full drain-limit stall.
  while (labelled_delivered_ + labelled_dead_ < labelled_generated_ &&
         engine_.now() < drain_end) {
    engine_.run_until(std::min<Cycle>(engine_.now() + 1000, drain_end));
  }
  r.drained = labelled_delivered_ + labelled_dead_ >= labelled_generated_;

  for (auto& s : sources_) s->stop();
  if (fleet_ != nullptr) fleet_->stop();

  // ---- metrics ----
  const auto nodes = static_cast<double>(opts_.system.num_nodes());
  const auto window = static_cast<double>(opts_.measure_cycles);
  r.accepted_pkt_node_cycle = static_cast<double>(delivered_measured_) / (nodes * window);
  r.accepted_fraction = r.accepted_pkt_node_cycle / capacity_;

  r.latency_avg = latency_.mean();
  r.latency_p50 = latency_hist_->quantile(0.50);
  r.latency_p95 = latency_hist_->quantile(0.95);
  r.latency_p99 = latency_hist_->quantile(0.99);
  r.latency_max = latency_.max();

  std::uint64_t generated = 0;
  for (const auto& s : sources_) generated += s->generated();
  if (fleet_ != nullptr) generated += fleet_->generated();
  r.packets_generated = generated;
  r.packets_delivered_measured = delivered_measured_;
  r.labelled_generated = labelled_generated_;
  r.labelled_delivered = labelled_delivered_;
  r.end_cycle = engine_.now();
  r.control = network_->reconfig_manager().counters();
  r.fault = injector_->stats();
  if (fleet_ != nullptr) r.workload = fleet_->stats();
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    if (recorder_ != nullptr) recorder_->stop();
    if (telemetry_ != nullptr) {
      telemetry_->finish(engine_.now(),
                         network_->meter().energy_mw_cycles(engine_.now()).value());
    }
    if (fleet_ != nullptr) {
      // Per-tenant delivered-bytes distribution (one sample per tenant,
      // tenant order — deterministic).
      const obs::MetricId id = hub_->metrics().series("workload.tenant_bytes");
      for (const std::uint64_t b : r.workload.tenant_delivered_bytes) {
        hub_->metrics().observe(id, static_cast<double>(b));
      }
    }
    // Finalize the monitors before the snapshot so the monitor.violations
    // counter covers the end-of-run checks too.
    if (auto* mon = hub_->monitors()) {
      obs::FinalSample fin;
      fin.now = engine_.now();
      fin.accepted_fraction = r.accepted_fraction;
      fin.latency_p99 = r.latency_p99;
      mon->finalize(fin);
      r.monitors = mon->report();
      r.monitor_violations = mon->violations();
    }
    fill_resilience_summary(r, engine_.now());
    fill_telemetry_summary(r);
    r.metrics = hub_->metrics().snapshot(engine_.now());
    hub_->close(engine_.now());
  }
#endif
  return r;
}

SimResult Simulation::run_completion_bounded() {
  SimResult r;
  r.capacity_pkt_node_cycle = capacity_;
  // Offered load of a completion-bounded workload is its injection pace.
  r.offered_fraction = opts_.workload.phase_rate;
  r.offered_pkt_node_cycle = opts_.workload.phase_rate * capacity_;

  network_->start();
#if !defined(ERAPID_NO_OBS)
  if (recorder_ != nullptr) recorder_->start();
  if (telemetry_ != nullptr) telemetry_->start();
#endif
  network_->meter().checkpoint(engine_.now());
  const units::MilliwattCycles active_energy_start = network_->active_energy_mw_cycles();
  in_measurement_ = true;
  ERAPID_TRACE_INSTANT(hub_.get(), hub_->track_engine(), "phase.workload", engine_.now(),
                       "");

  if (phase_driver_ != nullptr) phase_driver_->start();
  if (replayer_ != nullptr) replayer_->start();

  // ---- run to delivered-byte completion (or the horizon cap) ----
  const Cycle horizon = opts_.workload.horizon_cycles;
  const auto done = [this] {
    return phase_driver_ != nullptr ? phase_driver_->done() : trace_done_;
  };
  while (!done() && engine_.now() < horizon) {
    engine_.run_until(std::min<Cycle>(engine_.now() + 1000, horizon));
  }
  in_measurement_ = false;

  if (phase_driver_ != nullptr) {
    r.workload = phase_driver_->stats();
    r.workload.kind = std::string(workload::kind_name(opts_.workload.kind));
  } else {
    r.workload.kind = std::string(workload::kind_name(workload::WorkloadKind::Trace));
    r.workload.packets_injected = replayer_->injected();
    r.workload.packets_delivered = labelled_delivered_;
    r.workload.packets_dead = labelled_dead_;
    r.workload.bytes_delivered = labelled_delivered_ *
                                 static_cast<std::uint64_t>(opts_.system.packet_flits) *
                                 (opts_.system.flit_bits / 8);
    r.workload.completed = trace_done_;
    r.workload.completion_cycle = trace_completion_;
  }
  r.drained = r.workload.completed;

  // ---- metrics: accepted throughput over the makespan ----
  const auto nodes = static_cast<double>(opts_.system.num_nodes());
  const Cycle makespan =
      r.workload.completed ? r.workload.completion_cycle : engine_.now();
  const double window = std::max<double>(1.0, static_cast<double>(makespan));
  r.accepted_pkt_node_cycle = static_cast<double>(delivered_measured_) / (nodes * window);
  r.accepted_fraction = r.accepted_pkt_node_cycle / capacity_;
  r.power_avg_mw = network_->meter().average_mw(engine_.now()).value();
  r.active_power_avg_mw =
      units::average_power(network_->active_energy_mw_cycles() - active_energy_start,
                           std::max<double>(1.0, static_cast<double>(engine_.now())))
          .value();

  r.latency_avg = latency_.mean();
  r.latency_p50 = latency_hist_->quantile(0.50);
  r.latency_p95 = latency_hist_->quantile(0.95);
  r.latency_p99 = latency_hist_->quantile(0.99);
  r.latency_max = latency_.max();

  r.packets_generated = r.workload.packets_injected;
  r.packets_delivered_measured = delivered_measured_;
  r.labelled_generated = labelled_generated_;
  r.labelled_delivered = labelled_delivered_;
  // The run *ends* at completion; engine_.now() overshoots to the next
  // 1000-cycle polling boundary, which is a harness artifact, not a result.
  r.end_cycle = makespan;
  r.control = network_->reconfig_manager().counters();
  r.fault = injector_->stats();
#if !defined(ERAPID_NO_OBS)
  if (hub_ != nullptr) {
    if (recorder_ != nullptr) recorder_->stop();
    if (telemetry_ != nullptr) {
      telemetry_->finish(engine_.now(),
                         network_->meter().energy_mw_cycles(engine_.now()).value());
    }
    if (auto* mon = hub_->monitors()) {
      obs::FinalSample fin;
      fin.now = engine_.now();
      fin.accepted_fraction = r.accepted_fraction;
      fin.latency_p99 = r.latency_p99;
      fin.workload_ran = true;
      fin.workload_completed = r.workload.completed;
      fin.workload_completion = r.workload.completion_cycle;
      mon->finalize(fin);
      r.monitors = mon->report();
      r.monitor_violations = mon->violations();
    }
    fill_resilience_summary(r, engine_.now());
    fill_telemetry_summary(r);
    r.metrics = hub_->metrics().snapshot(engine_.now());
    hub_->close(engine_.now());
  }
#endif
  return r;
}

obs::WindowObservables Simulation::sample_telemetry(Cycle now) {
  obs::WindowObservables o;
  const std::uint64_t delivered = network_->packets_delivered();
  const std::uint64_t in_window = delivered - tele_last_delivered_;
  tele_last_delivered_ = delivered;
  const auto nodes = static_cast<double>(opts_.system.num_nodes());
  const auto window = static_cast<double>(opts_.obs.telemetry_window);
  // Utilization = delivered packets per node-cycle, as a fraction of the
  // analytic capacity N_c — the same normalization the figures use.
  o.utilization =
      capacity_ > 0.0 ? static_cast<double>(in_window) / (nodes * window * capacity_) : 0.0;
  o.delivered = delivered;
  o.lanes_lit = network_->lane_map().lit_count();
  o.lanes_total = opts_.system.num_boards_total() * opts_.system.num_wavelengths();
  o.queue_depth = network_->total_source_backlog();
  o.power_mw = network_->meter().instantaneous_mw().value();
  o.energy_mw_cycles = network_->meter().energy_mw_cycles(now).value();
  if (phase_driver_ != nullptr) o.workload_phase = phase_driver_->active_phase();
  return o;
}

void Simulation::fill_resilience_summary(SimResult& r, Cycle now) {
  if (degrade_ctrl_ == nullptr) return;
  degrade_ctrl_->finalize(now);
  const auto& st = degrade_ctrl_->stats();
  auto& out = r.resilience;
  out.active = true;
  out.engaged = st.engaged;
  out.peak_stage = resilience::stage_name(st.peak_stage);
  out.steps_down = st.steps_down;
  out.steps_up = st.steps_up;
  out.lanes_shed = st.lanes_shed;
  out.lanes_restored = st.lanes_restored;
  out.lanes_slept = st.lanes_slept;
  out.episodes = st.episodes;
  out.time_degraded = st.time_degraded;
  out.suppressed_violations = st.suppressed_violations;
}

void Simulation::fill_telemetry_summary(SimResult& r) {
#if !defined(ERAPID_NO_OBS)
  if (hub_ == nullptr) return;
  auto& t = r.telemetry;
  if (const auto* fr = hub_->flight()) {
    t.active = true;
    t.flight_events = fr->events_recorded();
    t.flight_dumps = fr->dumps();
  }
  if (telemetry_ != nullptr) {
    t.active = true;
    t.windows = telemetry_->windows();
    t.phase_changes = telemetry_->phase_changes();
    t.final_phase = telemetry_->phase_id();
    const auto& tm = telemetry_->tm();
    t.tm_bytes = tm.total_bytes();
    t.tm_packets = tm.total_packets();
    t.tm_flows = tm.flows();
    t.tm_skew = tm.total_skew();
    const Cycle now = engine_.now();
    obs::EnergyLedger* ledger = hub_->ledger();
    t.energy_total_mw_cycles = ledger->total_mw_cycles(now);
    for (std::uint32_t b = 0; b < ledger->boards(); ++b) {
      const obs::BoardEnergy e = ledger->board_energy(b, now);
      t.energy_laser_mw_cycles += e.laser_mw_cycles;
      t.energy_serdes_mw_cycles += e.serdes_mw_cycles;
    }
  }
#else
  (void)r;
#endif
}

ModeComparison compare_modes(SimOptions base) {
  ModeComparison out;
  auto run_mode = [&](const reconfig::NetworkMode& mode) {
    SimOptions o = base;
    o.reconfig.mode = mode;
    Simulation sim(o);
    return sim.run();
  };
  out.np_nb = run_mode(reconfig::NetworkMode::np_nb());
  out.p_nb = run_mode(reconfig::NetworkMode::p_nb());
  out.np_b = run_mode(reconfig::NetworkMode::np_b());
  out.p_b = run_mode(reconfig::NetworkMode::p_b());
  return out;
}

}  // namespace erapid::sim
