// Network-wide energy accounting.
//
// Each lane registers its instantaneous power draw (which changes on DVS
// transitions and laser on/off events); the meter time-integrates the sum
// so benches can report the paper's "overall power consumption" panel as
// the time-averaged optical power over the measurement interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/hub.hpp"
#include "obs/probe.hpp"
#include "stats/time_weighted.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace erapid::power {

/// Aggregates per-source power signals into a network total.
class EnergyMeter {
 public:
  EnergyMeter() : total_(0, 0.0) {}

  /// Registers a new power source; returns its slot id. Sources must be
  /// registered before the simulation starts (the initial level is folded
  /// into the total at t = 0).
  std::uint32_t add_source(units::Milliwatts initial = units::Milliwatts{0.0}) {
    ERAPID_REQUIRE(initial.value() >= 0.0,
                   "initial power draw cannot be negative: " << initial.value() << " mW");
    levels_.push_back(initial.value());
    total_.add(0, initial.value());
    return static_cast<std::uint32_t>(levels_.size() - 1);
  }

  /// Mirrors every network-power change onto the hub: a "power.total_mw"
  /// trace counter track (the energy timeline) and a time-weighted gauge.
  /// `hub` is nullable by design (observability off).
  // erapid-analyze: allow(contract-coverage)
  void attach_hub(obs::Hub* hub) {
    hub_ = hub;
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr && hub_->enabled()) {
      m_total_ = hub_->metrics().gauge("power.total_mw");
    }
#endif
  }

  /// Source `id` draws `p` milliwatts from cycle `now` onwards.
  void set_power(std::uint32_t id, Cycle now, units::Milliwatts p) {
    ERAPID_REQUIRE(id < levels_.size(),
                   "unregistered power source id=" << id << " (have " << levels_.size() << ")");
    const double mw = p.value();
    ERAPID_REQUIRE(mw >= 0.0, "power draw cannot be negative: " << mw << " mW");
    const double delta = mw - levels_[id];
    if (delta == 0.0) return;
    levels_[id] = mw;
    total_.add(now, delta);
    ERAPID_GAUGE_SET(hub_, m_total_, now, total_.level());
    ERAPID_TRACE_COUNTER(hub_, hub_->track_power(), "power.total_mw", now, total_.level());
  }

  /// Instantaneous network power.
  [[nodiscard]] units::Milliwatts instantaneous_mw() const {
    return units::Milliwatts{total_.level()};
  }

  /// Marks the start of the measurement window.
  void checkpoint(Cycle now) { window_start_ = now, total_.checkpoint(now); }

  /// Average power over [checkpoint, now].
  [[nodiscard]] units::Milliwatts average_mw(Cycle now) const {
    return units::Milliwatts{total_.average(window_start_, now)};
  }

  /// Energy (power integrated over simulated cycles) since construction.
  [[nodiscard]] units::MilliwattCycles energy_mw_cycles(Cycle now) const {
    return units::MilliwattCycles{total_.integral(now)};
  }

  [[nodiscard]] std::size_t sources() const { return levels_.size(); }

 private:
  std::vector<double> levels_;
  stats::TimeWeighted total_;
  Cycle window_start_ = 0;
  obs::Hub* hub_ = nullptr;
  obs::MetricId m_total_ = 0;
};

}  // namespace erapid::power
