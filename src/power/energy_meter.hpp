// Network-wide energy accounting.
//
// Each lane registers its instantaneous power draw (which changes on DVS
// transitions and laser on/off events); the meter time-integrates the sum
// so benches can report the paper's "overall power consumption" panel as
// the time-averaged optical power over the measurement interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/energy_ledger.hpp"
#include "obs/hub.hpp"
#include "obs/probe.hpp"
#include "stats/time_weighted.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace erapid::power {

/// Aggregates per-source power signals into a network total.
class EnergyMeter {
 public:
  EnergyMeter() : total_(0, 0.0) {}

  /// Registers a new power source; returns its slot id. Sources must be
  /// registered before the simulation starts (the initial level is folded
  /// into the total at t = 0).
  std::uint32_t add_source(units::Milliwatts initial = units::Milliwatts{0.0}) {
    ERAPID_REQUIRE(initial.value() >= 0.0,
                   "initial power draw cannot be negative: " << initial.value() << " mW");
    levels_.push_back(initial.value());
    total_.add(0, initial.value());
    return static_cast<std::uint32_t>(levels_.size() - 1);
  }

  /// Mirrors every network-power change onto the hub: a "power.total_mw"
  /// trace counter track (the energy timeline) and a time-weighted gauge.
  /// `hub` is nullable by design (observability off).
  // erapid-analyze: allow(contract-coverage)
  void attach_hub(obs::Hub* hub) {
    hub_ = hub;
#if !defined(ERAPID_NO_OBS)
    if (hub_ != nullptr && hub_->enabled()) {
      m_total_ = hub_->metrics().gauge("power.total_mw");
    }
#endif
  }

  /// Mirrors every accepted power update (and checkpoint) onto the energy
  /// attribution ledger. `ledger` is nullable by design (telemetry off).
  /// Sources present before attachment are replayed so the mirror starts
  /// from the same levels the meter integrated at t = 0.
  // erapid-analyze: allow(contract-coverage)
  void attach_ledger(obs::EnergyLedger* ledger) {
    ledger_ = ledger;
    if (ledger_ != nullptr) {
      for (std::uint32_t id = 0; id < levels_.size(); ++id) {
        if (levels_[id] != 0.0) ledger_->on_set_power(id, 0, levels_[id]);
      }
    }
  }

  /// Source `id` draws `p` milliwatts from cycle `now` onwards.
  void set_power(std::uint32_t id, Cycle now, units::Milliwatts p) {
    ERAPID_REQUIRE(id < levels_.size(),
                   "unregistered power source id=" << id << " (have " << levels_.size() << ")");
    const double mw = p.value();
    ERAPID_REQUIRE(mw >= 0.0, "power draw cannot be negative: " << mw << " mW");
    const double delta = mw - levels_[id];
    if (delta == 0.0) return;
    levels_[id] = mw;
    total_.add(now, delta);
    if (ledger_ != nullptr) ledger_->on_set_power(id, now, mw);
    ERAPID_GAUGE_SET(hub_, m_total_, now, total_.level());
    ERAPID_TRACE_COUNTER(hub_, hub_->track_power(), "power.total_mw", now, total_.level());
  }

  /// Instantaneous network power.
  [[nodiscard]] units::Milliwatts instantaneous_mw() const {
    return units::Milliwatts{total_.level()};
  }

  /// Marks the start of the measurement window. The ledger mirror must
  /// checkpoint too: a checkpoint partitions the integral's float sum, and
  /// (a·dt1 + a·dt2) is not bitwise a·(dt1 + dt2).
  void checkpoint(Cycle now) {
    ERAPID_EXPECT(now >= window_start_, "checkpoint cannot move the window backwards");
    window_start_ = now, total_.checkpoint(now);
    if (ledger_ != nullptr) ledger_->on_checkpoint(now);
  }

  /// Average power over [checkpoint, now].
  [[nodiscard]] units::Milliwatts average_mw(Cycle now) const {
    return units::Milliwatts{total_.average(window_start_, now)};
  }

  /// Energy (power integrated over simulated cycles) since construction.
  [[nodiscard]] units::MilliwattCycles energy_mw_cycles(Cycle now) const {
    return units::MilliwattCycles{total_.integral(now)};
  }

  [[nodiscard]] std::size_t sources() const { return levels_.size(); }

 private:
  std::vector<double> levels_;
  stats::TimeWeighted total_;
  Cycle window_start_ = 0;
  obs::Hub* hub_ = nullptr;
  obs::EnergyLedger* ledger_ = nullptr;
  obs::MetricId m_total_ = 0;
};

}  // namespace erapid::power
