// Optical link power model — paper §3.1 and §4.1 (Table 1).
//
// Each lane operates at one of three DVS power levels, or OFF (dynamic link
// shutdown). The paper quotes measured totals per level:
//
//   level   bit rate   V_DD    total link power
//   P_low   2.5 Gb/s   0.45 V   8.60 mW
//   P_mid   3.3 Gb/s   0.60 V  26.00 mW
//   P_high  5.0 Gb/s   0.90 V  43.03 mW
//
// The simulator consumes these per-state totals. The analytic component
// breakdown (VCSEL ∝ V, driver ∝ V²·BR, TIA ∝ V·BR, CDR ∝ V²·BR,
// photodetector) lives in components.hpp and regenerates Table 1.
//
// Transition timing (§4.1): after the transmitter injects the bit-rate
// control packet, the link is disabled for the slow *voltage* transition,
// conservatively 65 cycles; a frequency-only CDR relock takes 12 cycles.
// Waking a dark laser also pays the full 65-cycle penalty.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/expect.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace erapid::power {

/// Discrete lane power states. Order matters: ++/-- step between levels.
enum class PowerLevel : std::uint8_t { Off = 0, Low = 1, Mid = 2, High = 3 };

[[nodiscard]] constexpr std::string_view to_string(PowerLevel l) {
  switch (l) {
    case PowerLevel::Off: return "OFF";
    case PowerLevel::Low: return "P_low";
    case PowerLevel::Mid: return "P_mid";
    case PowerLevel::High: return "P_high";
  }
  ERAPID_UNREACHABLE("unmodeled power level " << static_cast<int>(l));
}

/// One step up, saturating at High.
[[nodiscard]] constexpr PowerLevel step_up(PowerLevel l) {
  return l == PowerLevel::High ? l : static_cast<PowerLevel>(static_cast<std::uint8_t>(l) + 1);
}

/// One step down, saturating at Low (shutdown to Off is a separate,
/// explicit DLS decision, not a DVS step).
[[nodiscard]] constexpr PowerLevel step_down(PowerLevel l) {
  return (l == PowerLevel::Off || l == PowerLevel::Low)
             ? (l == PowerLevel::Off ? l : PowerLevel::Low)
             : static_cast<PowerLevel>(static_cast<std::uint8_t>(l) - 1);
}

/// Per-level electrical characteristics and transition latencies.
class LinkPowerModel {
 public:
  /// Paper Table 1 defaults.
  LinkPowerModel() = default;

  [[nodiscard]] units::GbitsPerSec bitrate_gbps(PowerLevel l) const {
    return units::GbitsPerSec{table_[idx(l)].bitrate_gbps};
  }
  [[nodiscard]] units::Volts supply_v(PowerLevel l) const {
    return units::Volts{table_[idx(l)].supply_v};
  }
  [[nodiscard]] units::Milliwatts power_mw(PowerLevel l) const {
    return units::Milliwatts{table_[idx(l)].power_mw};
  }

  /// Lane pause (cycles) when moving `from` → `to`. Voltage changes
  /// dominate (65 cycles); equal-voltage moves need only the 12-cycle CDR
  /// relock; no-ops are free.
  [[nodiscard]] CycleDelta transition_cycles(PowerLevel from, PowerLevel to) const {
    if (from == to) return 0;
    if (supply_v(from) == supply_v(to)) return freq_relock_cycles_;
    return voltage_transition_cycles_;
  }

  [[nodiscard]] CycleDelta voltage_transition_cycles() const { return voltage_transition_cycles_; }
  [[nodiscard]] CycleDelta freq_relock_cycles() const { return freq_relock_cycles_; }

  /// Overrides for ablation studies and non-optical baselines (e.g. a
  /// fixed-rate electrical SerDes link pins all levels to one rate).
  void set_power_mw(PowerLevel l, units::Milliwatts mw) {
    ERAPID_REQUIRE(mw.value() >= 0.0,
                   "link power cannot be negative: " << mw.value() << " mW");
    table_[idx(l)].power_mw = mw.value();
  }
  void set_bitrate_gbps(PowerLevel l, units::GbitsPerSec gbps) {
    ERAPID_REQUIRE(gbps.value() >= 0.0,
                   "bit rate cannot be negative: " << gbps.value() << " Gb/s");
    table_[idx(l)].bitrate_gbps = gbps.value();
  }
  void set_supply_v(PowerLevel l, units::Volts v) {
    ERAPID_REQUIRE(v.value() >= 0.0,
                   "supply voltage cannot be negative: " << v.value() << " V");
    table_[idx(l)].supply_v = v.value();
  }
  void set_transition_cycles(CycleDelta voltage, CycleDelta freq) {
    ERAPID_REQUIRE(voltage >= freq, "voltage transition (" << voltage
                                                           << " cycles) cannot be faster than "
                                                              "frequency relock ("
                                                           << freq << " cycles)");
    voltage_transition_cycles_ = voltage;
    freq_relock_cycles_ = freq;
  }

  static constexpr std::array kActiveLevels = {PowerLevel::Low, PowerLevel::Mid,
                                               PowerLevel::High};

 private:
  struct LevelSpec {
    double bitrate_gbps = 0.0;
    double supply_v = 0.0;
    double power_mw = 0.0;
  };

  /// Maps a level to its table slot; rejects raw values outside the DVS
  /// bounds [Off, High] (a corrupted message or bad cast would otherwise
  /// read past the table).
  static std::size_t idx(PowerLevel l) {
    ERAPID_REQUIRE(static_cast<std::uint8_t>(l) <= static_cast<std::uint8_t>(PowerLevel::High),
                   "power level outside DVS bounds: " << static_cast<int>(l));
    return static_cast<std::size_t>(l);
  }

  std::array<LevelSpec, 4> table_{{
      {0.0, 0.0, 0.0},      // Off: laser and receiver dark
      {2.5, 0.45, 8.60},    // P_low
      {3.3, 0.60, 26.00},   // P_mid
      {5.0, 0.90, 43.03},   // P_high
  }};
  CycleDelta voltage_transition_cycles_ = 65;
  CycleDelta freq_relock_cycles_ = 12;
};

}  // namespace erapid::power
