#include "power/components.hpp"

namespace erapid::power {

namespace {
// Normalized scaling helpers relative to the anchor point.
double lin_v(units::Volts v) { return v.value() / 0.9; }
double sq_v(units::Volts v) { return (v.value() / 0.9) * (v.value() / 0.9); }
double lin_br(units::GbitsPerSec br) { return br.value() / 5.0; }
}  // namespace

std::vector<ComponentPower> ComponentModel::breakdown(units::Volts v,
                                                      units::GbitsPerSec br) const {
  return {
      {"VCSEL", units::Milliwatts{kVcsel0 * lin_v(v)}},
      {"VCSEL driver", units::Milliwatts{kDriver0 * sq_v(v) * lin_br(br)}},
      {"photodetector", units::Milliwatts{kPhotodet0 * lin_v(v) * lin_br(br)}},
      {"TIA", units::Milliwatts{kTia0 * lin_v(v) * lin_br(br)}},
      {"CDR", units::Milliwatts{kCdr0 * sq_v(v) * lin_br(br)}},
  };
}

units::Milliwatts ComponentModel::total_mw(units::Volts v, units::GbitsPerSec br) const {
  units::Milliwatts sum{0.0};
  for (const auto& c : breakdown(v, br)) sum += c.power;
  return sum;
}

units::Milliwatts ComponentModel::transmitter_mw(units::Volts v, units::GbitsPerSec br) const {
  const auto b = breakdown(v, br);
  return b[0].power + b[1].power;
}

units::Milliwatts ComponentModel::receiver_mw(units::Volts v, units::GbitsPerSec br) const {
  const auto b = breakdown(v, br);
  return b[2].power + b[3].power + b[4].power;
}

}  // namespace erapid::power
