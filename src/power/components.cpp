#include "power/components.hpp"

namespace erapid::power {

namespace {
// Normalized scaling helpers relative to the anchor point.
double lin_v(double v) { return v / 0.9; }
double sq_v(double v) { return (v / 0.9) * (v / 0.9); }
double lin_br(double br) { return br / 5.0; }
}  // namespace

std::vector<ComponentPower> ComponentModel::breakdown(double v, double br) const {
  return {
      {"VCSEL", kVcsel0 * lin_v(v)},
      {"VCSEL driver", kDriver0 * sq_v(v) * lin_br(br)},
      {"photodetector", kPhotodet0 * lin_v(v) * lin_br(br)},
      {"TIA", kTia0 * lin_v(v) * lin_br(br)},
      {"CDR", kCdr0 * sq_v(v) * lin_br(br)},
  };
}

double ComponentModel::total_mw(double v, double br) const {
  double sum = 0.0;
  for (const auto& c : breakdown(v, br)) sum += c.milliwatts;
  return sum;
}

double ComponentModel::transmitter_mw(double v, double br) const {
  const auto b = breakdown(v, br);
  return b[0].milliwatts + b[1].milliwatts;
}

double ComponentModel::receiver_mw(double v, double br) const {
  const auto b = breakdown(v, br);
  return b[2].milliwatts + b[3].milliwatts + b[4].milliwatts;
}

}  // namespace erapid::power
