// Component-level optical link power breakdown — regenerates Table 1.
//
// Scaling laws (paper §3.1, following Chen et al. [12] and Kibar et al.
// [16]):
//
//   VCSEL           ∝ V_DD            (bias/modulation current driven)
//   VCSEL driver    ∝ V_DD² · BR      (CV²f switching)
//   photodetector   ∝ V_DD · BR
//   TIA             ∝ V_DD · BR       (I_ds · V_DD with I_ds ∝ BR at fixed
//                                      sensitivity)
//   CDR             ∝ V_DD² · BR      (CV²f, C_CDR = 9.26 pF)
//
// Coefficients are calibrated so that at the P_high operating point
// (5 Gb/s, 0.9 V) each component reproduces the paper's quoted values:
// VCSEL 1.5 µW, driver 1.23 mW, photodetector 1.4 µW, TIA 25.02 mW, CDR
// 17.05 mW (total 43.3 mW ≈ the quoted 43.03 mW link total; the residual
// is the paper's own rounding). The quoted P_low total (8.6 mW at
// 2.5 Gb/s/0.45 V) falls out of the scaling laws to within 1%; the quoted
// P_mid total (26 mW) includes margin the paper does not break down, which
// is why the *simulator* consumes the quoted per-state totals
// (link_power.hpp) while this model documents the physics.
#pragma once

#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace erapid::power {

/// One component's power at an operating point.
struct ComponentPower {
  std::string_view name;
  units::Milliwatts power;
};

/// Analytic per-component link power model.
class ComponentModel {
 public:
  /// Calibrated to the paper's P_high anchors (see file comment).
  ComponentModel() = default;

  /// Component breakdown at supply voltage `v` and bit rate `br`.
  /// Transmitter = VCSEL + driver; receiver = PD + TIA + CDR.
  [[nodiscard]] std::vector<ComponentPower> breakdown(units::Volts v,
                                                      units::GbitsPerSec br) const;

  /// Total link power at an operating point.
  [[nodiscard]] units::Milliwatts total_mw(units::Volts v, units::GbitsPerSec br) const;

  /// Transmitter-side power only.
  [[nodiscard]] units::Milliwatts transmitter_mw(units::Volts v, units::GbitsPerSec br) const;

  /// Receiver-side power only.
  [[nodiscard]] units::Milliwatts receiver_mw(units::Volts v, units::GbitsPerSec br) const;

 private:
  // Anchor operating point: 5 Gb/s, 0.9 V.
  static constexpr double kV0 = 0.9;
  static constexpr double kBr0 = 5.0;
  // Anchor component powers (mW) at (kV0, kBr0), from §4.1.
  static constexpr double kVcsel0 = 1.5e-3;
  static constexpr double kDriver0 = 1.23;
  static constexpr double kPhotodet0 = 1.4e-3;
  static constexpr double kTia0 = 25.02;
  static constexpr double kCdr0 = 17.05;
};

}  // namespace erapid::power
