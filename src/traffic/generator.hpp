// Bernoulli packet sources (paper §4: "Packets were injected according to
// Bernoulli process based on the network load").
//
// Each node has an independent source injecting fixed-size packets with
// per-cycle probability p = load (packets/node/cycle). We sample the
// geometric inter-arrival gap directly instead of running a per-cycle
// trial, which is statistically identical for a Bernoulli process and
// keeps the event count proportional to traffic, not to simulated time.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "des/engine.hpp"
#include "router/flit.hpp"
#include "traffic/patterns.hpp"
#include "util/rng.hpp"

namespace erapid::traffic {

/// Independent Bernoulli packet source for one node.
class NodeSource {
 public:
  /// `deliver(packet, now)` hands a freshly generated packet to the NI.
  NodeSource(des::Engine& engine, const TrafficPattern& pattern, NodeId node,
             std::uint32_t packet_flits, util::Rng rng,
             std::function<void(const router::Packet&, Cycle)> deliver);

  /// Starts injecting at `rate` packets/node/cycle (0 disables).
  void start(double rate);

  /// Stops injection (in-flight schedule cancelled).
  void stop();

  /// Changes the rate from now on.
  void set_rate(double rate);

  /// From `now` on, generated packets are tagged labelled = `on` (the
  /// paper's measurement-sample marking).
  void set_labelling(bool on) { labelling_ = on; }

  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  void schedule_next();
  void inject();
  [[nodiscard]] CycleDelta sample_gap();

  des::Engine& engine_;
  const TrafficPattern& pattern_;
  NodeId node_;
  std::uint32_t packet_flits_;
  util::Rng rng_;
  std::function<void(const router::Packet&, Cycle)> deliver_;
  double rate_ = 0.0;
  bool labelling_ = false;
  des::EventHandle pending_;
  std::uint64_t generated_ = 0;

  static std::uint64_t next_seq_;
};

}  // namespace erapid::traffic
