// Replays a Trace into the network: schedules one injection event per
// trace entry, tracks completion, and supports the labelled-packet
// measurement methodology over a cycle window.
#pragma once

#include <cstdint>
#include <functional>

#include "des/engine.hpp"
#include "router/flit.hpp"
#include "traffic/trace.hpp"

namespace erapid::traffic {

/// Event-driven trace replayer.
class TraceReplayer {
 public:
  /// `deliver(packet, now)` hands each generated packet to the NI layer.
  TraceReplayer(des::Engine& engine, const Trace& trace, std::uint32_t packet_flits,
                std::function<void(const router::Packet&, Cycle)> deliver);

  /// Schedules every trace event starting at engine.now() + offset.
  /// Call once; the engine then drives the replay.
  void start(Cycle offset = 0);

  /// Packets injected in [label_from, label_to) are marked labelled.
  void set_label_window(Cycle label_from, Cycle label_to) {
    label_from_ = label_from;
    label_to_ = label_to;
  }

  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t total() const { return trace_->size(); }
  [[nodiscard]] bool done() const { return injected_ == trace_->size(); }

 private:
  void inject(const TraceEvent& e);

  des::Engine& engine_;
  const Trace* trace_;
  std::uint32_t packet_flits_;
  std::function<void(const router::Packet&, Cycle)> deliver_;
  Cycle label_from_ = kNeverCycle;
  Cycle label_to_ = kNeverCycle;
  std::uint64_t injected_ = 0;

  static std::uint64_t next_seq_;
};

}  // namespace erapid::traffic
