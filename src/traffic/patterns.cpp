#include "traffic/patterns.hpp"

#include <bit>

namespace erapid::traffic {

std::string_view pattern_name(PatternKind k) {
  switch (k) {
    case PatternKind::Uniform: return "uniform";
    case PatternKind::Complement: return "complement";
    case PatternKind::Butterfly: return "butterfly";
    case PatternKind::PerfectShuffle: return "shuffle";
    case PatternKind::BitReverse: return "bitrev";
    case PatternKind::Transpose: return "transpose";
    case PatternKind::Tornado: return "tornado";
    case PatternKind::Neighbor: return "neighbor";
    case PatternKind::Hotspot: return "hotspot";
  }
  ERAPID_UNREACHABLE("unmodeled pattern kind " << static_cast<int>(k));
}

std::optional<PatternKind> parse_pattern(std::string_view name) {
  for (auto k : {PatternKind::Uniform, PatternKind::Complement, PatternKind::Butterfly,
                 PatternKind::PerfectShuffle, PatternKind::BitReverse, PatternKind::Transpose,
                 PatternKind::Tornado, PatternKind::Neighbor, PatternKind::Hotspot}) {
    if (pattern_name(k) == name) return k;
  }
  return std::nullopt;
}

TrafficPattern::TrafficPattern(PatternKind kind, std::uint32_t num_nodes,
                               double hotspot_fraction, NodeId hotspot)
    : kind_(kind),
      n_(num_nodes),
      bits_(num_nodes > 1 ? static_cast<std::uint32_t>(std::bit_width(num_nodes - 1)) : 0),
      hotspot_fraction_(hotspot_fraction),
      hotspot_(hotspot) {
  ERAPID_EXPECT(num_nodes >= 2, "pattern needs >= 2 nodes");
  const bool needs_pow2 = deterministic();
  if (needs_pow2) {
    ERAPID_EXPECT(std::has_single_bit(num_nodes) ||
                      kind == PatternKind::Tornado || kind == PatternKind::Neighbor,
                  "bit-permutation patterns need a power-of-two node count");
  }
  if (kind == PatternKind::Hotspot) {
    ERAPID_EXPECT(hotspot.value() < num_nodes, "hotspot node out of range");
    ERAPID_EXPECT(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
                  "hotspot fraction must be a probability");
  }
}

NodeId TrafficPattern::permute(NodeId src) const {
  const std::uint32_t a = src.value();
  const std::uint32_t n = bits_;
  switch (kind_) {
    case PatternKind::Complement:
      return NodeId{(~a) & (n_ - 1)};
    case PatternKind::Butterfly: {
      // Swap MSB (bit n-1) and LSB (bit 0).
      const std::uint32_t msb = (a >> (n - 1)) & 1u;
      const std::uint32_t lsb = a & 1u;
      std::uint32_t d = a & ~((1u << (n - 1)) | 1u);
      d |= (lsb << (n - 1)) | msb;
      return NodeId{d};
    }
    case PatternKind::PerfectShuffle: {
      // Rotate left by one bit.
      const std::uint32_t msb = (a >> (n - 1)) & 1u;
      return NodeId{((a << 1) | msb) & (n_ - 1)};
    }
    case PatternKind::BitReverse: {
      std::uint32_t d = 0;
      for (std::uint32_t i = 0; i < n; ++i) d |= ((a >> i) & 1u) << (n - 1 - i);
      return NodeId{d};
    }
    case PatternKind::Transpose: {
      // Swap the high and low halves of the address bits.
      const std::uint32_t half = n / 2;
      const std::uint32_t lo = a & ((1u << half) - 1u);
      const std::uint32_t hi = a >> half;
      return NodeId{(lo << (n - half)) | hi};
    }
    case PatternKind::Tornado:
      return NodeId{(a + (n_ / 2 - 1) + 1) % n_};  // half-way around, per D&T
    case PatternKind::Neighbor:
      return NodeId{(a + 1) % n_};
    case PatternKind::Uniform:
    case PatternKind::Hotspot:
      break;
  }
  ERAPID_UNREACHABLE("permute() called on a stochastic pattern");
}

NodeId TrafficPattern::destination(NodeId src, util::Rng& rng) const {
  switch (kind_) {
    case PatternKind::Uniform: {
      // Uniform over the N-1 other nodes (no self-traffic).
      auto d = static_cast<std::uint32_t>(rng.next_below(n_ - 1));
      if (d >= src.value()) ++d;
      return NodeId{d};
    }
    case PatternKind::Hotspot: {
      if (src != hotspot_ && rng.next_bernoulli(hotspot_fraction_)) return hotspot_;
      auto d = static_cast<std::uint32_t>(rng.next_below(n_ - 1));
      if (d >= src.value()) ++d;
      return NodeId{d};
    }
    default:
      return permute(src);
  }
}

}  // namespace erapid::traffic
