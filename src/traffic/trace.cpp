#include "traffic/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace erapid::traffic {

void Trace::add(Cycle cycle, NodeId src, NodeId dst) {
  if (!events_.empty() && cycle < events_.back().cycle) sorted_ = false;
  events_.push_back({cycle, src, dst});
}

void Trace::finalize(std::uint32_t num_nodes) {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.cycle < b.cycle; });
    sorted_ = true;
  }
  for (const auto& e : events_) {
    ERAPID_EXPECT(e.src.value() < num_nodes && e.dst.value() < num_nodes,
                  "trace event references a node outside the system");
    ERAPID_EXPECT(e.src != e.dst, "trace event sends a node to itself");
  }
}

void Trace::save(std::ostream& out) const {
  out << "# erapid-trace v1\n";
  for (const auto& e : events_) {
    out << e.cycle << ' ' << e.src.value() << ' ' << e.dst.value() << '\n';
  }
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  ERAPID_EXPECT(static_cast<bool>(out), "cannot open trace file for writing: " + path);
  save(out);
}

Trace Trace::load(std::istream& in, std::uint32_t num_nodes) {
  Trace t;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t cycle = 0;
    std::uint32_t src = 0, dst = 0;
    ls >> cycle >> src >> dst;
    ERAPID_EXPECT(!ls.fail(),
                  "malformed trace line " + std::to_string(lineno) + ": '" + line + "'");
    t.add(cycle, NodeId{src}, NodeId{dst});
  }
  t.finalize(num_nodes);
  return t;
}

Trace Trace::load_file(const std::string& path, std::uint32_t num_nodes) {
  std::ifstream in(path);
  ERAPID_EXPECT(static_cast<bool>(in), "cannot open trace file: " + path);
  return load(in, num_nodes);
}

Trace make_stencil_trace(std::uint32_t num_nodes, std::uint32_t steps, Cycle period,
                         Cycle start) {
  ERAPID_EXPECT(num_nodes >= 2, "stencil needs >= 2 nodes");
  Trace t;
  for (std::uint32_t step = 0; step < steps; ++step) {
    const Cycle when = start + static_cast<Cycle>(step) * period;
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      if (n + 1 < num_nodes) t.add(when, NodeId{n}, NodeId{n + 1});
      if (n > 0) t.add(when, NodeId{n}, NodeId{n - 1});
    }
  }
  t.finalize(num_nodes);
  return t;
}

Trace make_alltoall_trace(std::uint32_t num_nodes, std::uint32_t rounds, Cycle period,
                          Cycle stagger, Cycle start) {
  ERAPID_EXPECT(num_nodes >= 2, "all-to-all needs >= 2 nodes");
  Trace t;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const Cycle when = start + static_cast<Cycle>(r) * period;
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      for (std::uint32_t k = 1; k < num_nodes; ++k) {
        // Rotating destination order spreads the burst across lanes.
        const std::uint32_t d = (n + k) % num_nodes;
        t.add(when + static_cast<Cycle>(k - 1) * stagger, NodeId{n}, NodeId{d});
      }
    }
  }
  t.finalize(num_nodes);
  return t;
}

Trace make_master_worker_trace(std::uint32_t num_nodes, std::uint32_t iterations,
                               Cycle compute, Cycle start) {
  ERAPID_EXPECT(num_nodes >= 2, "master/worker needs >= 2 nodes");
  Trace t;
  Cycle when = start;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::uint32_t w = 1; w < num_nodes; ++w) {
      t.add(when, NodeId{0}, NodeId{w});  // scatter
    }
    when += compute;
    for (std::uint32_t w = 1; w < num_nodes; ++w) {
      t.add(when, NodeId{w}, NodeId{0});  // gather
    }
    when += compute;
  }
  t.finalize(num_nodes);
  return t;
}

}  // namespace erapid::traffic
