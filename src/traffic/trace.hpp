// Trace-driven traffic.
//
// The paper motivates reconfiguration with the spatial and temporal
// locality of real inter-process communication ("as spatial and temporal
// locality exists due to inter-process communication patterns ..."). The
// synthetic Bernoulli patterns exercise spatial structure only; traces add
// the temporal dimension: phased application behaviour whose hot flows
// move over time — exactly what the LS protocol must chase.
//
// Format (plain text, diff-friendly):
//     # erapid-trace v1
//     <cycle> <src-node> <dst-node>
// sorted by cycle (loader verifies).
//
// Besides load/save, this module synthesizes traces of three canonical
// HPC communication idioms: a 1-D stencil (neighbor exchange per
// timestep), a periodic all-to-all (e.g. FFT transpose), and a
// master/worker scatter-gather.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace erapid::traffic {

/// One packet-injection event.
struct TraceEvent {
  Cycle cycle = 0;
  NodeId src;
  NodeId dst;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// An in-memory, time-sorted communication trace.
class Trace {
 public:
  Trace() = default;

  /// Appends an event (kept sorted lazily; finalize() or load() sorts).
  void add(Cycle cycle, NodeId src, NodeId dst);

  /// Sorts by cycle (stable: same-cycle events keep insertion order) and
  /// validates node ids against `num_nodes`.
  void finalize(std::uint32_t num_nodes);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Cycle of the last event (0 when empty).
  [[nodiscard]] Cycle duration() const { return events_.empty() ? 0 : events_.back().cycle; }

  // ---- persistence ----
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static Trace load(std::istream& in, std::uint32_t num_nodes);
  static Trace load_file(const std::string& path, std::uint32_t num_nodes);

 private:
  std::vector<TraceEvent> events_;
  bool sorted_ = true;
};

/// 1-D stencil: every `period` cycles each node exchanges one packet with
/// each neighbor (rank ± 1, non-periodic boundary).
[[nodiscard]] Trace make_stencil_trace(std::uint32_t num_nodes, std::uint32_t steps,
                                       Cycle period, Cycle start = 0);

/// Periodic all-to-all: every `period` cycles each node sends one packet
/// to every other node, skewed by one `stagger` cycle per destination so
/// the burst is not a single-cycle impulse.
[[nodiscard]] Trace make_alltoall_trace(std::uint32_t num_nodes, std::uint32_t rounds,
                                        Cycle period, Cycle stagger = 1, Cycle start = 0);

/// Master/worker: the master (node 0) scatters one packet to each worker,
/// workers compute for `compute` cycles, then gather back. `iterations`
/// rounds.
[[nodiscard]] Trace make_master_worker_trace(std::uint32_t num_nodes,
                                             std::uint32_t iterations, Cycle compute,
                                             Cycle start = 0);

}  // namespace erapid::traffic
