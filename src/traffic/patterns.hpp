// Synthetic traffic patterns (paper §4.1).
//
// The paper evaluates uniform plus three adversarial bit-permutations on
// the node index bits a_{n-1} ... a_0 (n = log2 N):
//
//   butterfly        a_{n-1},...,a_0  ->  a_0, a_{n-2},...,a_1, a_{n-1}
//                    (swap MSB and LSB)
//   complement       a_i -> NOT a_i
//   perfect shuffle  rotate left by one: a_{n-2},...,a_0,a_{n-1}
//
// We add the other standard permutations from Dally & Towles [15]
// (bit-reverse, transpose, tornado, neighbor) and a hotspot pattern for
// the extension benches. Bit-permutations require power-of-two N.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace erapid::traffic {

enum class PatternKind : std::uint8_t {
  Uniform,
  Complement,
  Butterfly,
  PerfectShuffle,
  BitReverse,
  Transpose,
  Tornado,
  Neighbor,
  Hotspot,
};

[[nodiscard]] std::string_view pattern_name(PatternKind k);
[[nodiscard]] std::optional<PatternKind> parse_pattern(std::string_view name);

/// Maps each source node to a destination, deterministically (permutations)
/// or stochastically (uniform / hotspot).
class TrafficPattern {
 public:
  /// `num_nodes` must be a power of two for the bit-permutation kinds.
  TrafficPattern(PatternKind kind, std::uint32_t num_nodes, double hotspot_fraction = 0.2,
                 NodeId hotspot = NodeId{0});

  /// Destination for a packet from `src`; `rng` consulted only by the
  /// stochastic kinds.
  [[nodiscard]] NodeId destination(NodeId src, util::Rng& rng) const;

  /// True when destination(src) never depends on the RNG.
  [[nodiscard]] bool deterministic() const {
    return kind_ != PatternKind::Uniform && kind_ != PatternKind::Hotspot;
  }

  [[nodiscard]] PatternKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return n_; }

  /// Fixed destination of a deterministic pattern (throws for stochastic).
  [[nodiscard]] NodeId permute(NodeId src) const;

 private:
  PatternKind kind_;
  std::uint32_t n_;
  std::uint32_t bits_;
  double hotspot_fraction_;
  NodeId hotspot_;
};

}  // namespace erapid::traffic
