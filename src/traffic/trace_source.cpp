#include "traffic/trace_source.hpp"

#include "util/expect.hpp"

namespace erapid::traffic {

std::uint64_t TraceReplayer::next_seq_ = 1;

TraceReplayer::TraceReplayer(des::Engine& engine, const Trace& trace,
                             std::uint32_t packet_flits,
                             std::function<void(const router::Packet&, Cycle)> deliver)
    : engine_(engine), trace_(&trace), packet_flits_(packet_flits),
      deliver_(std::move(deliver)) {
  ERAPID_EXPECT(packet_flits_ >= 1, "packets need at least one flit");
}

void TraceReplayer::start(Cycle offset) {
  const Cycle base = engine_.now() + offset;
  // Events are captured by value (16 bytes): the schedule must not dangle
  // if the caller mutates or destroys the Trace after start().
  for (const TraceEvent e : trace_->events()) {
    engine_.schedule_at(base + e.cycle, [this, e] { inject(e); });
  }
}

void TraceReplayer::inject(const TraceEvent& e) {
  const Cycle now = engine_.now();
  router::Packet p;
  p.seq = next_seq_++;
  p.src = e.src;
  p.dst = e.dst;
  p.flits = packet_flits_;
  p.created = now;
  p.labelled = now >= label_from_ && now < label_to_;
  ++injected_;
  deliver_(p, now);
}

}  // namespace erapid::traffic
