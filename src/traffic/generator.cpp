#include "traffic/generator.hpp"

namespace erapid::traffic {

std::uint64_t NodeSource::next_seq_ = 1;

NodeSource::NodeSource(des::Engine& engine, const TrafficPattern& pattern, NodeId node,
                       std::uint32_t packet_flits, util::Rng rng,
                       std::function<void(const router::Packet&, Cycle)> deliver)
    : engine_(engine),
      pattern_(pattern),
      node_(node),
      packet_flits_(packet_flits),
      rng_(rng),
      deliver_(std::move(deliver)) {}

CycleDelta NodeSource::sample_gap() {
  // Geometric gap with success probability rate_: number of cycles until
  // the next injection, support {1, 2, ...}. Inverse-transform sampling.
  if (rate_ >= 1.0) return 1;
  const double u = rng_.next_double();
  const double g = std::floor(std::log1p(-u) / std::log1p(-rate_));
  return static_cast<CycleDelta>(g) + 1;
}

void NodeSource::start(double rate) {
  stop();
  rate_ = rate;
  if (rate_ > 0.0) schedule_next();
}

void NodeSource::stop() {
  pending_.cancel();
  rate_ = 0.0;
}

void NodeSource::set_rate(double rate) {
  if (rate == rate_) return;
  start(rate);
}

void NodeSource::schedule_next() {
  pending_ = engine_.schedule(sample_gap(), [this] { inject(); });
}

void NodeSource::inject() {
  const Cycle now = engine_.now();
  router::Packet p;
  p.seq = next_seq_++;
  p.src = node_;
  p.dst = pattern_.destination(node_, rng_);
  p.flits = packet_flits_;
  p.created = now;
  p.labelled = labelling_;
  ++generated_;
  deliver_(p, now);
  schedule_next();
}

}  // namespace erapid::traffic
