// Windowed telemetry plane — the periodic JSONL emitter that ties the
// traffic-matrix estimator, the energy ledger and the phase detector to the
// simulation clock.
//
// Every `window` cycles a self-rescheduling DES event samples the run
// (utilization, queue depths, lit lanes, power) through a driver-provided
// callback, updates the phase detector, reconciles the energy ledger
// against the meter, and appends one flat JSON record (schema
// `erapid-telemetry-1`) to the configured path. The stream is the machine
// front-end of tools/obs/telemetry_report.py and the offline input a
// predictive-DPM policy would train on.
//
// Byte-compatibility discipline: the emitter exists only when
// `obs.telemetry` is configured. Its window event would otherwise shift
// DES sequence numbers, so an unconfigured run schedules nothing and the
// default-off golden reports stay byte-identical. Record content is
// simulated-time only and every container iterates in deterministic order,
// so two same-seed runs (on either calendar implementation) write
// byte-identical streams.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "des/engine.hpp"
#include "obs/phase_detect.hpp"
#include "obs/tm_estimator.hpp"
#include "util/types.hpp"

namespace erapid::obs {

class EnergyLedger;
class Hub;

/// Knobs of the telemetry plane (the `obs.telemetry_*` keys).
struct TelemetryConfig {
  std::string path;                  ///< JSONL output; empty disables the plane
  CycleDelta window = 2000;          ///< cycles per record
  std::uint32_t top_k = 8;           ///< TM flows listed per record
  double ewma_alpha = 0.3;           ///< TM per-flow decay weight
  double phase_alpha = 0.2;          ///< phase detector EWMA weight
  double phase_slack = 0.05;         ///< phase detector CUSUM dead-band
  double phase_threshold = 0.25;     ///< phase detector firing threshold
};

/// One window's worth of run state, sampled by the driver at the window
/// boundary. The telemetry plane owns no network pointers: the simulation
/// hands it a sampler so obs stays below sim in the layer order.
struct WindowObservables {
  double utilization = 0.0;        ///< delivered payload / capacity, this window
  std::uint64_t delivered = 0;     ///< packets delivered since the run started
  std::uint32_t lanes_lit = 0;
  std::uint32_t lanes_total = 0;
  std::uint64_t queue_depth = 0;   ///< total source backlog, flits
  double power_mw = 0.0;           ///< instantaneous draw at the boundary
  double energy_mw_cycles = 0.0;   ///< the meter's own cumulative integral
  std::string workload_phase;      ///< active workload phase name, or empty
};

/// Periodic JSONL emitter (see file comment).
class Telemetry {
 public:
  /// Schema version stamped into every record.
  static constexpr const char* kSchema = "erapid-telemetry-1";

  using Sampler = std::function<WindowObservables(Cycle)>;

  /// Opens the JSONL stream and builds the estimator/detector pair; call
  /// start() to arm the first window event.
  Telemetry(des::Engine& engine, const TelemetryConfig& cfg, std::uint32_t boards,
            EnergyLedger* ledger, Hub& hub, Sampler sampler);

  /// Arms the first window boundary `cfg.window` cycles out. Idempotent.
  void start();

  /// Cancels the pending window event, runs a final reconciliation against
  /// `meter_total_mw_cycles` and flushes the stream. Idempotent.
  void finish(Cycle now, double meter_total_mw_cycles);

  /// Traffic-matrix feed: accounts one delivered packet. Called from the
  /// simulation's delivery callback.
  void on_packet(std::uint32_t src_board, std::uint32_t dst_board, std::uint64_t bytes) {
    tm_.on_packet(src_board, dst_board, bytes);
  }

  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t phase_changes() const { return detector_.changes(); }
  [[nodiscard]] std::uint64_t phase_id() const { return detector_.phase_id(); }
  [[nodiscard]] const TmEstimator& tm() const { return tm_; }
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

 private:
  void on_window();
  void emit_record(Cycle now, const WindowObservables& o, bool phase_changed);

  des::Engine& engine_;
  TelemetryConfig cfg_;
  EnergyLedger* ledger_;  ///< may be null only when the meter has no sources
  Hub& hub_;
  Sampler sampler_;
  TmEstimator tm_;
  PhaseDetector detector_;
  std::ofstream out_;
  des::EventHandle next_;
  std::uint64_t windows_ = 0;
  std::uint64_t last_delivered_ = 0;
  bool started_ = false;
  bool finished_ = false;

  // Metric handles (registered against the hub's registry).
  std::uint32_t m_windows_ = 0;
  std::uint32_t m_phase_changes_ = 0;
  std::uint32_t m_phase_id_ = 0;
};

}  // namespace erapid::obs
