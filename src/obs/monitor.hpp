// Online monitors — declarative runtime checks over the metrics a run emits.
//
// PR 3's obs layer records; this subsystem *watches*. A MonitorSet is a
// small, INI-configured set of envelope checks evaluated while the
// simulation runs (power cap at every recorder sample, DBR quiescence at
// every re-solve settlement) plus end-of-run checks (throughput floor,
// p99 latency ceiling) evaluated once at finalize. Each check that fires
//
//   * emits a deterministic trace instant on the `obs.monitors` track
//     (name `monitor.<check>`, args {threshold, value}),
//   * bumps the `monitor.violations` counter metric,
//   * records worst value / violation count / first-violation cycle for
//     the report's `obs_monitors` block,
//   * and, with `obs.monitor_fail_fast = true`, ends the simulation
//     through the contract layer (ModelInvariantError) so batch sweeps
//     fail loudly at the first breached envelope instead of producing a
//     silently-out-of-budget result.
//
// Determinism: checks observe only simulated-time quantities already
// flowing through the Hub, thresholds come from the config, and every
// verdict field is rendered with the trace layer's fixed formatting —
// two same-seed runs produce byte-identical `obs_monitors` blocks. With
// no check configured (`MonitorConfig::any() == false`) no MonitorSet is
// created and the report is byte-identical to a monitors-free build.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// The `monitor.*` INI section. A threshold of 0 disables its check.
struct MonitorConfig {
  /// Ceiling on the instantaneous optical power envelope (mW), checked at
  /// every recorder sample (`obs.counter_interval` cadence).
  double power_cap_mw = 0.0;
  /// Floor on end-of-run accepted throughput (fraction of N_c).
  double throughput_floor = 0.0;
  /// Ceiling on end-of-run labelled-packet p99 latency (cycles).
  double p99_latency_ceiling = 0.0;
  /// Deadline on DBR convergence (cycles from a re-solve's Reconfigure
  /// stage to its last lane grant settling; "To Reconfigure or Not to
  /// Reconfigure": convergence time decides whether DBR pays off).
  CycleDelta quiescence_deadline = 0;
  /// Ceiling on a transient fault's full recovery arc (cycles from a lane
  /// failing to the repaired lane's DBR re-admission grant landing).
  CycleDelta max_recovery_cycles = 0;
  /// Deadline on completion-bounded workload makespan (cycles). Only
  /// meaningful on runs with a completion-bounded `workload.kind`; a
  /// workload that hits its horizon without completing always violates.
  CycleDelta workload_deadline = 0;

  [[nodiscard]] bool any() const {
    return power_cap_mw > 0.0 || throughput_floor > 0.0 || p99_latency_ceiling > 0.0 ||
           quiescence_deadline > 0 || max_recovery_cycles > 0 || workload_deadline > 0;
  }
};

/// End-of-run quantities the simulation driver feeds the final checks.
struct FinalSample {
  Cycle now = 0;
  double accepted_fraction = 0.0;
  double latency_p99 = 0.0;
  /// True when a completion-bounded workload drove the run (the
  /// workload_deadline check is skipped otherwise).
  bool workload_ran = false;
  bool workload_completed = false;
  Cycle workload_completion = 0;
};

/// One run's active checks (see file comment). Owned by the Hub; only
/// built when at least one check is configured.
class MonitorSet {
 public:
  /// `trace` may be null (metrics-only run: verdicts still recorded, no
  /// instants). `track` is the pre-registered `obs.monitors` track.
  MonitorSet(const MonitorConfig& cfg, bool fail_fast, TraceSink* trace, TrackId track,
             MetricsRegistry& metrics);

  // ---- online feeds -----------------------------------------------------
  /// Instantaneous power envelope sample (recorder cadence).
  void sample_power(Cycle now, double mw);
  /// A DBR re-solve issued directives (grants now outstanding).
  void dbr_resolve(Cycle now);
  /// All of one re-solve's directives settled (granted or dropped stale).
  void dbr_quiesced(Cycle resolve_at, Cycle last_settle);
  /// A repaired lane was re-admitted by the DBR plane `took` cycles after
  /// it originally failed (the fault injector feeds this).
  void recovery(Cycle now, CycleDelta took);

  // ---- end-of-run -------------------------------------------------------
  /// Runs the final checks (throughput floor, p99 ceiling, unsettled
  /// re-solves past the quiescence deadline). Call exactly once.
  void finalize(const FinalSample& fin);

  [[nodiscard]] std::uint64_t violations() const;
  [[nodiscard]] bool all_ok() const { return violations() == 0; }

  /// Observer of every violation, called before fail-fast can unwind —
  /// the Hub points this at the flight recorder.
  using ViolationHook =
      std::function<void(const char* name, Cycle now, double value, double threshold)>;
  // erapid-analyze: allow(contract-coverage)
  void set_violation_hook(ViolationHook hook) { violation_hook_ = std::move(hook); }

  /// What the actuation hook decided about a violation. `Default` keeps the
  /// configured fail-fast behaviour; `Suppress` converts the violation into
  /// a recorded-but-survivable event (the degradation controller has taken
  /// a mitigating action, or was told to merely record); `Abort` forces the
  /// fail-fast unwind regardless of `obs.monitor_fail_fast`.
  enum class ActuationDecision { Default, Suppress, Abort };

  /// Decides the fate of a violation *after* it is recorded and the
  /// violation hook (flight recorder) has seen it. The degradation
  /// controller (src/resilience) installs this to turn envelope breaches
  /// into staged actions instead of aborts. Without a hook every violation
  /// takes the Default path — byte-identical to pre-hook behaviour.
  using ActuationHook = std::function<ActuationDecision(const char* name, Cycle now,
                                                        double value, double threshold)>;
  // erapid-analyze: allow(contract-coverage)
  void set_actuation_hook(ActuationHook hook) { actuation_hook_ = std::move(hook); }

  /// Name-sorted (check, rendered JSON verdict) pairs — the report's
  /// `obs_monitors` block. Each verdict is
  ///   {"threshold": t, "worst": w, "violations": n,
  ///    "first_violation": c, "ok": bool}.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> report() const;

 private:
  struct Check {
    const char* name = "";
    double threshold = 0.0;
    bool enabled = false;
    /// Worst value seen in the check's bad direction (max for ceilings,
    /// min for floors); meaningful once `observed`.
    double worst = 0.0;
    bool observed = false;
    std::uint64_t violations = 0;
    Cycle first_violation = 0;
  };

  /// Records `value` against the check and fires on violation.
  void check_ceiling(Check& c, Cycle now, double value);
  void check_floor(Check& c, Cycle now, double value);
  void fire(Check& c, Cycle now, double value);

  bool fail_fast_;
  ViolationHook violation_hook_;
  ActuationHook actuation_hook_;
  TraceSink* trace_;
  TrackId track_;
  MetricsRegistry& metrics_;
  MetricId m_violations_ = 0;

  Check power_;
  Check throughput_;
  Check p99_;
  Check quiescence_;
  Check recovery_;
  Check workload_;

  /// Reconfigure-stage cycles of re-solves whose grants are still
  /// outstanding (settled ones are removed; leftovers are judged against
  /// the deadline at finalize).
  std::vector<Cycle> pending_resolves_;
  bool finalized_ = false;
};

}  // namespace erapid::obs
