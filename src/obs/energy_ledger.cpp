#include "obs/energy_ledger.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::obs {

EnergyLedger::EnergyLedger(std::uint32_t boards)
    : boards_(boards), total_(0, 0.0), board_total_(boards, stats::TimeWeighted(0, 0.0)),
      board_laser_(boards, stats::TimeWeighted(0, 0.0)) {
  ERAPID_REQUIRE(boards > 0, "energy ledger needs at least one board");
}

void EnergyLedger::set_laser_share(double level_mw, double laser_mw) {
  ERAPID_REQUIRE(level_mw >= 0.0 && laser_mw >= 0.0 && laser_mw <= level_mw,
                 "laser share must satisfy 0 <= laser <= level, got laser="
                     << laser_mw << " level=" << level_mw);
  for (auto& [mw, laser] : laser_share_) {
    if (mw == level_mw) {
      laser = laser_mw;
      return;
    }
  }
  laser_share_.emplace_back(level_mw, laser_mw);
}

void EnergyLedger::tag_source(std::uint32_t id, std::uint32_t board) {
  ERAPID_REQUIRE(board < boards_,
                 "source tagged to board " << board << " of " << boards_);
  if (id >= board_of_.size()) {
    board_of_.resize(id + 1, kUntagged);
    level_.resize(id + 1, 0.0);
    laser_level_.resize(id + 1, 0.0);
  }
  ERAPID_REQUIRE(board_of_[id] == kUntagged, "meter source " << id << " tagged twice");
  board_of_[id] = board;
}

double EnergyLedger::laser_mw_for(double level_mw) const {
  for (const auto& [mw, laser] : laser_share_) {
    if (mw == level_mw) return laser;
  }
  return 0.0;  // unknown level (and OFF): fully serdes-attributed
}

void EnergyLedger::on_set_power(std::uint32_t id, Cycle now, double mw) {
  ERAPID_REQUIRE(id < board_of_.size() && board_of_[id] != kUntagged,
                 "untagged meter source " << id << " fed the energy ledger");
  // Mirror the meter's op sequence exactly: same delta, same order, same
  // TimeWeighted arithmetic — the reconciliation invariant depends on it.
  const double delta = mw - level_[id];
  level_[id] = mw;
  total_.add(now, delta);

  const std::uint32_t board = board_of_[id];
  board_total_[board].add(now, delta);
  const double laser = laser_mw_for(mw);
  board_laser_[board].add(now, laser - laser_level_[id]);
  laser_level_[id] = laser;
}

void EnergyLedger::on_checkpoint(Cycle now) {
  ERAPID_INVARIANT(board_total_.size() == board_laser_.size(),
                   "ledger per-board tables out of sync");
  total_.checkpoint(now);
  for (auto& b : board_total_) b.checkpoint(now);
  for (auto& b : board_laser_) b.checkpoint(now);
}

BoardEnergy EnergyLedger::board_energy(std::uint32_t board, Cycle now) const {
  ERAPID_REQUIRE(board < boards_,
                 "board " << board << " outside a " << boards_ << "-board ledger");
  BoardEnergy e;
  e.total_mw_cycles = board_total_[board].integral(now);
  e.laser_mw_cycles = board_laser_[board].integral(now);
  // Exact complement: what was not attributed to the transmitter side is
  // the receiver side (buffer/ctrl are unmetered today).
  e.serdes_mw_cycles = e.total_mw_cycles - e.laser_mw_cycles;
  return e;
}

std::size_t EnergyLedger::tagged_sources() const {
  return static_cast<std::size_t>(
      std::count_if(board_of_.begin(), board_of_.end(),
                    [](std::uint32_t b) { return b != kUntagged; }));
}

void EnergyLedger::reconcile(Cycle now, double meter_total_mw_cycles) const {
  const double mirrored = total_.integral(now);
  // Exact equality is intentional: the mirror performs bit-identical
  // arithmetic, so any difference means an update was dropped or reordered.
  ERAPID_INVARIANT(mirrored == meter_total_mw_cycles,
                   "energy ledger drifted from the meter at cycle "
                       << now << ": ledger " << mirrored << " mW·cycles vs meter "
                       << meter_total_mw_cycles);
}

}  // namespace erapid::obs
