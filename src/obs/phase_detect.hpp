// EWMA + CUSUM change-point detection over the utilization series.
//
// The predictive-DPM ROADMAP item ("Think Green — Turn Off The Lights",
// arXiv 2112.02083) needs to know *when the workload changed phase* so it
// can pre-wake lanes ahead of a burst instead of reacting after queues
// build. The detector keeps an EWMA of the per-window utilization and a
// two-sided CUSUM of the deviations:
//
//   g+ <- max(0, g+ + (x - mean - slack))     upward drift
//   g- <- max(0, g- + (mean - x - slack))     downward drift
//
// When either side exceeds the threshold a change-point fires: the phase
// id advances, both CUSUM sides reset and the mean re-seeds at the new
// operating point (the classic restart rule, so one level shift yields one
// change-point rather than a burst of them).
//
// Determinism: pure arithmetic over the fed samples — same series, same
// phase timeline, on every platform the build targets.
#pragma once

#include <cstdint>

namespace erapid::obs {

/// Knobs of one PhaseDetector (the `obs.telemetry_phase_*` keys).
struct PhaseDetectorConfig {
  double alpha = 0.2;       ///< EWMA weight of the newest sample, in (0, 1]
  double slack = 0.05;      ///< CUSUM dead-band (drift tolerated per sample)
  double threshold = 0.25;  ///< accumulated deviation that fires a change
};

/// Online change-point detector (see file comment).
class PhaseDetector {
 public:
  explicit PhaseDetector(const PhaseDetectorConfig& cfg);

  /// Feeds one window's utilization sample; true when a change-point fired
  /// (the phase id has already advanced).
  bool update(double x);

  /// Phases seen so far; starts at 0, advances on each change-point.
  [[nodiscard]] std::uint64_t phase_id() const { return phase_; }
  [[nodiscard]] std::uint64_t changes() const { return phase_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Current EWMA operating point (the first sample until seeded).
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double cusum_up() const { return g_up_; }
  [[nodiscard]] double cusum_down() const { return g_down_; }

 private:
  PhaseDetectorConfig cfg_;
  double mean_ = 0.0;
  bool seeded_ = false;
  double g_up_ = 0.0;
  double g_down_ = 0.0;
  std::uint64_t phase_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace erapid::obs
