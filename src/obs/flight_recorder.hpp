// Post-mortem flight recorder — a bounded ring of recent structured events.
//
// When a long batch run trips a monitor or a model contract, the report
// says *that* something went wrong but not what led up to it. The flight
// recorder keeps the last `depth` structured events (reconfiguration
// windows, lane grants/releases, injected faults, monitor verdicts) in a
// fixed-size ring and, on any monitor violation or contract failure, dumps
// the ring to a JSON file (schema `erapid-flight-recorder-1`) for triage —
// the black-box readout of the run's final moments.
//
// The ring records unconditionally cheap data (cycle, kind, pre-rendered
// args JSON); no I/O happens until a dump is triggered. Repeated triggers
// overwrite the dump file, so the file on disk always describes the most
// recent trigger. Determinism: event content is simulated-time only, so
// two same-seed runs that trip the same trigger write byte-identical
// dumps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace erapid::obs {

/// Bounded event ring with on-trigger JSON dump (see file comment).
class FlightRecorder {
 public:
  /// Schema version stamped into every dump.
  static constexpr const char* kSchema = "erapid-flight-recorder-1";

  /// Keeps the last `depth` events; dumps overwrite `path`.
  FlightRecorder(std::size_t depth, std::string path);

  /// Records one event. `detail_json` is a pre-rendered JSON object (an
  /// obs::Args payload) or empty.
  void record(Cycle now, const std::string& kind, const std::string& detail_json);

  /// Writes the ring (oldest first) to the dump path. `reason` labels the
  /// trigger class (monitor_violation | contract_failure), `trigger` the
  /// specific check or contract message.
  void dump(Cycle now, const std::string& reason, const std::string& trigger);

  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Events currently held in the ring (≤ depth).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Events recorded since construction (including evicted ones).
  [[nodiscard]] std::uint64_t events_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dumps() const { return dumps_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Event {
    Cycle cycle = 0;
    std::string kind;
    std::string detail;
  };

  std::size_t depth_;
  std::string path_;
  std::vector<Event> ring_;  ///< circular once full; `head_` is the oldest slot
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dumps_ = 0;
};

}  // namespace erapid::obs
