// Online traffic-matrix estimation — the windowed demand view the DBR
// decision layer consumes.
//
// The paper's bandwidth re-allocation is driven by *measured* per-window
// traffic, and the pluggable-allocator ROADMAP item (rostam's
// OCSInterconnect ILP over episode_bw) needs exactly a per-(src board,
// dst board) demand matrix. The estimator accumulates delivered bytes and
// packets per board pair inside each telemetry window, folds every window
// into a decayed EWMA per flow on roll, and exposes skew/hotspot scalars
// plus a deterministic top-K view for the JSONL records.
//
// Determinism contract: cells live in a std::map keyed by (src, dst), so
// iteration order — and therefore every snapshot, top-K list and scalar —
// depends only on which flows carried traffic, never on arrival order or
// hashing. All inputs are simulated-time quantities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace erapid::obs {

/// One (src board, dst board) flow's standing in the estimator.
struct TmEntry {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;    ///< bytes accumulated in the current window
  std::uint64_t packets = 0;  ///< packets accumulated in the current window
  double ewma_bytes = 0.0;    ///< decayed per-window byte estimate
};

/// Sparse per-board-pair byte/packet accumulator (see file comment).
class TmEstimator {
 public:
  /// `ewma_alpha` in (0, 1] weights the newest window in the decayed
  /// per-flow estimate: ewma = alpha * window + (1 - alpha) * ewma.
  TmEstimator(std::uint32_t boards, double ewma_alpha);

  /// Accounts one delivered packet of `bytes` payload from `src_board` to
  /// `dst_board` in the current window.
  void on_packet(std::uint32_t src_board, std::uint32_t dst_board, std::uint64_t bytes);

  /// Closes the current window: folds every known flow into its EWMA
  /// (flows without traffic decay toward zero) and clears the window
  /// accumulators.
  void roll_window();

  /// The `k` heaviest flows of the current window, by window bytes
  /// descending with (src, dst) ascending tie-break. Flows with zero
  /// window bytes are omitted.
  [[nodiscard]] std::vector<TmEntry> top_k(std::size_t k) const;

  /// Every flow ever seen, (src, dst) ascending — the full matrix view a
  /// DBR allocator would consume.
  [[nodiscard]] std::vector<TmEntry> snapshot() const;

  /// Max/mean ratio over the current window's non-zero cells (1 = uniform,
  /// grows with concentration; 0 with no traffic).
  [[nodiscard]] double window_skew() const;

  /// Fraction of the current window's bytes landing on its hottest
  /// destination board (0 with no traffic).
  [[nodiscard]] double window_hotspot() const;

  /// Max/mean ratio over the cumulative (whole-run) non-zero cells.
  [[nodiscard]] double total_skew() const;

  [[nodiscard]] std::uint64_t window_bytes() const { return window_bytes_; }
  [[nodiscard]] std::uint64_t window_packets() const { return window_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Distinct (src, dst) flows seen since construction.
  [[nodiscard]] std::size_t flows() const { return cells_.size(); }
  [[nodiscard]] std::uint32_t boards() const { return boards_; }

 private:
  struct Cell {
    std::uint64_t bytes = 0;        ///< current window
    std::uint64_t packets = 0;      ///< current window
    std::uint64_t total_bytes = 0;  ///< whole run
    double ewma_bytes = 0.0;
  };

  std::uint32_t boards_;
  double alpha_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Cell> cells_;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t window_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace erapid::obs
