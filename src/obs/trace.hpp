// Structured trace sinks — the time-resolved complement to SimResult.
//
// A TraceSink receives a deterministic stream of simulation events (spans,
// instant marks, counter samples) and serializes it to disk. Two backends:
//
//   ChromeTraceWriter  — Chrome/Perfetto trace-event JSON (load the file in
//                        chrome://tracing or ui.perfetto.dev). Tracks map to
//                        tids of one synthetic process; async spans carry an
//                        id so overlapping lifecycles (lane grants) render
//                        correctly.
//   CsvTimelineWriter  — one row per event, for awk/pandas post-processing
//                        without a JSON parser.
//
// Determinism contract (DESIGN.md §8): every timestamp is simulated time
// (des::Engine::now() cycles) — never wall clock; event order is the
// deterministic DES execution order; numeric formatting is fixed-precision.
// Two same-seed runs therefore produce byte-identical trace files, and the
// golden-trace test pins that promise.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace erapid::obs {

/// Handle for a registered track (a named timeline in the viewer).
using TrackId = std::uint32_t;

/// Deterministic `{"k":v,...}` builder for event argument payloads.
class Args {
 public:
  Args& add(const char* key, std::uint64_t v);
  Args& add(const char* key, std::int64_t v);
  Args& add(const char* key, double v);
  Args& add(const char* key, const std::string& v);

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }
  [[nodiscard]] bool empty() const { return body_.empty(); }

 private:
  void sep();
  std::string body_;
};

/// Abstract deterministic trace consumer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Registers a named track; events reference it by the returned id.
  /// Tracks registered in deterministic (construction) order only.
  virtual TrackId register_track(const std::string& name) = 0;

  /// A span of simulated time [ts, ts + dur] whose end is known at
  /// emission (e.g. a Lock-Step window). Spans on one track must not
  /// overlap.
  virtual void complete(TrackId track, const char* name, Cycle ts, CycleDelta dur,
                        const std::string& args_json = "") = 0;

  /// Open-ended span pair on one track (strictly nested / sequential).
  virtual void begin(TrackId track, const char* name, Cycle ts) = 0;
  virtual void end(TrackId track, const char* name, Cycle ts) = 0;

  /// Async span pair: lifecycles that overlap on a track (lane grant →
  /// release) are disambiguated by `id`.
  virtual void async_begin(TrackId track, const char* name, std::uint64_t id, Cycle ts,
                           const std::string& args_json = "") = 0;
  virtual void async_end(TrackId track, const char* name, std::uint64_t id, Cycle ts) = 0;

  /// Instantaneous mark (fault injected, DBR re-solve, ...).
  virtual void instant(TrackId track, const char* name, Cycle ts,
                       const std::string& args_json = "") = 0;

  /// Sample of a counter track (power, queue depth, lanes lit, ...).
  virtual void counter(TrackId track, const char* name, Cycle ts, double value) = 0;

  /// Finalizes the output (writes footers). Idempotent; called before
  /// destruction by the owner.
  virtual void close(Cycle now) = 0;

  /// False when the output file could not be opened or written.
  [[nodiscard]] virtual bool ok() const = 0;
};

/// Chrome trace-event JSON backend (streaming writer).
class ChromeTraceWriter final : public TraceSink {
 public:
  explicit ChromeTraceWriter(const std::string& path);
  ~ChromeTraceWriter() override;

  TrackId register_track(const std::string& name) override;
  void complete(TrackId track, const char* name, Cycle ts, CycleDelta dur,
                const std::string& args_json) override;
  void begin(TrackId track, const char* name, Cycle ts) override;
  void end(TrackId track, const char* name, Cycle ts) override;
  void async_begin(TrackId track, const char* name, std::uint64_t id, Cycle ts,
                   const std::string& args_json) override;
  void async_end(TrackId track, const char* name, std::uint64_t id, Cycle ts) override;
  void instant(TrackId track, const char* name, Cycle ts,
               const std::string& args_json) override;
  void counter(TrackId track, const char* name, Cycle ts, double value) override;
  void close(Cycle now) override;
  [[nodiscard]] bool ok() const override { return static_cast<bool>(out_); }

  /// Trace schema version stamped into the file footer.
  static constexpr const char* kSchema = "erapid-trace-1";

 private:
  void event_prefix(const char* ph, TrackId track, const char* name, Cycle ts);

  std::ofstream out_;
  std::uint32_t next_track_ = 0;
  std::uint64_t events_ = 0;
  bool closed_ = false;
};

/// Compact CSV backend: cycle,kind,track,name,id,value,args.
class CsvTimelineWriter final : public TraceSink {
 public:
  explicit CsvTimelineWriter(const std::string& path);
  ~CsvTimelineWriter() override;

  TrackId register_track(const std::string& name) override;
  void complete(TrackId track, const char* name, Cycle ts, CycleDelta dur,
                const std::string& args_json) override;
  void begin(TrackId track, const char* name, Cycle ts) override;
  void end(TrackId track, const char* name, Cycle ts) override;
  void async_begin(TrackId track, const char* name, std::uint64_t id, Cycle ts,
                   const std::string& args_json) override;
  void async_end(TrackId track, const char* name, std::uint64_t id, Cycle ts) override;
  void instant(TrackId track, const char* name, Cycle ts,
               const std::string& args_json) override;
  void counter(TrackId track, const char* name, Cycle ts, double value) override;
  void close(Cycle now) override;
  [[nodiscard]] bool ok() const override { return static_cast<bool>(out_); }

 private:
  void row(Cycle ts, const char* kind, TrackId track, const char* name,
           const std::string& id, const std::string& value, const std::string& args);

  std::ofstream out_;
  std::vector<std::string> track_names_;
  bool closed_ = false;
};

/// Formats a double exactly like the trace writers do (shortest fixed form,
/// deterministic across runs of the same binary).
[[nodiscard]] std::string format_trace_value(double v);

/// JSON string escaping for names/args emitted by the writers.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace erapid::obs
