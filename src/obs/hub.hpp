// Observability hub — one per Simulation, threaded through the model layers.
//
// The Hub owns the optional TraceSink and the MetricsRegistry and is the
// single object instrumented components talk to. Every component takes an
// `obs::Hub*` defaulting to nullptr, so
//
//   * library users and tests that build components directly pay nothing
//     and change nothing;
//   * with obs off (the default) the only cost at a probe site is one
//     null-pointer test — the golden fixture pins that the event stream is
//     byte-identical to pre-obs builds;
//   * with ERAPID_NO_OBS defined the probe macros (probe.hpp) compile to
//     nothing at all.
//
// The Hub also implements des::Engine::DispatchHook: installed by the
// Simulation driver, it self-profiles the event calendar (events per tag,
// queue depth, events/sim-cycle counter tracks) without des/ depending on
// the obs layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "des/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// Runtime observability options (the `obs.*` + `monitor.*` INI sections).
struct ObsConfig {
  /// Master switch: off keeps the simulation byte-identical to a build
  /// without the subsystem.
  bool enabled = false;
  /// Trace output path; empty = metrics only, no trace file.
  std::string trace_path;
  /// "chrome" (trace-event JSON) or "csv" (timeline rows).
  std::string trace_format = "chrome";
  /// Cadence of sampled counter tracks (power, backlog, lanes lit) — and
  /// of the power-cap monitor's envelope checks.
  CycleDelta counter_interval = 500;
  /// Verbose per-event dispatch spans in the trace (large files; off by
  /// default — the aggregated des.* counter tracks are usually enough).
  bool trace_events = false;
  /// Runtime envelope checks (the `monitor.*` section); all off by
  /// default — the report then carries no `obs_monitors` block.
  MonitorConfig monitors;
  /// A monitor violation ends the simulation through the contract layer
  /// instead of just being reported.
  bool monitor_fail_fast = false;
};

/// Well-known track names (one source of truth for writers and the
/// summarize_trace.py validator).
struct Tracks {
  static constexpr const char* kEngine = "des.engine";
  static constexpr const char* kReconfig = "reconfig";
  static constexpr const char* kLanes = "optical.lanes";
  static constexpr const char* kPower = "power";
  static constexpr const char* kFault = "fault";
  static constexpr const char* kCounters = "counters";
  /// Registered only when at least one monitor is configured, so
  /// monitor-free traces stay byte-identical to pre-monitor builds.
  static constexpr const char* kMonitors = "obs.monitors";
};

/// Central observability context (see file comment).
class Hub final : public des::Engine::DispatchHook {
 public:
  explicit Hub(const ObsConfig& cfg);
  ~Hub() override;

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Master toggle — probe macros check this before touching anything.
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const ObsConfig& config() const { return cfg_; }

  /// Null when tracing is off (metrics may still be on).
  [[nodiscard]] TraceSink* trace() { return trace_.get(); }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Null unless at least one `monitor.*` check is configured.
  [[nodiscard]] MonitorSet* monitors() { return monitors_.get(); }
  [[nodiscard]] const MonitorSet* monitors() const { return monitors_.get(); }

  // Pre-registered tracks (all writers see the same set in the same order,
  // so chrome and csv backends agree on track ids).
  [[nodiscard]] TrackId track_engine() const { return t_engine_; }
  [[nodiscard]] TrackId track_reconfig() const { return t_reconfig_; }
  [[nodiscard]] TrackId track_lanes() const { return t_lanes_; }
  [[nodiscard]] TrackId track_power() const { return t_power_; }
  [[nodiscard]] TrackId track_fault() const { return t_fault_; }
  [[nodiscard]] TrackId track_counters() const { return t_counters_; }
  [[nodiscard]] TrackId track_monitors() const { return t_monitors_; }

  /// Finalizes the trace file. Idempotent.
  void close(Cycle now);

  // ---- des::Engine::DispatchHook (engine self-profiling) ----
  void on_dispatch_begin(const char* tag, Cycle now) override;
  void on_dispatch_end(const char* tag, Cycle now, std::size_t queue_size,
                       std::uint64_t executed) override;

 private:
  ObsConfig cfg_;
  std::unique_ptr<TraceSink> trace_;
  MetricsRegistry metrics_;
  std::unique_ptr<MonitorSet> monitors_;

  TrackId t_engine_ = 0;
  TrackId t_reconfig_ = 0;
  TrackId t_lanes_ = 0;
  TrackId t_power_ = 0;
  TrackId t_fault_ = 0;
  TrackId t_counters_ = 0;
  TrackId t_monitors_ = 0;

  // Engine self-profiling state.
  MetricId m_events_ = 0;
  MetricId m_queue_depth_ = 0;
  MetricId m_events_per_cycle_ = 0;
  /// Per-tag dispatch metrics, created on first sight of each tag:
  /// a monotone dispatch counter plus a calendar-cost histogram (queue
  /// depth at dispatch — the deterministic proxy for per-event dispatch
  /// cost; wall clocks are banned in model code).
  struct TagMetrics {
    MetricId count = 0;
    MetricId cost = 0;
  };
  std::map<std::string, TagMetrics> tag_metrics_;
  Cycle profile_cycle_ = 0;
  std::uint64_t events_this_cycle_ = 0;
  bool closed_ = false;
};

}  // namespace erapid::obs
