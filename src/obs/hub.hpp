// Observability hub — one per Simulation, threaded through the model layers.
//
// The Hub owns the optional TraceSink and the MetricsRegistry and is the
// single object instrumented components talk to. Every component takes an
// `obs::Hub*` defaulting to nullptr, so
//
//   * library users and tests that build components directly pay nothing
//     and change nothing;
//   * with obs off (the default) the only cost at a probe site is one
//     null-pointer test — the golden fixture pins that the event stream is
//     byte-identical to pre-obs builds;
//   * with ERAPID_NO_OBS defined the probe macros (probe.hpp) compile to
//     nothing at all.
//
// The Hub also implements des::Engine::DispatchHook: installed by the
// Simulation driver, it self-profiles the event calendar (events per tag,
// queue depth, events/sim-cycle counter tracks) without des/ depending on
// the obs layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "des/engine.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// Runtime observability options (the `obs.*` + `monitor.*` INI sections).
struct ObsConfig {
  /// Master switch: off keeps the simulation byte-identical to a build
  /// without the subsystem.
  bool enabled = false;
  /// Trace output path; empty = metrics only, no trace file.
  std::string trace_path;
  /// "chrome" (trace-event JSON) or "csv" (timeline rows).
  std::string trace_format = "chrome";
  /// Cadence of sampled counter tracks (power, backlog, lanes lit) — and
  /// of the power-cap monitor's envelope checks.
  CycleDelta counter_interval = 500;
  /// Verbose per-event dispatch spans in the trace (large files; off by
  /// default — the aggregated des.* counter tracks are usually enough).
  bool trace_events = false;
  /// Runtime envelope checks (the `monitor.*` section); all off by
  /// default — the report then carries no `obs_monitors` block.
  MonitorConfig monitors;
  /// A monitor violation ends the simulation through the contract layer
  /// instead of just being reported.
  bool monitor_fail_fast = false;
  /// Telemetry JSONL output path; empty = no telemetry plane. The window
  /// event exists only when set, so default-off runs keep their DES event
  /// sequence (and golden reports) byte-identical.
  std::string telemetry_path;
  /// Cycles per telemetry record.
  CycleDelta telemetry_window = 2000;
  /// Traffic-matrix flows listed per record.
  std::uint32_t telemetry_top_k = 8;
  /// Per-flow traffic-matrix EWMA weight, in (0, 1].
  double telemetry_ewma_alpha = 0.3;
  /// Phase detector EWMA weight, in (0, 1].
  double telemetry_phase_alpha = 0.2;
  /// Phase detector CUSUM dead-band (utilization per window).
  double telemetry_phase_slack = 0.05;
  /// Phase detector CUSUM firing threshold.
  double telemetry_phase_threshold = 0.25;
  /// Flight recorder ring depth; 0 = no flight recorder.
  std::size_t flight_recorder_depth = 0;
  /// Flight recorder dump path (written only when a trigger fires).
  std::string flight_recorder_path = "flight_recorder.json";

  [[nodiscard]] bool telemetry_on() const { return enabled && !telemetry_path.empty(); }
  [[nodiscard]] bool flight_recorder_on() const {
    return enabled && flight_recorder_depth > 0;
  }
};

/// Well-known track names (one source of truth for writers and the
/// summarize_trace.py validator).
struct Tracks {
  static constexpr const char* kEngine = "des.engine";
  static constexpr const char* kReconfig = "reconfig";
  static constexpr const char* kLanes = "optical.lanes";
  static constexpr const char* kPower = "power";
  static constexpr const char* kFault = "fault";
  static constexpr const char* kCounters = "counters";
  /// Registered only when at least one monitor is configured, so
  /// monitor-free traces stay byte-identical to pre-monitor builds.
  static constexpr const char* kMonitors = "obs.monitors";
  /// Registered only when the telemetry plane is configured (same
  /// byte-compatibility rule as kMonitors).
  static constexpr const char* kTelemetry = "obs.telemetry";
};

/// Central observability context (see file comment).
class Hub final : public des::Engine::DispatchHook {
 public:
  explicit Hub(const ObsConfig& cfg);
  ~Hub() override;

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Master toggle — probe macros check this before touching anything.
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const ObsConfig& config() const { return cfg_; }

  /// Null when tracing is off (metrics may still be on).
  [[nodiscard]] TraceSink* trace() { return trace_.get(); }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Null unless at least one `monitor.*` check is configured.
  [[nodiscard]] MonitorSet* monitors() { return monitors_.get(); }
  [[nodiscard]] const MonitorSet* monitors() const { return monitors_.get(); }
  /// Null unless `obs.flight_recorder_depth > 0`.
  [[nodiscard]] FlightRecorder* flight() { return flight_.get(); }
  [[nodiscard]] const FlightRecorder* flight() const { return flight_.get(); }
  /// Null until init_telemetry on a telemetry-configured run.
  [[nodiscard]] EnergyLedger* ledger() { return ledger_.get(); }
  [[nodiscard]] Telemetry* telemetry() { return telemetry_.get(); }
  [[nodiscard]] const Telemetry* telemetry() const { return telemetry_.get(); }

  /// Builds the telemetry plane (energy ledger + estimator + emitter) on a
  /// telemetry-configured run; a no-op otherwise. The driver calls this
  /// once, after the network exists, and then tags the ledger's sources and
  /// attaches it to the meter before any lane lights up.
  void init_telemetry(des::Engine& engine, std::uint32_t boards,
                      Telemetry::Sampler sampler);

  // Pre-registered tracks (all writers see the same set in the same order,
  // so chrome and csv backends agree on track ids).
  [[nodiscard]] TrackId track_engine() const { return t_engine_; }
  [[nodiscard]] TrackId track_reconfig() const { return t_reconfig_; }
  [[nodiscard]] TrackId track_lanes() const { return t_lanes_; }
  [[nodiscard]] TrackId track_power() const { return t_power_; }
  [[nodiscard]] TrackId track_fault() const { return t_fault_; }
  [[nodiscard]] TrackId track_counters() const { return t_counters_; }
  [[nodiscard]] TrackId track_monitors() const { return t_monitors_; }
  [[nodiscard]] TrackId track_telemetry() const { return t_telemetry_; }

  /// Finalizes the trace file. Idempotent.
  void close(Cycle now);

  // ---- des::Engine::DispatchHook (engine self-profiling) ----
  void on_dispatch_begin(const char* tag, Cycle now) override;
  void on_dispatch_end(const char* tag, Cycle now, std::size_t queue_size,
                       std::uint64_t executed) override;

 private:
  ObsConfig cfg_;
  std::unique_ptr<TraceSink> trace_;
  MetricsRegistry metrics_;
  std::unique_ptr<MonitorSet> monitors_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<EnergyLedger> ledger_;
  std::unique_ptr<Telemetry> telemetry_;
  bool contract_observer_installed_ = false;

  TrackId t_engine_ = 0;
  TrackId t_reconfig_ = 0;
  TrackId t_lanes_ = 0;
  TrackId t_power_ = 0;
  TrackId t_fault_ = 0;
  TrackId t_counters_ = 0;
  TrackId t_monitors_ = 0;
  TrackId t_telemetry_ = 0;

  // Engine self-profiling state.
  MetricId m_events_ = 0;
  MetricId m_queue_depth_ = 0;
  MetricId m_events_per_cycle_ = 0;
  /// Per-tag dispatch metrics, created on first sight of each tag:
  /// a monotone dispatch counter plus a calendar-cost histogram (queue
  /// depth at dispatch — the deterministic proxy for per-event dispatch
  /// cost; wall clocks are banned in model code).
  struct TagMetrics {
    MetricId count = 0;
    MetricId cost = 0;
  };
  std::map<std::string, TagMetrics> tag_metrics_;
  Cycle profile_cycle_ = 0;
  std::uint64_t events_this_cycle_ = 0;
  bool closed_ = false;
};

}  // namespace erapid::obs
