// Per-board, per-component energy attribution ledger.
//
// The EnergyMeter time-integrates one network-wide power total; the ledger
// splits that same signal per board and per component so the telemetry
// records (and an energy-proportionality study) can say *where* the power
// went. Attribution buckets:
//
//   laser   transmitter side (VCSEL + driver) of the lane's quoted level
//           total, split by the analytic component model's tx/rx ratio at
//           that operating point (components.hpp);
//   serdes  receiver side (photodetector + TIA + CDR) — the exact
//           complement, so laser + serdes == the lane total bitwise;
//   buffer, ctrl  reserved attribution targets (always zero today: only
//           lanes register power sources; board buffers and the control
//           ring are unmetered).
//
// Reconciliation contract: the ledger mirrors the meter's exact update
// sequence — identical deltas, applied in identical order, to an identical
// stats::TimeWeighted — so its total integral equals the meter's total
// *bitwise*, and `reconcile` holds that as an ERAPID_INVARIANT with exact
// `==`. Any attribution path that dropped or reordered an update would
// trip it immediately.
//
// The ledger lives in obs (power already depends on obs for probes; the
// reverse include would be circular) and speaks plain doubles: the driver
// feeds it the level→laser share table at setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "stats/time_weighted.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// Per-board component energy integrals (mW·cycles) up to a query cycle.
struct BoardEnergy {
  double laser_mw_cycles = 0.0;
  double serdes_mw_cycles = 0.0;
  double buffer_mw_cycles = 0.0;  ///< reserved, zero today (see file comment)
  double ctrl_mw_cycles = 0.0;    ///< reserved, zero today
  double total_mw_cycles = 0.0;
};

/// Attribution mirror of the EnergyMeter (see file comment).
class EnergyLedger {
 public:
  explicit EnergyLedger(std::uint32_t boards);

  /// Declares that a lane level quoted at `level_mw` total draws `laser_mw`
  /// on the transmitter side. Totals without an entry attribute fully to
  /// serdes (laser share 0); the OFF level (0 mW) needs no entry.
  void set_laser_share(double level_mw, double laser_mw);

  /// Assigns meter source `id` to `board`. Every source that will feed
  /// `on_set_power` must be tagged first.
  void tag_source(std::uint32_t id, std::uint32_t board);

  /// Mirror of EnergyMeter::set_power, invoked by the meter after its own
  /// delta != 0 early-return — same id, same cycle, same new level.
  void on_set_power(std::uint32_t id, Cycle now, double mw);

  /// Mirror of EnergyMeter::checkpoint. The meter's checkpoint advances its
  /// integrator's accumulation point; the mirror must partition its sum at
  /// the same cycles or float non-associativity breaks exact equality.
  void on_checkpoint(Cycle now);

  /// Mirrored network-wide energy integral (mW·cycles).
  [[nodiscard]] double total_mw_cycles(Cycle now) const { return total_.integral(now); }

  [[nodiscard]] BoardEnergy board_energy(std::uint32_t board, Cycle now) const;

  [[nodiscard]] std::uint32_t boards() const { return boards_; }
  [[nodiscard]] std::size_t tagged_sources() const;

  /// Holds the reconciliation contract against the meter's own integral at
  /// `now` (exact equality — see file comment).
  void reconcile(Cycle now, double meter_total_mw_cycles) const;

 private:
  static constexpr std::uint32_t kUntagged = 0xffffffffu;

  [[nodiscard]] double laser_mw_for(double level_mw) const;

  std::uint32_t boards_;
  /// (level total mW → laser mW); at most one entry per DVS level, scanned
  /// linearly with exact comparison (levels are copied, never recomputed).
  std::vector<std::pair<double, double>> laser_share_;
  std::vector<std::uint32_t> board_of_;   ///< per source id
  std::vector<double> level_;             ///< mirror of the meter's levels
  std::vector<double> laser_level_;       ///< laser share of each source's level
  stats::TimeWeighted total_;             ///< bitwise mirror of the meter total
  std::vector<stats::TimeWeighted> board_total_;
  std::vector<stats::TimeWeighted> board_laser_;
};

}  // namespace erapid::obs
