#include "obs/hub.hpp"

#include "util/expect.hpp"

namespace erapid::obs {

Hub::Hub(const ObsConfig& cfg) : cfg_(cfg) {
  if (!cfg_.enabled) return;
  ERAPID_EXPECT(cfg_.counter_interval > 0, "obs.counter_interval must be positive");
  if (!cfg_.trace_path.empty()) {
    if (cfg_.trace_format == "chrome") {
      trace_ = std::make_unique<ChromeTraceWriter>(cfg_.trace_path);
    } else if (cfg_.trace_format == "csv") {
      trace_ = std::make_unique<CsvTimelineWriter>(cfg_.trace_path);
    } else {
      ERAPID_EXPECT(false, "unknown obs.trace_format: '" + cfg_.trace_format +
                               "' (chrome | csv)");
    }
    t_engine_ = trace_->register_track(Tracks::kEngine);
    t_reconfig_ = trace_->register_track(Tracks::kReconfig);
    t_lanes_ = trace_->register_track(Tracks::kLanes);
    t_power_ = trace_->register_track(Tracks::kPower);
    t_fault_ = trace_->register_track(Tracks::kFault);
    t_counters_ = trace_->register_track(Tracks::kCounters);
    // The monitors track exists only when a monitor is configured, so
    // monitor-free traces (and the golden fixture) keep their track list.
    if (cfg_.monitors.any()) t_monitors_ = trace_->register_track(Tracks::kMonitors);
    // Same rule for the telemetry track — registered last so existing
    // traces keep their track-id assignment.
    if (cfg_.telemetry_on()) t_telemetry_ = trace_->register_track(Tracks::kTelemetry);
  }
  m_events_ = metrics_.counter("des.events");
  m_queue_depth_ = metrics_.series("des.queue_depth");
  m_events_per_cycle_ = metrics_.series("des.events_per_cycle");
  if (cfg_.monitors.any()) {
    monitors_ = std::make_unique<MonitorSet>(cfg_.monitors, cfg_.monitor_fail_fast,
                                             trace_.get(), t_monitors_, metrics_);
  }
  if (cfg_.flight_recorder_on()) {
    flight_ = std::make_unique<FlightRecorder>(cfg_.flight_recorder_depth,
                                               cfg_.flight_recorder_path);
    // Black-box feeds: every monitor violation and every contract failure
    // triggers a dump of the ring as it stood at the trigger.
    if (monitors_) {
      monitors_->set_violation_hook(
          [this](const char* name, Cycle now, double value, double threshold) {
            Args args;
            args.add("value", value).add("threshold", threshold);
            flight_->record(now, std::string("monitor.") + name, args.str());
            flight_->dump(now, "monitor_violation", name);
          });
    }
    erapid::set_contract_observer([this](const char* kind, const std::string& what) {
      // Contract failures carry no simulated timestamp; the last dispatch
      // cycle the hub profiled is the deterministic stand-in.
      flight_->record(profile_cycle_, std::string("contract.") + kind, "");
      flight_->dump(profile_cycle_, "contract_failure", what);
    });
    contract_observer_installed_ = true;
  }
}

void Hub::init_telemetry(des::Engine& engine, std::uint32_t boards,
                         Telemetry::Sampler sampler) {
  if (!cfg_.telemetry_on()) return;
  ERAPID_REQUIRE(telemetry_ == nullptr, "telemetry plane initialized twice");
  ledger_ = std::make_unique<EnergyLedger>(boards);
  TelemetryConfig tc;
  tc.path = cfg_.telemetry_path;
  tc.window = cfg_.telemetry_window;
  tc.top_k = cfg_.telemetry_top_k;
  tc.ewma_alpha = cfg_.telemetry_ewma_alpha;
  tc.phase_alpha = cfg_.telemetry_phase_alpha;
  tc.phase_slack = cfg_.telemetry_phase_slack;
  tc.phase_threshold = cfg_.telemetry_phase_threshold;
  telemetry_ = std::make_unique<Telemetry>(engine, tc, boards, ledger_.get(), *this,
                                           std::move(sampler));
}

Hub::~Hub() { close(profile_cycle_); }

void Hub::close(Cycle now) {
  if (closed_) return;
  closed_ = true;
  if (contract_observer_installed_) {
    // The observer captures `this`; it must not outlive the hub.
    erapid::set_contract_observer({});
    contract_observer_installed_ = false;
  }
  if (events_this_cycle_ > 0) {
    metrics_.observe(m_events_per_cycle_, static_cast<double>(events_this_cycle_));
    events_this_cycle_ = 0;
  }
  if (trace_) trace_->close(now);
  ERAPID_INVARIANT(!contract_observer_installed_,
                   "close() must clear the contract observer");
}

void Hub::on_dispatch_begin(const char* tag, Cycle now) {
  ERAPID_EXPECT(!closed_, "event dispatched after Hub::close()");
  if (!cfg_.enabled) return;
  if (trace_ && cfg_.trace_events) {
    trace_->begin(t_engine_, tag != nullptr ? tag : "event", now);
  }
}

void Hub::on_dispatch_end(const char* tag, Cycle now, std::size_t queue_size,
                          std::uint64_t /*executed*/) {
  ERAPID_EXPECT(!closed_, "event dispatched after Hub::close()");
  if (!cfg_.enabled) return;
  metrics_.add(m_events_);
  metrics_.observe(m_queue_depth_, static_cast<double>(queue_size));

  const char* label = tag != nullptr ? tag : "event";
  auto it = tag_metrics_.find(label);
  if (it == tag_metrics_.end()) {
    TagMetrics tm;
    tm.count = metrics_.counter(std::string("des.tag.") + label);
    tm.cost = metrics_.histogram(std::string("des.dispatch_cost.") + label);
    it = tag_metrics_.emplace(label, tm).first;
  }
  metrics_.add(it->second.count);
  metrics_.observe(it->second.cost, static_cast<double>(queue_size));

  // Events-per-cycle self-profiling: flush the tally when time advances.
  if (now != profile_cycle_) {
    if (events_this_cycle_ > 0) {
      metrics_.observe(m_events_per_cycle_, static_cast<double>(events_this_cycle_));
    }
    profile_cycle_ = now;
    events_this_cycle_ = 0;
  }
  ++events_this_cycle_;

  if (trace_ && cfg_.trace_events) {
    trace_->end(t_engine_, label, now);
  }
}

}  // namespace erapid::obs
