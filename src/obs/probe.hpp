// Zero-cost-when-off probe macros.
//
// Instrumented model code emits through these instead of calling the Hub
// directly, so observability has three "off" gears:
//
//   1. hub == nullptr (a component built without a hub): one branch.
//   2. hub->enabled() == false (obs.enabled=false at runtime): two
//      branches, no allocation, no I/O.
//   3. ERAPID_NO_OBS defined at compile time: the probes vanish entirely
//      (argument expressions are not evaluated — keep them side-effect
//      free), for maximum-speed batch sweeps.
//
// Trace-only probes additionally check that a TraceSink is attached.
// The `hub` argument is always an `obs::Hub*` (possibly null).
#pragma once

#include "obs/hub.hpp"

#if defined(ERAPID_NO_OBS)

#define ERAPID_OBS_DETAIL_SINK(hub, call) do { } while (false)
#define ERAPID_OBS_DETAIL_METRICS(hub, call) do { } while (false)

#else

/// Runs `call` against the hub's TraceSink when tracing is live.
#define ERAPID_OBS_DETAIL_SINK(hub, call)                          \
  do {                                                             \
    if ((hub) != nullptr && (hub)->enabled()) {                    \
      if (auto* erapid_obs_sink_ = (hub)->trace()) {               \
        erapid_obs_sink_->call;                                    \
      }                                                            \
    }                                                              \
  } while (false)

/// Runs `call` against the hub's MetricsRegistry when obs is on.
#define ERAPID_OBS_DETAIL_METRICS(hub, call)                       \
  do {                                                             \
    if ((hub) != nullptr && (hub)->enabled()) {                    \
      (hub)->metrics().call;                                       \
    }                                                              \
  } while (false)

#endif  // ERAPID_NO_OBS

/// Closed span of simulated time [ts, ts+dur] on `track`.
#define ERAPID_TRACE_SPAN(hub, track, name, ts, dur, args) \
  ERAPID_OBS_DETAIL_SINK(hub, complete((track), (name), (ts), (dur), (args)))

/// Open-ended span pair (sequential per track).
#define ERAPID_TRACE_BEGIN(hub, track, name, ts) \
  ERAPID_OBS_DETAIL_SINK(hub, begin((track), (name), (ts)))
#define ERAPID_TRACE_END(hub, track, name, ts) \
  ERAPID_OBS_DETAIL_SINK(hub, end((track), (name), (ts)))

/// Async span pair (overlapping lifecycles keyed by id).
#define ERAPID_TRACE_ASYNC_BEGIN(hub, track, name, id, ts, args) \
  ERAPID_OBS_DETAIL_SINK(hub, async_begin((track), (name), (id), (ts), (args)))
#define ERAPID_TRACE_ASYNC_END(hub, track, name, id, ts) \
  ERAPID_OBS_DETAIL_SINK(hub, async_end((track), (name), (id), (ts)))

/// Instantaneous mark.
#define ERAPID_TRACE_INSTANT(hub, track, name, ts, args) \
  ERAPID_OBS_DETAIL_SINK(hub, instant((track), (name), (ts), (args)))

/// Counter-track sample (trace only; pair with ERAPID_METRIC_* for the
/// registry side).
#define ERAPID_TRACE_COUNTER(hub, track, name, ts, value) \
  ERAPID_OBS_DETAIL_SINK(hub, counter((track), (name), (ts), (value)))

/// Monotone counter increment in the metrics registry. `id_expr` is a
/// MetricId obtained at registration time.
#define ERAPID_COUNTER(hub, id_expr, delta) \
  ERAPID_OBS_DETAIL_METRICS(hub, add((id_expr), (delta)))

/// Gauge level change in the metrics registry.
#define ERAPID_GAUGE_SET(hub, id_expr, now, level) \
  ERAPID_OBS_DETAIL_METRICS(hub, set_gauge((id_expr), (now), (level)))

/// Distribution sample in the metrics registry.
#define ERAPID_OBSERVE(hub, id_expr, sample) \
  ERAPID_OBS_DETAIL_METRICS(hub, observe((id_expr), (sample)))
