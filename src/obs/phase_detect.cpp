#include "obs/phase_detect.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::obs {

PhaseDetector::PhaseDetector(const PhaseDetectorConfig& cfg) : cfg_(cfg) {
  ERAPID_REQUIRE(cfg.alpha > 0.0 && cfg.alpha <= 1.0,
                 "phase alpha must be in (0, 1], got " << cfg.alpha);
  ERAPID_REQUIRE(cfg.slack >= 0.0, "phase slack cannot be negative: " << cfg.slack);
  ERAPID_REQUIRE(cfg.threshold > 0.0,
                 "phase threshold must be positive, got " << cfg.threshold);
}

bool PhaseDetector::update(double x) {
  ERAPID_REQUIRE(x >= 0.0, "utilization sample cannot be negative: " << x);
  ++samples_;
  if (!seeded_) {
    // The first window seeds the operating point; no change can fire off a
    // single observation.
    mean_ = x;
    seeded_ = true;
    return false;
  }
  g_up_ = std::max(0.0, g_up_ + (x - mean_ - cfg_.slack));
  g_down_ = std::max(0.0, g_down_ + (mean_ - x - cfg_.slack));
  if (g_up_ > cfg_.threshold || g_down_ > cfg_.threshold) {
    ++phase_;
    g_up_ = 0.0;
    g_down_ = 0.0;
    mean_ = x;  // restart at the new operating point
    return true;
  }
  mean_ = cfg_.alpha * x + (1.0 - cfg_.alpha) * mean_;
  return false;
}

}  // namespace erapid::obs
