#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>

#include "util/expect.hpp"

namespace erapid::obs {

std::string format_trace_value(double v) {
  // %.17g would round-trip but produces noisy digits; the traced values are
  // counters, utilizations and mW levels where 12 significant digits is
  // already beyond model resolution. snprintf("%g") is locale-independent
  // for the "C" locale the simulator never changes.
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- Args -------------------------------------------------------------------

void Args::sep() {
  if (!body_.empty()) body_ += ',';
}

Args& Args::add(const char* key, std::uint64_t v) {
  ERAPID_EXPECT(key != nullptr && *key != '\0', "trace arg key must be non-empty");
  sep();
  body_ += '"';
  body_ += key;
  body_ += "\":" + std::to_string(v);
  return *this;
}

Args& Args::add(const char* key, std::int64_t v) {
  ERAPID_EXPECT(key != nullptr && *key != '\0', "trace arg key must be non-empty");
  sep();
  body_ += '"';
  body_ += key;
  body_ += "\":" + std::to_string(v);
  return *this;
}

Args& Args::add(const char* key, double v) {
  ERAPID_EXPECT(key != nullptr && *key != '\0', "trace arg key must be non-empty");
  sep();
  body_ += '"';
  body_ += key;
  body_ += "\":" + format_trace_value(v);
  return *this;
}

Args& Args::add(const char* key, const std::string& v) {
  ERAPID_EXPECT(key != nullptr && *key != '\0', "trace arg key must be non-empty");
  sep();
  body_ += '"';
  body_ += key;
  body_ += "\":\"" + json_escape(v) + '"';
  return *this;
}

// ---- ChromeTraceWriter ------------------------------------------------------

ChromeTraceWriter::ChromeTraceWriter(const std::string& path) : out_(path) {
  ERAPID_EXPECT(static_cast<bool>(out_), "cannot open trace file: " + path);
  out_ << "{\"traceEvents\":[\n"
       << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
          "\"args\":{\"name\":\"erapid\"}}";
}

ChromeTraceWriter::~ChromeTraceWriter() { close(0); }

TrackId ChromeTraceWriter::register_track(const std::string& name) {
  ERAPID_EXPECT(!closed_, "cannot register a track on a closed trace");
  const TrackId id = next_track_++;
  out_ << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << id
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  return id;
}

void ChromeTraceWriter::event_prefix(const char* ph, TrackId track, const char* name,
                                     Cycle ts) {
  ++events_;
  out_ << ",\n{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << ph
       << "\",\"pid\":0,\"tid\":" << track << ",\"ts\":" << ts;
}

void ChromeTraceWriter::complete(TrackId track, const char* name, Cycle ts,
                                 CycleDelta dur, const std::string& args_json) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("X", track, name, ts);
  out_ << ",\"dur\":" << dur;
  if (!args_json.empty()) out_ << ",\"args\":" << args_json;
  out_ << '}';
}

void ChromeTraceWriter::begin(TrackId track, const char* name, Cycle ts) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("B", track, name, ts);
  out_ << '}';
}

void ChromeTraceWriter::end(TrackId track, const char* name, Cycle ts) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("E", track, name, ts);
  out_ << '}';
}

void ChromeTraceWriter::async_begin(TrackId track, const char* name, std::uint64_t id,
                                    Cycle ts, const std::string& args_json) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("b", track, name, ts);
  out_ << ",\"cat\":\"erapid\",\"id\":" << id;
  if (!args_json.empty()) out_ << ",\"args\":" << args_json;
  out_ << '}';
}

void ChromeTraceWriter::async_end(TrackId track, const char* name, std::uint64_t id,
                                  Cycle ts) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("e", track, name, ts);
  out_ << ",\"cat\":\"erapid\",\"id\":" << id << '}';
}

void ChromeTraceWriter::instant(TrackId track, const char* name, Cycle ts,
                                const std::string& args_json) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("i", track, name, ts);
  out_ << ",\"s\":\"t\"";
  if (!args_json.empty()) out_ << ",\"args\":" << args_json;
  out_ << '}';
}

void ChromeTraceWriter::counter(TrackId track, const char* name, Cycle ts,
                                double value) {
  ERAPID_EXPECT(!closed_, "trace event emitted after close()");
  event_prefix("C", track, name, ts);
  out_ << ",\"args\":{\"value\":" << format_trace_value(value) << "}}";
}

void ChromeTraceWriter::close(Cycle now) {
  if (closed_ || !out_.is_open()) return;
  closed_ = true;
  out_ << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"schema\":\"" << kSchema
       << "\",\"end_cycle\":" << now << ",\"events\":" << events_ << "}}\n";
  out_.close();
  ERAPID_INVARIANT(!out_.is_open(), "close() must release the trace file");
}

// ---- CsvTimelineWriter ------------------------------------------------------

CsvTimelineWriter::CsvTimelineWriter(const std::string& path) : out_(path) {
  ERAPID_EXPECT(static_cast<bool>(out_), "cannot open trace file: " + path);
  out_ << "cycle,kind,track,name,id,value,args\n";
}

CsvTimelineWriter::~CsvTimelineWriter() { close(0); }

TrackId CsvTimelineWriter::register_track(const std::string& name) {
  ERAPID_EXPECT(!closed_, "cannot register a track on a closed trace");
  track_names_.push_back(name);
  return static_cast<TrackId>(track_names_.size() - 1);
}

void CsvTimelineWriter::row(Cycle ts, const char* kind, TrackId track, const char* name,
                            const std::string& id, const std::string& value,
                            const std::string& args) {
  ERAPID_EXPECT(track < track_names_.size(), "event on an unregistered trace track");
  // args is JSON and may contain commas: quote it, doubling inner quotes.
  std::string quoted;
  if (!args.empty()) {
    quoted = "\"";
    for (const char c : args) {
      if (c == '"') quoted += "\"\"";
      else quoted += c;
    }
    quoted += '"';
  }
  out_ << ts << ',' << kind << ',' << track_names_[track] << ',' << name << ',' << id
       << ',' << value << ',' << quoted << '\n';
}

void CsvTimelineWriter::complete(TrackId track, const char* name, Cycle ts,
                                 CycleDelta dur, const std::string& args_json) {
  row(ts, "span", track, name, "", std::to_string(dur), args_json);
}

void CsvTimelineWriter::begin(TrackId track, const char* name, Cycle ts) {
  row(ts, "begin", track, name, "", "", "");
}

void CsvTimelineWriter::end(TrackId track, const char* name, Cycle ts) {
  row(ts, "end", track, name, "", "", "");
}

void CsvTimelineWriter::async_begin(TrackId track, const char* name, std::uint64_t id,
                                    Cycle ts, const std::string& args_json) {
  row(ts, "abegin", track, name, std::to_string(id), "", args_json);
}

void CsvTimelineWriter::async_end(TrackId track, const char* name, std::uint64_t id,
                                  Cycle ts) {
  row(ts, "aend", track, name, std::to_string(id), "", "");
}

void CsvTimelineWriter::instant(TrackId track, const char* name, Cycle ts,
                                const std::string& args_json) {
  row(ts, "instant", track, name, "", "", args_json);
}

void CsvTimelineWriter::counter(TrackId track, const char* name, Cycle ts,
                                double value) {
  row(ts, "counter", track, name, "", format_trace_value(value), "");
}

void CsvTimelineWriter::close(Cycle /*now*/) {
  if (closed_ || !out_.is_open()) return;
  closed_ = true;
  out_.close();
  ERAPID_INVARIANT(!out_.is_open(), "close() must release the trace file");
}

}  // namespace erapid::obs
