#include "obs/flight_recorder.hpp"

#include <fstream>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace erapid::obs {

FlightRecorder::FlightRecorder(std::size_t depth, std::string path)
    : depth_(depth), path_(std::move(path)) {
  ERAPID_REQUIRE(depth_ > 0, "flight recorder needs a positive ring depth");
  ERAPID_REQUIRE(!path_.empty(), "flight recorder needs a dump path");
  ring_.reserve(depth_);
}

void FlightRecorder::record(Cycle now, const std::string& kind,
                            const std::string& detail_json) {
  ERAPID_REQUIRE(!kind.empty(), "flight recorder event needs a kind");
  ++recorded_;
  if (ring_.size() < depth_) {
    ring_.push_back({now, kind, detail_json});
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = {now, kind, detail_json};
  head_ = (head_ + 1) % depth_;
}

void FlightRecorder::dump(Cycle now, const std::string& reason,
                          const std::string& trigger) {
  ++dumps_;
  std::ofstream out(path_);
  ERAPID_EXPECT(static_cast<bool>(out), "cannot open flight recorder dump: " + path_);
  out << "{\n"
      << "  \"schema\": \"" << kSchema << "\",\n"
      << "  \"reason\": \"" << json_escape(reason) << "\",\n"
      << "  \"trigger\": \"" << json_escape(trigger) << "\",\n"
      << "  \"cycle\": " << now << ",\n"
      << "  \"depth\": " << depth_ << ",\n"
      << "  \"events_recorded\": " << recorded_ << ",\n"
      << "  \"events\": [";
  bool first = true;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Event& e = ring_[(head_ + i) % ring_.size()];  // oldest first
    out << (first ? "\n" : ",\n") << "    {\"cycle\": " << e.cycle << ", \"kind\": \""
        << json_escape(e.kind) << "\", \"detail\": "
        << (e.detail.empty() ? "{}" : e.detail) << "}";
    first = false;
  }
  out << (first ? "]\n" : "\n  ]\n") << "}\n";
  ERAPID_EXPECT(static_cast<bool>(out), "flight recorder dump failed: " + path_);
}

}  // namespace erapid::obs
