#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.hpp"

namespace erapid::obs {

MetricId MetricsRegistry::get_or_create(const std::string& name, Kind kind, Cycle start,
                                        double initial) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    ERAPID_EXPECT(entries_[it->second].kind == kind,
                  "metric '" + name + "' re-registered with a different kind");
    return it->second;
  }
  Entry e;
  e.name = name;
  e.kind = kind;
  e.level = stats::TimeWeighted(start, initial);
  entries_.push_back(std::move(e));
  const auto id = static_cast<MetricId>(entries_.size() - 1);
  index_.emplace(name, id);
  return id;
}

MetricId MetricsRegistry::counter(const std::string& name) {
  return get_or_create(name, Kind::Counter, 0, 0.0);
}

MetricId MetricsRegistry::gauge(const std::string& name, Cycle start, double initial) {
  return get_or_create(name, Kind::Gauge, start, initial);
}

MetricId MetricsRegistry::series(const std::string& name) {
  return get_or_create(name, Kind::Series, 0, 0.0);
}

MetricId MetricsRegistry::timeline(const std::string& name) {
  return get_or_create(name, Kind::Timeline, 0, 0.0);
}

MetricId MetricsRegistry::histogram(const std::string& name) {
  ERAPID_REQUIRE(!name.empty(), "metric name must be non-empty");
  const auto id = get_or_create(name, Kind::Histogram, 0, 0.0);
  entries_[id].buckets.resize(kHistogramBuckets, 0);
  return id;
}

std::size_t histogram_bucket_of(double sample) {
  // The scheme is pure arithmetic on the sample value — no run-dependent
  // state — so equal samples land in equal buckets across runs. Negative
  // and sub-1 samples share bucket 0; ilogb on finite positives >= 1 gives
  // floor(log2(sample)) exactly.
  if (!(sample >= 1.0)) return 0;
  const int lg = std::ilogb(sample);
  const auto bucket = static_cast<std::size_t>(lg) + 1;
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

const MetricsRegistry::Entry& MetricsRegistry::at(MetricId id, Kind kind) const {
  ERAPID_REQUIRE(id < entries_.size(), "unregistered metric id=" << id);
  ERAPID_REQUIRE(entries_[id].kind == kind,
                 "metric '" << entries_[id].name << "' used as the wrong kind");
  return entries_[id];
}

MetricsRegistry::Entry& MetricsRegistry::at(MetricId id, Kind kind) {
  return const_cast<Entry&>(static_cast<const MetricsRegistry&>(*this).at(id, kind));
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  at(id, Kind::Counter).count += delta;
}

void MetricsRegistry::set_gauge(MetricId id, Cycle now, double level) {
  at(id, Kind::Gauge).level.set(now, level);
}

void MetricsRegistry::observe(MetricId id, double sample) {
  ERAPID_REQUIRE(id < entries_.size(), "unregistered metric id=" << id);
  Entry& e = entries_[id];
  ERAPID_REQUIRE(e.kind == Kind::Series || e.kind == Kind::Histogram,
                 "metric '" << e.name << "' used as the wrong kind");
  e.samples.add(sample);
  if (e.kind == Kind::Histogram) ++e.buckets[histogram_bucket_of(sample)];
}

void MetricsRegistry::record(MetricId id, Cycle cycle, double value) {
  Entry& e = at(id, Kind::Timeline);
  ERAPID_EXPECT(e.points.empty() || cycle >= e.points.back().cycle,
                "timeline samples must be recorded in time order");
  e.points.push_back({cycle, value});
  e.samples.add(value);
}

std::uint64_t MetricsRegistry::counter_value(MetricId id) const {
  return at(id, Kind::Counter).count;
}

double MetricsRegistry::gauge_level(MetricId id) const {
  return at(id, Kind::Gauge).level.level();
}

double MetricsRegistry::gauge_average(MetricId id, Cycle window_start, Cycle now) const {
  return at(id, Kind::Gauge).level.average(window_start, now);
}

const stats::Streaming& MetricsRegistry::series_stats(MetricId id) const {
  return at(id, Kind::Series).samples;
}

const std::vector<TimelinePoint>& MetricsRegistry::timeline_points(MetricId id) const {
  return at(id, Kind::Timeline).points;
}

const stats::Streaming& MetricsRegistry::timeline_stats(MetricId id) const {
  return at(id, Kind::Timeline).samples;
}

const stats::Streaming& MetricsRegistry::histogram_stats(MetricId id) const {
  return at(id, Kind::Histogram).samples;
}

std::uint64_t MetricsRegistry::histogram_bucket_count(MetricId id, std::size_t bucket) const {
  const Entry& e = at(id, Kind::Histogram);
  ERAPID_REQUIRE(bucket < e.buckets.size(), "histogram bucket " << bucket << " out of range");
  return e.buckets[bucket];
}

namespace {

/// Quantile over log2 buckets: walk to the bucket containing the q-th
/// sample, interpolate linearly inside it, clamp to observed [min, max].
double bucket_quantile(const std::vector<std::uint64_t>& buckets, const stats::Streaming& s,
                       double q) {
  if (s.count() == 0) return 0.0;
  ERAPID_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q=" << q << " outside [0,1]");
  const double target = q * static_cast<double>(s.count());
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto next = seen + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      const double v = lo + (hi - lo) * frac;
      return std::min(std::max(v, s.min()), s.max());
    }
    seen = next;
  }
  return s.max();
}

}  // namespace

double MetricsRegistry::histogram_quantile(MetricId id, double q) const {
  const Entry& e = at(id, Kind::Histogram);
  return bucket_quantile(e.buckets, e.samples, q);
}

namespace {

std::string distribution_json(const char* count_key, const stats::Streaming& s) {
  std::ostringstream os;
  os << "{\"" << count_key << "\": " << s.count()
     << ", \"min\": " << format_trace_value(s.min())
     << ", \"mean\": " << format_trace_value(s.mean())
     << ", \"max\": " << format_trace_value(s.max()) << '}';
  return os.str();
}

}  // namespace

std::string MetricsRegistry::render(const Entry& e, Cycle now) {
  switch (e.kind) {
    case Kind::Counter:
      return std::to_string(e.count);
    case Kind::Gauge:
      return "{\"level\": " + format_trace_value(e.level.level()) +
             ", \"avg\": " + format_trace_value(e.level.average(0, now)) + "}";
    case Kind::Series:
      return distribution_json("count", e.samples);
    case Kind::Timeline:
      return distribution_json("samples", e.samples);
    case Kind::Histogram: {
      std::ostringstream os;
      os << "{\"count\": " << e.samples.count()
         << ", \"min\": " << format_trace_value(e.samples.min())
         << ", \"mean\": " << format_trace_value(e.samples.mean())
         << ", \"max\": " << format_trace_value(e.samples.max())
         << ", \"p50\": " << format_trace_value(bucket_quantile(e.buckets, e.samples, 0.50))
         << ", \"p95\": " << format_trace_value(bucket_quantile(e.buckets, e.samples, 0.95))
         << ", \"p99\": " << format_trace_value(bucket_quantile(e.buckets, e.samples, 0.99))
         << ", \"buckets\": [";
      bool first = true;
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        if (e.buckets[i] == 0) continue;
        os << (first ? "" : ", ") << '[' << i << ", " << e.buckets[i] << ']';
        first = false;
      }
      os << "]}";
      return os.str();
    }
  }
  ERAPID_UNREACHABLE("unmodeled metric kind " << static_cast<int>(e.kind));
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::snapshot(Cycle now) const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(index_.size());
  for (const auto& [name, id] : index_) out.emplace_back(name, render(entries_[id], now));
  return out;
}

std::string MetricsRegistry::to_json(Cycle now, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  std::ostringstream os;
  os << '{';
  bool first = true;
  // index_ iterates name-sorted: snapshot order is instrumentation-order
  // independent.
  for (const auto& [name, id] : index_) {
    os << (first ? "\n" : ",\n") << pad << '"' << json_escape(name)
       << "\": " << render(entries_[id], now);
    first = false;
  }
  os << '\n' << std::string(static_cast<std::size_t>(indent), ' ') << '}';
  return os.str();
}

}  // namespace erapid::obs
