#include "obs/tm_estimator.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::obs {

TmEstimator::TmEstimator(std::uint32_t boards, double ewma_alpha)
    : boards_(boards), alpha_(ewma_alpha) {
  ERAPID_REQUIRE(boards > 0, "traffic matrix needs at least one board");
  ERAPID_REQUIRE(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                 "TM ewma alpha must be in (0, 1], got " << ewma_alpha);
}

void TmEstimator::on_packet(std::uint32_t src_board, std::uint32_t dst_board,
                            std::uint64_t bytes) {
  ERAPID_REQUIRE(src_board < boards_ && dst_board < boards_,
                 "TM cell (" << src_board << ", " << dst_board << ") outside a "
                             << boards_ << "-board system");
  Cell& c = cells_[{src_board, dst_board}];
  c.bytes += bytes;
  c.total_bytes += bytes;
  ++c.packets;
  window_bytes_ += bytes;
  ++window_packets_;
  total_bytes_ += bytes;
  ++total_packets_;
}

void TmEstimator::roll_window() {
  ERAPID_EXPECT(windows_ + 1 != 0, "telemetry window counter overflow");
  ++windows_;
  for (auto& [key, c] : cells_) {
    c.ewma_bytes = alpha_ * static_cast<double>(c.bytes) + (1.0 - alpha_) * c.ewma_bytes;
    c.bytes = 0;
    c.packets = 0;
  }
  window_bytes_ = 0;
  window_packets_ = 0;
}

std::vector<TmEntry> TmEstimator::top_k(std::size_t k) const {
  std::vector<TmEntry> out;
  out.reserve(cells_.size());
  for (const auto& [key, c] : cells_) {
    if (c.bytes == 0) continue;
    out.push_back({key.first, key.second, c.bytes, c.packets, c.ewma_bytes});
  }
  // Heaviest first; the (src, dst) tie-break keeps equal-weight flows in a
  // reproducible order so top-K lists are byte-stable across runs.
  std::sort(out.begin(), out.end(), [](const TmEntry& a, const TmEntry& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<TmEntry> TmEstimator::snapshot() const {
  std::vector<TmEntry> out;
  out.reserve(cells_.size());
  for (const auto& [key, c] : cells_) {
    out.push_back({key.first, key.second, c.bytes, c.packets, c.ewma_bytes});
  }
  return out;  // std::map iteration is already (src, dst) ascending
}

namespace {

/// Max/mean ratio of the non-zero values produced by `get(cell)`.
template <typename Cells, typename Get>
double skew_of(const Cells& cells, Get get) {
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::size_t nonzero = 0;
  for (const auto& [key, c] : cells) {
    const std::uint64_t v = get(c);
    if (v == 0) continue;
    max = std::max(max, v);
    sum += v;
    ++nonzero;
  }
  if (nonzero == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(nonzero);
  return static_cast<double>(max) / mean;
}

}  // namespace

double TmEstimator::window_skew() const {
  return skew_of(cells_, [](const Cell& c) { return c.bytes; });
}

double TmEstimator::total_skew() const {
  return skew_of(cells_, [](const Cell& c) { return c.total_bytes; });
}

double TmEstimator::window_hotspot() const {
  if (window_bytes_ == 0) return 0.0;
  // Column sums in dst order: a std::map walk, so deterministic.
  std::map<std::uint32_t, std::uint64_t> per_dst;
  for (const auto& [key, c] : cells_) {
    if (c.bytes > 0) per_dst[key.second] += c.bytes;
  }
  std::uint64_t hottest = 0;
  for (const auto& [dst, bytes] : per_dst) hottest = std::max(hottest, bytes);
  return static_cast<double>(hottest) / static_cast<double>(window_bytes_);
}

}  // namespace erapid::obs
