#include "obs/telemetry.hpp"

#include <sstream>

#include "obs/energy_ledger.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hub.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace erapid::obs {

Telemetry::Telemetry(des::Engine& engine, const TelemetryConfig& cfg,
                     std::uint32_t boards, EnergyLedger* ledger, Hub& hub,
                     Sampler sampler)
    : engine_(engine), cfg_(cfg), ledger_(ledger), hub_(hub),
      sampler_(std::move(sampler)), tm_(boards, cfg.ewma_alpha),
      detector_({cfg.phase_alpha, cfg.phase_slack, cfg.phase_threshold}) {
  ERAPID_REQUIRE(!cfg_.path.empty(), "telemetry needs an output path");
  ERAPID_REQUIRE(cfg_.window > 0, "telemetry window must be positive");
  ERAPID_REQUIRE(cfg_.top_k > 0, "telemetry top_k must be positive");
  ERAPID_REQUIRE(static_cast<bool>(sampler_), "telemetry needs a window sampler");
  out_.open(cfg_.path);
  ERAPID_EXPECT(static_cast<bool>(out_), "cannot open telemetry stream: " + cfg_.path);
  auto& reg = hub_.metrics();
  m_windows_ = reg.counter("telemetry.windows");
  m_phase_changes_ = reg.counter("telemetry.phase_changes");
  m_phase_id_ = reg.gauge("telemetry.phase_id");
}

void Telemetry::start() {
  ERAPID_REQUIRE(cfg_.window > 0, "telemetry window must be positive");
  if (started_) return;
  started_ = true;
  next_ = engine_.schedule(cfg_.window, [this] { on_window(); }, "obs.telemetry_window");
}

void Telemetry::on_window() {
  const Cycle now = engine_.now();
  const WindowObservables o = sampler_(now);
  ++windows_;
  auto& reg = hub_.metrics();
  reg.add(m_windows_);

  const bool phase_changed = detector_.update(o.utilization);
  if (phase_changed) {
    reg.add(m_phase_changes_);
    if (auto* tr = hub_.trace()) {
      Args args;
      args.add("phase_id", detector_.phase_id());
      args.add("utilization", o.utilization);
      tr->instant(hub_.track_telemetry(), "obs.phase_change", now, args.str());
    }
    if (auto* fr = hub_.flight()) {
      Args args;
      args.add("phase_id", detector_.phase_id());
      args.add("utilization", o.utilization);
      fr->record(now, "telemetry.phase_change", args.str());
    }
  }
  reg.set_gauge(m_phase_id_, now, static_cast<double>(detector_.phase_id()));

  // Hold the attribution invariant at every window boundary, not just at
  // the end of the run — a drift is caught within one window of its cause.
  if (ledger_ != nullptr) ledger_->reconcile(now, o.energy_mw_cycles);

  emit_record(now, o, phase_changed);
  tm_.roll_window();
  next_ = engine_.schedule(cfg_.window, [this] { on_window(); }, "obs.telemetry_window");
}

void Telemetry::emit_record(Cycle now, const WindowObservables& o, bool phase_changed) {
  // One flat JSON object per line, fixed key order, format_trace_value for
  // every double — the byte-identical stream contract.
  std::ostringstream r;
  r << "{\"schema\": \"" << kSchema << "\""
    << ", \"window\": " << windows_
    << ", \"cycle\": " << now
    << ", \"utilization\": " << format_trace_value(o.utilization)
    << ", \"phase_id\": " << detector_.phase_id()
    << ", \"phase_changed\": " << (phase_changed ? "true" : "false")
    << ", \"delivered\": " << o.delivered
    << ", \"queue_depth\": " << o.queue_depth
    << ", \"lanes_lit\": " << o.lanes_lit
    << ", \"lanes_total\": " << o.lanes_total
    << ", \"power_mw\": " << format_trace_value(o.power_mw)
    << ", \"workload_phase\": \"" << json_escape(o.workload_phase) << "\"";

  r << ", \"tm\": {\"bytes\": " << tm_.window_bytes()
    << ", \"packets\": " << tm_.window_packets()
    << ", \"skew\": " << format_trace_value(tm_.window_skew())
    << ", \"hotspot\": " << format_trace_value(tm_.window_hotspot())
    << ", \"top\": [";
  bool first = true;
  for (const auto& e : tm_.top_k(cfg_.top_k)) {
    r << (first ? "" : ", ") << "{\"src\": " << e.src << ", \"dst\": " << e.dst
      << ", \"bytes\": " << e.bytes << ", \"packets\": " << e.packets
      << ", \"ewma\": " << format_trace_value(e.ewma_bytes) << "}";
    first = false;
  }
  r << "]}";

  r << ", \"energy\": {\"total_mw_cycles\": " << format_trace_value(o.energy_mw_cycles)
    << ", \"boards\": [";
  if (ledger_ != nullptr) {
    for (std::uint32_t b = 0; b < ledger_->boards(); ++b) {
      const BoardEnergy e = ledger_->board_energy(b, now);
      r << (b == 0 ? "" : ", ") << "{\"board\": " << b
        << ", \"laser\": " << format_trace_value(e.laser_mw_cycles)
        << ", \"serdes\": " << format_trace_value(e.serdes_mw_cycles)
        << ", \"buffer\": " << format_trace_value(e.buffer_mw_cycles)
        << ", \"ctrl\": " << format_trace_value(e.ctrl_mw_cycles) << "}";
    }
  }
  r << "]}}";

  out_ << r.str() << "\n";
}

void Telemetry::finish(Cycle now, double meter_total_mw_cycles) {
  if (finished_) return;
  finished_ = true;
  next_.cancel();
  if (ledger_ != nullptr) ledger_->reconcile(now, meter_total_mw_cycles);
  out_.flush();
  ERAPID_EXPECT(static_cast<bool>(out_), "telemetry stream failed: " + cfg_.path);
}

}  // namespace erapid::obs
