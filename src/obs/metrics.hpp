// MetricsRegistry — named counters, gauges and series with one owner.
//
// Every quantity the simulator measures over time flows through here so
// perf/policy PRs report through a single schema instead of ad-hoc member
// vectors. Five metric kinds:
//
//   counter   monotone u64 (events dispatched, packets re-homed, ...)
//   gauge     piecewise-constant level, time-weighted over simulated time
//             (stats::TimeWeighted): instantaneous power, queue depth.
//   series    per-sample scalar distribution (stats::Streaming): per-lane
//             utilization at harvest, per-window lanes moved.
//   timeline  periodically sampled (cycle, value) points kept in full —
//             what sim::Recorder exports as CSV; also summarised as a
//             Streaming distribution.
//   histogram per-sample distribution with percentile queries over fixed
//             log2 buckets (bucket 0 = [0,1), bucket i = [2^(i-1), 2^i)):
//             packet latency, LS window durations, DBR convergence time.
//             The bucket scheme is value-independent, so two runs bucket
//             identical samples identically and the snapshot (count, min,
//             mean, max, p50/p95/p99, sparse buckets) is deterministic.
//
// Registration and snapshot order is name-sorted (std::map index), so the
// JSON snapshot is deterministic regardless of instrumentation order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/streaming.hpp"
#include "stats/time_weighted.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// Handle for a registered metric.
using MetricId = std::uint32_t;

/// One point of a timeline metric.
struct TimelinePoint {
  Cycle cycle = 0;
  double value = 0.0;
};

/// Number of log2 buckets of a histogram metric: bucket 0 holds [0, 1),
/// bucket i >= 1 holds [2^(i-1), 2^i); the last bucket absorbs overflow.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index a sample falls into under the fixed log2 scheme.
[[nodiscard]] std::size_t histogram_bucket_of(double sample);

/// Name-indexed metric store (see file comment for the five kinds).
class MetricsRegistry {
 public:
  // ---- registration (get-or-create; kind mismatch on reuse is fatal) ----
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name, Cycle start = 0, double initial = 0.0);
  MetricId series(const std::string& name);
  MetricId timeline(const std::string& name);
  MetricId histogram(const std::string& name);

  // ---- updates ----
  void add(MetricId id, std::uint64_t delta = 1);
  void set_gauge(MetricId id, Cycle now, double level);
  /// Accepts series *and* histogram metrics (same probe macro serves both).
  void observe(MetricId id, double sample);
  void record(MetricId id, Cycle cycle, double value);

  // ---- reads ----
  [[nodiscard]] std::uint64_t counter_value(MetricId id) const;
  [[nodiscard]] double gauge_level(MetricId id) const;
  [[nodiscard]] double gauge_average(MetricId id, Cycle window_start, Cycle now) const;
  [[nodiscard]] const stats::Streaming& series_stats(MetricId id) const;
  [[nodiscard]] const std::vector<TimelinePoint>& timeline_points(MetricId id) const;
  /// Streaming summary (count/min/mean/max) of a timeline's values.
  [[nodiscard]] const stats::Streaming& timeline_stats(MetricId id) const;
  /// Streaming summary (count/min/mean/max) of a histogram's samples.
  [[nodiscard]] const stats::Streaming& histogram_stats(MetricId id) const;
  /// Samples landed in log2 bucket `bucket` (see histogram_bucket_of).
  [[nodiscard]] std::uint64_t histogram_bucket_count(MetricId id, std::size_t bucket) const;
  /// Value below which fraction `q` in [0,1] of samples fall. Linear
  /// interpolation inside the containing log2 bucket, clamped to the
  /// observed [min, max]; 0 with no samples. Deterministic: depends only
  /// on the multiset of samples, never on insertion order.
  [[nodiscard]] double histogram_quantile(MetricId id, double q) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Snapshot of every metric, name-sorted, as one JSON object:
  ///   counters   -> integer
  ///   gauges     -> {"level": x, "avg": time-weighted avg over [0, now]}
  ///   series     -> {"count": n, "min": ..., "mean": ..., "max": ...}
  ///   timelines  -> {"samples": n, "min": ..., "mean": ..., "max": ...}
  ///   histograms -> {"count": n, "min": ..., "mean": ..., "max": ...,
  ///                  "p50": ..., "p95": ..., "p99": ...,
  ///                  "buckets": [[bucket, count], ...]}  (sparse, ordered)
  /// (`indent` matches sim::report's hand-rolled emitter conventions.)
  [[nodiscard]] std::string to_json(Cycle now, int indent = 0) const;

  /// Name-sorted (name, rendered JSON value) pairs — what SimResult carries
  /// so sim::report can emit the snapshot with its own indentation.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> snapshot(Cycle now) const;

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Series, Timeline, Histogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t count = 0;          ///< Counter
    stats::TimeWeighted level;        ///< Gauge
    stats::Streaming samples;         ///< Series + Timeline/Histogram summary
    std::vector<TimelinePoint> points;///< Timeline
    std::vector<std::uint64_t> buckets;///< Histogram (kHistogramBuckets)
  };

  MetricId get_or_create(const std::string& name, Kind kind, Cycle start, double initial);
  [[nodiscard]] const Entry& at(MetricId id, Kind kind) const;
  [[nodiscard]] Entry& at(MetricId id, Kind kind);
  [[nodiscard]] static std::string render(const Entry& e, Cycle now);

  std::vector<Entry> entries_;
  std::map<std::string, MetricId> index_;
};

}  // namespace erapid::obs
