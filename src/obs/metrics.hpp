// MetricsRegistry — named counters, gauges and series with one owner.
//
// Every quantity the simulator measures over time flows through here so
// perf/policy PRs report through a single schema instead of ad-hoc member
// vectors. Four metric kinds:
//
//   counter   monotone u64 (events dispatched, packets re-homed, ...)
//   gauge     piecewise-constant level, time-weighted over simulated time
//             (stats::TimeWeighted): instantaneous power, queue depth.
//   series    per-sample scalar distribution (stats::Streaming): per-lane
//             utilization at harvest, per-window lanes moved.
//   timeline  periodically sampled (cycle, value) points kept in full —
//             what sim::Recorder exports as CSV; also summarised as a
//             Streaming distribution.
//
// Registration and snapshot order is name-sorted (std::map index), so the
// JSON snapshot is deterministic regardless of instrumentation order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/streaming.hpp"
#include "stats/time_weighted.hpp"
#include "util/expect.hpp"
#include "util/types.hpp"

namespace erapid::obs {

/// Handle for a registered metric.
using MetricId = std::uint32_t;

/// One point of a timeline metric.
struct TimelinePoint {
  Cycle cycle = 0;
  double value = 0.0;
};

/// Name-indexed metric store (see file comment for the four kinds).
class MetricsRegistry {
 public:
  // ---- registration (get-or-create; kind mismatch on reuse is fatal) ----
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name, Cycle start = 0, double initial = 0.0);
  MetricId series(const std::string& name);
  MetricId timeline(const std::string& name);

  // ---- updates ----
  void add(MetricId id, std::uint64_t delta = 1);
  void set_gauge(MetricId id, Cycle now, double level);
  void observe(MetricId id, double sample);
  void record(MetricId id, Cycle cycle, double value);

  // ---- reads ----
  [[nodiscard]] std::uint64_t counter_value(MetricId id) const;
  [[nodiscard]] double gauge_level(MetricId id) const;
  [[nodiscard]] double gauge_average(MetricId id, Cycle window_start, Cycle now) const;
  [[nodiscard]] const stats::Streaming& series_stats(MetricId id) const;
  [[nodiscard]] const std::vector<TimelinePoint>& timeline_points(MetricId id) const;
  /// Streaming summary (count/min/mean/max) of a timeline's values.
  [[nodiscard]] const stats::Streaming& timeline_stats(MetricId id) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Snapshot of every metric, name-sorted, as one JSON object:
  ///   counters  -> integer
  ///   gauges    -> {"level": x, "avg": time-weighted avg over [0, now]}
  ///   series    -> {"count": n, "min": ..., "mean": ..., "max": ...}
  ///   timelines -> {"samples": n, "min": ..., "mean": ..., "max": ...}
  /// (`indent` matches sim::report's hand-rolled emitter conventions.)
  [[nodiscard]] std::string to_json(Cycle now, int indent = 0) const;

  /// Name-sorted (name, rendered JSON value) pairs — what SimResult carries
  /// so sim::report can emit the snapshot with its own indentation.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> snapshot(Cycle now) const;

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Series, Timeline };

  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t count = 0;          ///< Counter
    stats::TimeWeighted level;        ///< Gauge
    stats::Streaming samples;         ///< Series + Timeline summary
    std::vector<TimelinePoint> points;///< Timeline
  };

  MetricId get_or_create(const std::string& name, Kind kind, Cycle start, double initial);
  [[nodiscard]] const Entry& at(MetricId id, Kind kind) const;
  [[nodiscard]] Entry& at(MetricId id, Kind kind);
  [[nodiscard]] static std::string render(const Entry& e, Cycle now);

  std::vector<Entry> entries_;
  std::map<std::string, MetricId> index_;
};

}  // namespace erapid::obs
