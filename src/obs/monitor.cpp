#include "obs/monitor.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace erapid::obs {

MonitorSet::MonitorSet(const MonitorConfig& cfg, bool fail_fast, TraceSink* trace,
                       TrackId track, MetricsRegistry& metrics)
    : fail_fast_(fail_fast), trace_(trace), track_(track), metrics_(metrics) {
  ERAPID_REQUIRE(cfg.any(), "MonitorSet built with no check configured");
  ERAPID_REQUIRE(cfg.power_cap_mw >= 0.0 && cfg.throughput_floor >= 0.0 &&
                     cfg.p99_latency_ceiling >= 0.0,
                 "monitor thresholds must be non-negative");
  m_violations_ = metrics_.counter("monitor.violations");

  power_ = {"power_cap_mw", cfg.power_cap_mw, cfg.power_cap_mw > 0.0, 0.0, false, 0, 0};
  throughput_ = {"throughput_floor", cfg.throughput_floor, cfg.throughput_floor > 0.0,
                 0.0, false, 0, 0};
  p99_ = {"p99_latency_ceiling", cfg.p99_latency_ceiling, cfg.p99_latency_ceiling > 0.0,
          0.0, false, 0, 0};
  quiescence_ = {"quiescence_deadline", static_cast<double>(cfg.quiescence_deadline),
                 cfg.quiescence_deadline > 0, 0.0, false, 0, 0};
  recovery_ = {"max_recovery_cycles", static_cast<double>(cfg.max_recovery_cycles),
               cfg.max_recovery_cycles > 0, 0.0, false, 0, 0};
  workload_ = {"workload_deadline", static_cast<double>(cfg.workload_deadline),
               cfg.workload_deadline > 0, 0.0, false, 0, 0};
}

void MonitorSet::fire(Check& c, Cycle now, double value) {
  if (c.violations == 0) c.first_violation = now;
  ++c.violations;
  metrics_.add(m_violations_);
  if (trace_ != nullptr) {
    Args args;
    args.add("threshold", c.threshold).add("value", value);
    trace_->instant(track_, (std::string("monitor.") + c.name).c_str(), now, args.str());
  }
  // The flight recorder (via the Hub's hook) must see the violation before
  // fail-fast unwinds: the dump is the point of the post-mortem.
  if (violation_hook_) violation_hook_(c.name, now, value, c.threshold);
  // The actuation hook (degradation controller) rules on survival *after*
  // the violation is fully recorded, so a suppressed breach still shows in
  // verdicts, traces, and the flight recorder.
  ActuationDecision decision = ActuationDecision::Default;
  if (actuation_hook_) decision = actuation_hook_(c.name, now, value, c.threshold);
  if (decision == ActuationDecision::Suppress) return;
  if (decision == ActuationDecision::Abort) {
    ERAPID_EXPECT(false, "monitor " << c.name << " violated at cycle " << now
                                    << ": value " << value << " vs threshold "
                                    << c.threshold << " (degrade policy: abort)");
  }
  // Fail-fast rides the contract layer: the throw unwinds out of the DES
  // event (or the finalize call) into Simulation::run's caller, exactly
  // like a model-invariant violation would.
  ERAPID_EXPECT(!fail_fast_, "monitor " << c.name << " violated at cycle " << now
                                        << ": value " << value << " vs threshold "
                                        << c.threshold << " (obs.monitor_fail_fast)");
}

void MonitorSet::check_ceiling(Check& c, Cycle now, double value) {
  if (!c.enabled) return;
  if (!c.observed || value > c.worst) c.worst = value;
  c.observed = true;
  if (value > c.threshold) fire(c, now, value);
}

void MonitorSet::check_floor(Check& c, Cycle now, double value) {
  if (!c.enabled) return;
  if (!c.observed || value < c.worst) c.worst = value;
  c.observed = true;
  if (value < c.threshold) fire(c, now, value);
}

void MonitorSet::sample_power(Cycle now, double mw) {
  ERAPID_REQUIRE(!finalized_, "power sample observed after finalize()");
  check_ceiling(power_, now, mw);
}

void MonitorSet::recovery(Cycle now, CycleDelta took) {
  ERAPID_REQUIRE(!finalized_, "recovery observed after finalize()");
  check_ceiling(recovery_, now, static_cast<double>(took));
}

void MonitorSet::dbr_resolve(Cycle now) {
  ERAPID_REQUIRE(!finalized_, "reconfig resolve observed after finalize()");
  if (quiescence_.enabled) pending_resolves_.push_back(now);
}

void MonitorSet::dbr_quiesced(Cycle resolve_at, Cycle last_settle) {
  ERAPID_REQUIRE(!finalized_, "quiescence observed after finalize()");
  ERAPID_EXPECT(last_settle >= resolve_at,
                "quiescence cannot settle before its resolve");
  if (!quiescence_.enabled) return;
  const auto it =
      std::find(pending_resolves_.begin(), pending_resolves_.end(), resolve_at);
  if (it != pending_resolves_.end()) pending_resolves_.erase(it);
  check_ceiling(quiescence_, last_settle,
                static_cast<double>(last_settle - resolve_at));
}

void MonitorSet::finalize(const FinalSample& fin) {
  ERAPID_REQUIRE(!finalized_, "MonitorSet finalized twice");
  finalized_ = true;
  check_floor(throughput_, fin.now, fin.accepted_fraction);
  check_ceiling(p99_, fin.now, fin.latency_p99);
  if (fin.workload_ran) {
    if (fin.workload_completed) {
      check_ceiling(workload_, fin.now, static_cast<double>(fin.workload_completion));
    } else if (workload_.enabled) {
      // Hit the horizon without completing: no finite makespan can ever
      // satisfy the deadline, so the end cycle stands in as the worst
      // value and the check fires unconditionally.
      const auto value = static_cast<double>(fin.now);
      if (!workload_.observed || value > workload_.worst) workload_.worst = value;
      workload_.observed = true;
      fire(workload_, fin.now, value);
    }
  }
  // Re-solves whose grants never settled count as unconverged once the
  // run outlived their deadline (a grant chained on a lane that never
  // went dark, or a run ending mid-reconfiguration).
  for (const Cycle at : pending_resolves_) {
    if (fin.now > at && fin.now - at > static_cast<Cycle>(quiescence_.threshold)) {
      check_ceiling(quiescence_, fin.now, static_cast<double>(fin.now - at));
    }
  }
  pending_resolves_.clear();
}

std::uint64_t MonitorSet::violations() const {
  return power_.violations + throughput_.violations + p99_.violations +
         quiescence_.violations + recovery_.violations + workload_.violations;
}

std::vector<std::pair<std::string, std::string>> MonitorSet::report() const {
  std::vector<std::pair<std::string, std::string>> out;
  const Check* checks[] = {&power_,      &throughput_, &p99_,
                           &quiescence_, &recovery_,   &workload_};
  for (const Check* c : checks) {
    if (!c->enabled) continue;
    std::string v = "{\"threshold\": " + format_trace_value(c->threshold) +
                    ", \"worst\": " + format_trace_value(c->observed ? c->worst : 0.0) +
                    ", \"violations\": " + std::to_string(c->violations) +
                    ", \"first_violation\": " + std::to_string(c->first_violation) +
                    ", \"ok\": " + (c->violations == 0 ? "true" : "false") + "}";
    out.emplace_back(c->name, std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace erapid::obs
