// Response policies — the `degrade.*` INI surface mapping monitor checks
// to survivability behaviour.
//
// PR 4's monitors watch envelopes; until now a breach was binary: record
// it, or (`obs.monitor_fail_fast`) abort the run through the contract
// layer. A DegradeConfig assigns each check a response policy:
//
//   record  — keep the run alive; the violation is recorded (verdicts,
//             traces, flight recorder) but never unwinds.
//   degrade — power cap only: engage the brownout ladder (step lane power
//             levels down, then sleep idle lanes) but never give up lanes.
//   shed    — power cap only: the full ladder, ending in progressive lane
//             shedding from the DBR pool (re-admitted on recovery).
//   abort   — unwind through the contract layer even when
//             `obs.monitor_fail_fast` is off.
//
// A check with no policy configured keeps the pre-existing behaviour,
// so a config with no `degrade.*` key is byte-identical to HEAD.
// See DESIGN.md §15 for the state machine the controller runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/types.hpp"

namespace erapid::obs {
struct ObsConfig;
}

namespace erapid::resilience {

enum class ResponsePolicy : std::uint8_t { Record, Degrade, Shed, Abort };

/// INI token → policy; throws ModelInvariantError on unknown tokens.
ResponsePolicy parse_policy(const std::string& token);
const char* policy_name(ResponsePolicy p);

/// The `degrade.*` INI section. Policies are optional: an absent policy
/// means "no controller involvement for that check".
struct DegradeConfig {
  /// Response to `monitor.power_cap_mw` breaches (any policy).
  std::optional<ResponsePolicy> power_cap;
  /// Response to `monitor.throughput_floor` breaches (record | abort —
  /// the check fires at finalize, past the point where actuation helps).
  std::optional<ResponsePolicy> throughput_floor;
  /// Response to `monitor.p99_latency_ceiling` breaches (record | abort).
  std::optional<ResponsePolicy> p99_ceiling;
  /// Response to `monitor.max_recovery_cycles` breaches (record | abort).
  std::optional<ResponsePolicy> recovery_deadline;

  /// Minimum cycles between two controller actions (each ladder step or
  /// shed batch starts its own cooldown). Must be positive.
  CycleDelta cooldown_cycles = 2000;
  /// Recovery hysteresis: power must stay at or below
  /// `margin × power_cap_mw` for `recover_cycles` before a step back up.
  /// In (0, 1).
  double recover_margin = 0.8;
  /// Sustain window (cycles) for the recovery condition. Must be positive.
  CycleDelta recover_cycles = 4000;
  /// Lanes shed per shed action once the ladder bottoms out. Must be ≥ 1.
  std::uint32_t shed_step = 1;
  /// Ceiling on the fraction of the lane pool ever shed at once. In (0, 1].
  double max_shed_fraction = 0.5;

  [[nodiscard]] bool any() const {
    return power_cap.has_value() || throughput_floor.has_value() ||
           p99_ceiling.has_value() || recovery_deadline.has_value();
  }

  /// Cross-field validation against the obs surface the policies act on.
  /// Every configured policy needs its monitor check armed (a policy on a
  /// disabled check would silently never fire — reject loudly instead),
  /// `shed` needs a DBR pool to shed from, and the end-of-run checks only
  /// admit record | abort. Throws ModelInvariantError on violation.
  void validate(const obs::ObsConfig& obs_cfg, bool bandwidth_reconfig) const;
};

}  // namespace erapid::resilience
