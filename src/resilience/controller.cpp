#include "resilience/controller.hpp"

#include <string>
#include <string_view>

#include "optical/terminal.hpp"
#include "util/expect.hpp"

namespace erapid::resilience {

using power::PowerLevel;

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Normal: return "normal";
    case Stage::CapMid: return "cap_mid";
    case Stage::CapLow: return "cap_low";
    case Stage::SleepIdle: return "sleep_idle";
    case Stage::Shed: return "shed";
  }
  ERAPID_UNREACHABLE("unmodeled ladder stage " << static_cast<int>(s));
}

DegradeController::DegradeController(const DegradeConfig& cfg, double power_cap_mw,
                                     obs::Hub* hub)
    : cfg_(cfg), cap_mw_(power_cap_mw), hub_(hub) {
  ERAPID_REQUIRE(cfg_.any(), "degradation controller built with no policy configured");
  if (cfg_.power_cap.has_value() && (*cfg_.power_cap == ResponsePolicy::Degrade ||
                                     *cfg_.power_cap == ResponsePolicy::Shed)) {
    ERAPID_REQUIRE(cap_mw_ > 0.0,
                   "brownout ladder needs the power-cap threshold it defends");
  }
  if (hub_ != nullptr && hub_->enabled()) {
    auto& m = hub_->metrics();
    m_steps_down_ = m.counter("resilience.ladder_steps");
    m_steps_up_ = m.counter("resilience.recover_steps");
    m_lanes_shed_ = m.counter("resilience.lanes_shed");
    m_lanes_restored_ = m.counter("resilience.lanes_restored");
    m_lanes_slept_ = m.counter("resilience.lanes_slept");
    m_suppressed_ = m.counter("resilience.suppressed_violations");
    m_degraded_time_ = m.histogram("resilience.degraded_time");
    m_shed_batch_ = m.histogram("resilience.shed_batch");
    m_restore_batch_ = m.histogram("resilience.restore_batch");
  }
}

void DegradeController::attach(topology::LaneMap& lane_map,
                               std::vector<optical::OpticalTerminal*> terminals) {
  ERAPID_REQUIRE(lane_map_ == nullptr, "degradation controller attached twice");
  ERAPID_REQUIRE(terminals.size() == lane_map.boards(),
                 "degradation controller needs one terminal per board");
  lane_map_ = &lane_map;
  terminals_ = std::move(terminals);
  const auto pool = lane_map.boards() * lane_map.wavelengths();
  shed_limit_ =
      static_cast<std::uint32_t>(cfg_.max_shed_fraction * static_cast<double>(pool));
}

std::optional<ResponsePolicy> DegradeController::policy_for(const char* name) const {
  const std::string_view n = name != nullptr ? name : "";
  if (n == "power_cap_mw") return cfg_.power_cap;
  if (n == "throughput_floor") return cfg_.throughput_floor;
  if (n == "p99_latency_ceiling") return cfg_.p99_ceiling;
  if (n == "max_recovery_cycles") return cfg_.recovery_deadline;
  // quiescence_deadline / workload_deadline keep their configured fate.
  return std::nullopt;
}

obs::MonitorSet::ActuationDecision DegradeController::on_violation(const char* name,
                                                                   Cycle now,
                                                                   double /*value*/,
                                                                   double /*threshold*/) {
  ERAPID_REQUIRE(name != nullptr, "monitor violation with no check name");
  const auto pol = policy_for(name);
  if (!pol.has_value()) return obs::MonitorSet::ActuationDecision::Default;
  if (*pol == ResponsePolicy::Abort) return obs::MonitorSet::ActuationDecision::Abort;
  if (*pol == ResponsePolicy::Degrade || *pol == ResponsePolicy::Shed) act(now);
  ++stats_.suppressed_violations;
  if (hub_ != nullptr && hub_->enabled()) hub_->metrics().add(m_suppressed_);
  return obs::MonitorSet::ActuationDecision::Suppress;
}

void DegradeController::record(Cycle now, const char* action, std::uint32_t lanes) {
  if (hub_ == nullptr) return;
  if (auto* fr = hub_->flight()) {
    obs::Args args;
    args.add("stage", std::string(stage_name(stage_)))
        .add("lanes", static_cast<std::uint64_t>(lanes));
    fr->record(now, std::string("resilience.") + action, args.str());
  }
}

void DegradeController::act(Cycle now) {
  ERAPID_REQUIRE(lane_map_ != nullptr, "degradation controller acting before attach()");
  if (acted_ && now - last_action_ < static_cast<Cycle>(cfg_.cooldown_cycles)) return;
  acted_ = true;
  last_action_ = now;
  streak_start_.reset();  // pressure while recovering voids the streak
  if (!episode_start_.has_value()) {
    episode_start_ = now;
    stats_.engaged = true;
  }
  ++stats_.steps_down;
  if (hub_ != nullptr && hub_->enabled()) hub_->metrics().add(m_steps_down_);

  const bool shed_policy =
      cfg_.power_cap.has_value() && *cfg_.power_cap == ResponsePolicy::Shed;
  switch (stage_) {
    case Stage::Normal:
      enter_stage(Stage::CapMid, now, true);
      set_caps_all(PowerLevel::Mid, now);
      record(now, "step_down", 0);
      return;
    case Stage::CapMid:
      enter_stage(Stage::CapLow, now, true);
      set_caps_all(PowerLevel::Low, now);
      record(now, "step_down", 0);
      return;
    case Stage::CapLow:
      enter_stage(Stage::SleepIdle, now, true);
      record(now, "step_down", sleep_idle_lanes(now));
      return;
    case Stage::SleepIdle:
      if (shed_policy) {
        enter_stage(Stage::Shed, now, true);
        record(now, "step_down", shed_batch(now));
      } else {
        // The degrade policy never gives up lanes; re-sweep for lanes that
        // have gone idle since the last action.
        record(now, "step_down", sleep_idle_lanes(now));
      }
      return;
    case Stage::Shed:
      if (shed_total_ < shed_limit_) {
        record(now, "step_down", shed_batch(now));
      } else {
        // Pool-fraction ceiling reached: hold the floor, keep sweeping.
        record(now, "step_down", sleep_idle_lanes(now));
      }
      return;
  }
  ERAPID_UNREACHABLE("unmodeled ladder stage " << static_cast<int>(stage_));
}

void DegradeController::enter_stage(Stage next, Cycle now, bool down) {
  stage_ = next;
  if (down && static_cast<std::uint8_t>(next) >
                  static_cast<std::uint8_t>(stats_.peak_stage)) {
    stats_.peak_stage = next;
  }
  (void)now;
}

void DegradeController::on_power_sample(Cycle now, double mw) {
  ERAPID_REQUIRE(mw >= 0.0, "negative power sample: " << mw << " mW");
  if (stage_ == Stage::Normal) {
    streak_start_.reset();
    return;
  }
  if (cap_mw_ <= 0.0) return;
  if (mw > cap_mw_ * cfg_.recover_margin) {
    streak_start_.reset();
    return;
  }
  if (!streak_start_.has_value()) streak_start_ = now;
  if (now - *streak_start_ < static_cast<Cycle>(cfg_.recover_cycles)) return;
  if (now - last_action_ < static_cast<Cycle>(cfg_.cooldown_cycles)) return;
  step_up(now);
  streak_start_.reset();  // each rung up needs its own sustained streak
}

void DegradeController::step_up(Cycle now) {
  last_action_ = now;
  ++stats_.steps_up;
  if (hub_ != nullptr && hub_->enabled()) hub_->metrics().add(m_steps_up_);
  switch (stage_) {
    case Stage::Shed:
      if (!shed_batches_.empty()) {
        record(now, "step_up", restore_batch(now));
        if (shed_batches_.empty()) enter_stage(Stage::SleepIdle, now, false);
      } else {
        enter_stage(Stage::SleepIdle, now, false);
        record(now, "step_up", 0);
      }
      return;
    case Stage::SleepIdle:
      // Slept lanes wake on demand (DLS); nothing to force here.
      enter_stage(Stage::CapLow, now, false);
      record(now, "step_up", 0);
      return;
    case Stage::CapLow:
      enter_stage(Stage::CapMid, now, false);
      set_caps_all(PowerLevel::Mid, now);
      record(now, "step_up", 0);
      return;
    case Stage::CapMid: {
      enter_stage(Stage::Normal, now, false);
      clear_caps_all();
      record(now, "step_up", 0);
      ++stats_.episodes;
      const CycleDelta dur = now - *episode_start_;
      stats_.time_degraded += dur;
      if (hub_ != nullptr && hub_->enabled()) {
        hub_->metrics().observe(m_degraded_time_, static_cast<double>(dur));
      }
      episode_start_.reset();
      return;
    }
    case Stage::Normal:
      return;
  }
  ERAPID_UNREACHABLE("unmodeled ladder stage " << static_cast<int>(stage_));
}

void DegradeController::set_caps_all(PowerLevel cap, Cycle now) {
  const auto boards = lane_map_->boards();
  const auto wavelengths = lane_map_->wavelengths();
  for (std::uint32_t s = 0; s < boards; ++s) {
    optical::OpticalTerminal* term = terminals_[s];
    for (std::uint32_t d = 0; d < boards; ++d) {
      if (d == s) continue;
      for (std::uint32_t w = 0; w < wavelengths; ++w) {
        term->lane(BoardId{d}, WavelengthId{w}).set_brownout_cap(cap, now);
      }
    }
  }
}

void DegradeController::clear_caps_all() {
  const auto boards = lane_map_->boards();
  const auto wavelengths = lane_map_->wavelengths();
  for (std::uint32_t s = 0; s < boards; ++s) {
    optical::OpticalTerminal* term = terminals_[s];
    for (std::uint32_t d = 0; d < boards; ++d) {
      if (d == s) continue;
      for (std::uint32_t w = 0; w < wavelengths; ++w) {
        term->lane(BoardId{d}, WavelengthId{w}).clear_brownout_cap();
      }
    }
  }
}

std::uint32_t DegradeController::sleep_idle_lanes(Cycle now) {
  std::uint32_t slept = 0;
  const auto boards = lane_map_->boards();
  const auto wavelengths = lane_map_->wavelengths();
  for (std::uint32_t d = 0; d < boards; ++d) {
    for (std::uint32_t w = 0; w < wavelengths; ++w) {
      const BoardId dd{d};
      const WavelengthId ww{w};
      const BoardId owner = lane_map_->owner(dd, ww);
      if (!owner.valid()) continue;
      optical::OpticalTerminal* term = terminals_[owner.value()];
      const optical::Lane& ln = term->lane(dd, ww);
      if (!ln.enabled() || ln.level() == PowerLevel::Off) continue;
      if (ln.release_pending() || ln.transmitting(now)) continue;
      if (term->flow_queue_size(dd) != 0) continue;
      term->request_lane_level(dd, ww, PowerLevel::Off, now);
      ++slept;
    }
  }
  stats_.lanes_slept += slept;
  if (hub_ != nullptr && hub_->enabled()) {
    for (std::uint32_t i = 0; i < slept; ++i) hub_->metrics().add(m_lanes_slept_);
  }
  return slept;
}

std::uint32_t DegradeController::shed_batch(Cycle now) {
  std::uint32_t budget = cfg_.shed_step;
  if (shed_total_ + budget > shed_limit_) budget = shed_limit_ - shed_total_;
  if (budget == 0) return 0;
  std::vector<std::pair<BoardId, WavelengthId>> batch;
  const auto boards = lane_map_->boards();
  const auto wavelengths = lane_map_->wavelengths();
  // Free lanes first: withdrawing one costs no carried traffic at all.
  for (std::uint32_t d = 0; d < boards && batch.size() < budget; ++d) {
    for (std::uint32_t w = 0; w < wavelengths && batch.size() < budget; ++w) {
      const BoardId dd{d};
      const WavelengthId ww{w};
      if (lane_map_->is_failed(dd, ww) || lane_map_->is_shed(dd, ww)) continue;
      if (!lane_map_->is_free(dd, ww)) continue;
      lane_map_->shed(dd, ww);
      batch.emplace_back(dd, ww);
    }
  }
  // Then owned lanes — but never a flow's last lane (liveness) and never a
  // lane already carrying a deferred release (its on_dark chain holds a
  // reconfiguration re-grant this release would clobber).
  for (std::uint32_t d = 0; d < boards && batch.size() < budget; ++d) {
    for (std::uint32_t w = 0; w < wavelengths && batch.size() < budget; ++w) {
      const BoardId dd{d};
      const WavelengthId ww{w};
      if (lane_map_->is_failed(dd, ww) || lane_map_->is_shed(dd, ww)) continue;
      const BoardId owner = lane_map_->owner(dd, ww);
      if (!owner.valid()) continue;
      optical::OpticalTerminal* term = terminals_[owner.value()];
      optical::Lane& ln = term->lane(dd, ww);
      if (!ln.enabled() || ln.release_pending()) continue;
      if (lane_map_->lane_count(owner, dd) < 2) continue;
      // Shed before releasing so no bandwidth window between the two can
      // re-grant the lane.
      lane_map_->shed(dd, ww);
      topology::LaneMap* lm = lane_map_;
      term->apply_release(dd, ww, now,
                          [lm, dd, ww](Cycle /*at*/) { lm->release(dd, ww); });
      batch.emplace_back(dd, ww);
    }
  }
  const auto n = static_cast<std::uint32_t>(batch.size());
  shed_total_ += n;
  stats_.lanes_shed += n;
  if (hub_ != nullptr && hub_->enabled()) {
    auto& m = hub_->metrics();
    for (std::uint32_t i = 0; i < n; ++i) m.add(m_lanes_shed_);
    m.observe(m_shed_batch_, static_cast<double>(n));
  }
  if (!batch.empty()) shed_batches_.push_back(std::move(batch));
  return n;
}

std::uint32_t DegradeController::restore_batch(Cycle /*now*/) {
  if (shed_batches_.empty()) return 0;
  std::vector<std::pair<BoardId, WavelengthId>> batch = std::move(shed_batches_.back());
  shed_batches_.pop_back();
  // LIFO within the batch too: strict reverse of the shed order.
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    lane_map_->unshed(it->first, it->second);
  }
  const auto n = static_cast<std::uint32_t>(batch.size());
  ERAPID_INVARIANT(shed_total_ >= n, "restored more lanes than were shed");
  shed_total_ -= n;
  stats_.lanes_restored += n;
  if (hub_ != nullptr && hub_->enabled()) {
    auto& m = hub_->metrics();
    for (std::uint32_t i = 0; i < n; ++i) m.add(m_lanes_restored_);
    m.observe(m_restore_batch_, static_cast<double>(n));
  }
  return n;
}

void DegradeController::finalize(Cycle now) {
  if (!episode_start_.has_value()) return;
  ERAPID_REQUIRE(now >= *episode_start_, "finalize before the open episode began");
  // The run ended degraded: the open episode still counts toward
  // time-in-degraded-state (but not toward completed episodes).
  const CycleDelta dur = now - *episode_start_;
  stats_.time_degraded += dur;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->metrics().observe(m_degraded_time_, static_cast<double>(dur));
  }
  episode_start_.reset();
}

}  // namespace erapid::resilience
