#include "resilience/policy.hpp"

#include "obs/hub.hpp"
#include "util/expect.hpp"

namespace erapid::resilience {

ResponsePolicy parse_policy(const std::string& token) {
  if (token == "record") return ResponsePolicy::Record;
  if (token == "degrade") return ResponsePolicy::Degrade;
  if (token == "shed") return ResponsePolicy::Shed;
  if (token == "abort") return ResponsePolicy::Abort;
  ERAPID_EXPECT(false, "unknown degrade policy: '" + token +
                           "' (record | degrade | shed | abort)");
  return ResponsePolicy::Record;  // unreachable
}

const char* policy_name(ResponsePolicy p) {
  switch (p) {
    case ResponsePolicy::Record: return "record";
    case ResponsePolicy::Degrade: return "degrade";
    case ResponsePolicy::Shed: return "shed";
    case ResponsePolicy::Abort: return "abort";
  }
  ERAPID_UNREACHABLE("unmodeled response policy " << static_cast<int>(p));
}

void DegradeConfig::validate(const obs::ObsConfig& obs_cfg,
                             bool bandwidth_reconfig) const {
  ERAPID_EXPECT(cooldown_cycles > 0, "degrade.cooldown_cycles must be positive");
  ERAPID_EXPECT(recover_cycles > 0, "degrade.recover_cycles must be positive");
  ERAPID_EXPECT(recover_margin > 0.0 && recover_margin < 1.0,
                "degrade.recover_margin must be in (0, 1)");
  ERAPID_EXPECT(shed_step >= 1, "degrade.shed_step must be >= 1");
  ERAPID_EXPECT(max_shed_fraction > 0.0 && max_shed_fraction <= 1.0,
                "degrade.max_shed_fraction must be in (0, 1]");
  if (!any()) return;
  ERAPID_EXPECT(obs_cfg.enabled,
                "degrade.* policies require obs.enabled = true (the controller "
                "acts on monitor violations)");
  if (power_cap.has_value()) {
    ERAPID_EXPECT(obs_cfg.monitors.power_cap_mw > 0.0,
                  "degrade.power_cap requires monitor.power_cap_mw > 0");
    ERAPID_EXPECT(*power_cap != ResponsePolicy::Shed || bandwidth_reconfig,
                  "degrade.power_cap = shed requires a bandwidth-reconfigurable "
                  "mode (there is no DBR pool to shed from)");
  }
  // The end-of-run / arc checks fire past the point where stepping power
  // down could help, so only verdict-shaping policies make sense.
  if (throughput_floor.has_value()) {
    ERAPID_EXPECT(obs_cfg.monitors.throughput_floor > 0.0,
                  "degrade.throughput_floor requires monitor.throughput_floor > 0");
    ERAPID_EXPECT(*throughput_floor == ResponsePolicy::Record ||
                      *throughput_floor == ResponsePolicy::Abort,
                  "degrade.throughput_floor admits record | abort only");
  }
  if (p99_ceiling.has_value()) {
    ERAPID_EXPECT(obs_cfg.monitors.p99_latency_ceiling > 0.0,
                  "degrade.p99_ceiling requires monitor.p99_latency_ceiling > 0");
    ERAPID_EXPECT(*p99_ceiling == ResponsePolicy::Record ||
                      *p99_ceiling == ResponsePolicy::Abort,
                  "degrade.p99_ceiling admits record | abort only");
  }
  if (recovery_deadline.has_value()) {
    ERAPID_EXPECT(obs_cfg.monitors.max_recovery_cycles > 0,
                  "degrade.recovery_deadline requires monitor.max_recovery_cycles > 0");
    ERAPID_EXPECT(*recovery_deadline == ResponsePolicy::Record ||
                      *recovery_deadline == ResponsePolicy::Abort,
                  "degrade.recovery_deadline admits record | abort only");
  }
}

}  // namespace erapid::resilience
