// Degradation controller — monitor violations become staged, reversible
// actions instead of aborts (DESIGN.md §15).
//
// The controller sits between the MonitorSet's actuation hook and the
// optical/reconfig planes. On a power-cap breach with policy degrade|shed
// it walks a brownout ladder, one rung per action, each action separated
// by `degrade.cooldown_cycles`:
//
//   Normal → CapMid    brownout-cap every lane to P_mid (packet-atomic
//                      down-transitions; future enables clamped too)
//          → CapLow    cap to P_low
//          → SleepIdle DLS-sleep lanes whose flow has no queued demand
//                      (wake-on-demand keeps liveness)
//          → Shed      withdraw `degrade.shed_step` lanes per action from
//                      the DBR pool (shed policy only), up to
//                      `degrade.max_shed_fraction` of the pool
//
// Recovery is hysteretic: once measured power stays at or below
// `recover_margin × power_cap_mw` for `recover_cycles` (and the cooldown
// has elapsed) the ladder steps back up one rung — shed batches re-enter
// the DBR pool LIFO through the same next-bandwidth-window grant path a
// repaired lane uses (PR 5), slept lanes wake on demand, caps re-raise.
//
// Slept-vs-failed invariant: the controller only ever touches healthy
// lanes through the DLS/brownout mechanisms and the LaneMap `shed` flag —
// never `mark_failed` — so the self-healing plane, `fault.lane_downtime`,
// and `monitor.max_recovery_cycles` cannot observe a deliberate sleep or
// shed as a fault.
//
// Determinism: every action is driven by monitor feeds (recorder cadence)
// and iterates lanes in (dest, wavelength) order; same-seed runs take
// byte-identical ladders.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "obs/hub.hpp"
#include "power/link_power.hpp"
#include "resilience/policy.hpp"
#include "topology/rwa.hpp"
#include "util/types.hpp"

namespace erapid::optical {
class OpticalTerminal;
}

namespace erapid::resilience {

/// Brownout ladder rung, deepest engaged action first on the way down.
enum class Stage : std::uint8_t { Normal = 0, CapMid = 1, CapLow = 2, SleepIdle = 3, Shed = 4 };

const char* stage_name(Stage s);

/// End-of-run accounting for the report's `resilience` block.
struct ControllerStats {
  bool engaged = false;  ///< the ladder left Normal at least once
  Stage peak_stage = Stage::Normal;
  std::uint64_t steps_down = 0;
  std::uint64_t steps_up = 0;
  std::uint64_t lanes_shed = 0;
  std::uint64_t lanes_restored = 0;
  std::uint64_t lanes_slept = 0;
  std::uint64_t episodes = 0;  ///< completed Normal→…→Normal round trips
  CycleDelta time_degraded = 0;
  std::uint64_t suppressed_violations = 0;
};

/// Runtime half of the `degrade.*` surface (see file comment). Built by
/// the Simulation driver when any policy is configured; attached to the
/// network's lane map and terminals once they exist.
class DegradeController {
 public:
  /// `power_cap_mw` is the monitor threshold the hysteresis margin is
  /// relative to (0 when no power-cap policy is configured). `hub` may be
  /// null only in obs-disabled unit tests; flight/metrics are skipped then.
  DegradeController(const DegradeConfig& cfg, double power_cap_mw, obs::Hub* hub);

  DegradeController(const DegradeController&) = delete;
  DegradeController& operator=(const DegradeController&) = delete;

  /// Wires the actuation targets. Called once from the Network constructor
  /// (terminals are board-indexed; the controller acts on all of them).
  void attach(topology::LaneMap& lane_map,
              std::vector<optical::OpticalTerminal*> terminals);

  /// MonitorSet actuation hook: rules on a just-recorded violation and,
  /// for degrade|shed power-cap policies, takes the next ladder action.
  obs::MonitorSet::ActuationDecision on_violation(const char* name, Cycle now,
                                                  double value, double threshold);

  /// Hysteresis feed — every recorder power sample, after the monitor saw
  /// it. Steps the ladder back up when recovery is sustained.
  void on_power_sample(Cycle now, double mw);

  /// Closes an open degraded episode for end-of-run accounting. Call once,
  /// before the metrics snapshot.
  void finalize(Cycle now);

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::optional<ResponsePolicy> policy_for(const char* name) const;
  void act(Cycle now);
  void step_up(Cycle now);
  void set_caps_all(power::PowerLevel cap, Cycle now);
  void clear_caps_all();
  std::uint32_t sleep_idle_lanes(Cycle now);
  std::uint32_t shed_batch(Cycle now);
  std::uint32_t restore_batch(Cycle now);
  void enter_stage(Stage next, Cycle now, bool down);
  void record(Cycle now, const char* action, std::uint32_t lanes);

  DegradeConfig cfg_;
  double cap_mw_;
  obs::Hub* hub_;
  topology::LaneMap* lane_map_ = nullptr;
  std::vector<optical::OpticalTerminal*> terminals_;

  Stage stage_ = Stage::Normal;
  bool acted_ = false;  ///< at least one action taken (gates the cooldown)
  Cycle last_action_ = 0;
  std::optional<Cycle> streak_start_;
  std::optional<Cycle> episode_start_;
  /// Shed batches in action order; restored LIFO.
  std::vector<std::vector<std::pair<BoardId, WavelengthId>>> shed_batches_;
  std::uint32_t shed_total_ = 0;
  std::uint32_t shed_limit_ = 0;

  ControllerStats stats_;

  obs::MetricId m_steps_down_ = 0;
  obs::MetricId m_steps_up_ = 0;
  obs::MetricId m_lanes_shed_ = 0;
  obs::MetricId m_lanes_restored_ = 0;
  obs::MetricId m_lanes_slept_ = 0;
  obs::MetricId m_suppressed_ = 0;
  obs::MetricId m_degraded_time_ = 0;
  obs::MetricId m_shed_batch_ = 0;
  obs::MetricId m_restore_batch_ = 0;
};

}  // namespace erapid::resilience
