// Trace demo: run one small P-B simulation with the observability
// subsystem on and write a Chrome/Perfetto trace plus the metrics
// snapshot. Load the trace in ui.perfetto.dev (or chrome://tracing), or
// post-process it with tools/trace/summarize_trace.py.
//
//   ./trace_demo [--trace out.trace.json] [--format chrome|csv]
//                [--boards 4] [--nodes-per-board 4] [--load 0.5] [--seed 1]
//                [--interval 500] [--events] [--workload allreduce]
//                [--telemetry out.jsonl] [--telemetry-window 2000]
//                [--flight-recorder dump.json] [--flight-depth 256]
//                [--power-cap 0] [--fail-fast] [--degrade record|degrade|shed|abort]
//
// CI runs this binary as the instrumented smoke simulation and validates
// the emitted trace with the summarizer — and, with --telemetry, the
// windowed JSONL stream with tools/obs/telemetry_report.py. --power-cap
// (mW, 0 = off) arms the power envelope monitor; combined with
// --flight-recorder an impossible cap forces a violation and dumps the
// black-box ring, which CI schema-checks. --degrade installs the
// survivability controller's response to cap violations (the brownout
// ladder; DESIGN.md §15) — with --fail-fast a tight cap aborts the run
// unless the policy holds it inside the envelope, which the chaos CI job
// smokes under ASan/UBSan.
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  sim::SimOptions opts;
  opts.system.boards = static_cast<std::uint32_t>(cli.get_int("boards", 4));
  opts.system.nodes_per_board =
      static_cast<std::uint32_t>(cli.get_int("nodes-per-board", 4));
  opts.reconfig.mode = reconfig::NetworkMode::p_b();
  opts.load_fraction = cli.get_double("load", 0.5);
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.warmup_cycles = 4000;
  opts.measure_cycles = 8000;
  opts.drain_limit = 60000;

  opts.obs.enabled = true;
  opts.obs.trace_path = cli.get_or("trace", std::string("trace_demo.trace.json"));
  opts.obs.trace_format = cli.get_or("format", std::string("chrome"));
  opts.obs.counter_interval =
      static_cast<CycleDelta>(cli.get_int("interval", 500));
  opts.obs.trace_events = cli.has("events");

  // Windowed telemetry plane + flight recorder (both off by default, same
  // as the obs.telemetry / obs.flight_recorder_depth INI keys).
  if (const auto tel = cli.get("telemetry")) {
    opts.obs.telemetry_path = *tel;
    opts.obs.telemetry_window =
        static_cast<CycleDelta>(cli.get_int("telemetry-window", 2000));
  }
  if (const auto fr = cli.get("flight-recorder")) {
    opts.obs.flight_recorder_path = *fr;
    opts.obs.flight_recorder_depth =
        static_cast<std::size_t>(cli.get_int("flight-depth", 256));
  }
  opts.obs.monitors.power_cap_mw = cli.get_double("power-cap", 0.0);
  opts.obs.monitor_fail_fast = cli.has("fail-fast");
  if (const auto policy = cli.get("degrade")) {
    opts.degrade.power_cap = resilience::parse_policy(*policy);
  }

  // Optional structured workload (e.g. --workload allreduce): the demo
  // then traces a completion-bounded collective instead of the fixed
  // warmup/measure window.
  if (const auto wl = cli.get("workload")) {
    const auto kind = workload::parse_kind(*wl);
    if (!kind) {
      std::cerr << "unknown workload kind: " << *wl << "\n";
      return 1;
    }
    opts.workload.kind = *kind;
    opts.workload.episodes = 1;
    opts.workload.volume_packets = 4;
    opts.workload.phase_rate = 0.6;
    opts.workload.horizon_cycles = 200000;
  }

  sim::Simulation simulation(opts);
  const auto result = simulation.run();

#if defined(ERAPID_NO_OBS)
  std::cout << "built with ERAPID_NO_OBS: no trace written\n";
#else
  std::cout << "trace written to " << opts.obs.trace_path << "\n";
  if (!opts.obs.telemetry_path.empty()) {
    std::cout << "telemetry written to " << opts.obs.telemetry_path << "\n";
  }
#endif
  std::cout << sim::to_json(result) << "\n";
  return 0;
}
