// Adversarial-traffic reconfiguration demo (the paper's headline scenario,
// §4.2): complement traffic concentrates every node of board s onto board
// B-1-s, saturating the single static wavelength at a fraction of N_c.
// Watch the Lock-Step protocol harvest idle wavelengths and hand them to
// the congested flows, then compare the four modes.
//
//   ./adversarial_reconfig [--load 0.6] [--seed 1]
#include <iostream>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  sim::SimOptions opts;
  opts.pattern = traffic::PatternKind::Complement;
  opts.load_fraction = cli.get_double("load", 0.6);
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // --- Step 1: run P-B alone and show how lane ownership evolved. ---
  {
    sim::SimOptions o = opts;
    o.reconfig.mode = reconfig::NetworkMode::p_b();
    sim::Simulation s(o);
    const auto r = s.run();

    std::cout << "P-B run on complement traffic at " << opts.load_fraction
              << " x N_c:\n";
    std::cout << "  lane grants:   " << r.control.lane_grants << "\n";
    std::cout << "  lane releases: " << r.control.lane_releases << "\n";
    std::cout << "  DVS changes:   " << r.control.level_changes << "\n\n";

    // Final lane allocation per (source board -> complement partner).
    auto& net = s.network();
    const std::uint32_t B = net.config().num_boards_total();
    util::TablePrinter lanes({"flow", "static lanes", "lanes now"});
    for (std::uint32_t b = 0; b < B; ++b) {
      const BoardId src{b};
      const BoardId dst{B - 1 - b};
      lanes.row_values("board " + std::to_string(b) + " -> " + std::to_string(B - 1 - b),
                       1u, net.lane_map().lane_count(src, dst));
    }
    lanes.print(std::cout);
    std::cout << "\n";
  }

  // --- Step 2: the four-mode comparison the paper's Figure 5 makes. ---
  const auto cmp = sim::compare_modes(opts);
  util::TablePrinter table({"mode", "accepted (xN_c)", "avg latency", "power (mW)"});
  auto add = [&](const sim::SimResult& r, const char* name) {
    table.row_values(name, util::TablePrinter::fixed(r.accepted_fraction, 3),
                     util::TablePrinter::fixed(r.latency_avg, 1),
                     util::TablePrinter::fixed(r.power_avg_mw, 1));
  };
  add(cmp.np_nb, "NP-NB");
  add(cmp.p_nb, "P-NB");
  add(cmp.np_b, "NP-B");
  add(cmp.p_b, "P-B");
  table.print(std::cout);

  const double gain = cmp.p_b.accepted_fraction /
                      (cmp.np_nb.accepted_fraction > 0 ? cmp.np_nb.accepted_fraction : 1.0);
  std::cout << "\nP-B throughput gain over static NP-NB: " << gain << "x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
