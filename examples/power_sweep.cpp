// Power/performance sweep: offered load 0.1..0.9 x N_c under one traffic
// pattern, P-B vs NP-NB — the power-saving story of the paper's abstract
// (25-50% less power for <5% throughput loss on benign traffic).
// Optionally writes the series to CSV for plotting.
//
//   ./power_sweep [--pattern uniform] [--csv out.csv] [--seed 1]
#include <iostream>
#include <memory>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  const auto pattern = traffic::parse_pattern(cli.get_or("pattern", "uniform"));
  if (!pattern) {
    std::cerr << "unknown pattern\n";
    return 1;
  }

  std::unique_ptr<util::CsvWriter> csv;
  if (auto path = cli.get("csv")) {
    csv = std::make_unique<util::CsvWriter>(
        *path, std::vector<std::string>{"load", "mode", "accepted", "latency", "power_mw"});
  }

  util::TablePrinter table({"load (xN_c)", "NP-NB thru", "P-B thru", "NP-NB mW",
                            "P-B mW", "power saved"});
  for (int i = 1; i <= 9; ++i) {
    const double load = 0.1 * i;
    sim::SimOptions opts;
    opts.pattern = *pattern;
    opts.load_fraction = load;
    opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

    sim::SimOptions base = opts;
    base.reconfig.mode = reconfig::NetworkMode::np_nb();
    const auto r_base = sim::Simulation(base).run();

    sim::SimOptions pb = opts;
    pb.reconfig.mode = reconfig::NetworkMode::p_b();
    const auto r_pb = sim::Simulation(pb).run();

    const double saved =
        r_base.power_avg_mw > 0 ? 1.0 - r_pb.power_avg_mw / r_base.power_avg_mw : 0.0;
    table.row_values(util::TablePrinter::fixed(load, 1),
                     util::TablePrinter::fixed(r_base.accepted_fraction, 3),
                     util::TablePrinter::fixed(r_pb.accepted_fraction, 3),
                     util::TablePrinter::fixed(r_base.power_avg_mw, 1),
                     util::TablePrinter::fixed(r_pb.power_avg_mw, 1),
                     util::TablePrinter::fixed(100.0 * saved, 1) + "%");
    if (csv) {
      csv->row_values(load, "NP-NB", r_base.accepted_fraction, r_base.latency_avg,
                      r_base.power_avg_mw);
      csv->row_values(load, "P-B", r_pb.accepted_fraction, r_pb.latency_avg,
                      r_pb.power_avg_mw);
    }
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
