// Using the library below the Simulation driver: build a Network directly,
// drive it with a hand-rolled traffic process (a bursty on/off source
// aimed at one board — not expressible as a TrafficPattern), and observe
// the Lock-Step protocol chase the bursts with grants and DVS changes.
//
// This is the intended extension point for users who want trace-driven or
// application-generated traffic.
//
//   ./custom_pattern [--bursts 12] [--burst-len 4000] [--gap 6000]
#include <iostream>

#include "des/engine.hpp"
#include "sim/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  const auto bursts = static_cast<std::uint32_t>(cli.get_int("bursts", 12));
  const auto burst_len = static_cast<Cycle>(cli.get_int("burst-len", 4000));
  const auto gap = static_cast<Cycle>(cli.get_int("gap", 6000));

  topology::SystemConfig cfg;  // R(1,8,8) default
  reconfig::ReconfigConfig rc;
  rc.mode = reconfig::NetworkMode::p_b();

  des::Engine engine;
  sim::Network net(engine, cfg, rc);

  std::uint64_t delivered = 0;
  double latency_sum = 0;
  net.set_delivery_callback([&](const router::Packet& p, Cycle now) {
    ++delivered;
    latency_sum += static_cast<double>(now - p.created);
  });
  net.start();

  // Bursty process: during a burst, every node of board 0 fires a packet
  // at node (63 - local) of board 7 every 40 cycles; then silence.
  std::uint64_t seq = 1;
  const std::uint32_t D = cfg.nodes_per_board;
  for (std::uint32_t burst = 0; burst < bursts; ++burst) {
    const Cycle start = static_cast<Cycle>(burst) * (burst_len + gap) + 100;
    for (Cycle t = start; t < start + burst_len; t += 40) {
      for (std::uint32_t i = 0; i < D; ++i) {
        engine.schedule_at(t, [&net, &engine, &seq, &cfg, i, D] {
          router::Packet p;
          p.seq = seq++;
          p.src = cfg.node_at(BoardId{0}, i);
          p.dst = cfg.node_at(BoardId{cfg.boards - 1}, D - 1 - i);
          p.flits = cfg.packet_flits;
          p.created = engine.now();
          net.inject(p, engine.now());
        });
      }
    }
  }

  const Cycle horizon = static_cast<Cycle>(bursts) * (burst_len + gap) + 50000;
  engine.run_until(horizon);

  const auto& ctl = net.reconfig_manager().counters();
  util::TablePrinter table({"metric", "value"});
  table.row_values("packets delivered", delivered);
  table.row_values("avg latency (cycles)",
                   util::TablePrinter::fixed(
                       delivered ? static_cast<double>(latency_sum) / static_cast<double>(delivered)
                                 : 0.0,
                       1));
  table.row_values("lane grants", ctl.lane_grants);
  table.row_values("lane releases", ctl.lane_releases);
  table.row_values("DVS level changes", ctl.level_changes);
  table.row_values("lanes board0->board7 now",
                   net.lane_map().lane_count(BoardId{0}, BoardId{cfg.boards - 1}));
  table.row_values("avg optical power (mW)",
                   util::TablePrinter::fixed(net.meter().average_mw(engine.now()).value(), 1));
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
