// Trace-driven replay: synthesizes a phased application trace (stencil
// timesteps with a periodic all-to-all transpose — the temporal-locality
// workload the paper's introduction motivates), saves/loads it through
// the text trace format, and replays it under the static NP-NB and the
// power-bandwidth-reconfigured P-B configurations.
//
//   ./trace_replay [--steps 40] [--period 800] [--trace /tmp/app.trace]
#include <iostream>

#include "des/engine.hpp"
#include "sim/network.hpp"
#include "stats/streaming.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_source.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace erapid;

struct ReplayResult {
  std::uint64_t delivered = 0;
  double latency_avg = 0;
  double power_avg_mw = 0;
  std::uint64_t lane_grants = 0;
  Cycle makespan = 0;
};

ReplayResult replay(const traffic::Trace& trace, const reconfig::NetworkMode& mode) {
  topology::SystemConfig cfg;  // R(1,8,8)
  reconfig::ReconfigConfig rc;
  rc.mode = mode;

  des::Engine engine;
  sim::Network net(engine, cfg, rc);
  stats::Streaming latency;
  std::uint64_t delivered = 0;
  Cycle last_delivery = 0;
  net.set_delivery_callback([&](const router::Packet& p, Cycle now) {
    ++delivered;
    latency.add(static_cast<double>(now - p.created));
    last_delivery = now;
  });
  net.start();
  net.meter().checkpoint(0);

  traffic::TraceReplayer replayer(
      engine, trace, cfg.packet_flits,
      [&net](const router::Packet& p, Cycle now) { net.inject(p, now); });
  replayer.start(/*offset=*/100);
  engine.run_until(trace.duration() + 400000);  // generous drain horizon

  ReplayResult r;
  r.delivered = delivered;
  r.latency_avg = latency.mean();
  r.power_avg_mw = net.meter().average_mw(engine.now()).value();
  r.lane_grants = net.reconfig_manager().counters().lane_grants;
  r.makespan = last_delivery;
  return r;
}

int run(int argc, char** argv) {
  const auto cli = util::Cli::parse(argc, argv);
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 40));
  const auto period = static_cast<Cycle>(cli.get_int("period", 800));
  const std::string path = cli.get_or("trace", "/tmp/erapid_app.trace");

  topology::SystemConfig cfg;
  const std::uint32_t N = cfg.num_nodes();

  // Compose the phased application: stencil every `period`, an all-to-all
  // transpose every 8 timesteps.
  traffic::Trace app = traffic::make_stencil_trace(N, steps, period);
  traffic::Trace transpose =
      traffic::make_alltoall_trace(N, steps / 8, 8 * period, /*stagger=*/4,
                                   /*start=*/4 * period);
  for (const auto& e : transpose.events()) app.add(e.cycle, e.src, e.dst);
  app.finalize(N);

  // Round-trip through the on-disk format.
  app.save_file(path);
  const auto loaded = traffic::Trace::load_file(path, N);
  std::cout << "trace: " << loaded.size() << " events over " << loaded.duration()
            << " cycles (saved to " << path << ")\n\n";

  const auto np_nb = replay(loaded, reconfig::NetworkMode::np_nb());
  const auto p_b = replay(loaded, reconfig::NetworkMode::p_b());

  util::TablePrinter t({"mode", "delivered", "avg latency (cyc)", "avg power (mW)",
                        "lane grants", "makespan (cyc)"});
  t.row_values("NP-NB", np_nb.delivered, util::TablePrinter::fixed(np_nb.latency_avg, 1),
               util::TablePrinter::fixed(np_nb.power_avg_mw, 1), np_nb.lane_grants,
               np_nb.makespan);
  t.row_values("P-B", p_b.delivered, util::TablePrinter::fixed(p_b.latency_avg, 1),
               util::TablePrinter::fixed(p_b.power_avg_mw, 1), p_b.lane_grants,
               p_b.makespan);
  t.print(std::cout);

  if (np_nb.power_avg_mw > 0) {
    std::cout << "\nP-B energy saving on this application: "
              << util::TablePrinter::fixed(
                     100.0 * (1.0 - p_b.power_avg_mw / np_nb.power_avg_mw), 1)
              << "%\n";
  }
  return p_b.delivered == np_nb.delivered ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
