// Trace-driven replay through the workload subsystem: replays an
// erapid-trace v1 file to delivered-byte completion (workload.kind=trace)
// under the static NP-NB and the power-bandwidth-reconfigured P-B
// configurations and compares makespan, latency and power.
//
// With no --trace argument it synthesizes the phased application the
// paper's introduction motivates (stencil timesteps with a periodic
// all-to-all transpose), round-trips it through the on-disk format, and
// replays that.
//
//   ./trace_replay [--trace tests/data/tiny_app.trace] [--boards 4]
//                  [--nodes 4] [--steps 40] [--period 800] [--json]
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "traffic/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace erapid;

sim::SimResult replay(const sim::SimOptions& base, const reconfig::NetworkMode& mode) {
  sim::SimOptions o = base;
  o.reconfig.mode = mode;
  sim::Simulation s(o);
  return s.run();
}

int run(int argc, char** argv) {
  const auto cli = util::Cli::parse(argc, argv);

  sim::SimOptions o;
  o.system.boards = static_cast<std::uint32_t>(cli.get_int("boards", 8));
  o.system.nodes_per_board = static_cast<std::uint32_t>(cli.get_int("nodes", 8));
  o.workload.kind = workload::WorkloadKind::Trace;
  o.workload.horizon_cycles = 400000;
  const std::uint32_t N = o.system.num_nodes();

  if (const auto trace = cli.get("trace")) {
    o.workload.trace_file = *trace;
  } else {
    // Compose the phased application: stencil every `period`, an
    // all-to-all transpose every 8 timesteps; round-trip it through the
    // on-disk format so the example also exercises save/load.
    const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 40));
    const auto period = static_cast<Cycle>(cli.get_int("period", 800));
    const std::string path = cli.get_or("out", "/tmp/erapid_app.trace");
    traffic::Trace app = traffic::make_stencil_trace(N, steps, period);
    traffic::Trace transpose =
        traffic::make_alltoall_trace(N, steps / 8, 8 * period, /*stagger=*/4,
                                     /*start=*/4 * period);
    for (const auto& e : transpose.events()) app.add(e.cycle, e.src, e.dst);
    app.finalize(N);
    app.save_file(path);
    o.workload.trace_file = path;
  }

  const auto loaded = traffic::Trace::load_file(o.workload.trace_file, N);
  std::cout << "trace: " << loaded.size() << " events over " << loaded.duration()
            << " cycles (" << o.workload.trace_file << ")\n\n";

  const auto np_nb = replay(o, reconfig::NetworkMode::np_nb());
  const auto p_b = replay(o, reconfig::NetworkMode::p_b());

  if (cli.get_bool("json", false)) {
    // Machine-readable: the P-B report (what the smoke test parses).
    std::cout << sim::to_json(p_b) << "\n";
  } else {
    util::TablePrinter t({"mode", "completed", "delivered", "avg latency (cyc)",
                          "avg power (mW)", "makespan (cyc)"});
    for (const auto* r : {&np_nb, &p_b}) {
      t.row_values(r == &np_nb ? "NP-NB" : "P-B",
                   r->workload.completed ? "yes" : "NO", r->workload.packets_delivered,
                   util::TablePrinter::fixed(r->latency_avg, 1),
                   util::TablePrinter::fixed(r->power_avg_mw, 1), r->end_cycle);
    }
    t.print(std::cout);

    if (np_nb.power_avg_mw > 0) {
      std::cout << "\nP-B energy saving on this application: "
                << util::TablePrinter::fixed(
                       100.0 * (1.0 - p_b.power_avg_mw / np_nb.power_avg_mw), 1)
                << "%\n";
    }
  }
  const bool ok = np_nb.workload.completed && p_b.workload.completed &&
                  p_b.workload.packets_delivered == np_nb.workload.packets_delivered;
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
