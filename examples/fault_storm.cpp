// Fault-injection demo: kill lanes, brown out a laser and drop Lock-Step
// control packets mid-run, then watch the reconfiguration plane absorb it.
//
// The permanent storm (relative to the warmup end W):
//   W+1000   lane (d1, w1) dies           — its flow is re-homed by DBR
//   W+2000   lane (d2, w2) dies
//   W+3000   laser on (d3, w3) degrades to P_low for 6000 cycles
//   W+4000   board 1 loses 2 consecutive ring circulations (retries)
//   W+5000   board 2 loses more than ctrl_retry_limit (sits a window out)
//
// With --transient the storm self-heals instead: the lane failure repairs
// (and the lane is re-admitted by DBR), a bit-error window corrupts
// packets that the CRC/ARQ path retransmits, and an RC crashes and later
// rejoins the ring (watchdog token regeneration in between).
//
//   ./fault_storm [--load 0.5] [--seed 1] [--drop-prob 0.0] [--transient]
//                 [--trace storm.trace.json]
#include <iostream>
#include <sstream>
#include <string>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  sim::SimOptions opts;
  opts.pattern = traffic::PatternKind::Uniform;
  opts.reconfig.mode = reconfig::NetworkMode::p_b();
  opts.load_fraction = cli.get_double("load", 0.5);
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const bool transient = cli.has("transient");
  if (const auto trace = cli.get("trace")) {
    opts.obs.enabled = true;
    opts.obs.trace_path = *trace;
    opts.obs.trace_events = true;
  }

  const Cycle w = opts.warmup_cycles;
  std::ostringstream plan;
  if (transient) {
    plan << "lane_fail@" << (w + 1000) << ":d1:w1:r" << (w + 5000) << " "
         << "bit_error@" << (w + 1500) << ":d2:w2:p0.0005:6000 "
         << "rc_crash@" << (w + 2000) << ":b2:r" << (w + 6000) << " "
         << "ctrl_drop@" << (w + 4000) << ":ring:b1:n2";
  } else {
    plan << "lane_fail@" << (w + 1000) << ":d1:w1 "
         << "lane_fail@" << (w + 2000) << ":d2:w2 "
         << "laser_degrade@" << (w + 3000) << ":d3:w3:low:6000 "
         << "ctrl_drop@" << (w + 4000) << ":ring:b1:n2 "
         << "ctrl_drop@" << (w + 5000) << ":ring:b2:n"
         << (opts.reconfig.ctrl_retry_limit + 1);
  }

  // --- fault-free baseline, then the same run under the storm ---
  sim::SimResult clean;
  {
    sim::Simulation s(opts);
    clean = s.run();
  }
  sim::SimOptions faulty = opts;
  faulty.fault = fault::FaultPlan::parse_events(plan.str());
  faulty.fault.ctrl_drop_prob = cli.get_double("drop-prob", 0.0);
  sim::Simulation s(faulty);
  const auto r = s.run();

  std::cout << "Fault storm on uniform P-B at " << opts.load_fraction << " x N_c\n"
            << "plan: " << faulty.fault.format_events() << "\n\n";

  util::TablePrinter cmp({"metric", "fault-free", "under storm"});
  cmp.row_values("accepted (xN_c)", util::TablePrinter::fixed(clean.accepted_fraction, 3),
                 util::TablePrinter::fixed(r.accepted_fraction, 3));
  cmp.row_values("avg latency (cycles)", util::TablePrinter::fixed(clean.latency_avg, 1),
                 util::TablePrinter::fixed(r.latency_avg, 1));
  cmp.row_values("power (mW)", util::TablePrinter::fixed(clean.power_avg_mw, 1),
                 util::TablePrinter::fixed(r.power_avg_mw, 1));
  cmp.row_values("lane grants", clean.control.lane_grants, r.control.lane_grants);
  cmp.print(std::cout);

  std::cout << "\nRecovery:\n";
  util::TablePrinter rec({"stat", "value"});
  rec.row_values("lanes failed", r.fault.lanes_failed);
  rec.row_values("lanes degraded", r.fault.lanes_degraded);
  rec.row_values("in-flight packets re-homed", r.fault.packets_rehomed);
  rec.row_values("reroutes completed", r.fault.reroutes_completed);
  rec.row_values("reroutes still pending", r.fault.reroutes_pending);
  rec.row_values("degraded windows", r.fault.degraded_windows);
  rec.row_values("worst time-to-reroute (cycles)", r.fault.worst_time_to_reroute);
  rec.row_values("ctrl packets dropped", r.fault.ctrl_drops);
  rec.row_values("ctrl retransmissions", r.fault.ctrl_retries);
  rec.row_values("ctrl timeouts (window sat out)", r.fault.ctrl_timeouts);
  rec.row_values("ctrl retry budgets exhausted", r.fault.ctrl_exhausted);
  rec.row_values("stale directives discarded", r.fault.stale_directives);
  rec.print(std::cout);

  if (transient) {
    std::cout << "\nSelf-healing:\n";
    util::TablePrinter heal({"stat", "value"});
    heal.row_values("lanes repaired", r.fault.lanes_repaired);
    heal.row_values("re-admissions completed", r.fault.readmissions_completed);
    heal.row_values("re-admissions still pending", r.fault.readmissions_pending);
    heal.row_values("worst downtime (cycles)", r.fault.worst_downtime);
    heal.row_values("worst re-admission wait (cycles)", r.fault.worst_readmission_wait);
    heal.row_values("CRC drops", r.fault.crc_dropped);
    heal.row_values("ARQ retransmissions", r.fault.arq_retransmits);
    heal.row_values("ARQ dead letters", r.fault.arq_dead_letters);
    heal.row_values("RC crashes / repairs",
                    std::to_string(r.fault.rc_crashes) + " / " +
                        std::to_string(r.fault.rc_repairs));
    heal.row_values("watchdog fires", r.fault.watchdog_fires);
    heal.row_values("ring tokens regenerated", r.fault.tokens_regenerated);
    heal.row_values("frozen LS windows", r.fault.frozen_windows);
    heal.print(std::cout);
  }

  const double retention =
      clean.accepted_fraction > 0 ? r.accepted_fraction / clean.accepted_fraction : 1.0;
  std::cout << "\nThroughput retention under storm: "
            << util::TablePrinter::fixed(retention, 3) << "x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
