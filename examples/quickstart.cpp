// Quickstart: simulate a 64-node E-RAPID system (R(1,8,8), the paper's
// evaluation configuration) under uniform traffic at half capacity in the
// paper's four network modes, and print throughput / latency / power.
//
//   ./quickstart [--load 0.5] [--pattern uniform] [--nodes-per-board 8]
//                [--boards 8] [--seed 1] [--config exp.ini]
//                [--json results.json] [--save-config exp.ini]
//
// With --config, the INI file provides the baseline (see
// sim/options_io.hpp for the schema) and command-line flags override it.
#include <iostream>

#include "sim/options_io.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace erapid;

  const auto cli = util::Cli::parse(argc, argv);
  sim::SimOptions opts;
  if (const auto cfg = cli.get("config")) opts = sim::load_options(*cfg);
  opts.system.boards = static_cast<std::uint32_t>(
      cli.get_int("boards", static_cast<long>(opts.system.boards)));
  opts.system.nodes_per_board = static_cast<std::uint32_t>(
      cli.get_int("nodes-per-board", static_cast<long>(opts.system.nodes_per_board)));
  opts.load_fraction = cli.get_double("load", opts.load_fraction);
  opts.seed =
      static_cast<std::uint64_t>(cli.get_int("seed", static_cast<long>(opts.seed)));

  const auto pattern =
      traffic::parse_pattern(cli.get_or("pattern", std::string(traffic::pattern_name(opts.pattern))));
  if (!pattern) {
    std::cerr << "unknown pattern: " << cli.get_or("pattern", "") << "\n";
    return 1;
  }
  opts.pattern = *pattern;

  if (const auto save = cli.get("save-config")) {
    sim::save_options(*save, opts);
    std::cout << "wrote effective config to " << *save << "\n";
  }

  std::cout << "E-RAPID " << opts.system.describe() << ", pattern "
            << traffic::pattern_name(opts.pattern) << ", offered load "
            << opts.load_fraction << " x N_c\n\n";

  const auto cmp = sim::compare_modes(opts);

  util::TablePrinter table({"mode", "accepted (xN_c)", "avg latency (cyc)",
                            "p99 latency", "power (mW)", "drained"});
  auto add = [&](const sim::SimResult& r, const char* name) {
    table.row_values(name, util::TablePrinter::fixed(r.accepted_fraction, 3),
                     util::TablePrinter::fixed(r.latency_avg, 1),
                     util::TablePrinter::fixed(r.latency_p99, 1),
                     util::TablePrinter::fixed(r.power_avg_mw, 1),
                     r.drained ? "yes" : "no");
  };
  add(cmp.np_nb, "NP-NB");
  add(cmp.p_nb, "P-NB");
  add(cmp.np_b, "NP-B");
  add(cmp.p_b, "P-B");
  table.print(std::cout);

  std::cout << "\nN_c (uniform capacity) = " << cmp.np_nb.capacity_pkt_node_cycle
            << " packets/node/cycle\n";

  if (const auto json = cli.get("json")) {
    sim::write_results_json(*json, {{"NP-NB", cmp.np_nb},
                                    {"P-NB", cmp.p_nb},
                                    {"NP-B", cmp.np_b},
                                    {"P-B", cmp.p_b}});
    std::cout << "wrote JSON results to " << *json << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
