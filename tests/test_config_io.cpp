// Tests for the INI parser, SimOptions config round-trip, the recorder
// time-series sampler, and the JSON result export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/options_io.hpp"
#include "sim/recorder.hpp"
#include "sim/report.hpp"
#include "util/ini.hpp"

namespace {

using erapid::sim::load_options;
using erapid::sim::options_from_ini;
using erapid::sim::options_to_ini;
using erapid::sim::SimOptions;
using erapid::util::Ini;

// ---- Ini ------------------------------------------------------------------

TEST(Ini, ParsesSectionsAndKeys) {
  const auto ini = Ini::parse_string("[system]\nboards = 8\n\n[workload]\nload = 0.5\n");
  EXPECT_EQ(ini.get_int("system.boards", 0), 8);
  EXPECT_DOUBLE_EQ(ini.get_double("workload.load", 0), 0.5);
  EXPECT_FALSE(ini.has("system.load"));
}

TEST(Ini, CommentsAndWhitespaceIgnored) {
  const auto ini = Ini::parse_string("; top\n# also\n[ s ]\n  k =  v  \n");
  EXPECT_EQ(ini.get_or("s.k", ""), "v");
}

TEST(Ini, SectionlessKeysWork) {
  const auto ini = Ini::parse_string("alpha = 3\n");
  EXPECT_EQ(ini.get_int("alpha", 0), 3);
}

TEST(Ini, BoolParsing) {
  const auto ini = Ini::parse_string("[a]\nx = true\ny = 0\nz = yes\n");
  EXPECT_TRUE(ini.get_bool("a.x", false));
  EXPECT_FALSE(ini.get_bool("a.y", true));
  EXPECT_TRUE(ini.get_bool("a.z", false));
  EXPECT_TRUE(ini.get_bool("a.missing", true));
}

TEST(Ini, MalformedLinesThrow) {
  EXPECT_THROW(Ini::parse_string("[unterminated\n"), erapid::ModelInvariantError);
  EXPECT_THROW(Ini::parse_string("no equals sign\n"), erapid::ModelInvariantError);
  EXPECT_THROW(Ini::parse_string("= novalue\n"), erapid::ModelInvariantError);
}

TEST(Ini, SaveParsesBack) {
  Ini ini;
  ini.set("b.two", "2");
  ini.set("a.one", "1");
  ini.set("plain", "x");
  std::ostringstream os;
  ini.save(os);
  const auto back = Ini::parse_string(os.str());
  EXPECT_EQ(back.get_or("a.one", ""), "1");
  EXPECT_EQ(back.get_or("b.two", ""), "2");
  EXPECT_EQ(back.get_or("plain", ""), "x");
  EXPECT_EQ(back.size(), 3u);
}

TEST(Ini, MissingFileThrows) {
  EXPECT_THROW(Ini::load_file("/nonexistent/x.ini"), erapid::ModelInvariantError);
}

// ---- options round-trip ------------------------------------------------------

TEST(OptionsIo, DefaultsSurviveRoundTrip) {
  SimOptions def;
  const auto ini = options_to_ini(def);
  const auto back = options_from_ini(ini);
  EXPECT_EQ(back.system.boards, def.system.boards);
  EXPECT_EQ(back.system.nodes_per_board, def.system.nodes_per_board);
  EXPECT_EQ(back.reconfig.window, def.reconfig.window);
  EXPECT_EQ(back.pattern, def.pattern);
  EXPECT_DOUBLE_EQ(back.load_fraction, def.load_fraction);
  EXPECT_EQ(back.reconfig.mode.name, def.reconfig.mode.name);
}

TEST(OptionsIo, CustomValuesSurviveRoundTrip) {
  SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 2;
  o.pattern = erapid::traffic::PatternKind::Complement;
  o.load_fraction = 0.65;
  o.seed = 99;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
  o.reconfig.mode.dbr.max_lanes_per_flow = 3;
  o.reconfig.window = 4000;
  o.reconfig.dpm_strategy = erapid::reconfig::DpmStrategyKind::Ewma;
  o.reconfig.dpm_params.ewma_alpha = 0.25;

  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.system.boards, 4u);
  EXPECT_EQ(back.pattern, erapid::traffic::PatternKind::Complement);
  EXPECT_DOUBLE_EQ(back.load_fraction, 0.65);
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.reconfig.mode.name, "P-B");
  EXPECT_EQ(back.reconfig.mode.dbr.max_lanes_per_flow, 3u);
  EXPECT_EQ(back.reconfig.window, 4000u);
  EXPECT_EQ(back.reconfig.dpm_strategy, erapid::reconfig::DpmStrategyKind::Ewma);
  EXPECT_DOUBLE_EQ(back.reconfig.dpm_params.ewma_alpha, 0.25);
}

TEST(OptionsIo, DesQueueRoundTripsAndRejectsUnknown) {
  SimOptions def;
  EXPECT_EQ(def.des_queue, erapid::des::QueueKind::Heap);
  def.des_queue = erapid::des::QueueKind::Calendar;
  const auto ini = options_to_ini(def);
  EXPECT_EQ(ini.get("des.queue").value_or(""), "calendar");
  EXPECT_EQ(options_from_ini(ini).des_queue, erapid::des::QueueKind::Calendar);

  erapid::util::Ini text = erapid::util::Ini::parse_string("[des]\nqueue = heap\n");
  EXPECT_EQ(options_from_ini(text).des_queue, erapid::des::QueueKind::Heap);
  erapid::util::Ini bad = erapid::util::Ini::parse_string("[des]\nqueue = splay\n");
  EXPECT_THROW(options_from_ini(bad), erapid::ModelInvariantError);
}

// Determinism contract (DESIGN.md §7): every options struct must be fully
// initialized by default construction — an indeterminate member would make
// two "identical" runs diverge. Default-construct each one, read every
// scalar back (uninitialized reads are UB and trip MSan/valgrind in the
// sanitizer CI job), and check the documented defaults.
TEST(OptionsIo, EveryOptionsStructDefaultConstructsInitialized) {
  const erapid::topology::SystemConfig sys;
  EXPECT_EQ(sys.clusters, 1u);
  EXPECT_EQ(sys.boards, 8u);
  EXPECT_EQ(sys.nodes_per_board, 8u);
  EXPECT_DOUBLE_EQ(sys.router_clock_ghz, 0.4);
  EXPECT_EQ(sys.channel_width_bits, 16u);
  EXPECT_EQ(sys.flit_bits, 64u);
  EXPECT_EQ(sys.packet_flits, 8u);
  EXPECT_EQ(sys.num_vcs, 4u);
  EXPECT_EQ(sys.vc_buffer_flits, 8u);
  EXPECT_EQ(sys.credit_delay, 1u);
  EXPECT_EQ(sys.tx_queue_packets, 16u);
  EXPECT_EQ(sys.rx_queue_packets, 8u);
  EXPECT_EQ(sys.fiber_delay_cycles, 8u);
  EXPECT_EQ(sys.tx_feed_cycles_per_flit, 1u);
  EXPECT_EQ(sys.injection_queue_packets, 64u);
  EXPECT_NO_THROW(sys.validate());

  const erapid::reconfig::DpmPolicy dpm;
  EXPECT_DOUBLE_EQ(dpm.l_min, 0.7);
  EXPECT_DOUBLE_EQ(dpm.l_max, 0.9);
  EXPECT_DOUBLE_EQ(dpm.b_max, 0.3);
  EXPECT_TRUE(dpm.require_buffer_for_upscale);
  EXPECT_TRUE(dpm.shutdown_idle);

  const erapid::reconfig::DbrPolicy dbr;
  EXPECT_DOUBLE_EQ(dbr.b_min, 0.0);
  EXPECT_DOUBLE_EQ(dbr.b_max, 0.3);
  EXPECT_EQ(dbr.max_lanes_per_flow, 0u);

  const erapid::reconfig::DpmStrategyParams params;
  EXPECT_EQ(params.hysteresis_windows, 2u);
  EXPECT_DOUBLE_EQ(params.ewma_alpha, 0.5);

  const erapid::reconfig::ReconfigConfig rc;
  EXPECT_EQ(rc.window, 2000u);
  EXPECT_EQ(rc.ring_hop_cycles, 16u);
  EXPECT_EQ(rc.lc_hop_cycles, 4u);
  EXPECT_EQ(rc.mode.name, "NP-NB");
  EXPECT_EQ(rc.grant_level, erapid::power::PowerLevel::High);
  EXPECT_EQ(rc.dpm_strategy, erapid::reconfig::DpmStrategyKind::Threshold);
  EXPECT_EQ(rc.ctrl_retry_limit, 3u);

  const erapid::power::LinkPowerModel pw;
  EXPECT_DOUBLE_EQ(pw.power_mw(erapid::power::PowerLevel::Off).value(), 0.0);
  EXPECT_DOUBLE_EQ(pw.power_mw(erapid::power::PowerLevel::High).value(), 43.03);
  EXPECT_EQ(pw.voltage_transition_cycles(), 65u);
  EXPECT_EQ(pw.freq_relock_cycles(), 12u);

  const erapid::fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.ctrl_drop_prob, 0.0);

  const SimOptions def;
  EXPECT_EQ(def.pattern, erapid::traffic::PatternKind::Uniform);
  EXPECT_DOUBLE_EQ(def.hotspot_fraction, 0.2);
  EXPECT_EQ(def.hotspot_node, 0u);
  EXPECT_DOUBLE_EQ(def.load_fraction, 0.5);
  EXPECT_EQ(def.seed, 1u);
  EXPECT_EQ(def.warmup_cycles, 20000u);
  EXPECT_EQ(def.measure_cycles, 30000u);
  EXPECT_EQ(def.drain_limit, 150000u);
}

// Serialize → parse → serialize must be a fixed point: any field dropped or
// renamed by one direction of the round-trip shows up as INI-text drift.
TEST(OptionsIo, SerializeParseSerializeIsIdempotent) {
  SimOptions o;
  o.system.boards = 4;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
  o.reconfig.dpm_strategy = erapid::reconfig::DpmStrategyKind::Hysteresis;
  o.fault = erapid::fault::FaultPlan::parse_events("lane_fail@5000:d2:w1");

  std::ostringstream first, second;
  options_to_ini(o).save(first);
  options_to_ini(options_from_ini(options_to_ini(o))).save(second);
  EXPECT_EQ(first.str(), second.str());
}

// Same fixed point with the survivability section populated: every
// degrade.* key must serialize, parse back, and serialize again to the
// exact same text. The section only appears when a policy is set.
TEST(OptionsIo, DegradeKeysSurviveSerializeParseSerialize) {
  SimOptions o;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
  o.obs.enabled = true;
  o.obs.monitors.power_cap_mw = 250.0;
  o.obs.monitors.throughput_floor = 0.4;
  o.degrade.power_cap = erapid::resilience::ResponsePolicy::Shed;
  o.degrade.throughput_floor = erapid::resilience::ResponsePolicy::Record;
  o.degrade.cooldown_cycles = 1500;
  o.degrade.recover_margin = 0.75;
  o.degrade.recover_cycles = 6000;
  o.degrade.shed_step = 3;
  o.degrade.max_shed_fraction = 0.25;

  std::ostringstream first, second;
  options_to_ini(o).save(first);
  options_to_ini(options_from_ini(options_to_ini(o))).save(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("[degrade]"), std::string::npos);

  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.degrade.power_cap, o.degrade.power_cap);
  EXPECT_EQ(back.degrade.throughput_floor, o.degrade.throughput_floor);
  EXPECT_EQ(back.degrade.cooldown_cycles, 1500u);
  EXPECT_EQ(back.degrade.recover_margin, 0.75);
  EXPECT_EQ(back.degrade.recover_cycles, 6000u);
  EXPECT_EQ(back.degrade.shed_step, 3u);
  EXPECT_EQ(back.degrade.max_shed_fraction, 0.25);
}

TEST(OptionsIo, NoDegradePolicyMeansNoDegradeSection) {
  // The degrade section is serialized only when a policy is configured —
  // a policy-free options object keeps its INI byte-identical to one
  // produced before the section existed.
  const auto text = [] {
    std::ostringstream os;
    options_to_ini(SimOptions{}).save(os);
    return os.str();
  }();
  EXPECT_EQ(text.find("[degrade]"), std::string::npos);
  EXPECT_EQ(text.find("degrade."), std::string::npos);
}

TEST(OptionsIo, UnknownKeyThrows) {
  const auto ini = Ini::parse_string("[system]\nbords = 8\n");  // typo
  EXPECT_THROW(options_from_ini(ini), erapid::ModelInvariantError);
}

TEST(OptionsIo, UnknownObsOrMonitorKeyThrows) {
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ncounter_intervl = 100\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[monitor]\npower_cap = 100\n")),
               erapid::ModelInvariantError);
}

TEST(OptionsIo, NonPositiveCounterIntervalRejectedAtParseTime) {
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ncounter_interval = 0\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ncounter_interval = -5\n")),
               erapid::ModelInvariantError);
  const auto ok = options_from_ini(Ini::parse_string("[obs]\ncounter_interval = 250\n"));
  EXPECT_EQ(ok.obs.counter_interval, 250u);
}

TEST(OptionsIo, MonitorKeysSurviveRoundTrip) {
  SimOptions o;
  o.obs.monitors.power_cap_mw = 2500.5;
  o.obs.monitors.throughput_floor = 0.35;
  o.obs.monitors.p99_latency_ceiling = 900.0;
  o.obs.monitors.quiescence_deadline = 1200;
  o.obs.monitor_fail_fast = true;
  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_DOUBLE_EQ(back.obs.monitors.power_cap_mw, 2500.5);
  EXPECT_DOUBLE_EQ(back.obs.monitors.throughput_floor, 0.35);
  EXPECT_DOUBLE_EQ(back.obs.monitors.p99_latency_ceiling, 900.0);
  EXPECT_EQ(back.obs.monitors.quiescence_deadline, 1200u);
  EXPECT_TRUE(back.obs.monitor_fail_fast);
  EXPECT_TRUE(back.obs.monitors.any());
}

TEST(OptionsIo, MonitorKeysParseFromIniText) {
  const auto o = options_from_ini(Ini::parse_string(
      "[monitor]\npower_cap_mw = 3000\nquiescence_deadline = 800\n"
      "[obs]\nmonitor_fail_fast = true\n"));
  EXPECT_DOUBLE_EQ(o.obs.monitors.power_cap_mw, 3000.0);
  EXPECT_EQ(o.obs.monitors.quiescence_deadline, 800u);
  EXPECT_DOUBLE_EQ(o.obs.monitors.throughput_floor, 0.0);  // stays disabled
  EXPECT_TRUE(o.obs.monitor_fail_fast);
}

TEST(OptionsIo, NegativeMonitorThresholdsThrow) {
  EXPECT_THROW(options_from_ini(Ini::parse_string("[monitor]\npower_cap_mw = -1\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[monitor]\nquiescence_deadline = -10\n")),
      erapid::ModelInvariantError);
}

TEST(OptionsIo, DefaultMonitorsAreAllDisabled) {
  const SimOptions o;
  EXPECT_FALSE(o.obs.monitors.any());
  EXPECT_FALSE(o.obs.monitor_fail_fast);
}

TEST(OptionsIo, TelemetryKeysSurviveRoundTrip) {
  SimOptions o;
  o.obs.enabled = true;
  o.obs.telemetry_path = "run.telemetry.jsonl";
  o.obs.telemetry_window = 1500;
  o.obs.telemetry_top_k = 4;
  o.obs.telemetry_ewma_alpha = 0.4;
  o.obs.telemetry_phase_alpha = 0.3;
  o.obs.telemetry_phase_slack = 0.02;
  o.obs.telemetry_phase_threshold = 0.5;
  o.obs.flight_recorder_depth = 256;
  o.obs.flight_recorder_path = "blackbox.json";
  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.obs.telemetry_path, "run.telemetry.jsonl");
  EXPECT_EQ(back.obs.telemetry_window, 1500u);
  EXPECT_EQ(back.obs.telemetry_top_k, 4u);
  EXPECT_DOUBLE_EQ(back.obs.telemetry_ewma_alpha, 0.4);
  EXPECT_DOUBLE_EQ(back.obs.telemetry_phase_alpha, 0.3);
  EXPECT_DOUBLE_EQ(back.obs.telemetry_phase_slack, 0.02);
  EXPECT_DOUBLE_EQ(back.obs.telemetry_phase_threshold, 0.5);
  EXPECT_EQ(back.obs.flight_recorder_depth, 256u);
  EXPECT_EQ(back.obs.flight_recorder_path, "blackbox.json");
  EXPECT_TRUE(back.obs.telemetry_on());
  EXPECT_TRUE(back.obs.flight_recorder_on());
}

TEST(OptionsIo, TelemetryKeysParseFromIniText) {
  const auto o = options_from_ini(Ini::parse_string(
      "[obs]\nenabled = true\ntelemetry = t.jsonl\ntelemetry_window = 800\n"
      "flight_recorder_depth = 32\nflight_recorder = fr.json\n"));
  EXPECT_EQ(o.obs.telemetry_path, "t.jsonl");
  EXPECT_EQ(o.obs.telemetry_window, 800u);
  EXPECT_EQ(o.obs.flight_recorder_depth, 32u);
  EXPECT_EQ(o.obs.flight_recorder_path, "fr.json");
  EXPECT_TRUE(o.obs.telemetry_on());
}

TEST(OptionsIo, InvalidTelemetryKeysThrow) {
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ntelemetry_window = 0\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ntelemetry_top_k = -1\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[obs]\ntelemetry_ewma_alpha = 1.5\n")),
      erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[obs]\ntelemetry_phase_slack = -0.1\n")),
      erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[obs]\ntelemetry_phase_threshold = 0\n")),
      erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[obs]\nflight_recorder_depth = -2\n")),
      erapid::ModelInvariantError);
  // A misspelt telemetry key is rejected like any other unknown key.
  EXPECT_THROW(options_from_ini(Ini::parse_string("[obs]\ntelemetry_windw = 100\n")),
               erapid::ModelInvariantError);
}

TEST(OptionsIo, DefaultTelemetryIsOff) {
  const SimOptions o;
  EXPECT_FALSE(o.obs.telemetry_on());
  EXPECT_FALSE(o.obs.flight_recorder_on());
}

TEST(OptionsIo, BadModeThrows) {
  const auto ini = Ini::parse_string("[reconfig]\nmode = FULL-POWER\n");
  EXPECT_THROW(options_from_ini(ini), erapid::ModelInvariantError);
}

TEST(OptionsIo, BadPatternThrows) {
  const auto ini = Ini::parse_string("[workload]\npattern = zigzag\n");
  EXPECT_THROW(options_from_ini(ini), erapid::ModelInvariantError);
}

TEST(OptionsIo, ThresholdOverridesApplyOnTopOfMode) {
  const auto ini = Ini::parse_string("[reconfig]\nmode = P-B\nl_max = 0.8\n");
  const auto o = options_from_ini(ini);
  EXPECT_DOUBLE_EQ(o.reconfig.mode.dpm.l_max, 0.8);     // overridden
  EXPECT_DOUBLE_EQ(o.reconfig.mode.dpm.l_min, 0.7);     // P-B default kept
}

TEST(OptionsIo, HotspotParamsRoundTrip) {
  SimOptions o;
  o.pattern = erapid::traffic::PatternKind::Hotspot;
  o.hotspot_fraction = 0.35;
  o.hotspot_node = 17;
  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.pattern, erapid::traffic::PatternKind::Hotspot);
  EXPECT_DOUBLE_EQ(back.hotspot_fraction, 0.35);
  EXPECT_EQ(back.hotspot_node, 17u);
}

TEST(OptionsIo, FaultPlanSurvivesRoundTrip) {
  SimOptions o;
  o.fault = erapid::fault::FaultPlan::parse_events(
      "lane_fail@5000:d2:w1 laser_degrade@8000:d3:w2:low:4000 "
      "ctrl_drop@6000:ring:b1:n2 ctrl_drop@7000:chain:b0");
  o.fault.ctrl_drop_prob = 0.125;
  o.fault.seed = 77;
  o.reconfig.ctrl_retry_limit = 5;

  const auto back = options_from_ini(options_to_ini(o));
  ASSERT_EQ(back.fault.events.size(), 4u);
  EXPECT_EQ(back.fault.events, o.fault.events);
  EXPECT_EQ(back.fault.format_events(), o.fault.format_events());
  EXPECT_DOUBLE_EQ(back.fault.ctrl_drop_prob, 0.125);
  EXPECT_EQ(back.fault.seed, 77u);
  EXPECT_EQ(back.reconfig.ctrl_retry_limit, 5u);
}

TEST(OptionsIo, FaultKeysParseFromIniText) {
  const auto ini = Ini::parse_string(
      "[fault]\nevents = lane_fail@100:d1:w1\nctrl_drop_prob = 0.01\nseed = 3\n"
      "[reconfig]\nctrl_retry_limit = 2\n");
  const auto o = options_from_ini(ini);
  ASSERT_EQ(o.fault.events.size(), 1u);
  EXPECT_EQ(o.fault.events[0].kind, erapid::fault::FaultKind::LaneFail);
  EXPECT_DOUBLE_EQ(o.fault.ctrl_drop_prob, 0.01);
  EXPECT_EQ(o.fault.seed, 3u);
  EXPECT_EQ(o.reconfig.ctrl_retry_limit, 2u);
  EXPECT_FALSE(o.fault.empty());

  // Defaults: no fault section at all means an empty (inert) plan.
  const auto clean = options_from_ini(Ini::parse_string(""));
  EXPECT_TRUE(clean.fault.empty());
}

TEST(OptionsIo, SelfHealingKeysSurviveRoundTrip) {
  SimOptions o;
  o.fault = erapid::fault::FaultPlan::parse_events(
      "lane_fail@5000:d2:w1:r9000 bit_error@4500:d2:w2:p0.0005:6000 "
      "rc_crash@7000:b2:r11000");
  o.system.arq_retry_limit = 7;
  o.system.arq_backoff_cycles = 64;
  o.system.arq_nak_cycles = 12;
  o.reconfig.rc_watchdog_cycles = 256;
  o.obs.monitors.max_recovery_cycles = 9000;

  const auto back = options_from_ini(options_to_ini(o));
  ASSERT_EQ(back.fault.events.size(), 3u);
  EXPECT_EQ(back.fault.events, o.fault.events);
  EXPECT_EQ(back.fault.format_events(), o.fault.format_events());
  EXPECT_EQ(back.system.arq_retry_limit, 7u);
  EXPECT_EQ(back.system.arq_backoff_cycles, 64u);
  EXPECT_EQ(back.system.arq_nak_cycles, 12u);
  EXPECT_EQ(back.reconfig.rc_watchdog_cycles, 256u);
  EXPECT_EQ(back.obs.monitors.max_recovery_cycles, 9000u);
  EXPECT_TRUE(back.obs.monitors.any());

  // The serialize → parse → serialize fixed point holds for the new keys.
  std::ostringstream first, second;
  options_to_ini(o).save(first);
  options_to_ini(back).save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(OptionsIo, SelfHealingKeysParseFromIniText) {
  const auto o = options_from_ini(Ini::parse_string(
      "[link]\narq_retry_limit = 2\narq_backoff_cycles = 16\narq_nak_cycles = 4\n"
      "[reconfig]\nrc_watchdog_cycles = 96\n"
      "[monitor]\nmax_recovery_cycles = 12000\n"
      "[fault]\nevents = lane_fail@100:d1:w1:r300\n"));
  EXPECT_EQ(o.system.arq_retry_limit, 2u);
  EXPECT_EQ(o.system.arq_backoff_cycles, 16u);
  EXPECT_EQ(o.system.arq_nak_cycles, 4u);
  EXPECT_EQ(o.reconfig.rc_watchdog_cycles, 96u);
  EXPECT_EQ(o.obs.monitors.max_recovery_cycles, 12000u);
  ASSERT_EQ(o.fault.events.size(), 1u);
  EXPECT_EQ(o.fault.events[0].repair_at, 300u);

  EXPECT_THROW(options_from_ini(Ini::parse_string("[link]\narq_retrylimit = 2\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[monitor]\nmax_recovery_cycles = -1\n")),
      erapid::ModelInvariantError);
}

TEST(OptionsIo, MalformedFaultEventsThrow) {
  const auto ini = Ini::parse_string("[fault]\nevents = lane_fail@abc:d1:w1\n");
  EXPECT_THROW(options_from_ini(ini), erapid::ModelInvariantError);
}

// ---- workload keys -----------------------------------------------------------

TEST(OptionsIo, WorkloadKeysSurviveRoundTrip) {
  SimOptions o;
  o.workload.kind = erapid::workload::WorkloadKind::AllReduce;
  o.workload.episodes = 5;
  o.workload.volume_packets = 32;
  o.workload.phase_rate = 0.7;
  o.workload.gap_cycles = 512;
  o.workload.horizon_cycles = 90000;
  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.workload, o.workload);

  SimOptions t;
  t.workload.kind = erapid::workload::WorkloadKind::Tenants;
  t.workload.tenants = 7;
  t.workload.tenant_load = 0.15;
  t.workload.tenant_mix = {erapid::traffic::PatternKind::Uniform,
                           erapid::traffic::PatternKind::Transpose,
                           erapid::traffic::PatternKind::Hotspot};
  t.workload.session_cycles = 2500;
  t.workload.session_gap_mean = 900;
  const auto tback = options_from_ini(options_to_ini(t));
  EXPECT_EQ(tback.workload, t.workload);
}

TEST(OptionsIo, WorkloadPhasesGrammarSurvivesRoundTrip) {
  SimOptions o;
  o.workload.kind = erapid::workload::WorkloadKind::Phases;
  o.workload.phases =
      erapid::workload::parse_phase_specs("transpose:32:0.8:512,uniform:4,bitrev:8:0.5");
  const auto back = options_from_ini(options_to_ini(o));
  EXPECT_EQ(back.workload.phases, o.workload.phases);

  std::ostringstream first, second;
  options_to_ini(o).save(first);
  options_to_ini(options_from_ini(options_to_ini(o))).save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(OptionsIo, WorkloadSerializeParseSerializeIsIdempotent) {
  SimOptions o;
  o.workload.kind = erapid::workload::WorkloadKind::Beff;
  o.workload.phase_rate = 0.65;
  o.obs.monitors.workload_deadline = 40000;
  std::ostringstream first, second;
  options_to_ini(o).save(first);
  options_to_ini(options_from_ini(options_to_ini(o))).save(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("workload_deadline"), std::string::npos);
}

TEST(OptionsIo, UnknownWorkloadKeyOrKindThrows) {
  EXPECT_THROW(options_from_ini(Ini::parse_string("[workload]\nknd = allreduce\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[workload]\nkind = ringreduce\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[workload]\ntenant_mixx = uniform\n")),
               erapid::ModelInvariantError);
}

TEST(OptionsIo, WorkloadCrossFieldValidationRejectsBadConfigs) {
  // phases without kind = phases (and vice versa).
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[workload]\nphases = uniform:4\n")),
      erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[workload]\nkind = phases\n")),
               erapid::ModelInvariantError);
  // trace_file is exclusive to kind = trace.
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[workload]\nkind = trace\n")),
      erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string(
                   "[workload]\nkind = allreduce\ntrace_file = /tmp/x.trace\n")),
               erapid::ModelInvariantError);
  // Range checks.
  EXPECT_THROW(options_from_ini(Ini::parse_string(
                   "[workload]\nkind = allreduce\nphase_rate = 0\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string(
                   "[workload]\nkind = tenants\ntenant_load = 1.5\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string(
                   "[workload]\nkind = tenants\ntenants = 0\n")),
               erapid::ModelInvariantError);
  EXPECT_THROW(options_from_ini(Ini::parse_string("[workload]\nepisodes = 0\n")),
               erapid::ModelInvariantError);
  // Monitor deadline must be non-negative.
  EXPECT_THROW(
      options_from_ini(Ini::parse_string("[monitor]\nworkload_deadline = -1\n")),
      erapid::ModelInvariantError);
}

TEST(OptionsIo, WorkloadKindNamesRoundTripThroughParser) {
  const char* names[] = {"bernoulli", "allreduce", "alltoall",     "phases", "ptrans",
                         "fft",       "randomaccess", "beff", "tenants"};
  for (const char* name : names) {
    const auto kind = erapid::workload::parse_kind(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_EQ(erapid::workload::kind_name(*kind), name);
  }
  EXPECT_FALSE(erapid::workload::parse_kind("stencil").has_value());
}

TEST(OptionsIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "erapid_opts.ini";
  SimOptions o;
  o.load_fraction = 0.33;
  erapid::sim::save_options(path, o);
  const auto back = load_options(path);
  EXPECT_DOUBLE_EQ(back.load_fraction, 0.33);
  std::remove(path.c_str());
}

// ---- Recorder ----------------------------------------------------------------

TEST(Recorder, SamplesAtFixedCadence) {
  erapid::topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  erapid::reconfig::ReconfigConfig rc;
  erapid::des::Engine engine;
  erapid::sim::Network net(engine, cfg, rc);
  net.start();

  erapid::sim::Recorder rec(engine, net, 100);
  rec.start();
  engine.run_until(1050);
  EXPECT_EQ(rec.samples().size(), 10u);
  EXPECT_EQ(rec.samples()[0].cycle, 100u);
  EXPECT_EQ(rec.samples()[9].cycle, 1000u);
  // Two static lanes at P_high.
  EXPECT_NEAR(rec.samples()[5].power_mw, 2 * 43.03, 1e-9);
  EXPECT_EQ(rec.samples()[5].lanes_lit, 2u);
}

TEST(Recorder, StopHaltsSampling) {
  erapid::topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  erapid::reconfig::ReconfigConfig rc;
  erapid::des::Engine engine;
  erapid::sim::Network net(engine, cfg, rc);
  net.start();
  erapid::sim::Recorder rec(engine, net, 50);
  rec.start();
  engine.run_until(200);
  rec.stop();
  engine.run_until(1000);
  EXPECT_EQ(rec.samples().size(), 4u);
}

TEST(Recorder, CsvExport) {
  erapid::topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  erapid::reconfig::ReconfigConfig rc;
  erapid::des::Engine engine;
  erapid::sim::Network net(engine, cfg, rc);
  net.start();
  erapid::sim::Recorder rec(engine, net, 100);
  rec.start();
  engine.run_until(500);
  const std::string path = testing::TempDir() + "erapid_rec.csv";
  rec.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "cycle,power_mw,lanes_lit,delivered,backlog,grants,dvs_changes");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
  std::remove(path.c_str());
}

TEST(Recorder, AggregatesPower) {
  erapid::topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  erapid::reconfig::ReconfigConfig rc;
  erapid::des::Engine engine;
  erapid::sim::Network net(engine, cfg, rc);
  net.start();
  erapid::sim::Recorder rec(engine, net, 100);
  rec.start();
  engine.run_until(500);
  EXPECT_NEAR(rec.sampled_avg_power(), 2 * 43.03, 1e-9);
  EXPECT_NEAR(rec.peak_power(), 2 * 43.03, 1e-9);
}

// ---- JSON report ---------------------------------------------------------------

TEST(Report, JsonContainsKeyFields) {
  erapid::sim::SimResult r;
  r.accepted_fraction = 0.5;
  r.latency_avg = 123.5;
  r.power_avg_mw = 999.25;
  r.drained = true;
  r.control.lane_grants = 7;
  const auto json = erapid::sim::to_json(r);
  EXPECT_NE(json.find("\"accepted_fraction\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"latency_avg\": 123.5"), std::string::npos);
  EXPECT_NE(json.find("\"drained\": true"), std::string::npos);
  EXPECT_NE(json.find("\"lane_grants\": 7"), std::string::npos);
}

TEST(Report, NamedResultsDocument) {
  erapid::sim::SimResult a, b;
  a.accepted_fraction = 0.1;
  b.accepted_fraction = 0.2;
  const auto doc = erapid::sim::results_to_json({{"NP-NB", a}, {"P-B", b}});
  EXPECT_NE(doc.find("\"name\": \"NP-NB\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"P-B\""), std::string::npos);
  EXPECT_NE(doc.find("\"results\""), std::string::npos);
}

TEST(Report, WriteFileRoundTrip) {
  const std::string path = testing::TempDir() + "erapid_report.json";
  erapid::sim::SimResult r;
  erapid::sim::write_results_json(path, {{"x", r}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"x\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
