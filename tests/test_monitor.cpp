// Monitor subsystem tests (src/obs/monitor.*).
//
// Unit layer: MonitorSet check semantics — ceiling vs floor direction,
// worst-value tracking, first-violation cycle, quiescence bookkeeping,
// name-sorted report rendering, fail-fast through the contract layer.
//
// Integration layer: a simulation run with `monitor.*` checks configured
//   * deterministically reports violations (same seed, byte-identical
//     `obs_monitors` blocks and trace instants on the obs.monitors track),
//   * passes cleanly under generous envelopes,
//   * ends through ModelInvariantError under obs.monitor_fail_fast,
//   * and stays byte-inert when no check is configured (no `obs_monitors`
//     block; the obs-off golden fixture in test_determinism.cpp pins the
//     monitors-off report bytes).
//
// Built with ERAPID_NO_OBS the integration layer flips: configured
// monitors must produce nothing at all.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "util/expect.hpp"

namespace {

using namespace erapid;

sim::SimOptions base_options() {
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.reconfig.mode = reconfig::NetworkMode::p_b();
  o.load_fraction = 0.5;
  o.seed = 1;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.drain_limit = 60000;
  return o;
}

// ---- unit: MonitorSet -------------------------------------------------------

TEST(MonitorSet, CeilingTracksWorstAndFirstViolation) {
  obs::MetricsRegistry reg;
  obs::MonitorConfig cfg;
  cfg.power_cap_mw = 100.0;
  cfg.throughput_floor = 0.4;
  obs::MonitorSet mon(cfg, /*fail_fast=*/false, /*trace=*/nullptr, 0, reg);

  mon.sample_power(10, 50.0);   // within the envelope
  mon.sample_power(20, 150.0);  // first violation
  mon.sample_power(30, 120.0);  // second violation; worst stays 150
  EXPECT_EQ(mon.violations(), 2u);
  EXPECT_FALSE(mon.all_ok());

  obs::FinalSample fin;
  fin.now = 100;
  fin.accepted_fraction = 0.5;  // above the floor
  mon.finalize(fin);
  EXPECT_EQ(mon.violations(), 2u);

  const auto rep = mon.report();
  ASSERT_EQ(rep.size(), 2u);  // name-sorted: power_cap_mw, throughput_floor
  EXPECT_EQ(rep[0].first, "power_cap_mw");
  EXPECT_NE(rep[0].second.find("\"worst\": 150"), std::string::npos) << rep[0].second;
  EXPECT_NE(rep[0].second.find("\"violations\": 2"), std::string::npos);
  EXPECT_NE(rep[0].second.find("\"first_violation\": 20"), std::string::npos);
  EXPECT_NE(rep[0].second.find("\"ok\": false"), std::string::npos);
  EXPECT_EQ(rep[1].first, "throughput_floor");
  EXPECT_NE(rep[1].second.find("\"ok\": true"), std::string::npos);
  // The violation counter metric mirrors the tally.
  EXPECT_EQ(reg.counter_value(reg.counter("monitor.violations")), 2u);
}

TEST(MonitorSet, FloorFiresBelowThresholdOnly) {
  obs::MetricsRegistry reg;
  obs::MonitorConfig cfg;
  cfg.throughput_floor = 0.4;
  obs::MonitorSet mon(cfg, false, nullptr, 0, reg);
  obs::FinalSample fin;
  fin.now = 50;
  fin.accepted_fraction = 0.25;  // below the floor
  mon.finalize(fin);
  EXPECT_EQ(mon.violations(), 1u);
  const auto rep = mon.report();
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_NE(rep[0].second.find("\"worst\": 0.25"), std::string::npos) << rep[0].second;
}

TEST(MonitorSet, QuiescenceDeadlineCoversSettledAndAbandonedResolves) {
  obs::MetricsRegistry reg;
  obs::MonitorConfig cfg;
  cfg.quiescence_deadline = 100;
  obs::MonitorSet mon(cfg, false, nullptr, 0, reg);

  mon.dbr_resolve(1000);
  mon.dbr_quiesced(1000, 1050);  // 50 cycles: within the deadline
  mon.dbr_resolve(2000);
  mon.dbr_quiesced(2000, 2500);  // 500 cycles: violation
  mon.dbr_resolve(3000);         // never settles

  obs::FinalSample fin;
  fin.now = 4000;  // the abandoned re-solve is 1000 cycles overdue
  mon.finalize(fin);
  EXPECT_EQ(mon.violations(), 2u);
  const auto rep = mon.report();
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_NE(rep[0].second.find("\"violations\": 2"), std::string::npos) << rep[0].second;
}

TEST(MonitorSet, FailFastThrowsThroughContractLayer) {
  obs::MetricsRegistry reg;
  obs::MonitorConfig cfg;
  cfg.power_cap_mw = 100.0;
  obs::MonitorSet mon(cfg, /*fail_fast=*/true, nullptr, 0, reg);
  mon.sample_power(10, 50.0);  // fine
  EXPECT_THROW(mon.sample_power(20, 500.0), ModelInvariantError);
}

TEST(MonitorSet, P99CeilingCheckedAtFinalize) {
  obs::MetricsRegistry reg;
  obs::MonitorConfig cfg;
  cfg.p99_latency_ceiling = 200.0;
  obs::MonitorSet mon(cfg, false, nullptr, 0, reg);
  obs::FinalSample fin;
  fin.now = 99;
  fin.latency_p99 = 450.0;
  mon.finalize(fin);
  EXPECT_EQ(mon.violations(), 1u);
  EXPECT_NE(mon.report()[0].second.find("\"first_violation\": 99"), std::string::npos);
}

// ---- integration ------------------------------------------------------------

#if !defined(ERAPID_NO_OBS)

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(MonitorIntegration, PowerCapBelowEnvelopeReportsViolationDeterministically) {
  // 1 mW is far under any lit network's envelope: every recorder sample
  // violates, deterministically.
  auto run_once = [] {
    sim::SimOptions o = base_options();
    o.obs.enabled = true;
    o.obs.monitors.power_cap_mw = 1.0;
    return sim::Simulation(o).run();
  };
  const auto r1 = run_once();
  EXPECT_GT(r1.monitor_violations, 0u);
  EXPECT_FALSE(r1.monitors_ok());
  ASSERT_EQ(r1.monitors.size(), 1u);
  EXPECT_EQ(r1.monitors[0].first, "power_cap_mw");

  const auto json = sim::to_json(r1);
  EXPECT_NE(json.find("\"obs_monitors\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);

  // Same seed, same verdict bytes — the cross-run observatory depends on it.
  const auto r2 = run_once();
  EXPECT_EQ(r1.monitors, r2.monitors);
  EXPECT_EQ(r1.monitor_violations, r2.monitor_violations);
  EXPECT_EQ(sim::to_json(r2), json);
}

TEST(MonitorIntegration, ViolationEmitsTraceInstantOnMonitorsTrack) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.trace_path = tmp_path("monitor_violation.trace.json");
  o.obs.monitors.power_cap_mw = 1.0;
  (void)sim::Simulation(o).run();
  const auto trace = slurp(o.obs.trace_path);
  std::remove(o.obs.trace_path.c_str());
  EXPECT_NE(trace.find("obs.monitors"), std::string::npos);
  EXPECT_NE(trace.find("monitor.power_cap_mw"), std::string::npos);
  EXPECT_NE(trace.find("\"threshold\":1"), std::string::npos) << "args missing";
}

TEST(MonitorIntegration, GenerousEnvelopesPassEveryCheck) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.monitors.power_cap_mw = 1.0e9;
  o.obs.monitors.throughput_floor = 1.0e-6;
  o.obs.monitors.p99_latency_ceiling = 1.0e9;
  o.obs.monitors.quiescence_deadline = 1000000;
  o.obs.monitor_fail_fast = true;  // must not fire
  const auto r = sim::Simulation(o).run();
  EXPECT_EQ(r.monitor_violations, 0u);
  EXPECT_TRUE(r.monitors_ok());
  EXPECT_EQ(r.monitors.size(), 4u);
  const auto json = sim::to_json(r);
  EXPECT_NE(json.find("\"obs_monitors\""), std::string::npos);
  EXPECT_EQ(json.find("\"ok\": false"), std::string::npos);
}

TEST(MonitorIntegration, FailFastEndsTheRunThroughContracts) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.monitors.power_cap_mw = 1.0;
  o.obs.monitor_fail_fast = true;
  sim::Simulation s(o);
  EXPECT_THROW(s.run(), ModelInvariantError);
}

TEST(MonitorIntegration, NoConfiguredChecksMeansNoBlockAndNoTrack) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.trace_path = tmp_path("monitor_off.trace.json");
  const auto r = sim::Simulation(o).run();
  EXPECT_TRUE(r.monitors.empty());
  EXPECT_EQ(sim::to_json(r).find("obs_monitors"), std::string::npos);
  const auto trace = slurp(o.obs.trace_path);
  std::remove(o.obs.trace_path.c_str());
  // The track list itself must not change for monitor-free traces — the
  // golden trace fixture pins this globally.
  EXPECT_EQ(trace.find("obs.monitors"), std::string::npos);
}

TEST(MonitorIntegration, QuiescenceDeadlineOfOneCycleFlagsDbrConvergence) {
  // Every DBR re-solve takes ring + chain cycles to its grants at minimum,
  // so a 1-cycle deadline must flag each one that moved lanes.
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.monitors.quiescence_deadline = 1;
  const auto r = sim::Simulation(o).run();
  ASSERT_EQ(r.monitors.size(), 1u);
  EXPECT_EQ(r.monitors[0].first, "quiescence_deadline");
  EXPECT_GT(r.monitor_violations, 0u);
}

#else  // ERAPID_NO_OBS

TEST(MonitorCompiledOut, ConfiguredMonitorsProduceNothing) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.monitors.power_cap_mw = 1.0;
  o.obs.monitor_fail_fast = true;  // must not fire: no hub, no monitors
  const auto r = sim::Simulation(o).run();
  EXPECT_EQ(r.monitor_violations, 0u);
  EXPECT_TRUE(r.monitors.empty());
  EXPECT_EQ(sim::to_json(r).find("obs_monitors"), std::string::npos);
}

#endif  // ERAPID_NO_OBS

}  // namespace
