// Differential and fuzz tests.
//
//  * Engine vs a naive reference executor: random schedule/cancel
//    workloads must execute in identical order.
//  * Lane state machine driven by random operation sequences: the power
//    meter must always match the lane's externally visible state and no
//    packet may be lost.
//  * Network churn fuzz: random small systems under random loads with
//    aggressive reconfiguration windows — every invariant check stays
//    quiet and labelled conservation holds.
//  * Fault-plan grammar fuzz: random valid plans must round-trip through
//    parse → format → parse unchanged; random garbage and single-character
//    mutations must either parse or throw cleanly (never crash/UB — the
//    sanitizer CI job runs this under ASan/UBSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "fault/plan.hpp"
#include "sim/options_io.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "tests_support.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"

namespace {

using erapid::Cycle;
using erapid::des::Engine;
using erapid::util::Rng;

// ---- Engine vs reference executor -------------------------------------------

struct RefEvent {
  Cycle when;
  std::uint64_t seq;
  int id;
  bool cancelled = false;
};

TEST(EngineFuzz, MatchesReferenceExecutorOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Engine engine;
    std::vector<int> engine_order;
    std::vector<RefEvent> ref;
    std::vector<erapid::des::EventHandle> handles;

    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const Cycle when = rng.next_below(1000);
      ref.push_back({when, static_cast<std::uint64_t>(i), i});
      handles.push_back(
          engine.schedule_at(when, [&engine_order, i] { engine_order.push_back(i); }));
    }
    // Cancel a random ~25%.
    for (int i = 0; i < n; ++i) {
      if (rng.next_below(4) == 0) {
        handles[static_cast<std::size_t>(i)].cancel();
        ref[static_cast<std::size_t>(i)].cancelled = true;
      }
    }
    engine.run_all();

    std::stable_sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
      return a.when < b.when;  // stable keeps seq (FIFO) order at equal times
    });
    std::vector<int> ref_order;
    for (const auto& e : ref) {
      if (!e.cancelled) ref_order.push_back(e.id);
    }
    ASSERT_EQ(engine_order, ref_order) << "seed " << seed;
  }
}

TEST(EngineFuzz, NestedSchedulingMatchesReference) {
  // Events that schedule follow-ups at random offsets; compare the
  // total executed count against an analytical bound and monotone time.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Engine engine;
    Cycle last = 0;
    std::uint64_t fired = 0;
    std::function<void(int)> spawn = [&](int depth) {
      ++fired;
      EXPECT_GE(engine.now(), last);
      last = engine.now();
      if (depth > 0) {
        const auto kids = rng.next_below(3);
        for (std::uint64_t k = 0; k < kids; ++k) {
          engine.schedule(rng.next_below(50) + 1, [&spawn, depth] { spawn(depth - 1); });
        }
      }
    };
    engine.schedule(1, [&spawn] { spawn(6); });
    engine.run_all();
    EXPECT_GE(fired, 1u);
    EXPECT_EQ(engine.events_executed(), fired);
  }
}

// ---- Lane state-machine fuzz --------------------------------------------------

TEST(LaneFuzz, RandomOpSequencesPreserveInvariants) {
  using erapid::power::PowerLevel;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    erapid::test::LaneRig rig;
    std::uint64_t transmitted = 0;

    for (int op = 0; op < 200; ++op) {
      const Cycle now = rig.engine.now();
      switch (rng.next_below(5)) {
        case 0:  // enable if disabled
          if (!rig.lane->enabled()) {
            const PowerLevel lvl = static_cast<PowerLevel>(1 + rng.next_below(3));
            rig.lane->enable(now, lvl);
          }
          break;
        case 1:  // disable if enabled
          if (rig.lane->enabled()) rig.lane->disable(now);
          break;
        case 2:  // DVS request
          if (rig.lane->enabled()) {
            const PowerLevel lvl = static_cast<PowerLevel>(rng.next_below(4));
            rig.lane->request_level(lvl, now);
          }
          break;
        case 3:  // transmit attempt
          if (rig.lane->try_transmit(erapid::test::LaneRig::packet(op), now)) {
            ++transmitted;
          }
          break;
        case 4:  // let time pass
          rig.engine.run_until(now + rng.next_below(120) + 1);
          break;
      }
      // Invariant: meter power reflects the lane's visible state.
      if (!rig.lane->enabled()) {
        EXPECT_NEAR(rig.meter.instantaneous_mw().value(), 0.0, 1e-9) << "seed " << seed;
      } else {
        EXPECT_NEAR(rig.meter.instantaneous_mw().value(),
                    rig.pw.power_mw(rig.lane->level()).value(), 1e-9)
            << "seed " << seed;
      }
    }
    // Drain: every transmitted packet must eventually eject.
    rig.engine.run_until(rig.engine.now() + 100000);
    EXPECT_EQ(rig.delivered.size(), transmitted) << "seed " << seed;
  }
}

// ---- whole-network churn fuzz ----------------------------------------------------

TEST(NetworkFuzz, RandomSmallSystemsConserveLabelledPackets) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 77);
    erapid::sim::SimOptions o;
    o.system.boards = static_cast<std::uint32_t>(2 + rng.next_below(3));       // 2..4
    o.system.nodes_per_board = static_cast<std::uint32_t>(1 + rng.next_below(4));  // 1..4
    o.load_fraction = 0.05 + 0.1 * rng.next_double();  // below every saturation
    o.seed = seed;
    o.warmup_cycles = 2000;
    o.measure_cycles = 4000;
    o.drain_limit = 120000;
    o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
    o.reconfig.window = 250 + rng.next_below(500);  // aggressive churn
    const auto pats = {erapid::traffic::PatternKind::Uniform,
                       erapid::traffic::PatternKind::Neighbor,
                       erapid::traffic::PatternKind::Tornado};
    o.pattern = *(pats.begin() + static_cast<long>(rng.next_below(pats.size())));

    const auto r = erapid::sim::Simulation(o).run();
    EXPECT_TRUE(r.drained) << "seed " << seed << " " << o.system.boards << "x"
                           << o.system.nodes_per_board;
    EXPECT_EQ(r.labelled_generated, r.labelled_delivered) << "seed " << seed;
  }
}

// ---- fault-plan grammar fuzz ------------------------------------------------------

// One random well-formed spec. `at` is the caller-supplied injection cycle
// (strictly increasing across a plan keeps the duplicate rejector quiet).
std::string random_valid_spec(Rng& rng, Cycle at) {
  std::ostringstream os;
  const auto d = rng.next_below(8);
  const auto w = rng.next_below(8);
  const auto b = rng.next_below(8);
  switch (rng.next_below(5)) {
    case 0:
      os << "lane_fail@" << at << ":d" << d << ":w" << w;
      if (rng.next_below(2) == 0) os << ":r" << (at + 1 + rng.next_below(5000));
      break;
    case 1: {
      static const char* caps[] = {"low", "mid", "high"};
      os << "laser_degrade@" << at << ":d" << d << ":w" << w << ":"
         << caps[rng.next_below(3)] << ":" << rng.next_below(9000);
      break;
    }
    case 2:
      os << "ctrl_drop@" << at << ":" << (rng.next_below(2) == 0 ? "ring" : "chain")
         << ":b" << b;
      if (rng.next_below(2) == 0) os << ":n" << (1 + rng.next_below(6));
      break;
    case 3: {
      double ber = rng.next_double();
      if (!(ber > 0.0)) ber = 0.5;
      os << "bit_error@" << at << ":d" << d << ":w" << w << ":p" << std::setprecision(17)
         << ber << ":" << rng.next_below(9000);
      break;
    }
    case 4:
      os << "rc_crash@" << at << ":b" << b;
      if (rng.next_below(2) == 0) os << ":r" << (at + 1 + rng.next_below(5000));
      break;
  }
  return os.str();
}

TEST(FaultPlanFuzz, ParseFormatParseIsIdentity) {
  using erapid::fault::FaultPlan;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed * 131);
    std::string joined;
    Cycle at = 1;
    const auto n = 1 + rng.next_below(8);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!joined.empty()) joined += ' ';
      joined += random_valid_spec(rng, at);
      at += 1 + rng.next_below(1000);
    }
    const auto plan = FaultPlan::parse_events(joined);
    const auto again = FaultPlan::parse_events(plan.format_events());
    ASSERT_EQ(again.events, plan.events) << "seed " << seed << ": " << joined;
    EXPECT_EQ(again.format_events(), plan.format_events()) << "seed " << seed;
  }
}

// Parsing must be total: any input either yields a plan or throws the
// contract error — no other exception type, no crash, no sanitizer finding.
void expect_parse_is_total(const std::string& input) {
  using erapid::fault::FaultPlan;
  try {
    const auto plan = FaultPlan::parse_events(input);
    // Accepted inputs must then round-trip like any valid plan.
    const auto again = FaultPlan::parse_events(plan.format_events());
    EXPECT_EQ(again.events, plan.events) << "input: " << input;
  } catch (const erapid::ModelInvariantError&) {
    // Rejected cleanly.
  }
}

TEST(FaultPlanFuzz, RandomGarbageNeverCrashes) {
  static const char kCharset[] = "abcdefghijklmnopqrstuvwxyz@:._0123456789rdwbnp ,;-+e";
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed * 977);
    std::string s;
    const auto len = rng.next_below(48);
    for (std::uint64_t i = 0; i < len; ++i) {
      s += kCharset[rng.next_below(sizeof(kCharset) - 1)];
    }
    expect_parse_is_total(s);
  }
}

TEST(FaultPlanFuzz, SingleCharacterMutationsNeverCrash) {
  static const char kCharset[] = "abcdefghijklmnopqrstuvwxyz@:._0123456789rdwbnp ,;-+e";
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed * 613);
    std::string s = random_valid_spec(rng, 1 + rng.next_below(10000));
    const auto pos = rng.next_below(s.size());
    s[pos] = kCharset[rng.next_below(sizeof(kCharset) - 1)];
    expect_parse_is_total(s);
  }
}

// ---- degrade.* INI grammar fuzz ---------------------------------------------------

// One random *valid* survivability config: every policy is armed against
// the monitor check it answers for, end-of-run checks only get the
// policies they admit, and knobs stay inside their validated ranges.
std::string random_degrade_ini(Rng& rng) {
  static const char* kAll[] = {"record", "degrade", "shed", "abort"};
  static const char* kFinal[] = {"record", "abort"};
  std::ostringstream mon, dg;
  bool any = false;
  if (rng.next_below(2) == 0) {
    mon << "power_cap_mw = " << (100 + rng.next_below(900)) << "\n";
    dg << "power_cap = " << kAll[rng.next_below(4)] << "\n";
    any = true;
  }
  if (rng.next_below(2) == 0) {
    mon << "throughput_floor = 0." << (1 + rng.next_below(8)) << "\n";
    dg << "throughput_floor = " << kFinal[rng.next_below(2)] << "\n";
    any = true;
  }
  if (rng.next_below(2) == 0) {
    mon << "p99_latency_ceiling = " << (500 + rng.next_below(5000)) << "\n";
    dg << "p99_ceiling = " << kFinal[rng.next_below(2)] << "\n";
    any = true;
  }
  if (!any || rng.next_below(2) == 0) {
    mon << "max_recovery_cycles = " << (1000 + rng.next_below(50000)) << "\n";
    dg << "recovery_deadline = " << kFinal[rng.next_below(2)] << "\n";
  }
  if (rng.next_below(2) == 0) {
    dg << "cooldown_cycles = " << (1 + rng.next_below(10000)) << "\n";
  }
  if (rng.next_below(2) == 0) {
    dg << "recover_margin = 0." << (1 + rng.next_below(9)) << "\n";
  }
  if (rng.next_below(2) == 0) {
    dg << "recover_cycles = " << (1 + rng.next_below(100000)) << "\n";
  }
  if (rng.next_below(2) == 0) dg << "shed_step = " << (1 + rng.next_below(8)) << "\n";
  if (rng.next_below(2) == 0) {
    dg << "max_shed_fraction = 0." << (1 + rng.next_below(9)) << "\n";
  }
  std::ostringstream os;
  os << "[reconfig]\nmode = P-B\n[obs]\nenabled = true\n"
     << "[monitor]\n" << mon.str() << "[degrade]\n" << dg.str();
  return os.str();
}

TEST(DegradeIniFuzz, ParseFormatParseIsIdentity) {
  using erapid::sim::options_from_ini;
  using erapid::sim::options_to_ini;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed * 389);
    const std::string text = random_degrade_ini(rng);
    const auto o = options_from_ini(erapid::util::Ini::parse_string(text));
    std::ostringstream first, second;
    options_to_ini(o).save(first);
    options_to_ini(options_from_ini(options_to_ini(o))).save(second);
    ASSERT_EQ(first.str(), second.str()) << "seed " << seed << "\n" << text;
  }
}

// Any degrade.* input either parses (and then round-trips) or throws the
// contract error — never crashes, never silently mis-parses.
void expect_degrade_parse_is_total(const std::string& text) {
  using erapid::sim::options_from_ini;
  using erapid::sim::options_to_ini;
  try {
    const auto o = options_from_ini(erapid::util::Ini::parse_string(text));
    std::ostringstream first, second;
    options_to_ini(o).save(first);
    options_to_ini(options_from_ini(options_to_ini(o))).save(second);
    EXPECT_EQ(first.str(), second.str()) << text;
  } catch (const erapid::ModelInvariantError&) {
    // Rejected cleanly.
  }
}

TEST(DegradeIniFuzz, GarbageValuesNeverCrash) {
  static const char kCharset[] = "abcdefghijklmnopqrstuvwxyz0123456789.-+e ";
  static const char* kKeys[] = {
      "power_cap", "throughput_floor", "p99_ceiling", "recovery_deadline",
      "cooldown_cycles", "recover_margin", "recover_cycles", "shed_step",
      "max_shed_fraction"};
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed * 739);
    std::string value;
    const auto len = 1 + rng.next_below(12);
    for (std::uint64_t i = 0; i < len; ++i) {
      value += kCharset[rng.next_below(sizeof(kCharset) - 1)];
    }
    std::ostringstream os;
    os << "[obs]\nenabled = true\n[monitor]\npower_cap_mw = 100\n[degrade]\n"
       << kKeys[rng.next_below(9)] << " = " << value << "\n";
    expect_degrade_parse_is_total(os.str());
  }
}

TEST(DegradeIniFuzz, CrossFieldInvalidConfigsAreRejected) {
  using erapid::sim::options_from_ini;
  using erapid::util::Ini;
  const char* kBad[] = {
      // Policy without the monitor check it answers for.
      "[obs]\nenabled = true\n[degrade]\npower_cap = record\n",
      // Policy with the check armed but obs disabled.
      "[monitor]\npower_cap_mw = 100\n[degrade]\npower_cap = record\n",
      // Shed needs bandwidth reconfiguration (DBR) to act through.
      "[reconfig]\nmode = NP-NB\n[obs]\nenabled = true\n"
      "[monitor]\npower_cap_mw = 100\n[degrade]\npower_cap = shed\n",
      // End-of-run checks admit record|abort only — nothing to shed at the end.
      "[reconfig]\nmode = P-B\n[obs]\nenabled = true\n"
      "[monitor]\nthroughput_floor = 0.4\n[degrade]\nthroughput_floor = shed\n",
      "[reconfig]\nmode = P-B\n[obs]\nenabled = true\n"
      "[monitor]\np99_latency_ceiling = 900\n[degrade]\np99_ceiling = degrade\n",
      // Knob ranges (validated even with no policy configured).
      "[degrade]\ncooldown_cycles = 0\n",
      "[degrade]\nrecover_margin = 1.5\n",
      "[degrade]\nrecover_cycles = -3\n",
      "[degrade]\nshed_step = 0\n",
      "[degrade]\nmax_shed_fraction = 0\n",
      // Unknown policy token / unknown key.
      "[obs]\nenabled = true\n[monitor]\npower_cap_mw = 100\n"
      "[degrade]\npower_cap = sched\n",
      "[degrade]\npower_kap = record\n",
  };
  for (const char* text : kBad) {
    EXPECT_THROW(options_from_ini(Ini::parse_string(text)),
                 erapid::ModelInvariantError)
        << text;
  }
}

// ---- event-calendar differential (heap vs calendar wheel) -------------------------

// Full-simulation byte identity across `des.queue` implementations: the
// four paper patterns, with and without a transient fault storm, must
// serialize to the exact same JSON report on both calendars. This is the
// end-to-end guarantee behind making the wheel selectable at all.
TEST(QueueKindFuzz, HeapAndCalendarReportsAreByteIdentical) {
  using erapid::des::QueueKind;
  const erapid::traffic::PatternKind patterns[] = {
      erapid::traffic::PatternKind::Uniform, erapid::traffic::PatternKind::Complement,
      erapid::traffic::PatternKind::Butterfly, erapid::traffic::PatternKind::PerfectShuffle};
  for (const auto pattern : patterns) {
    for (const bool with_faults : {false, true}) {
      erapid::sim::SimOptions o;
      o.system.boards = 4;
      o.system.nodes_per_board = 4;
      o.pattern = pattern;
      o.load_fraction = 0.5;
      o.seed = 7;
      o.warmup_cycles = 2000;
      o.measure_cycles = 4000;
      o.drain_limit = 60000;
      o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
      if (with_faults) {
        // Degradation, control loss and an RC crash — fault classes that
        // never re-home a committed packet, so flow occupancy stays within
        // the DPM policy's [0, 1] domain at every load/pattern combination.
        o.fault = erapid::fault::FaultPlan::parse_events(
            "laser_degrade@4000:d2:w2:low:2500 ctrl_drop@5000:ring:b1:n2 "
            "rc_crash@6000:b2:r10000");
        o.fault.seed = 42;
      }
      o.des_queue = QueueKind::Heap;
      const auto heap_report = erapid::sim::to_json(erapid::sim::Simulation(o).run());
      o.des_queue = QueueKind::Calendar;
      const auto cal_report = erapid::sim::to_json(erapid::sim::Simulation(o).run());
      ASSERT_EQ(heap_report, cal_report)
          << "pattern " << erapid::traffic::pattern_name(pattern)
          << (with_faults ? " with" : " without") << " faults";
    }
  }
}

// ---- golden regression -------------------------------------------------------------

// Locks the exact deterministic behaviour of the default configuration so
// refactors that silently change model timing are caught. Integer counts
// must match exactly; floating-point summaries very tightly.
TEST(Golden, DefaultUniformHalfLoadSeed1) {
  erapid::sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.load_fraction = 0.5;
  o.seed = 1;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.drain_limit = 60000;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
  const auto a = erapid::sim::Simulation(o).run();
  const auto b = erapid::sim::Simulation(o).run();
  // Self-consistency (byte-determinism) …
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered_measured, b.packets_delivered_measured);
  EXPECT_EQ(a.control.lane_grants, b.control.lane_grants);
  EXPECT_DOUBLE_EQ(a.latency_avg, b.latency_avg);
  // … and the frozen golden values (see tests_support.hpp for the policy
  // on updating these).
  EXPECT_EQ(a.packets_generated, erapid::test::kGoldenGenerated);
  EXPECT_EQ(a.packets_delivered_measured, erapid::test::kGoldenDelivered);
  EXPECT_NEAR(a.latency_avg, erapid::test::kGoldenLatency, 1e-6);
  EXPECT_NEAR(a.power_avg_mw, erapid::test::kGoldenPowerMw, 1e-6);
}

}  // namespace
