// Differential tests for the two event calendars.
//
// The heap queue is the reference ordering; the calendar (timing wheel +
// ladder) must reproduce its pop sequence exactly — (time, seq), FIFO at
// equal timestamps — on randomized streams that exercise same-timestamp
// ties, interleaved push/pop, and far-future ladder spills. A second layer
// drives whole Engines of both kinds through the same schedule programs
// and asserts identical execution traces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using erapid::Cycle;
using erapid::des::CalendarEventQueue;
using erapid::des::Engine;
using erapid::des::Event;
using erapid::des::EventQueue;
using erapid::des::HeapEventQueue;
using erapid::des::QueueKind;
using erapid::util::Rng;

Event make_event(Cycle when, std::uint64_t seq) {
  Event e;
  e.when = when;
  e.seq = seq;
  return e;
}

/// Pops everything currently queued from both and asserts identical
/// (when, seq) sequences.
void expect_identical_drain(EventQueue& heap, EventQueue& cal, const char* context) {
  ASSERT_EQ(heap.size(), cal.size()) << context;
  while (!heap.empty()) {
    const Event* ph = heap.peek();
    const Event* pc = cal.peek();
    ASSERT_NE(ph, nullptr) << context;
    ASSERT_NE(pc, nullptr) << context;
    EXPECT_EQ(ph->when, pc->when) << context;
    EXPECT_EQ(ph->seq, pc->seq) << context;
    const Event eh = heap.pop();
    const Event ec = cal.pop();
    ASSERT_EQ(eh.when, ec.when) << context;
    ASSERT_EQ(eh.seq, ec.seq) << context;
  }
  EXPECT_TRUE(cal.empty()) << context;
  EXPECT_EQ(cal.peek(), nullptr) << context;
}

TEST(EventQueueDiff, SameTimestampTiesPopInSeqOrder) {
  HeapEventQueue heap;
  CalendarEventQueue cal;
  std::uint64_t seq = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      Event e = make_event(17, seq++);
      Event f = make_event(17, e.seq);
      heap.push(std::move(e));
      cal.push(std::move(f));
    }
  }
  std::uint64_t expect_seq = 0;
  while (!cal.empty()) {
    const Event eh = heap.pop();
    const Event ec = cal.pop();
    ASSERT_EQ(ec.seq, expect_seq++);
    ASSERT_EQ(eh.seq, ec.seq);
  }
}

TEST(EventQueueDiff, FarFutureLadderSpillMergesWithWheelTies) {
  // Craft the wheel/ladder tie by hand: push when=5000 while the window is
  // [0, 4096) (→ ladder), advance the window by popping when=2000, then
  // push when=5000 again (now in-window → wheel). The ladder entry has the
  // lower seq and must pop first.
  HeapEventQueue heap;
  CalendarEventQueue cal;
  std::uint64_t seq = 0;
  auto push_both = [&](Cycle when) {
    Event e = make_event(when, seq);
    Event f = make_event(when, seq);
    ++seq;
    heap.push(std::move(e));
    cal.push(std::move(f));
  };
  push_both(5000);   // seq 0 → ladder
  push_both(2000);   // seq 1 → wheel
  {
    const Event eh = heap.pop();
    const Event ec = cal.pop();
    ASSERT_EQ(eh.when, 2000u);
    ASSERT_EQ(ec.when, 2000u);  // window base is now 2000
  }
  push_both(5000);   // seq 2 → wheel, ties with the ladder's seq 0
  push_both(5000);   // seq 3 → wheel
  push_both(90000);  // seq 4 → deep ladder spill
  expect_identical_drain(heap, cal, "wheel/ladder tie");
}

TEST(EventQueueDiff, RandomizedStreamsPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 31);
    HeapEventQueue heap;
    CalendarEventQueue cal;
    std::uint64_t seq = 0;
    Cycle now = 0;  // monotone pop clock, mirrors the engine's guarantee

    for (int op = 0; op < 4000; ++op) {
      const bool can_pop = !heap.empty();
      if (!can_pop || rng.next_below(3) != 0) {
        // Offset mix: mostly near-future (dense wheel), some mid-range,
        // some far beyond the window (ladder spills), plus exact ties.
        Cycle when = now;
        switch (rng.next_below(8)) {
          case 0: break;  // tie with the current time
          case 1:
          case 2:
          case 3: when += rng.next_below(16); break;
          case 4:
          case 5: when += rng.next_below(CalendarEventQueue::kBuckets); break;
          case 6: when += CalendarEventQueue::kBuckets + rng.next_below(100000); break;
          case 7: when += rng.next_below(3 * CalendarEventQueue::kBuckets); break;
        }
        Event e = make_event(when, seq);
        Event f = make_event(when, seq);
        ++seq;
        heap.push(std::move(e));
        cal.push(std::move(f));
      } else {
        const Event eh = heap.pop();
        const Event ec = cal.pop();
        ASSERT_EQ(eh.when, ec.when) << "seed " << seed << " op " << op;
        ASSERT_EQ(eh.seq, ec.seq) << "seed " << seed << " op " << op;
        now = eh.when;
      }
      ASSERT_EQ(heap.size(), cal.size()) << "seed " << seed << " op " << op;
    }
    expect_identical_drain(heap, cal, "randomized stream tail");
  }
}

TEST(EventQueueDiff, EmptyRefillCyclesStayIdentical) {
  // Drain-to-empty then refill far ahead: the wheel window must re-anchor
  // through the ladder without reordering.
  HeapEventQueue heap;
  CalendarEventQueue cal;
  std::uint64_t seq = 0;
  Cycle base = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      const Cycle when = base + static_cast<Cycle>(i % 3);
      Event e = make_event(when, seq);
      Event f = make_event(when, seq);
      ++seq;
      heap.push(std::move(e));
      cal.push(std::move(f));
    }
    expect_identical_drain(heap, cal, "empty/refill cycle");
    base += 1000000;  // far beyond the window each refill
  }
}

// ---- engine-level differential ---------------------------------------------

class EngineOnQueue : public testing::TestWithParam<QueueKind> {};

TEST_P(EngineOnQueue, CoreSemanticsHold) {
  Engine e(GetParam());
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  for (int i = 0; i < 8; ++i) {
    e.schedule(20, [&order, i] { order.push_back(10 + i); });
  }
  auto h = e.schedule(15, [&] { order.push_back(99); });
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run_all();
  std::vector<int> expect{1, 10, 11, 12, 13, 14, 15, 16, 17, 3};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(e.now(), 30u);
}

TEST_P(EngineOnQueue, RecursiveSchedulingAndRunUntil) {
  Engine e(GetParam());
  int depth = 0;
  // Self-rescheduling chain: each firing schedules the next one cycle out.
  struct Chain {
    Engine& e;
    int& depth;
    void operator()() const {
      if (++depth < 5) e.schedule(1, Chain{e, depth});
    }
  };
  e.schedule(1, Chain{e, depth});
  e.schedule(100000, [&] { depth += 100; });  // beyond the wheel window
  e.run_until(50);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 50u);
  e.run_all();
  EXPECT_EQ(depth, 105);
  EXPECT_EQ(e.now(), 100000u);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, EngineOnQueue,
                         testing::Values(QueueKind::Heap, QueueKind::Calendar),
                         [](const auto& info) {
                           return std::string(erapid::des::queue_kind_name(info.param));
                         });

TEST(EngineDiff, RandomWorkloadsExecuteIdenticallyOnBothKinds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<std::pair<Cycle, int>> traces[2];
    for (int k = 0; k < 2; ++k) {
      Rng rng(seed * 101);  // identical stream for both engines
      Engine e(k == 0 ? QueueKind::Heap : QueueKind::Calendar);
      auto& trace = traces[k];
      std::vector<erapid::des::EventHandle> handles;
      const int n = 300;
      for (int i = 0; i < n; ++i) {
        Cycle when = rng.next_below(2);
        if (rng.next_below(5) == 0) when = 5000 + rng.next_below(200000);
        handles.push_back(e.schedule(when, [&trace, &e, i] {
          trace.emplace_back(e.now(), i);
        }));
      }
      for (int i = 0; i < n; ++i) {
        if (rng.next_below(4) == 0) handles[static_cast<std::size_t>(i)].cancel();
      }
      e.run_all();
    }
    ASSERT_EQ(traces[0], traces[1]) << "seed " << seed;
  }
}

}  // namespace
