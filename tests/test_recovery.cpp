// Self-healing tests: transient lane failures (repair + DBR re-admission),
// CRC/ARQ link-level recovery, and RC crash / ring-failover behaviour.
//
// The headline properties from the resilience roadmap item:
//   * a transient LaneFail recovers accepted throughput to within 2% of the
//     fault-free run once the repaired lane is re-admitted;
//   * an RC crash never deadlocks the Lock-Step protocol — the watchdog
//     regenerates the ring token and the run drains;
//   * packet corruption is absorbed by bounded ARQ (no silent loss): every
//     labelled packet is either delivered or explicitly dead-lettered.
#include <gtest/gtest.h>

#include <string>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "util/expect.hpp"

namespace {

using namespace erapid;
using fault::FaultPlan;

sim::SimOptions base_options() {
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.reconfig.mode = reconfig::NetworkMode::p_b();
  o.load_fraction = 0.3;
  o.seed = 1;
  o.warmup_cycles = 12000;
  o.measure_cycles = 12000;
  o.drain_limit = 60000;
  return o;
}

// ---- transient lane failure + re-admission ----------------------------------

TEST(SelfHealing, TransientLaneFailRecoversThroughput) {
  auto clean = base_options();
  const auto ref = sim::Simulation(clean).run();

  auto o = base_options();
  // Fail an owned lane early in warmup, repair it mid-warmup: by the time
  // the measurement interval opens the DBR plane must have re-admitted the
  // lane and throughput must be back to the fault-free level (within 2%).
  o.fault = FaultPlan::parse_events("lane_fail@3000:d1:w1:r6000");
  sim::Simulation s(o);
  const auto r = s.run();

  EXPECT_EQ(r.fault.lanes_failed, 1u);
  EXPECT_EQ(r.fault.lanes_repaired, 1u);
  EXPECT_EQ(r.fault.readmissions_completed, 1u);
  EXPECT_EQ(r.fault.readmissions_pending, 0u);
  EXPECT_GE(r.fault.worst_downtime, 3000u);
  // Re-admission happens at a bandwidth window: the wait from repair to
  // re-grant is bounded by the DPM/DBR alternation (two windows) plus the
  // protocol's stage latencies.
  EXPECT_LE(r.fault.worst_readmission_wait, 2 * o.reconfig.window + 2000);
  EXPECT_TRUE(r.drained);
  EXPECT_GE(r.accepted_fraction, 0.98 * ref.accepted_fraction);

  // The lane is live again: not failed, and owned by some board.
  auto& map = s.network().lane_map();
  EXPECT_FALSE(map.is_failed(BoardId{1}, WavelengthId{1}));
  EXPECT_EQ(map.failed_count(), 0u);
}

TEST(SelfHealing, TransientFaultRunsAreDeterministic) {
  auto o = base_options();
  o.fault = FaultPlan::parse_events(
      "lane_fail@3000:d1:w1:r6000 bit_error@4000:d2:w2:p0.0001:5000 "
      "rc_crash@5000:b3:r9000");
  const auto a = sim::Simulation(o).run();
  const auto b = sim::Simulation(o).run();
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered_measured, b.packets_delivered_measured);
  EXPECT_EQ(a.fault.crc_dropped, b.fault.crc_dropped);
  EXPECT_EQ(a.fault.arq_retransmits, b.fault.arq_retransmits);
  EXPECT_EQ(a.fault.readmissions_completed, b.fault.readmissions_completed);
  EXPECT_EQ(a.fault.worst_readmission_wait, b.fault.worst_readmission_wait);
  EXPECT_DOUBLE_EQ(a.latency_avg, b.latency_avg);
}

// ---- RC crash / ring failover ------------------------------------------------

TEST(SelfHealing, RcCrashNeverDeadlocks) {
  auto o = base_options();
  // Permanent crash: the board's RC dies and never comes back. The ring
  // must bypass it (watchdog token regeneration) and the run must drain —
  // a hung Lock-Step window would strand labelled packets and fail here.
  o.fault = FaultPlan::parse_events("rc_crash@5000:b2");
  sim::Simulation s(o);
  const auto r = s.run();

  EXPECT_EQ(r.fault.rc_crashes, 1u);
  EXPECT_EQ(r.fault.rc_repairs, 0u);
  EXPECT_GE(r.fault.watchdog_fires, 1u);
  EXPECT_GE(r.fault.tokens_regenerated, 1u);
  EXPECT_GT(r.fault.frozen_windows, 0u);
  EXPECT_TRUE(r.drained) << "RC crash must not deadlock the protocol";
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
  EXPECT_TRUE(s.network().reconfig_manager().rc_dead(BoardId{2}));
}

TEST(SelfHealing, RcCrashRepairRejoinsTheRing) {
  auto o = base_options();
  o.fault = FaultPlan::parse_events("rc_crash@5000:b2:r9000");
  sim::Simulation s(o);
  const auto r = s.run();

  EXPECT_EQ(r.fault.rc_crashes, 1u);
  EXPECT_EQ(r.fault.rc_repairs, 1u);
  EXPECT_FALSE(s.network().reconfig_manager().rc_dead(BoardId{2}));
  EXPECT_TRUE(r.drained);
  // Windows opened during the outage froze the dead board's lanes.
  EXPECT_GT(r.fault.frozen_windows, 0u);
  // After rejoin the protocol runs clean: later windows are not frozen.
  EXPECT_LT(r.fault.frozen_windows, r.control.power_cycles + r.control.bandwidth_cycles);
}

// ---- CRC + ARQ ---------------------------------------------------------------

TEST(SelfHealing, ArqRecoversCorruptedPackets) {
  auto o = base_options();
  // Moderate corruption window on one lane: drops happen, every one is
  // retransmitted within the retry budget, nothing is abandoned.
  o.fault = FaultPlan::parse_events("bit_error@4000:d1:w1:p0.0002:8000");
  const auto r = sim::Simulation(o).run();

  EXPECT_GT(r.fault.crc_dropped, 0u);
  EXPECT_GT(r.fault.arq_retransmits, 0u);
  EXPECT_EQ(r.fault.arq_dead_letters, 0u);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
}

TEST(SelfHealing, ArqDeadLettersOnExhaustionAndRunStillDrains) {
  auto o = base_options();
  // Static allocation (no DBR to move flows off the poisoned lane) and a
  // BER of 1: every packet on that lane corrupts on every attempt, so each
  // exhausts its retry budget and dead-letters. The drain loop must not
  // wait forever for packets that can never arrive. Every abandoned packet
  // costs its full retry ladder (NAK + exponential backoff per attempt) on
  // a strictly serial lane, so keep the poisoned flow lightly loaded and
  // give the drain room for the ladder of the last labelled packets.
  o.reconfig.mode = reconfig::NetworkMode::np_nb();
  o.system.nodes_per_board = 1;
  o.load_fraction = 0.15;
  o.measure_cycles = 6000;
  o.drain_limit = 200000;
  o.fault = FaultPlan::parse_events("bit_error@2000:d1:w1:p1:0");
  const auto r = sim::Simulation(o).run();

  EXPECT_GT(r.fault.crc_dropped, 0u);
  EXPECT_GT(r.fault.arq_dead_letters, 0u);
  EXPECT_TRUE(r.drained) << "dead-lettered packets must not stall the drain";
  EXPECT_LT(r.labelled_delivered, r.labelled_generated);
  // Retransmissions stayed within the configured budget per packet.
  EXPECT_LE(r.fault.arq_retransmits,
            r.fault.crc_dropped * o.system.arq_retry_limit);
}

// ---- chaos: fault storm under an active brownout ladder ---------------------

#if !defined(ERAPID_NO_OBS)

/// A tight power cap (deep ladder: sleeps + sheds) with a transient fault
/// storm landing mid-descent. The two planes must stay disjoint: lanes the
/// controller put to sleep or shed are policy decisions, not outages, so
/// the fault plane's downtime/recovery accounting covers exactly the
/// storm's own lanes.
sim::SimOptions chaos_options() {
  auto o = base_options();
  o.load_fraction = 0.5;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  // Deep brownout sheds most of the capacity while the storm's ARQ ladder
  // retries on top of it — the backlog drains, but slowly.
  o.drain_limit = 200000;
  o.obs.enabled = true;
  o.obs.monitor_fail_fast = true;
  o.obs.monitors.power_cap_mw = 100.0;
  o.degrade.power_cap = resilience::ResponsePolicy::Shed;
  o.degrade.cooldown_cycles = 1000;
  o.degrade.recover_cycles = 500000;  // hold the brownout to the end
  o.degrade.shed_step = 2;
  // Two transient lane failures and a corruption window, all landing while
  // the ladder is still stepping down.
  o.fault = FaultPlan::parse_events(
      "lane_fail@6000:d1:w1:r9000 lane_fail@7000:d3:w3:r11000 "
      "bit_error@6500:d2:w2:p0.0003:4000");
  return o;
}

TEST(Chaos, StormUnderBrownoutKeepsFaultAndPolicyAccountingDisjoint) {
  const auto r = sim::Simulation(chaos_options()).run();

  // The ladder went deep: lanes were slept and shed while the storm ran.
  EXPECT_TRUE(r.resilience.engaged);
  EXPECT_GT(r.resilience.lanes_shed, 0u);
  EXPECT_GT(r.resilience.lanes_slept + r.resilience.lanes_shed, 1u);
  EXPECT_TRUE(r.drained);

  // Fault accounting covers exactly the storm's two transient lanes —
  // slept and shed lanes never enter the downtime/recovery books.
  EXPECT_EQ(r.fault.lanes_failed, 2u);
  EXPECT_EQ(r.fault.lanes_repaired, 2u);
  EXPECT_EQ(r.fault.readmissions_pending, 0u);
  EXPECT_LE(r.fault.readmissions_completed, 2u);
  // Downtime is the storm's own fail→repair arc (3000 / 4000 cycles), not
  // the much longer policy-held brownout window.
  EXPECT_GE(r.fault.worst_downtime, 3000u);
  EXPECT_LT(r.fault.worst_downtime,
            static_cast<CycleDelta>(r.resilience.time_degraded));
}

TEST(Chaos, StormUnderBrownoutIsByteIdenticalAcrossQueueKinds) {
  auto heap = chaos_options();
  heap.des_queue = des::QueueKind::Heap;
  auto cal = chaos_options();
  cal.des_queue = des::QueueKind::Calendar;
  const std::string a = sim::to_json(sim::Simulation(heap).run());
  const std::string b = sim::to_json(sim::Simulation(cal).run());
  EXPECT_EQ(a, b);
}

#endif  // !ERAPID_NO_OBS

}  // namespace
