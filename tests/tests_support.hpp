// Shared test fixtures and golden values.
#pragma once

#include <memory>
#include <vector>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "optical/lane.hpp"
#include "optical/receiver.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"
#include "topology/config.hpp"

namespace erapid::test {

/// Minimal optical rig: a 1-input router with one ejection port, one
/// receiver on that input, and one lane shooting packets at the receiver.
struct LaneRig {
  topology::SystemConfig cfg;
  des::Engine engine;
  des::ClockDomain domain{engine};
  power::LinkPowerModel pw;
  power::EnergyMeter meter;
  std::unique_ptr<router::Router> router;
  std::unique_ptr<router::EjectionUnit> ejection;
  std::unique_ptr<optical::Receiver> rx;
  std::unique_ptr<optical::Lane> lane;
  std::vector<router::Packet> delivered;

  LaneRig() {
    cfg.boards = 2;
    cfg.nodes_per_board = 1;
    router = std::make_unique<router::Router>(
        engine, domain, "rig", 1, cfg.num_vcs, cfg.vc_buffer_flits, 1,
        [](const router::Flit&) { return 0u; });
    ejection = std::make_unique<router::EjectionUnit>(
        *router, cfg.num_vcs,
        [this](const router::Packet& p, Cycle) { delivered.push_back(p); });
    router::OutputPortConfig opc;
    opc.sink = ejection.get();
    opc.vcs = cfg.num_vcs;
    opc.credits_per_vc = cfg.vc_buffer_flits;
    opc.cycles_per_flit = 4;
    ejection->bind(router->add_output(opc));
    rx = std::make_unique<optical::Receiver>(engine, *router, 0, cfg.num_vcs,
                                             cfg.vc_buffer_flits, 4,
                                             cfg.rx_queue_packets);
    lane = std::make_unique<optical::Lane>(
        engine, cfg, pw, meter, topology::LaneRef{BoardId{1}, WavelengthId{2}},
        rx.get());
  }

  static router::Packet packet(std::uint64_t seq) {
    router::Packet p;
    p.seq = seq;
    p.src = NodeId{0};
    p.dst = NodeId{0};
    p.flits = 8;
    return p;
  }
};

// Golden regression values for test_fuzz.cpp's Golden suite: the exact
// deterministic output of R(1,4,4), uniform, load 0.5, seed 1, P-B,
// warmup 4000 / measure 8000 / drain 60000.
//
// Policy: these may ONLY be updated when a change to model *timing or
// policy semantics* is intended; update by running the test and copying
// the reported values, and say so in the commit message. A build/refactor
// that changes them unintentionally is a regression.
inline constexpr std::uint64_t kGoldenGenerated = 2292;
inline constexpr std::uint64_t kGoldenDelivered = 1424;
inline constexpr double kGoldenLatency = 283.26963906581761;
inline constexpr double kGoldenPowerMw = 266.87280000000038;

}  // namespace erapid::test
