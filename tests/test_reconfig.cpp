// Unit + property tests for the LS policies: DPM decisions, the DBR
// Reconfigure-stage allocator, and the network-mode presets.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "reconfig/allocation.hpp"
#include "reconfig/messages.hpp"
#include "reconfig/policy.hpp"
#include "util/rng.hpp"

namespace {

using erapid::BoardId;
using erapid::WavelengthId;
using erapid::power::PowerLevel;
using erapid::reconfig::allocate_lanes;
using erapid::reconfig::DbrPolicy;
using erapid::reconfig::Directive;
using erapid::reconfig::dpm_decision;
using erapid::reconfig::DpmPolicy;
using erapid::reconfig::FlowStatsEntry;
using erapid::reconfig::LaneOwnership;
using erapid::reconfig::NetworkMode;

// ---- NetworkMode presets (paper §4.2) ------------------------------------

TEST(Modes, PresetFlags) {
  EXPECT_FALSE(NetworkMode::np_nb().power_aware);
  EXPECT_FALSE(NetworkMode::np_nb().bandwidth_reconfig);
  EXPECT_TRUE(NetworkMode::p_nb().power_aware);
  EXPECT_FALSE(NetworkMode::p_nb().bandwidth_reconfig);
  EXPECT_FALSE(NetworkMode::np_b().power_aware);
  EXPECT_TRUE(NetworkMode::np_b().bandwidth_reconfig);
  EXPECT_TRUE(NetworkMode::p_b().power_aware);
  EXPECT_TRUE(NetworkMode::p_b().bandwidth_reconfig);
}

TEST(Modes, PaperThresholds) {
  const auto pnb = NetworkMode::p_nb();
  EXPECT_DOUBLE_EQ(pnb.dpm.l_max, 0.7);
  EXPECT_DOUBLE_EQ(pnb.dpm.b_max, 0.0);
  EXPECT_FALSE(pnb.dpm.require_buffer_for_upscale);

  const auto pb = NetworkMode::p_b();
  EXPECT_DOUBLE_EQ(pb.dpm.l_min, 0.7);
  EXPECT_DOUBLE_EQ(pb.dpm.l_max, 0.9);
  EXPECT_DOUBLE_EQ(pb.dpm.b_max, 0.3);
  EXPECT_TRUE(pb.dpm.require_buffer_for_upscale);
  EXPECT_DOUBLE_EQ(pb.dbr.b_min, 0.0);
  EXPECT_DOUBLE_EQ(pb.dbr.b_max, 0.3);
}

// ---- dpm_decision ---------------------------------------------------------

TEST(Dpm, LowUtilizationStepsDown) {
  DpmPolicy p;  // P-B thresholds
  EXPECT_EQ(dpm_decision(PowerLevel::High, 0.5, 0.0, false, p), PowerLevel::Mid);
  EXPECT_EQ(dpm_decision(PowerLevel::Mid, 0.1, 0.0, false, p), PowerLevel::Low);
}

TEST(Dpm, LowNeverStepsBelowLowByDvs) {
  DpmPolicy p;
  // u in (0, l_min) at Low: would step down but saturates -> no change.
  EXPECT_EQ(dpm_decision(PowerLevel::Low, 0.2, 0.0, false, p), std::nullopt);
}

TEST(Dpm, MidBandHolds) {
  DpmPolicy p;  // l_min 0.7, l_max 0.9
  EXPECT_EQ(dpm_decision(PowerLevel::Mid, 0.8, 0.5, false, p), std::nullopt);
}

TEST(Dpm, HighUtilizationStepsUpOnlyWithCongestedBuffer) {
  DpmPolicy p;  // require_buffer_for_upscale = true, b_max 0.3
  EXPECT_EQ(dpm_decision(PowerLevel::Low, 0.95, 0.1, false, p), std::nullopt);
  EXPECT_EQ(dpm_decision(PowerLevel::Low, 0.95, 0.5, false, p), PowerLevel::Mid);
  EXPECT_EQ(dpm_decision(PowerLevel::Mid, 0.95, 0.5, false, p), PowerLevel::High);
}

TEST(Dpm, ConservativeVariantIgnoresBuffer) {
  DpmPolicy p;
  p.l_max = 0.7;
  p.b_max = 0.0;
  p.require_buffer_for_upscale = false;
  EXPECT_EQ(dpm_decision(PowerLevel::Low, 0.75, 0.0, false, p), PowerLevel::Mid);
}

TEST(Dpm, HighSaturates) {
  DpmPolicy p;
  EXPECT_EQ(dpm_decision(PowerLevel::High, 0.99, 0.9, false, p), std::nullopt);
}

TEST(Dpm, IdleLaneWithEmptyQueueShutsDown) {
  DpmPolicy p;
  EXPECT_EQ(dpm_decision(PowerLevel::Low, 0.0, 0.0, true, p), PowerLevel::Off);
  EXPECT_EQ(dpm_decision(PowerLevel::High, 0.0, 0.0, true, p), PowerLevel::Off);
}

TEST(Dpm, IdleLaneWithQueuedPacketsStaysOn) {
  DpmPolicy p;
  // Queue not empty: must not shut down (packets would strand).
  const auto d = dpm_decision(PowerLevel::Low, 0.0, 0.0, false, p);
  EXPECT_NE(d, std::optional{PowerLevel::Off});
}

TEST(Dpm, ShutdownDisabledKeepsIdleLaneLit) {
  DpmPolicy p;
  p.shutdown_idle = false;
  const auto d = dpm_decision(PowerLevel::High, 0.0, 0.0, true, p);
  // Steps down instead of shutting off.
  EXPECT_EQ(d, PowerLevel::Mid);
}

TEST(Dpm, OffLaneIsNeverTouched) {
  DpmPolicy p;
  EXPECT_EQ(dpm_decision(PowerLevel::Off, 0.0, 0.0, true, p), std::nullopt);
  EXPECT_EQ(dpm_decision(PowerLevel::Off, 0.9, 0.9, false, p), std::nullopt);
}

// ---- allocate_lanes ---------------------------------------------------------

// Helpers to build the allocator inputs for an 8-board system, dest = 0.
constexpr std::uint32_t kBoards = 8;

std::vector<LaneOwnership> static_lanes_for_dest0() {
  // Static RWA: owner of (dest 0, w) is board (0 + w) % 8; λ0 dark.
  std::vector<LaneOwnership> lanes;
  lanes.push_back({WavelengthId{0}, BoardId{}});
  for (std::uint32_t w = 1; w < kBoards; ++w) {
    lanes.push_back({WavelengthId{w}, BoardId{w}});
  }
  return lanes;
}

std::vector<FlowStatsEntry> quiet_flows() {
  std::vector<FlowStatsEntry> flows;
  for (std::uint32_t s = 1; s < kBoards; ++s) {
    flows.push_back({BoardId{s}, 0.0, 0, 1});
  }
  return flows;
}

TEST(Allocator, NoCongestionNoDirectives) {
  const auto d = allocate_lanes(BoardId{0}, quiet_flows(), static_lanes_for_dest0(),
                                DbrPolicy{}, PowerLevel::High);
  EXPECT_TRUE(d.empty());
}

TEST(Allocator, CongestedFlowGetsDarkLaneFirst) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;  // board 1 congested
  flows[0].queued = 10;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  ASSERT_FALSE(d.empty());
  // First grant must be the dark λ0 lane (no release needed).
  EXPECT_EQ(d[0].wavelength.value(), 0u);
  EXPECT_FALSE(d[0].old_owner.valid());
  EXPECT_EQ(d[0].new_owner, BoardId{1});
}

TEST(Allocator, IdleFlowsLanesAreHarvested) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;  // board 1 over-utilized
  flows[0].queued = 4;
  // All other flows idle (buffer_util 0, queued 0) -> their lanes movable.
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  // λ0 plus the six idle flows' lanes = 7 grants, all to board 1.
  EXPECT_EQ(d.size(), 7u);
  std::set<std::uint32_t> ws;
  for (const auto& dir : d) {
    EXPECT_EQ(dir.new_owner, BoardId{1});
    ws.insert(dir.wavelength.value());
  }
  EXPECT_EQ(ws.size(), 7u);
  // Board 1's own static lane (w=1) is never re-granted to itself.
  EXPECT_EQ(ws.count(1), 0u);
}

TEST(Allocator, NormalFlowsKeepTheirLanes) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;   // board 1 over
  flows[1].buffer_util = 0.15;  // board 2 normal (0 < b <= 0.3)
  for (std::size_t i = 2; i < flows.size(); ++i) flows[i].buffer_util = 0.2;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  ASSERT_EQ(d.size(), 1u);  // only the dark λ0
  EXPECT_EQ(d[0].wavelength.value(), 0u);
}

TEST(Allocator, QueuedPacketsBlockHarvest) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;
  flows[1].queued = 1;  // board 2: window-idle but a packet just arrived
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  for (const auto& dir : d) {
    EXPECT_NE(dir.old_owner, BoardId{2}) << "took a lane with queued packets";
  }
}

TEST(Allocator, MultipleCongestedFlowsShareRoundRobin) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;  // board 1
  flows[2].buffer_util = 0.8;  // board 3
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  std::map<std::uint32_t, int> grants;
  for (const auto& dir : d) ++grants[dir.new_owner.value()];
  ASSERT_EQ(grants.size(), 2u);
  // 6 movable lanes (λ0 + 5 idle flows, boards 1 and 3 keep theirs):
  // split 3 / 3.
  EXPECT_EQ(grants[1], 3);
  EXPECT_EQ(grants[3], 3);
}

TEST(Allocator, MostCongestedServedFirst) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.5;  // board 1
  flows[2].buffer_util = 0.95; // board 3 — hotter
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  ASSERT_FALSE(d.empty());
  EXPECT_EQ(d[0].new_owner, BoardId{3});
}

TEST(Allocator, GrantLevelStamped) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::Mid);
  ASSERT_FALSE(d.empty());
  for (const auto& dir : d) EXPECT_EQ(dir.grant_level, PowerLevel::Mid);
}

TEST(Allocator, EverythingCongestedNothingMoves) {
  auto flows = quiet_flows();
  for (auto& f : flows) {
    f.buffer_util = 0.9;
    f.queued = 5;
  }
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), DbrPolicy{},
                                PowerLevel::High);
  // Only λ0 is free; round-robin hands it to the most congested flow.
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].wavelength.value(), 0u);
}

TEST(Allocator, LaneCapLimitsGrants) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;  // board 1, currently holds 1 lane
  flows[0].queued = 10;
  DbrPolicy policy;
  policy.max_lanes_per_flow = 3;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), policy,
                                PowerLevel::High);
  // Holds 1, cap 3 -> at most 2 additional grants.
  EXPECT_EQ(d.size(), 2u);
}

TEST(Allocator, LaneCapAlreadyReachedMeansNoGrant) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;
  flows[0].lanes = 4;
  DbrPolicy policy;
  policy.max_lanes_per_flow = 4;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), policy,
                                PowerLevel::High);
  EXPECT_TRUE(d.empty());
}

TEST(Allocator, CapZeroMeansUnlimited) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;
  DbrPolicy policy;
  policy.max_lanes_per_flow = 0;
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), policy,
                                PowerLevel::High);
  EXPECT_EQ(d.size(), 7u);
}

TEST(Allocator, CapSharedFairlyAmongCongestedFlows) {
  auto flows = quiet_flows();
  flows[0].buffer_util = 0.9;  // board 1
  flows[2].buffer_util = 0.8;  // board 3
  DbrPolicy policy;
  policy.max_lanes_per_flow = 2;  // each holds 1 -> one more each
  const auto d = allocate_lanes(BoardId{0}, flows, static_lanes_for_dest0(), policy,
                                PowerLevel::High);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_NE(d[0].new_owner, d[1].new_owner);
}

// Property test: for random inputs the allocator never emits a directive
// that (a) grants a flow a lane it already owns, (b) releases a lane of a
// flow with queued packets, (c) double-assigns a wavelength, or (d) grants
// to a non-congested flow.
TEST(Allocator, RandomizedInvariants) {
  erapid::util::Rng rng(1234);
  const DbrPolicy policy;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<FlowStatsEntry> flows;
    std::map<std::uint32_t, FlowStatsEntry*> by_src;
    for (std::uint32_t s = 1; s < kBoards; ++s) {
      FlowStatsEntry f;
      f.src = BoardId{s};
      f.buffer_util = rng.next_double();
      f.queued = static_cast<std::uint32_t>(rng.next_below(4));
      flows.push_back(f);
    }
    std::vector<LaneOwnership> lanes;
    for (std::uint32_t w = 0; w < kBoards; ++w) {
      // Random owner (or dark), never the destination itself.
      const auto pick = rng.next_below(kBoards + 1);
      LaneOwnership l{WavelengthId{w}, BoardId{}};
      if (pick >= 1 && pick < kBoards) l.owner = BoardId{static_cast<std::uint32_t>(pick)};
      lanes.push_back(l);
    }

    const auto dirs = allocate_lanes(BoardId{0}, flows, lanes, policy, PowerLevel::High);

    std::set<std::uint32_t> granted_w;
    for (const auto& d : dirs) {
      // (c) each wavelength moved at most once
      EXPECT_TRUE(granted_w.insert(d.wavelength.value()).second);
      // consistency with the input ownership
      const auto& lane = lanes[d.wavelength.value()];
      EXPECT_EQ(lane.owner, d.old_owner);
      // (a) no self-grant
      EXPECT_NE(d.old_owner, d.new_owner);
      // (d) receiver must be over-utilized
      const auto fit = std::find_if(flows.begin(), flows.end(), [&](const auto& f) {
        return f.src == d.new_owner;
      });
      ASSERT_NE(fit, flows.end());
      EXPECT_GT(fit->buffer_util, policy.b_max);
      // (b) released flow had empty queue and under-threshold buffer
      if (d.old_owner.valid()) {
        const auto oit = std::find_if(flows.begin(), flows.end(), [&](const auto& f) {
          return f.src == d.old_owner;
        });
        ASSERT_NE(oit, flows.end());
        EXPECT_LE(oit->buffer_util, policy.b_min);
        EXPECT_EQ(oit->queued, 0u);
      }
    }
  }
}

}  // namespace
