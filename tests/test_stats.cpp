// Unit tests for streaming statistics, time-weighted integration,
// histograms and windowed utilization counters.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/streaming.hpp"
#include "stats/time_weighted.hpp"
#include "stats/window.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace {

using erapid::stats::BatchMeans;
using erapid::stats::BusyCounter;
using erapid::stats::Histogram;
using erapid::stats::OccupancyTracker;
using erapid::stats::Streaming;
using erapid::stats::TimeWeighted;

// ---- Streaming ---------------------------------------------------------

TEST(Streaming, EmptyIsZero) {
  Streaming s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Streaming, MeanAndVarianceMatchClosedForm) {
  Streaming s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Streaming, MergeEqualsSinglePass) {
  erapid::util::Rng rng(1);
  Streaming whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Streaming, MergeWithEmptySides) {
  Streaming a, b;
  a.add(3.0);
  Streaming empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

// ---- TimeWeighted ------------------------------------------------------

TEST(TimeWeighted, PiecewiseConstantIntegral) {
  TimeWeighted tw(0, 2.0);
  tw.set(10, 4.0);   // 2.0 held for [0,10)
  tw.set(30, 0.0);   // 4.0 held for [10,30)
  EXPECT_DOUBLE_EQ(tw.integral(40), 2.0 * 10 + 4.0 * 20 + 0.0 * 10);
}

TEST(TimeWeighted, AverageOverWindow) {
  TimeWeighted tw(0, 0.0);
  tw.set(0, 10.0);
  tw.set(50, 20.0);
  EXPECT_DOUBLE_EQ(tw.average(0, 100), 15.0);
}

TEST(TimeWeighted, CheckpointStartsNewWindow) {
  TimeWeighted tw(0, 8.0);
  tw.checkpoint(100);  // forget [0,100) for averaging
  tw.set(150, 0.0);
  // window [100,200): 8.0 for 50 cycles, 0 for 50 cycles
  EXPECT_DOUBLE_EQ(tw.average(100, 200), 4.0);
}

TEST(TimeWeighted, AddIsRelative) {
  TimeWeighted tw(0, 1.0);
  tw.add(10, 2.0);
  EXPECT_DOUBLE_EQ(tw.level(), 3.0);
  tw.add(20, -3.0);
  EXPECT_DOUBLE_EQ(tw.level(), 0.0);
}

TEST(TimeWeighted, NonMonotonicUpdateThrows) {
  TimeWeighted tw(10, 0.0);
  EXPECT_THROW(tw.set(5, 1.0), erapid::ModelInvariantError);
}

// ---- Histogram ---------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(15);
  h.add(150);   // overflow
  h.add(-1);    // underflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, QuantilesOfUniformData) {
  Histogram h(0, 1000, 1000);
  for (int i = 0; i < 1000; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 2.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 2.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h(0, 10, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(0, 10, 10);
  h.add(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bin_count(5), 0u);
}

TEST(Histogram, ValueAtUpperEdgeIsOverflow) {
  Histogram h(0, 10, 10);
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 1u);
}

// ---- BusyCounter / OccupancyTracker -------------------------------------

TEST(BusyCounter, UtilizationIsBusyOverWindow) {
  BusyCounter c;
  c.add_busy(500);
  EXPECT_DOUBLE_EQ(c.utilization(2000), 0.25);
  c.reset();
  EXPECT_DOUBLE_EQ(c.utilization(2000), 0.0);
}

TEST(BusyCounter, UtilizationClampsAtOne) {
  BusyCounter c;
  c.add_busy(2500);  // packet straddles the window boundary
  EXPECT_DOUBLE_EQ(c.utilization(2000), 1.0);
}

TEST(BusyCounter, ZeroWindowIsZero) {
  BusyCounter c;
  c.add_busy(10);
  EXPECT_DOUBLE_EQ(c.utilization(0), 0.0);
}

TEST(OccupancyTracker, TimeAveragedFraction) {
  OccupancyTracker t(10);
  t.set_occupancy(0, 5);    // 0.5 for [0,100)
  t.set_occupancy(100, 10); // 1.0 for [100,200)
  EXPECT_DOUBLE_EQ(t.utilization(0, 200), 0.75);
}

TEST(OccupancyTracker, HarvestResetsWindow) {
  OccupancyTracker t(4);
  t.set_occupancy(0, 4);
  t.harvest(100);
  t.set_occupancy(100, 0);
  EXPECT_DOUBLE_EQ(t.utilization(100, 200), 0.0);
}

// ---- BatchMeans --------------------------------------------------------

TEST(BatchMeans, MeanOfConstantSeries) {
  BatchMeans bm(10);
  for (int i = 0; i < 100; ++i) bm.add(7.0);
  EXPECT_EQ(bm.batches(), 10u);
  EXPECT_DOUBLE_EQ(bm.mean(), 7.0);
  EXPECT_DOUBLE_EQ(bm.ci_halfwidth(), 0.0);
}

TEST(BatchMeans, CiShrinksWithMoreBatches) {
  erapid::util::Rng rng(2);
  BatchMeans small(10), large(10);
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  erapid::util::Rng rng2(2);
  for (int i = 0; i < 10000; ++i) large.add(rng2.next_double());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
  EXPECT_NEAR(large.mean(), 0.5, 0.02);
}

}  // namespace
