#!/usr/bin/env python3
"""Smoke test for examples/trace_replay on the workload-aware path.

Replays the committed tiny application trace (tests/data/tiny_app.trace,
108 events on 16 nodes) through workload.kind=trace and checks that the
emitted JSON report parses, claims completion, and accounts for every
trace event. Run by CTest as:

    test_trace_replay.py <trace_replay-binary> <trace-file>
"""

import json
import subprocess
import sys

TRACE_EVENTS = 108  # committed size of tests/data/tiny_app.trace


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <trace_replay-binary> <trace-file>")
    binary, trace = sys.argv[1], sys.argv[2]

    proc = subprocess.run(
        [binary, "--trace", trace, "--boards", "4", "--nodes", "4", "--json"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        fail(
            f"trace_replay exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )

    # The report is everything from the first '{' (a banner line precedes it).
    brace = proc.stdout.find("{")
    if brace < 0:
        fail(f"no JSON object in output:\n{proc.stdout}")
    try:
        report = json.loads(proc.stdout[brace:])
    except json.JSONDecodeError as exc:
        fail(f"report does not parse: {exc}\n{proc.stdout[brace:]}")

    wl = report.get("workload")
    if not isinstance(wl, dict):
        fail(f"report carries no workload block: {sorted(report)}")
    if wl.get("kind") != "trace":
        fail(f"workload.kind = {wl.get('kind')!r}, expected 'trace'")
    if wl.get("completed") is not True:
        fail(f"trace replay did not complete: {wl}")
    if wl.get("packets_injected") != TRACE_EVENTS:
        fail(f"packets_injected = {wl.get('packets_injected')}, expected {TRACE_EVENTS}")
    if wl.get("packets_delivered") != TRACE_EVENTS:
        fail(f"packets_delivered = {wl.get('packets_delivered')}, expected {TRACE_EVENTS}")
    if not wl.get("completion_cycle", 0) > 0:
        fail(f"completion_cycle = {wl.get('completion_cycle')}, expected > 0")

    print(
        f"trace_replay smoke OK: {TRACE_EVENTS} events replayed to completion "
        f"at cycle {wl['completion_cycle']}"
    )


if __name__ == "__main__":
    main()
