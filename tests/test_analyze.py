#!/usr/bin/env python3
"""Self-test for tools/analyze/erapid_analyze.py.

Runs the analyzer over the fixture corpus in tests/lint_fixtures/analyze/:
each bad_* fixture must trip exactly its rule, the good fixtures must stay
clean, suppressions must be honored (and remove methods from the contract
coverage pool), --fix must be idempotent, the SARIF report must be
structurally valid 2.1.0, and the baseline must gate findings and enforce
the contract-coverage ratchet. Registered in CTest as
`lint.analyze_self_test`.
"""

import json
import shutil
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURES = TESTS_DIR / "lint_fixtures" / "analyze"

sys.path.insert(0, str(REPO_ROOT / "tools" / "analyze"))
import erapid_analyze  # noqa: E402
from cpp_lexer import SourceFile  # noqa: E402
from decl_index import build_index  # noqa: E402


def run_json(paths, rules=None, extra=None):
    """Runs the analyzer CLI and returns (exit_code, report_dict)."""
    with tempfile.TemporaryDirectory() as td:
        report = Path(td) / "report.json"
        argv = [str(p) for p in paths] + ["--root", str(REPO_ROOT),
                                          "--json", str(report)]
        if rules:
            argv += ["--rules", ",".join(rules)]
        if extra:
            argv += extra
        rc = erapid_analyze.main(argv)
        doc = json.loads(report.read_text()) if report.exists() else None
        return rc, doc


def rules_of(doc):
    return sorted({f["rule"] for f in doc["findings"]})


class BadFixturesTrip(unittest.TestCase):
    CASES = {
        "bad_unit_mix.cpp": "unit-mix",
        "bad_unit_param.cpp": "unit-param",
        "bad_iter_unordered.cpp": "iter-unordered",
        "bad_float_accum.cpp": "float-accum",
        "bad_ptr_map_key.cpp": "ptr-map-key",
        "bad_no_pragma.hpp": "pragma-once",
        "bad_std_include.hpp": "std-include",
        "power/bad_uncontracted.hpp": "contract-coverage",
    }

    def test_each_bad_fixture_trips_exactly_its_rule(self):
        for name, rule in self.CASES.items():
            with self.subTest(fixture=name):
                rc, doc = run_json([FIXTURES / name])
                self.assertEqual(rc, 1, name)
                self.assertEqual(rules_of(doc), [rule], name)

    def test_include_cycle_reported_once(self):
        rc, doc = run_json([FIXTURES / "cycle_a.hpp", FIXTURES / "cycle_b.hpp"])
        self.assertEqual(rc, 1)
        cycles = [f for f in doc["findings"] if f["rule"] == "include-cycle"]
        self.assertEqual(len(cycles), 1)
        self.assertIn("cycle_a.hpp", cycles[0]["message"])
        self.assertIn("cycle_b.hpp", cycles[0]["message"])


class GoodFixturesClean(unittest.TestCase):
    def test_good_files_are_clean(self):
        rc, doc = run_json([FIXTURES / "good.hpp", FIXTURES / "good.cpp"])
        self.assertEqual(rc, 0)
        self.assertEqual(doc["findings"], [])

    def test_contracted_method_is_covered(self):
        rc, doc = run_json([FIXTURES / "power" / "good_contracted.hpp"])
        self.assertEqual(rc, 0)
        cov = doc["contract_coverage"]["power"]
        # set_level counts as contracted; the one-line mark_clean is exempt.
        self.assertEqual((cov["contracted"], cov["considered"]), (1, 1))


class Suppressions(unittest.TestCase):
    def test_line_allow_covers_next_line_only(self):
        rc, doc = run_json([FIXTURES / "suppressed_line.cpp"])
        self.assertEqual(rc, 1)
        findings = doc["findings"]
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["rule"], "unit-mix")
        self.assertIn("mixed_and_flagged", "\n".join(
            SourceFile(Path("x"), (FIXTURES / "suppressed_line.cpp").read_text())
            .raw_lines[:findings[0]["line"]]))

    def test_file_allow_silences_whole_file(self):
        rc, doc = run_json([FIXTURES / "suppressed_file.cpp"])
        self.assertEqual(rc, 0)
        self.assertEqual(doc["findings"], [])

    def test_suppressed_method_leaves_coverage_pool(self):
        rc, doc = run_json([FIXTURES / "power" / "suppressed_method.hpp"])
        self.assertEqual(rc, 0)
        cov = doc["contract_coverage"]["power"]
        self.assertEqual((cov["contracted"], cov["considered"]), (0, 0))


class CliContract(unittest.TestCase):
    def test_unknown_rule_is_usage_error(self):
        rc = erapid_analyze.main([str(FIXTURES / "good.cpp"),
                                  "--rules", "no-such-rule"])
        self.assertEqual(rc, 2)

    def test_empty_rule_selection_is_usage_error(self):
        for empty in ("", " , ,"):
            rc = erapid_analyze.main([str(FIXTURES / "good.cpp"),
                                      "--rules", empty])
            self.assertEqual(rc, 2)

    def test_no_paths_is_usage_error(self):
        self.assertEqual(erapid_analyze.main([]), 2)

    def test_family_selector_expands_to_member_rules(self):
        rc, doc = run_json([FIXTURES / "bad_unit_mix.cpp",
                            FIXTURES / "bad_no_pragma.hpp"], rules=["units"])
        self.assertEqual(rc, 1)
        # pragma-once is outside the selected family and must not fire.
        self.assertEqual(rules_of(doc), ["unit-mix"])


class FixPragmaOnce(unittest.TestCase):
    def test_fix_round_trip_is_idempotent(self):
        with tempfile.TemporaryDirectory() as td:
            target = Path(td) / "bad_no_pragma.hpp"
            shutil.copy(FIXTURES / "bad_no_pragma.hpp", target)

            rc = erapid_analyze.main([str(target), "--root", td, "--fix",
                                      "--rules", "pragma-once"])
            self.assertEqual(rc, 0)  # fixed in the same run -> clean
            fixed = target.read_text()
            self.assertIn("#pragma once", fixed)
            idx = build_index(SourceFile(target, fixed))
            self.assertTrue(idx.has_pragma_once)
            # The guard lands after the leading comment block.
            lines = fixed.splitlines()
            guard_at = lines.index("#pragma once")
            self.assertTrue(all(ln.startswith("//") or not ln.strip()
                                for ln in lines[:guard_at]))

            rc = erapid_analyze.main([str(target), "--root", td, "--fix",
                                      "--rules", "pragma-once"])
            self.assertEqual(rc, 0)
            self.assertEqual(target.read_text(), fixed)  # byte-stable


class SarifReport(unittest.TestCase):
    def sarif_for(self, paths, extra=None):
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "out.sarif"
            argv = [str(p) for p in paths] + ["--root", str(REPO_ROOT),
                                              "--sarif", str(out)]
            rc = erapid_analyze.main(argv + (extra or []))
            return rc, json.loads(out.read_text())

    def test_sarif_is_structurally_valid_2_1_0(self):
        rc, doc = self.sarif_for([FIXTURES])
        self.assertEqual(rc, 1)
        self.assertEqual(doc["version"], "2.1.0")
        self.assertIn("sarif-schema-2.1.0", doc["$schema"])
        self.assertEqual(len(doc["runs"]), 1)
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        self.assertEqual(driver["name"], "erapid-analyze")
        rule_ids = [r["id"] for r in driver["rules"]]
        self.assertEqual(rule_ids, sorted(rule_ids))
        for result in run["results"]:
            self.assertIn(result["ruleId"], rule_ids)
            self.assertEqual(rule_ids[result["ruleIndex"]], result["ruleId"])
            self.assertIn(result["level"], ("note", "warning", "error"))
            loc = result["locations"][0]["physicalLocation"]
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
            self.assertIn("erapidAnalyze/v1", result["partialFingerprints"])
        self.assertIn("SRCROOT", run["originalUriBaseIds"])

        try:  # full schema validation when jsonschema + a local schema exist
            import jsonschema  # noqa: F401
        except ImportError:
            pass

    def test_baselined_findings_carry_suppressions(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            rc = erapid_analyze.main([str(FIXTURES / "bad_unit_mix.cpp"),
                                      "--root", str(REPO_ROOT),
                                      "--baseline", str(baseline),
                                      "--update-baseline"])
            self.assertEqual(rc, 0)
            rc, doc = self.sarif_for([FIXTURES / "bad_unit_mix.cpp"],
                                     extra=["--baseline", str(baseline)])
            self.assertEqual(rc, 0)  # fully baselined
            results = doc["runs"][0]["results"]
            self.assertTrue(results)
            for result in results:
                self.assertEqual(result["suppressions"][0]["kind"], "external")


class BaselineGate(unittest.TestCase):
    def test_update_then_rescan_is_clean(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            rc = erapid_analyze.main([str(FIXTURES), "--root", str(REPO_ROOT),
                                      "--baseline", str(baseline),
                                      "--update-baseline"])
            self.assertEqual(rc, 0)
            doc = json.loads(baseline.read_text())
            self.assertEqual(doc["schema"], "erapid-analyze-baseline-1")
            self.assertTrue(doc["findings"])

            rc, report = run_json([FIXTURES],
                                  extra=["--baseline", str(baseline)])
            self.assertEqual(rc, 0)
            self.assertTrue(all(f["baselined"] for f in report["findings"]))
            self.assertEqual(report["new_finding_count"], 0)

    def test_new_finding_fails_even_with_baseline(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            rc = erapid_analyze.main([str(FIXTURES / "bad_unit_mix.cpp"),
                                      "--root", str(REPO_ROOT),
                                      "--baseline", str(baseline),
                                      "--update-baseline"])
            self.assertEqual(rc, 0)
            rc, report = run_json([FIXTURES / "bad_unit_mix.cpp",
                                   FIXTURES / "bad_float_accum.cpp"],
                                  extra=["--baseline", str(baseline)])
            self.assertEqual(rc, 1)
            self.assertEqual(report["new_finding_count"], 1)

    def test_coverage_ratchet_blocks_regression(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = Path(td) / "baseline.json"
            # Record the ratchet at 1/1 (only the contracted fixture).
            rc = erapid_analyze.main([str(FIXTURES / "power" / "good_contracted.hpp"),
                                      "--root", str(REPO_ROOT),
                                      "--baseline", str(baseline),
                                      "--update-baseline"])
            self.assertEqual(rc, 0)
            # A scan whose coverage falls to 1/2 must trip the ratchet...
            rc, report = run_json([FIXTURES / "power"],
                                  extra=["--baseline", str(baseline)])
            self.assertEqual(rc, 1)
            self.assertTrue(report["ratchet_violations"])
            # ...and --update-baseline must refuse to lower the floor.
            rc = erapid_analyze.main([str(FIXTURES / "power"),
                                      "--root", str(REPO_ROOT),
                                      "--baseline", str(baseline),
                                      "--update-baseline"])
            self.assertEqual(rc, 1)
            recorded = json.loads(baseline.read_text())["contract_coverage"]
            self.assertEqual(recorded["power"],
                             {"contracted": 1, "considered": 1})


class SrcTreeGate(unittest.TestCase):
    def test_src_tree_is_clean_at_head(self):
        rc = erapid_analyze.main([str(REPO_ROOT / "src"),
                                  "--root", str(REPO_ROOT),
                                  "--baseline",
                                  str(REPO_ROOT / "tools" / "analyze" / "baseline.json")])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
