// Unit tests for the pluggable power scaling techniques (threshold,
// hysteresis, EWMA) — the paper's future-work evaluation surface.
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <optional>
#include <vector>

#include "reconfig/dpm_strategy.hpp"
#include "sim/simulation.hpp"

namespace {

using erapid::BoardId;
using erapid::WavelengthId;
using erapid::power::PowerLevel;
using erapid::reconfig::DpmPolicy;
using erapid::reconfig::DpmStrategyKind;
using erapid::reconfig::DpmStrategyParams;
using erapid::reconfig::EwmaDpm;
using erapid::reconfig::HysteresisDpm;
using erapid::reconfig::LaneObservation;
using erapid::reconfig::make_dpm_strategy;
using erapid::reconfig::ThresholdDpm;
using erapid::topology::LaneRef;

LaneObservation obs(double util, double buffer, PowerLevel level,
                    bool queue_empty = false, std::uint32_t w = 1) {
  LaneObservation o;
  o.lane = LaneRef{BoardId{1}, WavelengthId{w}};
  o.level = level;
  o.link_util = util;
  o.buffer_util = buffer;
  o.queue_empty = queue_empty;
  return o;
}

TEST(ThresholdStrategy, MatchesPaperRule) {
  ThresholdDpm s{DpmPolicy{}};
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), PowerLevel::Mid);
  EXPECT_EQ(s.decide(obs(0.95, 0.5, PowerLevel::Mid)), PowerLevel::High);
  EXPECT_EQ(s.decide(obs(0.8, 0.5, PowerLevel::Mid)), std::nullopt);
  EXPECT_EQ(s.decide(obs(0.0, 0.0, PowerLevel::Low, true)), PowerLevel::Off);
}

TEST(HysteresisStrategy, RequiresConsecutiveAgreement) {
  HysteresisDpm s{DpmPolicy{}, 3};
  // Two windows of "step down" -> still held back.
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), std::nullopt);
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), std::nullopt);
  // Third consecutive window -> applied.
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), PowerLevel::Mid);
}

TEST(HysteresisStrategy, DisagreementResetsStreak) {
  HysteresisDpm s{DpmPolicy{}, 2};
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), std::nullopt);   // down x1
  EXPECT_EQ(s.decide(obs(0.8, 0.0, PowerLevel::High)), std::nullopt);   // hold resets
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), std::nullopt);   // down x1
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), PowerLevel::Mid);
}

TEST(HysteresisStrategy, TracksLanesIndependently) {
  HysteresisDpm s{DpmPolicy{}, 2};
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High, false, 1)), std::nullopt);
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High, false, 2)), std::nullopt);
  // Lane 1's second window fires; lane 2 is still one short.
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High, false, 1)), PowerLevel::Mid);
}

TEST(HysteresisStrategy, WindowOneDegeneratesToThreshold) {
  HysteresisDpm s{DpmPolicy{}, 1};
  EXPECT_EQ(s.decide(obs(0.5, 0.0, PowerLevel::High)), PowerLevel::Mid);
}

TEST(EwmaStrategy, SmoothsSpikes) {
  EwmaDpm s{DpmPolicy{}, 0.3};
  // Prime at a healthy mid-band utilization.
  EXPECT_EQ(s.decide(obs(0.8, 0.2, PowerLevel::Mid)), std::nullopt);
  // One idle window: raw threshold would step down (0.0 < 0.7), the EWMA
  // (0.56) still sits... 0.56 < 0.7 steps down too — use a milder dip.
  EXPECT_EQ(s.decide(obs(0.65, 0.2, PowerLevel::Mid)), std::nullopt);  // ewma 0.755
}

TEST(EwmaStrategy, ConvergesToSustainedChange) {
  EwmaDpm s{DpmPolicy{}, 0.5};
  (void)s.decide(obs(0.9, 0.5, PowerLevel::Mid));
  // Sustained saturation: within a few windows the smoothed util crosses
  // l_max and the strategy steps up.
  std::optional<PowerLevel> decision;
  for (int i = 0; i < 5 && !decision; ++i) {
    decision = s.decide(obs(0.99, 0.6, PowerLevel::Mid));
  }
  EXPECT_EQ(decision, PowerLevel::High);
}

TEST(EwmaStrategy, DlsStillFiresAfterSustainedIdle) {
  EwmaDpm s{DpmPolicy{}, 0.5};
  (void)s.decide(obs(0.8, 0.2, PowerLevel::Low));
  std::optional<PowerLevel> decision;
  for (int i = 0; i < 10 && decision != std::optional{PowerLevel::Off}; ++i) {
    decision = s.decide(obs(0.0, 0.0, PowerLevel::Low, true));
  }
  EXPECT_EQ(decision, PowerLevel::Off);
}

// Determinism regression (DESIGN.md §7): stateful strategies key per-lane
// state by lane, and the order in which lanes are first observed must not
// leak into any lane's decision stream. This is what changing the state
// maps from unordered_map to std::map pins down — were iteration order ever
// used, the interleaving below would produce divergent decisions.
TEST(StatefulStrategies, DecisionsIndependentOfLaneInsertionOrder) {
  const std::uint32_t lanes[] = {7, 3, 11, 1, 5};
  constexpr int kWindows = 6;
  auto util_for = [](std::uint32_t lane, int window) {
    // Distinct per-lane trajectories crossing both thresholds.
    return (lane % 2 == 0 || window < 3) ? 0.5 : 0.95;
  };

  for (auto kind : {DpmStrategyKind::Hysteresis, DpmStrategyKind::Ewma}) {
    DpmStrategyParams params;
    params.hysteresis_windows = 2;
    params.ewma_alpha = 0.5;
    auto forward = make_dpm_strategy(kind, DpmPolicy{}, params);
    auto reversed = make_dpm_strategy(kind, DpmPolicy{}, params);

    // decisions[lane] collected with lanes visited in opposite orders.
    std::map<std::uint32_t, std::vector<std::optional<PowerLevel>>> fwd, rev;
    for (int w = 0; w < kWindows; ++w) {
      for (auto it = std::begin(lanes); it != std::end(lanes); ++it) {
        fwd[*it].push_back(forward->decide(obs(util_for(*it, w), 0.5, PowerLevel::Mid,
                                               false, *it)));
      }
      for (auto it = std::rbegin(lanes); it != std::rend(lanes); ++it) {
        rev[*it].push_back(reversed->decide(obs(util_for(*it, w), 0.5, PowerLevel::Mid,
                                                false, *it)));
      }
    }
    EXPECT_EQ(fwd, rev) << "lane order leaked into " << to_string(kind) << " decisions";
  }
}

TEST(Factory, BuildsEveryKind) {
  for (auto kind :
       {DpmStrategyKind::Threshold, DpmStrategyKind::Hysteresis, DpmStrategyKind::Ewma}) {
    auto s = make_dpm_strategy(kind, DpmPolicy{}, DpmStrategyParams{});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), to_string(kind));
  }
}

// End-to-end: each strategy keeps the network functional and power-aware.
class StrategySweep : public ::testing::TestWithParam<DpmStrategyKind> {};

TEST_P(StrategySweep, PowerAwareAndConservative) {
  erapid::sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.load_fraction = 0.3;
  o.warmup_cycles = 4000;
  o.measure_cycles = 6000;
  o.drain_limit = 40000;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();
  o.reconfig.dpm_strategy = GetParam();
  const auto r = erapid::sim::Simulation(o).run();
  EXPECT_TRUE(r.drained);
  EXPECT_NEAR(r.accepted_fraction, 0.3, 0.05);
  // All strategies must save power vs the 12-lane static burn (516 mW).
  EXPECT_LT(r.power_avg_mw, 12 * 43.03 * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Kinds, StrategySweep,
                         ::testing::Values(DpmStrategyKind::Threshold,
                                           DpmStrategyKind::Hysteresis,
                                           DpmStrategyKind::Ewma),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(StrategyEndToEnd, HysteresisReducesTransitionChurn) {
  erapid::sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.load_fraction = 0.45;
  o.warmup_cycles = 6000;
  o.measure_cycles = 10000;
  o.drain_limit = 40000;
  o.reconfig.mode = erapid::reconfig::NetworkMode::p_b();

  o.reconfig.dpm_strategy = DpmStrategyKind::Threshold;
  const auto base = erapid::sim::Simulation(o).run();
  o.reconfig.dpm_strategy = DpmStrategyKind::Hysteresis;
  o.reconfig.dpm_params.hysteresis_windows = 3;
  const auto hyst = erapid::sim::Simulation(o).run();
  EXPECT_LE(hyst.control.level_changes, base.control.level_changes);
}

}  // namespace
