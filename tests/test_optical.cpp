// Unit tests for the optical layer: lane state machine (DVS/DLS/
// transitions), receiver flow control, and the terminal scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "optical/lane.hpp"
#include "optical/receiver.hpp"
#include "optical/terminal.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "router/router.hpp"
#include "sim/network.hpp"
#include "tests_support.hpp"
#include "topology/config.hpp"

namespace {

using erapid::BoardId;
using erapid::Cycle;
using erapid::NodeId;
using erapid::WavelengthId;
using erapid::des::ClockDomain;
using erapid::des::Engine;
using erapid::optical::Lane;
using erapid::optical::Receiver;
using erapid::power::EnergyMeter;
using erapid::power::LinkPowerModel;
using erapid::power::PowerLevel;
using erapid::router::Packet;
using erapid::topology::LaneRef;
using erapid::topology::SystemConfig;

// Minimal rig (shared with the fuzz tests): a 1-input router with one
// ejection port, one receiver on that input, and one lane shooting
// packets at the receiver.
using LaneRig = erapid::test::LaneRig;

// ---- Lane state machine ---------------------------------------------------

TEST(Lane, StartsDisabledAndDark) {
  LaneRig rig;
  EXPECT_FALSE(rig.lane->enabled());
  EXPECT_EQ(rig.lane->level(), PowerLevel::Off);
  EXPECT_FALSE(rig.lane->available(0));
  EXPECT_FALSE(rig.lane->can_wake());
}

TEST(Lane, EnablePaysWakeTransition) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  EXPECT_TRUE(rig.lane->enabled());
  EXPECT_EQ(rig.lane->level(), PowerLevel::High);
  EXPECT_FALSE(rig.lane->available(0));   // paused for 65 cycles
  EXPECT_TRUE(rig.lane->paused(64));
  EXPECT_TRUE(rig.lane->available(65));
}

TEST(Lane, ReadyCallbackFiresAfterWake) {
  LaneRig rig;
  Cycle ready_at = 0;
  rig.lane->set_ready_callback([&](Cycle now) { ready_at = now; });
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(100);
  EXPECT_EQ(ready_at, 65u);
}

TEST(Lane, TransmitOccupiesSerializationTime) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  // 512 bits at 5 Gb/s = 41 cycles.
  EXPECT_TRUE(rig.lane->transmitting(65 + 40));
  EXPECT_FALSE(rig.lane->transmitting(65 + 41));
  EXPECT_FALSE(rig.lane->available(70));
  rig.engine.run_until(1000);
  ASSERT_EQ(rig.delivered.size(), 1u);
}

TEST(Lane, DeliveryIncludesFiberDelay) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  // Arrival at receiver = 65 + 41 (serialization) + 8 (fiber); then the
  // packet must still cross the RX injector and router before ejecting.
  rig.engine.run_until(65 + 41 + 8 - 1);
  EXPECT_EQ(rig.rx->packets_received(), 0u);
  rig.engine.run_until(65 + 41 + 8);
  EXPECT_EQ(rig.rx->packets_received(), 1u);
}

TEST(Lane, SlowerLevelsSerializeLonger) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::Low);  // 2.5 Gb/s -> 82 cycles
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  EXPECT_TRUE(rig.lane->transmitting(65 + 81));
  EXPECT_FALSE(rig.lane->transmitting(65 + 82));
}

TEST(Lane, BusyCounterTracksSerialization) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  EXPECT_EQ(rig.lane->busy_counter().busy_cycles(), 41u);
}

TEST(Lane, LevelChangeWhenIdleAppliesWithPause) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(100);
  rig.lane->request_level(PowerLevel::Low, 100);
  EXPECT_EQ(rig.lane->level(), PowerLevel::Low);
  EXPECT_FALSE(rig.lane->available(100));      // 65-cycle voltage transition
  EXPECT_TRUE(rig.lane->available(165));
  EXPECT_EQ(rig.lane->transitions(), 2u);      // wake + DVS
}

TEST(Lane, LevelChangeMidPacketDefersToCompletion) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  rig.lane->request_level(PowerLevel::Mid, 70);
  EXPECT_EQ(rig.lane->level(), PowerLevel::High);  // still the old level
  rig.engine.run_until(65 + 41);                   // packet completes
  EXPECT_EQ(rig.lane->level(), PowerLevel::Mid);
}

TEST(Lane, DisableWhenIdleIsImmediate) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(100);
  Cycle dark_at = 0;
  rig.lane->disable(100, [&](Cycle now) { dark_at = now; });
  EXPECT_FALSE(rig.lane->enabled());
  EXPECT_EQ(rig.lane->level(), PowerLevel::Off);
  EXPECT_EQ(dark_at, 100u);
}

TEST(Lane, DisableMidPacketDrainsFirst) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  ASSERT_TRUE(rig.lane->try_transmit(LaneRig::packet(1), 65));
  Cycle dark_at = 0;
  rig.lane->disable(70, [&](Cycle now) { dark_at = now; });
  EXPECT_TRUE(rig.lane->enabled());  // still draining
  rig.engine.run_until(200);
  EXPECT_FALSE(rig.lane->enabled());
  EXPECT_EQ(dark_at, 65u + 41u);
  ASSERT_EQ(rig.delivered.size(), 1u);  // in-flight packet was not lost
}

TEST(Lane, PowerAccountingFollowsLevel) {
  LaneRig rig;
  EXPECT_DOUBLE_EQ(rig.meter.instantaneous_mw().value(), 0.0);
  rig.lane->enable(0, PowerLevel::High);
  EXPECT_DOUBLE_EQ(rig.meter.instantaneous_mw().value(), 43.03);
  rig.engine.run_until(100);
  rig.lane->request_level(PowerLevel::Low, 100);
  EXPECT_NEAR(rig.meter.instantaneous_mw().value(), 8.60, 1e-9);
  rig.lane->disable(100);
  EXPECT_NEAR(rig.meter.instantaneous_mw().value(), 0.0, 1e-9);
}

TEST(Lane, TransmitWhilePausedRefused) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  EXPECT_FALSE(rig.lane->try_transmit(LaneRig::packet(1), 10));
}

TEST(Lane, DvsOnForeignLaneThrows) {
  LaneRig rig;
  EXPECT_THROW(rig.lane->request_level(PowerLevel::Low, 0), erapid::ModelInvariantError);
  EXPECT_THROW(rig.lane->disable(0), erapid::ModelInvariantError);
}

// ---- Receiver flow control -------------------------------------------------

TEST(Receiver, ReservationsBoundedByCapacity) {
  LaneRig rig;
  const auto cap = rig.rx->capacity();
  for (std::uint32_t i = 0; i < cap; ++i) EXPECT_TRUE(rig.rx->reserve_slot());
  EXPECT_FALSE(rig.rx->reserve_slot());
  EXPECT_EQ(rig.rx->free_slots(), 0u);
}

TEST(Receiver, DeliveryWithoutReservationThrows) {
  LaneRig rig;
  EXPECT_THROW(rig.rx->deliver(LaneRig::packet(1), 0), erapid::ModelInvariantError);
}

TEST(Receiver, SlotFreedAfterPacketEntersRouter) {
  LaneRig rig;
  int freed = 0;
  rig.rx->set_slot_freed_callback([&](Cycle) { ++freed; });
  ASSERT_TRUE(rig.rx->reserve_slot());
  rig.rx->deliver(LaneRig::packet(1), 0);
  rig.engine.run_until(500);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(rig.rx->free_slots(), rig.rx->capacity());
  EXPECT_EQ(rig.delivered.size(), 1u);
}

TEST(Receiver, BackpressuresLaneWhenFull) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  rig.engine.run_until(65);
  // Exhaust RX slots by reserving them out-of-band.
  for (std::uint32_t i = 0; i < rig.rx->capacity(); ++i) {
    ASSERT_TRUE(rig.rx->reserve_slot());
  }
  EXPECT_FALSE(rig.lane->try_transmit(LaneRig::packet(1), 65));
}

// ---- Terminal scheduler through a tiny network ------------------------------

struct NetRig {
  SystemConfig cfg;
  erapid::reconfig::ReconfigConfig rc;
  Engine engine;
  std::unique_ptr<erapid::sim::Network> net;
  std::vector<Packet> delivered;

  explicit NetRig(std::uint32_t boards = 2, std::uint32_t nodes = 2) {
    cfg.boards = boards;
    cfg.nodes_per_board = nodes;
    net = std::make_unique<erapid::sim::Network>(engine, cfg, rc);
    net->set_delivery_callback([this](const Packet& p, Cycle) { delivered.push_back(p); });
    net->start();
  }

  Packet packet(std::uint64_t seq, std::uint32_t src, std::uint32_t dst) {
    Packet p;
    p.seq = seq;
    p.src = NodeId{src};
    p.dst = NodeId{dst};
    p.flits = cfg.packet_flits;
    p.created = engine.now();
    return p;
  }
};

TEST(Terminal, LocalPacketNeverTouchesOptical) {
  NetRig rig;
  rig.net->inject(rig.packet(1, 0, 1), 0);  // both on board 0
  rig.engine.run_until(2000);
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.net->receiver(BoardId{0}, WavelengthId{1}).packets_received(), 0u);
  EXPECT_EQ(rig.net->receiver(BoardId{1}, WavelengthId{1}).packets_received(), 0u);
}

TEST(Terminal, RemotePacketCrossesitsStaticLane) {
  NetRig rig;
  rig.net->inject(rig.packet(1, 0, 2), 0);  // board 0 -> board 1
  rig.engine.run_until(5000);
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[0].seq, 1u);
  // Static RWA for B=2: board 0 -> board 1 uses wavelength (0-1) mod 2 = 1.
  EXPECT_EQ(rig.net->receiver(BoardId{1}, WavelengthId{1}).packets_received(), 1u);
}

TEST(Terminal, ManyPacketsAllDelivered) {
  NetRig rig(4, 2);
  std::uint64_t seq = 1;
  for (std::uint32_t src = 0; src < rig.cfg.num_nodes(); ++src) {
    for (std::uint32_t dst = 0; dst < rig.cfg.num_nodes(); ++dst) {
      if (src == dst) continue;
      rig.net->inject(rig.packet(seq++, src, dst), 0);
    }
  }
  rig.engine.run_until(100000);
  EXPECT_EQ(rig.delivered.size(), seq - 1);
}

TEST(Terminal, FlowQueueDrainsInOrderPerFlow) {
  NetRig rig;
  for (std::uint64_t i = 0; i < 10; ++i) rig.net->inject(rig.packet(i + 1, 0, 2), 0);
  rig.engine.run_until(50000);
  ASSERT_EQ(rig.delivered.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(rig.delivered[i].seq, i + 1);
}

TEST(Terminal, GrantedSecondLaneIncreasesConcurrency) {
  NetRig rig;
  auto& lm = rig.net->lane_map();
  // Give board 0 the dark λ0 lane toward board 1 (in addition to λ1).
  lm.grant(BoardId{1}, WavelengthId{0}, BoardId{0});
  rig.net->terminal(BoardId{0}).apply_grant(BoardId{1}, WavelengthId{0},
                                            PowerLevel::High, 0);
  for (std::uint64_t i = 0; i < 8; ++i) rig.net->inject(rig.packet(i + 1, 0, 2), 0);
  rig.engine.run_until(50000);
  EXPECT_EQ(rig.delivered.size(), 8u);
  // Both wavelength receivers saw traffic (scheduler spread the flow).
  EXPECT_GT(rig.net->receiver(BoardId{1}, WavelengthId{0}).packets_received(), 0u);
  EXPECT_GT(rig.net->receiver(BoardId{1}, WavelengthId{1}).packets_received(), 0u);
}

TEST(Terminal, HarvestReportsUtilization) {
  NetRig rig;
  for (std::uint64_t i = 0; i < 4; ++i) rig.net->inject(rig.packet(i + 1, 0, 2), 0);
  rig.engine.run_until(2000);
  std::vector<erapid::optical::LaneSnapshot> lanes;
  std::vector<erapid::optical::FlowSnapshot> flows;
  rig.net->terminal(BoardId{0}).harvest(0, 2000, lanes, flows);
  // One remote board -> one flow entry, W lane entries.
  ASSERT_EQ(flows.size(), 1u);
  ASSERT_EQ(lanes.size(), rig.cfg.num_wavelengths());
  bool some_util = false;
  for (const auto& l : lanes) some_util = some_util || l.link_util > 0.0;
  EXPECT_TRUE(some_util);
}

}  // namespace
