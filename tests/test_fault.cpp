// Fault-injection subsystem tests: FaultPlan parsing/validation, lane
// failure eviction + in-flight re-homing, Lock-Step control-loss retry
// bounds, laser degradation, and the headline recovery property — a
// single lane failure under uniform load is absorbed by DBR within a
// bounded number of reconfiguration windows at negligible throughput cost.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/simulation.hpp"
#include "util/expect.hpp"

namespace {

using namespace erapid;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

// ---- spec grammar -----------------------------------------------------------

TEST(FaultSpec, LaneFailRoundTrip) {
  const auto e = FaultEvent::parse("lane_fail@5000:d2:w1");
  EXPECT_EQ(e.kind, FaultKind::LaneFail);
  EXPECT_EQ(e.at, 5000u);
  EXPECT_EQ(e.dest, BoardId{2});
  EXPECT_EQ(e.wavelength, WavelengthId{1});
  EXPECT_EQ(e.format(), "lane_fail@5000:d2:w1");
  EXPECT_EQ(FaultEvent::parse(e.format()), e);
}

TEST(FaultSpec, LaserDegradeRoundTrip) {
  const auto e = FaultEvent::parse("laser_degrade@8000:d3:w2:low:4000");
  EXPECT_EQ(e.kind, FaultKind::LaserDegrade);
  EXPECT_EQ(e.at, 8000u);
  EXPECT_EQ(e.cap, power::PowerLevel::Low);
  EXPECT_EQ(e.duration, 4000u);
  EXPECT_EQ(e.format(), "laser_degrade@8000:d3:w2:low:4000");
  const auto mid = FaultEvent::parse("laser_degrade@1:d0:w1:mid:0");
  EXPECT_EQ(mid.cap, power::PowerLevel::Mid);
  EXPECT_EQ(mid.duration, 0u);  // until end of run
}

TEST(FaultSpec, CtrlDropRoundTrip) {
  const auto e = FaultEvent::parse("ctrl_drop@6000:ring:b1:n2");
  EXPECT_EQ(e.kind, FaultKind::CtrlDrop);
  EXPECT_EQ(e.target, fault::CtrlTarget::Ring);
  EXPECT_EQ(e.board, BoardId{1});
  EXPECT_EQ(e.count, 2u);
  EXPECT_EQ(e.format(), "ctrl_drop@6000:ring:b1:n2");
  // Implicit count of 1 stays implicit on format.
  const auto one = FaultEvent::parse("ctrl_drop@7000:chain:b0");
  EXPECT_EQ(one.target, fault::CtrlTarget::Chain);
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.format(), "ctrl_drop@7000:chain:b0");
}

TEST(FaultSpec, TransientLaneFailRoundTrip) {
  const auto e = FaultEvent::parse("lane_fail@5000:d2:w1:r9000");
  EXPECT_EQ(e.kind, FaultKind::LaneFail);
  EXPECT_EQ(e.at, 5000u);
  EXPECT_EQ(e.repair_at, 9000u);
  EXPECT_EQ(e.format(), "lane_fail@5000:d2:w1:r9000");
  EXPECT_EQ(FaultEvent::parse(e.format()), e);
  // No repair suffix means permanent (repair_at stays 0, format untouched).
  const auto perm = FaultEvent::parse("lane_fail@5000:d2:w1");
  EXPECT_EQ(perm.repair_at, 0u);
  EXPECT_EQ(perm.format(), "lane_fail@5000:d2:w1");
}

TEST(FaultSpec, BitErrorRoundTrip) {
  const auto e = FaultEvent::parse("bit_error@4500:d2:w2:p0.0005:6000");
  EXPECT_EQ(e.kind, FaultKind::BitError);
  EXPECT_EQ(e.at, 4500u);
  EXPECT_EQ(e.dest, BoardId{2});
  EXPECT_EQ(e.wavelength, WavelengthId{2});
  EXPECT_DOUBLE_EQ(e.ber, 0.0005);
  EXPECT_EQ(e.duration, 6000u);
  EXPECT_EQ(FaultEvent::parse(e.format()), e);
  // Duration 0 = until end of run; BER of exactly 1 is legal.
  const auto full = FaultEvent::parse("bit_error@1:d0:w1:p1:0");
  EXPECT_DOUBLE_EQ(full.ber, 1.0);
  EXPECT_EQ(full.duration, 0u);
  EXPECT_EQ(FaultEvent::parse(full.format()), full);
}

TEST(FaultSpec, RcCrashRoundTrip) {
  const auto e = FaultEvent::parse("rc_crash@7000:b2:r11000");
  EXPECT_EQ(e.kind, FaultKind::RcCrash);
  EXPECT_EQ(e.at, 7000u);
  EXPECT_EQ(e.board, BoardId{2});
  EXPECT_EQ(e.repair_at, 11000u);
  EXPECT_EQ(e.format(), "rc_crash@7000:b2:r11000");
  EXPECT_EQ(FaultEvent::parse(e.format()), e);
  const auto perm = FaultEvent::parse("rc_crash@7000:b2");
  EXPECT_EQ(perm.repair_at, 0u);
  EXPECT_EQ(perm.format(), "rc_crash@7000:b2");
}

TEST(FaultSpec, CrossFieldValidationAtParseTime) {
  // Repair must come strictly after injection.
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:d2:w1:r5000"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:d2:w1:r4999"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("rc_crash@5000:b1:r100"), ModelInvariantError);
  // BER outside (0, 1] is rejected where it is written, not at first use.
  EXPECT_THROW((void)FaultEvent::parse("bit_error@1:d0:w1:p0:100"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("bit_error@1:d0:w1:p1.5:100"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("bit_error@1:d0:w1:pabc:100"), ModelInvariantError);
}

TEST(FaultSpec, DuplicateSameCycleSameTargetRejected) {
  // Two events of one kind on one target at one cycle is an author error.
  EXPECT_THROW((void)FaultPlan::parse_events("lane_fail@1:d1:w1 lane_fail@1:d1:w1"),
               ModelInvariantError);
  EXPECT_THROW(
      (void)FaultPlan::parse_events("ctrl_drop@5:ring:b1 ctrl_drop@5:ring:b1:n3"),
      ModelInvariantError);
  EXPECT_THROW((void)FaultPlan::parse_events("rc_crash@9:b0 rc_crash@9:b0:r99"),
               ModelInvariantError);
  // Different cycle, different target, or different medium is fine.
  EXPECT_NO_THROW((void)FaultPlan::parse_events("lane_fail@1:d1:w1 lane_fail@2:d1:w1"));
  EXPECT_NO_THROW((void)FaultPlan::parse_events("lane_fail@1:d1:w1 lane_fail@1:d1:w2"));
  EXPECT_NO_THROW(
      (void)FaultPlan::parse_events("ctrl_drop@5:ring:b1 ctrl_drop@5:chain:b1"));
  // validate() re-checks a plan assembled programmatically (no parser ran).
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  FaultPlan plan;
  plan.events.push_back(FaultEvent::parse("lane_fail@1:d1:w1"));
  plan.events.push_back(FaultEvent::parse("lane_fail@1:d1:w1"));
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultEvent::parse("lane_fail5000:d2:w1"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@:d2:w1"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:d2"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:w1:d2"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:d2:w1:extra"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("laser_degrade@1:d0:w1:off:100"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("laser_degrade@1:d0:w1:low"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("ctrl_drop@1:bus:b0"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("ctrl_drop@1:ring:b0:n0"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("meteor_strike@1:d0:w0"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@50x0:d2:w1"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("lane_fail@5000:d2:w1:9000"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("bit_error@1:d0:w1:p0.5"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("bit_error@1:d0:w1:0.5:100"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("rc_crash@1"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("rc_crash@1:d0"), ModelInvariantError);
  EXPECT_THROW((void)FaultEvent::parse("rc_crash@1:b0:r2:x"), ModelInvariantError);
}

TEST(FaultSpec, ListParsingAcceptsMixedSeparators) {
  const auto plan = FaultPlan::parse_events(
      "lane_fail@1:d1:w1, lane_fail@2:d2:w2;\tctrl_drop@3:ring:b0");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].at, 1u);
  EXPECT_EQ(plan.events[2].kind, FaultKind::CtrlDrop);
  EXPECT_EQ(plan.format_events(),
            "lane_fail@1:d1:w1 lane_fail@2:d2:w2 ctrl_drop@3:ring:b0");
  EXPECT_TRUE(FaultPlan::parse_events("").empty());
  EXPECT_TRUE(FaultPlan::parse_events("  \t ").empty());
}

TEST(FaultSpec, ValidateRejectsOutOfRangeEvents) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  auto plan = FaultPlan::parse_events("lane_fail@1:d9:w1");
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
  plan = FaultPlan::parse_events("lane_fail@1:d1:w9");
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
  plan = FaultPlan::parse_events("ctrl_drop@1:ring:b4");
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
  plan = FaultPlan::parse_events("bit_error@1:d9:w1:p0.5:0");
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
  plan = FaultPlan::parse_events("rc_crash@1:b9");
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
  plan = FaultPlan::parse_events("lane_fail@1:d3:w3");
  EXPECT_NO_THROW(plan.validate(cfg));
  plan.ctrl_drop_prob = 1.5;
  EXPECT_THROW(plan.validate(cfg), ModelInvariantError);
}

TEST(FaultPlanBasics, EmptySemantics) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.ctrl_drop_prob = 0.1;
  EXPECT_FALSE(plan.empty());
  plan.ctrl_drop_prob = 0.0;
  plan.events.push_back(FaultEvent::parse("lane_fail@1:d1:w1"));
  EXPECT_FALSE(plan.empty());
}

// ---- simulation-level fault behaviour ---------------------------------------

sim::SimOptions small_options() {
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.reconfig.mode = reconfig::NetworkMode::p_b();
  o.load_fraction = 0.3;
  o.seed = 1;
  o.warmup_cycles = 12000;
  o.measure_cycles = 12000;
  o.drain_limit = 60000;
  return o;
}

TEST(LaneFailure, EvictsLaneFromMapPermanently) {
  auto o = small_options();
  // Static owner of (d1, w1) is board 2 — an owned, lit lane.
  o.fault = FaultPlan::parse_events("lane_fail@2000:d1:w1");
  sim::Simulation s(o);
  const auto r = s.run();

  auto& map = s.network().lane_map();
  EXPECT_TRUE(map.is_failed(BoardId{1}, WavelengthId{1}));
  EXPECT_FALSE(map.owner(BoardId{1}, WavelengthId{1}).valid());
  EXPECT_EQ(map.failed_count(), 1u);
  EXPECT_EQ(r.fault.lanes_failed, 1u);
  EXPECT_TRUE(r.fault.any());
  // Granting the dead lane again must be fatal.
  EXPECT_THROW(map.grant(BoardId{1}, WavelengthId{1}, BoardId{3}), ModelInvariantError);
}

TEST(LaneFailure, DoubleFailureIsIdempotent) {
  auto o = small_options();
  o.fault = FaultPlan::parse_events("lane_fail@2000:d1:w1 lane_fail@2500:d1:w1");
  sim::Simulation s(o);
  const auto r = s.run();
  EXPECT_EQ(r.fault.lanes_failed, 1u);
  EXPECT_EQ(s.network().lane_map().failed_count(), 1u);
}

// The acceptance property: one dead lane under uniform load is re-homed by
// the DBR plane within a bounded number of reconfiguration windows, and
// measured throughput stays within 5% of the fault-free run.
TEST(LaneFailure, SingleFailureRecoversWithinBoundedWindows) {
  const auto o_clean = small_options();
  const auto clean = sim::Simulation(o_clean).run();

  auto o = small_options();
  o.fault = FaultPlan::parse_events("lane_fail@2000:d1:w1");
  sim::Simulation s(o);
  const auto r = s.run();

  // The victim flow (board 2 → board 1) was granted a replacement lane…
  EXPECT_EQ(r.fault.reroutes_completed, 1u);
  EXPECT_EQ(r.fault.reroutes_pending, 0u);
  // …within a bounded number of reconfiguration windows (DBR runs every
  // other window in P-B; allow a conservative 8).
  EXPECT_LE(r.fault.worst_time_to_reroute, 8 * o.reconfig.window);
  EXPECT_GT(r.fault.worst_time_to_reroute, 0u);
  EXPECT_GE(s.network().lane_map().lane_count(BoardId{2}, BoardId{1}), 1u);

  // Throughput within 5% of fault-free, and every labelled packet arrived.
  EXPECT_TRUE(r.drained);
  EXPECT_GE(r.accepted_fraction, 0.95 * clean.accepted_fraction);
}

TEST(LaneFailure, InFlightPacketIsRehomedNotLost) {
  // At a moderate load the lane is serializing almost continuously, so a
  // mid-measurement failure aborts an in-flight packet; it must be
  // re-queued and still delivered (conservation holds).
  auto o = small_options();
  o.load_fraction = 0.5;
  o.fault = FaultPlan::parse_events("lane_fail@15000:d1:w1");
  sim::Simulation s(o);
  const auto r = s.run();
  EXPECT_EQ(r.fault.lanes_failed, 1u);
  EXPECT_TRUE(r.drained) << "a re-homed packet was lost";
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
}

TEST(LaneFailure, AllLanesOfOneBoardDegradeWithoutDeadlock) {
  // Kill every lane into board 1's coupler (w0 is the dark self slot; w1-w3
  // carry the three remote flows). Nothing can reach board 1 anymore: the
  // run must still terminate cleanly — queues back up, the drain cap hits,
  // and no invariant trips.
  auto o = small_options();
  o.warmup_cycles = 2000;
  o.measure_cycles = 4000;
  o.drain_limit = 12000;
  o.fault = FaultPlan::parse_events(
      "lane_fail@3000:d1:w0 lane_fail@3000:d1:w1 lane_fail@3000:d1:w2 "
      "lane_fail@3000:d1:w3");
  sim::Simulation s(o);
  const auto r = s.run();

  EXPECT_EQ(r.fault.lanes_failed, 4u);
  EXPECT_EQ(s.network().lane_map().failed_count(), 4u);
  EXPECT_FALSE(r.drained);  // labelled packets to board 1 can never arrive
  EXPECT_GT(r.fault.reroutes_pending, 0u);  // no lane toward d1 can be granted
  EXPECT_GT(r.packets_delivered_measured, 0u);  // other flows kept moving
  EXPECT_EQ(r.end_cycle, o.warmup_cycles + o.measure_cycles + o.drain_limit);
}

TEST(LaserDegrade, CapsAndRestores) {
  auto o = small_options();
  o.load_fraction = 0.4;
  o.fault = FaultPlan::parse_events("laser_degrade@4000:d1:w1:low:6000");
  sim::Simulation s(o);
  const auto r = s.run();
  EXPECT_EQ(r.fault.lanes_degraded, 1u);
  EXPECT_EQ(r.fault.lanes_failed, 0u);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
}

// ---- control-packet loss ----------------------------------------------------

TEST(CtrlLoss, RingDropsRetryWithinBudget) {
  auto o = small_options();
  // Two consecutive losses of board 1's ring circulation: both retried,
  // no timeout.
  o.fault = FaultPlan::parse_events("ctrl_drop@3000:ring:b1:n2");
  const auto r = sim::Simulation(o).run();
  EXPECT_EQ(r.fault.ctrl_drops, 2u);
  EXPECT_EQ(r.fault.ctrl_retries, 2u);
  EXPECT_EQ(r.fault.ctrl_timeouts, 0u);
  EXPECT_TRUE(r.drained);
}

TEST(CtrlLoss, RetriesAreBoundedThenBoardSitsOut) {
  auto o = small_options();
  const std::uint32_t limit = o.reconfig.ctrl_retry_limit;
  // One more loss than the retry budget: `limit` losses are recovered by a
  // retransmission each; the final loss exhausts the budget and is booked
  // separately (ctrl_exhausted, plus the window timeout) rather than as a
  // recovered drop.
  o.fault = FaultPlan::parse_events("ctrl_drop@3000:ring:b1:n" +
                                    std::to_string(limit + 1));
  const auto r = sim::Simulation(o).run();
  EXPECT_EQ(r.fault.ctrl_drops, limit);
  EXPECT_EQ(r.fault.ctrl_retries, limit);
  EXPECT_EQ(r.fault.ctrl_timeouts, 1u);
  EXPECT_EQ(r.fault.ctrl_exhausted, 1u);
  EXPECT_TRUE(r.drained) << "a sat-out window must not lose packets";
}

TEST(CtrlLoss, ChainDropsHitThePowerCycle) {
  auto o = small_options();
  o.fault = FaultPlan::parse_events("ctrl_drop@3000:chain:b0");
  const auto r = sim::Simulation(o).run();
  EXPECT_EQ(r.fault.ctrl_drops, 1u);
  EXPECT_EQ(r.fault.ctrl_retries, 1u);
  EXPECT_EQ(r.fault.ctrl_timeouts, 0u);
}

TEST(CtrlLoss, RandomLossIsSeedDeterministic) {
  auto o = small_options();
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.fault.ctrl_drop_prob = 0.2;
  o.fault.seed = 7;
  const auto a = sim::Simulation(o).run();
  const auto b = sim::Simulation(o).run();
  EXPECT_GT(a.fault.ctrl_drops, 0u);
  EXPECT_EQ(a.fault.ctrl_drops, b.fault.ctrl_drops);
  EXPECT_EQ(a.fault.ctrl_timeouts, b.fault.ctrl_timeouts);
  EXPECT_EQ(a.packets_delivered_measured, b.packets_delivered_measured);
  EXPECT_DOUBLE_EQ(a.latency_avg, b.latency_avg);

  // A different fault seed changes the loss pattern but not the workload
  // (the fault stream is independent of the traffic RNG).
  auto o2 = o;
  o2.fault.seed = 8;
  const auto c = sim::Simulation(o2).run();
  EXPECT_EQ(c.packets_generated, a.packets_generated);
}

// ---- no-fault inertness -----------------------------------------------------

TEST(NoFaultPlan, StatsStayZeroAndInert) {
  auto o = small_options();
  o.warmup_cycles = 2000;
  o.measure_cycles = 4000;
  const auto r = sim::Simulation(o).run();
  EXPECT_FALSE(r.fault.any());
  EXPECT_EQ(r.fault.lanes_failed, 0u);
  EXPECT_EQ(r.fault.ctrl_drops, 0u);
  EXPECT_EQ(r.control.stale_directives, 0u);
  EXPECT_EQ(r.fault.degraded_windows, 0u);
}

}  // namespace
