#!/usr/bin/env python3
"""Self-test for tools/campaign/campaign.py (CTest: campaign.self_test).

Covers the campaign driver's contract: spec expansion follows the canonical
nested-loop order, the merged artifact lists points in spec order regardless
of completion order, a crashing worker yields a failed point record without
sinking the campaign, and — when the erapid_campaign binary is available —
-j1 and -j2 runs of a tiny grid produce byte-identical artifacts that match
the committed golden (tests/data/golden_campaign_small.json, regenerated
with ERAPID_REGEN_GOLDEN=1).
"""

import json
import os
import stat
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "tools" / "campaign"))
import campaign  # noqa: E402

GOLDEN_PATH = TESTS_DIR / "data" / "golden_campaign_small.json"

# The tiny grid used for the golden / parallel-identity test. Short windows
# keep the whole thing to a few seconds; --no-wall plus a pinned git rev
# make the artifact fully deterministic.
GOLDEN_SPEC = {
    "name": "small",
    "patterns": ["uniform", "shuffle"],
    "modes": ["P-B", "NP-NB"],
    "loads": [0.3],
    "seeds": [1],
    "overrides": [
        {
            "workload.warmup_cycles": 1000,
            "workload.measure_cycles": 2000,
            "workload.drain_limit": 30000,
        }
    ],
}


def campaign_binary():
    """Path to erapid_campaign, or None if it has not been built."""
    env = os.environ.get("ERAPID_CAMPAIGN_BIN")
    candidates = [env] if env else []
    candidates.append(str(REPO_ROOT / "build" / "tools" / "campaign" / "erapid_campaign"))
    for cand in candidates:
        if cand and os.path.isfile(cand) and os.access(cand, os.X_OK):
            return cand
    return None


def write_script(directory, name, body):
    """Drops an executable shell script (a stand-in worker) into directory."""
    path = Path(directory) / name
    path.write_text("#!/bin/sh\n" + body)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class ExpandPointsTest(unittest.TestCase):
    def test_canonical_nested_loop_order(self):
        spec = {
            "name": "t",
            "patterns": ["a", "b"],
            "modes": ["M1", "M2"],
            "loads": [0.1, 0.2],
            "seeds": [1, 2],
        }
        points = campaign.expand_points(spec)
        self.assertEqual(len(points), 16)
        # Innermost axis (seeds) varies fastest, outermost (patterns,
        # since there is only one overrides entry) slowest.
        self.assertEqual(
            [(p["pattern"], p["mode"], p["load"], p["seed"]) for p in points[:4]],
            [("a", "M1", 0.1, 1), ("a", "M1", 0.1, 2), ("a", "M1", 0.2, 1), ("a", "M1", 0.2, 2)],
        )
        self.assertEqual(points[-1]["pattern"], "b")
        self.assertTrue(all(p["overrides"] == {} for p in points))

    def test_overrides_axis_is_outermost(self):
        spec = {
            "name": "t",
            "patterns": ["a"],
            "modes": ["M"],
            "loads": [0.5],
            "seeds": [1],
            "overrides": [{}, {"workload.warmup_cycles": 9}],
        }
        points = campaign.expand_points(spec)
        self.assertEqual(len(points), 2)
        self.assertEqual(points[0]["overrides"], {})
        self.assertEqual(points[1]["overrides"], {"workload.warmup_cycles": 9})

    def test_missing_required_key_raises(self):
        with self.assertRaises(ValueError):
            campaign.expand_points({"name": "t", "patterns": [], "modes": [], "loads": []})

    def test_malformed_overrides_raises(self):
        spec = {
            "name": "t", "patterns": ["a"], "modes": ["M"], "loads": [0.5],
            "seeds": [1], "overrides": {"not": "a list"},
        }
        with self.assertRaises(ValueError):
            campaign.expand_points(spec)


class WorkerArgvTest(unittest.TestCase):
    def test_all_flags_use_equals_spelling(self):
        point = {
            "pattern": "uniform", "mode": "P-B", "load": 0.3, "seed": 7,
            "overrides": {"b.k": "2", "a.k": "1"},
        }
        argv = campaign.worker_argv("/bin/worker", point, config="base.ini", no_wall=True)
        self.assertEqual(
            argv,
            [
                "/bin/worker", "--pattern=uniform", "--mode=P-B", "--load=0.3",
                "--seed=7", "--config=base.ini", "--no-wall=1", "a.k=1", "b.k=2",
            ],
        )
        # No bare flags: a bare --flag would swallow the next positional.
        for tok in argv[1:]:
            self.assertIn("=", tok)


class MergeTest(unittest.TestCase):
    def test_counts_and_wall_aggregates(self):
        spec = {"name": "t"}
        records = [
            {"pattern": "a", "mode": "M", "load": 0.1, "seed": 1, "wall_ms": 10.0},
            {"pattern": "a", "mode": "M", "load": 0.1, "seed": 2, "failed": True,
             "error": "boom"},
            {"pattern": "a", "mode": "M", "load": 0.2, "seed": 1, "wall_ms": 25.0},
        ]
        doc = campaign.merge(spec, records, "rev123")
        self.assertEqual(doc["schema"], "erapid-bench-1")
        self.assertEqual(doc["bench"], "campaign:t")
        self.assertEqual(doc["git_rev"], "rev123")
        self.assertEqual(doc["points_total"], 3)
        self.assertEqual(doc["points_failed"], 1)
        self.assertEqual(doc["wall_ms_sum"], 35.0)
        self.assertEqual(doc["wall_ms_max"], 25.0)
        # Points keep their input order — merge never reorders.
        self.assertEqual([r.get("seed") for r in doc["points"]], [1, 2, 1])


class StubWorkerTest(unittest.TestCase):
    """Driver behavior against stand-in workers (no simulator needed)."""

    def run_stub_campaign(self, body, jobs=2):
        spec = {
            "name": "stub", "patterns": ["a", "b"], "modes": ["M"],
            "loads": [0.5], "seeds": [1, 2],
        }
        with tempfile.TemporaryDirectory() as tmp:
            binary = write_script(tmp, "worker.sh", body)
            return campaign.run_campaign(spec, binary, jobs=jobs, spec_dir=tmp)

    def test_spec_order_merge_with_completion_order_scrambled(self):
        # Workers that sleep longer for earlier points finish in reverse;
        # the artifact must still list points in spec order. The worker
        # echoes its own --seed back so order is observable.
        body = (
            'seed=$(echo "$@" | sed -n "s/.*--seed=\\([0-9]*\\).*/\\1/p")\n'
            'pat=$(echo "$@" | sed -n "s/.*--pattern=\\([a-z]*\\).*/\\1/p")\n'
            'if [ "$pat" = "a" ]; then sleep 0.3; fi\n'
            'echo "{\\"pattern\\": \\"$pat\\", \\"mode\\": \\"M\\",'
            ' \\"load\\": 0.5, \\"seed\\": $seed, \\"wall_ms\\": 0}"\n'
        )
        doc = self.run_stub_campaign(body, jobs=4)
        self.assertEqual(doc["points_failed"], 0)
        self.assertEqual(
            [(p["pattern"], p["seed"]) for p in doc["points"]],
            [("a", 1), ("a", 2), ("b", 1), ("b", 2)],
        )

    def test_crashing_worker_becomes_failed_point(self):
        body = (
            'if echo "$@" | grep -q -- "--pattern=b"; then\n'
            '  echo "worker blew up" >&2; exit 3\n'
            'fi\n'
            'echo "{\\"pattern\\": \\"a\\", \\"mode\\": \\"M\\", \\"load\\": 0.5,'
            ' \\"seed\\": 1, \\"wall_ms\\": 0}"\n'
        )
        doc = self.run_stub_campaign(body)
        self.assertEqual(doc["points_total"], 4)
        self.assertEqual(doc["points_failed"], 2)
        failed = [p for p in doc["points"] if p.get("failed")]
        self.assertEqual(len(failed), 2)
        for rec in failed:
            self.assertEqual(rec["pattern"], "b")
            self.assertIn("worker blew up", rec["error"])
            # Failed records still carry the full point key.
            for key in ("pattern", "mode", "load", "seed"):
                self.assertIn(key, rec)

    def test_garbage_stdout_becomes_failed_point(self):
        doc = self.run_stub_campaign('echo "not json"\n')
        self.assertEqual(doc["points_failed"], 4)
        self.assertIn("unparseable", doc["points"][0]["error"])

    def test_missing_binary_becomes_failed_point(self):
        spec = {
            "name": "stub", "patterns": ["a"], "modes": ["M"],
            "loads": [0.5], "seeds": [1],
        }
        doc = campaign.run_campaign(spec, "/nonexistent/worker", jobs=1)
        self.assertEqual(doc["points_failed"], 1)
        self.assertIn("spawn failed", doc["points"][0]["error"])

    def test_main_exits_nonzero_on_failed_points(self):
        with tempfile.TemporaryDirectory() as tmp:
            binary = write_script(tmp, "worker.sh", "exit 1\n")
            spec_path = Path(tmp) / "spec.json"
            spec_path.write_text(json.dumps({
                "name": "bad", "patterns": ["a"], "modes": ["M"],
                "loads": [0.5], "seeds": [1],
            }))
            rc = campaign.main(
                [str(spec_path), "--binary", binary, "--out-dir", tmp])
            self.assertEqual(rc, 1)
            doc = json.loads((Path(tmp) / "CAMPAIGN_bad.json").read_text())
            self.assertEqual(doc["points_failed"], 1)


class RetryTimeoutTest(unittest.TestCase):
    """Per-point timeout kills overrunning workers; bounded retry with
    exponential backoff re-runs failures, and the record counts attempts."""

    SPEC = {
        "name": "retry", "patterns": ["a"], "modes": ["M"],
        "loads": [0.5], "seeds": [1],
    }

    def test_timeout_kills_overrunning_worker(self):
        with tempfile.TemporaryDirectory() as tmp:
            binary = write_script(tmp, "worker.sh", "sleep 30\n")
            doc = campaign.run_campaign(
                self.SPEC, binary, jobs=1, spec_dir=tmp, timeout=0.2)
        self.assertEqual(doc["points_failed"], 1)
        rec = doc["points"][0]
        self.assertIn("timed out", rec["error"])
        self.assertEqual(rec["timed_out"], 1)
        self.assertNotIn("retried", rec)  # no retries requested

    def test_flaky_worker_succeeds_after_retries(self):
        # Fails twice (marker files count attempts), then emits a point.
        with tempfile.TemporaryDirectory() as tmp:
            body = (
                f'n=$(ls "{tmp}"/try.* 2>/dev/null | wc -l)\n'
                f'touch "{tmp}/try.$n"\n'
                'if [ "$n" -lt 2 ]; then echo "flaky" >&2; exit 1; fi\n'
                'echo "{\\"pattern\\": \\"a\\", \\"mode\\": \\"M\\",'
                ' \\"load\\": 0.5, \\"seed\\": 1, \\"wall_ms\\": 0}"\n'
            )
            binary = write_script(tmp, "worker.sh", body)
            sleeps = []
            doc = campaign.run_campaign(
                self.SPEC, binary, jobs=1, spec_dir=tmp,
                retries=3, backoff=0.25, sleep=sleeps.append)
        self.assertEqual(doc["points_failed"], 0)
        rec = doc["points"][0]
        self.assertEqual(rec["retried"], 2)
        self.assertNotIn("timed_out", rec)
        # Exponential backoff: base, then doubled, consumed in order.
        self.assertEqual(sleeps, [0.25, 0.5])

    def test_retries_are_bounded_and_counted_on_final_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            binary = write_script(tmp, "worker.sh", 'echo "always" >&2; exit 1\n')
            sleeps = []
            doc = campaign.run_campaign(
                self.SPEC, binary, jobs=1, spec_dir=tmp,
                retries=2, backoff=0.1, sleep=sleeps.append)
        self.assertEqual(doc["points_failed"], 1)
        rec = doc["points"][0]
        self.assertTrue(rec["failed"])
        self.assertEqual(rec["retried"], 2)
        self.assertEqual(sleeps, [0.1, 0.2])

    def test_clean_run_has_no_retry_fields(self):
        # Absent = zero: a retry-free artifact is byte-identical to one
        # produced before the knobs existed, even with retries armed.
        with tempfile.TemporaryDirectory() as tmp:
            body = (
                'echo "{\\"pattern\\": \\"a\\", \\"mode\\": \\"M\\",'
                ' \\"load\\": 0.5, \\"seed\\": 1, \\"wall_ms\\": 0}"\n'
            )
            binary = write_script(tmp, "worker.sh", body)
            doc = campaign.run_campaign(
                self.SPEC, binary, jobs=1, spec_dir=tmp,
                timeout=30.0, retries=3)
        rec = doc["points"][0]
        self.assertNotIn("retried", rec)
        self.assertNotIn("timed_out", rec)

    def test_timed_out_attempts_accumulate_across_retries(self):
        with tempfile.TemporaryDirectory() as tmp:
            binary = write_script(tmp, "worker.sh", "sleep 30\n")
            sleeps = []
            doc = campaign.run_campaign(
                self.SPEC, binary, jobs=1, spec_dir=tmp,
                timeout=0.2, retries=1, sleep=sleeps.append)
        rec = doc["points"][0]
        self.assertTrue(rec["failed"])
        self.assertEqual(rec["timed_out"], 2)
        self.assertEqual(rec["retried"], 1)


class GoldenCampaignTest(unittest.TestCase):
    """End-to-end: real binary, tiny grid, parallel byte-identity + golden."""

    def run_real(self, jobs, out_dir):
        spec_path = Path(out_dir) / "spec.json"
        spec_path.write_text(json.dumps(GOLDEN_SPEC))
        rc = campaign.main([
            str(spec_path), "--binary", self.binary, "-j", str(jobs),
            "--out-dir", out_dir, "--no-wall",
        ])
        self.assertEqual(rc, 0)
        return (Path(out_dir) / "CAMPAIGN_small.json").read_bytes()

    def test_parallel_byte_identity_and_golden(self):
        self.binary = campaign_binary()
        if self.binary is None:
            self.skipTest("erapid_campaign binary not built")
        # Pin the rev stamp: the artifact must not depend on the checkout.
        old_rev = os.environ.get("ERAPID_GIT_REV")
        os.environ["ERAPID_GIT_REV"] = "golden"
        try:
            with tempfile.TemporaryDirectory() as d1, \
                 tempfile.TemporaryDirectory() as d2:
                serial = self.run_real(1, d1)
                parallel = self.run_real(2, d2)
        finally:
            if old_rev is None:
                del os.environ["ERAPID_GIT_REV"]
            else:
                os.environ["ERAPID_GIT_REV"] = old_rev

        self.assertEqual(serial, parallel,
                         "-j1 and -j2 campaign artifacts differ")

        if os.environ.get("ERAPID_REGEN_GOLDEN"):
            GOLDEN_PATH.write_bytes(serial)
            self.skipTest(f"regenerated {GOLDEN_PATH}")
        self.assertTrue(
            GOLDEN_PATH.is_file(),
            f"missing {GOLDEN_PATH}; run with ERAPID_REGEN_GOLDEN=1 to create")
        self.assertEqual(
            serial.decode(), GOLDEN_PATH.read_text(),
            "campaign artifact drifted from golden; if intentional, "
            "regenerate with ERAPID_REGEN_GOLDEN=1")


if __name__ == "__main__":
    unittest.main()
