#!/usr/bin/env python3
"""Self-test for tools/trace/summarize_trace.py.

Builds tiny synthetic traces in both writer formats (Chrome JSON and the
CSV timeline) and checks that the summarizer aggregates spans, counters,
instants, async pairs and the window timeline correctly, rejects
schema/format drift, and keeps its CLI exit-code contract. Also covers the
`telemetry` input format (erapid-telemetry-1 JSONL), which delegates to the
shared checker in tools/obs/telemetry_report.py. Registered in CTest as
`lint.trace_tool_self_test`.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "tools" / "trace"))
import summarize_trace  # noqa: E402


def chrome_doc(events, schema=summarize_trace.SCHEMA, end_cycle=100):
    meta = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "erapid"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "des.engine"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
         "args": {"name": "reconfig"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 2,
         "args": {"name": "optical.lanes"}},
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {"schema": schema, "end_cycle": end_cycle,
                      "events": len(events)},
    }


EVENTS = [
    {"name": "phase.warmup", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 40},
    {"name": "window.dpm", "ph": "X", "pid": 0, "tid": 1, "ts": 10, "dur": 20,
     "args": {"index": 1, "parity": 1}},
    {"name": "window.dbr", "ph": "X", "pid": 0, "tid": 1, "ts": 30, "dur": 20,
     "args": {"index": 2, "parity": 0}},
    {"name": "lane.owned", "ph": "b", "pid": 0, "tid": 2, "ts": 5,
     "cat": "erapid", "id": 7, "args": {"owner": 0}},
    {"name": "lane.owned", "ph": "e", "pid": 0, "tid": 2, "ts": 35,
     "cat": "erapid", "id": 7},
    {"name": "lane.owned", "ph": "b", "pid": 0, "tid": 2, "ts": 40,
     "cat": "erapid", "id": 9, "args": {"owner": 1}},
    {"name": "dbr.resolve", "ph": "i", "pid": 0, "tid": 1, "ts": 30, "s": "t",
     "args": {"lanes_moved": 2}},
    {"name": "power.total_mw", "ph": "C", "pid": 0, "tid": 1, "ts": 0,
     "args": {"value": 10.0}},
    {"name": "power.total_mw", "ph": "C", "pid": 0, "tid": 1, "ts": 50,
     "args": {"value": 30.0}},
]

CSV_ROWS = [
    "cycle,kind,track,name,id,value,args",
    "0,span,des.engine,phase.warmup,,40,",
    '10,span,reconfig,window.dpm,,20,"{""index"":1,""parity"":1}"',
    '30,span,reconfig,window.dbr,,20,"{""index"":2,""parity"":0}"',
    '5,abegin,optical.lanes,lane.owned,7,,"{""owner"":0}"',
    "35,aend,optical.lanes,lane.owned,7,,",
    '40,abegin,optical.lanes,lane.owned,9,,"{""owner"":1}"',
    '30,instant,reconfig,dbr.resolve,,,"{""lanes_moved"":2}"',
    "0,counter,power,power.total_mw,,10,",
    "50,counter,power,power.total_mw,,30,",
]


def write_chrome(tmp, events=EVENTS, **kw):
    path = Path(tmp) / "t.trace.json"
    path.write_text(json.dumps(chrome_doc(events, **kw)))
    return path


def write_csv(tmp, rows=CSV_ROWS):
    path = Path(tmp) / "t.trace.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def span(doc, track, name):
    for e in doc["spans"]:
        if e["track"] == track and e["name"] == name:
            return e
    return None


class AggregationBothFormats(unittest.TestCase):
    def check_doc(self, doc):
        warmup = span(doc, "des.engine", "phase.warmup")
        self.assertEqual(warmup["count"], 1)
        self.assertEqual(warmup["total_dur"], 40)

        owned = span(doc, "optical.lanes", "lane.owned")
        self.assertEqual(owned["count"], 1)  # id=7 paired; id=9 stays open
        self.assertEqual(owned["total_dur"], 30)
        self.assertEqual(doc["unclosed_spans"], 1)

        power = doc["counters"]["power.total_mw"]
        self.assertEqual(power["count"], 2)
        self.assertEqual(power["min"], 10.0)
        self.assertEqual(power["max"], 30.0)
        self.assertEqual(power["mean"], 20.0)
        self.assertEqual(power["last"], 30.0)

        self.assertEqual(
            doc["instants"],
            [{"track": "reconfig", "name": "dbr.resolve", "count": 1}],
        )

        self.assertEqual(len(doc["windows"]), 2)
        first, second = doc["windows"]
        self.assertEqual((first["start"], first["kind"], first["index"],
                          first["parity"]), (10, "dpm", 1, 1))
        self.assertEqual((second["start"], second["kind"], second["index"],
                          second["parity"]), (30, "dbr", 2, 0))

    def test_chrome(self):
        with tempfile.TemporaryDirectory() as td:
            doc = summarize_trace.load(write_chrome(td), "auto").to_doc()
        self.assertEqual(doc["end_cycle"], 100)
        self.check_doc(doc)

    def test_csv(self):
        with tempfile.TemporaryDirectory() as td:
            doc = summarize_trace.load(write_csv(td), "auto").to_doc()
        self.check_doc(doc)


class ValidationRejects(unittest.TestCase):
    def test_wrong_schema(self):
        with tempfile.TemporaryDirectory() as td:
            path = write_chrome(td, schema="erapid-trace-999")
            with self.assertRaises(summarize_trace.TraceError):
                summarize_trace.load(path, "chrome")

    def test_not_a_trace(self):
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "x.json"
            path.write_text('{"hello": 1}')
            with self.assertRaises(summarize_trace.TraceError):
                summarize_trace.load(path, "chrome")

    def test_csv_bad_header(self):
        with tempfile.TemporaryDirectory() as td:
            path = write_csv(td, rows=["cycle,what,track", "0,span,x"])
            with self.assertRaises(summarize_trace.TraceError):
                summarize_trace.load(path, "csv")

    def test_end_without_begin(self):
        events = [{"name": "lane.owned", "ph": "e", "pid": 0, "tid": 2,
                   "ts": 3, "cat": "erapid", "id": 99}]
        with tempfile.TemporaryDirectory() as td:
            path = write_chrome(td, events=events)
            with self.assertRaises(summarize_trace.TraceError):
                summarize_trace.load(path, "chrome")


def telemetry_record(window, cycle, **kw):
    """One synthetic erapid-telemetry-1 record in the emitter's shape."""
    rec = {
        "schema": "erapid-telemetry-1",
        "window": window,
        "cycle": cycle,
        "utilization": 0.5,
        "phase_id": 0,
        "phase_changed": False,
        "delivered": 10,
        "queue_depth": 2,
        "lanes_lit": 4,
        "lanes_total": 8,
        "power_mw": 100.0,
        "workload_phase": "",
        "tm": {
            "bytes": 640, "packets": 10, "skew": 1.0, "hotspot": 0.5,
            "top": [
                {"src": 0, "dst": 1, "bytes": 320, "packets": 5, "ewma": 96.0},
                {"src": 1, "dst": 0, "bytes": 320, "packets": 5, "ewma": 96.0},
            ],
        },
        "energy": {
            "total_mw_cycles": 1000.0,
            "boards": [
                {"board": 0, "laser": 100.0, "serdes": 400.0,
                 "buffer": 0.0, "ctrl": 0.0},
                {"board": 1, "laser": 100.0, "serdes": 400.0,
                 "buffer": 0.0, "ctrl": 0.0},
            ],
        },
    }
    rec.update(kw)
    return rec


def write_telemetry(tmp, records):
    path = Path(tmp) / "t.telemetry.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TelemetryFormat(unittest.TestCase):
    def setUp(self):
        self.tr = summarize_trace.telemetry_report_module()

    def test_auto_picks_telemetry_for_jsonl(self):
        self.assertEqual(
            summarize_trace.resolve_format(Path("x.jsonl"), "auto"), "telemetry")
        self.assertEqual(
            summarize_trace.resolve_format(Path("x.trace.json"), "auto"), "chrome")

    def test_valid_stream_summarises(self):
        records = [
            telemetry_record(1, 2000),
            telemetry_record(2, 4000, utilization=0.9, phase_id=1,
                             phase_changed=True),
            telemetry_record(3, 6000, utilization=0.9, phase_id=1),
        ]
        with tempfile.TemporaryDirectory() as td:
            path = write_telemetry(td, records)
            doc = self.tr.summarize(self.tr.load_telemetry(path))
            # And the same file through summarize_trace's CLI, auto format.
            report = Path(td) / "summary.json"
            self.assertEqual(
                summarize_trace.main([str(path), "--json", str(report)]), 0)
            cli_doc = json.loads(report.read_text())
        self.assertEqual(doc["windows"], 3)
        self.assertEqual(doc["phase_changes"], 1)
        self.assertEqual(doc["final_phase"], 1)
        self.assertEqual(len(doc["phases"]), 2)
        self.assertEqual(doc["phases"][1]["start_window"], 2)
        self.assertEqual(doc["tm_bytes"], 3 * 640)
        heat = {(e["src"], e["dst"]): e["bytes"] for e in doc["tm_heat"]}
        self.assertEqual(heat[(0, 1)], 3 * 320)
        self.assertEqual(doc["energy"]["laser"], 200.0)
        self.assertEqual(doc["energy"]["serdes"], 800.0)
        self.assertEqual(cli_doc, doc)

    def test_rejects_wrong_schema(self):
        with tempfile.TemporaryDirectory() as td:
            path = write_telemetry(
                td, [telemetry_record(1, 2000, schema="erapid-telemetry-999")])
            with self.assertRaises(self.tr.TelemetryError):
                self.tr.load_telemetry(path)
            self.assertEqual(summarize_trace.main([str(path)]), 1)

    def test_rejects_missing_field_and_bad_ordering(self):
        bad = telemetry_record(1, 2000)
        del bad["utilization"]
        skipped = [telemetry_record(1, 2000), telemetry_record(3, 4000)]
        backwards = [telemetry_record(1, 2000), telemetry_record(2, 2000)]
        with tempfile.TemporaryDirectory() as td:
            for records in ([bad], skipped, backwards):
                path = write_telemetry(td, records)
                with self.assertRaises(self.tr.TelemetryError):
                    self.tr.load_telemetry(path)

    def test_shared_checker_is_the_obs_module(self):
        # The satellite contract: one schema checker, imported, not copied.
        self.assertEqual(self.tr.SCHEMA, "erapid-telemetry-1")
        self.assertTrue(self.tr.__file__.endswith("telemetry_report.py"))


class CliContract(unittest.TestCase):
    def test_exit_codes_and_json_report(self):
        with tempfile.TemporaryDirectory() as td:
            good = write_chrome(td)
            report = Path(td) / "summary.json"
            rc = summarize_trace.main([str(good), "--json", str(report)])
            self.assertEqual(rc, 0)
            doc = json.loads(report.read_text())
            self.assertEqual(doc["tool"], "summarize_trace")
            self.assertEqual(doc["schema"], summarize_trace.SCHEMA)
            self.check_rc_bad(td)

    def check_rc_bad(self, td):
        bad = Path(td) / "bad.json"
        bad.write_text("not json at all")
        self.assertEqual(summarize_trace.main([str(bad)]), 1)


if __name__ == "__main__":
    unittest.main()
