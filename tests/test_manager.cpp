// Protocol-level tests for the Lock-Step reconfiguration manager: window
// alternation, DPM application through the LC chain, end-to-end DBR lane
// moves with release-before-grant safety, and control-cost accounting.
#include <gtest/gtest.h>

#include <memory>

#include "des/engine.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace {

using erapid::BoardId;
using erapid::Cycle;
using erapid::NodeId;
using erapid::WavelengthId;
using erapid::des::Engine;
using erapid::power::PowerLevel;
using erapid::reconfig::NetworkMode;
using erapid::reconfig::ReconfigConfig;
using erapid::router::Packet;
using erapid::sim::Network;
using erapid::topology::SystemConfig;

struct Rig {
  SystemConfig cfg;
  ReconfigConfig rc;
  Engine engine;
  std::unique_ptr<Network> net;
  std::uint64_t delivered = 0;

  explicit Rig(const NetworkMode& mode, std::uint32_t boards = 4, std::uint32_t nodes = 4,
               Cycle window = 1000) {
    cfg.boards = boards;
    cfg.nodes_per_board = nodes;
    rc.mode = mode;
    rc.window = window;
    net = std::make_unique<Network>(engine, cfg, rc);
    net->set_delivery_callback(
        [this](const Packet&, Cycle) { ++delivered; });
    net->start();
  }

  void inject_stream(std::uint32_t src, std::uint32_t dst, int count, Cycle gap) {
    const Cycle base = engine.now();
    for (int i = 0; i < count; ++i) {
      engine.schedule_at(base + static_cast<Cycle>(i) * gap + 1, [this, src, dst, i] {
        Packet p;
        p.seq = static_cast<std::uint64_t>(i) + 1;
        p.src = NodeId{src};
        p.dst = NodeId{dst};
        p.flits = cfg.packet_flits;
        p.created = engine.now();
        net->inject(p, engine.now());
      });
    }
  }
};

TEST(Manager, StaticLanesLitAtStart) {
  Rig rig(NetworkMode::np_nb());
  // All static lanes enabled at P_high: 4 boards x 3 lanes x 43.03 mW.
  EXPECT_NEAR(rig.net->meter().instantaneous_mw().value(), 12 * 43.03, 1e-9);
  EXPECT_EQ(rig.net->lane_map().lit_count(), 12u);
}

TEST(Manager, NpNbNeverReconfigures) {
  Rig rig(NetworkMode::np_nb());
  rig.inject_stream(0, 12, 50, 100);  // board 0 -> board 3
  rig.engine.run_until(20000);
  const auto& c = rig.net->reconfig_manager().counters();
  EXPECT_EQ(c.power_cycles, 0u);
  EXPECT_EQ(c.bandwidth_cycles, 0u);
  EXPECT_EQ(c.lane_grants, 0u);
  EXPECT_EQ(c.level_changes, 0u);
}

TEST(Manager, PNbRunsPowerCyclesOnly) {
  Rig rig(NetworkMode::p_nb(), 4, 4, 1000);
  rig.engine.run_until(10500);
  const auto& c = rig.net->reconfig_manager().counters();
  EXPECT_EQ(c.power_cycles, 10u);  // every window
  EXPECT_EQ(c.bandwidth_cycles, 0u);
}

TEST(Manager, NpBRunsBandwidthCyclesOnly) {
  Rig rig(NetworkMode::np_b(), 4, 4, 1000);
  rig.engine.run_until(10500);
  const auto& c = rig.net->reconfig_manager().counters();
  EXPECT_EQ(c.power_cycles, 0u);
  EXPECT_EQ(c.bandwidth_cycles, 10u);
}

TEST(Manager, PBAlternatesOddEven) {
  Rig rig(NetworkMode::p_b(), 4, 4, 1000);
  rig.engine.run_until(10500);
  const auto& c = rig.net->reconfig_manager().counters();
  // Windows 1,3,5,7,9 -> power; 2,4,6,8,10 -> bandwidth.
  EXPECT_EQ(c.power_cycles, 5u);
  EXPECT_EQ(c.bandwidth_cycles, 5u);
}

TEST(Manager, DlsShutsIdleLanesDown) {
  Rig rig(NetworkMode::p_nb(), 4, 4, 1000);
  // No traffic at all: every lane idles; after the first power cycle all
  // 12 static lanes should be dark.
  rig.engine.run_until(3000);
  EXPECT_NEAR(rig.net->meter().instantaneous_mw().value(), 0.0, 1e-9);
  // Ownership is retained (DLS darkens lanes, it does not release them).
  EXPECT_EQ(rig.net->lane_map().lit_count(), 12u);
}

TEST(Manager, DlsWakesOnDemand) {
  Rig rig(NetworkMode::p_nb(), 4, 4, 1000);
  rig.engine.run_until(3000);  // lanes dark
  rig.inject_stream(0, 12, 5, 50);
  // run more; packets must still be delivered after the wake transition.
  rig.engine.run_until(3000 + 20000);
  EXPECT_EQ(rig.delivered, 5u);
}

TEST(Manager, DpmScalesIdleishLaneDown) {
  Rig rig(NetworkMode::p_b(), 4, 4, 1000);
  // A slow stream: utilization > 0 but far below L_min -> lane should sit
  // at P_low (not Off: queue occasionally non-empty keeps it alive, but
  // idle windows will shut it down; accept either Low or Off).
  rig.inject_stream(0, 12, 200, 400);
  rig.engine.run_until(40000);
  const auto& lane = rig.net->terminal(BoardId{0}).lane(
      BoardId{3}, rig.net->rwa().wavelength_for(BoardId{0}, BoardId{3}));
  EXPECT_NE(lane.level(), PowerLevel::High);
}

TEST(Manager, DbrGrantsLanesToCongestedFlow) {
  Rig rig(NetworkMode::np_b(), 4, 4, 1000);
  // Saturate board0 -> board3 (all four nodes of board 0).
  for (std::uint32_t n = 0; n < 4; ++n) rig.inject_stream(n, 12 + n, 400, 30);
  rig.engine.run_until(30000);
  EXPECT_GT(rig.net->lane_map().lane_count(BoardId{0}, BoardId{3}), 1u);
  EXPECT_GT(rig.net->reconfig_manager().counters().lane_grants, 0u);
}

TEST(Manager, LaneMapNeverCollides) {
  // The LaneMap throws on double-grant; a long adversarial run with both
  // cycles active exercises release-before-grant chaining.
  Rig rig(NetworkMode::p_b(), 4, 4, 500);
  for (std::uint32_t n = 0; n < 4; ++n) rig.inject_stream(n, 15 - n, 500, 25);
  EXPECT_NO_THROW(rig.engine.run_until(60000));
}

TEST(Manager, GrantedLanesComeBackWhenTrafficShifts) {
  Rig rig(NetworkMode::np_b(), 4, 4, 500);
  // Phase 1: board0->board3 congestion -> grants.
  for (std::uint32_t n = 0; n < 4; ++n) rig.inject_stream(n, 12 + n, 300, 30);
  rig.engine.run_until(30000);
  const auto lanes_03 = rig.net->lane_map().lane_count(BoardId{0}, BoardId{3});
  EXPECT_GT(lanes_03, 1u);

  // Phase 2: board1->board3 becomes the hot flow; board0 goes quiet.
  for (std::uint32_t n = 4; n < 8; ++n) {
    for (int i = 0; i < 300; ++i) {
      rig.engine.schedule_at(rig.engine.now() + static_cast<Cycle>(i) * 30 + 1,
                             [&rig, n, i] {
                               Packet p;
                               p.seq = 100000u + static_cast<std::uint64_t>(n) * 1000 +
                                       static_cast<std::uint64_t>(i);
                               p.src = NodeId{n};
                               p.dst = NodeId{12 + (n % 4)};
                               p.flits = rig.cfg.packet_flits;
                               p.created = rig.engine.now();
                               rig.net->inject(p, rig.engine.now());
                             });
    }
  }
  rig.engine.run_until(rig.engine.now() + 40000);
  // Board 1 should now hold extra lanes toward board 3.
  EXPECT_GT(rig.net->lane_map().lane_count(BoardId{1}, BoardId{3}), 1u);
}

TEST(Manager, ControlCostScalesWithRingAndChain) {
  Rig rig(NetworkMode::np_b(), 4, 4, 1000);
  rig.engine.run_until(5500);
  const auto& c = rig.net->reconfig_manager().counters();
  // 5 bandwidth cycles: each harvests 4 chains and circulates 2*B*B ring
  // hops.
  EXPECT_EQ(c.chain_scans, 5u * 4u);
  EXPECT_EQ(c.ring_hops, 5u * (2u * 16u + 4u * (4u + 1u)));
}

TEST(Manager, ReconfigLatencyDoesNotStallTraffic) {
  // Paper: "Re-allocation of bandwidth happens ... without affecting the
  // on-going communication". A steady local+remote stream must see no
  // packet loss across many reconfigurations.
  Rig rig(NetworkMode::p_b(), 4, 4, 500);
  rig.inject_stream(0, 12, 300, 60);
  rig.engine.run_until(100000);
  EXPECT_EQ(rig.delivered, 300u);
}

TEST(Manager, OwnershipHandoffWithInFlightPackets) {
  // Reassign a lane while the old owner still has a packet serializing:
  // the release must drain first (on_dark chaining), the grant must pay
  // the wake transition, and no packet may be lost.
  Rig rig(NetworkMode::np_nb());  // no automatic reconfig interference
  auto& net = *rig.net;
  auto& lm = net.lane_map();
  const BoardId dest{3};
  const WavelengthId w = net.rwa().wavelength_for(BoardId{0}, dest);
  ASSERT_EQ(lm.owner(dest, w), BoardId{0});

  // Put several packets of board 0's flow in flight toward board 3.
  rig.inject_stream(0, 12, 6, 10);
  rig.engine.run_until(400);  // mid-stream: some packets still serializing

  // Manual handoff, mirroring ReconfigManager::apply_directive.
  bool granted = false;
  net.terminal(BoardId{0}).apply_release(dest, w, rig.engine.now(), [&](Cycle at) {
    lm.release(dest, w);
    lm.grant(dest, w, BoardId{1});
    net.terminal(BoardId{1}).apply_grant(dest, w, PowerLevel::High, at);
    granted = true;
  });

  // New owner's traffic follows.
  rig.inject_stream(4, 13, 4, 20);
  rig.engine.run_until(200000);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.owner(dest, w), BoardId{1});
  // Board 1 now drives two lanes toward board 3 (its static one plus the
  // granted one); its 4 packets all arrive. Board 0 lost its only lane,
  // so any of its packets still queued at the release wait for a future
  // grant (none comes in NP-NB) — deliveries are the 4 new-owner packets
  // plus whatever board 0 drained before going dark.
  EXPECT_EQ(lm.lane_count(BoardId{1}, dest), 2u);
  EXPECT_GE(rig.delivered, 4u);
  EXPECT_LE(rig.delivered, 10u);
}

TEST(Manager, StopHaltsWindows) {
  Rig rig(NetworkMode::p_b(), 4, 4, 1000);
  rig.engine.run_until(2500);
  rig.net->reconfig_manager().stop();
  const auto cycles_at_stop = rig.net->reconfig_manager().counters().power_cycles +
                              rig.net->reconfig_manager().counters().bandwidth_cycles;
  rig.engine.run_until(10000);
  const auto cycles_after = rig.net->reconfig_manager().counters().power_cycles +
                            rig.net->reconfig_manager().counters().bandwidth_cycles;
  EXPECT_EQ(cycles_at_stop, cycles_after);
}

TEST(Manager, WindowLengthRespected) {
  Rig a(NetworkMode::p_nb(), 4, 4, 500);
  a.engine.run_until(5250);
  Rig b(NetworkMode::p_nb(), 4, 4, 2000);
  b.engine.run_until(5250);
  EXPECT_EQ(a.net->reconfig_manager().counters().power_cycles, 10u);
  EXPECT_EQ(b.net->reconfig_manager().counters().power_cycles, 2u);
}

}  // namespace
