// Unit tests for the VC wormhole router: pipeline timing, credits,
// arbitration fairness, wormhole ordering, and the injector/ejection NI
// helpers.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "router/arbiter.hpp"
#include "router/flit.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"

namespace {

using erapid::Cycle;
using erapid::NodeId;
using erapid::des::ClockDomain;
using erapid::des::Engine;
using erapid::router::EjectionUnit;
using erapid::router::Flit;
using erapid::router::FlitInjector;
using erapid::router::FlitReceiver;
using erapid::router::make_flit;
using erapid::router::OutputPortConfig;
using erapid::router::Packet;
using erapid::router::RoundRobinArbiter;
using erapid::router::Router;

// ---- RoundRobinArbiter ---------------------------------------------------

TEST(Arbiter, GrantsFirstRequester) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, true, false, true}), 1u);
}

TEST(Arbiter, PointerAdvancesPastWinner) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0u);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 1u);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 2u);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 3u);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0u);
}

TEST(Arbiter, NoRequestsNoGrant) {
  RoundRobinArbiter arb(3);
  EXPECT_EQ(arb.arbitrate({false, false, false}), RoundRobinArbiter::kNoGrant);
}

TEST(Arbiter, StrongFairnessUnderContention) {
  RoundRobinArbiter arb(3);
  std::vector<int> grants(3, 0);
  for (int i = 0; i < 300; ++i) ++grants[arb.arbitrate({true, true, true})];
  EXPECT_EQ(grants[0], 100);
  EXPECT_EQ(grants[1], 100);
  EXPECT_EQ(grants[2], 100);
}

TEST(Arbiter, WidthMismatchThrows) {
  RoundRobinArbiter arb(3);
  EXPECT_THROW(arb.arbitrate({true}), erapid::ModelInvariantError);
}

// ---- flit helpers ---------------------------------------------------------

TEST(Flit, MakeFlitMarksHeadAndTail) {
  Packet p;
  p.seq = 9;
  p.src = NodeId{1};
  p.dst = NodeId{2};
  p.flits = 4;
  const auto h = make_flit(p, 0);
  const auto b = make_flit(p, 2);
  const auto t = make_flit(p, 3);
  EXPECT_TRUE(h.head);
  EXPECT_FALSE(h.tail);
  EXPECT_FALSE(b.head);
  EXPECT_FALSE(b.tail);
  EXPECT_TRUE(t.tail);
  const auto back = packet_from_flit(t);
  EXPECT_EQ(back.seq, p.seq);
  EXPECT_EQ(back.dst, p.dst);
  EXPECT_EQ(back.flits, p.flits);
}

// ---- router test harness ---------------------------------------------------

/// Collects flits, returns credits immediately, remembers arrival times.
class CollectingSink : public FlitReceiver {
 public:
  explicit CollectingSink(Router& r) : router_(r) {}
  void bind(std::uint32_t port) { port_ = port; }
  void receive_flit(const Flit& f, std::uint32_t vc, Cycle now) override {
    arrivals.push_back({f, vc, now});
    router_.return_credit(port_, vc);
  }
  struct Arrival {
    Flit flit;
    std::uint32_t vc;
    Cycle when;
  };
  std::vector<Arrival> arrivals;

 private:
  Router& router_;
  std::uint32_t port_ = 0;
};

/// A 2-input, 2-output router where dst node 0/1 selects output 0/1.
struct RouterRig {
  Engine engine;
  ClockDomain domain{engine};
  std::unique_ptr<Router> router;
  std::unique_ptr<CollectingSink> sink0, sink1;
  std::unique_ptr<FlitInjector> inj0, inj1;

  static constexpr std::uint32_t kVcs = 2;
  static constexpr std::uint32_t kDepth = 8;

  RouterRig(std::uint32_t cycles_per_flit = 1) {
    router = std::make_unique<Router>(
        engine, domain, "rig", 2, kVcs, kDepth, /*credit_delay=*/1,
        [](const Flit& f) { return f.dst.value(); });
    sink0 = std::make_unique<CollectingSink>(*router);
    sink1 = std::make_unique<CollectingSink>(*router);
    OutputPortConfig opc;
    opc.vcs = kVcs;
    opc.credits_per_vc = kDepth;
    opc.cycles_per_flit = cycles_per_flit;
    opc.sink = sink0.get();
    sink0->bind(router->add_output(opc));
    opc.sink = sink1.get();
    sink1->bind(router->add_output(opc));
    inj0 = std::make_unique<FlitInjector>(engine, *router, 0, kVcs, kDepth, 1);
    inj1 = std::make_unique<FlitInjector>(engine, *router, 1, kVcs, kDepth, 1);
  }

  static Packet packet(std::uint64_t seq, std::uint32_t dst, std::uint32_t flits = 4) {
    Packet p;
    p.seq = seq;
    p.src = NodeId{0};
    p.dst = NodeId{dst};
    p.flits = flits;
    return p;
  }
};

TEST(Router, DeliversAWholePacket) {
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(200);
  ASSERT_EQ(rig.sink0->arrivals.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.sink0->arrivals[i].flit.index, i);
    EXPECT_EQ(rig.sink0->arrivals[i].flit.seq, 1u);
  }
  EXPECT_TRUE(rig.sink0->arrivals.back().flit.tail);
  EXPECT_TRUE(rig.sink1->arrivals.empty());
}

TEST(Router, PerPacketPipelineCostsAtLeastFourCycles) {
  // RC, VA, SA each cost a cycle, plus ST/channel: head cannot pop out in
  // fewer than 4 cycles after entering the input buffer.
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(200);
  ASSERT_FALSE(rig.sink0->arrivals.empty());
  // Injector puts the head in at cycle 1 (one channel traversal).
  EXPECT_GE(rig.sink0->arrivals[0].when, 5u);
}

TEST(Router, RoutesByDestination) {
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 1), 0));
  rig.engine.run_until(200);
  EXPECT_TRUE(rig.sink0->arrivals.empty());
  EXPECT_EQ(rig.sink1->arrivals.size(), 4u);
}

TEST(Router, TwoInputsToDifferentOutputsDontInterfere) {
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  ASSERT_TRUE(rig.inj1->try_start(RouterRig::packet(2, 1), 0));
  rig.engine.run_until(300);
  EXPECT_EQ(rig.sink0->arrivals.size(), 4u);
  EXPECT_EQ(rig.sink1->arrivals.size(), 4u);
  EXPECT_EQ(rig.sink0->arrivals[0].flit.seq, 1u);
  EXPECT_EQ(rig.sink1->arrivals[0].flit.seq, 2u);
}

TEST(Router, ContendingInputsShareOneOutputFairly) {
  RouterRig rig;
  // Stream several packets from both inputs to output 0.
  int started0 = 0, started1 = 0;
  rig.inj0->set_idle_callback([&](Cycle now) {
    if (started0 < 5) rig.inj0->try_start(RouterRig::packet(100 + ++started0, 0), now);
  });
  rig.inj1->set_idle_callback([&](Cycle now) {
    if (started1 < 5) rig.inj1->try_start(RouterRig::packet(200 + ++started1, 0), now);
  });
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(100, 0), 0));
  ASSERT_TRUE(rig.inj1->try_start(RouterRig::packet(200, 0), 0));
  rig.engine.run_until(2000);
  EXPECT_EQ(rig.sink0->arrivals.size(), 12u * 4u);
  // Both inputs made progress (strong fairness, no starvation).
  bool saw1 = false, saw2 = false;
  for (const auto& a : rig.sink0->arrivals) {
    saw1 = saw1 || (a.flit.seq >= 100u && a.flit.seq < 200u);
    saw2 = saw2 || a.flit.seq >= 200u;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

TEST(Router, WormholeOrderWithinVcPreserved) {
  RouterRig rig;
  int started = 0;
  rig.inj0->set_idle_callback([&](Cycle now) {
    if (started < 4) rig.inj0->try_start(RouterRig::packet(10 + ++started, 0), now);
  });
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(10, 0), 0));
  rig.engine.run_until(2000);
  // Per-VC flit index must be monotonically consistent (EjectionUnit-style
  // check): flits of one packet never interleave within a VC.
  std::map<std::uint32_t, std::uint32_t> expect_index;
  for (const auto& a : rig.sink0->arrivals) {
    auto& idx = expect_index[a.vc];
    EXPECT_EQ(a.flit.index, idx);
    idx = a.flit.tail ? 0 : idx + 1;
  }
}

TEST(Router, ChannelSerializationPacesFlits) {
  RouterRig rig(/*cycles_per_flit=*/4);
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(400);
  ASSERT_EQ(rig.sink0->arrivals.size(), 4u);
  for (std::size_t i = 1; i < rig.sink0->arrivals.size(); ++i) {
    EXPECT_GE(rig.sink0->arrivals[i].when - rig.sink0->arrivals[i - 1].when, 4u);
  }
}

TEST(Router, CreditBackpressureNeverOverrunsSink) {
  // A sink that hoards credits: accepts `cap` flits then stalls.
  class HoardingSink : public FlitReceiver {
   public:
    HoardingSink(Router& r, std::uint32_t cap) : router_(r), cap_(cap) {}
    void bind(std::uint32_t port) { port_ = port; }
    void receive_flit(const Flit& f, std::uint32_t vc, Cycle) override {
      held.push_back({f, vc});
      ASSERT_LE(held.size(), cap_);
    }
    void release_all() {
      for (auto& [f, vc] : held) router_.return_credit(port_, vc);
      held.clear();
    }
    std::vector<std::pair<Flit, std::uint32_t>> held;

   private:
    Router& router_;
    std::uint32_t port_ = 0;
    std::uint32_t cap_;
  };

  Engine engine;
  ClockDomain domain(engine);
  Router router(engine, domain, "bp", 1, 1, 8, 1, [](const Flit&) { return 0u; });
  HoardingSink sink(router, /*cap=*/2);
  OutputPortConfig opc;
  opc.sink = &sink;
  opc.vcs = 1;
  opc.credits_per_vc = 2;
  opc.cycles_per_flit = 1;
  sink.bind(router.add_output(opc));
  FlitInjector inj(engine, router, 0, 1, 8, 1);

  Packet p = RouterRig::packet(1, 0, /*flits=*/6);
  ASSERT_TRUE(inj.try_start(p, 0));
  engine.run_until(500);
  EXPECT_EQ(sink.held.size(), 2u);  // stalled at the credit limit

  engine.schedule(0, [&] { sink.release_all(); });
  engine.run_until(1000);
  EXPECT_EQ(sink.held.size(), 2u);  // next two flits arrived, stalled again
}

TEST(Router, WireDelayAddsToDelivery) {
  // Two otherwise-identical rigs; the second adds 10 cycles of wire.
  auto run_one = [](std::uint32_t wire) {
    Engine engine;
    ClockDomain domain(engine);
    Router rt(engine, domain, "wire", 1, 1, 8, 1, [](const Flit&) { return 0u; });
    CollectingSink sink(rt);
    OutputPortConfig opc;
    opc.sink = &sink;
    opc.vcs = 1;
    opc.credits_per_vc = 8;
    opc.cycles_per_flit = 1;
    opc.wire_delay = wire;
    sink.bind(rt.add_output(opc));
    FlitInjector inj(engine, rt, 0, 1, 8, 1);
    EXPECT_TRUE(inj.try_start(RouterRig::packet(1, 0), 0));
    engine.run_until(500);
    return sink.arrivals.front().when;
  };
  EXPECT_EQ(run_one(10) - run_one(0), 10u);
}

TEST(Router, MorePacketsThanDownstreamVcsStillAllFlow) {
  // 1 downstream VC, several back-to-back packets: VA must recycle the VC
  // after each tail and every packet must arrive, in order.
  Engine engine;
  ClockDomain domain(engine);
  Router rt(engine, domain, "vc1", 1, 2, 8, 1, [](const Flit&) { return 0u; });
  CollectingSink sink(rt);
  OutputPortConfig opc;
  opc.sink = &sink;
  opc.vcs = 1;  // single downstream VC
  opc.credits_per_vc = 4;
  opc.cycles_per_flit = 1;
  sink.bind(rt.add_output(opc));
  FlitInjector inj(engine, rt, 0, 2, 8, 1);
  int started = 0;
  inj.set_idle_callback([&](Cycle now) {
    if (started < 6) inj.try_start(RouterRig::packet(10 + static_cast<unsigned>(++started), 0), now);
  });
  ASSERT_TRUE(inj.try_start(RouterRig::packet(10, 0), 0));
  engine.run_until(5000);
  EXPECT_EQ(sink.arrivals.size(), 7u * 4u);
  // Single VC: strict packet order end to end.
  std::uint64_t last_seq = 0;
  for (const auto& a : sink.arrivals) {
    EXPECT_GE(a.flit.seq, last_seq);
    last_seq = a.flit.seq;
  }
}

TEST(Router, CountersTrackTraffic) {
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(200);
  const auto& c = rig.router->counters();
  EXPECT_EQ(c.flits_in, 4u);
  EXPECT_EQ(c.flits_out, 4u);
  EXPECT_EQ(c.packets_routed, 1u);
  EXPECT_EQ(c.va_grants, 1u);
  EXPECT_EQ(c.sa_grants, 4u);
}

TEST(Router, QuiescentAfterDrain) {
  RouterRig rig;
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(500);
  EXPECT_TRUE(rig.router->quiescent());
  EXPECT_FALSE(rig.domain.running());  // domain went back to sleep
}

TEST(Router, BodyFlitToIdleVcThrows) {
  RouterRig rig;
  Packet p = RouterRig::packet(1, 0);
  Flit body = make_flit(p, 1);
  EXPECT_THROW(rig.router->accept_flit(0, 0, body, 0), erapid::ModelInvariantError);
}

// ---- FlitInjector / EjectionUnit -------------------------------------------

TEST(Injector, BusyWhileStreamingIdleAfterTail) {
  RouterRig rig;
  EXPECT_FALSE(rig.inj0->busy());
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  EXPECT_TRUE(rig.inj0->busy());
  EXPECT_FALSE(rig.inj0->try_start(RouterRig::packet(2, 0), 0));
  rig.engine.run_until(300);
  EXPECT_FALSE(rig.inj0->busy());
  EXPECT_EQ(rig.inj0->packets_sent(), 1u);
}

TEST(Injector, IdleCallbackFires) {
  RouterRig rig;
  int idle_calls = 0;
  rig.inj0->set_idle_callback([&](Cycle) { ++idle_calls; });
  ASSERT_TRUE(rig.inj0->try_start(RouterRig::packet(1, 0), 0));
  rig.engine.run_until(300);
  EXPECT_EQ(idle_calls, 1);
}

TEST(Ejection, ReassemblesPackets) {
  Engine engine;
  ClockDomain domain(engine);
  Router router(engine, domain, "ej", 1, 2, 8, 1, [](const Flit&) { return 0u; });
  std::vector<Packet> got;
  EjectionUnit ej(router, 2, [&](const Packet& p, Cycle) { got.push_back(p); });
  OutputPortConfig opc;
  opc.sink = &ej;
  opc.vcs = 2;
  opc.credits_per_vc = 8;
  opc.cycles_per_flit = 4;
  ej.bind(router.add_output(opc));
  FlitInjector inj(engine, router, 0, 2, 8, 4);

  ASSERT_TRUE(inj.try_start(RouterRig::packet(7, 0, 8), 0));
  engine.run_until(500);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 7u);
  EXPECT_EQ(got[0].flits, 8u);
  EXPECT_EQ(ej.packets_ejected(), 1u);
}

}  // namespace
