// Unit + integration tests for trace-driven traffic: format round-trip,
// synthetic generators, and end-to-end replay through the network.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "des/engine.hpp"
#include "sim/network.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_source.hpp"

namespace {

using erapid::Cycle;
using erapid::NodeId;
using erapid::traffic::make_alltoall_trace;
using erapid::traffic::make_master_worker_trace;
using erapid::traffic::make_stencil_trace;
using erapid::traffic::Trace;
using erapid::traffic::TraceReplayer;

TEST(Trace, AddAndFinalizeSortsStably) {
  Trace t;
  t.add(50, NodeId{0}, NodeId{1});
  t.add(10, NodeId{1}, NodeId{2});
  t.add(50, NodeId{2}, NodeId{3});  // same cycle as the first: must stay after
  t.finalize(8);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].cycle, 10u);
  EXPECT_EQ(t.events()[1].src, NodeId{0});
  EXPECT_EQ(t.events()[2].src, NodeId{2});
  EXPECT_EQ(t.duration(), 50u);
}

TEST(Trace, FinalizeRejectsBadNodes) {
  Trace t;
  t.add(1, NodeId{0}, NodeId{99});
  EXPECT_THROW(t.finalize(8), erapid::ModelInvariantError);
  Trace self;
  self.add(1, NodeId{3}, NodeId{3});
  EXPECT_THROW(self.finalize(8), erapid::ModelInvariantError);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t;
  t.add(5, NodeId{1}, NodeId{2});
  t.add(10, NodeId{3}, NodeId{0});
  t.finalize(4);
  std::stringstream ss;
  t.save(ss);
  const Trace back = Trace::load(ss, 4);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.events()[0], t.events()[0]);
  EXPECT_EQ(back.events()[1], t.events()[1]);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss("# erapid-trace v1\n\n# comment\n3 0 1\n");
  const Trace t = Trace::load(ss, 2);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].cycle, 3u);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not a trace line\n");
  EXPECT_THROW(Trace::load(ss, 4), erapid::ModelInvariantError);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = testing::TempDir() + "erapid_trace_test.trace";
  const Trace t = make_stencil_trace(8, 2, 100);
  t.save_file(path);
  const Trace back = Trace::load_file(path, 8);
  EXPECT_EQ(back.size(), t.size());
  std::remove(path.c_str());
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(Trace::load_file("/nonexistent/erapid.trace", 8),
               erapid::ModelInvariantError);
}

// ---- synthetic generators ------------------------------------------------

TEST(TraceGen, StencilCountsAndLocality) {
  const Trace t = make_stencil_trace(8, 3, 100);
  // Per step: 2*(N-1) messages (each interior pair both ways).
  EXPECT_EQ(t.size(), 3u * 2u * 7u);
  for (const auto& e : t.events()) {
    const auto d = static_cast<std::int64_t>(e.dst.value()) -
                   static_cast<std::int64_t>(e.src.value());
    EXPECT_TRUE(d == 1 || d == -1);
  }
  EXPECT_EQ(t.duration(), 200u);
}

TEST(TraceGen, AlltoallCoversEveryPair) {
  const Trace t = make_alltoall_trace(4, 1, 100);
  EXPECT_EQ(t.size(), 4u * 3u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto& e : t.events()) pairs.insert({e.src.value(), e.dst.value()});
  EXPECT_EQ(pairs.size(), 12u);
}

TEST(TraceGen, AlltoallStaggerSpreadsBurst) {
  const Trace t = make_alltoall_trace(4, 1, 100, /*stagger=*/5);
  Cycle max_cycle = 0;
  for (const auto& e : t.events()) max_cycle = std::max(max_cycle, e.cycle);
  EXPECT_EQ(max_cycle, 10u);  // (N-2) * stagger
}

TEST(TraceGen, MasterWorkerAlternatesScatterGather) {
  const Trace t = make_master_worker_trace(4, 2, 500);
  EXPECT_EQ(t.size(), 2u * 2u * 3u);
  // First 3 events scatter from node 0; next 3 gather back.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t.events()[i].src, NodeId{0});
  for (int i = 3; i < 6; ++i) EXPECT_EQ(t.events()[i].dst, NodeId{0});
  EXPECT_EQ(t.events()[3].cycle, 500u);
}

// ---- replay through the network --------------------------------------------

TEST(TraceReplay, AllEventsDeliveredThroughNetwork) {
  erapid::topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 4;
  erapid::reconfig::ReconfigConfig rc;
  rc.mode = erapid::reconfig::NetworkMode::p_b();

  erapid::des::Engine engine;
  erapid::sim::Network net(engine, cfg, rc);
  std::uint64_t delivered = 0;
  net.set_delivery_callback(
      [&](const erapid::router::Packet&, Cycle) { ++delivered; });
  net.start();

  const Trace t = make_alltoall_trace(cfg.num_nodes(), 3, 2000);
  TraceReplayer rep(engine, t, cfg.packet_flits,
                    [&net](const erapid::router::Packet& p, Cycle now) {
                      net.inject(p, now);
                    });
  rep.start(10);
  engine.run_until(t.duration() + 100000);
  EXPECT_TRUE(rep.done());
  EXPECT_EQ(delivered, t.size());
}

TEST(TraceReplay, LabelWindowMarksOnlyInsidePackets) {
  erapid::des::Engine engine;
  Trace t;
  t.add(10, NodeId{0}, NodeId{1});
  t.add(100, NodeId{0}, NodeId{1});
  t.add(500, NodeId{0}, NodeId{1});
  t.finalize(2);
  std::vector<bool> labels;
  TraceReplayer rep(engine, t, 8,
                    [&](const erapid::router::Packet& p, Cycle) {
                      labels.push_back(p.labelled);
                    });
  rep.set_label_window(50, 200);
  rep.start(0);
  engine.run_all();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_FALSE(labels[0]);
  EXPECT_TRUE(labels[1]);
  EXPECT_FALSE(labels[2]);
}

TEST(TraceReplay, OffsetShiftsInjection) {
  erapid::des::Engine engine;
  Trace t;
  t.add(0, NodeId{0}, NodeId{1});
  t.finalize(2);
  Cycle injected_at = 0;
  TraceReplayer rep(engine, t, 8,
                    [&](const erapid::router::Packet&, Cycle now) { injected_at = now; });
  rep.start(123);
  engine.run_all();
  EXPECT_EQ(injected_at, 123u);
}

}  // namespace
