// Unit tests for the discrete-event kernel and clock domain.
#include <gtest/gtest.h>

#include <vector>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "util/expect.hpp"

namespace {

using erapid::Cycle;
using erapid::kNeverCycle;
using erapid::des::ClockDomain;
using erapid::des::Clocked;
using erapid::des::Engine;

TEST(Engine, StartsAtTimeZeroWithEmptyQueue) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.queue_size(), 0u);
  EXPECT_EQ(e.next_event_time(), kNeverCycle);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimeEventsFireInFifoOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule(5, [&order, i] { order.push_back(i); });
  }
  e.run_all();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  Cycle fired_at = kNeverCycle;
  e.schedule(7, [&] {
    e.schedule(0, [&] { fired_at = e.now(); });
  });
  e.run_all();
  EXPECT_EQ(fired_at, 7u);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule(10, [&] {
    EXPECT_THROW(e.schedule_at(5, [] {}), erapid::ModelInvariantError);
  });
  e.run_all();
}

TEST(Engine, RunUntilStopsAtLimitAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.schedule(10, [&] { ++fired; });
  e.schedule(100, [&] { ++fired; });
  const auto n = e.run_until(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 50u);  // clock advances to the limit even when idle
  e.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilLimitIsInclusive) {
  Engine e;
  bool fired = false;
  e.schedule(50, [&] { fired = true; });
  e.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto h = e.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine e;
  auto h = e.schedule(1, [] {});
  e.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
  h.cancel();
}

TEST(Engine, DefaultConstructedHandleIsInert) {
  erapid::des::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Engine, EventsScheduledDuringExecutionRun) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule(1, recurse);
  };
  e.schedule(1, recurse);
  e.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, NextEventTimeSkipsCancelled) {
  Engine e;
  auto h = e.schedule(10, [] {});
  e.schedule(20, [] {});
  h.cancel();
  EXPECT_EQ(e.next_event_time(), 20u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.schedule(static_cast<Cycle>(i + 1), [] {});
  e.run_all();
  EXPECT_EQ(e.events_executed(), 10u);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule(1, [&] { ++fired; });
  e.schedule(1, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step(100));
}

// ---- ClockDomain -------------------------------------------------------

class CountingClocked : public Clocked {
 public:
  void tick(Cycle now) override {
    ++ticks;
    last_tick = now;
  }
  void post_tick(Cycle) override { ++post_ticks; }
  [[nodiscard]] bool quiescent() const override { return quiet; }

  int ticks = 0;
  int post_ticks = 0;
  Cycle last_tick = 0;
  bool quiet = false;
};

TEST(ClockDomain, TicksEveryCycleWhileBusy) {
  Engine e;
  ClockDomain dom(e);
  CountingClocked c;
  dom.add(c);
  dom.wake();
  e.run_until(10);
  EXPECT_EQ(c.ticks, 10);
  EXPECT_EQ(c.post_ticks, 10);
}

TEST(ClockDomain, SleepsWhenAllQuiescent) {
  Engine e;
  ClockDomain dom(e);
  CountingClocked c;
  dom.add(c);
  dom.wake();
  e.run_until(5);
  c.quiet = true;
  e.run_until(100);
  EXPECT_TRUE(c.ticks <= 7);  // stopped ticking shortly after quiescence
  EXPECT_FALSE(dom.running());
}

TEST(ClockDomain, WakeRearmsAfterSleep) {
  Engine e;
  ClockDomain dom(e);
  CountingClocked c;
  c.quiet = true;
  dom.add(c);
  dom.wake();
  e.run_until(10);
  const int ticks_after_sleep = c.ticks;
  EXPECT_EQ(ticks_after_sleep, 1);  // one tick, then slept

  c.quiet = false;
  dom.wake();
  e.run_until(20);
  EXPECT_GT(c.ticks, ticks_after_sleep + 5);
}

TEST(ClockDomain, WakeWhileRunningIsIdempotent) {
  Engine e;
  ClockDomain dom(e);
  CountingClocked c;
  dom.add(c);
  dom.wake();
  dom.wake();
  dom.wake();
  e.run_until(5);
  EXPECT_EQ(c.ticks, 5);  // not double-ticked
}

TEST(ClockDomain, TwoComponentsTickInRegistrationOrder) {
  Engine e;
  ClockDomain dom(e);
  std::vector<int> order;
  struct Probe : Clocked {
    Probe(std::vector<int>* o, int i) : order(o), id(i) {}
    std::vector<int>* order;
    int id;
    void tick(Cycle) override { order->push_back(id); }
    [[nodiscard]] bool quiescent() const override { return true; }
  };
  Probe a(&order, 1), b(&order, 2);
  dom.add(a);
  dom.add(b);
  dom.wake();
  e.run_until(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

}  // namespace
