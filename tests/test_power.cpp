// Unit tests for the power model: per-level link power (Table 1), the
// component scaling laws, transitions, and energy metering.
#include <gtest/gtest.h>

#include "power/components.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"

namespace {

using erapid::power::ComponentModel;
using erapid::power::EnergyMeter;
using erapid::power::LinkPowerModel;
using erapid::power::PowerLevel;
using erapid::power::step_down;
using erapid::power::step_up;
using erapid::units::GbitsPerSec;
using erapid::units::Milliwatts;
using erapid::units::Volts;

// ---- LinkPowerModel (Table 1 values) ------------------------------------

TEST(LinkPower, Table1PerLevelTotals) {
  LinkPowerModel m;
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::High).value(), 43.03);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Mid).value(), 26.00);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Low).value(), 8.60);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Off).value(), 0.0);
}

TEST(LinkPower, Table1BitRatesAndVoltages) {
  LinkPowerModel m;
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::High).value(), 5.0);
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Mid).value(), 3.3);
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Low).value(), 2.5);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::High).value(), 0.9);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::Mid).value(), 0.6);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::Low).value(), 0.45);
}

TEST(LinkPower, VoltageTransitionsCost65Cycles) {
  LinkPowerModel m;
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::High, PowerLevel::Mid), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Off, PowerLevel::Low), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Mid, PowerLevel::Mid), 0u);
}

TEST(LinkPower, StepUpAndDownSaturate) {
  EXPECT_EQ(step_up(PowerLevel::Low), PowerLevel::Mid);
  EXPECT_EQ(step_up(PowerLevel::Mid), PowerLevel::High);
  EXPECT_EQ(step_up(PowerLevel::High), PowerLevel::High);
  EXPECT_EQ(step_down(PowerLevel::High), PowerLevel::Mid);
  EXPECT_EQ(step_down(PowerLevel::Mid), PowerLevel::Low);
  EXPECT_EQ(step_down(PowerLevel::Low), PowerLevel::Low);   // no DVS to Off
  EXPECT_EQ(step_down(PowerLevel::Off), PowerLevel::Off);
}

TEST(LinkPower, PowerIsMonotoneInLevel) {
  LinkPowerModel m;
  EXPECT_LT(m.power_mw(PowerLevel::Off), m.power_mw(PowerLevel::Low));
  EXPECT_LT(m.power_mw(PowerLevel::Low), m.power_mw(PowerLevel::Mid));
  EXPECT_LT(m.power_mw(PowerLevel::Mid), m.power_mw(PowerLevel::High));
}

TEST(LinkPower, OverridesForAblation) {
  LinkPowerModel m;
  m.set_power_mw(PowerLevel::High, Milliwatts{50.0});
  m.set_transition_cycles(100, 20);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::High).value(), 50.0);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High), 100u);
}

TEST(LinkPower, FixedRateBaselineMakesDvsFree) {
  // An electrical-baseline model pins rate and voltage at every level:
  // transitions then cost only the CDR relock (equal voltage).
  LinkPowerModel m;
  for (auto l : {PowerLevel::Low, PowerLevel::Mid, PowerLevel::High}) {
    m.set_bitrate_gbps(l, GbitsPerSec{6.4});
    m.set_supply_v(l, Volts{1.2});
    m.set_power_mw(l, Milliwatts{128.0});
  }
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Low).value(), 6.4);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High),
            m.freq_relock_cycles());
}

// ---- ComponentModel (§4.1 anchors & scaling laws) ------------------------

TEST(Components, AnchorsReproducePaperBreakdown) {
  ComponentModel m;
  const auto parts = m.breakdown(Volts{0.9}, GbitsPerSec{5.0});
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_NEAR(parts[0].power.value(), 1.5e-3, 1e-9);   // VCSEL 1.5 uW
  EXPECT_NEAR(parts[1].power.value(), 1.23, 1e-9);     // driver
  EXPECT_NEAR(parts[2].power.value(), 1.4e-3, 1e-9);   // photodetector
  EXPECT_NEAR(parts[3].power.value(), 25.02, 1e-9);    // TIA
  EXPECT_NEAR(parts[4].power.value(), 17.05, 1e-9);    // CDR
}

TEST(Components, TotalAtPHighNearQuoted43mW) {
  ComponentModel m;
  // Component sum is 43.30 mW; the paper quotes 43.03 (its own rounding).
  EXPECT_NEAR(m.total_mw(Volts{0.9}, GbitsPerSec{5.0}).value(), 43.03, 0.35);
}

TEST(Components, PLowScalingMatchesQuoted8p6mW) {
  ComponentModel m;
  // The P_low total falls out of the scaling laws to within ~1%.
  EXPECT_NEAR(m.total_mw(Volts{0.45}, GbitsPerSec{2.5}).value(), 8.6, 0.15);
}

TEST(Components, ScalingLawsHaveDocumentedExponents) {
  ComponentModel m;
  // Driver & CDR ∝ V² · BR: halving V at fixed BR quarters them.
  const auto hi = m.breakdown(Volts{0.9}, GbitsPerSec{5.0});
  const auto lo = m.breakdown(Volts{0.45}, GbitsPerSec{5.0});
  EXPECT_NEAR(lo[1].power / hi[1].power, 0.25, 1e-9);
  EXPECT_NEAR(lo[4].power / hi[4].power, 0.25, 1e-9);
  // TIA ∝ V · BR: halving V halves it.
  EXPECT_NEAR(lo[3].power / hi[3].power, 0.5, 1e-9);
  // VCSEL ∝ V only: independent of BR.
  const auto slow = m.breakdown(Volts{0.9}, GbitsPerSec{2.5});
  EXPECT_NEAR(slow[0].power.value(), hi[0].power.value(), 1e-12);
}

TEST(Components, TxRxSplitSumsToTotal) {
  ComponentModel m;
  const Volts v{0.6};
  const GbitsPerSec br{3.3};
  EXPECT_NEAR((m.transmitter_mw(v, br) + m.receiver_mw(v, br)).value(),
              m.total_mw(v, br).value(), 1e-12);
}

TEST(Components, ReceiverDominatesLinkPower) {
  // §3.1: TIA + CDR dominate — the receiver is the power hog.
  ComponentModel m;
  EXPECT_GT(m.receiver_mw(Volts{0.9}, GbitsPerSec{5.0}),
            0.9 * m.total_mw(Volts{0.9}, GbitsPerSec{5.0}));
}

// ---- EnergyMeter ---------------------------------------------------------

TEST(EnergyMeter, IntegratesConstantSource) {
  EnergyMeter meter;
  const auto id = meter.add_source(Milliwatts{0.0});
  meter.set_power(id, 0, Milliwatts{10.0});
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(100).value(), 1000.0);
  EXPECT_DOUBLE_EQ(meter.instantaneous_mw().value(), 10.0);
}

TEST(EnergyMeter, SumsMultipleSources) {
  EnergyMeter meter;
  const auto a = meter.add_source();
  const auto b = meter.add_source();
  meter.set_power(a, 0, Milliwatts{5.0});
  meter.set_power(b, 0, Milliwatts{7.0});
  EXPECT_DOUBLE_EQ(meter.instantaneous_mw().value(), 12.0);
  meter.set_power(a, 50, Milliwatts{0.0});
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(100).value(), 12.0 * 50 + 7.0 * 50);
}

TEST(EnergyMeter, AverageOverCheckpointWindow) {
  EnergyMeter meter;
  const auto id = meter.add_source();
  meter.set_power(id, 0, Milliwatts{100.0});
  meter.checkpoint(1000);  // ignore the first 1000 cycles
  meter.set_power(id, 1500, Milliwatts{0.0});
  EXPECT_DOUBLE_EQ(meter.average_mw(2000).value(), 50.0);
}

TEST(EnergyMeter, RedundantSetIsNoOp) {
  EnergyMeter meter;
  const auto id = meter.add_source();
  meter.set_power(id, 0, Milliwatts{3.0});
  meter.set_power(id, 10, Milliwatts{3.0});  // same level, later time — no accounting glitch
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(20).value(), 60.0);
}

}  // namespace
