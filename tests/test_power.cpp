// Unit tests for the power model: per-level link power (Table 1), the
// component scaling laws, transitions, and energy metering.
#include <gtest/gtest.h>

#include "power/components.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"

namespace {

using erapid::power::ComponentModel;
using erapid::power::EnergyMeter;
using erapid::power::LinkPowerModel;
using erapid::power::PowerLevel;
using erapid::power::step_down;
using erapid::power::step_up;

// ---- LinkPowerModel (Table 1 values) ------------------------------------

TEST(LinkPower, Table1PerLevelTotals) {
  LinkPowerModel m;
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::High), 43.03);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Mid), 26.00);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Low), 8.60);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::Off), 0.0);
}

TEST(LinkPower, Table1BitRatesAndVoltages) {
  LinkPowerModel m;
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::High), 5.0);
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Mid), 3.3);
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Low), 2.5);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::High), 0.9);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::Mid), 0.6);
  EXPECT_DOUBLE_EQ(m.supply_v(PowerLevel::Low), 0.45);
}

TEST(LinkPower, VoltageTransitionsCost65Cycles) {
  LinkPowerModel m;
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::High, PowerLevel::Mid), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Off, PowerLevel::Low), 65u);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Mid, PowerLevel::Mid), 0u);
}

TEST(LinkPower, StepUpAndDownSaturate) {
  EXPECT_EQ(step_up(PowerLevel::Low), PowerLevel::Mid);
  EXPECT_EQ(step_up(PowerLevel::Mid), PowerLevel::High);
  EXPECT_EQ(step_up(PowerLevel::High), PowerLevel::High);
  EXPECT_EQ(step_down(PowerLevel::High), PowerLevel::Mid);
  EXPECT_EQ(step_down(PowerLevel::Mid), PowerLevel::Low);
  EXPECT_EQ(step_down(PowerLevel::Low), PowerLevel::Low);   // no DVS to Off
  EXPECT_EQ(step_down(PowerLevel::Off), PowerLevel::Off);
}

TEST(LinkPower, PowerIsMonotoneInLevel) {
  LinkPowerModel m;
  EXPECT_LT(m.power_mw(PowerLevel::Off), m.power_mw(PowerLevel::Low));
  EXPECT_LT(m.power_mw(PowerLevel::Low), m.power_mw(PowerLevel::Mid));
  EXPECT_LT(m.power_mw(PowerLevel::Mid), m.power_mw(PowerLevel::High));
}

TEST(LinkPower, OverridesForAblation) {
  LinkPowerModel m;
  m.set_power_mw(PowerLevel::High, 50.0);
  m.set_transition_cycles(100, 20);
  EXPECT_DOUBLE_EQ(m.power_mw(PowerLevel::High), 50.0);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High), 100u);
}

TEST(LinkPower, FixedRateBaselineMakesDvsFree) {
  // An electrical-baseline model pins rate and voltage at every level:
  // transitions then cost only the CDR relock (equal voltage).
  LinkPowerModel m;
  for (auto l : {PowerLevel::Low, PowerLevel::Mid, PowerLevel::High}) {
    m.set_bitrate_gbps(l, 6.4);
    m.set_supply_v(l, 1.2);
    m.set_power_mw(l, 128.0);
  }
  EXPECT_DOUBLE_EQ(m.bitrate_gbps(PowerLevel::Low), 6.4);
  EXPECT_EQ(m.transition_cycles(PowerLevel::Low, PowerLevel::High),
            m.freq_relock_cycles());
}

// ---- ComponentModel (§4.1 anchors & scaling laws) ------------------------

TEST(Components, AnchorsReproducePaperBreakdown) {
  ComponentModel m;
  const auto parts = m.breakdown(0.9, 5.0);
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_NEAR(parts[0].milliwatts, 1.5e-3, 1e-9);   // VCSEL 1.5 uW
  EXPECT_NEAR(parts[1].milliwatts, 1.23, 1e-9);     // driver
  EXPECT_NEAR(parts[2].milliwatts, 1.4e-3, 1e-9);   // photodetector
  EXPECT_NEAR(parts[3].milliwatts, 25.02, 1e-9);    // TIA
  EXPECT_NEAR(parts[4].milliwatts, 17.05, 1e-9);    // CDR
}

TEST(Components, TotalAtPHighNearQuoted43mW) {
  ComponentModel m;
  // Component sum is 43.30 mW; the paper quotes 43.03 (its own rounding).
  EXPECT_NEAR(m.total_mw(0.9, 5.0), 43.03, 0.35);
}

TEST(Components, PLowScalingMatchesQuoted8p6mW) {
  ComponentModel m;
  // The P_low total falls out of the scaling laws to within ~1%.
  EXPECT_NEAR(m.total_mw(0.45, 2.5), 8.6, 0.15);
}

TEST(Components, ScalingLawsHaveDocumentedExponents) {
  ComponentModel m;
  // Driver & CDR ∝ V² · BR: halving V at fixed BR quarters them.
  const auto hi = m.breakdown(0.9, 5.0);
  const auto lo = m.breakdown(0.45, 5.0);
  EXPECT_NEAR(lo[1].milliwatts / hi[1].milliwatts, 0.25, 1e-9);
  EXPECT_NEAR(lo[4].milliwatts / hi[4].milliwatts, 0.25, 1e-9);
  // TIA ∝ V · BR: halving V halves it.
  EXPECT_NEAR(lo[3].milliwatts / hi[3].milliwatts, 0.5, 1e-9);
  // VCSEL ∝ V only: independent of BR.
  const auto slow = m.breakdown(0.9, 2.5);
  EXPECT_NEAR(slow[0].milliwatts, hi[0].milliwatts, 1e-12);
}

TEST(Components, TxRxSplitSumsToTotal) {
  ComponentModel m;
  const double v = 0.6, br = 3.3;
  EXPECT_NEAR(m.transmitter_mw(v, br) + m.receiver_mw(v, br), m.total_mw(v, br), 1e-12);
}

TEST(Components, ReceiverDominatesLinkPower) {
  // §3.1: TIA + CDR dominate — the receiver is the power hog.
  ComponentModel m;
  EXPECT_GT(m.receiver_mw(0.9, 5.0), 0.9 * m.total_mw(0.9, 5.0));
}

// ---- EnergyMeter ---------------------------------------------------------

TEST(EnergyMeter, IntegratesConstantSource) {
  EnergyMeter meter;
  const auto id = meter.add_source(0.0);
  meter.set_power(id, 0, 10.0);
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(100), 1000.0);
  EXPECT_DOUBLE_EQ(meter.instantaneous_mw(), 10.0);
}

TEST(EnergyMeter, SumsMultipleSources) {
  EnergyMeter meter;
  const auto a = meter.add_source();
  const auto b = meter.add_source();
  meter.set_power(a, 0, 5.0);
  meter.set_power(b, 0, 7.0);
  EXPECT_DOUBLE_EQ(meter.instantaneous_mw(), 12.0);
  meter.set_power(a, 50, 0.0);
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(100), 12.0 * 50 + 7.0 * 50);
}

TEST(EnergyMeter, AverageOverCheckpointWindow) {
  EnergyMeter meter;
  const auto id = meter.add_source();
  meter.set_power(id, 0, 100.0);
  meter.checkpoint(1000);  // ignore the first 1000 cycles
  meter.set_power(id, 1500, 0.0);
  EXPECT_DOUBLE_EQ(meter.average_mw(2000), 50.0);
}

TEST(EnergyMeter, RedundantSetIsNoOp) {
  EnergyMeter meter;
  const auto id = meter.add_source();
  meter.set_power(id, 0, 3.0);
  meter.set_power(id, 10, 3.0);  // same level, later time — no accounting glitch
  EXPECT_DOUBLE_EQ(meter.energy_mw_cycles(20), 60.0);
}

}  // namespace
