// Observability subsystem tests.
//
// Three layers of guarantees, strongest first:
//
//   1. Inertness: with obs off the simulation result serializes identically
//      to an obs-on run's core fields, and the report carries no
//      "obs_metrics" block (the golden fixture in test_determinism.cpp
//      additionally pins the obs-off report byte-for-byte).
//   2. Determinism: two same-seed traced runs write byte-identical trace
//      files (both backends), and a committed golden trace pins the tiny
//      4-board run's full event stream. Regenerate with
//      ERAPID_REGEN_GOLDEN=1 only when the change is intended.
//   3. Compile-out: built with ERAPID_NO_OBS the probes vanish — a run with
//      obs.enabled=true produces no trace file and no metrics snapshot.
//      This binary is part of the NO_OBS CI matrix, so both sides of the
//      #if are exercised.
//
// Plus unit tests for the Args builder, the MetricsRegistry kinds, and the
// trace writers (always compiled; only the probe macros gate on
// ERAPID_NO_OBS).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace erapid;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[maybe_unused]] bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

sim::SimOptions base_options() {
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.reconfig.mode = reconfig::NetworkMode::p_b();
  o.load_fraction = 0.5;
  o.seed = 1;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.drain_limit = 60000;
  return o;
}

// ---- unit: Args builder -----------------------------------------------------

TEST(Args, BuildsDeterministicJsonObject) {
  obs::Args a;
  EXPECT_TRUE(a.empty());
  a.add("board", std::uint64_t{3})
      .add("delta", std::int64_t{-2})
      .add("util", 0.25)
      .add("kind", std::string("dbr"));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.str(), "{\"board\":3,\"delta\":-2,\"util\":0.25,\"kind\":\"dbr\"}");
}

TEST(Args, EscapesStrings) {
  obs::Args a;
  a.add("s", std::string("a\"b\\c"));
  EXPECT_EQ(a.str(), "{\"s\":\"a\\\"b\\\\c\"}");
}

TEST(TraceFormat, ValueFormattingIsStable) {
  EXPECT_EQ(obs::format_trace_value(0.0), "0");
  EXPECT_EQ(obs::format_trace_value(2.0), "2");
  EXPECT_EQ(obs::format_trace_value(0.25), "0.25");
  // Same value, same string — the determinism contract for counters.
  EXPECT_EQ(obs::format_trace_value(1.0 / 3.0), obs::format_trace_value(1.0 / 3.0));
}

// ---- unit: MetricsRegistry --------------------------------------------------

TEST(MetricsRegistry, CounterGaugeSeriesTimeline) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("a.count");
  const auto g = reg.gauge("b.level", 0, 10.0);
  const auto s = reg.series("c.samples");
  const auto t = reg.timeline("d.points");

  reg.add(c, 2);
  reg.add(c);
  EXPECT_EQ(reg.counter_value(c), 3u);

  reg.set_gauge(g, 50, 30.0);
  EXPECT_EQ(reg.gauge_level(g), 30.0);
  // 10 for 50 cycles then 30 for 50 cycles -> average 20.
  EXPECT_DOUBLE_EQ(reg.gauge_average(g, 0, 100), 20.0);

  reg.observe(s, 1.0);
  reg.observe(s, 3.0);
  EXPECT_EQ(reg.series_stats(s).count(), 2u);
  EXPECT_DOUBLE_EQ(reg.series_stats(s).mean(), 2.0);

  reg.record(t, 0, 5.0);
  reg.record(t, 100, 15.0);
  ASSERT_EQ(reg.timeline_points(t).size(), 2u);
  EXPECT_EQ(reg.timeline_points(t)[1].cycle, 100u);
  EXPECT_DOUBLE_EQ(reg.timeline_stats(t).max(), 15.0);
}

TEST(MetricsRegistry, RegistrationIsGetOrCreate) {
  obs::MetricsRegistry reg;
  const auto a = reg.counter("same.name");
  const auto b = reg.counter("same.name");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  obs::MetricsRegistry reg;
  reg.counter("zzz.last");
  reg.counter("aaa.first");
  reg.counter("mmm.middle");
  const auto snap = reg.snapshot(0);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "aaa.first");
  EXPECT_EQ(snap[1].first, "mmm.middle");
  EXPECT_EQ(snap[2].first, "zzz.last");
}

// ---- unit: histogram metric kind --------------------------------------------

TEST(Histogram, BucketMappingIsLog2) {
  // Bucket 0 absorbs [0, 1) plus anything non-finite or negative; bucket i
  // covers [2^(i-1), 2^i); the last bucket absorbs overflow.
  EXPECT_EQ(obs::histogram_bucket_of(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(0.99), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(-5.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket_of(1.99), 1u);
  EXPECT_EQ(obs::histogram_bucket_of(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket_of(3.99), 2u);
  EXPECT_EQ(obs::histogram_bucket_of(4.0), 3u);
  EXPECT_EQ(obs::histogram_bucket_of(1024.0), 11u);
  EXPECT_EQ(obs::histogram_bucket_of(1.0e300), obs::kHistogramBuckets - 1);
}

TEST(Histogram, ObserveCountsAndQuantiles) {
  obs::MetricsRegistry reg;
  const auto h = reg.histogram("lat.hist");
  for (int i = 0; i < 100; ++i) reg.observe(h, 10.0);  // bucket 4: [8, 16)
  reg.observe(h, 1000.0);                              // bucket 10
  EXPECT_EQ(reg.histogram_stats(h).count(), 101u);
  EXPECT_EQ(reg.histogram_bucket_count(h, 4), 100u);
  EXPECT_EQ(reg.histogram_bucket_count(h, 10), 1u);
  EXPECT_EQ(reg.histogram_bucket_count(h, 0), 0u);
  // p50 lies in the dominant bucket; p100-ish is clamped to the observed max.
  const double p50 = reg.histogram_quantile(h, 0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LT(p50, 16.0);
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 0.0), 10.0);
}

TEST(Histogram, EmptyHistogramIsZero) {
  obs::MetricsRegistry reg;
  const auto h = reg.histogram("empty.hist");
  EXPECT_EQ(reg.histogram_stats(h).count(), 0u);
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 0.99), 0.0);
}

TEST(Histogram, SnapshotRendersSparseOrderedBuckets) {
  obs::MetricsRegistry reg;
  const auto h = reg.histogram("h.render");
  reg.observe(h, 0.5);   // bucket 0
  reg.observe(h, 12.0);  // bucket 4
  reg.observe(h, 12.0);
  const auto snap = reg.snapshot(0);
  ASSERT_EQ(snap.size(), 1u);
  const std::string& v = snap[0].second;
  EXPECT_NE(v.find("\"count\": 3"), std::string::npos) << v;
  EXPECT_NE(v.find("\"buckets\": [[0, 1], [4, 2]]"), std::string::npos) << v;
  EXPECT_NE(v.find("\"p99\":"), std::string::npos) << v;
}

TEST(Histogram, SameSamplesAnyOrderSameRendering) {
  // Insertion order must not leak into the snapshot (determinism contract).
  obs::MetricsRegistry a, b;
  const auto ha = a.histogram("h");
  const auto hb = b.histogram("h");
  const double samples[] = {3.0, 700.0, 0.2, 3.0, 65.0};
  for (double s : samples) a.observe(ha, s);
  for (int i = 4; i >= 0; --i) b.observe(hb, samples[i]);
  EXPECT_EQ(a.snapshot(0), b.snapshot(0));
}

// ---- unit: trace writers ----------------------------------------------------

TEST(ChromeTraceWriter, EmitsSchemaFooterAndTracks) {
  const auto path = tmp_path("unit_chrome.trace.json");
  {
    obs::ChromeTraceWriter w(path);
    ASSERT_TRUE(w.ok());
    const auto track = w.register_track("unit.track");
    w.complete(track, "span.one", 10, 5, "{\"k\":1}");
    w.instant(track, "mark", 12, "");
    w.counter(track, "level", 15, 2.5);
    w.async_begin(track, "owned", 7, 20, "");
    w.async_end(track, "owned", 7, 30);
    w.close(40);
    w.close(40);  // idempotent
  }
  const auto text = slurp(path);
  EXPECT_NE(text.find(obs::ChromeTraceWriter::kSchema), std::string::npos);
  EXPECT_NE(text.find("\"unit.track\""), std::string::npos);
  EXPECT_NE(text.find("\"span.one\""), std::string::npos);
  EXPECT_NE(text.find("\"end_cycle\":40"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTimelineWriter, EmitsHeaderAndRows) {
  const auto path = tmp_path("unit_timeline.trace.csv");
  {
    obs::CsvTimelineWriter w(path);
    ASSERT_TRUE(w.ok());
    const auto track = w.register_track("unit.track");
    w.complete(track, "span.one", 10, 5, "");
    w.counter(track, "level", 15, 2.5);
    w.close(40);
  }
  const auto text = slurp(path);
  EXPECT_EQ(text.rfind("cycle,kind,track,name,id,value,args\n", 0), 0u);
  EXPECT_NE(text.find("10,span,unit.track,span.one,,5,"), std::string::npos);
  EXPECT_NE(text.find("15,counter,unit.track,level,,2.5,"), std::string::npos);
  std::remove(path.c_str());
}

// ---- integration: inertness -------------------------------------------------

TEST(ObsInert, DisabledRunCarriesNoMetricsBlock) {
  sim::SimOptions o = base_options();
  const auto r = sim::Simulation(o).run();
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(sim::to_json(r).find("obs_metrics"), std::string::npos);
}

#if !defined(ERAPID_NO_OBS)

TEST(ObsInert, EnabledRunLeavesCoreResultUntouched) {
  sim::SimOptions off = base_options();
  const auto report_off = sim::to_json(sim::Simulation(off).run());

  sim::SimOptions on = base_options();
  on.obs.enabled = true;  // metrics only, no trace file
  auto r = sim::Simulation(on).run();
  EXPECT_FALSE(r.metrics.empty());
  // Core fields must match the obs-off run exactly: strip the snapshot and
  // the reports must be byte-identical.
  r.metrics.clear();
  EXPECT_EQ(sim::to_json(r), report_off);
}

// ---- integration: trace determinism -----------------------------------------

std::string run_traced(const std::string& path, const std::string& format,
                       std::uint64_t seed = 1) {
  sim::SimOptions o = base_options();
  o.seed = seed;
  o.obs.enabled = true;
  o.obs.trace_path = path;
  o.obs.trace_format = format;
  (void)sim::Simulation(o).run();
  const auto text = slurp(path);
  std::remove(path.c_str());
  return text;
}

TEST(ObsDeterminism, SameSeedChromeTracesAreByteIdentical) {
  const auto a = run_traced(tmp_path("det_a.trace.json"), "chrome");
  const auto b = run_traced(tmp_path("det_b.trace.json"), "chrome");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(ObsDeterminism, SameSeedCsvTracesAreByteIdentical) {
  const auto a = run_traced(tmp_path("det_a.trace.csv"), "csv");
  const auto b = run_traced(tmp_path("det_b.trace.csv"), "csv");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(ObsDeterminism, DifferentSeedsDiverge) {
  // Sanity check that the byte-identity above is not vacuous.
  const auto a = run_traced(tmp_path("seed1.trace.json"), "chrome", 1);
  const auto b = run_traced(tmp_path("seed2.trace.json"), "chrome", 2);
  EXPECT_NE(a, b);
}

// ---- golden trace fixture ---------------------------------------------------

std::string trace_fixture_path() {
  return std::string(ERAPID_TEST_DATA_DIR) + "/golden_trace_small.json";
}

TEST(GoldenTrace, SmallRunTraceMatchesCommittedFixtureExactly) {
  sim::SimOptions o = base_options();
  o.warmup_cycles = 2000;
  o.measure_cycles = 4000;
  o.drain_limit = 20000;
  o.obs.enabled = true;
  o.obs.trace_path = tmp_path("golden_candidate.trace.json");
  o.obs.counter_interval = 1000;
  (void)sim::Simulation(o).run();
  const auto trace = slurp(o.obs.trace_path);
  std::remove(o.obs.trace_path.c_str());

  if (std::getenv("ERAPID_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(trace_fixture_path());
    ASSERT_TRUE(out) << "cannot write " << trace_fixture_path();
    out << trace;
    GTEST_SKIP() << "regenerated " << trace_fixture_path();
  }

  std::ifstream in(trace_fixture_path());
  ASSERT_TRUE(in) << "missing fixture " << trace_fixture_path()
                  << " (regenerate with ERAPID_REGEN_GOLDEN=1)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(trace, ss.str())
      << "golden trace drifted — if the instrumentation change is intended, "
         "regenerate with ERAPID_REGEN_GOLDEN=1 and call it out in the "
         "commit message";
}

#else  // ERAPID_NO_OBS

TEST(ObsCompiledOut, EnabledOptionsProduceNothing) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.trace_path = tmp_path("no_obs.trace.json");
  const auto r = sim::Simulation(o).run();
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(sim::to_json(r).find("obs_metrics"), std::string::npos);
  EXPECT_FALSE(file_exists(o.obs.trace_path));
}

TEST(ObsCompiledOut, ProbeMacroArgumentsAreNotEvaluated) {
  // The macros must compile away completely: argument expressions with side
  // effects never run under ERAPID_NO_OBS.
  [[maybe_unused]] obs::Hub* hub = nullptr;
  int touched = 0;
  [[maybe_unused]] auto touch = [&touched]() {
    ++touched;
    return obs::MetricId{0};
  };
  ERAPID_COUNTER(hub, touch(), 1);
  ERAPID_OBSERVE(hub, touch(), 1.0);
  EXPECT_EQ(touched, 0);
}

#endif  // ERAPID_NO_OBS

}  // namespace
