#!/usr/bin/env python3
"""Self-test for tools/lint/det_lint.py.

Runs the linter over the fixture corpus in tests/lint_fixtures/: each bad_*
fixture must trip exactly its rule, the good fixtures must be clean, and
in-place / file-wide suppressions must be honored. Registered in CTest as
`lint.self_test`.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURES = TESTS_DIR / "lint_fixtures"

sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))
import det_lint  # noqa: E402


def lint(name, rules=None):
    path = FIXTURES / name
    return det_lint.lint_path(path, set(rules or det_lint.RULES))


def rules_of(findings):
    return {f.rule for f in findings}


class BadFixturesTrip(unittest.TestCase):
    def test_unordered_container(self):
        findings = lint("bad_unordered.cpp")
        self.assertEqual(rules_of(findings), {"unordered-container"})
        # Both includes and both member declarations.
        self.assertGreaterEqual(len(findings), 4)

    def test_nondet_source(self):
        findings = lint("bad_nondet.cpp")
        self.assertEqual(rules_of(findings), {"nondet-source"})
        lines = {f.line for f in findings}
        # random_device/rand, time(), steady_clock, clock() all fire.
        self.assertGreaterEqual(len(lines), 4)

    def test_pointer_order(self):
        findings = lint("bad_pointer_order.cpp")
        self.assertEqual(rules_of(findings), {"pointer-order"})
        # Pointer-keyed map, pointer-keyed set, pointer comparator lambda.
        self.assertGreaterEqual(len(findings), 3)

    def test_uninit_member(self):
        findings = lint("bad_uninit.hpp")
        self.assertEqual(rules_of(findings), {"uninit-member"})
        # threshold, window, enabled, sink.
        self.assertEqual(len(findings), 4)

    def test_enum_switch_default(self):
        findings = lint("bad_enum_switch.cpp")
        self.assertEqual(rules_of(findings), {"enum-switch-default"})
        self.assertEqual(len(findings), 1)


class GoodFixturesClean(unittest.TestCase):
    def test_good_header(self):
        self.assertEqual(lint("good.hpp"), [])

    def test_good_source(self):
        self.assertEqual(lint("good.cpp"), [])


class SuppressionsHonored(unittest.TestCase):
    def test_inline_allow(self):
        self.assertEqual(lint("suppressed.cpp"), [])

    def test_file_allow(self):
        self.assertEqual(lint("suppressed_file.cpp"), [])

    def test_allow_only_covers_named_rule(self):
        # The same suppression comment must not silence a different rule.
        findings = lint("bad_unordered.cpp", rules=["unordered-container"])
        self.assertTrue(findings)


class RuleSelection(unittest.TestCase):
    def test_rule_subset_filters(self):
        findings = lint("bad_unordered.cpp", rules=["nondet-source"])
        self.assertEqual(findings, [])

    def test_unknown_rule_is_usage_error(self):
        rc = det_lint.main([str(FIXTURES / "good.cpp"), "--rules", "no-such-rule"])
        self.assertEqual(rc, 2)

    def test_empty_rule_selection_is_usage_error(self):
        for empty in ("", " , ,"):
            rc = det_lint.main([str(FIXTURES / "good.cpp"), "--rules", empty])
            self.assertEqual(rc, 2)


class CliContract(unittest.TestCase):
    def test_exit_codes_and_json_report(self):
        with tempfile.TemporaryDirectory() as td:
            report = Path(td) / "report.json"
            rc_bad = det_lint.main([str(FIXTURES / "bad_uninit.hpp"), "--json", str(report)])
            self.assertEqual(rc_bad, 1)
            doc = json.loads(report.read_text())
            self.assertEqual(doc["tool"], "det-lint")
            self.assertEqual(doc["finding_count"], 4)
            self.assertTrue(all(f["rule"] == "uninit-member" for f in doc["findings"]))
            self.assertTrue(all("file" in f and "line" in f for f in doc["findings"]))

            rc_good = det_lint.main([str(FIXTURES / "good.cpp"), "--json", str(report)])
            self.assertEqual(rc_good, 0)
            self.assertEqual(json.loads(report.read_text())["finding_count"], 0)

    def test_src_tree_is_clean(self):
        # The enforced gate: the simulator source must stay hazard-free.
        rc = det_lint.main([str(REPO_ROOT / "src")])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
