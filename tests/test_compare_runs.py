#!/usr/bin/env python3
"""Self-test for tools/obs/compare_runs.py (CTest: lint.compare_runs_self_test).

Builds tiny synthetic bench artifacts and simulation reports and checks the
observatory's contract: identical runs pass, a worse-direction move beyond
the threshold regresses (the acceptance case: a ≥10% latency regression is
flagged), improvements and sub-threshold drift never fail, wall time is
ignored unless opted in, and the CLI keeps its exit-code and --json
contracts.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "tools" / "obs"))
import compare_runs  # noqa: E402


def bench_doc(points):
    return {
        "schema": "erapid-bench-1",
        "bench": "Fig. 6 butterfly",
        "pattern": "butterfly",
        "git_rev": "test",
        "points": points,
    }


def bench_point(**overrides):
    p = {
        "mode": "P-B", "load": 0.5, "throughput_xNc": 0.5,
        "latency_avg_cycles": 100.0, "latency_p99_cycles": 400.0,
        "power_avg_mw": 2000.0, "active_power_avg_mw": 900.0,
        "energy_per_packet_mw_cycles": 50.0, "drained": True,
        "wall_ms": 120.0,
    }
    p.update(overrides)
    return p


def report_doc(obs_metrics=None, **overrides):
    r = {
        "accepted_fraction": 0.5, "latency_avg": 100.0, "latency_p99": 400.0,
        "power_avg_mw": 2000.0, "drained": True,
    }
    r.update(overrides)
    if obs_metrics is not None:
        r["obs_metrics"] = obs_metrics
    return {"results": [{"name": "run", "metrics": r}]}


def kinds(comparisons, metric):
    return [c["kind"] for c in comparisons if c["metric"] == metric]


class BenchComparison(unittest.TestCase):
    def compare(self, base, cand, threshold=0.05, include_wall=False):
        return compare_runs.compare_docs(base, cand, threshold, include_wall)

    def test_identical_runs_have_no_regressions(self):
        doc = bench_doc([bench_point(), bench_point(mode="NP-NB")])
        out = self.compare(doc, doc)
        self.assertTrue(all(c["kind"] == "same" for c in out))

    def test_ten_percent_latency_regression_is_flagged(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(latency_avg_cycles=110.0)])
        out = self.compare(base, cand)
        self.assertIn("regressed", kinds(out, "latency_avg_cycles"))

    def test_latency_improvement_is_not_a_regression(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(latency_avg_cycles=80.0)])
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "latency_avg_cycles"), ["improved"])

    def test_throughput_direction_is_inverted(self):
        base = bench_doc([bench_point()])
        down = bench_doc([bench_point(throughput_xNc=0.4)])
        up = bench_doc([bench_point(throughput_xNc=0.6)])
        self.assertIn("regressed", kinds(self.compare(base, down), "throughput_xNc"))
        self.assertIn("improved", kinds(self.compare(base, up), "throughput_xNc"))

    def test_sub_threshold_drift_passes(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(latency_avg_cycles=103.0)])  # +3% < 5%
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "latency_avg_cycles"), ["drifted"])

    def test_drained_flip_regresses(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(drained=False)])
        self.assertEqual(kinds(self.compare(base, cand), "drained"), ["regressed"])

    def test_monitor_verdict_flip_regresses(self):
        base = bench_doc([bench_point(monitors_ok=True, monitor_violations=0)])
        cand = bench_doc([bench_point(monitors_ok=False, monitor_violations=3)])
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "monitors_ok"), ["regressed"])
        self.assertEqual(kinds(out, "monitor_violations"), ["regressed"])

    def test_wall_time_ignored_unless_opted_in(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(wall_ms=500.0)])
        self.assertEqual(kinds(self.compare(base, cand), "wall_ms"), [])
        out = self.compare(base, cand, include_wall=True)
        self.assertEqual(kinds(out, "wall_ms"), ["regressed"])

    def test_missing_point_regresses(self):
        base = bench_doc([bench_point(), bench_point(mode="NP-NB")])
        cand = bench_doc([bench_point()])
        self.assertIn("regressed", kinds(self.compare(base, cand), "point"))


class CampaignComparison(unittest.TestCase):
    """Campaign-artifact features: 4-component keys, failed points, and
    doc-level wall aggregates."""

    def compare(self, base, cand, threshold=0.05, include_wall=False):
        return compare_runs.compare_docs(base, cand, threshold, include_wall)

    def campaign_doc(self, points, **doc_fields):
        doc = bench_doc(points)
        doc.update(doc_fields)
        return doc

    def test_points_match_on_pattern_mode_load_seed(self):
        # Same (mode, load), different seed: distinct points, not a clash.
        base = bench_doc([bench_point(pattern="uniform", seed=1),
                          bench_point(pattern="uniform", seed=2)])
        out = self.compare(base, base)
        self.assertTrue(all(c["kind"] == "same" for c in out))
        # Dropping one seed from the candidate regresses that point only.
        cand = bench_doc([bench_point(pattern="uniform", seed=1)])
        out = self.compare(base, cand)
        missing = [c for c in out if c["metric"] == "point"]
        self.assertEqual(len(missing), 1)
        self.assertEqual(missing[0]["kind"], "regressed")
        self.assertIn("seed=2", missing[0]["where"])

    def test_legacy_points_without_pattern_seed_still_match(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(latency_avg_cycles=103.0)])
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "latency_avg_cycles"), ["drifted"])

    def test_point_turning_failed_regresses(self):
        key = {"pattern": "uniform", "seed": 1}
        base = bench_doc([bench_point(**key)])
        cand = bench_doc([{"pattern": "uniform", "mode": "P-B", "load": 0.5,
                           "seed": 1, "failed": True, "error": "boom"}])
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "failed"), ["regressed"])
        # No metric comparisons against the dead point.
        self.assertEqual(kinds(out, "latency_avg_cycles"), [])
        # The reverse direction is an improvement, both-failed is quiet.
        self.assertEqual(kinds(self.compare(cand, base), "failed"), ["improved"])
        self.assertEqual(kinds(self.compare(cand, cand), "failed"), ["same"])

    def test_points_failed_rise_regresses_at_doc_level(self):
        base = self.campaign_doc([bench_point()], points_failed=0)
        cand = self.campaign_doc([bench_point()], points_failed=2)
        out = self.compare(base, cand)
        self.assertEqual(kinds(out, "points_failed"), ["regressed"])

    def test_wall_aggregates_follow_include_wall(self):
        base = self.campaign_doc([bench_point()], wall_ms_sum=100.0,
                                 wall_ms_max=60.0)
        cand = self.campaign_doc([bench_point()], wall_ms_sum=200.0,
                                 wall_ms_max=150.0)
        self.assertEqual(kinds(self.compare(base, cand), "wall_ms_sum"), [])
        self.assertEqual(kinds(self.compare(base, cand), "wall_ms_max"), [])
        out = self.compare(base, cand, include_wall=True)
        self.assertEqual(kinds(out, "wall_ms_sum"), ["regressed"])
        self.assertEqual(kinds(out, "wall_ms_max"), ["regressed"])


class ReportComparison(unittest.TestCase):
    def test_obs_metrics_drift_is_flagged(self):
        base = report_doc(obs_metrics={"des.events": 1000,
                                       "sim.packet_latency": {"mean": 100.0}})
        cand = report_doc(obs_metrics={"des.events": 1300,
                                       "sim.packet_latency": {"mean": 100.0}})
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "obs_metrics.des.events"))
        self.assertIn("same", kinds(out, "obs_metrics.sim.packet_latency.mean"))

    def test_vanished_metric_is_flagged(self):
        base = report_doc(obs_metrics={"des.events": 1000})
        cand = report_doc(obs_metrics={})
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "obs_metrics.des.events"))

    def test_top_level_latency_rule_applies(self):
        base = report_doc()
        cand = report_doc(latency_p99=480.0)  # +20%
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "latency_p99"))

    def test_mixing_artifact_types_raises(self):
        with self.assertRaises(compare_runs.CompareError):
            compare_runs.compare_docs(bench_doc([]), report_doc(), 0.05, False)

    def test_legacy_report_without_obs_monitors_compares_as_monitor_free(self):
        # A pre-monitor baseline has no obs_monitors block; a clean current
        # run gates fine against it, and a violating one still regresses.
        legacy = report_doc()
        clean = report_doc(
            obs_monitors={"ok": True, "violations": 0, "checks": {}})
        out = compare_runs.compare_docs(legacy, clean, 0.05, False)
        self.assertTrue(all(c["kind"] != "regressed" for c in out))

        violating = report_doc(
            obs_monitors={"ok": False, "violations": 3, "checks": {}})
        out = compare_runs.compare_docs(legacy, violating, 0.05, False)
        self.assertIn("regressed", kinds(out, "ok"))
        self.assertIn("regressed", kinds(out, "violations"))

    def test_monitor_verdicts_compare_between_current_reports(self):
        base = report_doc(
            obs_monitors={"ok": True, "violations": 0, "checks": {}})
        cand = report_doc(
            obs_monitors={"ok": False, "violations": 1, "checks": {}})
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "ok"))


def resilience_block(**overrides):
    r = {
        "engaged": True, "peak_stage": "cap_low", "steps_down": 2,
        "steps_up": 0, "lanes_shed": 0, "lanes_restored": 0, "lanes_slept": 0,
        "episodes": 0, "time_degraded": 13500, "suppressed_violations": 3,
    }
    r.update(overrides)
    return r


class ResilienceComparison(unittest.TestCase):
    """The survivability gate: absence of the block = degradation-free."""

    def report_with(self, resilience=None):
        doc = report_doc()
        if resilience is not None:
            doc["results"][0]["metrics"]["resilience"] = resilience
        return doc

    def test_both_absent_compares_silently(self):
        out = compare_runs.compare_docs(
            self.report_with(), self.report_with(), 0.05, False)
        self.assertFalse([c for c in out if c["metric"].startswith("resilience.")])

    def test_engaging_against_a_clean_baseline_regresses(self):
        # The baseline never built a controller (no block); the candidate
        # brownouted. Engaged flipping on, the descent, and the degraded
        # time must all gate.
        out = compare_runs.compare_docs(
            self.report_with(), self.report_with(resilience_block()),
            0.05, False)
        self.assertIn("regressed", kinds(out, "resilience.engaged"))
        self.assertIn("regressed", kinds(out, "resilience.steps_down"))
        self.assertIn("regressed", kinds(out, "resilience.time_degraded"))
        self.assertIn("regressed", kinds(out, "resilience.peak_stage"))

    def test_recovering_from_degradation_improves(self):
        out = compare_runs.compare_docs(
            self.report_with(resilience_block()), self.report_with(),
            0.05, False)
        self.assertIn("improved", kinds(out, "resilience.engaged"))
        self.assertIn("improved", kinds(out, "resilience.peak_stage"))
        self.assertNotIn("regressed",
                         [c["kind"] for c in out
                          if c["metric"].startswith("resilience.")])

    def test_identical_degraded_runs_have_no_regressions(self):
        out = compare_runs.compare_docs(
            self.report_with(resilience_block()),
            self.report_with(resilience_block()), 0.05, False)
        self.assertNotIn("regressed", [c["kind"] for c in out])

    def test_deeper_peak_stage_regresses(self):
        out = compare_runs.compare_docs(
            self.report_with(resilience_block(peak_stage="cap_low")),
            self.report_with(resilience_block(peak_stage="shed")), 0.05, False)
        self.assertIn("regressed", kinds(out, "resilience.peak_stage"))

    def test_recovery_activity_is_informational(self):
        # More steps back up / lanes restored is not worse — the gate must
        # not punish a candidate for recovering harder.
        out = compare_runs.compare_docs(
            self.report_with(resilience_block(steps_up=0, lanes_restored=0)),
            self.report_with(resilience_block(steps_up=5, lanes_restored=4)),
            0.05, False)
        self.assertNotIn("regressed", kinds(out, "resilience.steps_up"))
        self.assertNotIn("regressed", kinds(out, "resilience.lanes_restored"))

    def test_bench_points_carry_the_same_gate(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(resilience=resilience_block())])
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "resilience.engaged"))

    def test_campaign_retry_counts_gate_absent_as_zero(self):
        base = bench_doc([bench_point()])
        cand = bench_doc([bench_point(retried=2, timed_out=1)])
        out = compare_runs.compare_docs(base, cand, 0.05, False)
        self.assertIn("regressed", kinds(out, "retried"))
        self.assertIn("regressed", kinds(out, "timed_out"))
        # Retry-free on both sides adds nothing to the comparison set.
        quiet = compare_runs.compare_docs(
            bench_doc([bench_point()]), bench_doc([bench_point()]), 0.05, False)
        self.assertFalse([c for c in quiet if c["metric"] in ("retried",
                                                              "timed_out")])


class CliContract(unittest.TestCase):
    def write(self, tmp, name, doc):
        path = Path(tmp) / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_exit_codes_and_json_output(self):
        import contextlib
        import io
        with tempfile.TemporaryDirectory() as tmp:
            same = self.write(tmp, "a.json", bench_doc([bench_point()]))
            worse = self.write(
                tmp, "b.json", bench_doc([bench_point(latency_avg_cycles=115.0)]))
            bad = self.write(tmp, "c.json", {"schema": "other"})

            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                self.assertEqual(compare_runs.main([same, same, "--json"]), 0)
            doc = json.loads(buf.getvalue())
            self.assertTrue(doc["ok"])
            self.assertEqual(doc["regressions"], 0)

            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                self.assertEqual(compare_runs.main([same, worse, "--json"]), 1)
            doc = json.loads(buf.getvalue())
            self.assertFalse(doc["ok"])
            self.assertGreater(doc["regressions"], 0)

            with contextlib.redirect_stdout(io.StringIO()), \
                 contextlib.redirect_stderr(io.StringIO()):
                self.assertEqual(compare_runs.main([same, bad]), 2)

    def test_threshold_knob_loosens_the_gate(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = self.write(tmp, "a.json", bench_doc([bench_point()]))
            cand = self.write(
                tmp, "b.json", bench_doc([bench_point(latency_avg_cycles=110.0)]))
            import contextlib
            import io
            with contextlib.redirect_stdout(io.StringIO()):
                self.assertEqual(compare_runs.main([base, cand]), 1)
                self.assertEqual(
                    compare_runs.main([base, cand, "--threshold-pct", "15"]), 0)


if __name__ == "__main__":
    unittest.main()
