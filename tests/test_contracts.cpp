// Contract tests: every ERAPID_REQUIRE / ERAPID_INVARIANT placed by the
// determinism-contract layer (DESIGN.md §7) is deliberately violated here
// and must throw ModelInvariantError with a useful diagnostic. If one of
// these stops throwing, either a contract was deleted or the build was
// configured with ERAPID_NO_CONTRACTS — both are regressions for the test
// configuration.
//
// Layout mirrors the instrumented subsystems: des, reconfig, optical,
// power. Each TEST names the contract it violates.
#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "power/energy_meter.hpp"
#include "power/link_power.hpp"
#include "reconfig/allocation.hpp"
#include "reconfig/dpm_strategy.hpp"
#include "reconfig/manager.hpp"
#include "reconfig/policy.hpp"
#include "resilience/controller.hpp"
#include "tests_support.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"

namespace erapid {
namespace {

using power::PowerLevel;
using test::LaneRig;

// ---- des ------------------------------------------------------------------

TEST(ContractDes, ScheduleInThePastViolatesRequire) {
  des::Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_all();
  ASSERT_EQ(engine.now(), 10u);
  EXPECT_THROW(engine.schedule_at(5, [] {}), ModelInvariantError);
}

TEST(ContractDes, ScheduleDelayOverflowViolatesRequire) {
  des::Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule(kNeverCycle, [] {}), ModelInvariantError);
}

TEST(ContractDes, ScheduleAtNowIsAllowed) {
  des::Engine engine;
  bool ran = false;
  engine.schedule_at(0, [&] { ran = true; });
  engine.run_all();
  EXPECT_TRUE(ran);
}

// ---- reconfig -------------------------------------------------------------

TEST(ContractReconfig, DuplicateWavelengthInOwnershipViolatesRequire) {
  std::vector<reconfig::FlowStatsEntry> flows;
  reconfig::FlowStatsEntry f;
  f.src = BoardId{1};
  f.buffer_util = 0.9;
  flows.push_back(f);
  std::vector<reconfig::LaneOwnership> lanes = {
      {WavelengthId{1}, BoardId{}},
      {WavelengthId{1}, BoardId{}},  // duplicate slot for one wavelength
  };
  EXPECT_THROW((void)reconfig::allocate_lanes(BoardId{0}, flows, lanes, reconfig::DbrPolicy{},
                                        PowerLevel::High),
               ModelInvariantError);
}

TEST(ContractReconfig, SelfFlowViolatesRequire) {
  std::vector<reconfig::FlowStatsEntry> flows;
  reconfig::FlowStatsEntry f;
  f.src = BoardId{0};  // a board never reports a flow to itself
  flows.push_back(f);
  EXPECT_THROW((void)reconfig::allocate_lanes(BoardId{0}, flows, {}, reconfig::DbrPolicy{},
                                        PowerLevel::High),
               ModelInvariantError);
}

TEST(ContractReconfig, InvalidFlowSourceViolatesRequire) {
  std::vector<reconfig::FlowStatsEntry> flows(1);  // src left invalid
  EXPECT_THROW((void)reconfig::allocate_lanes(BoardId{0}, flows, {}, reconfig::DbrPolicy{},
                                        PowerLevel::High),
               ModelInvariantError);
}

TEST(ContractReconfig, TerminalCountMismatchViolatesRequire) {
  des::Engine engine;
  topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  std::vector<optical::OpticalTerminal*> too_few(1, nullptr);
  EXPECT_THROW(
      reconfig::ReconfigManager(engine, cfg, reconfig::ReconfigConfig{}, map, too_few),
      ModelInvariantError);
}

TEST(ContractReconfig, ZeroWindowViolatesRequire) {
  des::Engine engine;
  topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  std::vector<optical::OpticalTerminal*> terms(2, nullptr);
  reconfig::ReconfigConfig rc;
  rc.window = 0;
  EXPECT_THROW(reconfig::ReconfigManager(engine, cfg, rc, map, terms), ModelInvariantError);
}

TEST(ContractReconfig, ZeroControlHopLatencyViolatesRequire) {
  des::Engine engine;
  topology::SystemConfig cfg;
  cfg.boards = 2;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  std::vector<optical::OpticalTerminal*> terms(2, nullptr);
  reconfig::ReconfigConfig rc;
  rc.ring_hop_cycles = 0;
  EXPECT_THROW(reconfig::ReconfigManager(engine, cfg, rc, map, terms), ModelInvariantError);
}

TEST(ContractReconfig, EwmaAlphaOutOfRangeViolatesRequire) {
  reconfig::DpmPolicy policy;
  EXPECT_THROW(reconfig::EwmaDpm(policy, 0.0), ModelInvariantError);
  EXPECT_THROW(reconfig::EwmaDpm(policy, 1.5), ModelInvariantError);
  EXPECT_NO_THROW(reconfig::EwmaDpm(policy, 1.0));
}

TEST(ContractReconfig, LinkUtilOutOfRangeViolatesRequire) {
  reconfig::DpmPolicy policy;
  EXPECT_THROW((void)reconfig::dpm_decision(PowerLevel::High, 1.5, 0.0, true, policy),
               ModelInvariantError);
  EXPECT_THROW((void)reconfig::dpm_decision(PowerLevel::High, -0.1, 0.0, true, policy),
               ModelInvariantError);
  EXPECT_THROW((void)reconfig::dpm_decision(PowerLevel::High, 0.5, 1.1, true, policy),
               ModelInvariantError);
}

// ---- optical --------------------------------------------------------------

TEST(ContractOptical, WavelengthCollisionViolatesBijectionInvariant) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  // λ0 at board 0 is the dark spare; lighting it twice is the collision the
  // lane<->wavelength bijection forbids.
  map.grant(BoardId{0}, WavelengthId{0}, BoardId{1});
  EXPECT_THROW(map.grant(BoardId{0}, WavelengthId{0}, BoardId{2}), ModelInvariantError);
}

TEST(ContractOptical, GrantToSelfViolatesRequire) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  EXPECT_THROW(map.grant(BoardId{0}, WavelengthId{0}, BoardId{0}), ModelInvariantError);
}

TEST(ContractOptical, GrantOnFailedLaneViolatesRequire) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  map.mark_failed(BoardId{0}, WavelengthId{0});
  EXPECT_THROW(map.grant(BoardId{0}, WavelengthId{0}, BoardId{1}), ModelInvariantError);
}

TEST(ContractOptical, ReleaseOfDarkLaneViolatesRequire) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  EXPECT_THROW(map.release(BoardId{0}, WavelengthId{0}), ModelInvariantError);
}

TEST(ContractOptical, LaneOutOfRangeViolatesRequire) {
  topology::SystemConfig cfg;
  cfg.boards = 4;
  cfg.nodes_per_board = 1;
  topology::Rwa rwa(cfg.num_boards_total());
  topology::LaneMap map(cfg, rwa);
  EXPECT_THROW((void)map.owner(BoardId{99}, WavelengthId{0}), ModelInvariantError);
}

TEST(ContractOptical, DisableOfUnheldLaneViolatesRequire) {
  LaneRig rig;
  EXPECT_THROW(rig.lane->disable(0), ModelInvariantError);
}

TEST(ContractOptical, DvsOnUnheldLaneViolatesRequire) {
  LaneRig rig;
  EXPECT_THROW(rig.lane->request_level(PowerLevel::Low, 0), ModelInvariantError);
}

TEST(ContractOptical, DoubleEnableViolatesRequire) {
  LaneRig rig;
  rig.lane->enable(0, PowerLevel::High);
  EXPECT_THROW(rig.lane->enable(0, PowerLevel::High), ModelInvariantError);
}

TEST(ContractOptical, EnableAtOffViolatesRequire) {
  LaneRig rig;
  EXPECT_THROW(rig.lane->enable(0, PowerLevel::Off), ModelInvariantError);
}

TEST(ContractOptical, AbortWithoutReservationViolatesRequire) {
  LaneRig rig;
  EXPECT_THROW(rig.rx->abort_reservation(), ModelInvariantError);
}

// ---- power ----------------------------------------------------------------

TEST(ContractPower, NegativeLinkPowerViolatesRequire) {
  power::LinkPowerModel pw;
  EXPECT_THROW(pw.set_power_mw(PowerLevel::High, units::Milliwatts{-1.0}), ModelInvariantError);
}

TEST(ContractPower, NegativeBitrateViolatesRequire) {
  power::LinkPowerModel pw;
  EXPECT_THROW(pw.set_bitrate_gbps(PowerLevel::Low, units::GbitsPerSec{-2.5}),
               ModelInvariantError);
}

TEST(ContractPower, NegativeSupplyViolatesRequire) {
  power::LinkPowerModel pw;
  EXPECT_THROW(pw.set_supply_v(PowerLevel::Mid, units::Volts{-0.6}), ModelInvariantError);
}

TEST(ContractPower, LevelOutsideDvsBoundsViolatesRequire) {
  power::LinkPowerModel pw;
  // A corrupted message or bad cast can materialize any raw value in a
  // PowerLevel; the table lookup must reject it, not read past the array.
  EXPECT_THROW((void)pw.power_mw(static_cast<PowerLevel>(9)), ModelInvariantError);
}

TEST(ContractPower, UnmodeledLevelNameIsUnreachable) {
  EXPECT_THROW((void)power::to_string(static_cast<PowerLevel>(7)), ModelInvariantError);
}

TEST(ContractPower, UnregisteredMeterSourceViolatesRequire) {
  power::EnergyMeter meter;
  EXPECT_THROW(meter.set_power(3, 0, units::Milliwatts{10.0}), ModelInvariantError);
}

TEST(ContractPower, NegativeMeterPowerViolatesRequire) {
  power::EnergyMeter meter;
  const auto id = meter.add_source();
  EXPECT_THROW(meter.set_power(id, 0, units::Milliwatts{-5.0}), ModelInvariantError);
}

// ---- obs: monitor lifecycle ------------------------------------------------

// finalize() closes the MonitorSet for good: it runs exactly once, and
// every online feed rejects samples arriving after it. A monitor quietly
// accepting post-finalize traffic would mean verdicts were rendered from a
// partial run — these pin the lifecycle shut.

obs::MonitorSet finalized_monitors(obs::MetricsRegistry& reg) {
  obs::MonitorConfig cfg;
  cfg.power_cap_mw = 1000.0;
  cfg.quiescence_deadline = 100000;
  cfg.max_recovery_cycles = 100000;
  obs::MonitorSet mon(cfg, /*fail_fast=*/false, /*trace=*/nullptr, 0, reg);
  mon.sample_power(10, 50.0);
  mon.finalize({});
  return mon;
}

TEST(ContractObs, MonitorDoubleFinalizeViolatesRequire) {
  obs::MetricsRegistry reg;
  auto mon = finalized_monitors(reg);
  EXPECT_THROW(mon.finalize({}), ModelInvariantError);
}

TEST(ContractObs, PowerSampleAfterFinalizeViolatesRequire) {
  obs::MetricsRegistry reg;
  auto mon = finalized_monitors(reg);
  EXPECT_THROW(mon.sample_power(20, 50.0), ModelInvariantError);
}

TEST(ContractObs, RecoveryAfterFinalizeViolatesRequire) {
  obs::MetricsRegistry reg;
  auto mon = finalized_monitors(reg);
  EXPECT_THROW(mon.recovery(20, 5), ModelInvariantError);
}

TEST(ContractObs, DbrResolveAfterFinalizeViolatesRequire) {
  obs::MetricsRegistry reg;
  auto mon = finalized_monitors(reg);
  EXPECT_THROW(mon.dbr_resolve(20), ModelInvariantError);
}

TEST(ContractObs, DbrQuiescedAfterFinalizeViolatesRequire) {
  obs::MetricsRegistry reg;
  auto mon = finalized_monitors(reg);
  EXPECT_THROW(mon.dbr_quiesced(20, 25), ModelInvariantError);
}

// ---- resilience ------------------------------------------------------------

TEST(ContractResilience, NamelessViolationViolatesRequire) {
  resilience::DegradeConfig cfg;
  cfg.power_cap = resilience::ResponsePolicy::Record;
  resilience::DegradeController ctrl(cfg, 1000.0, /*hub=*/nullptr);
  EXPECT_THROW(ctrl.on_violation(nullptr, 10, 1200.0, 1000.0),
               ModelInvariantError);
}

TEST(ContractResilience, NegativePowerSampleViolatesRequire) {
  resilience::DegradeConfig cfg;
  cfg.power_cap = resilience::ResponsePolicy::Record;
  resilience::DegradeController ctrl(cfg, 1000.0, /*hub=*/nullptr);
  EXPECT_THROW(ctrl.on_power_sample(10, -1.0), ModelInvariantError);
}

// ---- diagnostics ----------------------------------------------------------

TEST(ContractDiagnostics, MessageCarriesKindExpressionLocationAndValues) {
  des::Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_all();
  try {
    engine.schedule_at(5, [] {});
    FAIL() << "contract did not fire";
  } catch (const ModelInvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition violated"), std::string::npos) << what;
    EXPECT_NE(what.find("when >= now_"), std::string::npos) << what;
    EXPECT_NE(what.find("engine.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("when=5"), std::string::npos) << what;
    EXPECT_NE(what.find("now=10"), std::string::npos) << what;
  }
}

TEST(ContractDiagnostics, InvariantAndUnreachableAreDistinguishable) {
  try {
    ERAPID_UNREACHABLE("test message " << 42);
  } catch (const ModelInvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unreachable code reached"), std::string::npos) << what;
    EXPECT_NE(what.find("test message 42"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace erapid
