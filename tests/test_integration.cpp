// Cross-module integration tests: the paper's qualitative claims must
// emerge from the full simulator (64-node R(1,8,8) where affordable,
// smaller configurations elsewhere for test-time budget).
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace {

using erapid::BoardId;
using erapid::reconfig::NetworkMode;
using erapid::sim::SimOptions;
using erapid::sim::Simulation;
using erapid::traffic::PatternKind;

SimOptions opts_64() {
  SimOptions o;  // R(1,8,8)
  o.warmup_cycles = 8000;
  o.measure_cycles = 12000;
  o.drain_limit = 60000;
  return o;
}

TEST(Integration, ComplementStaticSaturatesEarly) {
  auto o = opts_64();
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto r = Simulation(o).run();
  // Analytic static saturation is ~0.128 N_c; at 0.5 N_c offered the
  // static network must accept only a small fraction.
  EXPECT_LT(r.accepted_fraction, 0.25);
  EXPECT_FALSE(r.drained);  // labelled packets stuck behind saturation
}

TEST(Integration, ComplementDbrMultipliesThroughput) {
  auto o = opts_64();
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto base = Simulation(o).run();
  o.reconfig.mode = NetworkMode::np_b();
  const auto reconf = Simulation(o).run();
  // Paper: ~400% improvement. Shape check: at least 2.5x here.
  EXPECT_GT(reconf.accepted_fraction, base.accepted_fraction * 2.5);
}

TEST(Integration, ComplementDbrMovesLanesToComplementFlows) {
  auto o = opts_64();
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::p_b();
  Simulation sim(o);
  (void)sim.run();
  auto& lm = sim.network().lane_map();
  // Each board's flow to its complement partner should hold several lanes.
  std::uint32_t total = 0;
  const std::uint32_t B = o.system.boards;
  for (std::uint32_t b = 0; b < B; ++b) {
    total += lm.lane_count(BoardId{b}, BoardId{B - 1 - b});
  }
  EXPECT_GT(total, B * 2);  // well above the static B lanes
}

TEST(Integration, UniformReconfigurationDoesNoHarm) {
  auto o = opts_64();
  o.pattern = PatternKind::Uniform;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto base = Simulation(o).run();
  o.reconfig.mode = NetworkMode::np_b();
  const auto reconf = Simulation(o).run();
  // Paper: "with reconfiguration, there is no excess latency penalty" on
  // uniform traffic — throughput within a few percent either way.
  EXPECT_NEAR(reconf.accepted_fraction, base.accepted_fraction, 0.05);
}

TEST(Integration, PowerAwareSavesPowerOnUniform) {
  auto o = opts_64();
  o.load_fraction = 0.3;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto base = Simulation(o).run();
  o.reconfig.mode = NetworkMode::p_b();
  const auto pb = Simulation(o).run();
  // Paper abstract: 25%-50% power reduction...
  EXPECT_LT(pb.power_avg_mw, base.power_avg_mw * 0.75);
  // ...at <5%-8% throughput cost (we allow 10% stochastic margin here).
  EXPECT_GT(pb.accepted_fraction, base.accepted_fraction * 0.90);
}

TEST(Integration, NpBIncreasesPowerOnAdversarialTraffic) {
  auto o = opts_64();
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto base = Simulation(o).run();
  o.reconfig.mode = NetworkMode::np_b();
  const auto npb = Simulation(o).run();
  // Granted lanes all burn P_high while serving real traffic: the paper's
  // utilization-weighted power metric rises ~3x on complement (total
  // standby power barely moves since NP-NB keeps every lane lit anyway).
  EXPECT_GT(npb.active_power_avg_mw, base.active_power_avg_mw * 2.0);
  EXPECT_GT(npb.power_avg_mw, base.power_avg_mw);
}

TEST(Integration, PBCheaperThanNpBOnAdversarialTraffic) {
  auto o = opts_64();
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.5;
  o.reconfig.mode = NetworkMode::np_b();
  const auto npb = Simulation(o).run();
  o.reconfig.mode = NetworkMode::p_b();
  const auto pb = Simulation(o).run();
  // Paper: P-B consumes ~25% less than NP-B at similar throughput.
  EXPECT_LT(pb.power_avg_mw, npb.power_avg_mw);
  EXPECT_GT(pb.accepted_fraction, npb.accepted_fraction * 0.85);
}

TEST(Integration, NoPacketIsEverLostAcrossReconfiguration) {
  // Conservation: generated = delivered + still-in-flight. Run complement
  // with aggressive reconfiguration, stop injection, drain fully.
  auto o = opts_64();
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.pattern = PatternKind::Complement;
  o.load_fraction = 0.7;
  o.reconfig.mode = NetworkMode::p_b();
  Simulation sim(o);

  std::uint64_t delivered = 0;
  sim.network().set_delivery_callback(
      [&](const erapid::router::Packet&, erapid::Cycle) { ++delivered; });

  // Replicate the driver loop manually so we can drain to empty.
  (void)sim;  // run below
  auto& net = sim.network();
  auto& engine = sim.engine();
  erapid::traffic::TrafficPattern pat(o.pattern, o.system.num_nodes());
  erapid::util::Rng rng(7);
  std::uint64_t generated = 0;
  net.start();
  for (int burst = 0; burst < 20; ++burst) {
    engine.run_until(engine.now() + 500);
    for (std::uint32_t n = 0; n < o.system.num_nodes(); ++n) {
      erapid::router::Packet p;
      p.seq = ++generated;
      p.src = erapid::NodeId{n};
      p.dst = pat.permute(erapid::NodeId{n});
      p.flits = o.system.packet_flits;
      p.created = engine.now();
      net.inject(p, engine.now());
    }
  }
  engine.run_until(engine.now() + 300000);
  EXPECT_EQ(delivered, generated);
}

TEST(Integration, SmallestSystemWorks) {
  SimOptions o;
  o.system.boards = 2;
  o.system.nodes_per_board = 1;
  o.load_fraction = 0.5;
  o.warmup_cycles = 2000;
  o.measure_cycles = 4000;
  const auto r = Simulation(o).run();
  EXPECT_GT(r.packets_delivered_measured, 0u);
  EXPECT_TRUE(r.drained);
}

TEST(Integration, WiderSystemWorks) {
  SimOptions o;
  o.system.boards = 16;
  o.system.nodes_per_board = 4;
  o.load_fraction = 0.3;
  o.warmup_cycles = 3000;
  o.measure_cycles = 5000;
  const auto r = Simulation(o).run();
  EXPECT_GT(r.accepted_fraction, 0.2);
}

}  // namespace
