// Fixture: the same shape as bad_uncontracted.hpp but with a contract ->
// contract-coverage must stay quiet and count it as covered.
#pragma once

namespace fixture {

class ContractedMeter {
 public:
  void set_level(int id, double level) {
    ERAPID_REQUIRE(level >= 0.0, "negative level");
    levels_[id] = level;
    dirty_ = true;
  }

  /// Trivial setter: exempt without a contract.
  void mark_clean() { dirty_ = false; }

 private:
  double levels_[4] = {};
  bool dirty_ = false;
};

}  // namespace fixture
