// Fixture: an uncontracted method under a suppression leaves the coverage
// pool entirely (neither a finding nor a considered entry).
#pragma once

namespace fixture {

class SuppressedMeter {
 public:
  // erapid-analyze: allow(contract-coverage)
  void set_level(int id, double level) {
    if (level < 0.0) level = 0.0;
    levels_[id] = level;
    dirty_ = true;
  }

 private:
  double levels_[4] = {};
  bool dirty_ = false;
};

}  // namespace fixture
