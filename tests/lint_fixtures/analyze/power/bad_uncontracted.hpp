// Fixture: public mutating method with a non-trivial body and no
// ERAPID_REQUIRE/EXPECT/INVARIANT -> contract-coverage must fire.
#pragma once

namespace fixture {

class Meter {
 public:
  void set_level(int id, double level) {
    if (level < 0.0) level = 0.0;
    levels_[id] = level;
    dirty_ = true;
  }

 private:
  double levels_[4] = {};
  bool dirty_ = false;
};

}  // namespace fixture
