// Fixture: a ns-suffixed argument passed to a cycles-suffixed parameter
// -> unit-param.

void set_delay(double delay_cycles);

void call_site() {
  double latency_ns = 5.0;
  set_delay(latency_ns);
}
