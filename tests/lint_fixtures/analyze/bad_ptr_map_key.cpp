// Fixture: ordered container keyed by a raw pointer -> ptr-map-key.
#include <map>

int count_slots() {
  std::map<int*, int> by_address;
  return static_cast<int>(by_address.size());
}
