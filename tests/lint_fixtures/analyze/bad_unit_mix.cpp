// Fixture: additive arithmetic across unit suffix domains -> unit-mix.

double mix_domains() {
  double latency_ns = 5.0;
  double window_cycles = 3.0;
  double total = latency_ns + window_cycles;
  return total;
}
