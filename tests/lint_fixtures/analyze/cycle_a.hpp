// Fixture: half of a two-header include cycle -> include-cycle.
#pragma once

#include "cycle_b.hpp"

namespace fixture {
struct A {
  int tag = 1;
};
}  // namespace fixture
