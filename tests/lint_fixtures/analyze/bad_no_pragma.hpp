// Fixture: header without #pragma once -> pragma-once (and --fix target).

namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture
