// Fixture: range-for over an unordered container -> iter-unordered.
#include <unordered_map>

int sum_values() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}
