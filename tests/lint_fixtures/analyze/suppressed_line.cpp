// Fixture: a line suppression covers the next line only.

double mixed_but_allowed() {
  double latency_ns = 5.0;
  double window_cycles = 3.0;
  // erapid-analyze: allow(unit-mix)
  double total = latency_ns + window_cycles;
  return total;
}

double mixed_and_flagged() {
  double setup_ns = 1.0;
  double hold_cycles = 2.0;
  return setup_ns + hold_cycles;
}
