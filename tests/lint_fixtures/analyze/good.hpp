// Fixture: a clean header — every rule family must stay quiet.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class CleanCounter {
 public:
  /// Trivial setter: exempt from contract-coverage by the one-statement rule
  /// (and this file is outside the contracted module paths anyway).
  void reset() { ticks_ = 0; }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  std::uint64_t ticks_ = 0;
  std::vector<std::uint64_t> history_;
};

}  // namespace fixture
