// Fixture: header names std::vector without directly including <vector>
// -> std-include.
#pragma once

namespace fixture {

struct Holder {
  std::vector<int> items;
};

}  // namespace fixture
