// Fixture: a file-wide suppression silences the rule everywhere.
// erapid-analyze: allow-file(unit-mix)

double mixed_everywhere() {
  double latency_ns = 5.0;
  double window_cycles = 3.0;
  double a = latency_ns + window_cycles;
  double b = window_cycles - latency_ns;
  return a + b;
}
