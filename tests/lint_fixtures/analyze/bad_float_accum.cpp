// Fixture: 32-bit float accumulator in a reduction loop -> float-accum.

double reduce(const double* xs, int n) {
  float sum = 0.0F;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<float>(xs[i]);
  }
  return sum;
}
