// Fixture: the other half of the include cycle.
#pragma once

#include "cycle_a.hpp"

namespace fixture {
struct B {
  int tag = 2;
};
}  // namespace fixture
