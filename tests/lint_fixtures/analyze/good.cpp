// Fixture: clean translation unit — same-domain arithmetic, double
// accumulator, ordered iteration over a value-keyed map.
#include <map>

double clean_reduce(const double* xs, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += xs[i];
  return sum;
}

double same_domain() {
  double setup_ns = 1.5;
  double hold_ns = 2.5;
  return setup_ns + hold_ns;
}

int ordered_map() {
  std::map<int, int> by_id;
  int total = 0;
  for (const auto& kv : by_id) total += kv.second;
  return total;
}
