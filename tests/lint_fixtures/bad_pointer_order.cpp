// det-lint fixture: pointer values as ordering keys -> `pointer-order`.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Lane {
  int id = 0;
};

std::map<Lane*, int> bad_keyed_map;
std::set<const Lane*> bad_keyed_set;

void bad_sort(std::vector<Lane*>& lanes) {
  std::sort(lanes.begin(), lanes.end(), [](Lane* a, Lane* b) { return a < b; });
}
