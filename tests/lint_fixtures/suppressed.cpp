// det-lint fixture: every hazard below carries an in-place suppression —
// zero findings expected.
#include <unordered_map>  // det-lint: allow(unordered-container)
#include <cstdlib>

// det-lint: allow(unordered-container)
std::unordered_map<int, int> lookup_only;

int seeded_elsewhere() {
  // det-lint: allow(nondet-source)
  return std::rand();
}
