// det-lint fixture: uninitialized scalar members -> `uninit-member`.
#pragma once
#include <cstdint>

struct BadConfig {
  double threshold;
  std::uint32_t window;
  bool enabled;
  int* sink;
};
