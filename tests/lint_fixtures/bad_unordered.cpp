// det-lint fixture: every line here should trip `unordered-container`.
#include <unordered_map>
#include <unordered_set>

struct BadState {
  std::unordered_map<int, double> by_lane;
  std::unordered_set<int> seen;
};

void iterate(const BadState& s) {
  for (const auto& [k, v] : s.by_lane) (void)k, (void)v;
}
