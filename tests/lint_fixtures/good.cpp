// det-lint fixture: clean model code — zero findings expected.
#include <algorithm>
#include <vector>

#define ERAPID_UNREACHABLE(msg) throw 0

enum class Mode { A, B };

// All-cases switch, no default, trailing UNREACHABLE: -Wswitch still
// checks exhaustiveness and unmodeled values fail loudly.
int good_switch(Mode m) {
  switch (m) {
    case Mode::A: return 1;
    case Mode::B: return 2;
  }
  ERAPID_UNREACHABLE("unmodeled mode");
}

// default: inside the switch is the other accepted form.
int good_switch_default(Mode m) {
  int r = 0;
  switch (m) {
    case Mode::A: r = 1; break;
    default: r = 2; break;
  }
  return r;
}

struct Lane {
  int id = 0;
};

// Sorting by a stable field is fine even when the elements are pointers.
void good_sort(std::vector<Lane*>& lanes) {
  std::sort(lanes.begin(), lanes.end(),
            [](const Lane* a, const Lane* b) { return a->id < b->id; });
}

// Mentions in comments and strings never fire: std::unordered_map, rand().
const char* doc() { return "std::unordered_map and time() are banned here"; }

// A local runtime() function is not the libc time() call.
long runtime(long base) { return base; }
long use(long t) { return runtime(t); }
