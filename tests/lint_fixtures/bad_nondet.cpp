// det-lint fixture: wall-clock / entropy sources -> `nondet-source`.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_entropy() {
  std::random_device rd;
  return rd() + static_cast<unsigned>(std::rand());
}

long bad_wall_clock() {
  const auto t = time(nullptr);
  const auto now = std::chrono::steady_clock::now();
  (void)now;
  return static_cast<long>(t) + clock();
}
