// det-lint fixture: file-wide suppression — zero findings expected.
// det-lint: allow-file(unordered-container)
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> a;
std::unordered_set<int> b;
