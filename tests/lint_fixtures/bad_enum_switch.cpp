// det-lint fixture: enum-class switch that falls through silently
// -> `enum-switch-default`.
enum class Mode { A, B };

int bad_switch(Mode m) {
  int r = 0;
  switch (m) {
    case Mode::A: r = 1; break;
    case Mode::B: r = 2; break;
  }
  return r;
}
