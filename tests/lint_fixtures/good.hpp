// det-lint fixture: deterministic idioms — zero findings expected.
#pragma once
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct GoodConfig {
  double threshold = 0.7;
  std::uint32_t window = 2000;
  bool enabled = true;
  int* sink = nullptr;
};

struct GoodState {
  std::map<std::uint64_t, double> by_lane;  // ordered, id-keyed
  std::set<std::uint32_t> seen;
  std::vector<int> dense;
};
