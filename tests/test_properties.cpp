// Parameterized property sweeps across modules (TEST_P /
// INSTANTIATE_TEST_SUITE_P): invariants that must hold across whole
// configuration families, not just the defaults.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "des/clock.hpp"
#include "des/engine.hpp"
#include "power/link_power.hpp"
#include "router/injector.hpp"
#include "router/router.hpp"
#include "sim/simulation.hpp"
#include "topology/capacity.hpp"
#include "topology/rwa.hpp"

namespace {

using namespace erapid;

// ---- RWA over board counts --------------------------------------------

class RwaSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RwaSweep, EveryCouplerPartitionsWavelengths) {
  const std::uint32_t B = GetParam();
  topology::Rwa rwa(B);
  for (std::uint32_t d = 0; d < B; ++d) {
    std::set<std::uint32_t> seen;
    for (std::uint32_t s = 0; s < B; ++s) {
      if (s == d) continue;
      seen.insert(rwa.wavelength_for(BoardId{s}, BoardId{d}).value());
    }
    EXPECT_EQ(seen.size(), B - 1);
    EXPECT_EQ(seen.count(0), 0u);
  }
}

TEST_P(RwaSweep, OwnerInverseHoldsEverywhere) {
  const std::uint32_t B = GetParam();
  topology::Rwa rwa(B);
  for (std::uint32_t d = 0; d < B; ++d) {
    for (std::uint32_t w = 1; w < B; ++w) {
      const BoardId s = rwa.static_owner(BoardId{d}, WavelengthId{w});
      EXPECT_EQ(rwa.wavelength_for(s, BoardId{d}).value(), w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BoardCounts, RwaSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 13u, 16u, 32u),
                         [](const auto& param_info) {
                           return "B" + std::to_string(param_info.param);
                         });

// ---- serialization over (bitrate, packet size) --------------------------

class SerializationSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(SerializationSweep, CyclesCoverPacketBits) {
  const auto [gbps, flits] = GetParam();
  topology::SystemConfig cfg;
  cfg.packet_flits = flits;
  const auto cycles = cfg.serialization_cycles(units::GbitsPerSec{gbps});
  // cycles * cycle_ns * gbps must cover the packet, without a full extra
  // cycle of slack.
  const double bits_capacity =
      static_cast<double>(cycles) * cfg.cycle_ns().value() * gbps;
  EXPECT_GE(bits_capacity + 1e-9, cfg.packet_bits());
  EXPECT_LT(bits_capacity - cfg.cycle_ns().value() * gbps, cfg.packet_bits());
}

INSTANTIATE_TEST_SUITE_P(RatesAndSizes, SerializationSweep,
                         ::testing::Combine(::testing::Values(2.5, 3.3, 5.0, 10.0),
                                            ::testing::Values(1u, 4u, 8u, 16u, 32u)));

// ---- power-level monotonicity -------------------------------------------

class LevelSweep : public ::testing::TestWithParam<power::PowerLevel> {};

TEST_P(LevelSweep, FasterLevelNeverSlowerOrCheaper) {
  const power::LinkPowerModel pw;
  const auto l = GetParam();
  const auto up = power::step_up(l);
  EXPECT_GE(pw.bitrate_gbps(up), pw.bitrate_gbps(l));
  EXPECT_GE(pw.power_mw(up), pw.power_mw(l));
  EXPECT_GE(pw.supply_v(up), pw.supply_v(l));
}

TEST_P(LevelSweep, TransitionSymmetricCost) {
  const power::LinkPowerModel pw;
  const auto l = GetParam();
  for (auto other : {power::PowerLevel::Off, power::PowerLevel::Low,
                     power::PowerLevel::Mid, power::PowerLevel::High}) {
    EXPECT_EQ(pw.transition_cycles(l, other), pw.transition_cycles(other, l));
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep,
                         ::testing::Values(power::PowerLevel::Off, power::PowerLevel::Low,
                                           power::PowerLevel::Mid, power::PowerLevel::High),
                         [](const auto& param_info) {
                           return std::string(power::to_string(param_info.param) == "P_low"
                                                  ? "Low"
                                              : power::to_string(param_info.param) == "P_mid"
                                                  ? "Mid"
                                              : power::to_string(param_info.param) == "P_high"
                                                  ? "High"
                                                  : "Off");
                         });

// ---- router across microarchitecture parameters --------------------------

class RouterSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {
};

TEST_P(RouterSweep, AllPacketsDeliveredInOrderPerVc) {
  const auto [vcs, depth, cpf] = GetParam();
  des::Engine engine;
  des::ClockDomain domain(engine);
  router::Router rt(engine, domain, "sweep", 2, vcs, depth, 1,
                    [](const router::Flit& f) { return f.dst.value() % 2; });

  struct Sink : router::FlitReceiver {
    router::Router* rt;
    std::uint32_t port;
    std::vector<std::uint32_t> expect;
    std::uint64_t packets = 0;
    explicit Sink(std::uint32_t v) : expect(v, 0) {}
    void receive_flit(const router::Flit& f, std::uint32_t vc, Cycle) override {
      ASSERT_EQ(f.index, expect[vc]);
      expect[vc] = f.tail ? 0 : f.index + 1;
      if (f.tail) ++packets;
      rt->return_credit(port, vc);
    }
  };
  Sink s0(vcs), s1(vcs);
  for (Sink* s : {&s0, &s1}) {
    s->rt = &rt;
    router::OutputPortConfig opc;
    opc.sink = s;
    opc.vcs = vcs;
    opc.credits_per_vc = depth;
    opc.cycles_per_flit = cpf;
    s->port = rt.add_output(opc);
  }

  router::FlitInjector inj0(engine, rt, 0, vcs, depth, cpf);
  router::FlitInjector inj1(engine, rt, 1, vcs, depth, cpf);
  int sent0 = 0, sent1 = 0;
  auto feed = [&](router::FlitInjector& inj, int& sent, std::uint32_t src) {
    if (sent >= 10) return;
    router::Packet p;
    p.seq = static_cast<std::uint64_t>(++sent);
    p.src = NodeId{src};
    p.dst = NodeId{static_cast<std::uint32_t>(sent % 2)};
    p.flits = 8;
    inj.try_start(p, engine.now());
  };
  inj0.set_idle_callback([&](Cycle) { feed(inj0, sent0, 0); });
  inj1.set_idle_callback([&](Cycle) { feed(inj1, sent1, 1); });
  feed(inj0, sent0, 0);
  feed(inj1, sent1, 1);
  engine.run_until(100000);
  EXPECT_EQ(s0.packets + s1.packets, 20u);
}

INSTANTIATE_TEST_SUITE_P(Microarch, RouterSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),   // vcs
                                            ::testing::Values(1u, 2u, 8u),   // depth
                                            ::testing::Values(1u, 4u)),      // cycles/flit
                         [](const auto& param_info) {
                           return "v" + std::to_string(std::get<0>(param_info.param)) + "_d" +
                                  std::to_string(std::get<1>(param_info.param)) + "_c" +
                                  std::to_string(std::get<2>(param_info.param));
                         });

// ---- end-to-end conservation across patterns and modes --------------------

class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<traffic::PatternKind, int>> {};

std::string conservation_name(
    const ::testing::TestParamInfo<std::tuple<traffic::PatternKind, int>>& param_info) {
  static const char* modes[] = {"NPNB", "PNB", "NPB", "PB"};
  return std::string(traffic::pattern_name(std::get<0>(param_info.param))) + "_" +
         modes[std::get<1>(param_info.param)];
}

TEST_P(ConservationSweep, LabelledPacketsAllArriveBelowSaturation) {
  const auto [pattern, mode_idx] = GetParam();
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.pattern = pattern;
  o.load_fraction = 0.08;  // far below every pattern's static saturation
  o.warmup_cycles = 3000;
  o.measure_cycles = 5000;
  o.drain_limit = 80000;
  const reconfig::NetworkMode modes[] = {
      reconfig::NetworkMode::np_nb(), reconfig::NetworkMode::p_nb(),
      reconfig::NetworkMode::np_b(), reconfig::NetworkMode::p_b()};
  o.reconfig.mode = modes[mode_idx];
  const auto r = sim::Simulation(o).run();
  EXPECT_TRUE(r.drained) << "labelled packets lost or stuck";
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
  EXPECT_GT(r.packets_delivered_measured, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsByMode, ConservationSweep,
    ::testing::Combine(::testing::Values(traffic::PatternKind::Uniform,
                                         traffic::PatternKind::Complement,
                                         traffic::PatternKind::Butterfly,
                                         traffic::PatternKind::PerfectShuffle,
                                         traffic::PatternKind::BitReverse,
                                         traffic::PatternKind::Transpose,
                                         traffic::PatternKind::Tornado,
                                         traffic::PatternKind::Neighbor),
                       ::testing::Range(0, 4)),
    conservation_name);

// ---- capacity model consistency over system shapes -------------------------

class CapacitySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(CapacitySweep, SimulatedUniformThroughputTracksAnalyticCapacity) {
  const auto [boards, nodes] = GetParam();
  sim::SimOptions o;
  o.system.boards = boards;
  o.system.nodes_per_board = nodes;
  o.load_fraction = 0.7;
  o.warmup_cycles = 4000;
  o.measure_cycles = 6000;
  o.drain_limit = 30000;
  const auto r = sim::Simulation(o).run();
  // At 0.7 N_c a correctly-normalized network must accept close to the
  // offered load; a mis-computed N_c would overdrive it into saturation.
  EXPECT_NEAR(r.accepted_fraction, 0.7, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CapacitySweep,
                         ::testing::Values(std::tuple{2u, 2u}, std::tuple{2u, 8u},
                                           std::tuple{4u, 4u}, std::tuple{8u, 2u},
                                           std::tuple{8u, 8u}),
                         [](const auto& param_info) {
                           return "B" + std::to_string(std::get<0>(param_info.param)) + "D" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

}  // namespace
