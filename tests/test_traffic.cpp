// Unit + property tests for traffic patterns and the Bernoulli source.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "des/engine.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace {

using erapid::Cycle;
using erapid::NodeId;
using erapid::des::Engine;
using erapid::router::Packet;
using erapid::traffic::NodeSource;
using erapid::traffic::parse_pattern;
using erapid::traffic::pattern_name;
using erapid::traffic::PatternKind;
using erapid::traffic::TrafficPattern;
using erapid::util::Rng;

// ---- pattern parsing --------------------------------------------------

TEST(Patterns, NamesRoundTrip) {
  for (auto k : {PatternKind::Uniform, PatternKind::Complement, PatternKind::Butterfly,
                 PatternKind::PerfectShuffle, PatternKind::BitReverse,
                 PatternKind::Transpose, PatternKind::Tornado, PatternKind::Neighbor,
                 PatternKind::Hotspot}) {
    const auto parsed = parse_pattern(pattern_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_pattern("nonsense").has_value());
}

// ---- paper's definitions on 64 nodes (n = 6 bits) -----------------------

TEST(Patterns, ComplementFlipsAllBits) {
  TrafficPattern p(PatternKind::Complement, 64);
  EXPECT_EQ(p.permute(NodeId{0}).value(), 63u);
  EXPECT_EQ(p.permute(NodeId{63}).value(), 0u);
  EXPECT_EQ(p.permute(NodeId{0b101010}).value(), 0b010101u);
}

TEST(Patterns, ButterflySwapsMsbAndLsb) {
  TrafficPattern p(PatternKind::Butterfly, 64);
  // a5..a0 = 100000 -> 000001
  EXPECT_EQ(p.permute(NodeId{0b100000}).value(), 0b000001u);
  EXPECT_EQ(p.permute(NodeId{0b000001}).value(), 0b100000u);
  // middle bits unchanged
  EXPECT_EQ(p.permute(NodeId{0b011110}).value(), 0b011110u);
}

TEST(Patterns, PerfectShuffleRotatesLeft) {
  TrafficPattern p(PatternKind::PerfectShuffle, 64);
  // a5..a0 -> a4..a0,a5
  EXPECT_EQ(p.permute(NodeId{0b100000}).value(), 0b000001u);
  EXPECT_EQ(p.permute(NodeId{0b010101}).value(), 0b101010u);
}

TEST(Patterns, BitReverseIsInvolution) {
  TrafficPattern p(PatternKind::BitReverse, 64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(p.permute(p.permute(NodeId{i})), NodeId{i});
  }
}

TEST(Patterns, TransposeSwapsHalves) {
  TrafficPattern p(PatternKind::Transpose, 64);
  EXPECT_EQ(p.permute(NodeId{0b111000}).value(), 0b000111u);
}

TEST(Patterns, TornadoMovesHalfwayAround) {
  TrafficPattern p(PatternKind::Tornado, 64);
  EXPECT_EQ(p.permute(NodeId{0}).value(), 32u);
  EXPECT_EQ(p.permute(NodeId{40}).value(), (40u + 32u) % 64u);
}

TEST(Patterns, NeighborIsPlusOne) {
  TrafficPattern p(PatternKind::Neighbor, 64);
  EXPECT_EQ(p.permute(NodeId{63}).value(), 0u);
  EXPECT_EQ(p.permute(NodeId{5}).value(), 6u);
}

// Property: every deterministic bit-permutation is a bijection.
class PermutationBijectionTest : public ::testing::TestWithParam<PatternKind> {};

TEST_P(PermutationBijectionTest, IsBijective) {
  for (std::uint32_t n : {16u, 64u, 256u}) {
    TrafficPattern p(GetParam(), n);
    std::set<std::uint32_t> image;
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto d = p.permute(NodeId{i});
      EXPECT_LT(d.value(), n);
      image.insert(d.value());
    }
    EXPECT_EQ(image.size(), n) << pattern_name(GetParam()) << " not bijective at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPermutations, PermutationBijectionTest,
                         ::testing::Values(PatternKind::Complement, PatternKind::Butterfly,
                                           PatternKind::PerfectShuffle,
                                           PatternKind::BitReverse, PatternKind::Transpose,
                                           PatternKind::Tornado, PatternKind::Neighbor),
                         [](const auto& param_info) {
                           return std::string(pattern_name(param_info.param));
                         });

TEST(Patterns, UniformNeverSelfSends) {
  TrafficPattern p(PatternKind::Uniform, 64);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const NodeId src{static_cast<std::uint32_t>(i % 64)};
    EXPECT_NE(p.destination(src, rng), src);
  }
}

TEST(Patterns, UniformCoversAllDestinations) {
  TrafficPattern p(PatternKind::Uniform, 16);
  Rng rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(p.destination(NodeId{3}, rng).value());
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(seen.count(3), 0u);
}

TEST(Patterns, UniformIsApproximatelyUniform) {
  TrafficPattern p(PatternKind::Uniform, 8);
  Rng rng(7);
  std::map<std::uint32_t, int> counts;
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[p.destination(NodeId{0}, rng).value()];
  for (const auto& [dst, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7.0, 0.01) << "dst " << dst;
  }
}

TEST(Patterns, HotspotBiasesTowardHotNode) {
  TrafficPattern p(PatternKind::Hotspot, 64, /*fraction=*/0.5, NodeId{7});
  Rng rng(9);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.destination(NodeId{0}, rng) == NodeId{7}) ++hot;
  }
  // 0.5 direct + 0.5 * 1/63 uniform residue.
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.5 + 0.5 / 63.0, 0.02);
}

TEST(Patterns, PermuteOnStochasticThrows) {
  TrafficPattern p(PatternKind::Uniform, 64);
  EXPECT_THROW((void)p.permute(NodeId{0}), erapid::ModelInvariantError);
}

TEST(Patterns, NonPowerOfTwoRejectedForBitPermutations) {
  EXPECT_THROW(TrafficPattern(PatternKind::Butterfly, 48), erapid::ModelInvariantError);
  EXPECT_NO_THROW(TrafficPattern(PatternKind::Uniform, 48));
  EXPECT_NO_THROW(TrafficPattern(PatternKind::Neighbor, 48));
}

// ---- NodeSource ---------------------------------------------------------

TEST(NodeSource, RateMatchesBernoulliExpectation) {
  Engine engine;
  TrafficPattern pat(PatternKind::Uniform, 64);
  std::uint64_t count = 0;
  NodeSource src(engine, pat, NodeId{0}, 8, Rng(11),
                 [&](const Packet&, Cycle) { ++count; });
  src.start(0.05);
  engine.run_until(200000);
  EXPECT_NEAR(static_cast<double>(count) / 200000.0, 0.05, 0.003);
}

TEST(NodeSource, ZeroRateInjectsNothing) {
  Engine engine;
  TrafficPattern pat(PatternKind::Uniform, 64);
  std::uint64_t count = 0;
  NodeSource src(engine, pat, NodeId{0}, 8, Rng(1),
                 [&](const Packet&, Cycle) { ++count; });
  src.start(0.0);
  engine.run_until(10000);
  EXPECT_EQ(count, 0u);
}

TEST(NodeSource, StopHaltsInjection) {
  Engine engine;
  TrafficPattern pat(PatternKind::Uniform, 64);
  std::uint64_t count = 0;
  NodeSource src(engine, pat, NodeId{0}, 8, Rng(2),
                 [&](const Packet&, Cycle) { ++count; });
  src.start(0.5);
  engine.run_until(1000);
  const auto at_stop = count;
  EXPECT_GT(at_stop, 0u);
  src.stop();
  engine.run_until(5000);
  EXPECT_EQ(count, at_stop);
}

TEST(NodeSource, LabellingTagsPackets) {
  Engine engine;
  TrafficPattern pat(PatternKind::Uniform, 64);
  std::uint64_t labelled = 0, total = 0;
  NodeSource src(engine, pat, NodeId{0}, 8, Rng(3), [&](const Packet& p, Cycle) {
    ++total;
    if (p.labelled) ++labelled;
  });
  src.start(0.2);
  engine.run_until(5000);
  EXPECT_EQ(labelled, 0u);
  src.set_labelling(true);
  engine.run_until(10000);
  src.set_labelling(false);
  const auto labelled_mid = labelled;
  EXPECT_GT(labelled_mid, 0u);
  engine.run_until(15000);
  EXPECT_EQ(labelled, labelled_mid);
  EXPECT_GT(total, labelled);
}

TEST(NodeSource, PacketsCarrySourceAndMetadata) {
  Engine engine;
  TrafficPattern pat(PatternKind::Complement, 64);
  std::vector<Packet> got;
  NodeSource src(engine, pat, NodeId{5}, 8, Rng(4),
                 [&](const Packet& p, Cycle) { got.push_back(p); });
  src.start(0.5);
  engine.run_until(100);
  ASSERT_FALSE(got.empty());
  for (const auto& p : got) {
    EXPECT_EQ(p.src, NodeId{5});
    EXPECT_EQ(p.dst.value(), 58u);  // ~5 & 63
    EXPECT_EQ(p.flits, 8u);
    EXPECT_GT(p.seq, 0u);
  }
}

TEST(NodeSource, FullRateInjectsEveryCycle) {
  Engine engine;
  TrafficPattern pat(PatternKind::Neighbor, 64);
  std::uint64_t count = 0;
  NodeSource src(engine, pat, NodeId{0}, 8, Rng(8),
                 [&](const Packet&, Cycle) { ++count; });
  src.start(1.0);
  engine.run_until(1000);
  EXPECT_EQ(count, 1000u);
}

}  // namespace
