// Unit + property tests for system configuration, the static RWA of §2.1,
// lane ownership, and the analytic capacity model.
#include <gtest/gtest.h>

#include "topology/capacity.hpp"
#include "topology/config.hpp"
#include "topology/rwa.hpp"
#include "traffic/patterns.hpp"
#include "util/expect.hpp"

namespace {

using erapid::BoardId;
using erapid::NodeId;
using erapid::WavelengthId;
using erapid::topology::CapacityModel;
using erapid::topology::LaneMap;
using erapid::topology::Rwa;
using erapid::topology::SystemConfig;

SystemConfig paper_config() {
  SystemConfig cfg;  // defaults are the paper's R(1,8,8)
  return cfg;
}

// ---- SystemConfig ------------------------------------------------------

TEST(SystemConfig, PaperDefaultsAre64Nodes) {
  const auto cfg = paper_config();
  EXPECT_EQ(cfg.num_nodes(), 64u);
  EXPECT_EQ(cfg.num_boards_total(), 8u);
  EXPECT_EQ(cfg.num_wavelengths(), 8u);
  EXPECT_EQ(cfg.describe(), "R(1,8,8), 64 nodes");
}

TEST(SystemConfig, ElectricalTimingMatchesTable1) {
  const auto cfg = paper_config();
  EXPECT_DOUBLE_EQ(cfg.cycle_ns().value(), 2.5);      // 400 MHz
  EXPECT_EQ(cfg.cycles_per_flit_electrical(), 4u);    // 64b flit / 16b phit
  EXPECT_EQ(cfg.packet_bits(), 512u);                 // 64 B packet
}

TEST(SystemConfig, OpticalSerializationAtPaperBitRates) {
  const auto cfg = paper_config();
  // 512 bits at 5 Gb/s = 102.4 ns = 40.96 cycles -> 41.
  EXPECT_EQ(cfg.serialization_cycles(erapid::units::GbitsPerSec{5.0}), 41u);
  // At 2.5 Gb/s exactly double the time.
  EXPECT_EQ(cfg.serialization_cycles(erapid::units::GbitsPerSec{2.5}), 82u);
  // 3.3 Gb/s: 512/3.3 = 155.15 ns = 62.06 cycles -> 63.
  EXPECT_EQ(cfg.serialization_cycles(erapid::units::GbitsPerSec{3.3}), 63u);
}

TEST(SystemConfig, NodeBoardMapsRoundTrip) {
  const auto cfg = paper_config();
  for (std::uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    const NodeId node{n};
    const BoardId b = cfg.board_of(node);
    const auto local = cfg.local_index(node);
    EXPECT_EQ(cfg.node_at(b, local), node);
    EXPECT_LT(local, cfg.nodes_per_board);
  }
}

TEST(SystemConfig, ValidateRejectsBrokenConfigs) {
  SystemConfig cfg = paper_config();
  cfg.boards = 1;
  EXPECT_THROW(cfg.validate(), erapid::ModelInvariantError);
  cfg = paper_config();
  cfg.channel_width_bits = 24;  // 64 % 24 != 0
  EXPECT_THROW(cfg.validate(), erapid::ModelInvariantError);
  cfg = paper_config();
  EXPECT_NO_THROW(cfg.validate());
}

// ---- RWA ---------------------------------------------------------------

TEST(Rwa, PaperExamplesB4) {
  // §2.1 examples for R(1,4,4): board 1 -> board 0 uses λ1; board 0 ->
  // board 1 uses λ3; board 0 -> board 3 uses λ1 (= B-(d-s) = 4-3).
  Rwa rwa(4);
  EXPECT_EQ(rwa.wavelength_for(BoardId{1}, BoardId{0}).value(), 1u);
  EXPECT_EQ(rwa.wavelength_for(BoardId{0}, BoardId{1}).value(), 3u);
  EXPECT_EQ(rwa.wavelength_for(BoardId{0}, BoardId{3}).value(), 1u);
}

TEST(Rwa, MatchesClosedFormForAllPairs) {
  // w = B-(d-s) for d>s and (s-d) for s>d — both equal (s-d) mod B.
  for (std::uint32_t B : {2u, 4u, 8u, 16u}) {
    Rwa rwa(B);
    for (std::uint32_t s = 0; s < B; ++s) {
      for (std::uint32_t d = 0; d < B; ++d) {
        if (s == d) continue;
        const std::uint32_t expect =
            d > s ? B - (d - s) : s - d;
        EXPECT_EQ(rwa.wavelength_for(BoardId{s}, BoardId{d}).value(), expect);
      }
    }
  }
}

TEST(Rwa, NeverAssignsWavelengthZero) {
  Rwa rwa(8);
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      if (s == d) continue;
      EXPECT_NE(rwa.wavelength_for(BoardId{s}, BoardId{d}).value(), 0u);
    }
  }
}

TEST(Rwa, OwnerAndDestinationAreInverses) {
  Rwa rwa(8);
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      if (s == d) continue;
      const auto w = rwa.wavelength_for(BoardId{s}, BoardId{d});
      EXPECT_EQ(rwa.static_owner(BoardId{d}, w), BoardId{s});
      EXPECT_EQ(rwa.static_destination(BoardId{s}, w), BoardId{d});
    }
  }
}

TEST(Rwa, CouplerSeesEveryWavelengthExactlyOnce) {
  // At each destination coupler, the B-1 source boards insert B-1
  // *distinct* wavelengths — the merging property of Figure 1.
  const std::uint32_t B = 8;
  Rwa rwa(B);
  for (std::uint32_t d = 0; d < B; ++d) {
    std::vector<bool> seen(B, false);
    for (std::uint32_t s = 0; s < B; ++s) {
      if (s == d) continue;
      const auto w = rwa.wavelength_for(BoardId{s}, BoardId{d});
      EXPECT_FALSE(seen[w.value()]) << "wavelength collision at coupler " << d;
      seen[w.value()] = true;
    }
    EXPECT_FALSE(seen[0]);  // λ0 stays free
  }
}

TEST(Rwa, SelfCommunicationThrows) {
  Rwa rwa(4);
  EXPECT_THROW((void)rwa.wavelength_for(BoardId{2}, BoardId{2}), erapid::ModelInvariantError);
}

// ---- LaneMap -----------------------------------------------------------

TEST(LaneMap, StaticSeedMatchesRwa) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  for (std::uint32_t d = 0; d < cfg.boards; ++d) {
    for (std::uint32_t s = 0; s < cfg.boards; ++s) {
      if (s == d) continue;
      const auto w = rwa.wavelength_for(BoardId{s}, BoardId{d});
      EXPECT_EQ(map.owner(BoardId{d}, w), BoardId{s});
      EXPECT_EQ(map.lane_count(BoardId{s}, BoardId{d}), 1u);
    }
    EXPECT_TRUE(map.is_free(BoardId{d}, WavelengthId{0}));
  }
  EXPECT_EQ(map.lit_count(), cfg.boards * (cfg.boards - 1));
}

TEST(LaneMap, GrantAndReleaseRoundTrip) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  map.grant(BoardId{3}, WavelengthId{0}, BoardId{1});
  EXPECT_EQ(map.owner(BoardId{3}, WavelengthId{0}), BoardId{1});
  EXPECT_EQ(map.lane_count(BoardId{1}, BoardId{3}), 2u);
  map.release(BoardId{3}, WavelengthId{0});
  EXPECT_TRUE(map.is_free(BoardId{3}, WavelengthId{0}));
}

TEST(LaneMap, DoubleGrantIsWavelengthCollision) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  map.grant(BoardId{3}, WavelengthId{0}, BoardId{1});
  EXPECT_THROW(map.grant(BoardId{3}, WavelengthId{0}, BoardId{2}),
               erapid::ModelInvariantError);
}

// Sanitizer builds intercept abort and break gtest's death-test forking;
// the invariant itself is still exercised by DoubleGrantIsWavelengthCollision.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ERAPID_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ERAPID_SANITIZED 1
#endif
#endif

// Two boards driving one (coupler, wavelength) pair is a physical
// impossibility, so model code that swallows ModelInvariantError (noexcept
// protocol callbacks, destructor paths) must still die, not limp on with a
// corrupted ownership matrix: the throw escalates to std::terminate.
TEST(LaneMapDeathTest, WavelengthCollisionEscalatesToAbort) {
#if defined(ERAPID_SANITIZED)
  GTEST_SKIP() << "death test skipped under sanitizers";
#else
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  map.grant(BoardId{3}, WavelengthId{0}, BoardId{1});
  auto drive_second_laser = [&]() noexcept {
    map.grant(BoardId{3}, WavelengthId{0}, BoardId{2});
  };
  EXPECT_DEATH(drive_second_laser(), "wavelength collision");
#endif
}

TEST(LaneMap, FailedLaneIsEvictedAndUngrantable) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  const auto w = rwa.wavelength_for(BoardId{1}, BoardId{3});
  ASSERT_EQ(map.owner(BoardId{3}, w), BoardId{1});

  map.mark_failed(BoardId{3}, w);
  EXPECT_TRUE(map.is_failed(BoardId{3}, w));
  EXPECT_FALSE(map.owner(BoardId{3}, w).valid());
  EXPECT_EQ(map.failed_count(), 1u);
  EXPECT_EQ(map.lit_count(), cfg.boards * (cfg.boards - 1) - 1);
  EXPECT_THROW(map.grant(BoardId{3}, w, BoardId{1}), erapid::ModelInvariantError);

  // reset_static must re-seed around the dead lane, not resurrect it.
  map.reset_static();
  EXPECT_TRUE(map.is_failed(BoardId{3}, w));
  EXPECT_FALSE(map.owner(BoardId{3}, w).valid());
}

TEST(LaneMap, ReleaseOfDarkLaneThrows) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  EXPECT_THROW(map.release(BoardId{3}, WavelengthId{0}), erapid::ModelInvariantError);
}

TEST(LaneMap, GrantToSelfThrows) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  EXPECT_THROW(map.grant(BoardId{3}, WavelengthId{0}, BoardId{3}),
               erapid::ModelInvariantError);
}

TEST(LaneMap, LanesOfEnumeratesOwnership) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  map.grant(BoardId{5}, WavelengthId{0}, BoardId{2});
  const auto lanes = map.lanes_of(BoardId{2}, BoardId{5});
  ASSERT_EQ(lanes.size(), 2u);  // static + granted λ0
}

TEST(LaneMap, ResetStaticRestoresBaseline) {
  const auto cfg = paper_config();
  Rwa rwa(cfg.boards);
  LaneMap map(cfg, rwa);
  map.grant(BoardId{3}, WavelengthId{0}, BoardId{1});
  map.reset_static();
  EXPECT_TRUE(map.is_free(BoardId{3}, WavelengthId{0}));
  EXPECT_EQ(map.lit_count(), cfg.boards * (cfg.boards - 1));
}

// ---- CapacityModel -----------------------------------------------------

TEST(Capacity, LaneServiceRateMatchesSerialization) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  EXPECT_DOUBLE_EQ(cm.lane_service_rate(erapid::units::GbitsPerSec{5.0}), 1.0 / 41.0);
}

TEST(Capacity, InjectionLimitIs32CyclesPerPacket) {
  CapacityModel cm(paper_config());
  EXPECT_DOUBLE_EQ(cm.injection_limit(), 1.0 / 32.0);
}

TEST(Capacity, UniformCapacityIsLaneBound) {
  // Lane bound: (1/41) * 63/64 ≈ 0.0240 < injection 0.03125.
  CapacityModel cm(paper_config());
  const double nc = cm.uniform_capacity();
  EXPECT_NEAR(nc, (1.0 / 41.0) * 63.0 / 64.0, 1e-12);
  EXPECT_LT(nc, cm.injection_limit());
}

TEST(Capacity, UniformDemandMatchesEnumeration) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  const auto analytic = cm.uniform_board_demand();
  for (std::uint32_t s = 0; s < cfg.boards; ++s) {
    for (std::uint32_t d = 0; d < cfg.boards; ++d) {
      const double v = analytic[s * cfg.boards + d];
      if (s == d) {
        EXPECT_DOUBLE_EQ(v, 0.0);
      } else {
        EXPECT_NEAR(v, 64.0 / 63.0, 1e-12);  // D*D/(N-1)
      }
    }
  }
}

TEST(Capacity, ComplementDemandConcentratesOnOneFlow) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  erapid::traffic::TrafficPattern pat(erapid::traffic::PatternKind::Complement,
                                      cfg.num_nodes());
  const auto demand = cm.board_demand([&](NodeId n) { return pat.permute(n); });
  for (std::uint32_t s = 0; s < cfg.boards; ++s) {
    for (std::uint32_t d = 0; d < cfg.boards; ++d) {
      const double v = demand[s * cfg.boards + d];
      if (d == cfg.boards - 1 - s) {
        EXPECT_DOUBLE_EQ(v, 8.0);  // all D nodes of s target board B-1-s
      } else {
        EXPECT_DOUBLE_EQ(v, 0.0);
      }
    }
  }
}

TEST(Capacity, ComplementStaticSaturatesEightTimesEarlier) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  erapid::traffic::TrafficPattern pat(erapid::traffic::PatternKind::Complement,
                                      cfg.num_nodes());
  const auto demand = cm.board_demand([&](NodeId n) { return pat.permute(n); });
  const double sat = cm.static_saturation(demand);
  // One lane serving all 8 nodes of a board: (1/41)/8.
  EXPECT_NEAR(sat, 1.0 / 41.0 / 8.0, 1e-12);
  EXPECT_LT(sat, cm.uniform_capacity() * 0.2);
}

TEST(Capacity, ZeroLanesOnDemandedFlowMeansZeroSaturation) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  const auto demand = cm.uniform_board_demand();
  const double sat = cm.saturation_injection(
      demand, [](BoardId, BoardId) { return 0u; });
  EXPECT_DOUBLE_EQ(sat, 0.0);
}

TEST(Capacity, MoreLanesRaiseSaturationUntilInjectionBound) {
  const auto cfg = paper_config();
  CapacityModel cm(cfg);
  erapid::traffic::TrafficPattern pat(erapid::traffic::PatternKind::Complement,
                                      cfg.num_nodes());
  const auto demand = cm.board_demand([&](NodeId n) { return pat.permute(n); });
  const double sat1 = cm.static_saturation(demand);
  const double sat8 = cm.saturation_injection(
      demand, [](BoardId, BoardId) { return 8u; });
  EXPECT_NEAR(sat8 / sat1, 8.0, 1e-9);
  const double sat100 = cm.saturation_injection(
      demand, [](BoardId, BoardId) { return 100u; });
  EXPECT_DOUBLE_EQ(sat100, cm.injection_limit());  // electrically bound
}

}  // namespace
