// Unit tests for utilities: RNG, CSV, table printer, CLI, strong ids.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "util/arena.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/inplace_fn.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace {

using erapid::BoardId;
using erapid::NodeId;
using erapid::util::Cli;
using erapid::util::CsvWriter;
using erapid::util::Rng;
using erapid::util::TablePrinter;

// ---- RNG ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng r(3);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork and the parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, MeanOfUniformDoublesIsHalf) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

// ---- strong ids --------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_TRUE(NodeId{3}.valid());
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(BoardId{2}, BoardId{2});
  EXPECT_NE(BoardId{2}, BoardId{3});
  EXPECT_LT(BoardId{2}, BoardId{3});
}

// ---- CSV ---------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "erapid_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row_values(1, 2.5);
    w.row_values("x,y", "q\"z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"q\"\"z\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = testing::TempDir() + "erapid_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), erapid::ModelInvariantError);
  std::remove(path.c_str());
}

// ---- table printer -----------------------------------------------------

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.row_values("x", 1);
  t.row_values("longer", 22);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ(TablePrinter::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fixed(2.0, 1), "2.0");
}

// ---- CLI ---------------------------------------------------------------

TEST(Cli, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--load=0.5", "--name=abc"};
  const auto cli = Cli::parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0), 0.5);
  EXPECT_EQ(cli.get_or("name", ""), "abc");
}

TEST(Cli, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--load", "0.7"};
  const auto cli = Cli::parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0), 0.7);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const char* argv[] = {"prog", "--verbose"};
  const auto cli = Cli::parse(2, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("other", false));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const char* argv[] = {"prog", "pos1", "--k=v", "pos2"};
  const auto cli = Cli::parse(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Cli, IntParsingWithDefault) {
  const char* argv[] = {"prog", "--n=12"};
  const auto cli = Cli::parse(2, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get_int("missing", 99), 99);
}

// ---- Arena -------------------------------------------------------------

TEST(Arena, RespectsRequestedAlignment) {
  erapid::util::Arena arena(256);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.allocate(3, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align " << align << " iter " << i;
    }
  }
}

TEST(Arena, GrowsBeyondOneChunk) {
  erapid::util::Arena arena(64);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(16, 8);
    EXPECT_TRUE(seen.insert(p).second) << "allocation " << i << " aliased";
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_served(), 1600u);
}

TEST(Arena, OversizedRequestFallsBackToDedicatedChunk) {
  erapid::util::Arena arena(64);
  void* small1 = arena.allocate(16, 8);
  void* big = arena.allocate(1000, 8);  // > chunk size: dedicated chunk
  void* small2 = arena.allocate(16, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 8, 0u);
  // The bump pointer keeps filling the normal chunk around the big one.
  EXPECT_EQ(static_cast<char*>(small2), static_cast<char*>(small1) + 16);
  std::memset(big, 0xAB, 1000);  // fully usable (ASan would object otherwise)
}

TEST(Arena, ResetReusesRetainedCapacity) {
  erapid::util::Arena arena(128);
  std::vector<void*> first;
  for (int i = 0; i < 20; ++i) first.push_back(arena.allocate(24, 8));
  const auto chunks_before = arena.chunk_count();
  const auto capacity_before = arena.capacity_bytes();
  arena.reset();
  EXPECT_EQ(arena.bytes_served(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks_before);
  EXPECT_EQ(arena.capacity_bytes(), capacity_before);
  // Same storage comes back in the same order.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(arena.allocate(24, 8), first[static_cast<std::size_t>(i)]);
}

TEST(Arena, ZeroByteRequestStillReturnsDistinctStorage) {
  erapid::util::Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

// ---- Pool --------------------------------------------------------------

struct PoolProbe {
  explicit PoolProbe(int v) : value(v) { ++alive; }
  ~PoolProbe() { --alive; }
  int value;
  static int alive;
};
int PoolProbe::alive = 0;

TEST(Pool, CreateDestroyRecyclesSlots) {
  erapid::util::Arena arena(1024);
  erapid::util::Pool<PoolProbe> pool(arena);
  PoolProbe* a = pool.create(1);
  PoolProbe* b = pool.create(2);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(PoolProbe::alive, 2);
  pool.destroy(a);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.free_count(), 1u);
  PoolProbe* c = pool.create(3);  // reuses a's slot
  EXPECT_EQ(static_cast<void*>(c), static_cast<void*>(a));
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.slots_created(), 2u);
  pool.destroy(b);
  pool.destroy(c);
  EXPECT_EQ(PoolProbe::alive, 0);
  pool.destroy(nullptr);  // ignored
}

// ---- InplaceFn ---------------------------------------------------------

TEST(InplaceFn, SmallCapturesStayInline) {
  int hits = 0;
  erapid::util::InplaceFn<96> fn = [&hits] { ++hits; };
  EXPECT_TRUE(fn.is_inline());
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, LargeCapturesFallBackToHeapAndStillRun) {
  struct Big {
    double payload[32] = {};  // 256 bytes — far over the 96-byte buffer
  };
  Big big;
  big.payload[31] = 7.5;
  double seen = 0.0;
  erapid::util::InplaceFn<96> fn = [big, &seen] { seen = big.payload[31]; };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(seen, 7.5);
}

TEST(InplaceFn, MoveTransfersOwnershipExactlyOnce) {
  auto owner = std::make_shared<int>(42);
  std::weak_ptr<int> watch = owner;
  int got = 0;
  erapid::util::InplaceFn<96> a = [owner = std::move(owner), &got] { got = *owner; };
  erapid::util::InplaceFn<96> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(got, 42);
  erapid::util::InplaceFn<96> c;
  c = std::move(b);
  c();
  EXPECT_EQ(watch.use_count(), 1);  // exactly one live copy of the capture
  c = erapid::util::InplaceFn<96>{};
  EXPECT_TRUE(watch.expired());  // destroyed with the callable
}

TEST(InplaceFn, DefaultConstructedIsEmpty) {
  erapid::util::InplaceFn<32> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  erapid::util::InplaceFn<32> fn2 = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn2));
}

// ---- strong unit types (util/units.hpp) ------------------------------------

TEST(Units, SameDimensionArithmeticStaysInDimension) {
  using erapid::units::Milliwatts;
  const Milliwatts a{10.0};
  const Milliwatts b{2.5};
  EXPECT_EQ((a + b).value(), 12.5);
  EXPECT_EQ((a - b).value(), 7.5);
  EXPECT_EQ((a * 2.0).value(), 20.0);
  EXPECT_EQ((2.0 * a).value(), 20.0);
  EXPECT_EQ((a / 4.0).value(), 2.5);
  Milliwatts acc{1.0};
  acc += a;
  acc -= b;
  EXPECT_EQ(acc.value(), 8.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  using erapid::units::GbitsPerSec;
  const double ratio = GbitsPerSec{2.5} / GbitsPerSec{5.0};
  EXPECT_EQ(ratio, 0.5);
}

TEST(Units, ComparisonsFollowTheUnderlyingDouble) {
  using erapid::units::Volts;
  EXPECT_TRUE(Volts{0.7} < Volts{0.9});
  EXPECT_TRUE(Volts{0.9} <= Volts{0.9});
  EXPECT_TRUE(Volts{0.9} == Volts{0.9});
  EXPECT_TRUE(Volts{1.0} > Volts{0.9});
  EXPECT_TRUE(Volts{1.0} != Volts{0.9});
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_EQ(erapid::units::MilliwattCycles{}.value(), 0.0);
}

TEST(Units, TimeConversionsRoundTrip) {
  using erapid::units::Nanoseconds;
  using erapid::units::Picoseconds;
  const Nanoseconds ns{0.4};  // a 2.5 GHz clock period
  const Picoseconds ps = erapid::units::to_ps(ns);
  EXPECT_EQ(ps.value(), 400.0);
  EXPECT_EQ(erapid::units::to_ns(ps).value(), 0.4);
}

TEST(Units, EnergyAndAveragePowerAreInverse) {
  using erapid::units::MilliwattCycles;
  using erapid::units::Milliwatts;
  const Milliwatts p{43.03};
  const MilliwattCycles e = erapid::units::energy_over(p, 200.0);
  EXPECT_EQ(e.value(), 43.03 * 200.0);
  EXPECT_EQ(erapid::units::average_power(e, 200.0).value(), p.value());
}

TEST(Units, ArithmeticIsBitIdenticalToRawDoubles) {
  // The migration contract: Quantity math must be the same IEEE ops in the
  // same order as the raw-double code it replaced.
  using erapid::units::Milliwatts;
  const double ra = 13.7, rb = 0.3;
  const Milliwatts qa{ra}, qb{rb};
  EXPECT_EQ((qa + qb).value(), ra + rb);
  EXPECT_EQ((qa * 0.1).value(), ra * 0.1);
  EXPECT_EQ(qa / qb, ra / rb);
}

}  // namespace
