// Unit tests for utilities: RNG, CSV, table printer, CLI, strong ids.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace {

using erapid::BoardId;
using erapid::NodeId;
using erapid::util::Cli;
using erapid::util::CsvWriter;
using erapid::util::Rng;
using erapid::util::TablePrinter;

// ---- RNG ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng r(3);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork and the parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, MeanOfUniformDoublesIsHalf) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

// ---- strong ids --------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_TRUE(NodeId{3}.valid());
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(BoardId{2}, BoardId{2});
  EXPECT_NE(BoardId{2}, BoardId{3});
  EXPECT_LT(BoardId{2}, BoardId{3});
}

// ---- CSV ---------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "erapid_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row_values(1, 2.5);
    w.row_values("x,y", "q\"z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"q\"\"z\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = testing::TempDir() + "erapid_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), erapid::ModelInvariantError);
  std::remove(path.c_str());
}

// ---- table printer -----------------------------------------------------

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.row_values("x", 1);
  t.row_values("longer", 22);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ(TablePrinter::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fixed(2.0, 1), "2.0");
}

// ---- CLI ---------------------------------------------------------------

TEST(Cli, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--load=0.5", "--name=abc"};
  const auto cli = Cli::parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0), 0.5);
  EXPECT_EQ(cli.get_or("name", ""), "abc");
}

TEST(Cli, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--load", "0.7"};
  const auto cli = Cli::parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0), 0.7);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const char* argv[] = {"prog", "--verbose"};
  const auto cli = Cli::parse(2, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("other", false));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const char* argv[] = {"prog", "pos1", "--k=v", "pos2"};
  const auto cli = Cli::parse(4, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Cli, IntParsingWithDefault) {
  const char* argv[] = {"prog", "--n=12"};
  const auto cli = Cli::parse(2, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get_int("missing", 99), 99);
}

}  // namespace
