// Tests for the simulation driver: methodology (warmup/measure/drain),
// determinism, and basic sanity of the reported metrics.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace {

using erapid::reconfig::NetworkMode;
using erapid::sim::SimOptions;
using erapid::sim::SimResult;
using erapid::sim::Simulation;
using erapid::traffic::PatternKind;

SimOptions small_opts() {
  SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.load_fraction = 0.4;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.drain_limit = 60000;
  return o;
}

TEST(Simulation, LowLoadDeliversOfferedThroughput) {
  auto o = small_opts();
  const auto r = Simulation(o).run();
  // Well under saturation: accepted ≈ offered (within stochastic noise).
  EXPECT_NEAR(r.accepted_fraction, r.offered_fraction, 0.06);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.packets_generated, 0u);
  EXPECT_EQ(r.labelled_generated, r.labelled_delivered);
}

TEST(Simulation, LatencyIsPositiveAndBounded) {
  auto o = small_opts();
  const auto r = Simulation(o).run();
  EXPECT_GT(r.latency_avg, 10.0);     // several pipeline + serialization steps
  EXPECT_LT(r.latency_avg, 5000.0);   // far from saturation
  EXPECT_GE(r.latency_p99, r.latency_p50);
  EXPECT_GE(r.latency_max, r.latency_avg);
}

TEST(Simulation, DeterministicForSameSeed) {
  auto o = small_opts();
  const auto a = Simulation(o).run();
  const auto b = Simulation(o).run();
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered_measured, b.packets_delivered_measured);
  EXPECT_DOUBLE_EQ(a.latency_avg, b.latency_avg);
  EXPECT_DOUBLE_EQ(a.power_avg_mw, b.power_avg_mw);
}

TEST(Simulation, DifferentSeedsDiffer) {
  auto o = small_opts();
  const auto a = Simulation(o).run();
  o.seed = 999;
  const auto b = Simulation(o).run();
  EXPECT_NE(a.packets_generated, b.packets_generated);
}

TEST(Simulation, NpNbPowerIsAllLanesAtPHigh) {
  auto o = small_opts();
  o.reconfig.mode = NetworkMode::np_nb();
  const auto r = Simulation(o).run();
  // 4 boards × 3 static lanes × 43.03 mW, constant.
  EXPECT_NEAR(r.power_avg_mw, 12 * 43.03, 1e-6);
}

TEST(Simulation, PowerAwareModeUsesLessPowerAtLowLoad) {
  auto o = small_opts();
  o.load_fraction = 0.2;
  o.reconfig.mode = NetworkMode::np_nb();
  const auto base = Simulation(o).run();
  o.reconfig.mode = NetworkMode::p_nb();
  const auto pa = Simulation(o).run();
  EXPECT_LT(pa.power_avg_mw, base.power_avg_mw * 0.9);
}

TEST(Simulation, Offered90PercentStillDrainsUniform) {
  auto o = small_opts();
  o.load_fraction = 0.9;
  const auto r = Simulation(o).run();
  EXPECT_GT(r.accepted_fraction, 0.75);
}

TEST(Simulation, ControlCountersPopulatedInPB) {
  auto o = small_opts();
  o.pattern = PatternKind::Complement;
  o.reconfig.mode = NetworkMode::p_b();
  const auto r = Simulation(o).run();
  EXPECT_GT(r.control.power_cycles, 0u);
  EXPECT_GT(r.control.bandwidth_cycles, 0u);
  EXPECT_GT(r.control.lane_grants, 0u);
}

TEST(Simulation, CustomPowerModelDrivesLanes) {
  // A fixed-6.4 Gb/s "electrical" model must change both power accounting
  // and serialization timing end-to-end.
  auto o = small_opts();
  o.load_fraction = 0.2;
  for (auto l : {erapid::power::PowerLevel::Low, erapid::power::PowerLevel::Mid,
                 erapid::power::PowerLevel::High}) {
    o.power_model.set_power_mw(l, erapid::units::Milliwatts{128.0});
    o.power_model.set_bitrate_gbps(l, erapid::units::GbitsPerSec{6.4});
    o.power_model.set_supply_v(l, erapid::units::Volts{1.2});
  }
  const auto r = Simulation(o).run();
  // 4 boards x 3 lanes x 128 mW, constant under NP-NB.
  EXPECT_NEAR(r.power_avg_mw, 12 * 128.0, 1e-6);
  EXPECT_TRUE(r.drained);
}

TEST(Simulation, CapacityMatchesAnalyticModel) {
  auto o = small_opts();
  Simulation sim(o);
  const erapid::topology::CapacityModel cm(o.system);
  EXPECT_DOUBLE_EQ(sim.capacity(), cm.uniform_capacity());
}

TEST(Simulation, CompareModesRunsAllFour) {
  auto o = small_opts();
  o.measure_cycles = 4000;
  const auto cmp = erapid::sim::compare_modes(o);
  EXPECT_GT(cmp.np_nb.packets_generated, 0u);
  EXPECT_GT(cmp.p_nb.packets_generated, 0u);
  EXPECT_GT(cmp.np_b.packets_generated, 0u);
  EXPECT_GT(cmp.p_b.packets_generated, 0u);
}

}  // namespace
