// Windowed telemetry plane tests.
//
// Layered like test_obs.cpp, strongest guarantee first:
//
//   1. Inertness: with telemetry off (the default) a run schedules no
//      telemetry event and its report carries no "obs_telemetry" block —
//      the golden fixtures in test_determinism.cpp additionally pin the
//      off-path reports byte-for-byte. Under ERAPID_NO_OBS the plane
//      compiles out entirely.
//   2. Determinism: two same-seed telemetry runs write byte-identical
//      erapid-telemetry-1 JSONL, across runs AND across the heap|calendar
//      event-queue implementations; a committed golden stream pins the
//      tiny 4-board run (regenerate with ERAPID_REGEN_GOLDEN=1 only when
//      the change is intended — see tests_support.hpp policy).
//   3. Reconciliation: the per-board energy ledger's mirrored integral
//      equals the EnergyMeter total with exact `==` (the run itself holds
//      this as an ERAPID_INVARIANT every window; the unit tests pin the
//      mirror arithmetic in isolation).
//
// Plus unit tests for the CUSUM phase detector, the traffic-matrix
// estimator's window/EWMA/top-K semantics, and the flight recorder's ring
// and dump trigger.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/energy_ledger.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/phase_detect.hpp"
#include "obs/tm_estimator.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "stats/time_weighted.hpp"

namespace {

using namespace erapid;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

std::string tmp_path(const std::string& name) { return testing::TempDir() + name; }

sim::SimOptions base_options() {
  sim::SimOptions o;
  o.system.boards = 4;
  o.system.nodes_per_board = 4;
  o.reconfig.mode = reconfig::NetworkMode::p_b();
  o.load_fraction = 0.5;
  o.seed = 1;
  o.warmup_cycles = 4000;
  o.measure_cycles = 8000;
  o.drain_limit = 60000;
  return o;
}

sim::SimOptions telemetry_options(const std::string& path) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;
  o.obs.telemetry_path = path;
  o.obs.telemetry_window = 2000;
  return o;
}

// ---- unit: phase detector (CUSUM) -------------------------------------------

obs::PhaseDetectorConfig detector_config() {
  obs::PhaseDetectorConfig cfg;
  cfg.alpha = 0.2;
  cfg.slack = 0.05;
  cfg.threshold = 0.25;
  return cfg;
}

TEST(PhaseDetector, FirstSampleSeedsWithoutFiring) {
  obs::PhaseDetector d(detector_config());
  EXPECT_FALSE(d.update(0.6));
  EXPECT_EQ(d.phase_id(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.6);
  EXPECT_EQ(d.samples(), 1u);
}

TEST(PhaseDetector, SteadySeriesNeverFires) {
  obs::PhaseDetector d(detector_config());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.update(0.5));
  EXPECT_EQ(d.changes(), 0u);
  EXPECT_DOUBLE_EQ(d.cusum_up(), 0.0);
  EXPECT_DOUBLE_EQ(d.cusum_down(), 0.0);
}

TEST(PhaseDetector, SlackAbsorbsSmallJitter) {
  obs::PhaseDetector d(detector_config());
  // +-0.04 around 0.5 stays inside the 0.05 dead-band: the CUSUM sides
  // never accumulate, however long the series runs.
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(d.update(i % 2 == 0 ? 0.54 : 0.46));
  EXPECT_EQ(d.changes(), 0u);
}

TEST(PhaseDetector, UpwardLevelShiftFiresExactlyOnce) {
  obs::PhaseDetector d(detector_config());
  for (int i = 0; i < 10; ++i) d.update(0.2);
  std::uint64_t fires = 0;
  for (int i = 0; i < 20; ++i) fires += d.update(0.8) ? 1u : 0u;
  // One level shift, one change-point: the restart rule re-seeds the mean
  // at the new operating point, so the shift cannot fire repeatedly.
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(d.phase_id(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.8);
}

TEST(PhaseDetector, DownwardShiftFiresToo) {
  obs::PhaseDetector d(detector_config());
  for (int i = 0; i < 10; ++i) d.update(0.8);
  std::uint64_t fires = 0;
  for (int i = 0; i < 20; ++i) fires += d.update(0.1) ? 1u : 0u;
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(d.phase_id(), 1u);
}

TEST(PhaseDetector, AccumulatesSlowDriftAcrossSamples) {
  // A sustained +0.15 level shift accumulates past the threshold even
  // though no single deviation does. The EWMA adapts toward the new level
  // between samples (0.5 -> 0.53 -> 0.554 -> ...), shrinking each residual,
  // so the CUSUM crosses 0.25 on the fifth shifted sample rather than the
  // naive ceil(0.25 / 0.10) = 3rd.
  obs::PhaseDetector d(detector_config());
  d.update(0.5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(d.update(0.65)) << "fired early at shifted sample " << i + 1;
  }
  EXPECT_TRUE(d.update(0.65));
  EXPECT_EQ(d.phase_id(), 1u);
}

// ---- unit: traffic-matrix estimator -----------------------------------------

TEST(TmEstimator, AccumulatesAndRanksFlows) {
  obs::TmEstimator tm(4, 0.5);
  tm.on_packet(0, 1, 100);
  tm.on_packet(0, 1, 100);
  tm.on_packet(2, 3, 300);
  tm.on_packet(1, 0, 200);

  EXPECT_EQ(tm.window_bytes(), 700u);
  EXPECT_EQ(tm.window_packets(), 4u);
  EXPECT_EQ(tm.flows(), 3u);

  const auto top = tm.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].src, 2u);
  EXPECT_EQ(top[0].dst, 3u);
  EXPECT_EQ(top[0].bytes, 300u);
  EXPECT_EQ(top[1].bytes, 200u);
}

TEST(TmEstimator, TopKTieBreaksBySrcDstAscending) {
  obs::TmEstimator tm(4, 0.5);
  tm.on_packet(3, 0, 100);
  tm.on_packet(1, 2, 100);
  tm.on_packet(1, 0, 100);
  const auto top = tm.top_k(8);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].src, 1u);
  EXPECT_EQ(top[0].dst, 0u);
  EXPECT_EQ(top[1].src, 1u);
  EXPECT_EQ(top[1].dst, 2u);
  EXPECT_EQ(top[2].src, 3u);
}

TEST(TmEstimator, RollFoldsEwmaAndClearsWindow) {
  obs::TmEstimator tm(2, 0.5);
  tm.on_packet(0, 1, 400);
  tm.roll_window();

  EXPECT_EQ(tm.window_bytes(), 0u);
  EXPECT_EQ(tm.total_bytes(), 400u);
  EXPECT_EQ(tm.windows(), 1u);
  auto snap = tm.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes, 200.0);  // 0.5 * 400

  // An idle window decays the flow toward zero instead of freezing it.
  tm.roll_window();
  snap = tm.snapshot();
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes, 100.0);  // 0.5 * 0 + 0.5 * 200
}

TEST(TmEstimator, SkewAndHotspotScalars) {
  obs::TmEstimator tm(4, 0.5);
  // Uniform two flows: skew = max/mean = 1; hottest dst holds half.
  tm.on_packet(0, 1, 100);
  tm.on_packet(2, 3, 100);
  EXPECT_DOUBLE_EQ(tm.window_skew(), 1.0);
  EXPECT_DOUBLE_EQ(tm.window_hotspot(), 0.5);

  // Pile onto one flow: 400/dst1 vs 100/dst3 -> skew 1.6, hotspot 0.8.
  tm.on_packet(0, 1, 300);
  EXPECT_DOUBLE_EQ(tm.window_skew(), 1.6);
  EXPECT_DOUBLE_EQ(tm.window_hotspot(), 0.8);
}

TEST(TmEstimator, EmptyWindowScalarsAreZero) {
  obs::TmEstimator tm(4, 0.5);
  EXPECT_DOUBLE_EQ(tm.window_skew(), 0.0);
  EXPECT_DOUBLE_EQ(tm.window_hotspot(), 0.0);
  EXPECT_TRUE(tm.top_k(8).empty());
}

// ---- unit: energy ledger ----------------------------------------------------

TEST(EnergyLedger, MirrorsAnIndependentIntegralExactly) {
  // Feed the ledger the same update sequence an EnergyMeter would see and
  // hold its mirrored total against an independently-built TimeWeighted —
  // the same exact-equality contract `reconcile` enforces in-run.
  obs::EnergyLedger ledger(2);
  ledger.set_laser_share(43.03, 20.0);
  ledger.tag_source(0, 0);
  ledger.tag_source(1, 1);

  stats::TimeWeighted reference;
  auto set_power = [&](std::uint32_t id, Cycle now, double mw, double prev) {
    reference.add(now, mw - prev);
    ledger.on_set_power(id, now, mw);
  };
  set_power(0, 0, 43.03, 0.0);
  set_power(1, 100, 43.03, 0.0);
  ledger.on_checkpoint(250);
  reference.checkpoint(250);
  set_power(0, 400, 0.0, 43.03);

  const Cycle end = 1000;
  EXPECT_EQ(ledger.total_mw_cycles(end), reference.integral(end));
  ledger.reconcile(end, reference.integral(end));  // must not throw
}

TEST(EnergyLedger, SplitsLaserAndSerdesPerBoard) {
  obs::EnergyLedger ledger(2);
  ledger.set_laser_share(10.0, 4.0);  // 40% laser at this level
  ledger.tag_source(0, 0);
  ledger.tag_source(1, 1);
  ledger.on_set_power(0, 0, 10.0);
  ledger.on_set_power(1, 0, 10.0);

  const auto b0 = ledger.board_energy(0, 100);
  EXPECT_DOUBLE_EQ(b0.total_mw_cycles, 1000.0);
  EXPECT_DOUBLE_EQ(b0.laser_mw_cycles, 400.0);
  EXPECT_DOUBLE_EQ(b0.serdes_mw_cycles, 600.0);
  EXPECT_DOUBLE_EQ(b0.buffer_mw_cycles, 0.0);
  EXPECT_DOUBLE_EQ(b0.ctrl_mw_cycles, 0.0);

  // A level without a share entry attributes fully to serdes.
  ledger.on_set_power(1, 100, 7.5);
  const auto b1 = ledger.board_energy(1, 200);
  EXPECT_DOUBLE_EQ(b1.laser_mw_cycles, 400.0);  // laser stopped at cycle 100
  EXPECT_DOUBLE_EQ(b1.total_mw_cycles, 10.0 * 100 + 7.5 * 100);
}

TEST(EnergyLedger, ReconcileTripsOnMismatch) {
  obs::EnergyLedger ledger(1);
  ledger.tag_source(0, 0);
  ledger.on_set_power(0, 0, 10.0);
  EXPECT_THROW(ledger.reconcile(100, 999.0), ModelInvariantError);
}

// ---- unit: flight recorder --------------------------------------------------

TEST(FlightRecorder, RingKeepsTheLastDepthEvents) {
  const std::string path = tmp_path("fr_ring.json");
  obs::FlightRecorder fr(3, path);
  for (int i = 0; i < 5; ++i) {
    fr.record(static_cast<Cycle>(100 * i), "evt" + std::to_string(i), "");
  }
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.events_recorded(), 5u);

  fr.dump(500, "monitor_violation", "power_cap");
  EXPECT_EQ(fr.dumps(), 1u);
  const auto text = slurp(path);
  // Oldest-first: evt0/evt1 were evicted, evt2 leads the dump.
  EXPECT_NE(text.find("\"schema\": \"erapid-flight-recorder-1\""), std::string::npos);
  EXPECT_EQ(text.find("evt1"), std::string::npos);
  EXPECT_LT(text.find("evt2"), text.find("evt4"));
  EXPECT_NE(text.find("\"reason\": \"monitor_violation\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- integration: inertness -------------------------------------------------

TEST(TelemetryInert, DefaultRunCarriesNoTelemetryBlock) {
  const auto report = sim::to_json(sim::Simulation(base_options()).run());
  EXPECT_EQ(report.find("obs_telemetry"), std::string::npos);
}

TEST(TelemetryInert, ObsWithoutTelemetryPathSchedulesNothing) {
  sim::SimOptions o = base_options();
  o.obs.enabled = true;  // metrics on, telemetry still off
  const auto r = sim::Simulation(o).run();
  EXPECT_FALSE(r.telemetry.active);
  EXPECT_EQ(sim::to_json(r).find("obs_telemetry"), std::string::npos);
}

#if !defined(ERAPID_NO_OBS)

// ---- integration: determinism -----------------------------------------------

std::string run_telemetry(const std::string& path,
                          des::QueueKind queue = des::QueueKind::Heap,
                          std::uint64_t seed = 1) {
  sim::SimOptions o = telemetry_options(path);
  o.des_queue = queue;
  o.seed = seed;
  const auto r = sim::Simulation(o).run();
  EXPECT_TRUE(r.telemetry.active);
  EXPECT_GT(r.telemetry.windows, 0u);
  const auto text = slurp(path);
  std::remove(path.c_str());
  return text;
}

TEST(TelemetryDeterminism, SameSeedStreamsAreByteIdentical) {
  const auto a = run_telemetry(tmp_path("tel_a.jsonl"));
  const auto b = run_telemetry(tmp_path("tel_b.jsonl"));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("\"schema\": \"erapid-telemetry-1\""), std::string::npos);
}

TEST(TelemetryDeterminism, HeapAndCalendarQueuesWriteTheSameStream) {
  const auto heap = run_telemetry(tmp_path("tel_heap.jsonl"), des::QueueKind::Heap);
  const auto cal =
      run_telemetry(tmp_path("tel_cal.jsonl"), des::QueueKind::Calendar);
  EXPECT_EQ(heap, cal);
}

TEST(TelemetryDeterminism, DifferentSeedsDiverge) {
  const auto a = run_telemetry(tmp_path("tel_s1.jsonl"), des::QueueKind::Heap, 1);
  const auto b = run_telemetry(tmp_path("tel_s2.jsonl"), des::QueueKind::Heap, 2);
  EXPECT_NE(a, b);
}

// ---- integration: report & summary ------------------------------------------

TEST(TelemetryReport, RunCarriesGatedSummaryBlock) {
  const std::string path = tmp_path("tel_report.jsonl");
  const auto r = sim::Simulation(telemetry_options(path)).run();
  std::remove(path.c_str());

  ASSERT_TRUE(r.telemetry.active);
  EXPECT_GT(r.telemetry.windows, 0u);
  EXPECT_GT(r.telemetry.tm_bytes, 0u);
  EXPECT_GT(r.telemetry.tm_flows, 0u);
  EXPECT_GT(r.telemetry.energy_total_mw_cycles, 0.0);
  // Only lanes are metered: attribution is laser + serdes, nothing else,
  // and the split sums back to the per-board totals.
  EXPECT_GT(r.telemetry.energy_laser_mw_cycles, 0.0);
  EXPECT_GT(r.telemetry.energy_serdes_mw_cycles, 0.0);
  EXPECT_NEAR(r.telemetry.energy_laser_mw_cycles + r.telemetry.energy_serdes_mw_cycles,
              r.telemetry.energy_total_mw_cycles,
              1e-6 * r.telemetry.energy_total_mw_cycles);

  const auto report = sim::to_json(r);
  EXPECT_NE(report.find("\"obs_telemetry\""), std::string::npos);
  EXPECT_NE(report.find("\"windows\""), std::string::npos);
}

// ---- integration: flight-recorder trigger -----------------------------------

TEST(FlightRecorderTrigger, MonitorViolationDumpsTheRing) {
  const std::string tel = tmp_path("tel_fr.jsonl");
  const std::string dump = tmp_path("fr_dump.json");
  std::remove(dump.c_str());

  sim::SimOptions o = telemetry_options(tel);
  o.obs.flight_recorder_depth = 64;
  o.obs.flight_recorder_path = dump;
  o.obs.monitors.power_cap_mw = 0.001;  // impossible cap: violates immediately
  const auto r = sim::Simulation(o).run();
  std::remove(tel.c_str());

  EXPECT_GT(r.monitor_violations, 0u);
  EXPECT_GT(r.telemetry.flight_events, 0u);
  EXPECT_GT(r.telemetry.flight_dumps, 0u);
  ASSERT_TRUE(file_exists(dump));
  const auto text = slurp(dump);
  EXPECT_NE(text.find("\"schema\": \"erapid-flight-recorder-1\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"monitor_violation\""), std::string::npos);
  std::remove(dump.c_str());
}

TEST(FlightRecorderTrigger, CleanRunWritesNoDump) {
  const std::string tel = tmp_path("tel_clean.jsonl");
  const std::string dump = tmp_path("fr_none.json");
  std::remove(dump.c_str());

  sim::SimOptions o = telemetry_options(tel);
  o.obs.flight_recorder_depth = 64;
  o.obs.flight_recorder_path = dump;
  const auto r = sim::Simulation(o).run();
  std::remove(tel.c_str());

  EXPECT_GT(r.telemetry.flight_events, 0u);  // the ring fills regardless
  EXPECT_EQ(r.telemetry.flight_dumps, 0u);   // but nothing triggered a dump
  EXPECT_FALSE(file_exists(dump));
}

// ---- golden telemetry stream ------------------------------------------------

std::string telemetry_fixture_path() {
  return std::string(ERAPID_TEST_DATA_DIR) + "/golden_telemetry_small.jsonl";
}

TEST(GoldenTelemetry, SmallRunStreamMatchesCommittedFixtureExactly) {
  const std::string path = tmp_path("tel_golden.jsonl");
  (void)sim::Simulation(telemetry_options(path)).run();
  const auto stream = slurp(path);
  std::remove(path.c_str());

  if (std::getenv("ERAPID_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(telemetry_fixture_path());
    ASSERT_TRUE(out) << "cannot write " << telemetry_fixture_path();
    out << stream;
    GTEST_SKIP() << "regenerated " << telemetry_fixture_path();
  }

  std::ifstream in(telemetry_fixture_path());
  ASSERT_TRUE(in) << "missing fixture " << telemetry_fixture_path()
                  << " (regenerate with ERAPID_REGEN_GOLDEN=1)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(stream, ss.str())
      << "telemetry golden drifted — if the semantic change is intended, "
         "regenerate with ERAPID_REGEN_GOLDEN=1 and call it out in the "
         "commit message";
}

#else  // ERAPID_NO_OBS

// ---- compile-out: the plane must be fully inert -----------------------------

TEST(TelemetryNoObs, ConfiguredTelemetryProducesNothing) {
  const std::string path = tmp_path("tel_noobs.jsonl");
  std::remove(path.c_str());
  const auto r = sim::Simulation(telemetry_options(path)).run();
  EXPECT_FALSE(r.telemetry.active);
  EXPECT_FALSE(file_exists(path));
  EXPECT_EQ(sim::to_json(r).find("obs_telemetry"), std::string::npos);
}

#endif  // ERAPID_NO_OBS

}  // namespace
